// Fault-plane equivalence tests: the headline invariant of the
// deterministic fault plane (DESIGN.md §7). Running any golden engine
// configuration under an injected fault schedule must
//
//  1. leave every computed result — triangle counts, closed-triplet sums,
//     LCC checksums — bit-identical to the fault-free run (faults cost
//     simulated time, never correctness),
//  2. produce a SimTime that is deterministically reproducible for a
//     given (configuration, fault seed) at ANY worker count, and
//  3. never finish before the fault-free run: every recovery charge is a
//     non-negative clock addition folded outside the noise stream.
//
// The fault-free pins themselves stay untouched: goldenConfigs runs with
// faults == nil remain the single source of truth for the seed values.
package repro_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/lcc"
)

// faultScenarios is the fault-injection table every golden configuration
// is replayed under. Rates are sized so recovery penalties dominate the
// noise-repairing fluctuation of the noise configuration (whose spike
// schedule is time-indexed): the SimTime >= fault-free assertion is then a
// deterministic outcome, not a statistical one.
var faultScenarios = []struct {
	name string
	spec fault.Spec
}{
	// Transient remote-op failures on every class: the retry/backoff/
	// retransmit loop is the only recovery path exercised.
	{"retry-storm", fault.Spec{Seed: 101, GetFailPct: 0.02, PutFailPct: 0.02, AccFailPct: 0.02}},
	// Pure latency faults: spikes and periodic stall windows, no retries.
	{"spikes-stalls", fault.Spec{Seed: 202, SpikePct: 0.01, SpikeNS: 2e4, StallPeriodOps: 4096, StallNS: 1e5}},
	// Exchange drops plus cache degradation riding on a low failure rate:
	// the retransmit path (p2p engines) and the degraded direct-RMA
	// fallback (cached engine) both fire.
	{"drops-cache", fault.Spec{Seed: 303, GetFailPct: 0.005, DropPct: 0.05, CacheFailPct: 0.002}},
	// Everything at once: the chaos preset the CI lane uses.
	{"chaos", fault.ChaosSpec(7)},
	// Crash-stop with recovery: rank 2 dies at its 1500th remote op, pays
	// the restart delay plus a re-execution charge from its last barrier,
	// and the run completes. Engines with fewer remote ops per rank simply
	// never arm the crash — the >= invariant still holds with equality.
	{"crash-recover", fault.Spec{Seed: 404, CrashAtOp: 1500, CrashRank: 2, CrashRecover: true}},
}

// TestFaultEquivalence replays the full golden table under every fault
// scenario and asserts the three invariants above. Worker counts 1 and 4
// run everywhere; the chaos scenario additionally sweeps 2 and 8 in long
// mode, mirroring TestGoldenWorkerSweep.
func TestFaultEquivalence(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	for _, sc := range faultScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for _, cfg := range goldenConfigs {
				workerCounts := []int{1, 4}
				if sc.name == "chaos" && !testing.Short() {
					workerCounts = []int{1, 2, 4, 8}
				}
				var refSim uint64
				for i, wk := range workerCounts {
					got := cfg.run(t, g, wk, &sc.spec)
					// Invariant 1: results are bit-identical to the
					// fault-free pins (SimTime is the one field faults
					// may — and must — move).
					want := cfg.want
					want.simBits = got.simBits
					checkGoldenRun(t, fmt.Sprintf("%s/%s/workers=%d", cfg.name, sc.name, wk), got, want)
					// Invariant 3: no faulted run beats fault-free.
					if ff := math.Float64frombits(cfg.want.simBits); math.Float64frombits(got.simBits) < ff {
						t.Errorf("%s/%s: faulted SimTime %v below fault-free %v",
							cfg.name, sc.name, math.Float64frombits(got.simBits), ff)
					}
					// Invariant 2: SimTime bits agree across worker counts.
					if i == 0 {
						refSim = got.simBits
					} else if got.simBits != refSim {
						t.Errorf("%s/%s: SimTime bits %#x at workers=%d, %#x at workers=%d",
							cfg.name, sc.name, got.simBits, wk, refSim, workerCounts[0])
					}
				}
			}
		})
	}
}

// TestCrashFailFastDeterminism pins the other half of the crash-stop
// class: without CrashRecover the run fails fast with a typed
// *fault.CrashError naming the rank and op index, the error text is
// identical at every worker count, and a subsequent fault-free run still
// hits the golden pins — a simulated crash leaves no residue.
func TestCrashFailFastDeterminism(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	engines := []struct {
		name string
		run  func(opt lcc.Options) error
	}{
		{"pull", func(opt lcc.Options) error {
			_, err := lcc.Run(g, opt)
			return err
		}},
		{"push", func(opt lcc.Options) error {
			_, err := lcc.RunPush(g, lcc.PushOptions{Options: opt, Aggregation: lcc.PushBatched})
			return err
		}},
		{"replicated", func(opt lcc.Options) error {
			_, err := lcc.RunReplicated(g, lcc.ReplicatedOptions{Options: opt, Replication: 2})
			return err
		}},
	}
	for _, eng := range engines {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			spec := fault.Spec{Seed: 17, CrashAtOp: 1500, CrashRank: 2}
			var ref string
			for i, wk := range []int{1, 4} {
				opt := goldenBase()
				opt.Workers = wk
				opt.Faults = &spec
				err := eng.run(opt)
				var ce *fault.CrashError
				if !errors.As(err, &ce) {
					t.Fatalf("workers=%d: err = %v, want *fault.CrashError", wk, err)
				}
				if ce.Rank != 2 || ce.Op != 1500 {
					t.Errorf("workers=%d: crash at rank %d op %d, want rank 2 op 1500", wk, ce.Rank, ce.Op)
				}
				if i == 0 {
					ref = err.Error()
				} else if err.Error() != ref {
					t.Errorf("workers=%d: error %q differs from workers=1 %q", wk, err, ref)
				}
			}
		})
	}
	// No residue: the fault-free pull pins still hold after the crashes.
	pull := goldenConfigs[0]
	checkGoldenRun(t, "pull/after-crash", pull.run(t, g, 0, nil), pull.want)
}

// TestFaultChaos is the CI chaos lane: the golden configurations rotated
// under the chaos preset at eight fixed seeds. Any result drift or a
// faulted run undercutting its fault-free pin fails the lane.
func TestFaultChaos(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	for seed := uint64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := goldenConfigs[int(seed)%len(goldenConfigs)]
			spec := fault.ChaosSpec(seed)
			got := cfg.run(t, g, 0, &spec)
			want := cfg.want
			want.simBits = got.simBits
			checkGoldenRun(t, cfg.name, got, want)
			if ff := math.Float64frombits(cfg.want.simBits); math.Float64frombits(got.simBits) < ff {
				t.Errorf("%s: faulted SimTime %v below fault-free %v",
					cfg.name, math.Float64frombits(got.simBits), ff)
			}
		})
	}
}

// FuzzFaultSchedule throws arbitrary fault schedules at the pull
// configuration: whatever the rates, results never change and SimTime is
// reproducible across two replays. Inputs are folded into valid ranges
// rather than rejected so every fuzz execution exercises the plane.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint64(1), 0.01, 0.0, 0.0, uint64(0))
	f.Add(uint64(2), 0.0, 0.05, 2e4, uint64(4096))
	f.Add(uint64(3), 0.1, 0.02, 1e5, uint64(100))
	f.Add(uint64(99), 0.3, 0.3, 5e4, uint64(1))
	g := gen.MustLoad("fb-sim")
	pull := goldenConfigs[0]
	fold := func(p float64) float64 {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return 0
		}
		return math.Mod(p, 0.35)
	}
	f.Fuzz(func(t *testing.T, seed uint64, failPct, spikePct, spikeNS float64, stallOps uint64) {
		if math.IsNaN(spikeNS) || math.IsInf(spikeNS, 0) || spikeNS < 0 {
			spikeNS = 0
		}
		spec := fault.Spec{
			Seed:           seed,
			GetFailPct:     fold(failPct),
			SpikePct:       fold(spikePct),
			SpikeNS:        math.Mod(spikeNS, 1e6),
			StallPeriodOps: int(stallOps % 65536),
			StallNS:        5e4,
		}
		got := pull.run(t, g, 1, &spec)
		want := pull.want
		want.simBits = got.simBits
		checkGoldenRun(t, "pull/fuzz", got, want)
		if replay := pull.run(t, g, 2, &spec); replay.simBits != got.simBits {
			t.Errorf("SimTime not reproducible: %#x vs %#x on replay (spec %v)",
				got.simBits, replay.simBits, spec.String())
		}
	})
}
