// Benchmark harness: one testing.B per table and figure of the paper's
// evaluation (§IV), plus micro-benchmarks of the hot kernels. The macro
// benchmarks delegate to internal/experiments — the same code path as
// cmd/figures — render the regenerated table to stdout, and report the
// headline quantity via b.ReportMetric so `go test -bench` output carries
// the comparison numbers.
//
// Macro experiments take seconds to minutes each; run a single one with
// e.g. `go test -bench=Fig7 -benchtime=1x`.
package repro_test

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"repro/internal/clampi"
	"repro/internal/disttc"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/grid"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/rma"
	"repro/internal/spmat"
	"repro/internal/tric"
)

// renderOnce renders each experiment table at most once per process, so
// repeated b.N iterations don't spam stdout.
var renderedMu sync.Mutex
var rendered = map[string]bool{}

func runExperiment(b *testing.B, id string) *experiments.Table {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = e.Make()
	}
	renderedMu.Lock()
	if !rendered[id] {
		rendered[id] = true
		t.Render(os.Stdout)
	}
	renderedMu.Unlock()
	return t
}

// cell parses table cell (r, c) as a float; non-numeric cells return NaN-ish 0.
func cell(t *experiments.Table, r, c int) float64 {
	if r >= len(t.Rows) || c >= len(t.Rows[r]) {
		return 0
	}
	v, err := strconv.ParseFloat(t.Rows[r][c], 64)
	if err != nil {
		return 0
	}
	return v
}

// --- one benchmark per table / figure -------------------------------------

func BenchmarkTable2Datasets(b *testing.B)   { runExperiment(b, "table2") }
func BenchmarkFig1DataReuse(b *testing.B)    { runExperiment(b, "fig1") }
func BenchmarkFig5CacheEntries(b *testing.B) { runExperiment(b, "fig5") }
func BenchmarkAblationCutoff(b *testing.B)   { runExperiment(b, "ablation-cutoff") }
func BenchmarkAblationOverlap(b *testing.B)  { runExperiment(b, "ablation-overlap") }
func BenchmarkAblationCyclic(b *testing.B)   { runExperiment(b, "ablation-cyclic") }
func BenchmarkAblationScores(b *testing.B)   { runExperiment(b, "ablation-scores") }

func BenchmarkAblationOrientation(b *testing.B) { runExperiment(b, "ablation-orientation") }
func BenchmarkTable3Hash(b *testing.B)          { runExperiment(b, "table3x") }
func BenchmarkAblationPushPull(b *testing.B)    { runExperiment(b, "ablation-pushpull") }
func BenchmarkAblationDelegation(b *testing.B)  { runExperiment(b, "ablation-delegation") }
func BenchmarkAblationRelabel(b *testing.B)     { runExperiment(b, "ablation-relabel") }
func BenchmarkAblationReplication(b *testing.B) { runExperiment(b, "ablation-replication") }

func BenchmarkAblation2D(b *testing.B) {
	t := runExperiment(b, "ablation-2d")
	// Last row = most ranks: columns 3/4 are MB per rank for 1D and 2D.
	if n := len(t.Rows); n > 0 {
		one, two := cell(t, n-1, 3), cell(t, n-1, 4)
		if two > 0 {
			b.ReportMetric(one/two, "1d-vs-2d-traffic-x")
		}
	}
}

func BenchmarkEngine2D(b *testing.B) {
	g := gen.MustLoad("rmat-s14-ef16")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := grid.Run(g, grid.Options{Ranks: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNoise(b *testing.B) {
	t := runExperiment(b, "ablation-noise")
	// Last row = highest noise level; column 5 is the BSP penalty factor.
	if n := len(t.Rows); n > 0 {
		b.ReportMetric(cell(t, n-1, 5), "bsp-noise-penalty-x")
	}
}

func BenchmarkAblationDistTC(b *testing.B) {
	t := runExperiment(b, "ablation-disttc")
	// Last row = most ranks; column 4 is "NN%" precompute share.
	if n := len(t.Rows); n > 0 {
		var v float64
		fmt.Sscanf(t.Rows[n-1][4], "%f%%", &v)
		b.ReportMetric(v, "disttc-precompute-%")
	}
}

func BenchmarkFig4DataReuse(b *testing.B) {
	t := runExperiment(b, "fig4")
	// Row 1 is the R-MAT case; column 2 holds "NN.N%".
	if len(t.Rows) > 1 {
		var v float64
		fmt.Sscanf(t.Rows[1][2], "%f%%", &v)
		b.ReportMetric(v, "rmat-top10-%")
	}
}

func BenchmarkTable3Intersection(b *testing.B) {
	t := runExperiment(b, "table3")
	if len(t.Rows) > 0 {
		b.ReportMetric(cell(t, 0, 2), "hybrid-edges/µs")
	}
}

func BenchmarkFig6SharedScaling(b *testing.B) {
	t := runExperiment(b, "fig6")
	// Last row of the first dataset block (threads=16) carries the speedup.
	if len(t.Rows) >= 5 {
		var sp float64
		fmt.Sscanf(t.Rows[4][4], "%fx", &sp)
		b.ReportMetric(sp, "speedup-16t")
	}
}

func BenchmarkFig7CacheSize(b *testing.B) {
	t := runExperiment(b, "fig7")
	// Final C_adj row = full-size cache; column 3 is comm time (ms).
	if n := len(t.Rows); n > 0 {
		b.ReportMetric(cell(t, n-1, 3), "cadj-full-comm-ms")
	}
}

func BenchmarkFig8Scores(b *testing.B) {
	t := runExperiment(b, "fig8")
	if len(t.Rows) >= 2 {
		lru := cell(t, 0, 2)
		deg := cell(t, 1, 2)
		if deg > 0 {
			b.ReportMetric(lru/deg, "read-time-improvement-x")
		}
	}
}

func BenchmarkFig9SmallScale(b *testing.B) {
	t := runExperiment(b, "fig9")
	// First dataset block: rows 0 (p=4) and 4 (p=64), column 2 = non-cached ms.
	if len(t.Rows) >= 5 {
		base, last := cell(t, 0, 2), cell(t, 4, 2)
		if last > 0 {
			b.ReportMetric(base/last, "rmat-speedup-4to64")
		}
	}
}

func BenchmarkFig10LargeScale(b *testing.B) {
	t := runExperiment(b, "fig10")
	if len(t.Rows) >= 3 {
		base, last := cell(t, 0, 2), cell(t, 2, 2)
		if last > 0 {
			b.ReportMetric(base/last, "rmat-speedup-128to512")
		}
	}
}

// --- micro-benchmarks of the hot kernels -----------------------------------

func sortedList(n, stride int) []graph.V {
	out := make([]graph.V, n)
	for i := range out {
		out[i] = graph.V(i * stride)
	}
	return out
}

func BenchmarkIntersectSSI(b *testing.B) {
	x := sortedList(1024, 3)
	y := sortedList(1024, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		intersect.SSI(x, y)
	}
}

func BenchmarkIntersectBinary(b *testing.B) {
	keys := sortedList(64, 37)
	tree := sortedList(4096, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		intersect.Binary(keys, tree)
	}
}

// BenchmarkIntersectHybrid measures the hybrid intersection on the path
// the engines actually execute: the scratch-based host kernels with the
// decoupled Algorithm 1/2 charge (this pair is Binary-charged under
// Eq. (3), so it exercises the galloping finger replay). The reference
// loops it replaced are tracked by BenchmarkIntersectSSI/Binary above.
func BenchmarkIntersectHybrid(b *testing.B) {
	x := sortedList(256, 7)
	y := sortedList(8192, 2)
	s := intersect.GetScratch()
	defer intersect.PutScratch(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Count(intersect.MethodHybrid, x, y)
	}
}

// BenchmarkIntersectSweep is the size-sweep grid of the hybrid kernel
// over |A|,|B| ∈ {16, 256, 4k, 64k} (upper triangle; the dispatch orients
// internally, so the transposed cells are identical). The diagonal cells
// are SSI-charged and engage the stamp set; the skewed cells are
// Binary-charged and engage the galloping finger replay.
func BenchmarkIntersectSweep(b *testing.B) {
	sizes := []int{16, 256, 4096, 65536}
	for _, na := range sizes {
		for _, nb := range sizes {
			if na > nb {
				continue
			}
			x := sortedList(na, 7)
			y := sortedList(nb, 2)
			b.Run(fmt.Sprintf("a%d_b%d", na, nb), func(b *testing.B) {
				s := intersect.GetScratch()
				defer intersect.PutScratch(s)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Count(intersect.MethodHybrid, x, y)
				}
			})
		}
	}
}

// --- per-kernel benches of the host layer ----------------------------------

// BenchmarkKernelMergeBranchFree is the 4-way unrolled branch-free merge
// on the same pair as BenchmarkIntersectSSI (its scalar reference).
func BenchmarkKernelMergeBranchFree(b *testing.B) {
	x := sortedList(1024, 3)
	y := sortedList(1024, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		intersect.MergeCount(x, y)
	}
}

// BenchmarkKernelStampProbe is the amortized stamp-set kernel: the pivot
// is stamped once and every call pays only the probe side plus the
// analytic Algorithm 2 charge — the engines' repeat-pivot pattern.
func BenchmarkKernelStampProbe(b *testing.B) {
	x := sortedList(1024, 3)
	y := sortedList(1024, 5)
	s := intersect.GetScratch()
	defer intersect.PutScratch(s)
	s.Count(intersect.MethodSSI, x, y) // stamp the pivot
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Count(intersect.MethodSSI, x, y)
	}
}

// BenchmarkKernelFingerBinary is the galloping finger replay on the same
// pair as BenchmarkIntersectBinary (its per-key reference).
func BenchmarkKernelFingerBinary(b *testing.B) {
	keys := sortedList(64, 37)
	tree := sortedList(4096, 3)
	s := intersect.GetScratch()
	defer intersect.PutScratch(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Count(intersect.MethodBinary, keys, tree)
	}
}

func BenchmarkIntersectHash(b *testing.B) {
	x := sortedList(256, 7)
	y := sortedList(8192, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		intersect.Hash(x, y)
	}
}

func BenchmarkHashIndexReuse(b *testing.B) {
	// The amortized pattern of the edge-centric engine: build once, probe
	// with many key sets.
	keys := sortedList(256, 7)
	tree := sortedList(8192, 2)
	ix, _ := intersect.BuildHashIndex(tree)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.CountKeys(keys)
	}
}

func BenchmarkForwardLCC(b *testing.B) {
	g := gen.MustLoad("rmat-s14-ef16")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lcc.ForwardLCC(g); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumArcs()), "arcs")
}

func BenchmarkAlgebraicLU(b *testing.B) {
	g := gen.MustLoad("rmat-s14-ef8")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spmat.CountLU(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistTC(b *testing.B) {
	g := gen.MustLoad("rmat-s14-ef16")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := disttc.Run(g, disttc.Options{Ranks: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRMAAccumulate(b *testing.B) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	w := comm.CreateWindow("bench", [][]byte{nil, make([]byte, 4096)})
	r := comm.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Accumulate(w, 1, (i%512)*8, 1).Release()
		if i%64 == 63 {
			r.FlushAll(w)
		}
	}
}

func BenchmarkRMAFetchAdd(b *testing.B) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	w := comm.CreateWindow("bench", [][]byte{nil, make([]byte, 8)})
	r := comm.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.FetchAdd64(w, 1, 0, 1)
	}
}

func BenchmarkWattsStrogatz(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gen.WattsStrogatz(4096, 8, 0.1, uint64(i))
	}
}

func BenchmarkRMAGet(b *testing.B) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	w := comm.CreateWindow("bench", [][]byte{nil, make([]byte, 1<<20)})
	r := comm.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := r.Get(w, 1, (i*64)%(1<<19), 64)
		q.Wait()
		q.Release()
	}
}

func BenchmarkRMAGetReadOnly(b *testing.B) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	w := comm.CreateReadOnlyWindow("bench", [][]byte{nil, make([]byte, 1<<20)})
	r := comm.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := r.Get(w, 1, (i*64)%(1<<19), 64)
		q.Wait()
		q.Release()
	}
}

func BenchmarkClampiHit(b *testing.B) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	w := comm.CreateWindow("bench", [][]byte{nil, make([]byte, 1<<16)})
	r := comm.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	c := clampi.New(r, w, clampi.Config{Capacity: 1 << 16, Mode: clampi.AlwaysCache})
	q := c.Get(1, 0, 256)
	q.Wait()
	q.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(1, 0, 256).Release()
	}
}

func BenchmarkClampiMissEvict(b *testing.B) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	w := comm.CreateWindow("bench", [][]byte{nil, make([]byte, 1<<20)})
	r := comm.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	// Tiny cache: every access misses and evicts.
	c := clampi.New(r, w, clampi.Config{Capacity: 1 << 10, Mode: clampi.AlwaysCache})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := c.Get(1, (i%1024)*512, 512)
		q.Wait()
		q.Release()
	}
}

func BenchmarkSharedLCC(b *testing.B) {
	g := gen.MustLoad("rmat-s14-ef16")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lcc.SharedLCC(g, intersect.MethodHybrid)
	}
	b.ReportMetric(float64(g.NumArcs()), "arcs")
}

// The two trajectory benchmarks pin Workers: 1 — the serial baseline
// BENCH_1/BENCH_2 recorded (the default went parallel with the rank
// scheduler, so an explicit pin is what keeps the trajectory
// semantically one series). The *Parallel variants below are the
// scaling numbers.
func BenchmarkEngineNonCached(b *testing.B) {
	g := gen.MustLoad("rmat-s14-ef16")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lcc.Run(g, lcc.Options{Ranks: 8, Workers: 1, Method: intersect.MethodHybrid, DoubleBuffer: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineCached(b *testing.B) {
	g := gen.MustLoad("rmat-s14-ef16")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := lcc.Run(g, lcc.Options{
			Ranks: 8, Workers: 1, Method: intersect.MethodHybrid, DoubleBuffer: true,
			Caching: true, OffsetsCacheBytes: 1 << 18, AdjCacheBytes: 1 << 22,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineNonCachedParallel opens the rank scheduler to every host
// core (Workers=GOMAXPROCS, also the default; explicit so the record is
// self-describing). Results are bit-identical to the serial run; only
// host wall-clock changes, which is why BENCH_*.json records carry
// go_max_procs and benchdiff refuses to compare times across differing
// values.
func BenchmarkEngineNonCachedParallel(b *testing.B) {
	g := gen.MustLoad("rmat-s14-ef16")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lcc.Run(g, lcc.Options{
			Ranks: 8, Workers: runtime.GOMAXPROCS(0),
			Method: intersect.MethodHybrid, DoubleBuffer: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCachedParallel is BenchmarkEngineCached at
// Workers=GOMAXPROCS; see BenchmarkEngineNonCachedParallel.
func BenchmarkEngineCachedParallel(b *testing.B) {
	g := gen.MustLoad("rmat-s14-ef16")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := lcc.Run(g, lcc.Options{
			Ranks: 8, Workers: runtime.GOMAXPROCS(0),
			Method: intersect.MethodHybrid, DoubleBuffer: true,
			Caching: true, OffsetsCacheBytes: 1 << 18, AdjCacheBytes: 1 << 22,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTriC(b *testing.B) {
	g := gen.MustLoad("rmat-s14-ef16")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tric.Run(g, tric.Options{Ranks: 8, Method: intersect.MethodHybrid}); err != nil {
			b.Fatal(err)
		}
	}
}
