package repro_test

import (
	"bytes"
	"math"
	"testing"

	"repro"
)

// Facade coverage for the extension API: every exported entry point added
// beyond the paper's core engine, exercised end to end through package
// repro only.

func TestFacadeForwardAndAlgebraicAgree(t *testing.T) {
	g := repro.RMAT(9, 8, repro.Undirected, 11)
	g = repro.Prepare(g, 1)
	want := repro.SharedLCC(g, repro.MethodHybrid)

	fwd, err := repro.ForwardLCC(g)
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Triangles != want.Triangles {
		t.Errorf("forward %d vs shared %d", fwd.Triangles, want.Triangles)
	}

	alg, err := repro.AlgebraicTriangles(g)
	if err != nil {
		t.Fatal(err)
	}
	if alg.Triangles != want.Triangles {
		t.Errorf("algebraic %d vs shared %d", alg.Triangles, want.Triangles)
	}

	tris, err := repro.ListTriangles(g)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(tris)) != want.Triangles {
		t.Errorf("ListTriangles returned %d, want %d", len(tris), want.Triangles)
	}
}

func TestFacadeAlgebraicDirected(t *testing.T) {
	g := repro.RMAT(8, 8, repro.Directed, 5)
	g = repro.Prepare(g, 1)
	want := repro.SharedLCC(g, repro.MethodHybrid)
	alg, err := repro.AlgebraicTriangles(g)
	if err != nil {
		t.Fatal(err)
	}
	if alg.Triangles != want.Triangles {
		t.Errorf("directed algebraic %d vs shared %d", alg.Triangles, want.Triangles)
	}
}

func TestFacadeDistTCAnd2D(t *testing.T) {
	g := repro.RMAT(9, 8, repro.Undirected, 23)
	g = repro.Prepare(g, 2)
	want := repro.SharedLCC(g, repro.MethodHybrid)

	dt, err := repro.RunDistTC(g, repro.DistTCOptions{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dt.Triangles != want.Triangles {
		t.Errorf("DistTC %d vs shared %d", dt.Triangles, want.Triangles)
	}
	if dt.PrecomputeTime <= 0 || dt.ReplicationFactor <= 1 {
		t.Errorf("DistTC stats implausible: precompute %.0f, replication %.2f",
			dt.PrecomputeTime, dt.ReplicationFactor)
	}

	td, err := repro.RunLCC2D(g, repro.LCC2DOptions{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if td.Triangles != want.Triangles {
		t.Errorf("2D %d vs shared %d", td.Triangles, want.Triangles)
	}
	if _, err := repro.RunLCC2D(g, repro.LCC2DOptions{Ranks: 6}); err == nil {
		t.Error("2D engine accepted non-square rank count")
	}
}

func TestFacadeMethodHash(t *testing.T) {
	g := repro.RMAT(8, 8, repro.Undirected, 7)
	g = repro.Prepare(g, 1)
	want := repro.SharedLCC(g, repro.MethodHybrid)
	got := repro.SharedLCC(g, repro.MethodHash)
	if got.Triangles != want.Triangles {
		t.Errorf("hash method %d vs hybrid %d", got.Triangles, want.Triangles)
	}
}

func TestFacadeSmallWorld(t *testing.T) {
	g := repro.WattsStrogatz(300, 6, 0, 1)
	res := repro.SharedLCC(g, repro.MethodHybrid)
	want := repro.RingLatticeLCC(6)
	for v, c := range res.LCC {
		if math.Abs(c-want) > 1e-12 {
			t.Fatalf("lattice LCC[%d] = %g, closed form %g", v, c, want)
		}
	}
}

func TestFacadeKronecker(t *testing.T) {
	g := repro.Kronecker(9, 0.57, 0.19, 0.19, 0.05, repro.Undirected, 3)
	if g.NumVertices() != 512 || g.NumEdges() == 0 {
		t.Fatalf("Kronecker: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestFacadeMatrixMarket(t *testing.T) {
	g := repro.ErdosRenyi(64, 256, repro.Undirected, 5)
	var buf bytes.Buffer
	if err := repro.WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := repro.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Errorf("mtx round trip: %d edges, want %d", back.NumEdges(), g.NumEdges())
	}
}

func TestFacadeNoise(t *testing.T) {
	g := repro.RMAT(8, 8, repro.Undirected, 9)
	g = repro.Prepare(g, 3)
	quietModel := repro.DefaultCostModel()
	noisyModel := quietModel
	noisyModel.Noise = repro.NoiseSpec{Amp: 0.3, Seed: 2}

	quiet, err := repro.RunLCC(g, repro.LCCOptions{Ranks: 4, Method: repro.MethodHybrid, Model: quietModel})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := repro.RunLCC(g, repro.LCCOptions{Ranks: 4, Method: repro.MethodHybrid, Model: noisyModel})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Triangles != quiet.Triangles {
		t.Error("noise changed the triangle count through the facade")
	}
	if noisy.SimTime <= quiet.SimTime {
		t.Error("noise did not slow the simulated run")
	}
}

func TestFacadeHitRate(t *testing.T) {
	g := repro.RMAT(9, 8, repro.Undirected, 13)
	g = repro.Prepare(g, 4)
	res, err := repro.RunLCC(g, repro.LCCOptions{
		Ranks: 4, Method: repro.MethodHybrid, Caching: true,
		OffsetsCacheBytes: 1 << 16, AdjCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hr := res.HitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("cached run hit rate = %g, want in (0,1)", hr)
	}
	uncached, err := repro.RunLCC(g, repro.LCCOptions{Ranks: 4, Method: repro.MethodHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if hr := uncached.HitRate(); hr != 0 {
		t.Errorf("non-cached hit rate = %g, want 0", hr)
	}
}

func TestFacadePushPull(t *testing.T) {
	g := repro.Prepare(repro.RMAT(10, 8, repro.Undirected, 19), 19)
	pull, err := repro.RunLCC(g, repro.LCCOptions{Ranks: 4, Method: repro.MethodHybrid})
	if err != nil {
		t.Fatal(err)
	}
	push, err := repro.RunLCCPush(g, repro.LCCPushOptions{
		Options:     repro.LCCOptions{Ranks: 4, Method: repro.MethodHybrid},
		Aggregation: repro.PushBatched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if push.Triangles != pull.Triangles {
		t.Errorf("push triangles = %d, pull = %d", push.Triangles, pull.Triangles)
	}
	for v := range pull.LCC {
		if push.LCC[v] != pull.LCC[v] {
			t.Fatalf("LCC[%d]: push %g != pull %g", v, push.LCC[v], pull.LCC[v])
		}
	}
	directed := repro.Prepare(repro.RMAT(8, 8, repro.Directed, 23), 23)
	if _, err := repro.RunLCCPush(directed, repro.LCCPushOptions{
		Options: repro.LCCOptions{Ranks: 2},
	}); err == nil {
		t.Error("RunLCCPush accepted a directed graph")
	}
}

func TestFacadeReplicated(t *testing.T) {
	g := repro.Prepare(repro.RMAT(10, 8, repro.Undirected, 61), 61)
	base, err := repro.RunLCC(g, repro.LCCOptions{Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := repro.RunLCCReplicated(g, repro.LCCReplicatedOptions{
		Options:     repro.LCCOptions{Ranks: 8},
		Replication: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triangles != base.Triangles {
		t.Errorf("replicated triangles %d != %d", rep.Triangles, base.Triangles)
	}
	if rep.RemoteReadFraction() >= base.RemoteReadFraction() {
		t.Error("replication did not reduce the remote-read fraction")
	}
	m1, err := repro.ReplicaWindowBytes(g, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := repro.ReplicaWindowBytes(g, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m4 <= m1 {
		t.Errorf("window bytes did not grow with replication: %d vs %d", m4, m1)
	}
}
