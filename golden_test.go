// Golden determinism tests: these pin the exact simulated results —
// SimTime float bits, triangle counts, and an LCC checksum — that the
// byte-copying seed substrate produced, captured before the zero-copy/
// pooled rewrite of internal/rma. The zero-copy substrate only changes
// host-side work, never modeled cost, so every value must match bit for
// bit. Any drift here means an engine change leaked into the simulation.
package repro_test

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/rma"
)

// lccBits returns the float bit pattern of the score sum: a checksum that
// is sensitive to any per-vertex change but cheap to pin.
func lccBits(scores []float64) uint64 {
	var s float64
	for _, x := range scores {
		s += x
	}
	return math.Float64bits(s)
}

func goldenBase() lcc.Options {
	return lcc.Options{Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true}
}

const (
	goldenTriangles = 351349
	goldenSumT      = 1054047
	goldenLCCBits   = 0x4091b4d6196173a8
)

func checkGolden(t *testing.T, name string, res *lcc.Result, simBits uint64) {
	t.Helper()
	if got := math.Float64bits(res.SimTime); got != simBits {
		t.Errorf("%s: SimTime bits = %#x, want %#x (Δ=%g ns)", name, got, simBits,
			res.SimTime-math.Float64frombits(simBits))
	}
	if res.Triangles != goldenTriangles || res.SumT != goldenSumT {
		t.Errorf("%s: Triangles/SumT = %d/%d, want %d/%d",
			name, res.Triangles, res.SumT, goldenTriangles, goldenSumT)
	}
	if got := lccBits(res.LCC); got != goldenLCCBits {
		t.Errorf("%s: LCC checksum = %#x, want %#x", name, got, goldenLCCBits)
	}
}

func TestGoldenPull(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	res, err := lcc.Run(g, goldenBase())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "pull", res, 0x419e343dbb9986d8)
}

func TestGoldenCached(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	opt := goldenBase()
	opt.Caching = true
	opt.OffsetsCacheBytes = 1 << 14
	opt.AdjCacheBytes = 1 << 16
	opt.AdjScorePolicy = lcc.ScoreDegree
	res, err := lcc.Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "cached", res, 0x41a09b0455ccbf5c)
	if h, m := res.PerRank[0].AdjCache.Hits, res.PerRank[0].AdjCache.Misses; h != 3592 || m != 27335 {
		t.Errorf("rank-0 C_adj hits/misses = %d/%d, want 3592/27335", h, m)
	}
}

func TestGoldenNoise(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	opt := goldenBase()
	opt.Model = rma.DefaultCostModel()
	opt.Model.Noise = rma.NoiseSpec{Amp: 0.3, SpikePeriodNS: 1e6, SpikeNS: 2e4, Seed: 42}
	res, err := lcc.Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float64bits(res.SimTime); got != 0x41a1b9b48a01a470 {
		t.Errorf("noise: SimTime bits = %#x, want 0x41a1b9b48a01a470", got)
	}
	if res.Triangles != goldenTriangles {
		t.Errorf("noise: Triangles = %d, want %d", res.Triangles, goldenTriangles)
	}
}

func TestGoldenPush(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	res, err := lcc.RunPush(g, lcc.PushOptions{Options: goldenBase(), Aggregation: lcc.PushBatched})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "push", res, 0x418f03fb880008fd)
}

func TestGoldenReplicated(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	res, err := lcc.RunReplicated(g, lcc.ReplicatedOptions{Options: goldenBase(), Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "replicated", res, 0x4194d5d82066633a)
}

func TestGoldenJaccard(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	res, err := lcc.RunJaccard(g, goldenBase())
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float64bits(res.SimTime); got != 0x419e4086ab9986ca {
		t.Errorf("jaccard: SimTime bits = %#x, want 0x419e4086ab9986ca", got)
	}
	if got := lccBits(res.Scores); got != 0x40d8e68d91b9c64c {
		t.Errorf("jaccard: score checksum = %#x, want 0x40d8e68d91b9c64c", got)
	}
}

func TestGoldenGrid(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	res, err := grid.Run(g, grid.Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float64bits(res.SimTime); got != 0x4149df9a00000000 {
		t.Errorf("grid: SimTime bits = %#x, want 0x4149df9a00000000", got)
	}
	if res.Triangles != goldenTriangles {
		t.Errorf("grid: Triangles = %d, want %d", res.Triangles, goldenTriangles)
	}
	if got := lccBits(res.LCC); got != goldenLCCBits {
		t.Errorf("grid: LCC checksum = %#x, want %#x", got, goldenLCCBits)
	}
}

// TestEngineCachedAllocBudget is TestEngineFetchAllocFree's cached-engine
// companion guard: the allocation-free metadata plane (pooled entries/
// blocks/AVL nodes, packed keys, lane tables, open-addressed seen set)
// brings a full CLaMPI-cached run from ~302k heap allocations to about a
// thousand — cache construction plus a bounded number of slab/pool
// ramp-ups. The budget leaves modest headroom; the benchmark-visible
// number (BENCH_*.json) is the precise trajectory.
func TestEngineCachedAllocBudget(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	opt := goldenBase()
	opt.Caching = true
	opt.OffsetsCacheBytes = 1 << 14
	opt.AdjCacheBytes = 1 << 16
	opt.AdjScorePolicy = lcc.ScoreDegree
	lcc.Run(g, opt) // warm dataset cache and one-time state
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if _, err := lcc.Run(g, opt); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	allocs := m1.Mallocs - m0.Mallocs
	// The seed's cached run allocated ~300k objects (per-miss entries,
	// boxed heap snapshots, map traffic). Setup for 4 ranks x 2 caches
	// plus pool ramp-up fits comfortably in 2000.
	const budget = 2000
	if allocs > budget {
		t.Errorf("cached run allocated %d objects, budget %d: per-access allocation crept back into the cache", allocs, budget)
	}
}

// TestEngineFetchAllocFree guards the engine's end-to-end allocation
// profile: a full non-cached distributed run on a small graph must stay
// within a fixed allocation budget dominated by setup (windows, partition,
// per-rank state) — i.e. the per-fetch hot path contributes nothing. The
// seed substrate allocated ~6 heap objects per remote fetch; with ~82k
// arcs the old budget would be in the hundreds of thousands.
func TestEngineFetchAllocFree(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	lcc.Run(g, goldenBase()) // warm dataset cache and one-time state
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if _, err := lcc.Run(g, goldenBase()); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	allocs := m1.Mallocs - m0.Mallocs
	// Setup allocates a few hundred objects (partition extraction, window
	// headers, per-rank stats); ~123k remote fetches would add ~600k under
	// the seed's per-fetch allocation profile.
	const budget = 5000
	if allocs > budget {
		t.Errorf("non-cached run allocated %d objects, budget %d: per-fetch allocation crept back in", allocs, budget)
	}
}
