// Golden determinism tests: these pin the exact simulated results —
// SimTime float bits, triangle counts, and an LCC checksum — that the
// byte-copying seed substrate produced, captured before the zero-copy/
// pooled rewrite of internal/rma. The zero-copy substrate only changes
// host-side work, never modeled cost, so every value must match bit for
// bit. Any drift here means an engine change leaked into the simulation.
//
// Since the parallel rank scheduler, the same pins also guard
// schedule-independence: TestGoldenWorkerSweep replays every
// configuration at several worker counts against the same table.
package repro_test

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/grid"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/rma"
)

// lccBits returns the float bit pattern of the score sum: a checksum that
// is sensitive to any per-vertex change but cheap to pin.
func lccBits(scores []float64) uint64 {
	var s float64
	for _, x := range scores {
		s += x
	}
	return math.Float64bits(s)
}

// goldenStorage is the per-rank storage mode the golden run functions
// apply; the storage-equivalence sweep flips it to StorageCompressed and
// asserts the same pinned bits (host representation is model-invisible).
var goldenStorage lcc.StorageMode

func goldenBase() lcc.Options {
	return lcc.Options{Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true,
		Storage: goldenStorage}
}

const (
	goldenTriangles = 351349
	goldenSumT      = 1054047
	goldenLCCBits   = 0x4091b4d6196173a8
)

// goldenRun holds the comparable quantities of one engine run. A field
// set to its sentinel (-1 counts, 0 checksum) is not checked for that
// configuration.
type goldenRun struct {
	simBits uint64
	sumBits uint64 // lccBits over the result's score vector
	tri     int64  // global triangle count
	sumT    int64  // closed-triplet sum
}

// goldenConfigs is the single source of the pinned values: the seven
// engine configurations the individual TestGolden* tests assert and the
// worker sweep replays. Each run function executes its engine at the
// given worker count, performs any configuration-specific extra checks
// (e.g. per-rank cache hit counts), and returns the comparable result.
var goldenConfigs = []struct {
	name string
	want goldenRun
	run  func(t *testing.T, g graph.Store, workers int, faults *fault.Spec) goldenRun
}{
	{
		name: "pull",
		want: goldenRun{0x419e343dbb9986d8, goldenLCCBits, goldenTriangles, goldenSumT},
		run: func(t *testing.T, g graph.Store, workers int, faults *fault.Spec) goldenRun {
			opt := goldenBase()
			opt.Workers = workers
			opt.Faults = faults
			res, err := lcc.Run(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			return goldenRun{math.Float64bits(res.SimTime), lccBits(res.LCC), res.Triangles, res.SumT}
		},
	},
	{
		name: "cached",
		want: goldenRun{0x41a09b0455ccbf5c, goldenLCCBits, goldenTriangles, goldenSumT},
		run: func(t *testing.T, g graph.Store, workers int, faults *fault.Spec) goldenRun {
			opt := goldenBase()
			opt.Workers = workers
			opt.Faults = faults
			opt.Caching = true
			opt.OffsetsCacheBytes = 1 << 14
			opt.AdjCacheBytes = 1 << 16
			opt.AdjScorePolicy = lcc.ScoreDegree
			res, err := lcc.Run(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			// Cache faults flush entries and force direct fetches, so the
			// hit/miss pin only holds on the fault-free runs.
			if h, m := res.PerRank[0].AdjCache.Hits, res.PerRank[0].AdjCache.Misses; faults == nil && (h != 3592 || m != 27335) {
				t.Errorf("cached: rank-0 C_adj hits/misses = %d/%d, want 3592/27335", h, m)
			}
			return goldenRun{math.Float64bits(res.SimTime), lccBits(res.LCC), res.Triangles, res.SumT}
		},
	},
	{
		name: "noise",
		want: goldenRun{0x41a1b9b48a01a470, 0, goldenTriangles, -1},
		run: func(t *testing.T, g graph.Store, workers int, faults *fault.Spec) goldenRun {
			opt := goldenBase()
			opt.Workers = workers
			opt.Faults = faults
			opt.Model = rma.DefaultCostModel()
			opt.Model.Noise = rma.NoiseSpec{Amp: 0.3, SpikePeriodNS: 1e6, SpikeNS: 2e4, Seed: 42}
			res, err := lcc.Run(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			return goldenRun{math.Float64bits(res.SimTime), 0, res.Triangles, -1}
		},
	},
	{
		name: "push",
		want: goldenRun{0x418f03fb880008fd, goldenLCCBits, goldenTriangles, goldenSumT},
		run: func(t *testing.T, g graph.Store, workers int, faults *fault.Spec) goldenRun {
			opt := goldenBase()
			opt.Workers = workers
			opt.Faults = faults
			res, err := lcc.RunPush(g, lcc.PushOptions{Options: opt, Aggregation: lcc.PushBatched})
			if err != nil {
				t.Fatal(err)
			}
			return goldenRun{math.Float64bits(res.SimTime), lccBits(res.LCC), res.Triangles, res.SumT}
		},
	},
	{
		name: "replicated",
		want: goldenRun{0x4194d5d82066633a, goldenLCCBits, goldenTriangles, goldenSumT},
		run: func(t *testing.T, g graph.Store, workers int, faults *fault.Spec) goldenRun {
			opt := goldenBase()
			opt.Workers = workers
			opt.Faults = faults
			res, err := lcc.RunReplicated(g, lcc.ReplicatedOptions{Options: opt, Replication: 2})
			if err != nil {
				t.Fatal(err)
			}
			return goldenRun{math.Float64bits(res.SimTime), lccBits(res.LCC), res.Triangles, res.SumT}
		},
	},
	{
		name: "jaccard",
		want: goldenRun{0x419e4086ab9986ca, 0x40d8e68d91b9c64c, -1, -1},
		run: func(t *testing.T, g graph.Store, workers int, faults *fault.Spec) goldenRun {
			opt := goldenBase()
			opt.Workers = workers
			opt.Faults = faults
			res, err := lcc.RunJaccard(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			return goldenRun{math.Float64bits(res.SimTime), lccBits(res.Scores), -1, -1}
		},
	},
	{
		name: "grid",
		want: goldenRun{0x4149df9a00000000, goldenLCCBits, goldenTriangles, -1},
		run: func(t *testing.T, g graph.Store, workers int, faults *fault.Spec) goldenRun {
			res, err := grid.Run(g, grid.Options{Ranks: 4, Workers: workers, Faults: faults})
			if err != nil {
				t.Fatal(err)
			}
			return goldenRun{math.Float64bits(res.SimTime), lccBits(res.LCC), res.Triangles, -1}
		},
	},
}

func checkGoldenRun(t *testing.T, name string, got, want goldenRun) {
	t.Helper()
	if got.simBits != want.simBits {
		t.Errorf("%s: SimTime bits = %#x, want %#x (Δ=%g ns)", name, got.simBits, want.simBits,
			math.Float64frombits(got.simBits)-math.Float64frombits(want.simBits))
	}
	if want.sumBits != 0 && got.sumBits != want.sumBits {
		t.Errorf("%s: checksum = %#x, want %#x", name, got.sumBits, want.sumBits)
	}
	if want.tri >= 0 && got.tri != want.tri {
		t.Errorf("%s: Triangles = %d, want %d", name, got.tri, want.tri)
	}
	if want.sumT >= 0 && got.sumT != want.sumT {
		t.Errorf("%s: SumT = %d, want %d", name, got.sumT, want.sumT)
	}
}

// runGoldenConfig executes one named table entry at the default worker
// count and asserts its pins.
func runGoldenConfig(t *testing.T, name string) {
	t.Helper()
	g := gen.MustLoad("fb-sim")
	for _, cfg := range goldenConfigs {
		if cfg.name == name {
			checkGoldenRun(t, cfg.name, cfg.run(t, g, 0, nil), cfg.want)
			return
		}
	}
	t.Fatalf("unknown golden configuration %q", name)
}

func TestGoldenPull(t *testing.T)       { runGoldenConfig(t, "pull") }
func TestGoldenCached(t *testing.T)     { runGoldenConfig(t, "cached") }
func TestGoldenNoise(t *testing.T)      { runGoldenConfig(t, "noise") }
func TestGoldenPush(t *testing.T)       { runGoldenConfig(t, "push") }
func TestGoldenReplicated(t *testing.T) { runGoldenConfig(t, "replicated") }
func TestGoldenJaccard(t *testing.T)    { runGoldenConfig(t, "jaccard") }
func TestGoldenGrid(t *testing.T)       { runGoldenConfig(t, "grid") }

// TestGoldenWorkerSweep re-runs the full golden table at Workers ∈
// {1, 2, 4, 8} and asserts that every pinned quantity matches the
// sequential seed values exactly. This is the determinism contract of
// the parallel scheduler (DESIGN.md §4): worker count trades host
// wall-clock for cores and changes nothing else.
func TestGoldenWorkerSweep(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	workerCounts := []int{1, 2, 4, 8}
	if testing.Short() {
		workerCounts = []int{1, 4}
	}
	for _, wk := range workerCounts {
		wk := wk
		t.Run(fmt.Sprintf("workers=%d", wk), func(t *testing.T) {
			for _, cfg := range goldenConfigs {
				checkGoldenRun(t, cfg.name, cfg.run(t, g, wk, nil), cfg.want)
			}
		})
	}
}

// TestEngineCachedAllocBudget is TestEngineFetchAllocFree's cached-engine
// companion guard: the allocation-free metadata plane (pooled entries/
// blocks/AVL nodes, packed keys, lane tables, open-addressed seen set)
// brings a full CLaMPI-cached run from ~302k heap allocations to about a
// thousand — cache construction plus a bounded number of slab/pool
// ramp-ups. The budget leaves modest headroom; the benchmark-visible
// number (BENCH_*.json) is the precise trajectory.
func TestEngineCachedAllocBudget(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	opt := goldenBase()
	opt.Caching = true
	opt.OffsetsCacheBytes = 1 << 14
	opt.AdjCacheBytes = 1 << 16
	opt.AdjScorePolicy = lcc.ScoreDegree
	lcc.Run(g, opt) // warm dataset cache and one-time state
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if _, err := lcc.Run(g, opt); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	allocs := m1.Mallocs - m0.Mallocs
	// The seed's cached run allocated ~300k objects (per-miss entries,
	// boxed heap snapshots, map traffic). Setup for 4 ranks x 2 caches
	// plus pool ramp-up fits comfortably in 2000.
	const budget = 2000
	if allocs > budget {
		t.Errorf("cached run allocated %d objects, budget %d: per-access allocation crept back into the cache", allocs, budget)
	}
}

// TestEngineFetchAllocFree guards the engine's end-to-end allocation
// profile: a full non-cached distributed run on a small graph must stay
// within a fixed allocation budget dominated by setup (windows, partition,
// per-rank state) — i.e. the per-fetch hot path contributes nothing. The
// seed substrate allocated ~6 heap objects per remote fetch; with ~82k
// arcs the old budget would be in the hundreds of thousands.
func TestEngineFetchAllocFree(t *testing.T) {
	g := gen.MustLoad("fb-sim")
	lcc.Run(g, goldenBase()) // warm dataset cache and one-time state
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if _, err := lcc.Run(g, goldenBase()); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	allocs := m1.Mallocs - m0.Mallocs
	// Setup allocates a few hundred objects (partition extraction, window
	// headers, per-rank stats); ~123k remote fetches would add ~600k under
	// the seed's per-fetch allocation profile.
	const budget = 5000
	if allocs > budget {
		t.Errorf("non-cached run allocated %d objects, budget %d: per-fetch allocation crept back in", allocs, budget)
	}
}
