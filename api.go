package repro

import (
	"context"
	"io"

	"repro/internal/clampi"
	"repro/internal/disttc"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/grid"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/part"
	"repro/internal/rma"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/spmat"
	"repro/internal/tric"
)

// --- graphs ---------------------------------------------------------------

// Graph is an immutable CSR graph (sorted adjacency lists, no self-loops or
// multi-edges).
type Graph = graph.Graph

// V is the vertex id type.
type V = graph.V

// Edge is a directed arc (an unordered pair for undirected builders).
type Edge = graph.Edge

// Kind distinguishes directed from undirected graphs.
type Kind = graph.Kind

// Graph kinds.
const (
	Undirected = graph.Undirected
	Directed   = graph.Directed
)

// GraphStore is the adjacency-access contract every graph representation
// satisfies — plain in-RAM CSR (*Graph), varint/delta-compressed CSR, and
// file-backed CSR — so every engine entrypoint accepts any of them. The
// simulated model plane never observes which one a run used: results and
// SimTime are bit-identical across representations (DESIGN.md §9).
type GraphStore = graph.Store

// BuildGraph constructs a simple CSR graph from an edge list, dropping
// self-loops and collapsing multi-edges (§II-A).
func BuildGraph(kind Kind, n int, edges []Edge) (*Graph, error) {
	return graph.Build(kind, n, edges)
}

// ReadEdgeList parses a SNAP-style "src dst" text stream.
func ReadEdgeList(r io.Reader, kind Kind) (*Graph, error) {
	return graph.ReadEdgeList(r, kind)
}

// ReadBinaryGraph reads the binary CSR container written by
// WriteBinaryGraph or cmd/graphgen, fully materialized as a plain *Graph.
func ReadBinaryGraph(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// ReadBinaryGraphStore reads the binary CSR container preserving its
// on-disk representation: raw files load as plain *Graph, varint files as
// the compressed CSR — at roughly a third of the plain footprint.
func ReadBinaryGraphStore(r io.Reader) (GraphStore, error) { return graph.ReadBinaryStore(r) }

// WriteBinaryGraph writes the versioned, per-section-checksummed binary
// CSR container format.
func WriteBinaryGraph(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// WriteBinaryGraphStore writes any representation to the binary container:
// a compressed store writes its varint/delta stream verbatim, everything
// else the raw plain image.
func WriteBinaryGraphStore(w io.Writer, st GraphStore) error {
	return graph.WriteBinaryStore(w, st)
}

// OpenBinaryGraph maps a binary container file as a file-backed store:
// adjacency reads are served from the mapped (or pread) file with only the
// offset index resident, so graphs larger than RAM open in seconds.
func OpenBinaryGraph(path string) (GraphStore, error) { return graph.OpenBinary(path) }

// CompressGraph re-encodes g's adjacency as the varint/delta compressed
// CSR (DESIGN.md §9) — same answers through GraphStore, ~3× smaller.
func CompressGraph(g *Graph) GraphStore { return graph.CompressGraph(g) }

// GraphCorruptError is the typed failure of every binary-container read: a
// bad magic/version, an implausible header, or a section whose CRC does not
// match. Corrupt files fail loud; they never load garbage.
type GraphCorruptError = graph.CorruptError

// Prepare applies the paper's §II-B preprocessing: iterated degree<2
// removal plus a seeded random relabeling.
func Prepare(g *Graph, seed uint64) *Graph { return gen.Prepare(g, seed) }

// --- datasets and generators ----------------------------------------------

// DatasetNames lists the registered evaluation datasets (Table II
// stand-ins; see DESIGN.md §1 for the mapping to the paper's graphs).
func DatasetNames() []string { return gen.Names() }

// LoadDataset generates (memoized) and prepares a registered dataset.
func LoadDataset(name string) (*Graph, error) { return gen.Load(name) }

// MustLoadDataset is LoadDataset for names known at compile time.
func MustLoadDataset(name string) *Graph { return gen.MustLoad(name) }

// LoadDatasetStore loads a dataset as the cheapest representation that
// fits a resident-memory budget: plain when it fits, then compressed, then
// file-backed straight from the disk cache (budget ≤ 0: unconstrained,
// plain). With the disk cache enabled (SetGraphCacheDir or
// LCC_GRAPH_CACHE) large graphs load from their binary file instead of
// regenerating.
func LoadDatasetStore(name string, budget int64) (GraphStore, error) {
	return gen.LoadStore(name, budget)
}

// ScaleDatasetNames lists the scale-series datasets (~100× the golden
// suite's edge count; the BENCH_MODE=scale subjects). They load like any
// dataset but are excluded from DatasetNames so sweeps never pick them up.
func ScaleDatasetNames() []string { return gen.ScaleNames() }

// SetGraphCacheDir enables the dataset disk cache: generated graphs
// persist to dir in the binary container format on first load and load
// from it afterwards. The LCC_GRAPH_CACHE environment variable sets the
// same default.
func SetGraphCacheDir(dir string) { gen.SetCacheDir(dir) }

// RMAT generates an R-MAT graph with the paper's default skew parameters
// (a=0.57, b=c=0.19, d=0.05; §IV-A). The result is raw: apply Prepare
// before distributing it.
func RMAT(scale, edgeFactor int, kind Kind, seed uint64) *Graph {
	return gen.RMAT(gen.DefaultRMAT(scale, edgeFactor, kind, seed))
}

// ErdosRenyi generates a uniform random graph (the Fig. 4 baseline).
func ErdosRenyi(n, m int, kind Kind, seed uint64) *Graph {
	return gen.ErdosRenyi(n, m, kind, seed)
}

// BarabasiAlbert generates a preferential-attachment power-law graph.
func BarabasiAlbert(n, m int, kind Kind, seed uint64) *Graph {
	return gen.BarabasiAlbert(n, m, kind, seed)
}

// WattsStrogatz generates the small-world graph of the paper's reference
// [9] (the origin of the LCC metric): a ring lattice of degree k with each
// edge rewired with probability beta.
func WattsStrogatz(n, k int, beta float64, seed uint64) *Graph {
	return gen.WattsStrogatz(n, k, beta, seed)
}

// RingLatticeLCC returns the closed-form clustering coefficient of the
// beta=0 Watts–Strogatz lattice, 3(k−2)/(4(k−1)).
func RingLatticeLCC(k int) float64 { return gen.RingLatticeLCC(k) }

// Kronecker generates a stochastic Kronecker graph from a 2x2 initiator
// [[a,b],[c,d]] raised to the given scale (R-MAT's exact counterpart).
func Kronecker(scale int, a, b, c, d float64, kind Kind, seed uint64) *Graph {
	return gen.Kronecker(scale, a, b, c, d, kind, seed)
}

// ReadMatrixMarket parses a MatrixMarket coordinate file (the SuiteSparse
// exchange format): symmetric matrices become undirected graphs, general
// ones directed.
func ReadMatrixMarket(r io.Reader) (*Graph, error) { return graph.ReadMatrixMarket(r) }

// WriteMatrixMarket writes g as a MatrixMarket coordinate pattern file.
func WriteMatrixMarket(w io.Writer, g *Graph) error { return graph.WriteMatrixMarket(w, g) }

// --- intersection kernels ---------------------------------------------------

// Method selects the adjacency-intersection kernel (§II-C).
type Method = intersect.Method

// Intersection methods: sorted set intersection (Algorithm 2), binary
// search (Algorithm 1), the Eq. (3) hybrid, and the H-INDEX-style hash
// intersection surveyed in §V-A.
const (
	MethodSSI    = intersect.MethodSSI
	MethodBinary = intersect.MethodBinary
	MethodHybrid = intersect.MethodHybrid
	MethodHash   = intersect.MethodHash
)

// --- distribution -----------------------------------------------------------

// Scheme selects the 1D vertex distribution (§III-A).
type Scheme = part.Scheme

// Distribution schemes: the paper's contiguous Block default, the cyclic
// alternative it cites, and the arc-balanced contiguous variant that
// addresses the §IV-D-2 load imbalance.
const (
	Block     = part.Block
	Cyclic    = part.Cyclic
	BlockArcs = part.BlockArcs
)

// --- the machine model ------------------------------------------------------

// CostModel calibrates the simulated machine (network α/β, DRAM, cache and
// compute charges). See rma.DefaultCostModel for the Cray-Aries-like
// defaults the evaluation uses.
type CostModel = rma.CostModel

// DefaultCostModel returns the evaluation's calibration.
func DefaultCostModel() CostModel { return rma.DefaultCostModel() }

// NoiseSpec describes deterministic per-rank execution noise (proportional
// jitter plus periodic OS detours). Set CostModel.Noise to run any engine
// under identical, reproducible noise; results are unaffected, only
// simulated times change.
type NoiseSpec = rma.NoiseSpec

// FaultSpec describes a deterministic, seeded fault schedule for the RMA
// and exchange substrates: transient Get/Put/Accumulate failures recovered
// by retry with capped exponential backoff, per-op latency spikes, rank
// stall windows, dropped exchange messages recovered by retransmission,
// and CLaMPI cache unavailability degraded to direct RMA. Set any engine's
// Options.Faults to run under it; computed results are bit-identical to
// the fault-free run — faults cost simulated time, never correctness — and
// SimTime is reproducible for a given (spec, config) at any worker count.
type FaultSpec = fault.Spec

// ParseFaultSpec parses a command-line fault specification of the form
// "seed=N,get=P,put=P,acc=P,spike=P:NS,stall=N:NS,drop=P,cache=P" (see
// fault.ParseSpec for the full grammar; "chaos" selects a ready-made
// mixed-fault preset). An empty string yields (nil, nil): faults off.
func ParseFaultSpec(s string) (*FaultSpec, error) { return fault.ParseSpec(s) }

// ChaosFaultSpec returns the mixed-fault preset used by the chaos CI lane:
// low-rate transient failures on every RMA class, latency spikes, periodic
// stalls, dropped messages and rare cache faults, all keyed on seed.
func ChaosFaultSpec(seed uint64) FaultSpec { return fault.ChaosSpec(seed) }

// --- LCC / TC engines -------------------------------------------------------

// LCCOptions configure the asynchronous distributed engine (Algorithm 3 +
// §III-B caching). The Workers field bounds how many simulated ranks
// execute concurrently on host goroutines (0 = GOMAXPROCS); every engine
// result is bit-identical at any worker count, so Workers is purely a
// host-performance knob. TriCOptions, DistTCOptions and LCC2DOptions
// carry the same field.
type LCCOptions = lcc.Options

// StorageMode selects the host-side representation of the per-rank local
// CSRs (LCCOptions.Storage): plain arrays, varint/delta-compressed, or
// automatic under LCCOptions.MemBudgetBytes. Purely a host memory/speed
// trade — every simulated bit is identical across modes (DESIGN.md §9).
type StorageMode = lcc.StorageMode

// Storage modes.
const (
	StorageAuto       = lcc.StorageAuto
	StoragePlain      = lcc.StoragePlain
	StorageCompressed = lcc.StorageCompressed
)

// LCCResult is the output of a distributed run: per-vertex LCC scores,
// the global triangle count, the simulated job time, and per-rank
// communication/caching statistics.
type LCCResult = lcc.Result

// RunLCC executes the paper's fully asynchronous distributed TC+LCC
// computation on a simulated p-rank machine. g may be any GraphStore —
// plain, compressed, or file-backed; results are identical.
func RunLCC(g GraphStore, opt LCCOptions) (*LCCResult, error) { return lcc.Run(g, opt) }

// SharedResult is the output of the single-node computation.
type SharedResult = lcc.SharedResult

// SharedLCC computes TC+LCC on a single node (§IV-C baseline and ground
// truth).
func SharedLCC(g *Graph, method Method) *SharedResult { return lcc.SharedLCC(g, method) }

// ForwardLCC computes TC+LCC on a single node with the Schank–Wagner
// forward algorithm over a degree-ordered orientation (§V reference), an
// independent baseline that needs no upper-triangle offsetting.
func ForwardLCC(g *Graph) (*SharedResult, error) { return lcc.ForwardLCC(g) }

// Triangle is one enumerated triangle.
type Triangle = lcc.Triangle

// ListTriangles enumerates every triangle of an undirected graph exactly
// once, in deterministic order.
func ListTriangles(g *Graph) ([]Triangle, error) { return lcc.ListTriangles(g) }

// AlgebraicResult is the output of the masked-SpGEMM triangle computation.
type AlgebraicResult = spmat.TriangleCountResult

// AlgebraicTriangles counts triangles with the algebraic method the paper
// surveys in §V-B: C = L·U ∘ A for undirected graphs, C = A·A ∘ A for
// directed ones. An independent cross-check for the edge-centric engines.
func AlgebraicTriangles(g *Graph) (*AlgebraicResult, error) {
	if g.Kind() == Undirected {
		return spmat.CountLU(g)
	}
	return spmat.CountAAA(g)
}

// ScorePolicy selects the C_adj eviction score: CLaMPI's LRU+positional
// default, the paper's degree scores (§III-B-2), or the future-work
// alternatives (§VI iii).
type ScorePolicy = lcc.ScorePolicy

// Eviction score policies.
const (
	ScoreLRU           = lcc.ScoreLRU
	ScoreDegree        = lcc.ScoreDegree
	ScoreCostBenefit   = lcc.ScoreCostBenefit
	ScoreDegreeRecency = lcc.ScoreDegreeRecency
)

// PushAggregation selects how the push-mode engine ships triangle
// contributions: direct per-corner accumulates or locally combined batches.
type PushAggregation = lcc.PushAggregation

// Push aggregation modes.
const (
	PushDirect  = lcc.PushDirect
	PushBatched = lcc.PushBatched
)

// LCCPushOptions configure a push-mode distributed run (future work ii:
// the push side of the push–pull dichotomy).
type LCCPushOptions = lcc.PushOptions

// RunLCCPush computes LCC with the push-mode engine: each triangle is
// discovered exactly once and its two non-discovering corners receive
// their contribution through one-sided accumulates. Results are
// bit-identical to RunLCC on undirected graphs; directed graphs are
// rejected.
func RunLCCPush(g GraphStore, opt LCCPushOptions) (*LCCResult, error) {
	return lcc.RunPush(g, opt)
}

// LCCReplicatedOptions configure a replicated-groups ("1.5D") run: c graph
// copies over p ranks trade memory for communication (future work i, the
// 2.5D idea of [41] applied to 1D distribution).
type LCCReplicatedOptions = lcc.ReplicatedOptions

// RunLCCReplicated computes LCC over the replicated-groups distribution.
// Results are bit-identical to RunLCC; the remote-read fraction falls as
// the replication factor grows, at a proportional per-rank memory cost.
func RunLCCReplicated(g GraphStore, opt LCCReplicatedOptions) (*LCCResult, error) {
	return lcc.RunReplicated(g, opt)
}

// ReplicaWindowBytes reports the per-rank window memory a replicated run
// would need — the cost side of the memory-for-communication trade.
func ReplicaWindowBytes(g *Graph, ranks, replication int) (int64, error) {
	return lcc.ReplicaWindowBytes(g, ranks, replication)
}

// JaccardResult is the output of a distributed Jaccard-similarity run.
type JaccardResult = lcc.JaccardResult

// RunJaccard computes per-edge Jaccard similarity on the same asynchronous
// RMA substrate as RunLCC — the paper's future-work direction (ii).
func RunJaccard(g GraphStore, opt LCCOptions) (*JaccardResult, error) {
	return lcc.RunJaccard(g, opt)
}

// TriCOptions configure the TriC baseline (§IV-B).
type TriCOptions = tric.Options

// TriCResult is the output of a TriC run.
type TriCResult = tric.Result

// RunTriC executes the TriC query-response baseline over the simulated BSP
// substrate.
func RunTriC(g GraphStore, opt TriCOptions) (*TriCResult, error) { return tric.Run(g, opt) }

// DistTCOptions configure the DistTC baseline (Hoang et al., HPEC'19; §I,
// §V-C).
type DistTCOptions = disttc.Options

// DistTCResult is the output of a DistTC run, including the
// precompute/compute split and the shadow-edge replication factor.
type DistTCResult = disttc.Result

// RunDistTC executes the DistTC shadow-edge baseline: communication-free
// triangle counting after a precomputed ghost-edge exchange.
func RunDistTC(g GraphStore, opt DistTCOptions) (*DistTCResult, error) { return disttc.Run(g, opt) }

// LCC2DOptions configure the asynchronous 2D block engine (future work i,
// §VI). Ranks must be a perfect square.
type LCC2DOptions = grid.Options

// LCC2DResult is the output of a 2D run, including the per-rank traffic
// counters the 1D-vs-2D comparison (ablation A9) reports.
type LCC2DResult = grid.Result

// RunLCC2D executes TC+LCC over a √p×√p block distribution with the same
// fully asynchronous one-sided discipline as RunLCC: each rank pulls the
// 2(√p−1) operand blocks it needs and never synchronizes.
func RunLCC2D(g GraphStore, opt LCC2DOptions) (*LCC2DResult, error) { return grid.Run(g, opt) }

// --- cancellation and supervised serving ------------------------------------

// ErrRunCanceled is wrapped by every error a canceled engine run returns:
// the simulated ranks observed the context at a checkpoint or barrier and
// unwound cleanly. errors.Is(err, ErrRunCanceled) identifies it; when a
// deadline caused the cancellation, context.DeadlineExceeded is also in
// the chain.
var ErrRunCanceled = sched.ErrRunCanceled

// PanicError is what an engine-goroutine panic becomes: a typed run error
// carrying the simulated rank, the panic value, and the goroutine stack.
// The panicking run fails; the process does not.
type PanicError = sched.PanicError

// CrashError reports a crash-stop fault (FaultSpec.CrashAtOp) in fail-fast
// mode: the deterministic, typed outcome of the simulated rank's death.
type CrashError = fault.CrashError

// RunLCCCtx is RunLCC under a context: cancellation or deadline expiry
// unwinds the simulated ranks at their next checkpoint and returns an
// error wrapping ErrRunCanceled. RunLCCPushCtx, RunLCCReplicatedCtx and
// RunJaccardCtx do the same for their engines.
func RunLCCCtx(ctx context.Context, g GraphStore, opt LCCOptions) (*LCCResult, error) {
	return lcc.RunCtx(ctx, g, opt)
}

// RunLCCPushCtx is RunLCCPush under a context.
func RunLCCPushCtx(ctx context.Context, g GraphStore, opt LCCPushOptions) (*LCCResult, error) {
	return lcc.RunPushCtx(ctx, g, opt)
}

// RunLCCReplicatedCtx is RunLCCReplicated under a context.
func RunLCCReplicatedCtx(ctx context.Context, g GraphStore, opt LCCReplicatedOptions) (*LCCResult, error) {
	return lcc.RunReplicatedCtx(ctx, g, opt)
}

// RunJaccardCtx is RunJaccard under a context.
func RunJaccardCtx(ctx context.Context, g GraphStore, opt LCCOptions) (*JaccardResult, error) {
	return lcc.RunJaccardCtx(ctx, g, opt)
}

// Snapshot is the immutable per-graph half of the engine setup —
// partition, per-rank CSRs, window layouts, delegation — shared by every
// run against the same distribution. Build once, query many times; each
// run gets fresh communicator, clock and cache state, so results are
// bit-identical to the corresponding one-shot entrypoint.
type Snapshot = lcc.Snapshot

// NewSnapshot distributes g over ranks once for repeated querying.
func NewSnapshot(g GraphStore, ranks int, scheme Scheme, delegateBytes int) (*Snapshot, error) {
	return lcc.NewSnapshot(g, ranks, scheme, delegateBytes)
}

// The supervised serving layer (internal/serve, cmd/lccd): Instances own
// a Snapshot and move through loading → ready → busy → unhealthy →
// exited, plus parked (snapshot evicted, config retained, transparently
// rebuilt on the next query); a Supervisor manages them by name, enforces
// a global memory budget by LRU parking, and — given a manifest store —
// persists instance configs so a daemon restart (even kill -9) recovers
// the fleet. Runs carry deadlines, cancellation, panic isolation,
// admission control and bounded priority queueing.
type (
	// ServeInstance is one loaded graph serving supervised queries.
	ServeInstance = serve.Instance
	// ServeConfig describes what an instance loads and how it admits runs.
	ServeConfig = serve.Config
	// ServeQuery selects the engine and per-run options of one query.
	ServeQuery = serve.Query
	// ServeResult summarizes one completed supervised run.
	ServeResult = serve.QueryResult
	// ServeSupervisor is the named-instance registry behind cmd/lccd.
	ServeSupervisor = serve.Supervisor
	// ServeManifest is the durable record of one loaded instance.
	ServeManifest = serve.Manifest
	// ServeManifestStore persists instance manifests in a state directory.
	ServeManifestStore = serve.ManifestStore
	// ServeQueueTimeoutError carries the measured wait of a run whose
	// deadline-in-queue expired (wraps ErrServeQueueTimeout).
	ServeQueueTimeoutError = serve.QueueTimeoutError
	// ServeStallError is the run watchdog's diagnostic: per-rank progress
	// counters and worker stacks at the moment a run was force-canceled
	// for making no progress (wraps ErrServeStalled).
	ServeStallError = serve.StallError
	// ServeScrubError names the instance, rank and section whose resident
	// checksum failed verification (wraps ErrServeQuarantined).
	ServeScrubError = serve.ScrubError
	// ServeShedError is a structured global-admission rejection: run cap
	// (wraps ErrServeServerBusy) or memory brownout (ErrServeBrownout).
	ServeShedError = serve.ShedError
	// ServeScrubber is the background integrity-scrubbing loop
	// (ServeSupervisor.StartScrubber).
	ServeScrubber = serve.Scrubber
	// IntegrityError is a snapshot checksum mismatch: rank, section,
	// wanted and observed CRC-32C.
	IntegrityError = lcc.IntegrityError
)

// NewServeInstance creates an instance in the loading state; Start loads
// it.
func NewServeInstance(name string, cfg ServeConfig) *ServeInstance {
	return serve.NewInstance(name, cfg)
}

// NewServeSupervisor creates an empty instance registry.
func NewServeSupervisor() *ServeSupervisor { return serve.NewSupervisor() }

// NewServeManifestStore opens (creating if needed) a manifest state
// directory; hand it to ServeSupervisor.SetManifestStore for durability.
func NewServeManifestStore(dir string) (*ServeManifestStore, error) {
	return serve.NewManifestStore(dir)
}

// Typed serving errors (errors.Is targets).
var (
	ErrServeAlreadyRunning = serve.ErrAlreadyRunning
	ErrServeInstanceExited = serve.ErrInstanceExited
	ErrServeNotReady       = serve.ErrNotReady
	ErrServeUnhealthy      = serve.ErrUnhealthy
	ErrServeBusy           = serve.ErrBusy
	ErrServeUnknown        = serve.ErrUnknownInstance
	// ErrServeQueueTimeout rejects a queued run whose deadline-in-queue
	// expired before a slot freed.
	ErrServeQueueTimeout = serve.ErrQueueTimeout
	// ErrServeManifestCorrupt / ErrServeManifestVersion classify manifests
	// recovery skips.
	ErrServeManifestCorrupt = serve.ErrManifestCorrupt
	ErrServeManifestVersion = serve.ErrManifestVersion
	// ErrServeStalled marks a run the watchdog force-canceled for lack of
	// progress (check before ErrRunCanceled — a stall unwinds through the
	// cancellation plane).
	ErrServeStalled = serve.ErrStalled
	// ErrServeQuarantined marks an instance whose resident snapshot
	// failed integrity verification; the scrubber auto-reloads it.
	ErrServeQuarantined = serve.ErrQuarantined
	// ErrServeServerBusy / ErrServeBrownout are the server-wide shedding
	// sentinels: fleet run cap reached, memory over budget with nothing
	// evictable.
	ErrServeServerBusy = serve.ErrServerBusy
	ErrServeBrownout   = serve.ErrBrownout
)

// --- caching ----------------------------------------------------------------

// CacheConfig tunes a CLaMPI cache instance (buffer capacity, hash table,
// consistency mode, adaptive resizing; §II-F).
type CacheConfig = clampi.Config

// CacheStats reports hit/miss/eviction counters of a cache instance.
type CacheStats = clampi.Stats

// Cache consistency modes.
const (
	CacheTransparent = clampi.Transparent
	CacheAlways      = clampi.AlwaysCache
	CacheUserDefined = clampi.UserDefined
)
