#!/bin/sh
# bench.sh [output.json] — run the micro-benchmarks of the simulated hot
# path with -benchmem and emit a JSON record, seeding the repository's
# perf trajectory (BENCH_1.json, BENCH_2.json, ... — one file per PR that
# moves a hot-path number).
#
# Each benchmark's ns/op is the MINIMUM over BENCH_RUNS passes (default 3):
# on shared/noisy machines the min is the standard robust estimator of the
# code's actual speed — noise only ever adds time — while alloc counts are
# deterministic and identical across passes.
#
# Selection: the substrate micro-benchmarks (RMA get/accumulate, CLaMPI
# hit/miss) plus the two end-to-end engine runs whose allocation profile
# the zero-copy substrate is accountable for. Macro experiment benchmarks
# (Fig7, Fig9, ...) are excluded: they take minutes and measure modeled
# time, not host performance.
#
# BENCH_MODE=serve switches to the serving-layer benchmarks (internal/
# serve): sustained QPS at saturation plus the queued-overload regime (2×
# clients over run slots, overflow absorbed by the admission queue), and
# tags the record "mode":"serve". Serve records measure a different
# quantity — per-query latency through the supervision plane, not
# substrate hot paths — so benchdiff refuses to diff records across modes.
#
# BENCH_MODE=scale delegates to cmd/scalebench: it materializes a
# scale-series dataset (default rmat-s21-ef256, ~100× the golden suite's
# edge count) through the graph disk cache and records edge count, bytes
# on disk, varint/delta compression ratio, checksummed load wall-time and
# resident-set peak, tagged "mode":"scale". Knobs: BENCH_SCALE_DATASET,
# LCC_GRAPH_CACHE (default .graph-cache). The first run against an empty
# cache generates the dataset — minutes for half a billion edges.
set -e

out="${1:-}"
if [ -z "$out" ]; then
    i=1
    while [ -e "BENCH_${i}.json" ]; do i=$((i + 1)); done
    out="BENCH_${i}.json"
fi

mode="${BENCH_MODE:-micro}"
case "$mode" in
micro)
    pattern='^(BenchmarkRMAGet$|BenchmarkRMAGetReadOnly$|BenchmarkRMAAccumulate$|BenchmarkRMAFetchAdd$|BenchmarkClampiHit$|BenchmarkClampiMissEvict$|BenchmarkIntersectHybrid$|BenchmarkIntersectSweep$|BenchmarkKernelMergeBranchFree$|BenchmarkKernelStampProbe$|BenchmarkKernelFingerBinary$|BenchmarkFetchLocal$|BenchmarkFetchRemoteMiss$|BenchmarkFetchCachedHit$|BenchmarkEngineNonCached$|BenchmarkEngineCached$|BenchmarkEngineNonCachedParallel$|BenchmarkEngineCachedParallel$)'
    pkgs='. ./internal/lcc'
    ;;
serve)
    pattern='^(BenchmarkServeSustainedQPS$|BenchmarkServeQueuedOverload$)'
    pkgs='./internal/serve'
    ;;
scale)
    # The scale record is a dataset-plane measurement, not a go-test
    # benchmark sweep; cmd/scalebench emits the full record itself.
    go run ./cmd/scalebench \
        -dataset "${BENCH_SCALE_DATASET:-rmat-s21-ef256}" \
        -cache "${LCC_GRAPH_CACHE:-.graph-cache}" \
        -out "$out"
    echo "wrote $out" >&2
    exit 0
    ;;
*)
    echo "bench.sh: unknown BENCH_MODE \"$mode\" (want micro, serve or scale)" >&2
    exit 2
    ;;
esac

# Environment provenance: engine wall-clock now scales with cores (the
# rank scheduler runs simulated ranks in parallel), so records from hosts
# with different effective parallelism are not comparable. benchdiff
# refuses to diff times across differing go_max_procs.
gmp="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}"
cpu=$(awk -F': *' '/^model name/ { print $2; exit }' /proc/cpuinfo 2>/dev/null)
[ -n "$cpu" ] || cpu="unknown"

runs="${BENCH_RUNS:-3}"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
i=1
while [ "$i" -le "$runs" ]; do
    echo "# bench pass $i/$runs" >&2
    # The fetch-flavor benches live next to the engine internals
    # (internal/lcc); everything else is in the root package.
    go test -run '^$' -bench "$pattern" -benchmem -benchtime=1s $pkgs | tee -a "$raw" >&2
    i=$((i + 1))
done

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gmp="$gmp" -v cpu="$cpu" -v mode="$mode" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (!(name in best) || $3 + 0 < best[name] + 0) {
        if (!(name in best)) order[n++] = name
        best[name] = $3
        iters[name] = $2
        bytes[name] = $5
        allocs[name] = $7
    }
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"go_max_procs\": %d,\n  \"cpu_model\": \"%s\",\n  \"faults\": \"off\",\n  \"mode\": \"%s\",\n  \"benchmarks\": [\n", date, gmp, cpu, mode
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n",
               name, iters[name], best[name], bytes[name], allocs[name], (i < n - 1 ? "," : "")
    }
    printf "  ]\n}\n"
}' "$raw" > "$out"

echo "wrote $out" >&2
