// Replication demonstrates the repository's "1.5D" replicated-groups
// distribution — the paper's future-work direction (i): spending memory to
// buy communication, the idea behind 2.5D matrix algorithms [41] applied
// to the paper's 1D vertex distribution.
//
// With p ranks and c graph copies, the ranks form c groups of q = p/c
// slots. The graph is partitioned q ways (coarser than p ways), each group
// holds a full copy, and the owned vertices of every partition are
// interleaved over the c replicas. Each remote fetch now misses a 1/q
// slice instead of a 1/p slice, so the remote-read fraction falls from
// (p-1)/p toward (q-1)/q — while every rank's window grows by c. The
// engine stays fully asynchronous: no reduction, no barrier, bit-identical
// results.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const p = 16
	g := repro.Prepare(repro.RMAT(14, 16, repro.Undirected, 5), 5)
	fmt.Printf("R-MAT S14 EF16: |V|=%d |E|=%d, p=%d ranks\n\n", g.NumVertices(), g.NumEdges(), p)

	fmt.Printf("%3s  %14s  %10s  %9s  %12s  %11s\n",
		"c", "groups x slots", "time (ms)", "speedup", "remote frac", "mem / rank")

	var baseTime float64
	var wantTriangles int64
	for _, c := range []int{1, 2, 4, 8} {
		res, err := repro.RunLCCReplicated(g, repro.LCCReplicatedOptions{
			Options:     repro.LCCOptions{Ranks: p, Method: repro.MethodHybrid, DoubleBuffer: true},
			Replication: c,
		})
		if err != nil {
			log.Fatal(err)
		}
		if c == 1 {
			baseTime = res.SimTime
			wantTriangles = res.Triangles
		} else if res.Triangles != wantTriangles {
			log.Fatalf("c=%d changed the triangle count: %d != %d", c, res.Triangles, wantTriangles)
		}
		mem, err := repro.ReplicaWindowBytes(g, p, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d  %10dx%-3d  %10.1f  %8.2fx  %11.0f%%  %8.2f MB\n",
			c, c, p/c, res.SimTime/1e6, baseTime/res.SimTime,
			100*res.RemoteReadFraction(), float64(mem)/1e6)
	}

	fmt.Println("\nevery row computed identical LCC scores; only the communication pattern")
	fmt.Println("and the per-rank memory differ — the 2.5D memory-for-communication trade.")
}
