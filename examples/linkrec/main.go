// Link recommendation with LCC and triangle structure — the paper's second
// motivating application: "clustering coefficient is used to locate
// thematic relationships by looking at the graph of hyperlinks" (Eckmann &
// Moses; §I).
//
// The example runs distributed LCC on a directed web-like graph, then
// recommends new links: pairs of pages that share many common neighbours
// (an almost-closed triangle) but are not yet connected. Candidate sources
// are drawn from thematically coherent pages (high LCC), where a missing
// link is most meaningful.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	g := repro.MustLoadDataset("wiki-sim") // wiki-en stand-in (directed)
	fmt.Printf("hyperlink graph: %d pages, %d links (directed)\n",
		g.NumVertices(), g.NumEdges())

	res, err := repro.RunLCC(g, repro.LCCOptions{
		Ranks:             16,
		Method:            repro.MethodHybrid,
		DoubleBuffer:      true,
		Caching:           true,
		OffsetsCacheBytes: 16 * g.NumVertices(),
		AdjCacheBytes:     32 << 20,
		DegreeScores:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("computed LCC for every page in %.1f ms of simulated time on 16 nodes\n",
		res.SimTime/1e6)

	// Pick thematically coherent source pages: high LCC with enough links
	// for the signal to mean something.
	type page struct {
		v   repro.V
		lcc float64
	}
	var coherent []page
	for v, c := range res.LCC {
		if g.OutDegree(repro.V(v)) >= 8 && c > 0 {
			coherent = append(coherent, page{repro.V(v), c})
		}
	}
	sort.Slice(coherent, func(i, j int) bool { return coherent[i].lcc > coherent[j].lcc })
	if len(coherent) > 50 {
		coherent = coherent[:50]
	}

	// For each coherent page, find the strongest non-linked 2-hop
	// neighbour by common-neighbour count (the triangle-closing score).
	type rec struct {
		from, to repro.V
		common   int
	}
	var recs []rec
	for _, p := range coherent {
		counts := map[repro.V]int{}
		for _, mid := range g.Adj(p.v) {
			for _, cand := range g.Adj(mid) {
				if cand != p.v && !g.HasEdge(p.v, cand) {
					counts[cand]++
				}
			}
		}
		bestV, best := repro.V(0), 0
		for cand, c := range counts {
			if c > best || (c == best && cand < bestV) {
				bestV, best = cand, c
			}
		}
		if best >= 3 {
			recs = append(recs, rec{p.v, bestV, best})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].common != recs[j].common {
			return recs[i].common > recs[j].common
		}
		return recs[i].from < recs[j].from
	})

	fmt.Printf("\ntop link recommendations (missing edges closing the most triangles):\n")
	for i, r := range recs {
		if i == 10 {
			break
		}
		fmt.Printf("  page %-7d -> page %-7d closes %d open triangles (source LCC %.3f)\n",
			r.from, r.to, r.common, res.LCC[r.from])
	}
	if len(recs) == 0 {
		fmt.Println("  (no candidates above the threshold)")
	}
}
