// Noise demonstrates why asynchrony matters on real machines: OS jitter.
// The same deterministic per-rank noise is injected into the paper's
// asynchronous RMA engine and into the bulk-synchronous TriC baseline
// through the shared cost model. A BSP program pays the *worst*
// perturbation across all ranks at every barrier; an asynchronous program
// pays only its own. Watch the slowdown gap open as the noise grows —
// while every triangle count stays bit-identical.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.MustLoadDataset("rmat-s14-ef8")
	const ranks = 8
	fmt.Printf("dataset rmat-s14-ef8: |V|=%d |E|=%d, %d ranks\n\n", g.NumVertices(), g.NumEdges(), ranks)

	levels := []struct {
		name string
		spec repro.NoiseSpec
	}{
		{"quiet", repro.NoiseSpec{}},
		{"5% jitter", repro.NoiseSpec{Amp: 0.05, Seed: 1}},
		{"15% jitter + detours", repro.NoiseSpec{Amp: 0.15, SpikePeriodNS: 250e3, SpikeNS: 25000, Seed: 1}},
		{"30% jitter + detours", repro.NoiseSpec{Amp: 0.30, SpikePeriodNS: 50e3, SpikeNS: 25000, Seed: 1}},
	}

	fmt.Printf("%-24s %12s %12s %14s\n", "noise", "async (ms)", "tric (ms)", "bsp penalty")
	var asyncBase, tricBase float64
	var wantTriangles int64
	for i, lv := range levels {
		model := repro.DefaultCostModel()
		model.Noise = lv.spec

		async, err := repro.RunLCC(g, repro.LCCOptions{
			Ranks: ranks, Method: repro.MethodHybrid, DoubleBuffer: true, Model: model,
		})
		if err != nil {
			log.Fatal(err)
		}
		tr, err := repro.RunTriC(g, repro.TriCOptions{Ranks: ranks, Method: repro.MethodHybrid, Model: model})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			asyncBase, tricBase = async.SimTime, tr.SimTime
			wantTriangles = async.Triangles
		}
		if async.Triangles != wantTriangles || tr.Triangles != wantTriangles {
			log.Fatalf("noise changed a result: async %d, tric %d, want %d",
				async.Triangles, tr.Triangles, wantTriangles)
		}
		aSlow := async.SimTime / asyncBase
		tSlow := tr.SimTime / tricBase
		fmt.Printf("%-24s %12.1f %12.1f %13.2fx\n",
			lv.name, async.SimTime/1e6, tr.SimTime/1e6, tSlow/aSlow)
	}

	fmt.Println("\nbsp penalty = TriC's slowdown relative to the async engine's under the same noise.")
	fmt.Printf("all runs returned the identical triangle count (%d): noise moves time, never results ✓\n",
		wantTriangles)
}
