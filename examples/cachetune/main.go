// Cache tuning walk-through: how the CLaMPI cache configuration changes
// the communication profile of the distributed LCC computation (§III-B and
// Figs. 7/8 of the paper, as an interactive-scale program).
//
// The example sweeps the C_adj capacity, compares LRU+positional eviction
// against the paper's degree-centrality scores, and shows the compulsory-
// miss floor that no cache size can cross.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.MustLoadDataset("rmat-s14-ef16")
	fmt.Printf("graph: %d vertices, %d edges (R-MAT, power-law)\n",
		g.NumVertices(), g.NumEdges())
	const ranks = 8

	base, err := repro.RunLCC(g, repro.LCCOptions{
		Ranks: ranks, Method: repro.MethodHybrid, DoubleBuffer: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nno caching: %.2f ms simulated, %.0f%% of fetches remote\n",
		base.SimTime/1e6, 100*base.RemoteReadFraction())

	// Sweep C_adj relative to the adjacency array size.
	fmt.Println("\nC_adj capacity sweep (LRU+positional eviction):")
	fmt.Println("  rel size   sim time    vs uncached   miss rate   compulsory misses")
	adjFull := 4 * g.NumArcs()
	for _, rel := range []float64{0.05, 0.25, 1.0} {
		res, err := repro.RunLCC(g, repro.LCCOptions{
			Ranks: ranks, Method: repro.MethodHybrid, DoubleBuffer: true,
			Caching:           true,
			OffsetsCacheBytes: 16 * g.NumVertices(),
			AdjCacheBytes:     int(rel * float64(adjFull)),
		})
		if err != nil {
			log.Fatal(err)
		}
		_, adjMiss := res.CacheMissRates()
		var comp, miss int64
		for _, s := range res.PerRank {
			comp += s.AdjCache.CompulsoryMisses
			miss += s.AdjCache.Misses
		}
		fmt.Printf("  %-9.2f  %7.2f ms  %+9.1f%%   %9.3f   %d of %d\n",
			rel, res.SimTime/1e6, 100*(res.SimTime-base.SimTime)/base.SimTime,
			adjMiss, comp, miss)
	}

	// Under eviction pressure, the paper's application-defined scores
	// keep the high-degree (most reused) entries resident.
	fmt.Println("\neviction scores at 25% capacity:")
	for _, deg := range []bool{false, true} {
		res, err := repro.RunLCC(g, repro.LCCOptions{
			Ranks: ranks, Method: repro.MethodHybrid, DoubleBuffer: true,
			Caching:           true,
			OffsetsCacheBytes: 16 * g.NumVertices(),
			AdjCacheBytes:     adjFull / 4,
			DegreeScores:      deg,
		})
		if err != nil {
			log.Fatal(err)
		}
		_, adjMiss := res.CacheMissRates()
		name := "LRU+positional"
		if deg {
			name = "degree scores "
		}
		fmt.Printf("  %s: miss rate %.3f, avg remote read %.2f µs, sim time %.2f ms\n",
			name, adjMiss, res.AvgRemoteReadTime()/1e3, res.SimTime/1e6)
	}
	fmt.Println("\n(the compulsory-miss column is the floor Figs. 7/8 shade in grey:")
	fmt.Println(" first-touch reads that no cache configuration can avoid)")
}
