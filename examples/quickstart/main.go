// Quickstart: build a small graph, run the paper's fully asynchronous
// distributed LCC computation on a simulated 2-node machine, and print the
// scores — the Fig. 1 walk-through of the paper as a program.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	// The toy graph of Fig. 1 (left): six vertices on two compute nodes
	// (node A owns 0-2, node B owns 3-5 under 1D block partitioning).
	edges := []repro.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2},
		{Src: 1, Dst: 3}, {Src: 1, Dst: 4}, {Src: 2, Dst: 4},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5},
	}
	g, err := repro.BuildGraph(repro.Undirected, 6, edges)
	if err != nil {
		log.Fatal(err)
	}

	res, err := repro.RunLCC(g, repro.LCCOptions{
		Ranks:        2,                  // two simulated computing nodes
		Workers:      0,                  // host cores running the ranks: 0 = all (GOMAXPROCS); results are identical at any setting
		Method:       repro.MethodHybrid, // Eq. (3) decision rule
		DoubleBuffer: true,               // overlap comm with compute (§III-A)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("triangles: %d\n", res.Triangles)
	for v, c := range res.LCC {
		fmt.Printf("LCC(%d) = %.3f  (degree %d)\n", v, c, g.OutDegree(repro.V(v)))
	}
	// SimTime is modeled machine time, decoupled from how fast the host
	// simulates it: every charge folds into the rank clocks in one
	// canonical order (DESIGN.md §6), so this number is bit-reproducible
	// on any machine, at any worker count.
	fmt.Printf("\nsimulated job time: %.2f µs (slowest of 2 ranks)\n", res.SimTime/1e3)
	fmt.Printf("remote adjacency reads: %.0f%% of fetches crossed nodes\n",
		100*res.RemoteReadFraction())

	// The same computation through the single-node reference — the
	// distributed engine must agree exactly.
	ref := repro.SharedLCC(g, repro.MethodHybrid)
	if ref.Triangles != res.Triangles {
		log.Fatalf("distributed (%d) and shared (%d) triangle counts disagree!",
			res.Triangles, ref.Triangles)
	}
	fmt.Println("\ndistributed result verified against the single-node reference ✓")

	// Host-side storage is invisible to the simulation: the same run over
	// the varint/delta-compressed representation — a third of the plain
	// CSR's memory, the regime that holds graphs 100× this size — must
	// reproduce every simulated bit (DESIGN.md §9).
	compact, err := repro.RunLCC(repro.CompressGraph(g), repro.LCCOptions{
		Ranks: 2, Method: repro.MethodHybrid, DoubleBuffer: true,
		Storage: repro.StorageCompressed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if compact.Triangles != res.Triangles || compact.SimTime != res.SimTime {
		log.Fatalf("compressed storage changed the simulation: %d/%v vs %d/%v",
			compact.Triangles, compact.SimTime, res.Triangles, res.SimTime)
	}
	fmt.Println("compressed CSR storage: identical results and SimTime ✓")

	// The same run survives injected faults unchanged: a seeded schedule
	// of transient RMA failures and dropped messages (recovered by retry
	// with backoff and retransmission — DESIGN.md §7) costs simulated
	// time but never correctness. `lccrun -faults "seed=1,get=0.01"`
	// exposes the same knob on the command line.
	spec, err := repro.ParseFaultSpec("seed=1,get=0.02,drop=0.05")
	if err != nil {
		log.Fatal(err)
	}
	faulted, err := repro.RunLCC(g, repro.LCCOptions{
		Ranks: 2, Method: repro.MethodHybrid, DoubleBuffer: true, Faults: spec,
	})
	if err != nil {
		log.Fatal(err)
	}
	if faulted.Triangles != res.Triangles {
		log.Fatalf("faults changed the answer: %d vs %d", faulted.Triangles, res.Triangles)
	}
	fmt.Printf("under injected faults: same results, SimTime %.2f µs (+%.2f µs of recovery)\n",
		faulted.SimTime/1e3, (faulted.SimTime-res.SimTime)/1e3)

	// The durable serving plane (DESIGN.md §8): a supervisor with a
	// manifest store persists each instance's config as a checksummed
	// manifest, so a daemon crash — `lccd -state-dir` survives kill -9 —
	// recovers the fleet. Here in-process: the first supervisor is simply
	// abandoned (no shutdown), the second recovers from the manifests
	// alone, lazily — the instance returns parked and rebuilds its
	// snapshot on first query, bit-identically.
	stateDir, err := os.MkdirTemp("", "quickstart-state-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)
	store, err := repro.NewServeManifestStore(stateDir)
	if err != nil {
		log.Fatal(err)
	}
	sup := repro.NewServeSupervisor()
	sup.SetManifestStore(store)
	if _, err := sup.Load("fb", repro.ServeConfig{Dataset: "fb-sim", Ranks: 4, QueueDepth: 4}); err != nil {
		log.Fatal(err)
	}
	query := repro.ServeQuery{Options: repro.LCCOptions{Method: repro.MethodHybrid, DoubleBuffer: true}}
	before, err := sup.Run(context.Background(), "fb", query)
	if err != nil {
		log.Fatal(err)
	}
	// "Crash": drop the supervisor on the floor. Only the state dir survives.
	store2, err := repro.NewServeManifestStore(stateDir)
	if err != nil {
		log.Fatal(err)
	}
	sup2 := repro.NewServeSupervisor()
	sup2.SetManifestStore(store2)
	report := sup2.Recover(false)
	after, err := sup2.Run(context.Background(), "fb", query)
	if err != nil {
		log.Fatal(err)
	}
	if after.ScoreBits != before.ScoreBits || after.Triangles != before.Triangles {
		log.Fatalf("recovery drifted: %#x/%d vs %#x/%d",
			after.ScoreBits, after.Triangles, before.ScoreBits, before.Triangles)
	}
	fmt.Printf("crash recovery: %d instance(s) restored from manifests, bits identical ✓\n",
		len(report.Restored))
}
