// Smallworld reproduces the experiment that gave the local clustering
// coefficient its name: Watts & Strogatz's small-world sweep (the paper's
// reference [9] and the definition used in §II-D). A ring lattice of
// degree k is progressively rewired; the normalized clustering coefficient
// C(β)/C(0) stays high long after the average path length has collapsed —
// the "small world" regime.
//
// The example exercises three layers of the library at once: the
// Watts–Strogatz generator, the shared-memory LCC kernel (validated
// against the closed-form lattice value), and the distributed asynchronous
// engine (validated against the shared result at every β).
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro"
)

const (
	n = 2000
	k = 10
)

func main() {
	fmt.Printf("Watts–Strogatz small-world sweep: n=%d, k=%d\n", n, k)
	closed := repro.RingLatticeLCC(k)
	fmt.Printf("closed-form lattice clustering C(0) = %.4f\n\n", closed)
	fmt.Printf("%8s  %10s  %10s  %s\n", "beta", "C(beta)", "C/C(0)", "")

	var c0 float64
	for i, beta := range []float64{0, 0.0001, 0.001, 0.01, 0.1, 0.5, 1.0} {
		g := repro.WattsStrogatz(n, k, beta, 12345)

		// Shared-memory kernel gives the reference clustering.
		shared := repro.SharedLCC(g, repro.MethodHybrid)
		c := mean(shared.LCC)
		if i == 0 {
			c0 = c
			if math.Abs(c-closed) > 1e-9 {
				log.Fatalf("lattice LCC %.6f does not match closed form %.6f", c, closed)
			}
		}

		// The asynchronous distributed engine must agree exactly on the
		// triangle count at every rewiring level.
		dist, err := repro.RunLCC(g, repro.LCCOptions{
			Ranks: 4, Method: repro.MethodHybrid, DoubleBuffer: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if dist.Triangles != shared.Triangles {
			log.Fatalf("beta=%g: distributed %d vs shared %d triangles",
				beta, dist.Triangles, shared.Triangles)
		}

		bar := strings.Repeat("#", int(40*c/c0+0.5))
		fmt.Printf("%8.4f  %10.4f  %10.3f  %s\n", beta, c, c/c0, bar)
	}

	fmt.Println("\nthe plateau at small beta is the small-world signature:")
	fmt.Println("a handful of shortcuts destroys path length but not clustering.")
	fmt.Println("distributed triangle counts verified against shared memory at every point ✓")
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
