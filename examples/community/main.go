// Community detection with LCC — the first application the paper's
// introduction motivates: "LCC is used to detect communities in, e.g.,
// social networks, distinguishing between vertices that are central to the
// cluster from others on its frontier".
//
// The example runs the distributed LCC engine (with RMA caching) on the
// social-circles dataset and classifies vertices into community cores
// (high LCC: their friends know each other) and frontiers (low LCC: they
// bridge between circles), then reports how the two classes differ.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	g := repro.MustLoadDataset("fb-sim") // Facebook-circles stand-in
	fmt.Printf("social graph: %d members, %d friendships\n", g.NumVertices(), g.NumEdges())

	res, err := repro.RunLCC(g, repro.LCCOptions{
		Ranks:        8,
		Method:       repro.MethodHybrid,
		DoubleBuffer: true,
		// Social graphs have hubs that are read over and over (Fig. 1);
		// cache them with degree-centrality eviction scores (§III-B-2).
		Caching:           true,
		OffsetsCacheBytes: 16 * g.NumVertices(),
		AdjCacheBytes:     16 << 20,
		DegreeScores:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Classify by LCC quantile: the top quartile sits inside densely
	// connected circles (cores); the bottom quartile bridges between
	// circles (frontiers).
	type member struct {
		v   repro.V
		lcc float64
		deg int
	}
	all := make([]member, 0, g.NumVertices())
	for v, c := range res.LCC {
		all = append(all, member{repro.V(v), c, g.OutDegree(repro.V(v))})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].lcc > all[j].lcc })
	q := len(all) / 4
	cores, frontiers := all[:q], all[len(all)-q:]
	fmt.Printf("\ncommunity cores (top LCC quartile, LCC >= %.3f): %d members\n", cores[len(cores)-1].lcc, len(cores))
	fmt.Printf("community frontiers (bottom LCC quartile, LCC <= %.3f): %d members\n", frontiers[0].lcc, len(frontiers))

	avgDeg := func(ms []member) float64 {
		if len(ms) == 0 {
			return 0
		}
		s := 0
		for _, m := range ms {
			s += m.deg
		}
		return float64(s) / float64(len(ms))
	}
	fmt.Printf("average degree: cores %.1f vs frontiers %.1f\n", avgDeg(cores), avgDeg(frontiers))

	// The most "embedded" members: highest LCC among well-connected ones.
	sort.Slice(cores, func(i, j int) bool {
		if cores[i].lcc != cores[j].lcc {
			return cores[i].lcc > cores[j].lcc
		}
		return cores[i].deg > cores[j].deg
	})
	fmt.Println("\nmost embedded community members:")
	for i, m := range cores {
		if i == 5 {
			break
		}
		fmt.Printf("  member %-6d lcc=%.3f degree=%d\n", m.v, m.lcc, m.deg)
	}

	// Caching effectiveness on this workload.
	offRate, adjRate := res.CacheMissRates()
	fmt.Printf("\nRMA caching: C_offsets miss rate %.2f, C_adj miss rate %.2f\n", offRate, adjRate)
	fmt.Printf("simulated job time: %.2f ms on 8 nodes\n", res.SimTime/1e6)
}
