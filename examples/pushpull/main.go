// Pushpull walks the push–pull dichotomy the paper lists as future work
// (§VI ii). The paper's engine *pulls*: every rank reads the adjacency
// lists it is missing and counts triangles for its own vertices, so each
// triangle is discovered three times — once per corner owner. The push
// engine discovers each triangle exactly once (at the owner of its
// hash-smallest corner) and scatters one-sided accumulates to the other
// two corners, paying a single closing fence instead.
//
// Neither side always wins, and this example shows both regimes:
//
//   - a scale-free graph, where pull + CLaMPI caching reuses the hub
//     adjacency lists and beats everything;
//   - a uniform-degree graph, where there is nothing to cache and push's
//     halved get traffic wins.
package main

import (
	"fmt"
	"log"

	"repro"
)

func run(g *repro.Graph, name string, ranks int) {
	fmt.Printf("%s: |V|=%d |E|=%d, %d ranks\n", name, g.NumVertices(), g.NumEdges(), ranks)

	pull, err := repro.RunLCC(g, repro.LCCOptions{
		Ranks: ranks, Method: repro.MethodHybrid, DoubleBuffer: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	cached, err := repro.RunLCC(g, repro.LCCOptions{
		Ranks: ranks, Method: repro.MethodHybrid, DoubleBuffer: true,
		Caching: true, DegreeScores: true,
		// The paper's Fig. 9 budget: C_offsets sized for the vertex set,
		// C_adj ample ("the rest of 16 GiB" at paper scale).
		OffsetsCacheBytes: 16 * g.NumVertices(),
		AdjCacheBytes:     64 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	push, err := repro.RunLCCPush(g, repro.LCCPushOptions{
		Options: repro.LCCOptions{
			Ranks: ranks, Method: repro.MethodHybrid, DoubleBuffer: true,
		},
		Aggregation: repro.PushBatched,
	})
	if err != nil {
		log.Fatal(err)
	}
	if pull.Triangles != push.Triangles || pull.Triangles != cached.Triangles {
		log.Fatalf("engines disagree: pull %d, cached %d, push %d",
			pull.Triangles, cached.Triangles, push.Triangles)
	}

	var pullGets, pushGets, pushPuts int64
	for i := 0; i < ranks; i++ {
		pullGets += pull.PerRank[i].RMA.Gets
		pushGets += push.PerRank[i].RMA.Gets
		pushPuts += push.PerRank[i].RMA.Puts
	}

	fmt.Printf("  %-28s %10.1f ms\n", "pull (paper engine)", pull.SimTime/1e6)
	fmt.Printf("  %-28s %10.1f ms   hit rate %.0f%%\n", "pull + CLaMPI cache",
		cached.SimTime/1e6, 100*cached.HitRate())
	fmt.Printf("  %-28s %10.1f ms   gets %.2fx of pull, %d batched accumulates\n",
		"push (batched)", push.SimTime/1e6, float64(pushGets)/float64(pullGets), pushPuts)

	best, t := "pull", pull.SimTime
	if cached.SimTime < t {
		best, t = "pull+cache", cached.SimTime
	}
	if push.SimTime < t {
		best = "push"
	}
	fmt.Printf("  winner: %s  (all agree on %d triangles)\n\n", best, pull.Triangles)
}

func main() {
	const ranks = 16

	// Scale-free: hubs make remote reads repeat, so caching pays.
	rmat := repro.Prepare(repro.RMAT(14, 16, repro.Undirected, 7), 7)
	run(rmat, "R-MAT S14 EF16 (scale-free)", ranks)

	// Uniform: every vertex is equally (un)popular — nothing to cache,
	// and halving the wedge walk is the only lever left.
	er := repro.Prepare(repro.ErdosRenyi(1<<14, 1<<18, repro.Undirected, 7), 7)
	run(er, "Erdős–Rényi 16k/262k (uniform)", ranks)

	fmt.Println("pull+cache wins where reuse exists; push wins where it does not.")
	fmt.Println("the pull engine stays fully asynchronous; push pays exactly one fence.")
}
