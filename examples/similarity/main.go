// Edge similarity with distributed Jaccard — the paper's future-work
// direction (ii): running other push-pull graph kernels on the same
// asynchronous RMA substrate. Jaccard similarity over neighbourhoods is
// the example the authors themselves cite (communication-efficient Jaccard,
// IPDPS'20): J(u,v) = |adj(u) ∩ adj(v)| / |adj(u) ∪ adj(v)|.
//
// The example computes per-edge similarity on a social graph and uses it
// to separate strong ties (edges inside a tightly knit circle) from weak
// ties (bridges between circles) — Granovetter's classic distinction,
// computed at scale.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	g := repro.MustLoadDataset("fb-sim")
	fmt.Printf("social graph: %d members, %d friendships\n", g.NumVertices(), g.NumEdges())

	res, err := repro.RunJaccard(g, repro.LCCOptions{
		Ranks:             8,
		Method:            repro.MethodHybrid,
		DoubleBuffer:      true,
		Caching:           true,
		OffsetsCacheBytes: 16 * g.NumVertices(),
		AdjCacheBytes:     16 << 20,
		AdjScorePolicy:    repro.ScoreDegree,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("computed %d per-edge similarities in %.2f ms of simulated time on 8 nodes\n",
		len(res.Scores), res.SimTime/1e6)

	// Walk the CSR once to pair each arc with its endpoints.
	type tie struct {
		u, v repro.V
		j    float64
	}
	var ties []tie
	offsets := g.Offsets()
	arcs := g.Arcs()
	for u := 0; u < g.NumVertices(); u++ {
		for k := offsets[u]; k < offsets[u+1]; k++ {
			v := arcs[k]
			if repro.V(u) < v { // each undirected edge once
				ties = append(ties, tie{repro.V(u), v, res.Scores[k]})
			}
		}
	}
	sort.Slice(ties, func(i, j int) bool {
		if ties[i].j != ties[j].j {
			return ties[i].j > ties[j].j
		}
		return ties[i].u < ties[j].u
	})

	fmt.Println("\nstrongest ties (shared circles):")
	for i := 0; i < 5 && i < len(ties); i++ {
		t := ties[i]
		fmt.Printf("  %d -- %d  J=%.3f\n", t.u, t.v, t.j)
	}
	fmt.Println("\nweakest ties (bridges between circles):")
	shown := 0
	for i := len(ties) - 1; i >= 0 && shown < 5; i-- {
		t := ties[i]
		fmt.Printf("  %d -- %d  J=%.3f\n", t.u, t.v, t.j)
		shown++
	}

	// Distribution summary.
	strong, weak := 0, 0
	for _, t := range ties {
		if t.j >= 0.25 {
			strong++
		} else if t.j < 0.05 {
			weak++
		}
	}
	fmt.Printf("\n%d strong ties (J >= 0.25), %d weak/bridge ties (J < 0.05) of %d edges\n",
		strong, weak, len(ties))
}
