package clampi

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/rma"
)

// testSetup builds a 2-rank world where rank 1 exposes `size` bytes with
// value pattern b[i] = i&0xff, and returns rank 0's handle plus the window.
func testSetup(t testing.TB, size int, cfg Config) (*rma.Rank, *rma.Window, *Cache) {
	t.Helper()
	c := rma.NewComm(2, rma.DefaultCostModel())
	region := make([]byte, size)
	for i := range region {
		region[i] = byte(i)
	}
	w := c.CreateWindow("data", [][]byte{nil, region})
	r := c.Rank(0)
	r.LockAll(w)
	cache := New(r, w, cfg)
	return r, w, cache
}

func TestCacheHitReturnsSameBytes(t *testing.T) {
	_, _, c := testSetup(t, 1024, Config{Capacity: 512, Mode: AlwaysCache})
	q1 := c.Get(1, 100, 50)
	if q1.Hit() {
		t.Fatal("first access reported a hit")
	}
	c.FlushWindow()
	direct := q1.Data()

	q2 := c.Get(1, 100, 50)
	if !q2.Hit() {
		t.Fatal("second access missed")
	}
	if !bytes.Equal(q2.Data(), direct) {
		t.Error("cached data differs from direct RMA read")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.CompulsoryMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheHitIsCheap(t *testing.T) {
	r, _, c := testSetup(t, 1024, Config{Capacity: 512, Mode: AlwaysCache})
	c.Get(1, 0, 100)
	c.FlushWindow()
	before := r.Clock().Now()
	c.Get(1, 0, 100)
	hitCost := r.Clock().Now() - before
	if hitCost >= r.Model().RemoteLatency {
		t.Errorf("hit cost %v ns not below remote latency %v", hitCost, r.Model().RemoteLatency)
	}
	if r.Counters().Gets != 1 {
		t.Errorf("hit issued a network get (Gets=%d)", r.Counters().Gets)
	}
}

func TestLocalAccessBypassesCache(t *testing.T) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	w := comm.CreateWindow("d", [][]byte{{1, 2, 3, 4}, nil})
	r := comm.Rank(0)
	r.LockAll(w)
	c := New(r, w, Config{Capacity: 128, Mode: AlwaysCache})
	q := c.Get(0, 1, 2)
	if !q.Done() {
		t.Fatal("local get not immediately done")
	}
	if !bytes.Equal(q.Data(), []byte{2, 3}) {
		t.Errorf("Data = %v", q.Data())
	}
	s := c.Stats()
	if s.Hits+s.Misses != 0 {
		t.Errorf("local access touched cache stats: %+v", s)
	}
}

func TestDistinctRegionsAreDistinctEntries(t *testing.T) {
	_, _, c := testSetup(t, 1024, Config{Capacity: 1024, Mode: AlwaysCache})
	c.Get(1, 0, 16)
	c.Get(1, 16, 16)
	c.Get(1, 0, 32) // same offset, different size: different entry
	c.FlushWindow()
	if got := c.Stats().Inserts; got != 3 {
		t.Errorf("Inserts = %d, want 3", got)
	}
	if !c.Contains(1, 0, 16) || !c.Contains(1, 16, 16) || !c.Contains(1, 0, 32) {
		t.Error("entries missing")
	}
}

func TestCapacityEvictionLRU(t *testing.T) {
	// Capacity for exactly two 40-byte entries; touching A keeps it alive
	// and the third insert evicts B (least recently used).
	_, _, c := testSetup(t, 1024, Config{Capacity: 80, Mode: AlwaysCache})
	c.Get(1, 0, 40) // A
	c.FlushWindow()
	c.Get(1, 40, 40) // B
	c.FlushWindow()
	c.Get(1, 0, 40)  // hit A -> A more recent than B
	c.Get(1, 80, 40) // C: needs eviction
	c.FlushWindow()
	if !c.Contains(1, 0, 40) {
		t.Error("recently-used entry A was evicted")
	}
	if c.Contains(1, 40, 40) {
		t.Error("LRU entry B survived")
	}
	if !c.Contains(1, 80, 40) {
		t.Error("new entry C not inserted")
	}
	s := c.Stats()
	if s.CapacityEvictions != 1 {
		t.Errorf("CapacityEvictions = %d, want 1", s.CapacityEvictions)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEntryLargerThanCapacityNotCached(t *testing.T) {
	_, _, c := testSetup(t, 1024, Config{Capacity: 64, Mode: AlwaysCache})
	c.Get(1, 0, 100)
	c.FlushWindow()
	if c.Contains(1, 0, 100) {
		t.Error("entry larger than the whole buffer was cached")
	}
	if c.Stats().RejectedInserts != 1 {
		t.Errorf("RejectedInserts = %d, want 1", c.Stats().RejectedInserts)
	}
}

func TestAppScoreProtectsHighDegreeEntries(t *testing.T) {
	// With application-defined scores (the paper's extension), a low-score
	// newcomer must NOT evict higher-score residents — unlike LRU where
	// the newcomer always wins.
	_, _, c := testSetup(t, 1024, Config{Capacity: 80, Mode: AlwaysCache})
	c.GetScored(1, 0, 40, 100) // high-degree entry
	c.FlushWindow()
	c.GetScored(1, 40, 40, 90) // second high-degree entry
	c.FlushWindow()
	c.GetScored(1, 80, 40, 5) // low-degree: must be rejected
	c.FlushWindow()
	if !c.Contains(1, 0, 40) || !c.Contains(1, 40, 40) {
		t.Error("high-score entries were evicted by a low-score newcomer")
	}
	if c.Contains(1, 80, 40) {
		t.Error("low-score newcomer was cached despite full buffer of better entries")
	}
	// A higher-score newcomer evicts the lowest-score resident.
	c.GetScored(1, 120, 40, 95)
	c.FlushWindow()
	if !c.Contains(1, 120, 40) {
		t.Error("score-95 newcomer rejected")
	}
	if c.Contains(1, 40, 40) {
		t.Error("score-90 resident survived over score-95 newcomer")
	}
	if !c.Contains(1, 0, 40) {
		t.Error("score-100 resident evicted")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSetScoreChangesVictim(t *testing.T) {
	_, _, c := testSetup(t, 1024, Config{Capacity: 80, Mode: AlwaysCache})
	c.GetScored(1, 0, 40, 10)
	c.FlushWindow()
	c.GetScored(1, 40, 40, 20)
	c.FlushWindow()
	// Raise the first entry's score above the second's.
	c.SetScore(1, 0, 40, 30)
	c.GetScored(1, 80, 40, 25)
	c.FlushWindow()
	if !c.Contains(1, 0, 40) {
		t.Error("re-scored entry was evicted")
	}
	if c.Contains(1, 40, 40) {
		t.Error("lowest-score entry survived")
	}
}

func TestConflictEviction(t *testing.T) {
	// A 1-bucket, 1-way table: every distinct key conflicts.
	_, _, c := testSetup(t, 1024, Config{Capacity: 1024, Buckets: 1, Assoc: 1, Mode: AlwaysCache})
	c.Get(1, 0, 8)
	c.FlushWindow()
	c.Get(1, 8, 8)
	c.FlushWindow()
	s := c.Stats()
	if s.ConflictEvictions != 1 {
		t.Errorf("ConflictEvictions = %d, want 1", s.ConflictEvictions)
	}
	if c.Contains(1, 0, 8) {
		t.Error("conflict victim still present")
	}
	if !c.Contains(1, 8, 8) {
		t.Error("newcomer not inserted after conflict eviction")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTransparentModeFlushesOnEpochClose(t *testing.T) {
	_, _, c := testSetup(t, 1024, Config{Capacity: 512, Mode: Transparent})
	c.Get(1, 0, 32)
	c.FlushWindow()
	if !c.Contains(1, 0, 32) {
		t.Fatal("entry not cached within epoch")
	}
	c.CloseEpoch()
	if c.Contains(1, 0, 32) {
		t.Error("transparent mode kept data across epoch closure")
	}
	if c.Stats().Flushes != 1 {
		t.Errorf("Flushes = %d, want 1", c.Stats().Flushes)
	}
}

func TestAlwaysCacheModeSurvivesEpochClose(t *testing.T) {
	_, _, c := testSetup(t, 1024, Config{Capacity: 512, Mode: AlwaysCache})
	c.Get(1, 0, 32)
	c.FlushWindow()
	c.CloseEpoch()
	if !c.Contains(1, 0, 32) {
		t.Error("always-cache mode flushed on epoch closure")
	}
}

func TestUserDefinedModeExplicitFlush(t *testing.T) {
	_, _, c := testSetup(t, 1024, Config{Capacity: 512, Mode: UserDefined})
	c.Get(1, 0, 32)
	c.FlushWindow()
	c.CloseEpoch()
	if !c.Contains(1, 0, 32) {
		t.Error("user-defined mode flushed on epoch closure")
	}
	c.Flush()
	if c.Contains(1, 0, 32) {
		t.Error("explicit Flush did not clear the cache")
	}
}

func TestCompulsoryVsCapacityMisses(t *testing.T) {
	// Re-reading an evicted entry is a miss but NOT a compulsory miss.
	_, _, c := testSetup(t, 1024, Config{Capacity: 40, Mode: AlwaysCache})
	c.Get(1, 0, 40)
	c.FlushWindow()
	c.Get(1, 40, 40) // evicts the first (only room for one)
	c.FlushWindow()
	c.Get(1, 0, 40) // capacity miss
	c.FlushWindow()
	s := c.Stats()
	if s.Misses != 3 {
		t.Errorf("Misses = %d, want 3", s.Misses)
	}
	if s.CompulsoryMisses != 2 {
		t.Errorf("CompulsoryMisses = %d, want 2", s.CompulsoryMisses)
	}
}

func TestRequestWaitCompletesSingleMiss(t *testing.T) {
	_, _, c := testSetup(t, 1024, Config{Capacity: 512, Mode: AlwaysCache})
	q := c.Get(1, 0, 16)
	q.Wait()
	if !q.Done() {
		t.Fatal("Wait did not complete the request")
	}
	if !c.Contains(1, 0, 16) {
		t.Error("Wait did not insert the entry")
	}
	// FlushWindow afterwards must not double-insert.
	c.FlushWindow()
	if c.Stats().Inserts != 1 {
		t.Errorf("Inserts = %d, want 1", c.Stats().Inserts)
	}
}

func TestAdaptiveResizeOnConflicts(t *testing.T) {
	_, _, c := testSetup(t, 1<<20, Config{
		Capacity: 1 << 20, Buckets: 1, Assoc: 1, Adaptive: true, Mode: AlwaysCache,
	})
	// Thrash distinct keys through the 1-slot table.
	for i := 0; i < 3000; i++ {
		c.Get(1, (i%4000)*8, 8)
		c.FlushWindow()
	}
	s := c.Stats()
	if s.Resizes == 0 {
		t.Errorf("adaptive heuristic never resized (conflicts=%d)", s.ConflictEvictions)
	}
	if c.cfg.Buckets <= 1 {
		t.Errorf("buckets = %d, want grown", c.cfg.Buckets)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("MissRate of empty stats != 0")
	}
	s.Hits, s.Misses = 3, 1
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("MissRate = %v, want 0.25", got)
	}
}

func TestPositionalScorePrefersFragmentingVictims(t *testing.T) {
	// Capacity 140 holds A[0,40) B[40,80) C[80,120) plus a 20-byte free
	// tail adjacent to C. Inserting a 60-byte entry needs an eviction;
	// C is the *most recently used* entry, but evicting it merges with
	// the free tail into exactly the needed 60 bytes. With a large
	// positional weight, C must be chosen over the older A and B —
	// the paper's "poorly placed entries evict first even at higher
	// temporal locality" behaviour (§II-F).
	_, _, c := testSetup(t, 4096, Config{Capacity: 140, Mode: AlwaysCache, PosWeight: 1e9})
	c.Get(1, 0, 40) // A at buffer [0,40)
	c.FlushWindow()
	c.Get(1, 40, 40) // B at [40,80)
	c.FlushWindow()
	c.Get(1, 80, 40) // C at [80,120), most recent, adjacent to free [120,140)
	c.FlushWindow()
	c.Get(1, 200, 60) // D: needs 60 contiguous bytes
	c.FlushWindow()
	if c.Contains(1, 80, 40) {
		t.Error("positional score did not evict the mergeable victim C")
	}
	if !c.Contains(1, 0, 40) || !c.Contains(1, 40, 40) {
		t.Error("non-mergeable entries A/B were evicted instead")
	}
	if !c.Contains(1, 200, 60) {
		t.Error("new entry D not inserted")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheChurnInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	_, _, c := testSetup(t, 1<<16, Config{Capacity: 4096, Buckets: 16, Assoc: 2, Mode: AlwaysCache})
	for i := 0; i < 4000; i++ {
		// Keys repeat: a bounded universe of (offset,size) pairs so the
		// trace mixes hits with misses like a real reuse pattern.
		slot := rng.IntN(64)
		off := slot * 512
		size := 1 + (slot*37)%200
		if rng.Float64() < 0.3 {
			c.GetScored(1, off, size, float64(size))
		} else {
			c.Get(1, off, size)
		}
		if rng.Float64() < 0.5 {
			c.FlushWindow()
		}
		if i%500 == 0 {
			c.FlushWindow()
			if err := c.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	c.FlushWindow()
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Hits == 0 || s.Misses == 0 {
		t.Errorf("churn produced no mixed traffic: %+v", s)
	}
}

func TestCachedDataAlwaysMatchesWindow(t *testing.T) {
	// Property-style: after any access sequence, every Get result equals
	// the window's ground truth.
	rng := rand.New(rand.NewPCG(21, 22))
	_, _, c := testSetup(t, 4096, Config{Capacity: 512, Buckets: 4, Assoc: 2, Mode: AlwaysCache})
	truth := make([]byte, 4096)
	for i := range truth {
		truth[i] = byte(i)
	}
	for i := 0; i < 2000; i++ {
		off := rng.IntN(4000)
		size := 1 + rng.IntN(90)
		q := c.Get(1, off, size)
		q.Wait()
		if !bytes.Equal(q.Data(), truth[off:off+size]) {
			t.Fatalf("step %d: cached read [%d,+%d) returned wrong bytes", i, off, size)
		}
	}
}
