package clampi

import (
	"math/rand/v2"
	"testing"
)

func TestAllocatorBasic(t *testing.T) {
	a := newAllocator(100)
	off1, ok := a.alloc(40)
	if !ok || off1 != 0 {
		t.Fatalf("alloc(40) = (%d,%v), want (0,true)", off1, ok)
	}
	off2, ok := a.alloc(60)
	if !ok || off2 != 40 {
		t.Fatalf("alloc(60) = (%d,%v), want (40,true)", off2, ok)
	}
	if _, ok := a.alloc(1); ok {
		t.Error("alloc on a full buffer succeeded")
	}
	if a.freeBytes() != 0 {
		t.Errorf("freeBytes = %d, want 0", a.freeBytes())
	}
	a.free(off1, 40)
	if a.freeBytes() != 40 {
		t.Errorf("freeBytes = %d, want 40", a.freeBytes())
	}
	if err := a.check(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorBestFitReducesWaste(t *testing.T) {
	a := newAllocator(100)
	o1, _ := a.alloc(30) // [0,30)
	o2, _ := a.alloc(20) // [30,50)
	_, _ = a.alloc(50)   // [50,100)
	a.free(o1, 30)
	a.free(o2, 20) // coalesces to [0,50)
	if got := a.largestFree(); got != 50 {
		t.Fatalf("largestFree = %d, want 50 after coalescing", got)
	}
	if err := a.check(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorCoalescingBothSides(t *testing.T) {
	a := newAllocator(90)
	o1, _ := a.alloc(30)
	o2, _ := a.alloc(30)
	o3, _ := a.alloc(30)
	a.free(o1, 30)
	a.free(o3, 30)
	if a.largestFree() != 30 {
		t.Fatalf("largestFree = %d, want 30 (two separate regions)", a.largestFree())
	}
	a.free(o2, 30) // merges left and right into one 90-byte region
	if a.largestFree() != 90 {
		t.Fatalf("largestFree = %d, want 90 after middle free", a.largestFree())
	}
	if err := a.check(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorExternalFragmentation(t *testing.T) {
	// Fill with 10 x 10B, free every other one: 50 free bytes but no
	// region bigger than 10 — an alloc(20) must fail. This is exactly the
	// external fragmentation §II-F describes.
	a := newAllocator(100)
	offs := make([]int, 10)
	for i := range offs {
		off, ok := a.alloc(10)
		if !ok {
			t.Fatalf("alloc #%d failed", i)
		}
		offs[i] = off
	}
	for i := 0; i < 10; i += 2 {
		a.free(offs[i], 10)
	}
	if a.freeBytes() != 50 {
		t.Fatalf("freeBytes = %d, want 50", a.freeBytes())
	}
	if _, ok := a.alloc(20); ok {
		t.Error("alloc(20) succeeded despite external fragmentation")
	}
	if frag := a.fragmentation(); frag < 0.5 {
		t.Errorf("fragmentation = %.2f, want high", frag)
	}
	if err := a.check(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorAdjacentFree(t *testing.T) {
	a := newAllocator(100)
	o1, _ := a.alloc(20) // [0,20)
	o2, _ := a.alloc(20) // [20,40)
	_, _ = a.alloc(60)   // [40,100)
	a.free(o1, 20)
	// o2 has 20 free bytes on its left, none on its right.
	if adj := a.adjacentFree(o2, 20); adj != 20 {
		t.Errorf("adjacentFree = %d, want 20", adj)
	}
}

func TestAllocatorZeroCapacity(t *testing.T) {
	a := newAllocator(0)
	if _, ok := a.alloc(1); ok {
		t.Error("alloc on zero-capacity allocator succeeded")
	}
	if err := a.check(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorRejectsNonPositive(t *testing.T) {
	a := newAllocator(10)
	if _, ok := a.alloc(0); ok {
		t.Error("alloc(0) succeeded")
	}
	if _, ok := a.alloc(-5); ok {
		t.Error("alloc(-5) succeeded")
	}
}

func TestAllocatorChurnInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	a := newAllocator(1 << 16)
	type block struct{ off, size int }
	var live []block
	for i := 0; i < 20000; i++ {
		if rng.Float64() < 0.55 {
			size := 1 + rng.IntN(512)
			if off, ok := a.alloc(size); ok {
				live = append(live, block{off, size})
			}
		} else if len(live) > 0 {
			j := rng.IntN(len(live))
			a.free(live[j].off, live[j].size)
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if i%2000 == 0 {
			if err := a.check(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			want := 0
			for _, b := range live {
				want += b.size
			}
			if a.used != want {
				t.Fatalf("step %d: used = %d, want %d", i, a.used, want)
			}
		}
	}
	// Free everything: buffer must return to one pristine region.
	for _, b := range live {
		a.free(b.off, b.size)
	}
	if a.largestFree() != 1<<16 || a.freeBytes() != 1<<16 {
		t.Errorf("after freeing all: largest %d free %d, want %d", a.largestFree(), a.freeBytes(), 1<<16)
	}
	if err := a.check(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatedBlocksNeverOverlap(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := newAllocator(4096)
	type block struct{ off, size int }
	var live []block
	overlap := func(x, y block) bool {
		return x.off < y.off+y.size && y.off < x.off+x.size
	}
	for i := 0; i < 3000; i++ {
		if rng.Float64() < 0.6 {
			size := 1 + rng.IntN(128)
			if off, ok := a.alloc(size); ok {
				nb := block{off, size}
				for _, b := range live {
					if overlap(nb, b) {
						t.Fatalf("step %d: alloc returned overlapping block", i)
					}
				}
				live = append(live, nb)
			}
		} else if len(live) > 0 {
			j := rng.IntN(len(live))
			a.free(live[j].off, live[j].size)
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
}
