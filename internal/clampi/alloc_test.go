package clampi

import (
	"math/rand/v2"
	"testing"
)

func TestAllocatorBasic(t *testing.T) {
	a := newAllocator(100)
	b1, ok := a.alloc(40)
	if !ok || b1.off != 0 {
		t.Fatalf("alloc(40) = (%v,%v), want (0,true)", b1, ok)
	}
	b2, ok := a.alloc(60)
	if !ok || b2.off != 40 {
		t.Fatalf("alloc(60) = (%v,%v), want (40,true)", b2, ok)
	}
	if _, ok := a.alloc(1); ok {
		t.Error("alloc on a full buffer succeeded")
	}
	if a.freeBytes() != 0 {
		t.Errorf("freeBytes = %d, want 0", a.freeBytes())
	}
	a.free(b1)
	if a.freeBytes() != 40 {
		t.Errorf("freeBytes = %d, want 40", a.freeBytes())
	}
	if err := a.check(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorBestFitReducesWaste(t *testing.T) {
	a := newAllocator(100)
	b1, _ := a.alloc(30) // [0,30)
	b2, _ := a.alloc(20) // [30,50)
	_, _ = a.alloc(50)   // [50,100)
	a.free(b1)
	a.free(b2) // coalesces to [0,50)
	if got := a.largestFree(); got != 50 {
		t.Fatalf("largestFree = %d, want 50 after coalescing", got)
	}
	if err := a.check(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorCoalescingBothSides(t *testing.T) {
	a := newAllocator(90)
	b1, _ := a.alloc(30)
	b2, _ := a.alloc(30)
	b3, _ := a.alloc(30)
	a.free(b1)
	a.free(b3)
	if a.largestFree() != 30 {
		t.Fatalf("largestFree = %d, want 30 (two separate regions)", a.largestFree())
	}
	a.free(b2) // merges left and right into one 90-byte region
	if a.largestFree() != 90 {
		t.Fatalf("largestFree = %d, want 90 after middle free", a.largestFree())
	}
	if err := a.check(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorExternalFragmentation(t *testing.T) {
	// Fill with 10 x 10B, free every other one: 50 free bytes but no
	// region bigger than 10 — an alloc(20) must fail. This is exactly the
	// external fragmentation §II-F describes.
	a := newAllocator(100)
	blks := make([]*block, 10)
	for i := range blks {
		b, ok := a.alloc(10)
		if !ok {
			t.Fatalf("alloc #%d failed", i)
		}
		blks[i] = b
	}
	for i := 0; i < 10; i += 2 {
		a.free(blks[i])
	}
	if a.freeBytes() != 50 {
		t.Fatalf("freeBytes = %d, want 50", a.freeBytes())
	}
	if _, ok := a.alloc(20); ok {
		t.Error("alloc(20) succeeded despite external fragmentation")
	}
	if frag := a.fragmentation(); frag < 0.5 {
		t.Errorf("fragmentation = %.2f, want high", frag)
	}
	if err := a.check(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorAdjacentFree(t *testing.T) {
	a := newAllocator(100)
	b1, _ := a.alloc(20) // [0,20)
	b2, _ := a.alloc(20) // [20,40)
	_, _ = a.alloc(60)   // [40,100)
	a.free(b1)
	// b2 has 20 free bytes on its left, none on its right.
	if adj := a.adjacentFree(b2); adj != 20 {
		t.Errorf("adjacentFree = %d, want 20", adj)
	}
}

func TestAllocatorZeroCapacity(t *testing.T) {
	a := newAllocator(0)
	if _, ok := a.alloc(1); ok {
		t.Error("alloc on zero-capacity allocator succeeded")
	}
	if err := a.check(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorRejectsNonPositive(t *testing.T) {
	a := newAllocator(10)
	if _, ok := a.alloc(0); ok {
		t.Error("alloc(0) succeeded")
	}
	if _, ok := a.alloc(-5); ok {
		t.Error("alloc(-5) succeeded")
	}
}

func TestAllocatorResetRestoresPristineState(t *testing.T) {
	a := newAllocator(1 << 10)
	var live []*block
	for i := 0; i < 20; i++ {
		if b, ok := a.alloc(17 + i); ok {
			live = append(live, b)
		}
	}
	for i := 0; i < len(live); i += 2 {
		a.free(live[i])
	}
	a.reset()
	if a.used != 0 || a.freeBytes() != 1<<10 || a.largestFree() != 1<<10 {
		t.Fatalf("reset left used=%d free=%d largest=%d", a.used, a.freeBytes(), a.largestFree())
	}
	if err := a.check(); err != nil {
		t.Fatal(err)
	}
	// The pools must make post-reset churn allocation-free.
	if got := testing.AllocsPerRun(100, func() {
		b1, _ := a.alloc(64)
		b2, _ := a.alloc(128)
		a.free(b1)
		b3, _ := a.alloc(32)
		a.free(b2)
		a.free(b3)
	}); got != 0 {
		t.Errorf("steady-state alloc/free allocates %.1f/op, want 0", got)
	}
}

func TestAllocatorChurnInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	a := newAllocator(1 << 16)
	var live []*block
	for i := 0; i < 20000; i++ {
		if rng.Float64() < 0.55 {
			size := 1 + rng.IntN(512)
			if b, ok := a.alloc(size); ok {
				live = append(live, b)
			}
		} else if len(live) > 0 {
			j := rng.IntN(len(live))
			a.free(live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if i%2000 == 0 {
			if err := a.check(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			want := 0
			for _, b := range live {
				want += b.size
			}
			if a.used != want {
				t.Fatalf("step %d: used = %d, want %d", i, a.used, want)
			}
		}
	}
	// Free everything: buffer must return to one pristine region.
	for _, b := range live {
		a.free(b)
	}
	if a.largestFree() != 1<<16 || a.freeBytes() != 1<<16 {
		t.Errorf("after freeing all: largest %d free %d, want %d", a.largestFree(), a.freeBytes(), 1<<16)
	}
	if err := a.check(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatedBlocksNeverOverlap(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := newAllocator(4096)
	type region struct{ off, size int }
	var live []region
	var blks []*block
	overlap := func(x, y region) bool {
		return x.off < y.off+y.size && y.off < x.off+x.size
	}
	for i := 0; i < 3000; i++ {
		if rng.Float64() < 0.6 {
			size := 1 + rng.IntN(128)
			if b, ok := a.alloc(size); ok {
				nb := region{b.off, size}
				for _, r := range live {
					if overlap(nb, r) {
						t.Fatalf("step %d: alloc returned overlapping block", i)
					}
				}
				live = append(live, nb)
				blks = append(blks, b)
			}
		} else if len(blks) > 0 {
			j := rng.IntN(len(blks))
			a.free(blks[j])
			blks[j] = blks[len(blks)-1]
			blks = blks[:len(blks)-1]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
}
