package clampi

import (
	"math"
	"testing"
)

func TestKeyHashSpreads(t *testing.T) {
	// Distinct keys should hash to distinct values overwhelmingly often.
	seen := map[uint64]bool{}
	collisions := 0
	for target := 0; target < 4; target++ {
		for off := 0; off < 256; off++ {
			h := key{target: target, offset: off * 16, size: 16}.hash()
			if seen[h] {
				collisions++
			}
			seen[h] = true
		}
	}
	if collisions > 0 {
		t.Errorf("%d hash collisions over 1024 structured keys", collisions)
	}
}

func TestTableLookupInsertRemove(t *testing.T) {
	tab := newTable(8, 2)
	k := key{target: 1, offset: 32, size: 8}
	if tab.lookup(k) != nil {
		t.Fatal("lookup found entry in empty table")
	}
	e := &entry{key: k, appScore: math.NaN()}
	slot := tab.freeSlot(k)
	if slot < 0 {
		t.Fatal("no free slot in empty table")
	}
	tab.insertAt(slot, e)
	if tab.lookup(k) != e {
		t.Fatal("lookup missed inserted entry")
	}
	if tab.n != 1 {
		t.Errorf("n = %d", tab.n)
	}
	tab.remove(e)
	if tab.lookup(k) != nil || tab.n != 0 {
		t.Error("remove did not unlink entry")
	}
}

func TestTableBucketFullConflict(t *testing.T) {
	tab := newTable(1, 2) // one bucket, 2-way: third key conflicts
	for i := 0; i < 2; i++ {
		k := key{offset: i * 16, size: 16}
		tab.insertAt(tab.freeSlot(k), &entry{key: k, appScore: math.NaN()})
	}
	if tab.freeSlot(key{offset: 99, size: 16}) != -1 {
		t.Error("full bucket reported a free slot")
	}
	if got := len(tab.bucketEntries(key{offset: 99, size: 16})); got != 2 {
		t.Errorf("bucketEntries = %d, want 2", got)
	}
}

func TestVictimHeapOrdersByPriority(t *testing.T) {
	prio := func(e *entry) float64 { return e.appScore }
	h := newVictimHeap(prio)
	es := []*entry{
		{appScore: 30}, {appScore: 10}, {appScore: 20},
	}
	for _, e := range es {
		h.push(e)
	}
	if got := h.popMin(); got.appScore != 10 {
		t.Errorf("popMin = %v, want 10", got.appScore)
	}
	if got := h.peekMinPrio(); got != 20 {
		t.Errorf("peekMinPrio = %v, want 20", got)
	}
}

func TestVictimHeapSkipsDeadAndStale(t *testing.T) {
	prio := func(e *entry) float64 { return e.appScore }
	h := newVictimHeap(prio)
	dead := &entry{appScore: 1}
	stale := &entry{appScore: 2}
	live := &entry{appScore: 3}
	h.push(dead)
	h.push(stale)
	h.push(live)
	dead.dead = true
	stale.appScore = 99 // priority drift: must be re-ranked, not returned at 2
	stale.stamp++
	if got := h.popMin(); got != live {
		t.Errorf("popMin returned %v, want the live entry (3)", got.appScore)
	}
	if got := h.popMin(); got != stale {
		t.Error("re-ranked stale entry lost")
	}
	if h.popMin() != nil {
		t.Error("dead entry resurrected")
	}
}

func TestVictimHeapEmptyBehaviour(t *testing.T) {
	h := newVictimHeap(func(e *entry) float64 { return 0 })
	if h.popMin() != nil {
		t.Error("popMin on empty heap")
	}
	if !math.IsInf(h.peekMinPrio(), 1) {
		t.Error("peekMinPrio on empty heap should be +Inf")
	}
	h.push(&entry{})
	h.reset()
	if h.popMin() != nil {
		t.Error("reset did not clear the heap")
	}
}
