package clampi

import (
	"math"
	"math/rand/v2"
	"testing"
)

// refFNV is the seed's byte-loop FNV-1a over the three key fields as 8-byte
// little-endian words — the reference the fast keyCoder hash must match bit
// for bit (bucket selection is pinned by the golden tests).
func refFNV(target, offset, size int) uint64 {
	h := uint64(1469598103934665603)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	mix(uint64(target))
	mix(uint64(offset))
	mix(uint64(size))
	return h
}

// TestKeyCoderHashMatchesFNVReference pins the determinism contract: for
// every coordinate within the coder's bounds, the collapsed hash equals the
// seed's byte-loop FNV-1a exactly.
func TestKeyCoderHashMatchesFNVReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, dims := range [][2]int{{2, 1 << 16}, {7, 3000}, {1, 1}, {4096, 1 << 25}, {3, 1 << 9}} {
		ranks, maxRegion := dims[0], dims[1]
		c := newKeyCoder(ranks, maxRegion)
		for i := 0; i < 2000; i++ {
			target := rng.IntN(ranks)
			size := 1 + rng.IntN(maxRegion)
			offset := rng.IntN(maxRegion - size + 1)
			if got, want := c.hash(target, offset, size), refFNV(target, offset, size); got != want {
				t.Fatalf("coder(%d,%d): hash(%d,%d,%d) = %#x, want %#x",
					ranks, maxRegion, target, offset, size, got, want)
			}
		}
	}
}

func TestKeyCoderPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 9))
	c := newKeyCoder(48, 1<<20)
	seen := map[uint64][3]int{}
	for i := 0; i < 5000; i++ {
		target := rng.IntN(48)
		size := rng.IntN(1 << 20)
		offset := rng.IntN(1<<20 - size + 1)
		k := c.pack(target, offset, size)
		gt, go_, gs := c.unpack(k)
		if gt != target || go_ != offset || gs != size {
			t.Fatalf("unpack(pack(%d,%d,%d)) = (%d,%d,%d)", target, offset, size, gt, go_, gs)
		}
		if prev, dup := seen[k]; dup && prev != [3]int{target, offset, size} {
			t.Fatalf("pack collision: %v and (%d,%d,%d) -> %#x", prev, target, offset, size, k)
		}
		seen[k] = [3]int{target, offset, size}
	}
}

func TestKeyCoderRejectsUnpackableGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized geometry did not panic")
		}
	}()
	newKeyCoder(1<<20, 1<<30) // 20 + 2*31 bits > 64
}

// TestDivMagicExact pins the divisionless bucket mapping: for every
// divisor shape the cache can see (tiny, power-of-two, odd, prime-ish,
// maximal) and adversarial dividends, mod must equal % exactly.
func TestDivMagicExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 37))
	divisors := []uint64{1, 2, 3, 4, 5, 7, 64, 1000, 1024, 16384, 16383, 65537, 1 << 22, 1<<22 - 1, 3_456_789}
	for d := uint64(1); d <= 512; d++ {
		divisors = append(divisors, d)
	}
	for _, d := range divisors {
		m := newDivMagic(d)
		check := func(n uint64) {
			if got, want := m.mod(n), n%d; got != want {
				t.Fatalf("mod(%d) with d=%d = %d, want %d", n, d, got, want)
			}
		}
		check(0)
		check(d - 1)
		check(d)
		check(d + 1)
		check(^uint64(0))
		check(^uint64(0) - 1)
		for i := 0; i < 2000; i++ {
			check(rng.Uint64())
		}
	}
}

func TestKeyHashSpreads(t *testing.T) {
	// Distinct keys should hash to distinct values overwhelmingly often.
	c := newKeyCoder(4, 1<<16)
	seen := map[uint64]bool{}
	collisions := 0
	for target := 0; target < 4; target++ {
		for off := 0; off < 256; off++ {
			h := c.hash(target, off*16, 16)
			if seen[h] {
				collisions++
			}
			seen[h] = true
		}
	}
	if collisions > 0 {
		t.Errorf("%d hash collisions over 1024 structured keys", collisions)
	}
}

func TestTableLookupInsertRemove(t *testing.T) {
	c := newKeyCoder(4, 1<<12)
	tab := newTable(8, 2)
	k, h := c.pack(1, 32, 8), c.hash(1, 32, 8)
	if tab.lookup(k, h) >= 0 {
		t.Fatal("lookup found entry in empty table")
	}
	e := &entry{key: k, appScore: math.NaN()}
	slot := tab.freeSlot(h)
	if slot < 0 {
		t.Fatal("no free slot in empty table")
	}
	tab.insertAt(slot, e, 7)
	got := tab.lookup(k, h)
	if got < 0 || tab.entryAt(got) != e {
		t.Fatal("lookup missed inserted entry")
	}
	if tab.tickOf(got) != 7 || tab.stampOf(got) != 0 {
		t.Errorf("fresh slot meta = (tick %d, stamp %d), want (7, 0)", tab.tickOf(got), tab.stampOf(got))
	}
	if hit := tab.lookupTouch(k, h, 9); hit != got {
		t.Fatalf("lookupTouch = %d, want %d", hit, got)
	}
	if tab.tickOf(got) != 9 || tab.stampOf(got) != 1 {
		t.Errorf("touched slot meta = (tick %d, stamp %d), want (9, 1)", tab.tickOf(got), tab.stampOf(got))
	}
	tab.bumpStamp(got)
	if tab.tickOf(got) != 9 || tab.stampOf(got) != 2 {
		t.Errorf("bumped slot meta = (tick %d, stamp %d), want (9, 2)", tab.tickOf(got), tab.stampOf(got))
	}
	if tab.n != 1 {
		t.Errorf("n = %d", tab.n)
	}
	tab.remove(e)
	if tab.lookup(k, h) >= 0 || tab.n != 0 {
		t.Error("remove did not unlink entry")
	}
}

func TestTableBucketFullConflict(t *testing.T) {
	c := newKeyCoder(2, 1<<12)
	tab := newTable(1, 2) // one bucket, 2-way: third key conflicts
	for i := 0; i < 2; i++ {
		k, h := c.pack(0, i*16, 16), c.hash(0, i*16, 16)
		e := &entry{key: k, appScore: float64(10 * (i + 1))}
		tab.insertAt(tab.freeSlot(h), e, uint64(i))
	}
	h := c.hash(0, 99, 16)
	if tab.freeSlot(h) != -1 {
		t.Error("full bucket reported a free slot")
	}
	prio := func(e *entry) float64 { return e.appScore }
	victim, vPrio := tab.bucketVictim(h, prio)
	if victim == nil || vPrio != 10 {
		t.Errorf("bucketVictim = (%v,%v), want the score-10 entry", victim, vPrio)
	}
}

func TestTableClearForReusesSlots(t *testing.T) {
	tab := newTable(8, 2)
	tab.insertAt(0, &entry{key: 1}, 1)
	before := &tab.ents[0]
	tab.clearFor(8, 2)
	if tab.n != 0 || tab.ents[0] != nil || tab.lane[0] != 0 {
		t.Error("clearFor left entries")
	}
	if &tab.ents[0] != before {
		t.Error("clearFor reallocated the slot array for unchanged geometry")
	}
	tab.clearFor(16, 2)
	if len(tab.ents) != 32 || len(tab.lane) != 64 {
		t.Errorf("clearFor(16,2) slots = %d/%d, want 64/32", len(tab.lane), len(tab.ents))
	}
}

// testHeap builds a victimHeap whose priorities come from appScore and
// whose stamps come from a test-owned side map (in the cache the stamps
// live in the table's bucket lanes).
func testHeap() (*victimHeap, map[*entry]uint64) {
	stamps := map[*entry]uint64{}
	prio := func(e *entry) float64 { return e.appScore }
	stamp := func(e *entry) uint64 { return stamps[e] }
	return newVictimHeap(prio, stamp, nil), stamps
}

func TestVictimHeapOrdersByPriority(t *testing.T) {
	h, _ := testHeap()
	es := []*entry{
		{appScore: 30, heapIdx: -1}, {appScore: 10, heapIdx: -1}, {appScore: 20, heapIdx: -1},
	}
	for _, e := range es {
		h.push(e)
	}
	if got := h.popMin(); got.appScore != 10 {
		t.Errorf("popMin = %v, want 10", got.appScore)
	}
	if got := h.peekMinPrio(); got != 20 {
		t.Errorf("peekMinPrio = %v, want 20", got)
	}
}

func TestVictimHeapSkipsDeadAndStale(t *testing.T) {
	h, stamps := testHeap()
	dead := &entry{appScore: 1, heapIdx: -1}
	stale := &entry{appScore: 2, heapIdx: -1}
	live := &entry{appScore: 3, heapIdx: -1}
	h.push(dead)
	h.push(stale)
	h.push(live)
	dead.dead = true
	stale.appScore = 99 // priority drift: must be re-ranked, not returned at 2
	stamps[stale]++
	if got := h.popMin(); got != live {
		t.Errorf("popMin returned %v, want the live entry (3)", got.appScore)
	}
	if got := h.popMin(); got != stale {
		t.Error("re-ranked stale entry lost")
	}
	if h.popMin() != nil {
		t.Error("dead entry resurrected")
	}
}

func TestVictimHeapEmptyBehaviour(t *testing.T) {
	h, _ := testHeap()
	if h.popMin() != nil {
		t.Error("popMin on empty heap")
	}
	if !math.IsInf(h.peekMinPrio(), 1) {
		t.Error("peekMinPrio on empty heap should be +Inf")
	}
	h.push(&entry{heapIdx: -1})
	h.reset()
	if h.popMin() != nil {
		t.Error("reset did not clear the heap")
	}
}

// TestVictimHeapUpdateKeepsOneItemPerEntry pins the intrusive-update
// contract: re-scoring an entry re-keys it in place instead of stranding a
// duplicate snapshot, and heapIdx tracks positions through sifts.
func TestVictimHeapUpdateKeepsOneItemPerEntry(t *testing.T) {
	h, stamps := testHeap()
	var es []*entry
	for i := 0; i < 16; i++ {
		e := &entry{appScore: float64(i), heapIdx: -1}
		es = append(es, e)
		h.push(e)
	}
	for round := 0; round < 100; round++ {
		e := es[round%len(es)]
		e.appScore = float64((round * 37) % 100)
		stamps[e]++
		h.update(e)
		if h.len() != len(es) {
			t.Fatalf("round %d: heap len %d, want %d", round, h.len(), len(es))
		}
	}
	for i, it := range h.h {
		if int(it.e.heapIdx) != i {
			t.Fatalf("item %d has heapIdx %d", i, it.e.heapIdx)
		}
	}
	// Popping everything yields ascending priorities.
	last := math.Inf(-1)
	for e := h.popMin(); e != nil; e = h.popMin() {
		if e.appScore < last {
			t.Fatalf("pop order not ascending: %v after %v", e.appScore, last)
		}
		last = e.appScore
	}
}
