package clampi

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rma"
)

// TestHitAllocFree is the allocation regression guard for the cache's hot
// path: a hit served from a read-only window must not allocate.
func TestHitAllocFree(t *testing.T) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	w := comm.CreateReadOnlyWindow("ro", [][]byte{nil, make([]byte, 1<<16)})
	r := comm.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	c := New(r, w, Config{Capacity: 1 << 16, Mode: AlwaysCache})
	q := c.Get(1, 0, 256)
	q.Wait()
	q.Release()
	if !c.Contains(1, 0, 256) {
		t.Fatal("warm-up miss was not inserted")
	}
	if got := testing.AllocsPerRun(200, func() {
		hq := c.Get(1, 0, 256)
		_ = hq.Data()
		hq.Release()
	}); got != 0 {
		t.Errorf("cache hit allocates %.1f/op, want 0", got)
	}
	// The writable-window hit path must also be allocation-free: the
	// entry's owned copy is served directly.
	ww := comm.CreateWindow("rw", [][]byte{nil, make([]byte, 1<<16)})
	r.LockAll(ww)
	defer r.UnlockAll(ww)
	cw := New(r, ww, Config{Capacity: 1 << 16, Mode: AlwaysCache})
	q = cw.Get(1, 0, 256)
	q.Wait()
	q.Release()
	if got := testing.AllocsPerRun(200, func() {
		hq := cw.Get(1, 0, 256)
		_ = hq.Data()
		hq.Release()
	}); got != 0 {
		t.Errorf("writable-window cache hit allocates %.1f/op, want 0", got)
	}
}

// TestTryGetAllocFree guards the inline hit fast path: a TryGet hit does
// the full hit bookkeeping (touch, stats, charge) with zero allocations
// and no request, and a TryGet miss touches nothing — so probing before
// the pooled Get is free.
func TestTryGetAllocFree(t *testing.T) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	w := comm.CreateReadOnlyWindow("ro", [][]byte{nil, make([]byte, 1<<16)})
	r := comm.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	c := New(r, w, Config{Capacity: 1 << 16, Mode: AlwaysCache})
	q := c.Get(1, 0, 256)
	q.Wait()
	q.Release()
	if !c.TryGet(1, 0, 256) {
		t.Fatal("TryGet missed a resident region")
	}
	if got := testing.AllocsPerRun(200, func() {
		if !c.TryGet(1, 0, 256) {
			t.Fatal("TryGet missed mid-run")
		}
		_ = w.ViewBytes(1, 0, 256)
	}); got != 0 {
		t.Errorf("TryGet hit allocates %.1f/op, want 0", got)
	}
	missesBefore := c.Stats().Misses
	if got := testing.AllocsPerRun(200, func() {
		if c.TryGet(1, 4096, 256) {
			t.Fatal("TryGet hit a region that was never fetched")
		}
	}); got != 0 {
		t.Errorf("TryGet miss allocates %.1f/op, want 0", got)
	}
	if s := c.Stats(); s.Misses != missesBefore {
		t.Errorf("TryGet miss changed the miss count (%d -> %d); the fallback Get owns miss accounting", missesBefore, s.Misses)
	}
}

// TestTryGetMatchesGet pins TryGet+Get parity: interleaving TryGet probes
// with pooled Gets yields the same statistics as the pooled path alone.
func TestTryGetMatchesGet(t *testing.T) {
	run := func(useTry bool) Stats {
		comm := rma.NewComm(2, rma.DefaultCostModel())
		w := comm.CreateReadOnlyWindow("ro", [][]byte{nil, make([]byte, 1<<16)})
		r := comm.Rank(0)
		r.LockAll(w)
		defer r.UnlockAll(w)
		c := New(r, w, Config{Capacity: 1 << 12, Mode: AlwaysCache})
		access := func(off, size int) {
			if useTry && c.TryGet(1, off, size) {
				return
			}
			q := c.Get(1, off, size)
			q.Wait()
			q.Release()
		}
		for i := 0; i < 400; i++ {
			access((i%24)*512, 256)
		}
		return c.Stats()
	}
	a, b := run(false), run(true)
	if a != b {
		t.Errorf("TryGet-fronted stats differ from pooled-only stats:\n  pooled: %+v\n  trygot: %+v", a, b)
	}
}

// TestTypedWindowCacheServesViews verifies that a cache over the typed
// windows serves hits and completed misses as aliased views of the window.
func TestTypedWindowCacheServesViews(t *testing.T) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	adj := []graph.V{7, 8, 9, 10}
	wv := comm.CreateVertexWindow("adj", [][]graph.V{nil, adj})
	offs := []uint64{0, 2, 2, 4}
	wu := comm.CreateUint64Window("off", [][]uint64{nil, offs})
	r := comm.Rank(0)
	r.LockAll(wv)
	r.LockAll(wu)
	defer r.UnlockAll(wv)
	defer r.UnlockAll(wu)
	cv := New(r, wv, Config{Capacity: 1 << 12, Mode: AlwaysCache})
	cu := New(r, wu, Config{Capacity: 1 << 12, Mode: AlwaysCache})

	// Miss path: the completed request exposes a window view.
	mq := cv.Get(1, 4, 8)
	mq.Wait()
	if got := mq.Vertices(); len(got) != 2 || &got[0] != &adj[1] {
		t.Errorf("miss Vertices = %v, want aliased view of adj[1:3]", got)
	}
	mq.Release()

	// Hit path: ditto, served straight from the table.
	hq := cv.Get(1, 4, 8)
	if !hq.Hit() {
		t.Fatal("second access missed")
	}
	if got := hq.Vertices(); len(got) != 2 || got[0] != 8 || &got[0] != &adj[1] {
		t.Errorf("hit Vertices = %v, want aliased view", got)
	}
	hq.Release()

	uq := cu.Get(1, 16, 16)
	uq.Wait()
	if got := uq.Uint64s(); len(got) != 2 || got[0] != 2 || &got[0] != &offs[2] {
		t.Errorf("miss Uint64s = %v, want aliased view of offs[2:4]", got)
	}
	uq.Release()

	// Local bypass on a typed window.
	lq := cv.Get(0, 0, 0)
	if !lq.Hit() || !lq.Done() {
		t.Error("local bypass must complete immediately")
	}
	lq.Release()
}

// TestRequestPoolRoundTrip checks request/pendingMiss recycling across the
// miss → wait → release lifecycle, including out-of-order completion via
// FlushWindow.
func TestRequestPoolRoundTrip(t *testing.T) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	w := comm.CreateReadOnlyWindow("ro", [][]byte{nil, make([]byte, 1<<12)})
	r := comm.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	c := New(r, w, Config{Capacity: 1 << 12, Mode: AlwaysCache})

	q1 := c.Get(1, 0, 64)
	q2 := c.Get(1, 64, 64)
	mustPanicClampi(t, "release incomplete miss", func() { q1.Release() })
	c.FlushWindow()
	if !q1.Done() || !q2.Done() {
		t.Fatal("FlushWindow left requests incomplete")
	}
	q1.Release()
	q2.Release()
	if len(c.pmFree) != 2 || len(c.reqFree) != 2 {
		t.Errorf("free lists = pm:%d req:%d, want 2/2", len(c.pmFree), len(c.reqFree))
	}
	// Steady state: repeated distinct misses must not grow the pending
	// list or leak pool entries.
	for i := 0; i < 200; i++ {
		q := c.Get(1, (i%32)*128, 128)
		q.Wait()
		q.Release()
	}
	if len(c.pending) > 9 {
		t.Errorf("pending list grew to %d; stale records not compacted", len(c.pending))
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMissReadableAfterRawFlush pins the Done/Data contract for a miss
// whose transfer was completed by a rank-level FlushAll rather than Wait
// or FlushWindow: Done() reports true and the data accessors work; the
// cache insertion simply happens at the next FlushWindow.
func TestMissReadableAfterRawFlush(t *testing.T) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	region := make([]byte, 1<<12)
	region[5] = 42
	w := comm.CreateReadOnlyWindow("ro", [][]byte{nil, region})
	r := comm.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	c := New(r, w, Config{Capacity: 1 << 12, Mode: AlwaysCache})

	q := c.Get(1, 0, 64)
	r.FlushAll(w) // raw rank-level flush, bypassing the cache
	if !q.Done() {
		t.Fatal("Done() = false after the transfer completed")
	}
	if got := q.Data(); got[5] != 42 {
		t.Errorf("Data()[5] = %d, want 42", got[5])
	}
	if c.Contains(1, 0, 64) {
		t.Error("entry inserted before the cache observed completion")
	}
	c.FlushWindow()
	if !c.Contains(1, 0, 64) {
		t.Error("FlushWindow did not insert the completed miss")
	}
	q.Release()
}

// TestMissEvictAllocFree guards the full metadata plane at steady state: a
// workload where every access misses and evicts (tiny cache, wide key set)
// must not allocate once the pools have warmed — entries, blocks, AVL
// nodes, heap items, pending misses and requests all recycle. Checked over
// both a writable window (cache-owned byte copies) and a typed read-only
// window (bookkeeping-only entries).
func TestMissEvictAllocFree(t *testing.T) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	ww := comm.CreateWindow("rw", [][]byte{nil, make([]byte, 1<<20)})
	wv := comm.CreateVertexWindow("adj", [][]graph.V{nil, make([]graph.V, 1<<18)})
	r := comm.Rank(0)
	r.LockAll(ww)
	r.LockAll(wv)
	defer r.UnlockAll(ww)
	defer r.UnlockAll(wv)
	for name, c := range map[string]*Cache{
		"writable": New(r, ww, Config{Capacity: 1 << 10, Mode: AlwaysCache}),
		"readonly": New(r, wv, Config{Capacity: 1 << 10, Mode: AlwaysCache}),
	} {
		i := 0
		cycle := func() {
			q := c.Get(1, (i%1024)*512, 512)
			q.Wait()
			q.Release()
			i++
		}
		for w := 0; w < 2048; w++ {
			cycle() // warm the pools through the full key cycle
		}
		if got := testing.AllocsPerRun(500, cycle); got != 0 {
			t.Errorf("%s: steady-state miss+evict allocates %.1f/op, want 0", name, got)
		}
		if err := c.checkInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestEpochFlushAllocFree: transparent-mode epoch closures must clear the
// table, allocator and heap in place — a steady epoch loop allocates
// nothing (the seed rebuilt table+allocator every epoch).
func TestEpochFlushAllocFree(t *testing.T) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	w := comm.CreateReadOnlyWindow("ro", [][]byte{nil, make([]byte, 1<<16)})
	r := comm.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	c := New(r, w, Config{Capacity: 1 << 12, Mode: Transparent})
	epoch := func() {
		for i := 0; i < 16; i++ {
			q := c.Get(1, i*256, 256)
			q.Wait()
			q.Release()
		}
		c.CloseEpoch()
	}
	for i := 0; i < 8; i++ {
		epoch()
	}
	if got := testing.AllocsPerRun(100, epoch); got != 0 {
		t.Errorf("steady-state epoch flush allocates %.1f/op, want 0", got)
	}
	if c.Stats().Flushes == 0 {
		t.Fatal("transparent mode never flushed")
	}
}

// TestVictimHeapStaysCompact is the stale-item bloat guard: across a
// hit-heavy workload with per-hit score updates (the ScoreDegreeRecency
// pattern), the victim heap must stay at one item per live entry. The
// seed's snapshot heap stranded a duplicate on every SetScore and only
// shed them on future evictions, so this workload grew it without bound.
func TestVictimHeapStaysCompact(t *testing.T) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	w := comm.CreateReadOnlyWindow("ro", [][]byte{nil, make([]byte, 1<<20)})
	r := comm.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	c := New(r, w, Config{Capacity: 1 << 14, Mode: AlwaysCache})
	const entries = 64
	for i := 0; i < entries; i++ {
		q := c.GetScored(1, i*256, 256, float64(i))
		q.Wait()
		q.Release()
	}
	for round := 0; round < 10000; round++ {
		i := round % entries
		q := c.Get(1, i*256, 256) // hit: bumps the entry's stamp
		if !q.Hit() {
			t.Fatalf("round %d: unexpected miss", round)
		}
		q.Release()
		c.SetScore(1, i*256, 256, float64((round*31)%997)) // re-key in place
		if got := c.victims.len(); got > c.tab.n {
			t.Fatalf("round %d: heap holds %d items for %d live entries (stale bloat)", round, got, c.tab.n)
		}
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestZeroKeyIsNeverAHit pins the empty-slot-sentinel guard: the packed
// key 0 (a size-0 get of target 0, offset 0, issued from another rank) is
// a legal access the seed served as an ordinary miss, and must not match
// empty table slots.
func TestZeroKeyIsNeverAHit(t *testing.T) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	w := comm.CreateReadOnlyWindow("ro", [][]byte{make([]byte, 64), make([]byte, 64)})
	r := comm.Rank(1) // target 0 is remote from rank 1
	r.LockAll(w)
	defer r.UnlockAll(w)
	c := New(r, w, Config{Capacity: 1 << 10, Mode: AlwaysCache})
	if c.Contains(0, 0, 0) {
		t.Fatal("empty cache claims to contain the zero key")
	}
	q := c.Get(0, 0, 0)
	if q.Hit() {
		t.Fatal("zero-key get reported a phantom hit on an empty cache")
	}
	q.Wait()
	q.Release()
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 1 || s.RejectedInserts != 1 {
		t.Errorf("zero-key stats = %+v, want 1 miss, 1 rejected insert, 0 hits", s)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func mustPanicClampi(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
