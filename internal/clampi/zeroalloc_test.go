package clampi

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rma"
)

// TestHitAllocFree is the allocation regression guard for the cache's hot
// path: a hit served from a read-only window must not allocate.
func TestHitAllocFree(t *testing.T) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	w := comm.CreateReadOnlyWindow("ro", [][]byte{nil, make([]byte, 1<<16)})
	r := comm.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	c := New(r, w, Config{Capacity: 1 << 16, Mode: AlwaysCache})
	q := c.Get(1, 0, 256)
	q.Wait()
	q.Release()
	if !c.Contains(1, 0, 256) {
		t.Fatal("warm-up miss was not inserted")
	}
	if got := testing.AllocsPerRun(200, func() {
		hq := c.Get(1, 0, 256)
		_ = hq.Data()
		hq.Release()
	}); got != 0 {
		t.Errorf("cache hit allocates %.1f/op, want 0", got)
	}
	// The writable-window hit path must also be allocation-free: the
	// entry's owned copy is served directly.
	ww := comm.CreateWindow("rw", [][]byte{nil, make([]byte, 1<<16)})
	r.LockAll(ww)
	defer r.UnlockAll(ww)
	cw := New(r, ww, Config{Capacity: 1 << 16, Mode: AlwaysCache})
	q = cw.Get(1, 0, 256)
	q.Wait()
	q.Release()
	if got := testing.AllocsPerRun(200, func() {
		hq := cw.Get(1, 0, 256)
		_ = hq.Data()
		hq.Release()
	}); got != 0 {
		t.Errorf("writable-window cache hit allocates %.1f/op, want 0", got)
	}
}

// TestTypedWindowCacheServesViews verifies that a cache over the typed
// windows serves hits and completed misses as aliased views of the window.
func TestTypedWindowCacheServesViews(t *testing.T) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	adj := []graph.V{7, 8, 9, 10}
	wv := comm.CreateVertexWindow("adj", [][]graph.V{nil, adj})
	offs := []uint64{0, 2, 2, 4}
	wu := comm.CreateUint64Window("off", [][]uint64{nil, offs})
	r := comm.Rank(0)
	r.LockAll(wv)
	r.LockAll(wu)
	defer r.UnlockAll(wv)
	defer r.UnlockAll(wu)
	cv := New(r, wv, Config{Capacity: 1 << 12, Mode: AlwaysCache})
	cu := New(r, wu, Config{Capacity: 1 << 12, Mode: AlwaysCache})

	// Miss path: the completed request exposes a window view.
	mq := cv.Get(1, 4, 8)
	mq.Wait()
	if got := mq.Vertices(); len(got) != 2 || &got[0] != &adj[1] {
		t.Errorf("miss Vertices = %v, want aliased view of adj[1:3]", got)
	}
	mq.Release()

	// Hit path: ditto, served straight from the table.
	hq := cv.Get(1, 4, 8)
	if !hq.Hit() {
		t.Fatal("second access missed")
	}
	if got := hq.Vertices(); len(got) != 2 || got[0] != 8 || &got[0] != &adj[1] {
		t.Errorf("hit Vertices = %v, want aliased view", got)
	}
	hq.Release()

	uq := cu.Get(1, 16, 16)
	uq.Wait()
	if got := uq.Uint64s(); len(got) != 2 || got[0] != 2 || &got[0] != &offs[2] {
		t.Errorf("miss Uint64s = %v, want aliased view of offs[2:4]", got)
	}
	uq.Release()

	// Local bypass on a typed window.
	lq := cv.Get(0, 0, 0)
	if !lq.Hit() || !lq.Done() {
		t.Error("local bypass must complete immediately")
	}
	lq.Release()
}

// TestRequestPoolRoundTrip checks request/pendingMiss recycling across the
// miss → wait → release lifecycle, including out-of-order completion via
// FlushWindow.
func TestRequestPoolRoundTrip(t *testing.T) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	w := comm.CreateReadOnlyWindow("ro", [][]byte{nil, make([]byte, 1<<12)})
	r := comm.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	c := New(r, w, Config{Capacity: 1 << 12, Mode: AlwaysCache})

	q1 := c.Get(1, 0, 64)
	q2 := c.Get(1, 64, 64)
	mustPanicClampi(t, "release incomplete miss", func() { q1.Release() })
	c.FlushWindow()
	if !q1.Done() || !q2.Done() {
		t.Fatal("FlushWindow left requests incomplete")
	}
	q1.Release()
	q2.Release()
	if len(c.pmFree) != 2 || len(c.reqFree) != 2 {
		t.Errorf("free lists = pm:%d req:%d, want 2/2", len(c.pmFree), len(c.reqFree))
	}
	// Steady state: repeated distinct misses must not grow the pending
	// list or leak pool entries.
	for i := 0; i < 200; i++ {
		q := c.Get(1, (i%32)*128, 128)
		q.Wait()
		q.Release()
	}
	if len(c.pending) > 33 {
		t.Errorf("pending list grew to %d; stale records not compacted", len(c.pending))
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMissReadableAfterRawFlush pins the Done/Data contract for a miss
// whose transfer was completed by a rank-level FlushAll rather than Wait
// or FlushWindow: Done() reports true and the data accessors work; the
// cache insertion simply happens at the next FlushWindow.
func TestMissReadableAfterRawFlush(t *testing.T) {
	comm := rma.NewComm(2, rma.DefaultCostModel())
	region := make([]byte, 1<<12)
	region[5] = 42
	w := comm.CreateReadOnlyWindow("ro", [][]byte{nil, region})
	r := comm.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	c := New(r, w, Config{Capacity: 1 << 12, Mode: AlwaysCache})

	q := c.Get(1, 0, 64)
	r.FlushAll(w) // raw rank-level flush, bypassing the cache
	if !q.Done() {
		t.Fatal("Done() = false after the transfer completed")
	}
	if got := q.Data(); got[5] != 42 {
		t.Errorf("Data()[5] = %d, want 42", got[5])
	}
	if c.Contains(1, 0, 64) {
		t.Error("entry inserted before the cache observed completion")
	}
	c.FlushWindow()
	if !c.Contains(1, 0, 64) {
		t.Error("FlushWindow did not insert the completed miss")
	}
	q.Release()
}

func mustPanicClampi(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
