package clampi

import (
	"container/heap"
	"math"
)

// key identifies a cached RMA access: CLaMPI indexes entries by the target
// rank and the (offset, size) of the get. The engine's reads for a given
// vertex always use identical coordinates, so exact matching suffices.
type key struct {
	target int
	offset int
	size   int
}

func (k key) hash() uint64 {
	// FNV-1a over the three fields.
	h := uint64(1469598103934665603)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	mix(uint64(k.target))
	mix(uint64(k.offset))
	mix(uint64(k.size))
	return h
}

// entry is one cached region: the data retrieved by a completed RMA get,
// plus the bookkeeping used for victim selection.
type entry struct {
	key      key
	bufOff   int // position in the memory buffer
	data     []byte
	lastTick uint64  // temporal component (LRU tick of last access)
	appScore float64 // application-defined score; NaN = unset (§III-B-2)
	bucket   int     // home bucket in the table
	stamp    uint64  // bumped on every score-relevant change (lazy heap)
	dead     bool
}

func (e *entry) hasAppScore() bool { return !math.IsNaN(e.appScore) }

// table is the set-associative hash index. A lookup probes the `assoc`
// slots of one bucket; inserting into a full bucket forces a *conflict*
// eviction, distinct from the capacity evictions forced by the memory
// buffer (CLaMPI's adaptive heuristic watches the two separately).
type table struct {
	buckets int
	assoc   int
	slots   []*entry // buckets*assoc
	n       int
}

func newTable(buckets, assoc int) *table {
	if buckets < 1 {
		buckets = 1
	}
	if assoc < 1 {
		assoc = 1
	}
	return &table{buckets: buckets, assoc: assoc, slots: make([]*entry, buckets*assoc)}
}

func (t *table) bucketOf(k key) int { return int(k.hash() % uint64(t.buckets)) }

// lookup returns the entry for k, or nil.
func (t *table) lookup(k key) *entry {
	b := t.bucketOf(k)
	for i := 0; i < t.assoc; i++ {
		if e := t.slots[b*t.assoc+i]; e != nil && e.key == k {
			return e
		}
	}
	return nil
}

// freeSlot returns the index of a free slot in k's bucket, or -1 if the
// bucket is full (a conflict).
func (t *table) freeSlot(k key) int {
	b := t.bucketOf(k)
	for i := 0; i < t.assoc; i++ {
		if t.slots[b*t.assoc+i] == nil {
			return b*t.assoc + i
		}
	}
	return -1
}

// bucketEntries returns the live entries currently in k's bucket.
func (t *table) bucketEntries(k key) []*entry {
	b := t.bucketOf(k)
	var out []*entry
	for i := 0; i < t.assoc; i++ {
		if e := t.slots[b*t.assoc+i]; e != nil {
			out = append(out, e)
		}
	}
	return out
}

// insertAt places e in slot idx (previously obtained from freeSlot).
func (t *table) insertAt(idx int, e *entry) {
	e.bucket = idx
	t.slots[idx] = e
	t.n++
}

// remove unlinks e from the table.
func (t *table) remove(e *entry) {
	if t.slots[e.bucket] == e {
		t.slots[e.bucket] = nil
		t.n--
	}
}

// each visits every live entry.
func (t *table) each(f func(e *entry)) {
	for _, e := range t.slots {
		if e != nil {
			f(e)
		}
	}
}

// --- lazy min-heap over entry priorities (victim candidates) -------------

type heapItem struct {
	prio  float64
	stamp uint64
	e     *entry
}

type prioHeap []heapItem

func (h prioHeap) Len() int            { return len(h) }
func (h prioHeap) Less(i, j int) bool  { return h[i].prio < h[j].prio }
func (h prioHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *prioHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *prioHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// victimHeap yields entries in ascending priority with lazy invalidation:
// stale items (whose entry died or changed since push) are skipped on pop
// and, if alive, re-pushed with their current priority.
type victimHeap struct {
	h    prioHeap
	prio func(*entry) float64
}

func newVictimHeap(prio func(*entry) float64) *victimHeap {
	return &victimHeap{prio: prio}
}

func (v *victimHeap) push(e *entry) {
	heap.Push(&v.h, heapItem{prio: v.prio(e), stamp: e.stamp, e: e})
}

// popMin returns the live minimum-priority entry, or nil if none remain.
// Snapshots whose entry changed (stamp) or whose computed priority drifted
// (e.g. the positional component, which moves when neighbours are freed)
// are re-pushed with the fresh value and retried.
func (v *victimHeap) popMin() *entry {
	for v.h.Len() > 0 {
		it := heap.Pop(&v.h).(heapItem)
		if it.e.dead {
			continue
		}
		if it.e.stamp != it.stamp {
			v.push(it.e)
			continue
		}
		if cur := v.prio(it.e); cur != it.prio {
			heap.Push(&v.h, heapItem{prio: cur, stamp: it.e.stamp, e: it.e})
			continue
		}
		return it.e
	}
	return nil
}

// peekMinPrio returns the priority of the live minimum, or +Inf.
func (v *victimHeap) peekMinPrio() float64 {
	for v.h.Len() > 0 {
		it := v.h[0]
		if it.e.dead || it.e.stamp != it.stamp {
			heap.Pop(&v.h)
			if !it.e.dead {
				v.push(it.e)
			}
			continue
		}
		if cur := v.prio(it.e); cur != it.prio {
			heap.Pop(&v.h)
			heap.Push(&v.h, heapItem{prio: cur, stamp: it.e.stamp, e: it.e})
			continue
		}
		return it.prio
	}
	return math.Inf(1)
}

func (v *victimHeap) reset() { v.h = v.h[:0] }
