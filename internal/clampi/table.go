package clampi

import "math"

// entry is one cached region: the bookkeeping for a completed RMA get used
// in lookup and victim selection. The hit path never touches this struct
// for read-only windows — the LRU tick and revalidation stamp live in the
// table's bucket lane next to the key (see table) — so an entry is only
// dereferenced on insert, eviction, heap maintenance and writable-window
// hits. Its extent (including the region size) lives in blk; bytes cached
// over writable windows live in a side record so read-only caches (the
// engines' case) pay nothing for them.
type entry struct {
	key      uint64     // packed (target, offset, size); see keyCoder
	blk      *block     // extent in the memory buffer (blk.size = get size)
	appScore float64    // application-defined score; NaN = unset (§III-B-2)
	bytes    *entryData // writable-window copy; nil on read-only windows
	slot     int32      // home slot in the table (bucket*assoc + way)
	heapIdx  int32      // position in the victim heap, -1 if absent
	dead     bool
}

// entryData holds a writable-window entry's byte copy; data aliases buf.
// The record stays attached to its entry across recycles, so the backing
// buffer is reused.
type entryData struct {
	data, buf []byte
}

func (e *entry) size() int { return e.blk.size }

func (e *entry) hasAppScore() bool { return !math.IsNaN(e.appScore) }

// entryPool recycles entry records. Fresh records come from slabs whose size
// doubles, so filling a cache of N entries costs O(log N) allocations and
// steady-state churn costs none.
type entryPool struct {
	free []*entry
	slab int
}

func (p *entryPool) get() *entry {
	if len(p.free) == 0 {
		if p.slab == 0 {
			p.slab = 64
		}
		entries := make([]entry, p.slab)
		if p.slab < 16384 {
			p.slab *= 2
		}
		for i := range entries {
			p.free = append(p.free, &entries[i])
		}
	}
	n := len(p.free)
	e := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	bytes := e.bytes
	if bytes != nil {
		bytes.data = nil
		bytes.buf = bytes.buf[:0]
	}
	*e = entry{bytes: bytes, heapIdx: -1, appScore: math.NaN()}
	return e
}

func (p *entryPool) put(e *entry) {
	p.free = append(p.free, e)
}

// table is the set-associative hash index. A lookup probes the `assoc`
// slots of one bucket; inserting into a full bucket forces a *conflict*
// eviction, distinct from the capacity evictions forced by the memory
// buffer (CLaMPI's adaptive heuristic watches the two separately).
//
// The bucket of a key is h % buckets where h is the keyCoder hash — a
// mapping pinned by the golden tests (it decides which keys conflict), so
// the table takes the hash as an argument rather than choosing its own.
//
// Layout: each bucket owns one contiguous "lane" of 2*assoc words —
// assoc packed keys followed by assoc meta words. A meta word carries the
// entry's LRU tick (high 40 bits) and revalidation stamp (low 24 bits), so
// a read-only-window hit probes the keys AND refreshes tick+stamp within
// one cache line (64 bytes at the default assoc of 4) and never touches
// the entry struct. Tick truncation starts above 2^40 accesses per cache
// and a stamp only aliases after exactly 2^24 bumps between a heap
// snapshot and its revalidation — both far past any plausible epoch.
// A packed key is never 0 for a stored entry (the size field is non-zero
// for every insertable region), so 0 doubles as the empty-slot sentinel.
type table struct {
	buckets int
	assoc   int
	magic   divMagic // divisionless h % buckets (bit-exact; see divMagic)
	lane    []uint64 // buckets * 2*assoc: [assoc keys][assoc meta] per bucket
	ents    []*entry // buckets*assoc
	n       int
}

const (
	metaStampBits = 24
	metaStampMask = 1<<metaStampBits - 1
)

func newTable(buckets, assoc int) *table {
	t := &table{}
	t.clearFor(buckets, assoc)
	return t
}

// clearFor empties the table for the given geometry, reusing the backing
// arrays when the geometry is unchanged (the steady-state flush path).
func (t *table) clearFor(buckets, assoc int) {
	if buckets < 1 {
		buckets = 1
	}
	if assoc < 1 {
		assoc = 1
	}
	if t.buckets != buckets || t.assoc != assoc {
		t.buckets, t.assoc = buckets, assoc
		t.magic = newDivMagic(uint64(buckets))
		t.lane = make([]uint64, buckets*2*assoc)
		t.ents = make([]*entry, buckets*assoc)
		t.n = 0
		return
	}
	for i := range t.lane {
		t.lane[i] = 0
	}
	for i := range t.ents {
		t.ents[i] = nil
	}
	t.n = 0
}

func (t *table) bucketOf(h uint64) int { return int(t.magic.mod(h)) }

// lookup returns the slot index (bucket*assoc + way) holding packed key k,
// or -1. The probe walks only the bucket's key words. Key 0 — the only
// packable coordinate with size 0 — is never stored (insert rejects empty
// regions), and must not match the empty-slot sentinel.
func (t *table) lookup(k, h uint64) int {
	if k == 0 {
		return -1
	}
	b := t.bucketOf(h)
	base := b * 2 * t.assoc
	for i := 0; i < t.assoc; i++ {
		if t.lane[base+i] == k {
			return b*t.assoc + i
		}
	}
	return -1
}

// lookupTouch is lookup fused with the hit-path meta refresh: on a match
// the slot's tick is replaced and its stamp incremented in the same lane
// line the probe just read, with no slot→bucket back-derivation. Misses
// leave the table untouched.
func (t *table) lookupTouch(k, h, tick uint64) int {
	if k == 0 {
		return -1
	}
	b := t.bucketOf(h)
	base := b * 2 * t.assoc
	for i := 0; i < t.assoc; i++ {
		if t.lane[base+i] == k {
			mi := base + t.assoc + i
			m := t.lane[mi]
			t.lane[mi] = tick<<metaStampBits | (m+1)&metaStampMask
			return b*t.assoc + i
		}
	}
	return -1
}

// metaIdx maps a slot index to its meta word in the lane array.
func (t *table) metaIdx(slot int) int {
	b, i := slot/t.assoc, slot%t.assoc
	return b*2*t.assoc + t.assoc + i
}

// tickOf returns the slot's LRU tick; stampOf its revalidation stamp.
func (t *table) tickOf(slot int) uint64  { return t.lane[t.metaIdx(slot)] >> metaStampBits }
func (t *table) stampOf(slot int) uint64 { return t.lane[t.metaIdx(slot)] & metaStampMask }

// bumpStamp invalidates outstanding heap snapshots of the slot's entry
// without touching its tick (score updates).
func (t *table) bumpStamp(slot int) {
	mi := t.metaIdx(slot)
	m := t.lane[mi]
	t.lane[mi] = m&^uint64(metaStampMask) | (m+1)&metaStampMask
}

// entryAt returns the entry stored in slot (nil if empty).
func (t *table) entryAt(slot int) *entry { return t.ents[slot] }

// freeSlot returns a free slot index in the key's bucket, or -1 if the
// bucket is full (a conflict). It probes the lane's key words (0 = empty,
// the same line the preceding lookup warmed) rather than the entry array.
func (t *table) freeSlot(h uint64) int {
	b := t.bucketOf(h)
	base := b * 2 * t.assoc
	for i := 0; i < t.assoc; i++ {
		if t.lane[base+i] == 0 {
			return b*t.assoc + i
		}
	}
	return -1
}

// bucketVictim scans the key's bucket in slot order and returns the live
// entry with strictly minimal priority (the conflict-eviction victim), with
// its priority. Allocation-free replacement for collecting the bucket into
// a slice first; the scan order and strict-< tie rule match the seed.
func (t *table) bucketVictim(h uint64, prio func(*entry) float64) (*entry, float64) {
	base := t.bucketOf(h) * t.assoc
	var victim *entry
	vPrio := math.Inf(1)
	for i := 0; i < t.assoc; i++ {
		e := t.ents[base+i]
		if e == nil {
			continue
		}
		if p := prio(e); p < vPrio {
			victim, vPrio = e, p
		}
	}
	return victim, vPrio
}

// insertAt places e in slot idx (previously obtained from freeSlot) with
// the given insertion tick and a fresh stamp.
func (t *table) insertAt(idx int, e *entry, tick uint64) {
	e.slot = int32(idx)
	b, i := idx/t.assoc, idx%t.assoc
	t.lane[b*2*t.assoc+i] = e.key
	t.lane[b*2*t.assoc+t.assoc+i] = tick << metaStampBits
	t.ents[idx] = e
	t.n++
}

// remove unlinks e from the table.
func (t *table) remove(e *entry) {
	idx := int(e.slot)
	if t.ents[idx] == e {
		b, i := idx/t.assoc, idx%t.assoc
		t.lane[b*2*t.assoc+i] = 0
		t.ents[idx] = nil
		t.n--
	}
}

// each visits every live entry.
func (t *table) each(f func(e *entry)) {
	for _, e := range t.ents {
		if e != nil {
			f(e)
		}
	}
}

// --- victim heap (capacity-eviction candidates) ---------------------------

type heapItem struct {
	prio  float64
	stamp uint64
	e     *entry
}

// victimHeap yields entries in ascending priority with lazy revalidation:
// items are keyed by the priority observed when they were (re)pushed; an
// item whose entry died, whose stamp moved, or whose computed priority
// drifted (e.g. the positional component, which moves when neighbours are
// freed) is skipped on pop and, if alive, re-pushed with its current value.
//
// DETERMINISM CONTRACT: the pop order among equal-priority items — and the
// revalidation order for entries whose stale keys shadow their current
// ones — is an emergent property of the heap's array mechanics, and the
// golden tests pin simulated results that depend on it (the pinned cached
// run takes ~180k capacity evictions, ~53k of them with ties at the
// minimum). The sift routines below therefore replicate container/heap's
// push (append + siftUp) and pop (swap root/last + siftDown from the root)
// element movements exactly, and eviction keeps the seed's lazy shape:
// hits bump stamps without touching the heap, dead conflict victims stay
// as remnants until a pop collects them. Do not "optimize" the mechanics —
// eager invalidation or a different sift order silently changes eviction
// order and moves SimTime bits.
//
// Unlike the seed's snapshot heap, each entry appears at most once
// (entry.heapIdx tracks its position), so the heap is O(live entries):
// score updates re-key in place instead of stranding duplicate snapshots.
// Dead remnants are recycled to the entry pool as pops or resets collect
// them, via the free callback.
type victimHeap struct {
	h     []heapItem
	prio  func(*entry) float64
	stamp func(*entry) uint64 // current revalidation stamp of a live entry
	free  func(*entry)        // recycle collected dead entries; may be nil in tests
}

func newVictimHeap(prio func(*entry) float64, stamp func(*entry) uint64, free func(*entry)) *victimHeap {
	return &victimHeap{prio: prio, stamp: stamp, free: free}
}

func (v *victimHeap) len() int { return len(v.h) }

func (v *victimHeap) less(i, j int) bool { return v.h[i].prio < v.h[j].prio }

func (v *victimHeap) swap(i, j int) {
	v.h[i], v.h[j] = v.h[j], v.h[i]
	v.h[i].e.heapIdx = int32(i)
	v.h[j].e.heapIdx = int32(j)
}

// up and down are container/heap's sift routines verbatim (see the
// determinism contract above).
func (v *victimHeap) up(j int) {
	for {
		i := (j - 1) / 2
		if i == j || !v.less(j, i) {
			break
		}
		v.swap(i, j)
		j = i
	}
}

func (v *victimHeap) down(i0, n int) bool {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && v.less(j2, j1) {
			j = j2
		}
		if !v.less(j, i) {
			break
		}
		v.swap(i, j)
		i = j
	}
	return i > i0
}

// push keys e by its current priority and stamp.
func (v *victimHeap) push(e *entry) {
	v.h = append(v.h, heapItem{prio: v.prio(e), stamp: v.stamp(e), e: e})
	e.heapIdx = int32(len(v.h) - 1)
	v.up(int(e.heapIdx))
}

// pop removes and returns the root item.
func (v *victimHeap) pop() heapItem {
	n := len(v.h) - 1
	v.swap(0, n)
	v.down(0, n)
	it := v.h[n]
	v.h[n] = heapItem{}
	v.h = v.h[:n]
	it.e.heapIdx = -1
	return it
}

// update re-keys e in place after a score change (container/heap.Fix). This
// is the one deliberate divergence from the seed, which pushed a duplicate
// snapshot per update and let hit-heavy SetScore traffic grow the heap
// without bound; no golden configuration exercises score updates.
func (v *victimHeap) update(e *entry) {
	i := int(e.heapIdx)
	if i < 0 {
		v.push(e)
		return
	}
	v.h[i].prio = v.prio(e)
	v.h[i].stamp = v.stamp(e)
	if !v.down(i, len(v.h)) {
		v.up(i)
	}
}

func (v *victimHeap) collect(e *entry) {
	if v.free != nil {
		v.free(e)
	}
}

// popMin returns the live minimum-priority entry, or nil if none remain.
// Stale items (dead, stamp moved, or priority drifted) are skipped and, if
// alive, re-pushed with their current value and retried.
func (v *victimHeap) popMin() *entry {
	for len(v.h) > 0 {
		it := v.pop()
		if it.e.dead {
			v.collect(it.e)
			continue
		}
		if v.stamp(it.e) != it.stamp {
			v.push(it.e)
			continue
		}
		if cur := v.prio(it.e); cur != it.prio {
			v.push(it.e)
			continue
		}
		return it.e
	}
	return nil
}

// peekMinPrio returns the priority of the live minimum, or +Inf.
func (v *victimHeap) peekMinPrio() float64 {
	for len(v.h) > 0 {
		it := v.h[0]
		if it.e.dead || v.stamp(it.e) != it.stamp {
			v.pop()
			if it.e.dead {
				v.collect(it.e)
			} else {
				v.push(it.e)
			}
			continue
		}
		if cur := v.prio(it.e); cur != it.prio {
			v.pop()
			v.push(it.e)
			continue
		}
		return it.prio
	}
	return math.Inf(1)
}

// reset empties the heap in place, recycling every referenced entry (the
// cache marks all entries dead before flushing, and dead remnants are the
// only other population).
func (v *victimHeap) reset() {
	for i := range v.h {
		e := v.h[i].e
		v.h[i] = heapItem{}
		e.heapIdx = -1
		v.collect(e)
	}
	v.h = v.h[:0]
}
