// Package clampi reimplements CLaMPI (Di Girolamo, Vella, Hoefler,
// IPDPS'17), the transparent software caching layer for MPI RMA the paper
// builds on, including the paper's extension: application-defined scores
// for cached entries that steer victim selection (§III-B-2).
//
// As in the original system, variable-size entries are supported with two
// data structures: a hash table indexing cached entries and an AVL tree
// storing the free regions of the memory buffer reserved for caching
// (§II-F). Both the hash-table size and the buffer capacity are tunable,
// and an adaptive heuristic can resize the hash table by observing misses,
// conflicts and evictions.
//
// The metadata plane is allocation-free at steady state: entries, free-list
// blocks and AVL nodes are recycled through per-cache pools, the victim
// heap and hash table reuse their backing arrays, and epoch flushes clear
// the structures in place.
package clampi

// avlTree is a balanced tree over free buffer regions ordered by
// (size, offset). It supports the best-fit query the allocator needs: the
// smallest free region of at least a given size. Nodes are recycled through
// an internal pool (grown in slabs), so steady-state insert/remove traffic
// performs no heap allocations.
type avlTree struct {
	root *avlNode
	n    int
	pool *avlNode // free nodes, linked through right
	slab int      // next slab size (doubles up to a cap)
}

type avlNode struct {
	size, off   int
	blk         *block // the free block this node indexes (nil in bare tests)
	left, right *avlNode
	height      int
}

func (t *avlTree) len() int { return t.n }

func (t *avlTree) newNode(size, off int, b *block) *avlNode {
	if t.pool == nil {
		if t.slab == 0 {
			t.slab = 32
		}
		nodes := make([]avlNode, t.slab)
		if t.slab < 4096 {
			t.slab *= 2
		}
		for i := range nodes {
			nodes[i].right = t.pool
			t.pool = &nodes[i]
		}
	}
	n := t.pool
	t.pool = n.right
	*n = avlNode{size: size, off: off, blk: b, height: 1}
	return n
}

func (t *avlTree) putNode(n *avlNode) {
	*n = avlNode{right: t.pool}
	t.pool = n
}

// reset returns every node to the pool, leaving an empty tree.
func (t *avlTree) reset() {
	t.poolSubtree(t.root)
	t.root = nil
	t.n = 0
}

func (t *avlTree) poolSubtree(n *avlNode) {
	if n == nil {
		return
	}
	t.poolSubtree(n.left)
	r := n.right
	t.putNode(n)
	t.poolSubtree(r)
}

// less orders regions by (size, offset); offsets are unique because free
// regions are disjoint, so the order is total.
func regionLess(s1, o1, s2, o2 int) bool {
	if s1 != s2 {
		return s1 < s2
	}
	return o1 < o2
}

func height(n *avlNode) int {
	if n == nil {
		return 0
	}
	return n.height
}

func fix(n *avlNode) {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
}

func rotateRight(y *avlNode) *avlNode {
	x := y.left
	y.left = x.right
	x.right = y
	fix(y)
	fix(x)
	return x
}

func rotateLeft(x *avlNode) *avlNode {
	y := x.right
	x.right = y.left
	y.left = x
	fix(x)
	fix(y)
	return y
}

func rebalance(n *avlNode) *avlNode {
	fix(n)
	bf := height(n.left) - height(n.right)
	switch {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// insert adds the region (size, off) carrying payload b. Duplicate keys must
// not occur (free regions are disjoint); inserting one panics, exposing
// allocator bugs.
func (t *avlTree) insert(size, off int, b *block) {
	t.root = t.avlInsert(t.root, size, off, b)
	t.n++
}

func (t *avlTree) avlInsert(n *avlNode, size, off int, b *block) *avlNode {
	if n == nil {
		return t.newNode(size, off, b)
	}
	switch {
	case regionLess(size, off, n.size, n.off):
		n.left = t.avlInsert(n.left, size, off, b)
	case regionLess(n.size, n.off, size, off):
		n.right = t.avlInsert(n.right, size, off, b)
	default:
		panic("clampi: duplicate free region in AVL tree")
	}
	return rebalance(n)
}

// remove deletes the region (size, off); it reports whether it was present.
// The physically removed node returns to the pool.
func (t *avlTree) remove(size, off int) bool {
	var removed bool
	t.root, removed = t.avlRemove(t.root, size, off)
	if removed {
		t.n--
	}
	return removed
}

func (t *avlTree) avlRemove(n *avlNode, size, off int) (*avlNode, bool) {
	if n == nil {
		return nil, false
	}
	var removed bool
	switch {
	case regionLess(size, off, n.size, n.off):
		n.left, removed = t.avlRemove(n.left, size, off)
	case regionLess(n.size, n.off, size, off):
		n.right, removed = t.avlRemove(n.right, size, off)
	default:
		removed = true
		if n.left == nil {
			r := n.right
			t.putNode(n)
			return r, true
		}
		if n.right == nil {
			l := n.left
			t.putNode(n)
			return l, true
		}
		// Replace with the in-order successor (key and payload).
		s := n.right
		for s.left != nil {
			s = s.left
		}
		n.size, n.off, n.blk = s.size, s.off, s.blk
		n.right, _ = t.avlRemove(n.right, s.size, s.off)
	}
	return rebalance(n), removed
}

// bestFit returns the smallest region with size >= want, or nil.
func (t *avlTree) bestFit(want int) *avlNode {
	var best *avlNode
	n := t.root
	for n != nil {
		if n.size >= want {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	return best
}

// max returns the largest region in the tree, or nil if empty.
func (t *avlTree) max() *avlNode {
	var m *avlNode
	n := t.root
	for n != nil {
		m = n
		n = n.right
	}
	return m
}

// walk visits every region in (size, offset) order.
func (t *avlTree) walk(f func(size, off int)) {
	var rec func(n *avlNode)
	rec = func(n *avlNode) {
		if n == nil {
			return
		}
		rec(n.left)
		f(n.size, n.off)
		rec(n.right)
	}
	rec(t.root)
}

// checkBalance verifies AVL invariants (for tests). It returns the number
// of nodes, or -1 if an invariant is violated.
func (t *avlTree) checkBalance() int {
	ok := true
	var rec func(n *avlNode) int
	rec = func(n *avlNode) int {
		if n == nil {
			return 0
		}
		hl, hr := rec(n.left), rec(n.right)
		if hl-hr > 1 || hr-hl > 1 {
			ok = false
		}
		h := hl
		if hr > h {
			h = hr
		}
		if n.height != h+1 {
			ok = false
		}
		if n.left != nil && !regionLess(n.left.size, n.left.off, n.size, n.off) {
			ok = false
		}
		if n.right != nil && !regionLess(n.size, n.off, n.right.size, n.right.off) {
			ok = false
		}
		return h + 1
	}
	rec(t.root)
	if !ok {
		return -1
	}
	count := 0
	t.walk(func(int, int) { count++ })
	return count
}
