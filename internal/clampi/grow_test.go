package clampi

import (
	"bytes"
	"testing"
)

func TestAllocatorGrow(t *testing.T) {
	a := newAllocator(64)
	b1, ok := a.alloc(40)
	if !ok {
		t.Fatal("alloc 40 in 64 failed")
	}
	if _, ok := a.alloc(40); ok {
		t.Fatal("alloc 40 with 24 free should fail")
	}
	a.grow(64)
	if a.capacity != 128 {
		t.Fatalf("capacity = %d, want 128", a.capacity)
	}
	// The 24-byte tail must have merged with the new 64: a 64-byte
	// allocation fits only if the regions coalesced (24+64=88).
	b2, ok := a.alloc(80)
	if !ok {
		t.Fatal("alloc 80 after grow failed: tail did not coalesce")
	}
	if b2.off < b1.off+40 {
		t.Fatalf("grown allocation at %d overlaps the first at %d", b2.off, b1.off)
	}
	if err := a.check(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorGrowFullBuffer(t *testing.T) {
	a := newAllocator(32)
	if _, ok := a.alloc(32); !ok {
		t.Fatal("alloc full buffer failed")
	}
	a.grow(16) // no trailing free region to merge with
	if b, ok := a.alloc(16); !ok || b.off != 32 {
		t.Fatalf("alloc after grow = (%v,%v), want (32,true)", b, ok)
	}
	a.grow(0) // no-op
	a.grow(-5)
	if a.capacity != 48 {
		t.Fatalf("capacity after no-op grows = %d, want 48", a.capacity)
	}
	if err := a.check(); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveBufferGrowth drives a cache far past its initial capacity
// with a reuse-heavy access pattern: the adaptive heuristic must double the
// buffer (without flushing resident entries) until capacity evictions
// subside or MaxCapacity is reached.
func TestAdaptiveBufferGrowth(t *testing.T) {
	const region = 1 << 16
	_, _, c := testSetup(t, region, Config{
		Capacity:    1 << 10,
		MaxCapacity: 1 << 15,
		Buckets:     1 << 12, // ample: isolate the capacity dimension
		Mode:        AlwaysCache,
		Adaptive:    true,
	})
	// Cycle over a working set 8x the initial capacity; every round trips
	// capacity evictions until the buffer has grown to hold it. Growth
	// doubles at most once per 1024-op observation window, so give it
	// enough windows to reach a comfortably oversized buffer.
	for round := 0; round < 80; round++ {
		for off := 0; off < 1<<13; off += 64 {
			c.Get(1, off, 64)
			c.FlushWindow()
		}
	}
	s := c.Stats()
	if s.BufferResizes == 0 {
		t.Fatalf("no buffer growth: %+v", s)
	}
	if c.cfg.Capacity > c.cfg.MaxCapacity {
		t.Fatalf("capacity %d exceeded MaxCapacity %d", c.cfg.Capacity, c.cfg.MaxCapacity)
	}
	if s.Flushes != 0 {
		t.Errorf("buffer growth flushed the cache %d times; growth must keep entries", s.Flushes)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// After growth the working set fits: a final sweep must be all hits.
	before := c.Stats().Hits
	for off := 0; off < 1<<13; off += 64 {
		if !c.Get(1, off, 64).Hit() {
			t.Fatalf("offset %d still misses after growth to %d bytes", off, c.cfg.Capacity)
		}
	}
	if c.Stats().Hits != before+(1<<13)/64 {
		t.Error("hit accounting inconsistent after growth")
	}
}

// TestAdaptiveBufferGrowthDisabled: without MaxCapacity the buffer must
// stay at its configured size no matter the pressure.
func TestAdaptiveBufferGrowthDisabled(t *testing.T) {
	_, _, c := testSetup(t, 1<<15, Config{
		Capacity: 1 << 10,
		Buckets:  1 << 12,
		Mode:     AlwaysCache,
		Adaptive: true,
	})
	for round := 0; round < 8; round++ {
		for off := 0; off < 1<<13; off += 64 {
			c.Get(1, off, 64)
			c.FlushWindow()
		}
	}
	s := c.Stats()
	if s.BufferResizes != 0 {
		t.Errorf("buffer grew %d times with MaxCapacity unset", s.BufferResizes)
	}
	if c.cfg.Capacity != 1<<10 {
		t.Errorf("capacity changed to %d", c.cfg.Capacity)
	}
}

// TestBufferGrowthKeepsData: entries cached before a growth round must
// return identical bytes afterwards.
func TestBufferGrowthKeepsData(t *testing.T) {
	_, _, c := testSetup(t, 1<<15, Config{
		Capacity:    1 << 9,
		MaxCapacity: 1 << 14,
		Buckets:     1 << 12,
		Mode:        AlwaysCache,
		Adaptive:    true,
	})
	c.Get(1, 128, 64)
	c.FlushWindow()
	want := make([]byte, 64)
	for i := range want {
		want[i] = byte(128 + i)
	}
	for round := 0; round < 16; round++ {
		// Keep the probe entry hot so eviction never selects it while
		// the sweep below applies capacity pressure.
		c.Get(1, 128, 64)
		for off := 1 << 10; off < 1<<13; off += 64 {
			c.Get(1, off, 64)
			c.FlushWindow()
		}
	}
	if c.Stats().BufferResizes == 0 {
		t.Skip("pressure pattern did not trigger growth (heuristic changed?)")
	}
	q := c.Get(1, 128, 64)
	c.FlushWindow()
	if !bytes.Equal(q.Data(), want) {
		t.Error("entry bytes corrupted across buffer growth")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBufferGrowthChargesOverhead: the realloc copy is not free.
func TestBufferGrowthChargesOverhead(t *testing.T) {
	r, _, c := testSetup(t, 1<<15, Config{
		Capacity:    1 << 9,
		MaxCapacity: 1 << 14,
		Buckets:     1 << 12,
		Mode:        AlwaysCache,
		Adaptive:    true,
	})
	_ = r
	for round := 0; round < 16; round++ {
		for off := 0; off < 1<<13; off += 64 {
			c.Get(1, off, 64)
			c.FlushWindow()
		}
	}
	s := c.Stats()
	if s.BufferResizes == 0 {
		t.Skip("no growth triggered")
	}
	if s.OverheadTime <= 0 {
		t.Error("growth charged no overhead time")
	}
}
