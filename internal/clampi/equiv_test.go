package clampi

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// refAllocator is the brute-force reference model for the block allocator:
// a linear list of free regions plus boundary maps (the seed's scheme).
// Best-fit scans every region; free coalesces through the maps. Slow and
// obviously correct.
type refAllocator struct {
	capacity int
	used     int
	free     map[int]int // start -> size
	byEnd    map[int]int // end -> start
}

func newRefAllocator(capacity int) *refAllocator {
	a := &refAllocator{capacity: capacity, free: map[int]int{}, byEnd: map[int]int{}}
	if capacity > 0 {
		a.free[0] = capacity
		a.byEnd[capacity] = 0
	}
	return a
}

func (a *refAllocator) alloc(size int) (int, bool) {
	if size <= 0 {
		return 0, false
	}
	bestOff, bestSize, ok := 0, 0, false
	for off, sz := range a.free {
		if sz < size {
			continue
		}
		if !ok || sz < bestSize || (sz == bestSize && off < bestOff) {
			bestOff, bestSize, ok = off, sz, true
		}
	}
	if !ok {
		return 0, false
	}
	delete(a.free, bestOff)
	delete(a.byEnd, bestOff+bestSize)
	if bestSize > size {
		a.free[bestOff+size] = bestSize - size
		a.byEnd[bestOff+bestSize] = bestOff + size
	}
	a.used += size
	return bestOff, true
}

func (a *refAllocator) freeRegion(off, size int) {
	start, total := off, size
	if lstart, ok := a.byEnd[off]; ok {
		lsize := a.free[lstart]
		delete(a.free, lstart)
		delete(a.byEnd, off)
		start, total = lstart, total+lsize
	}
	if rsize, ok := a.free[off+size]; ok {
		delete(a.free, off+size)
		delete(a.byEnd, off+size+rsize)
		total += rsize
	}
	a.free[start] = total
	a.byEnd[start+total] = start
	a.used -= size
}

func (a *refAllocator) freeBytes() int { return a.capacity - a.used }

func (a *refAllocator) largestFree() int {
	max := 0
	for _, sz := range a.free {
		if sz > max {
			max = sz
		}
	}
	return max
}

func (a *refAllocator) fragmentation() float64 {
	fb := a.freeBytes()
	if fb == 0 {
		return 0
	}
	return 1 - float64(a.largestFree())/float64(fb)
}

func (a *refAllocator) regions() [][2]int {
	var rs [][2]int
	for off, sz := range a.free {
		rs = append(rs, [2]int{off, sz})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i][0] < rs[j][0] })
	return rs
}

// TestAllocatorEquivalence drives the pooled intrusive allocator and the
// reference model through ~10^5 random alloc/free (evict) sequences and
// asserts identical best-fit choices, coalescing results and fragmentation
// ratios at every step.
func TestAllocatorEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 202))
	const capacity = 1 << 15
	a := newAllocator(capacity)
	ref := newRefAllocator(capacity)
	type live struct {
		blk  *block
		off  int
		size int
	}
	var blocks []live
	for step := 0; step < 100_000; step++ {
		if rng.Float64() < 0.55 || len(blocks) == 0 {
			size := 1 + rng.IntN(700)
			blk, ok := a.alloc(size)
			refOff, refOK := ref.alloc(size)
			if ok != refOK {
				t.Fatalf("step %d: alloc(%d) ok=%v, reference %v", step, size, ok, refOK)
			}
			if ok {
				if blk.off != refOff {
					t.Fatalf("step %d: best-fit chose offset %d, reference %d", step, blk.off, refOff)
				}
				blocks = append(blocks, live{blk, blk.off, size})
			}
		} else {
			j := rng.IntN(len(blocks))
			b := blocks[j]
			a.free(b.blk)
			ref.freeRegion(b.off, b.size)
			blocks[j] = blocks[len(blocks)-1]
			blocks = blocks[:len(blocks)-1]
		}
		if a.used != ref.used || a.freeBytes() != ref.freeBytes() {
			t.Fatalf("step %d: used/free = %d/%d, reference %d/%d",
				step, a.used, a.freeBytes(), ref.used, ref.freeBytes())
		}
		if a.largestFree() != ref.largestFree() {
			t.Fatalf("step %d: largestFree %d, reference %d (coalescing diverged)",
				step, a.largestFree(), ref.largestFree())
		}
		if af, rf := a.fragmentation(), ref.fragmentation(); af != rf {
			t.Fatalf("step %d: fragmentation %v, reference %v", step, af, rf)
		}
		if step%5000 == 0 {
			// Full structural comparison: identical free-region sets.
			want := ref.regions()
			var got [][2]int
			for b := a.head; b != nil; b = b.next {
				if b.free {
					got = append(got, [2]int{b.off, b.size})
				}
			}
			if len(got) != len(want) {
				t.Fatalf("step %d: %d free regions, reference %d", step, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: region %d = %v, reference %v", step, i, got[i], want[i])
				}
			}
			if err := a.check(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
}

// TestTableEquivalence drives the lane table and a map-based reference
// (the seed's semantics: FNV bucket = hash % buckets, assoc ways, first
// free way on insert) through random insert/lookup/remove traffic.
func TestTableEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 77))
	const buckets, assoc = 61, 3 // deliberately non-power-of-two
	coder := newKeyCoder(8, 1<<12)
	tab := newTable(buckets, assoc)
	refSlots := make([]uint64, buckets*assoc) // 0 = empty
	refFind := func(k, h uint64) int {
		b := int(h % uint64(buckets))
		for i := 0; i < assoc; i++ {
			if refSlots[b*assoc+i] == k {
				return b*assoc + i
			}
		}
		return -1
	}
	refFree := func(h uint64) int {
		b := int(h % uint64(buckets))
		for i := 0; i < assoc; i++ {
			if refSlots[b*assoc+i] == 0 {
				return b*assoc + i
			}
		}
		return -1
	}
	var tick uint64
	for step := 0; step < 100_000; step++ {
		target := rng.IntN(8)
		size := 1 + rng.IntN(64)
		offset := rng.IntN(1<<12 - size)
		k := coder.pack(target, offset, size)
		h := coder.hash(target, offset, size)
		if got, want := tab.lookup(k, h), refFind(k, h); got != want {
			t.Fatalf("step %d: lookup = %d, reference %d", step, got, want)
		}
		if got, want := tab.freeSlot(h), refFree(h); got != want {
			t.Fatalf("step %d: freeSlot = %d, reference %d", step, got, want)
		}
		switch slot := tab.lookup(k, h); {
		case slot >= 0 && rng.Float64() < 0.4:
			e := tab.entryAt(slot)
			tab.remove(e)
			refSlots[slot] = 0
		case slot < 0:
			if free := tab.freeSlot(h); free >= 0 {
				tick++
				tab.insertAt(free, &entry{key: k, appScore: math.NaN()}, tick)
				refSlots[free] = k
			}
		}
	}
	n := 0
	for _, k := range refSlots {
		if k != 0 {
			n++
		}
	}
	if n != tab.n {
		t.Fatalf("final population %d, reference %d", tab.n, n)
	}
}
