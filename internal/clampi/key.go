package clampi

import (
	"fmt"
	"math/bits"
)

// keyCoder packs the (target, offset, size) coordinate of a cached RMA
// access into a single uint64, so table lookups compare one word instead of
// three and the compulsory-miss set can store raw uint64s. The field widths
// are derived once per cache from the window geometry: offsets and sizes of
// valid gets are bounded by the largest region any rank exposes, and targets
// by the world size. Both bounds are fixed for the lifetime of a window, so
// the packing is total over every get the cache can observe.
//
// The coder also produces the hash used for bucket selection. That hash is
// deliberately bit-identical to FNV-1a over the three fields as 8-byte
// little-endian words — the mapping the golden tests pinned (which keys
// share a bucket decides which conflict evictions happen, and those are
// visible in the pinned hit/miss counts). The FNV loop is collapsed using
// the field bounds: only the bytes that can be non-zero are mixed
// explicitly, and the run of guaranteed-zero bytes folds into one multiply
// by a precomputed power of the FNV prime (x^=0 is a no-op, so k zero bytes
// contribute exactly *prime^k).
type keyCoder struct {
	offBits  uint   // bit width of the offset and size fields
	tgtBits  uint   // bit width of the target field
	tgtBytes int    // bytes of target that can be non-zero
	offBytes int    // bytes of offset/size that can be non-zero
	tgtTail  uint64 // fnvPrime^(8-tgtBytes)
	offTail  uint64 // fnvPrime^(8-offBytes)
}

const (
	fnvOffset64 = 1469598103934665603
	fnvPrime64  = 1099511628211
)

// fnvPow[i] = fnvPrime64^i, for folding runs of zero bytes.
var fnvPow = func() [9]uint64 {
	var p [9]uint64
	p[0] = 1
	for i := 1; i < len(p); i++ {
		p[i] = p[i-1] * fnvPrime64
	}
	return p
}()

// newKeyCoder derives the packing for a world of `ranks` ranks whose largest
// window region is maxRegion bytes. Offsets and sizes both need to reach
// maxRegion (a get may span a whole region), targets reach ranks-1.
func newKeyCoder(ranks, maxRegion int) keyCoder {
	tb := bits.Len64(uint64(ranks - 1))
	ob := bits.Len64(uint64(maxRegion))
	if ob == 0 {
		ob = 1 // empty window: keep the shifts well-defined
	}
	if tb+2*ob > 64 {
		panic(fmt.Sprintf(
			"clampi: cannot pack cache keys for %d ranks with %d-byte regions (%d bits needed, 64 available)",
			ranks, maxRegion, tb+2*ob))
	}
	tgtBytes := (tb + 7) / 8
	offBytes := (ob + 7) / 8
	return keyCoder{
		offBits:  uint(ob),
		tgtBits:  uint(tb),
		tgtBytes: tgtBytes,
		offBytes: offBytes,
		tgtTail:  fnvPow[8-tgtBytes],
		offTail:  fnvPow[8-offBytes],
	}
}

// pack folds the access coordinate into one word. Distinct valid coordinates
// map to distinct words; callers must ensure fits() first (an out-of-width
// field would bleed into its neighbor and alias another key, a failure the
// seed's exact three-int comparison could not have).
func (c keyCoder) pack(target, offset, size int) uint64 {
	return uint64(target)<<(2*c.offBits) | uint64(offset)<<c.offBits | uint64(size)
}

// fits reports whether every field is within its packed width. Negative
// values wrap to huge uint64s and are rejected too.
func (c keyCoder) fits(target, offset, size int) bool {
	return uint64(target)>>c.tgtBits == 0 &&
		(uint64(offset)|uint64(size))>>c.offBits == 0
}

// unpack is the inverse of pack (diagnostics and invariant messages).
func (c keyCoder) unpack(k uint64) (target, offset, size int) {
	mask := uint64(1)<<c.offBits - 1
	return int(k >> (2 * c.offBits)), int(k >> c.offBits & mask), int(k & mask)
}

// hash returns FNV-1a over (target, offset, size) as three 8-byte
// little-endian words — bit-identical to hashing the unpacked fields byte by
// byte, but in O(significant bytes) multiplies.
func (c keyCoder) hash(target, offset, size int) uint64 {
	h := fnvMix(uint64(fnvOffset64), uint64(target), c.tgtBytes, c.tgtTail)
	h = fnvMix(h, uint64(offset), c.offBytes, c.offTail)
	return fnvMix(h, uint64(size), c.offBytes, c.offTail)
}

func fnvMix(h, x uint64, nbytes int, tail uint64) uint64 {
	for i := 0; i < nbytes; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h * tail
}

// divMagic computes n % d without a hardware divide, via Lemire's fastmod:
// with M = ceil(2^128 / d), n % d = ((M·n mod 2^128) · d) >> 128. The
// bucket mapping h % buckets is golden-pinned and sits on the lookup hot
// path, so the replacement must be bit-exact — TestDivMagicExact verifies
// it against % across divisor shapes.
type divMagic struct {
	d        uint64
	mhi, mlo uint64 // M = ceil(2^128/d), valid for d >= 2
}

func newDivMagic(d uint64) divMagic {
	m := divMagic{d: d}
	if d < 2 {
		return m // mod is always 0; handled in mod()
	}
	// M = floor((2^128-1)/d) + 1 by 128/64 long division.
	qhi := ^uint64(0) / d
	r := ^uint64(0) % d
	qlo, _ := bits.Div64(r, ^uint64(0), d)
	m.mhi, m.mlo = qhi, qlo
	m.mlo++
	if m.mlo == 0 {
		m.mhi++
	}
	return m
}

func (m divMagic) mod(n uint64) uint64 {
	if m.d < 2 {
		return 0
	}
	// low = (M * n) mod 2^128
	hi1, lo1 := bits.Mul64(m.mlo, n)
	lowHi := m.mhi*n + hi1
	// result = (low * d) >> 128
	h2, _ := bits.Mul64(lo1, m.d)
	h3, l3 := bits.Mul64(lowHi, m.d)
	_, carry := bits.Add64(l3, h2, 0)
	return h3 + carry
}

// seenSet is a compact open-addressing set of packed keys, replacing the
// unbounded map[key]struct{} compulsory-miss tracker. Zero is a valid packed
// key, so it is tracked out of band and the table's zero word can mean
// "empty". Unlike the bucket hash, the probe hash here is free to be
// anything well-distributed (membership has no effect on simulated results),
// so it uses a single Fibonacci multiply.
type seenSet struct {
	tab     []uint64
	n       int // non-zero keys stored
	shift   uint
	hasZero bool
}

const seenMul = 0x9e3779b97f4a7c15

// addIfMissing inserts k and reports whether it was absent. Amortized
// allocation-free: the table only reallocates while the set of distinct keys
// is still growing.
func (s *seenSet) addIfMissing(k uint64) bool {
	if k == 0 {
		if s.hasZero {
			return false
		}
		s.hasZero = true
		return true
	}
	if (s.n+1)*4 > len(s.tab)*3 {
		s.grow()
	}
	mask := uint64(len(s.tab) - 1)
	i := k * seenMul >> s.shift
	for {
		switch v := s.tab[i]; v {
		case k:
			return false
		case 0:
			s.tab[i] = k
			s.n++
			return true
		}
		i = (i + 1) & mask
	}
}

// presize allocates the table for about `slots` keys up front (rounded up
// to a power of two), avoiding the doubling cascade while a fresh cache
// sees its compulsory misses. No-op on a non-empty set.
func (s *seenSet) presize(slots int) {
	if len(s.tab) != 0 || slots <= 0 {
		return
	}
	cap := 64
	for cap < slots {
		cap *= 2
	}
	s.tab = make([]uint64, cap)
	s.shift = uint(64 - bits.TrailingZeros(uint(cap)))
}

func (s *seenSet) grow() {
	newCap := 64
	if len(s.tab) > 0 {
		newCap = 2 * len(s.tab)
	}
	old := s.tab
	s.tab = make([]uint64, newCap)
	s.shift = uint(64 - bits.TrailingZeros(uint(newCap)))
	mask := uint64(newCap - 1)
	for _, k := range old {
		if k == 0 {
			continue
		}
		i := k * seenMul >> s.shift
		for s.tab[i] != 0 {
			i = (i + 1) & mask
		}
		s.tab[i] = k
	}
}

// len returns the number of distinct keys seen.
func (s *seenSet) len() int {
	if s.hasZero {
		return s.n + 1
	}
	return s.n
}
