package clampi

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rma"
)

// Mode selects CLaMPI's consistency policy (§II-F).
type Mode uint8

const (
	// Transparent makes no assumption about the cached data and flushes
	// the cache at every epoch closure; reuse is exploited only within
	// an epoch.
	Transparent Mode = iota
	// AlwaysCache assumes RMA-read data is read-only, so the cache never
	// needs flushing. The LCC engine uses this mode: the graph is not
	// modified during the computation (§III-B).
	AlwaysCache
	// UserDefined leaves flushing to the application (explicit Flush).
	UserDefined
)

func (m Mode) String() string {
	switch m {
	case Transparent:
		return "transparent"
	case AlwaysCache:
		return "always-cache"
	case UserDefined:
		return "user-defined"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Config tunes one cache instance. Both the hash-table size and the memory
// buffer capacity are the use-case-specific parameters §II-F describes;
// §III-B-1 derives good starting values for the two caches of the LCC
// engine.
type Config struct {
	// Capacity is the memory buffer reserved for cached data, in bytes.
	Capacity int
	// Buckets is the initial hash-table size (number of buckets).
	Buckets int
	// Assoc is the bucket associativity (entries per bucket). Default 4.
	Assoc int
	// Mode is the consistency mode. Default Transparent, like CLaMPI.
	Mode Mode
	// Adaptive enables the hash-table auto-tuning heuristic: when the
	// conflict-eviction rate is high the table doubles (and the cache is
	// flushed, which is why §III-B-1 stresses good starting values).
	Adaptive bool
	// MaxBuckets bounds adaptive growth. Default 1<<22.
	MaxBuckets int
	// MaxCapacity enables adaptive growth of the memory buffer (§II-F:
	// the heuristic resizes "the hash table and the memory buffer"):
	// when capacity evictions dominate an observation window, the buffer
	// doubles, up to this many bytes. 0 disables buffer growth. Unlike a
	// hash-table resize, buffer growth keeps every cached entry — the
	// region is extended in place and the realloc copy is charged as
	// management overhead.
	MaxCapacity int
	// PosWeight scales the positional (fragmentation) component of the
	// default eviction score. Default 64 ticks.
	PosWeight float64
}

func (c Config) withDefaults() Config {
	if c.Assoc == 0 {
		c.Assoc = 4
	}
	if c.Buckets == 0 {
		c.Buckets = 1024
	}
	if c.MaxBuckets == 0 {
		c.MaxBuckets = 1 << 22
	}
	if c.PosWeight == 0 {
		c.PosWeight = 64
	}
	return c
}

// Stats counts cache activity. The evaluation distinguishes compulsory
// misses (first access to a region; grey areas in Figs. 7/8) from capacity
// and conflict misses, and hit/miss byte volumes (a hit on a long adjacency
// list saves more than one on a 16-byte offset pair; §IV-D-1).
type Stats struct {
	Hits, Misses       int64
	CompulsoryMisses   int64
	HitBytes           int64
	MissBytes          int64
	ConflictEvictions  int64
	CapacityEvictions  int64
	Inserts            int64
	RejectedInserts    int64
	Flushes            int64
	Resizes            int64
	BufferResizes      int64
	HitTime            float64 // ns charged for cache hits
	OverheadTime       float64 // ns of cache-management overhead on misses
	BytesCached        int64   // current buffer occupancy
	EntriesCached      int64   // current entry count
	FragmentationRatio float64 // 1 - largestFree/freeBytes at snapshot time
	DegradedOps        int64   // accesses served degraded: cache fault, direct-RMA fallback
}

// MissRate returns Misses/(Hits+Misses), or 0 before any access.
func (s Stats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// Cache is one CLaMPI instance: it transparently caches the gets a single
// rank issues over a single window (the engine creates two per rank,
// C_offsets and C_adj; §III-B). A Cache must be used from the rank's own
// goroutine, like the rank itself.
//
// Over read-only windows (including the typed uint64/vertex windows) the
// cache stores no bytes at all: the window region is immutable, so cached
// entries are bookkeeping only and hits are served as aliased views of the
// window. The memory buffer, eviction and fragmentation behaviour are
// simulated exactly as if the bytes were resident. Over writable windows
// the cache owns one copy of every resident entry, as real CLaMPI does.
//
// Steady-state operation — hit, miss, insert, evict, epoch flush — performs
// no heap allocations: entries, buffer blocks and AVL nodes recycle through
// pools, requests and pending misses come from free lists, and the victim
// heap, hash table and compulsory-miss set reuse their backing arrays.
type Cache struct {
	rank  *rma.Rank
	win   *rma.Window
	cfg   Config
	model rma.CostModel
	coder keyCoder

	tab     *table
	alloc   *allocator
	victims *victimHeap
	entries entryPool
	tick    uint64
	seen    seenSet
	stats   Stats
	pending []*pendingMiss

	// free lists; single-goroutine like the owning rank, so no locking.
	reqFree []*Request
	pmFree  []*pendingMiss

	// busy asserts the single-owner contract now that ranks execute on
	// concurrent worker goroutines: operational entry points set and clear
	// it with PLAIN (unsynchronized) writes — deliberately, so the race
	// detector flags any cross-goroutine use of one cache as a data race
	// on this field, and reentrant use panics outright. Cost on the hot
	// path: two unordered byte stores, no locks, no atomics.
	busy bool

	// adaptive-tuning observation window
	obsOps       int64
	obsConflicts int64
	obsCapacity  int64
}

// pendingMiss carries an in-flight miss from issue to completion. After
// complete() it holds the retrieved data (view or owned copy) so the
// application-facing Request stays valid after the underlying RMA request
// returned to its pool.
type pendingMiss struct {
	target, offset, size int
	pk, h                uint64  // packed key and bucket hash of the access
	score                float64 // application-defined score, NaN if unset
	under                *rma.Request
	done                 bool

	// A pm is referenced from up to two places: the cache's pending list
	// and the application's Request. It returns to the free list only
	// after both drop it (inPending cleared by FlushWindow or the
	// compaction sweep, released set by Request.Release).
	inPending bool
	released  bool

	data  []byte
	buf   []byte // pooled storage backing data on writable windows
	u64   []uint64
	verts []graph.V
	vbuf  []graph.V // pooled decode storage on compressed windows
}

// New wraps window w for rank r with a cache configured by cfg.
func New(r *rma.Rank, w *rma.Window, cfg Config) *Cache {
	c := &Cache{
		rank:  r,
		win:   w,
		cfg:   cfg.withDefaults(),
		model: rmaModel(r),
	}
	maxRegion := 0
	for t := 0; t < r.NumRanks(); t++ {
		if s := w.SizeAt(t); s > maxRegion {
			maxRegion = s
		}
	}
	c.coder = newKeyCoder(r.NumRanks(), maxRegion)
	c.tab = newTable(c.cfg.Buckets, c.cfg.Assoc)
	// Pre-size the pools from the buffer capacity so filling the cache
	// costs a handful of slab allocations instead of a doubling cascade
	// per structure. Entry counts depend on the (unknown) entry-size mix;
	// capacity/1024 is a low-cost floor the slabs double past when needed
	// — oversizing here inflates the per-instance memory footprint, which
	// is itself a host-speed concern (metadata competes with graph data
	// for last-level cache).
	hint := clampRange(c.cfg.Capacity/1024, 64, 8192)
	c.entries.slab = hint
	c.entries.free = make([]*entry, 0, hint)
	c.alloc = newAllocatorSized(c.cfg.Capacity, hint)
	c.victims = newVictimHeap(c.priority, c.stampOf, c.entries.put)
	c.victims.h = make([]heapItem, 0, hint)
	c.seen.presize(clampRange(c.cfg.Capacity/64, 64, 1<<14))
	return c
}

// rmaModel extracts the cost model; indirection keeps New's signature tidy.
func rmaModel(r *rma.Rank) rma.CostModel { return r.Model() }

func clampRange(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Rank returns the owning rank.
func (c *Cache) Rank() *rma.Rank { return c.rank }

// Stats returns a snapshot of the cache statistics.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.BytesCached = int64(c.alloc.used)
	s.EntriesCached = int64(c.tab.n)
	s.FragmentationRatio = c.alloc.fragmentation()
	return s
}

// priority is the eviction priority of an entry: LOWER evicts FIRST.
//
// Default scheme (§III-B-2): least-recently-used, weighted by a positional
// score so that entries surrounded by free space — whose eviction would
// merge fragments — are preferred victims even at higher temporal locality.
//
// With an application-defined score the priority IS that score (the paper's
// extension: for LCC, the remote vertex's degree), trading the spatial
// anti-fragmentation effect for application knowledge.
func (c *Cache) priority(e *entry) float64 {
	if e.hasAppScore() {
		return e.appScore
	}
	mergeable := float64(c.alloc.adjacentFree(e.blk))
	return float64(c.tab.tickOf(int(e.slot))) - c.cfg.PosWeight*mergeable/float64(e.size()+1)
}

// stampOf reads a live entry's revalidation stamp from its table slot (the
// stamp lives in the bucket lane so hits stay single-cache-line; see table).
func (c *Cache) stampOf(e *entry) uint64 { return c.tab.stampOf(int(e.slot)) }

// Request is the result of a cached Get: either served from cache (done
// immediately) or backed by an underlying RMA request that completes at the
// next FlushWindow/Wait. Requests come from a per-cache free list; call
// Release when done to return one (see the rma request contract — data
// views from read-only windows stay valid after Release).
type Request struct {
	cache  *Cache
	hit    bool
	pooled bool // currently on the free list (double-release guard)
	data   []byte
	buf    []byte // pooled storage backing data for writable-window hits
	u64    []uint64
	verts  []graph.V
	vbuf   []graph.V    // pooled decode storage for compressed-window hits
	under  *rma.Request // local bypass on a writable window: owns data until Release
	pm     *pendingMiss
}

func (c *Cache) newReq() *Request {
	if n := len(c.reqFree); n > 0 {
		q := c.reqFree[n-1]
		c.reqFree[n-1] = nil
		c.reqFree = c.reqFree[:n-1]
		q.pooled = false
		return q
	}
	return &Request{cache: c}
}

func (c *Cache) newPM() *pendingMiss {
	if n := len(c.pmFree); n > 0 {
		pm := c.pmFree[n-1]
		c.pmFree[n-1] = nil
		c.pmFree = c.pmFree[:n-1]
		buf, vbuf := pm.buf, pm.vbuf
		*pm = pendingMiss{buf: buf[:0], vbuf: vbuf[:0]}
		return pm
	}
	return &pendingMiss{}
}

// Release returns the request (and its completed pending-miss record, if
// any) to the cache's free lists. Releasing a miss that has not completed
// panics: complete it first (Wait or FlushWindow).
func (q *Request) Release() {
	c := q.cache
	// Precondition checks precede enter(): these panics are recoverable
	// contract assertions (tests exercise them) and must not leave the
	// single-owner flag set.
	if q.pooled {
		panic("clampi: Release of an already-released request")
	}
	if q.pm != nil && !q.pm.done {
		panic("clampi: Release of an incomplete miss; Wait or FlushWindow first")
	}
	c.enter()
	if q.under != nil {
		q.under.Release()
	}
	if pm := q.pm; pm != nil {
		pm.released = true
		if !pm.inPending {
			c.pmFree = append(c.pmFree, pm)
		}
	}
	buf, vbuf := q.buf, q.vbuf
	*q = Request{cache: c, pooled: true, buf: buf[:0], vbuf: vbuf[:0]}
	c.reqFree = append(c.reqFree, q)
	c.leave()
}

// dropFromPending marks pm as removed from the pending list and recycles
// it if the application already released its Request.
func (c *Cache) dropFromPending(pm *pendingMiss) {
	pm.inPending = false
	if pm.released {
		c.pmFree = append(c.pmFree, pm)
	}
}

// Hit reports whether the request was served from cache.
func (q *Request) Hit() bool { return q.hit }

// Done reports whether the data accessors may be called.
func (q *Request) Done() bool { return q.hit || q.pm.done || q.pm.under.Done() }

// Wait completes this request (flushing only its own transfer on a miss).
func (q *Request) Wait() {
	if q.hit || q.pm.done {
		return
	}
	c := q.cache
	c.enter()
	q.pm.under.Wait()
	c.complete(q.pm)
	c.leave()
}

// Data returns the bytes read from a byte window. The slice must be
// treated as read-only; over a read-only window it aliases the window
// region and stays valid after Release. Over a writable window the bytes
// are a request-owned copy, valid until Release. Panics if called before
// the request completed, like the underlying RMA request. A miss whose
// transfer was completed by a raw rank-level flush (rather than Wait or
// FlushWindow) is readable too — its cache insertion simply happens later,
// matching Done().
func (q *Request) Data() []byte {
	if q.hit {
		return q.data
	}
	if q.pm.done {
		return q.pm.data
	}
	return q.pm.under.Data() // panics before completion, like rma
}

// Uint64s returns the typed view read from a ReadOnlyUint64s window.
func (q *Request) Uint64s() []uint64 {
	if q.hit {
		return q.u64
	}
	if q.pm.done {
		return q.pm.u64
	}
	return q.pm.under.Uint64s()
}

// Vertices returns the typed view read from a ReadOnlyVertices window.
func (q *Request) Vertices() []graph.V {
	if q.hit {
		return q.verts
	}
	if q.pm.done {
		return q.pm.verts
	}
	return q.pm.under.Vertices()
}

// enter asserts the single-owner contract on an operational entry point;
// leave clears it. See Cache.busy.
func (c *Cache) enter() {
	if c.busy {
		panic("clampi: concurrent or reentrant use of a single-owner cache")
	}
	c.busy = true
}

func (c *Cache) leave() { c.busy = false }

// Get issues a cached one-sided read (no application score).
func (c *Cache) Get(target, offset, size int) *Request {
	c.enter()
	q := c.get(target, offset, size, math.NaN())
	c.leave()
	return q
}

// GetScored issues a cached one-sided read carrying an application-defined
// score for the entry, used in victim selection (§III-B-2). For the LCC
// adjacency cache the score is the remote vertex's out-degree, which the
// engine knows from the preceding offsets get.
func (c *Cache) GetScored(target, offset, size int, score float64) *Request {
	c.enter()
	q := c.get(target, offset, size, score)
	c.leave()
	return q
}

// TryGet is the inline hit fast path over a read-only window: if the exact
// region is resident it performs the full hit bookkeeping — LRU touch,
// stamp bump, statistics, and the HitCost charge on the rank's tape — and
// returns true; the caller then reads the data directly as an aliased
// window view (ViewUint64s/ViewVertices/ViewBytes), with no Request
// materialized at all. On a miss (or a local target, a writable window, or
// coordinates outside the window geometry) it changes nothing and returns
// false; the caller falls back to Get/GetScored, which then performs the
// one further bucket probe and the whole miss protocol. The split keeps
// exact parity with Get: hits and misses each count once, in the same
// order, with the same charges — TryGet+Get is Get, minus the hit-path
// request pooling.
func (c *Cache) TryGet(target, offset, size int) bool {
	if !c.win.ReadOnly() || target == c.rank.ID() || !c.coder.fits(target, offset, size) {
		return false
	}
	c.enter()
	slot := c.tab.lookupTouch(c.coder.pack(target, offset, size), c.coder.hash(target, offset, size), c.tick+1)
	if slot < 0 {
		c.leave()
		return false
	}
	c.obsOps++
	c.tick++
	c.stats.Hits++
	c.stats.HitBytes += int64(size)
	c.stats.HitTime += c.rank.ChargeCacheHit(size)
	c.leave()
	return true
}

// serveView fills q's data fields for a resident region: aliased window
// views for read-only windows (the entry itself is never touched), a
// pooled request-owned copy of the entry's bytes otherwise (entry storage
// is recycled on eviction, so hits must not alias it past the entry's
// lifetime).
func (c *Cache) serveView(q *Request, target, offset, size, slot int) {
	switch c.win.Kind() {
	case rma.ReadOnlyBytes:
		q.data = c.win.ViewBytes(target, offset, size)
	case rma.ReadOnlyUint64s:
		q.u64 = c.win.ViewUint64s(target, offset, size)
	case rma.ReadOnlyVertices:
		q.verts = c.win.ViewVertices(target, offset, size)
	case rma.CompressedVertices:
		// Decode into the request's pooled buffer: the hit must not hand
		// out window-internal compressed bytes, and entries store no data.
		q.verts = c.win.ReadVertices(target, offset, size, q.vbuf)
		q.vbuf = q.verts
	default:
		q.buf = append(q.buf[:0], c.tab.entryAt(slot).bytes.data...)
		q.data = q.buf
	}
}

func (c *Cache) get(target, offset, size int, score float64) *Request {
	// Local accesses bypass the cache entirely: the partition owner reads
	// its own memory (Fig. 3: node A reads adj(0), adj(2) locally).
	if target == c.rank.ID() {
		uq := c.rank.Get(c.win, target, offset, size)
		q := c.newReq()
		q.hit = true
		switch c.win.Kind() {
		case rma.ReadOnlyUint64s:
			q.u64 = uq.Uint64s()
			uq.Release()
		case rma.ReadOnlyVertices:
			q.verts = uq.Vertices()
			uq.Release()
		case rma.CompressedVertices:
			// uq's decode storage recycles with uq; copy before Release.
			q.vbuf = append(q.vbuf[:0], uq.Vertices()...)
			q.verts = q.vbuf
			uq.Release()
		case rma.ReadOnlyBytes:
			q.data = uq.Data()
			uq.Release()
		default:
			// Writable window: the snapshot belongs to uq; hold it
			// until this request is released.
			q.data = uq.Data()
			q.under = uq
		}
		return q
	}
	if !c.coder.fits(target, offset, size) {
		// The seed compared three exact ints and panicked later inside
		// rma on the out-of-window access; packed keys would alias a
		// valid entry instead, so fail at the boundary.
		panic(fmt.Sprintf("clampi: get (target %d, offset %d, size %d) outside window geometry", target, offset, size))
	}
	pk := c.coder.pack(target, offset, size)
	h := c.coder.hash(target, offset, size)
	c.obsOps++
	if slot := c.tab.lookupTouch(pk, h, c.tick+1); slot >= 0 {
		c.tick++
		c.stats.Hits++
		c.stats.HitBytes += int64(size)
		c.stats.HitTime += c.rank.ChargeCacheHit(size)
		q := c.newReq()
		q.hit = true
		c.serveView(q, target, offset, size, slot)
		return q
	}
	// Miss: issue the real RMA get; the entry is inserted when the
	// transfer completes (at flush), since only then is the data known.
	if c.seen.addIfMissing(pk) {
		c.stats.CompulsoryMisses++
	}
	c.stats.Misses++
	c.stats.MissBytes += int64(size)
	c.stats.OverheadTime += c.rank.ChargeCacheMissOverhead()
	pm := c.newPM()
	pm.target, pm.offset, pm.size = target, offset, size
	pm.pk, pm.h = pk, h
	pm.score = score
	pm.under = c.rank.Get(c.win, target, offset, size)
	pm.inPending = true
	// Compact completed pendings so callers that use per-request Wait
	// (instead of FlushWindow) don't accumulate stale records. Host-side
	// list management only — no modeled cost, so the threshold is free to
	// be small, which keeps the pm pool (and its ramp-up) small too.
	if len(c.pending) >= 8 {
		keep := c.pending[:0]
		for _, p := range c.pending {
			if !p.done {
				keep = append(keep, p)
			} else {
				c.dropFromPending(p)
			}
		}
		for i := len(keep); i < len(c.pending); i++ {
			c.pending[i] = nil
		}
		c.pending = keep
	}
	c.pending = append(c.pending, pm)
	c.maybeResize()
	q := c.newReq()
	q.pm = pm
	return q
}

// FlushWindow completes all outstanding RMA operations on the window
// (MPI_Win_flush_all) and stores the retrieved data in the cache (Fig. 3,
// step 6).
func (c *Cache) FlushWindow() {
	c.enter()
	c.rank.FlushAll(c.win)
	for i, pm := range c.pending {
		c.complete(pm)
		c.dropFromPending(pm)
		c.pending[i] = nil
	}
	c.pending = c.pending[:0]
	c.leave()
}

func (c *Cache) complete(pm *pendingMiss) {
	if pm.done {
		return
	}
	pm.done = true
	// Capture the retrieved data before the underlying request returns to
	// its pool: read-only windows yield stable aliased views; a writable
	// window's snapshot is copied once into the pm's pooled buffer.
	var own []byte
	switch c.win.Kind() {
	case rma.ReadOnlyBytes:
		pm.data = pm.under.Data()
	case rma.ReadOnlyUint64s:
		pm.u64 = pm.under.Uint64s()
	case rma.ReadOnlyVertices:
		pm.verts = pm.under.Vertices()
	case rma.CompressedVertices:
		pm.vbuf = append(pm.vbuf[:0], pm.under.Vertices()...)
		pm.verts = pm.vbuf
	default:
		pm.buf = append(pm.buf[:0], pm.under.Data()...)
		pm.data = pm.buf
		own = pm.buf
	}
	pm.under.Release()
	pm.under = nil
	// Storing an entry costs real work: hash insert, allocator search,
	// and copying the retrieved bytes into the memory buffer. Together
	// with CacheMissOverhead this is the cache-management overhead that
	// makes caching a net loss when compulsory misses dominate (§IV-D-2
	// scenario 2, the LiveJournal case).
	c.stats.OverheadTime += c.rank.ChargeCacheManage(pm.size)
	c.insert(pm.pk, pm.h, pm.size, own, pm.score)
}

// insert stores a region under the packed key pk (bucket hash h), evicting
// victims as needed. CLaMPI caches a missing entry only if it has (or can
// free) the resources to store it. data is the retrieved byte copy for
// writable windows (copied again into entry-owned pooled storage) and nil
// for read-only windows, whose entries are bookkeeping-only (hits re-slice
// the window region).
func (c *Cache) insert(pk, h uint64, size int, data []byte, score float64) {
	if c.cfg.Capacity <= 0 || size > c.cfg.Capacity || size == 0 {
		c.stats.RejectedInserts++
		return
	}
	if c.tab.lookup(pk, h) >= 0 {
		return // duplicate in-flight get; entry already present
	}
	c.tick++
	newPrio := float64(c.tick)
	if !math.IsNaN(score) {
		newPrio = score
	}

	// Hash-table space: a full bucket forces a conflict eviction.
	slot := c.tab.freeSlot(h)
	if slot < 0 {
		victim, vPrio := c.tab.bucketVictim(h, c.priority)
		if victim == nil || vPrio >= newPrio {
			// All residents are more valuable than the newcomer
			// (possible only under app-defined scores).
			c.stats.RejectedInserts++
			return
		}
		c.evict(victim)
		c.stats.ConflictEvictions++
		c.obsConflicts++
		slot = c.tab.freeSlot(h)
	}

	// Buffer space: evict ascending-priority victims until the allocation
	// succeeds. Under app-defined scores, stop as soon as the cheapest
	// victim is at least as valuable as the newcomer.
	blk, ok := c.alloc.alloc(size)
	for !ok {
		if c.victims.peekMinPrio() >= newPrio && !math.IsNaN(score) {
			c.stats.RejectedInserts++
			return
		}
		v := c.victims.popMin()
		if v == nil {
			c.stats.RejectedInserts++
			return
		}
		c.evict(v)
		c.stats.CapacityEvictions++
		c.obsCapacity++
		blk, ok = c.alloc.alloc(size)
	}

	e := c.entries.get()
	e.key = pk
	e.blk = blk
	if data != nil {
		if e.bytes == nil {
			e.bytes = &entryData{}
		}
		e.bytes.buf = append(e.bytes.buf[:0], data...)
		e.bytes.data = e.bytes.buf
	}
	e.appScore = score
	c.tab.insertAt(slot, e, c.tick)
	c.victims.push(e)
	c.stats.Inserts++
}

// evict removes e from the table and frees its buffer block. A capacity
// victim was already popped off the heap and recycles immediately; a
// conflict victim leaves a dead remnant in the heap (preserving the seed's
// lazy shape — see the victimHeap determinism contract) and recycles when
// a later pop or reset collects it. The dead flag alone retires the
// remnant: every heap path checks it before consulting the stamp, so no
// stamp bump is needed (the slot's meta now belongs to the next tenant).
func (c *Cache) evict(e *entry) {
	e.dead = true
	c.tab.remove(e)
	c.alloc.free(e.blk)
	e.blk = nil
	if e.heapIdx < 0 {
		c.entries.put(e)
	}
}

// SetScore assigns (or updates) the application-defined score of an already
// cached entry, as the modified CLaMPI accepts from the user (§III-B-2).
// It is a no-op if the entry is not cached.
func (c *Cache) SetScore(target, offset, size int, score float64) {
	c.enter()
	if c.coder.fits(target, offset, size) {
		// (Nothing outside the window geometry is ever cached.)
		pk := c.coder.pack(target, offset, size)
		h := c.coder.hash(target, offset, size)
		if slot := c.tab.lookup(pk, h); slot >= 0 {
			e := c.tab.entryAt(slot)
			e.appScore = score
			c.tab.bumpStamp(slot)
			c.victims.update(e)
		}
	}
	c.leave()
}

// Contains reports whether the exact region is currently cached.
func (c *Cache) Contains(target, offset, size int) bool {
	if !c.coder.fits(target, offset, size) {
		return false
	}
	return c.tab.lookup(c.coder.pack(target, offset, size), c.coder.hash(target, offset, size)) >= 0
}

// Flush empties the cache (user-defined mode, or internal use by the
// adaptive heuristic and the transparent mode). All structures are cleared
// in place: entries recycle to the pool, the allocator returns to one
// pristine free region, and the table keeps its slot array unless the
// adaptive heuristic changed its geometry.
func (c *Cache) Flush() {
	c.tab.each(func(e *entry) { e.dead = true })
	// Every live entry sits in the heap (inserts push, only eviction pops),
	// so resetting the heap recycles the whole population, dead conflict
	// remnants included.
	c.victims.reset()
	c.tab.clearFor(c.cfg.Buckets, c.cfg.Assoc)
	c.alloc.reset()
	c.stats.Flushes++
}

// Available reports whether the cache can serve the next access,
// consulting the rank's deterministic fault schedule (fault.Spec
// CacheFailPct). An injected CLaMPI fault makes the cache transiently
// unavailable: the resident entries are flushed — their state is presumed
// lost with the failed cache process — the degraded access is counted, and
// the caller falls back to the direct-RMA fetch flavor for this access
// (the engine's degradation ladder, DESIGN.md §7). Results are unaffected
// either way: the cache only ever mirrors immutable window bytes, so
// serving the access uncached returns the same data at a higher simulated
// cost. With no fault schedule installed the check is one nil comparison.
func (c *Cache) Available() bool {
	if !c.rank.CacheFault() {
		return true
	}
	c.enter()
	c.stats.DegradedOps++
	c.Flush()
	c.leave()
	return false
}

// CloseEpoch signals an epoch closure on the window. In transparent mode
// this flushes the cache (cached data does not persist across epochs); in
// always-cache and user-defined modes it is a no-op.
func (c *Cache) CloseEpoch() {
	if c.cfg.Mode == Transparent {
		c.Flush()
	}
}

// maybeResize implements the adaptive parameter-tuning heuristic (§II-F:
// CLaMPI "automatically resizes the hash table and the memory buffer by
// observing indicators such as cache misses, conflicts in the hash table,
// and evictions due to lack of space"). Every observation window:
//
//   - if conflict evictions dominate, the hash table doubles and the
//     cache is flushed (the behaviour §III-B-1 works around by choosing
//     good initial sizes);
//   - if capacity evictions dominate and Config.MaxCapacity allows, the
//     memory buffer doubles. Growth extends the region in place, so
//     cached entries survive; the realloc copy of the resident bytes is
//     charged as management overhead.
func (c *Cache) maybeResize() {
	const window = 1024
	if !c.cfg.Adaptive || c.obsOps < window {
		return
	}
	conflictRate := float64(c.obsConflicts) / float64(c.obsOps)
	capacityRate := float64(c.obsCapacity) / float64(c.obsOps)
	c.obsOps, c.obsConflicts, c.obsCapacity = 0, 0, 0
	if conflictRate > 0.10 && c.cfg.Buckets*2 <= c.cfg.MaxBuckets {
		c.cfg.Buckets *= 2
		c.stats.Resizes++
		c.Flush()
		return
	}
	if capacityRate > 0.10 && c.cfg.MaxCapacity > 0 && 2*c.cfg.Capacity <= c.cfg.MaxCapacity {
		c.stats.OverheadTime += c.rank.ChargeCacheManage(c.alloc.used)
		c.alloc.grow(c.cfg.Capacity)
		c.cfg.Capacity *= 2
		c.stats.BufferResizes++
	}
}

// checkInvariants validates cross-structure consistency (tests only).
func (c *Cache) checkInvariants() error {
	if err := c.alloc.check(); err != nil {
		return err
	}
	bytes := 0
	count := 0
	var err error
	c.tab.each(func(e *entry) {
		if e.dead {
			err = fmt.Errorf("clampi: dead entry %#x still in table", e.key)
		}
		if e.heapIdx < 0 {
			err = fmt.Errorf("clampi: live entry %#x missing from victim heap", e.key)
		} else if c.victims.h[e.heapIdx].e != e {
			err = fmt.Errorf("clampi: heap index of entry %#x out of sync", e.key)
		}
		if e.blk == nil || e.blk.free {
			err = fmt.Errorf("clampi: entry %#x block out of sync", e.key)
		}
		bytes += e.size()
		count++
	})
	if err != nil {
		return err
	}
	if bytes != c.alloc.used {
		return fmt.Errorf("clampi: table holds %d bytes but allocator used=%d", bytes, c.alloc.used)
	}
	if count != c.tab.n {
		return fmt.Errorf("clampi: table count %d != tracked %d", count, c.tab.n)
	}
	live := 0
	for i := range c.victims.h {
		it := c.victims.h[i]
		if int(it.e.heapIdx) != i {
			return fmt.Errorf("clampi: heap item %d has stale heapIdx %d", i, it.e.heapIdx)
		}
		if !it.e.dead {
			live++
		}
	}
	if live != count {
		return fmt.Errorf("clampi: heap holds %d live entries, table %d", live, count)
	}
	return nil
}
