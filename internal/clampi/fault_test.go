package clampi

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/rma"
)

// faultSetup is testSetup with a fault schedule installed on the comm
// before the rank handle (and thus its per-rank schedule) is created.
func faultSetup(t testing.TB, spec *fault.Spec) (*rma.Rank, *Cache) {
	t.Helper()
	c := rma.NewComm(2, rma.DefaultCostModel())
	c.SetFaults(spec)
	region := make([]byte, 1024)
	for i := range region {
		region[i] = byte(i)
	}
	w := c.CreateWindow("data", [][]byte{nil, region})
	r := c.Rank(0)
	r.LockAll(w)
	return r, New(r, w, Config{Capacity: 512, Mode: AlwaysCache})
}

// TestAvailableWithoutFaults: with no schedule the cache is always
// available and the probe records nothing.
func TestAvailableWithoutFaults(t *testing.T) {
	_, c := faultSetup(t, nil)
	for i := 0; i < 100; i++ {
		if !c.Available() {
			t.Fatal("fault-free cache reported unavailable")
		}
	}
	if s := c.Stats(); s.DegradedOps != 0 {
		t.Fatalf("fault-free cache recorded degraded ops: %+v", s)
	}
}

// TestDegradedModeFlushes: an injected cache fault makes Available report
// false, counts a degraded op, and flushes the entries — the caller falls
// back to direct RMA and later repopulates from scratch.
func TestDegradedModeFlushes(t *testing.T) {
	_, c := faultSetup(t, &fault.Spec{Seed: 3, CacheFailPct: 0.2})
	degraded := 0
	for i := 0; i < 200; i++ {
		if c.Available() {
			// Populate so the next fault has something to flush.
			c.Get(1, (i%8)*64, 64)
			c.FlushWindow()
			continue
		}
		degraded++
		if got := c.Stats().EntriesCached; got != 0 {
			t.Fatalf("degraded cache kept %d entries after flush", got)
		}
	}
	if degraded == 0 {
		t.Fatal("20% cache fault rate never degraded in 200 ops")
	}
	s := c.Stats()
	if int(s.DegradedOps) != degraded {
		t.Fatalf("DegradedOps = %d, observed %d degraded probes", s.DegradedOps, degraded)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
