package clampi

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestAVLInsertRemoveBestFit(t *testing.T) {
	var tr avlTree
	tr.insert(10, 0, nil)
	tr.insert(5, 100, nil)
	tr.insert(20, 200, nil)
	if tr.len() != 3 {
		t.Fatalf("len = %d, want 3", tr.len())
	}
	n := tr.bestFit(6)
	if n == nil || n.size != 10 || n.off != 0 {
		t.Errorf("bestFit(6) = %v, want (10,0)", n)
	}
	n = tr.bestFit(11)
	if n == nil || n.size != 20 || n.off != 200 {
		t.Errorf("bestFit(11) = %v, want (20,200)", n)
	}
	if tr.bestFit(21) != nil {
		t.Error("bestFit(21) found a region in a tree whose max is 20")
	}
	if !tr.remove(10, 0) {
		t.Error("remove(10,0) failed")
	}
	if tr.remove(10, 0) {
		t.Error("remove(10,0) succeeded twice")
	}
	n = tr.bestFit(6)
	if n == nil || n.size != 20 || n.off != 200 {
		t.Errorf("after removal bestFit(6) = %v, want (20,200)", n)
	}
}

func TestAVLTiesBrokenByOffset(t *testing.T) {
	var tr avlTree
	tr.insert(8, 300, nil)
	tr.insert(8, 100, nil)
	tr.insert(8, 200, nil)
	n := tr.bestFit(8)
	if n == nil || n.off != 100 {
		t.Errorf("bestFit(8) = %v, want offset 100 (lowest offset among equal sizes)", n)
	}
	if n := tr.checkBalance(); n != 3 {
		t.Errorf("checkBalance = %d, want 3", n)
	}
}

func TestAVLMax(t *testing.T) {
	var tr avlTree
	if tr.max() != nil {
		t.Error("max of empty tree reported a node")
	}
	tr.insert(3, 0, nil)
	tr.insert(9, 50, nil)
	tr.insert(7, 80, nil)
	n := tr.max()
	if n == nil || n.size != 9 {
		t.Errorf("max = %v, want size 9", n)
	}
}

func TestAVLStaysBalancedUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var tr avlTree
	type region struct{ size, off int }
	live := map[region]bool{}
	nextOff := 0
	for i := 0; i < 5000; i++ {
		if rng.Float64() < 0.6 || len(live) == 0 {
			r := region{size: 1 + rng.IntN(100), off: nextOff}
			nextOff += 1000
			tr.insert(r.size, r.off, nil)
			live[r] = true
		} else {
			for r := range live {
				tr.remove(r.size, r.off)
				delete(live, r)
				break
			}
		}
		if i%500 == 0 {
			if n := tr.checkBalance(); n != len(live) {
				t.Fatalf("step %d: checkBalance = %d, want %d", i, n, len(live))
			}
		}
	}
	if n := tr.checkBalance(); n != len(live) {
		t.Fatalf("final: checkBalance = %d, want %d", n, len(live))
	}
}

// TestAVLNodePoolRecycles pins the allocation profile: once the pool has
// grown to the working-set size, insert/remove churn allocates nothing.
func TestAVLNodePoolRecycles(t *testing.T) {
	var tr avlTree
	for i := 0; i < 64; i++ {
		tr.insert(i+1, i*100, nil)
	}
	for i := 0; i < 64; i++ {
		tr.remove(i+1, i*100)
	}
	if got := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			tr.insert(i+1, i*100, nil)
		}
		for i := 0; i < 64; i++ {
			tr.remove(i+1, i*100)
		}
	}); got != 0 {
		t.Errorf("steady-state insert/remove allocates %.1f/op, want 0", got)
	}
	tr.reset()
	if tr.len() != 0 || tr.root != nil {
		t.Error("reset left nodes in the tree")
	}
}

func TestAVLDuplicatePanics(t *testing.T) {
	var tr avlTree
	tr.insert(4, 4, nil)
	defer func() {
		if recover() == nil {
			t.Error("duplicate insert did not panic")
		}
	}()
	tr.insert(4, 4, nil)
}

// Property: bestFit always returns the minimal adequate region.
func TestAVLBestFitProperty(t *testing.T) {
	f := func(sizes []uint8, want uint8) bool {
		var tr avlTree
		off := 0
		var all [][2]int
		for _, s := range sizes {
			size := int(s)%64 + 1
			tr.insert(size, off, nil)
			all = append(all, [2]int{size, off})
			off += 100
		}
		w := int(want)%64 + 1
		n := tr.bestFit(w)
		// Reference scan.
		bestSize, bestOff, refOK := 0, 0, false
		for _, r := range all {
			if r[0] >= w && (!refOK || regionLess(r[0], r[1], bestSize, bestOff)) {
				bestSize, bestOff, refOK = r[0], r[1], true
			}
		}
		if (n != nil) != refOK {
			return false
		}
		if n == nil {
			return true
		}
		return n.size == bestSize && n.off == bestOff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
