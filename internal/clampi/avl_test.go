package clampi

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestAVLInsertRemoveBestFit(t *testing.T) {
	var tr avlTree
	tr.insert(10, 0)
	tr.insert(5, 100)
	tr.insert(20, 200)
	if tr.len() != 3 {
		t.Fatalf("len = %d, want 3", tr.len())
	}
	size, off, ok := tr.bestFit(6)
	if !ok || size != 10 || off != 0 {
		t.Errorf("bestFit(6) = (%d,%d,%v), want (10,0,true)", size, off, ok)
	}
	size, off, ok = tr.bestFit(11)
	if !ok || size != 20 || off != 200 {
		t.Errorf("bestFit(11) = (%d,%d,%v), want (20,200,true)", size, off, ok)
	}
	if _, _, ok := tr.bestFit(21); ok {
		t.Error("bestFit(21) found a region in a tree whose max is 20")
	}
	if !tr.remove(10, 0) {
		t.Error("remove(10,0) failed")
	}
	if tr.remove(10, 0) {
		t.Error("remove(10,0) succeeded twice")
	}
	size, off, ok = tr.bestFit(6)
	if !ok || size != 20 || off != 200 {
		t.Errorf("after removal bestFit(6) = (%d,%d,%v), want (20,200,true)", size, off, ok)
	}
}

func TestAVLTiesBrokenByOffset(t *testing.T) {
	var tr avlTree
	tr.insert(8, 300)
	tr.insert(8, 100)
	tr.insert(8, 200)
	_, off, ok := tr.bestFit(8)
	if !ok || off != 100 {
		t.Errorf("bestFit(8) offset = %d, want 100 (lowest offset among equal sizes)", off)
	}
	if n := tr.checkBalance(); n != 3 {
		t.Errorf("checkBalance = %d, want 3", n)
	}
}

func TestAVLMax(t *testing.T) {
	var tr avlTree
	if _, _, ok := tr.max(); ok {
		t.Error("max of empty tree reported ok")
	}
	tr.insert(3, 0)
	tr.insert(9, 50)
	tr.insert(7, 80)
	size, _, ok := tr.max()
	if !ok || size != 9 {
		t.Errorf("max = %d, want 9", size)
	}
}

func TestAVLStaysBalancedUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var tr avlTree
	type region struct{ size, off int }
	live := map[region]bool{}
	nextOff := 0
	for i := 0; i < 5000; i++ {
		if rng.Float64() < 0.6 || len(live) == 0 {
			r := region{size: 1 + rng.IntN(100), off: nextOff}
			nextOff += 1000
			tr.insert(r.size, r.off)
			live[r] = true
		} else {
			for r := range live {
				tr.remove(r.size, r.off)
				delete(live, r)
				break
			}
		}
		if i%500 == 0 {
			if n := tr.checkBalance(); n != len(live) {
				t.Fatalf("step %d: checkBalance = %d, want %d", i, n, len(live))
			}
		}
	}
	if n := tr.checkBalance(); n != len(live) {
		t.Fatalf("final: checkBalance = %d, want %d", n, len(live))
	}
}

func TestAVLDuplicatePanics(t *testing.T) {
	var tr avlTree
	tr.insert(4, 4)
	defer func() {
		if recover() == nil {
			t.Error("duplicate insert did not panic")
		}
	}()
	tr.insert(4, 4)
}

// Property: bestFit always returns the minimal adequate region.
func TestAVLBestFitProperty(t *testing.T) {
	f := func(sizes []uint8, want uint8) bool {
		var tr avlTree
		off := 0
		var all [][2]int
		for _, s := range sizes {
			size := int(s)%64 + 1
			tr.insert(size, off)
			all = append(all, [2]int{size, off})
			off += 100
		}
		w := int(want)%64 + 1
		size, foundOff, ok := tr.bestFit(w)
		// Reference scan.
		bestSize, bestOff, refOK := 0, 0, false
		for _, r := range all {
			if r[0] >= w && (!refOK || regionLess(r[0], r[1], bestSize, bestOff)) {
				bestSize, bestOff, refOK = r[0], r[1], true
			}
		}
		if ok != refOK {
			return false
		}
		if !ok {
			return true
		}
		return size == bestSize && foundOff == bestOff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
