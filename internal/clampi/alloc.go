package clampi

import "fmt"

// allocator manages the cache's memory buffer: a contiguous region of
// `capacity` bytes from which variable-size entries are carved. Free space
// is tracked in an AVL tree keyed by (size, offset) for best-fit allocation
// (§II-F), plus boundary maps that allow adjacent free regions to coalesce
// when an entry is evicted. External fragmentation is real in this design:
// an allocation fails when no single free region is large enough, even if
// the total free space would suffice — exactly the condition CLaMPI's
// positional eviction score exists to fight.
type allocator struct {
	capacity int
	used     int
	tree     avlTree
	byStart  map[int]int // free region start offset -> size
	byEnd    map[int]int // free region end offset (exclusive) -> start
}

func newAllocator(capacity int) *allocator {
	a := &allocator{
		capacity: capacity,
		byStart:  map[int]int{},
		byEnd:    map[int]int{},
	}
	if capacity > 0 {
		a.addFree(0, capacity)
	}
	return a
}

func (a *allocator) addFree(off, size int) {
	a.tree.insert(size, off)
	a.byStart[off] = size
	a.byEnd[off+size] = off
}

func (a *allocator) delFree(off, size int) {
	if !a.tree.remove(size, off) {
		panic(fmt.Sprintf("clampi: allocator free-list corruption at [%d,+%d)", off, size))
	}
	delete(a.byStart, off)
	delete(a.byEnd, off+size)
}

// alloc reserves size bytes, best-fit, and returns the buffer offset.
func (a *allocator) alloc(size int) (int, bool) {
	if size <= 0 {
		return 0, false
	}
	rsize, roff, ok := a.tree.bestFit(size)
	if !ok {
		return 0, false
	}
	a.delFree(roff, rsize)
	if rsize > size {
		a.addFree(roff+size, rsize-size)
	}
	a.used += size
	return roff, true
}

// free releases the region [off, off+size), coalescing with free neighbours.
func (a *allocator) free(off, size int) {
	if size <= 0 {
		return
	}
	start, total := off, size
	// Merge with the free region ending exactly at off.
	if lstart, ok := a.byEnd[off]; ok {
		lsize := a.byStart[lstart]
		a.delFree(lstart, lsize)
		start = lstart
		total += lsize
	}
	// Merge with the free region starting exactly at off+size.
	if rsize, ok := a.byStart[off+size]; ok {
		a.delFree(off+size, rsize)
		total += rsize
	}
	a.addFree(start, total)
	a.used -= size
}

// freeBytes returns the total number of unallocated bytes.
// grow extends the buffer by extra bytes. The new tail merges with a
// trailing free region if one ends at the old capacity, so a grown buffer
// is indistinguishable from one created at the larger size with the same
// entries. Existing entries keep their offsets — growth never invalidates.
func (a *allocator) grow(extra int) {
	if extra <= 0 {
		return
	}
	off, size := a.capacity, extra
	if start, ok := a.byEnd[a.capacity]; ok {
		sz := a.byStart[start]
		a.delFree(start, sz)
		off, size = start, sz+extra
	}
	a.capacity += extra
	a.addFree(off, size)
}

func (a *allocator) freeBytes() int { return a.capacity - a.used }

// largestFree returns the size of the largest single free region.
func (a *allocator) largestFree() int {
	size, _, ok := a.tree.max()
	if !ok {
		return 0
	}
	return size
}

// adjacentFree returns how many free bytes border the allocated region
// [off,off+size) on either side — the merge potential that feeds the
// positional component of the eviction score.
func (a *allocator) adjacentFree(off, size int) int {
	adj := 0
	if lstart, ok := a.byEnd[off]; ok {
		adj += a.byStart[lstart]
	}
	if rsize, ok := a.byStart[off+size]; ok {
		adj += rsize
	}
	return adj
}

// fragmentation returns 1 - largestFree/freeBytes: 0 when all free space is
// contiguous, approaching 1 as it shatters. Reported in cache stats.
func (a *allocator) fragmentation() float64 {
	free := a.freeBytes()
	if free == 0 {
		return 0
	}
	return 1 - float64(a.largestFree())/float64(free)
}

// check verifies allocator invariants (tests only): free regions are
// disjoint, within bounds, non-adjacent (fully coalesced), and account for
// exactly capacity-used bytes.
func (a *allocator) check() error {
	if n := a.tree.checkBalance(); n < 0 {
		return fmt.Errorf("clampi: AVL invariants violated")
	}
	type region struct{ off, size int }
	var regions []region
	total := 0
	a.tree.walk(func(size, off int) {
		regions = append(regions, region{off, size})
		total += size
	})
	if total != a.freeBytes() {
		return fmt.Errorf("clampi: free bytes %d != tracked %d", total, a.freeBytes())
	}
	if len(regions) != len(a.byStart) || len(regions) != len(a.byEnd) {
		return fmt.Errorf("clampi: boundary maps out of sync with tree")
	}
	for _, r := range regions {
		if r.off < 0 || r.off+r.size > a.capacity || r.size <= 0 {
			return fmt.Errorf("clampi: region [%d,+%d) out of bounds", r.off, r.size)
		}
		if got, ok := a.byStart[r.off]; !ok || got != r.size {
			return fmt.Errorf("clampi: byStart missing region [%d,+%d)", r.off, r.size)
		}
		if got, ok := a.byEnd[r.off+r.size]; !ok || got != r.off {
			return fmt.Errorf("clampi: byEnd missing region [%d,+%d)", r.off, r.size)
		}
	}
	// Disjoint and coalesced: sort by offset via insertion (few regions in
	// tests) and check gaps.
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			if regions[j].off < regions[i].off {
				regions[i], regions[j] = regions[j], regions[i]
			}
		}
	}
	for i := 1; i < len(regions); i++ {
		prevEnd := regions[i-1].off + regions[i-1].size
		if regions[i].off < prevEnd {
			return fmt.Errorf("clampi: overlapping free regions")
		}
		if regions[i].off == prevEnd {
			return fmt.Errorf("clampi: uncoalesced adjacent free regions at %d", prevEnd)
		}
	}
	return nil
}
