package clampi

import "fmt"

// block is one region of the cache's memory buffer: either the extent of an
// allocated entry or a free region. All blocks — allocated and free — form
// an address-ordered doubly-linked list that tiles [0, capacity) with no
// gaps (boundary-tag style). The links make freeing O(1): a block's
// potential coalescing partners are exactly its prev/next neighbors, which
// replaces the byStart/byEnd offset maps the seed allocator used. The same
// hops answer the adjacent-free query behind the positional eviction score.
type block struct {
	off, size  int
	prev, next *block
	free       bool
	poolNext   *block // pool linkage while recycled
}

// allocator manages the cache's memory buffer: a contiguous region of
// `capacity` bytes from which variable-size entries are carved. Free blocks
// are additionally indexed by an AVL tree keyed by (size, offset) for
// best-fit allocation (§II-F). External fragmentation is real in this
// design: an allocation fails when no single free region is large enough,
// even if the total free space would suffice — exactly the condition
// CLaMPI's positional eviction score exists to fight.
//
// Blocks and tree nodes are pooled (slab-grown), so steady-state
// alloc/free/coalesce traffic performs no heap allocations, and reset()
// restores the pristine one-free-region state in place.
type allocator struct {
	capacity int
	used     int
	tree     avlTree
	head     *block // address-ordered list, lowest offset first
	tail     *block
	pool     *block
	slab     int
}

func newAllocator(capacity int) *allocator {
	return newAllocatorSized(capacity, 0)
}

// newAllocatorSized pre-sizes the block pool's first slab (0 = default).
func newAllocatorSized(capacity, slabHint int) *allocator {
	a := &allocator{slab: slabHint}
	a.init(capacity)
	return a
}

func (a *allocator) init(capacity int) {
	a.capacity = capacity
	a.used = 0
	if capacity > 0 {
		b := a.newBlock()
		b.off, b.size, b.free = 0, capacity, true
		a.head, a.tail = b, b
		a.tree.insert(b.size, b.off, b)
	}
}

// reset returns every block and tree node to the pools and restores the
// single pristine free region, without reallocating any structure.
func (a *allocator) reset() {
	for b := a.head; b != nil; {
		next := b.next
		a.putBlock(b)
		b = next
	}
	a.head, a.tail = nil, nil
	a.tree.reset()
	a.init(a.capacity)
}

func (a *allocator) newBlock() *block {
	if a.pool == nil {
		if a.slab == 0 {
			a.slab = 32
		}
		blocks := make([]block, a.slab)
		if a.slab < 4096 {
			a.slab *= 2
		}
		for i := range blocks {
			blocks[i].poolNext = a.pool
			a.pool = &blocks[i]
		}
	}
	b := a.pool
	a.pool = b.poolNext
	*b = block{}
	return b
}

func (a *allocator) putBlock(b *block) {
	*b = block{poolNext: a.pool}
	a.pool = b
}

// mustRemove drops a free block's tree node, panicking if the tree and the
// block list ever desynchronize — fail fast at the corruption site rather
// than letting bestFit hand out overlapping regions later.
func (a *allocator) mustRemove(b *block) {
	if !a.tree.remove(b.size, b.off) {
		panic(fmt.Sprintf("clampi: allocator free-list corruption at [%d,+%d)", b.off, b.size))
	}
}

// alloc reserves size bytes, best-fit, and returns the allocated block.
// The block handle is what free and adjacentFree operate on; its offset is
// the position in the simulated memory buffer.
func (a *allocator) alloc(size int) (*block, bool) {
	if size <= 0 {
		return nil, false
	}
	n := a.tree.bestFit(size)
	if n == nil {
		return nil, false
	}
	b := n.blk
	a.mustRemove(b)
	a.used += size
	if b.size > size {
		// Carve the allocated head off b; the tail of b stays free, which
		// matches the seed allocator's best-fit split (entry at the
		// region's start, remainder re-freed).
		nb := a.newBlock()
		nb.off, nb.size = b.off, size
		nb.prev, nb.next = b.prev, b
		if b.prev != nil {
			b.prev.next = nb
		} else {
			a.head = nb
		}
		b.prev = nb
		b.off += size
		b.size -= size
		a.tree.insert(b.size, b.off, b)
		return nb, true
	}
	b.free = false
	return b, true
}

// free releases an allocated block, coalescing with free neighbors in O(1)
// via the address links. The neighbors' blocks are absorbed and recycled.
func (a *allocator) free(b *block) {
	if b == nil || b.free {
		return
	}
	a.used -= b.size
	if l := b.prev; l != nil && l.free {
		a.mustRemove(l)
		b.off = l.off
		b.size += l.size
		b.prev = l.prev
		if l.prev != nil {
			l.prev.next = b
		} else {
			a.head = b
		}
		a.putBlock(l)
	}
	if r := b.next; r != nil && r.free {
		a.mustRemove(r)
		b.size += r.size
		b.next = r.next
		if r.next != nil {
			r.next.prev = b
		} else {
			a.tail = b
		}
		a.putBlock(r)
	}
	b.free = true
	a.tree.insert(b.size, b.off, b)
}

// grow extends the buffer by extra bytes. The new tail merges with a
// trailing free region if one ends at the old capacity, so a grown buffer
// is indistinguishable from one created at the larger size with the same
// entries. Existing blocks keep their offsets — growth never invalidates.
func (a *allocator) grow(extra int) {
	if extra <= 0 {
		return
	}
	a.capacity += extra
	if t := a.tail; t != nil && t.free {
		a.mustRemove(t)
		t.size += extra
		a.tree.insert(t.size, t.off, t)
		return
	}
	b := a.newBlock()
	b.off, b.size, b.free = a.capacity-extra, extra, true
	b.prev = a.tail
	if a.tail != nil {
		a.tail.next = b
	} else {
		a.head = b
	}
	a.tail = b
	a.tree.insert(b.size, b.off, b)
}

// freeBytes returns the total number of unallocated bytes.
func (a *allocator) freeBytes() int { return a.capacity - a.used }

// largestFree returns the size of the largest single free region.
func (a *allocator) largestFree() int {
	n := a.tree.max()
	if n == nil {
		return 0
	}
	return n.size
}

// adjacentFree returns how many free bytes border the allocated block on
// either side — the merge potential that feeds the positional component of
// the eviction score. Two pointer hops, no map lookups.
func (a *allocator) adjacentFree(b *block) int {
	adj := 0
	if l := b.prev; l != nil && l.free {
		adj += l.size
	}
	if r := b.next; r != nil && r.free {
		adj += r.size
	}
	return adj
}

// fragmentation returns 1 - largestFree/freeBytes: 0 when all free space is
// contiguous, approaching 1 as it shatters. Reported in cache stats.
func (a *allocator) fragmentation() float64 {
	free := a.freeBytes()
	if free == 0 {
		return 0
	}
	return 1 - float64(a.largestFree())/float64(free)
}

// check verifies allocator invariants (tests only): the block list tiles
// [0, capacity) exactly, free blocks are fully coalesced and indexed by the
// tree, and used/free byte accounting matches.
func (a *allocator) check() error {
	if n := a.tree.checkBalance(); n < 0 {
		return fmt.Errorf("clampi: AVL invariants violated")
	}
	treeRegions := map[[2]int]bool{}
	treeTotal := 0
	a.tree.walk(func(size, off int) {
		treeRegions[[2]int{off, size}] = true
		treeTotal += size
	})
	if treeTotal != a.freeBytes() {
		return fmt.Errorf("clampi: free bytes %d != tracked %d", treeTotal, a.freeBytes())
	}
	pos, usedSum, freeCount := 0, 0, 0
	var prev *block
	for b := a.head; b != nil; b = b.next {
		if b.off != pos {
			return fmt.Errorf("clampi: block list gap: block at %d, expected %d", b.off, pos)
		}
		if b.size <= 0 {
			return fmt.Errorf("clampi: non-positive block size %d at %d", b.size, b.off)
		}
		if b.prev != prev {
			return fmt.Errorf("clampi: broken prev link at offset %d", b.off)
		}
		if b.free {
			freeCount++
			if prev != nil && prev.free {
				return fmt.Errorf("clampi: uncoalesced adjacent free regions at %d", b.off)
			}
			if !treeRegions[[2]int{b.off, b.size}] {
				return fmt.Errorf("clampi: free block [%d,+%d) missing from tree", b.off, b.size)
			}
		} else {
			usedSum += b.size
		}
		pos += b.size
		prev = b
	}
	if a.capacity > 0 && pos != a.capacity {
		return fmt.Errorf("clampi: block list covers %d bytes of %d", pos, a.capacity)
	}
	if prev != a.tail {
		return fmt.Errorf("clampi: tail link out of sync")
	}
	if usedSum != a.used {
		return fmt.Errorf("clampi: allocated blocks hold %d bytes but used=%d", usedSum, a.used)
	}
	if freeCount != len(treeRegions) || freeCount != a.tree.len() {
		return fmt.Errorf("clampi: tree holds %d regions, list holds %d", a.tree.len(), freeCount)
	}
	return nil
}
