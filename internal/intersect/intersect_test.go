package intersect

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func vs(xs ...uint32) []graph.V {
	out := make([]graph.V, len(xs))
	for i, x := range xs {
		out[i] = graph.V(x)
	}
	return out
}

func TestSSIBasic(t *testing.T) {
	cases := []struct {
		a, b []graph.V
		want int
	}{
		{vs(1, 2, 3), vs(2, 3, 4), 2},
		{vs(), vs(1, 2), 0},
		{vs(1, 2), vs(), 0},
		{vs(1, 3, 5), vs(2, 4, 6), 0},
		{vs(1, 2, 3), vs(1, 2, 3), 3},
		{vs(5), vs(1, 2, 3, 4, 5), 1},
	}
	for _, c := range cases {
		if got, _ := SSI(c.a, c.b); got != c.want {
			t.Errorf("SSI(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBinaryBasic(t *testing.T) {
	cases := []struct {
		keys, tree []graph.V
		want       int
	}{
		{vs(2, 3), vs(1, 2, 3, 4, 5), 2},
		{vs(), vs(1, 2), 0},
		{vs(1, 2), vs(), 0},
		{vs(0, 6), vs(1, 2, 3, 4, 5), 0},
		{vs(1, 5), vs(1, 2, 3, 4, 5), 2},
	}
	for _, c := range cases {
		if got, _ := Binary(c.keys, c.tree); got != c.want {
			t.Errorf("Binary(%v,%v) = %d, want %d", c.keys, c.tree, got, c.want)
		}
	}
}

func TestOpsComplexities(t *testing.T) {
	// SSI ops bounded by |A|+|B|; binary ops bounded by |A|*ceil(log2 |B|)+|A|.
	a := seqList(0, 100, 2)
	b := seqList(1, 400, 2)
	_, ssiOps := SSI(a, b)
	if ssiOps > len(a)+len(b) {
		t.Errorf("SSI ops %d exceed |A|+|B| = %d", ssiOps, len(a)+len(b))
	}
	_, binOps := Binary(a, b)
	if binOps > len(a)*10 {
		t.Errorf("Binary ops %d exceed |A|·log bound", binOps)
	}
	if binOps == 0 || ssiOps == 0 {
		t.Error("ops not counted")
	}
}

func seqList(start, n, step int) []graph.V {
	out := make([]graph.V, n)
	for i := range out {
		out[i] = graph.V(start + i*step)
	}
	return out
}

// refIntersect is the map-based oracle.
func refIntersect(a, b []graph.V) int {
	m := map[graph.V]bool{}
	for _, x := range a {
		m[x] = true
	}
	c := 0
	for _, x := range b {
		if m[x] {
			c++
		}
	}
	return c
}

func sortedUnique(raw []uint16, mod uint32) []graph.V {
	seen := map[graph.V]bool{}
	var out []graph.V
	for _, r := range raw {
		v := graph.V(uint32(r) % mod)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Property: all methods agree with the oracle on arbitrary sorted lists.
func TestAllMethodsMatchOracle(t *testing.T) {
	f := func(ra, rb []uint16) bool {
		a := sortedUnique(ra, 300)
		b := sortedUnique(rb, 300)
		want := refIntersect(a, b)
		for _, m := range []Method{MethodSSI, MethodBinary, MethodHybrid} {
			if got, _ := Count(m, a, b); got != want {
				t.Logf("method %v: got %d, want %d", m, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: parallel variants agree with sequential for every method and
// several thread counts, both above and below the cutoff.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 40; trial++ {
		la := 1 + rng.IntN(3000)
		lb := 1 + rng.IntN(3000)
		a := randSorted(rng, la, 8000)
		b := randSorted(rng, lb, 8000)
		want := refIntersect(a, b)
		for _, m := range []Method{MethodSSI, MethodBinary, MethodHybrid} {
			for _, threads := range []int{1, 2, 4, 16} {
				cfg := ParallelConfig{Threads: threads, Cutoff: 256}
				if got := ParallelCount(m, a, b, cfg); got != want {
					t.Fatalf("trial %d method %v threads %d: got %d, want %d",
						trial, m, threads, got, want)
				}
			}
		}
	}
}

func randSorted(rng *rand.Rand, n, universe int) []graph.V {
	seen := map[graph.V]bool{}
	out := make([]graph.V, 0, n)
	for len(out) < n {
		v := graph.V(rng.IntN(universe))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestPreferSSIRule(t *testing.T) {
	// Eq. (3): SSI iff |B| <= |A|(log2|B|-1).
	cases := []struct {
		lenA, lenB int
		want       bool
	}{
		{100, 100, true},   // similar lengths: merge wins
		{2, 4096, false},   // tiny A, huge B: binary search wins
		{1024, 2048, true}, // ratio 2 << log2(2048)-1 = 10
		{1, 1024, false},
		{0, 10, true},
	}
	for _, c := range cases {
		if got := PreferSSI(c.lenA, c.lenB); got != c.want {
			t.Errorf("PreferSSI(%d,%d) = %v, want %v", c.lenA, c.lenB, got, c.want)
		}
	}
	// Symmetry: order of arguments must not matter.
	if PreferSSI(10, 5000) != PreferSSI(5000, 10) {
		t.Error("PreferSSI not symmetric")
	}
}

func TestUpperSlice(t *testing.T) {
	b := vs(1, 3, 5, 7, 9)
	cases := []struct {
		floor graph.V
		want  int // expected length of suffix
	}{
		{0, 5}, {1, 4}, {4, 3}, {9, 0}, {100, 0},
	}
	for _, c := range cases {
		got := UpperSlice(b, c.floor)
		if len(got) != c.want {
			t.Errorf("UpperSlice(%v, %d) = %v, want %d elems", b, c.floor, got, c.want)
		}
		for _, x := range got {
			if x <= c.floor {
				t.Errorf("UpperSlice(%v, %d) contains %d <= floor", b, c.floor, x)
			}
		}
	}
}

// Property: UpperSlice(b, f) == elements of b strictly greater than f.
func TestUpperSliceProperty(t *testing.T) {
	f := func(raw []uint16, floor uint16) bool {
		b := sortedUnique(raw, 1000)
		got := UpperSlice(b, graph.V(floor))
		want := 0
		for _, x := range b {
			if x > graph.V(floor) {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestThreadModelShape(t *testing.T) {
	tm := DefaultThreadModel()
	// Large lists: parallel must beat sequential.
	seq := tm.EdgeTime(4000, 4000, 1)
	par := tm.EdgeTime(4000, 4000, 16)
	if par >= seq {
		t.Errorf("16 threads (%v ns) not faster than 1 (%v ns) on large lists", par, seq)
	}
	// Tiny lists: below cutoff, thread count is irrelevant.
	if tm.EdgeTime(8, 16, 16) != tm.EdgeTime(8, 16, 1) {
		t.Error("cutoff did not force sequential execution for tiny lists")
	}
	// Region overhead: speedup saturates — 16 threads on medium lists is
	// less than 16x faster.
	seqM := tm.EdgeTime(600, 600, 1)
	parM := tm.EdgeTime(600, 600, 16)
	if seqM/parM > 8 {
		t.Errorf("speedup %.1f on medium lists unrealistically high (region overhead lost)", seqM/parM)
	}
}

func TestCountOrientsShorterList(t *testing.T) {
	// Binary must treat the shorter list as keys regardless of argument
	// order: ops should be identical both ways through Count.
	a := seqList(0, 10, 3)
	b := seqList(0, 1000, 1)
	_, ops1 := Count(MethodBinary, a, b)
	_, ops2 := Count(MethodBinary, b, a)
	if ops1 != ops2 {
		t.Errorf("Count did not orient lists: ops %d vs %d", ops1, ops2)
	}
}

func TestMethodString(t *testing.T) {
	if MethodSSI.String() != "ssi" || MethodBinary.String() != "binary" || MethodHybrid.String() != "hybrid" {
		t.Error("Method.String broken")
	}
}
