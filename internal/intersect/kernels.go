package intersect

import "repro/internal/graph"

// This file holds the fast *host* kernels of the cost-decoupled layer
// (DESIGN.md §5). They compute |a ∩ b| for the engines' wall-clock, while
// the modeled compute charge — the exact Algorithm 1/2 ops counts the
// golden tests pin — comes from cost.go or, for the merge, from the
// kernel's own exit positions. All kernels require strictly increasing
// inputs (adjacency lists are sorted and deduplicated sets).
//
// Three kernels cover the host dispatch:
//
//   - MergeCount: a 4-way unrolled branch-free merge. The scalar SSI loop
//     takes one unpredictable branch per element; on power-law adjacency
//     data roughly half of them mispredict. The unrolled form turns the
//     three outcomes (advance i, advance j, match) into flag arithmetic
//     with no data-dependent branches at all.
//   - the stamp-set probe (scratch.go): a per-rank reusable uint64 bitmap
//     in the spirit of H-INDEX's hashed bins (Pandey et al., HPEC'19) but
//     exact — the pivot list is stamped once and every neighbour list is
//     counted with one bit test per element, amortizing the build over
//     deg(pivot) intersections exactly like the reusable HashIndex.
//   - the finger-stack binary search (below): Algorithm 1's bisection with
//     the path cached across the (ascending) keys, so consecutive keys
//     replay only the divergent suffix of the search path while the ops
//     charge still counts the full root-to-leaf depth the reference loop
//     would execute.

// The merge kernels turn comparison flags into 0/1 with pure integer
// arithmetic on 64-bit zero-extended operands, so the compiler emits flag
// materialization instead of jumps. For x, y ∈ [0, 2³²):
//
//	eq(x,y) = ((x^y) - 1) >> 63        (1 iff x == y)
//	le(x,y) = ((y - x) >> 63) ^ 1      (1 iff x <= y)
//
// both relying on the subtraction borrowing into bit 63 exactly when the
// 32-bit operands would underflow.

// mergeStep executes one iteration of Algorithm 2 branch-free. It must
// advance i, j and count exactly like the reference SSI loop so the exit
// positions remain a valid basis for the modeled charge (ops = i+j-count).
func mergeStep(a, b []graph.V, i, j, count int) (int, int, int) {
	x, y := uint64(a[i]), uint64(b[j])
	count += int(((x ^ y) - 1) >> 63)
	i += int(((y - x) >> 63) ^ 1)
	j += int(((x - y) >> 63) ^ 1)
	return i, j, count
}

// MergeCount returns |a ∩ b| by branch-free merge along with the exact
// exit positions of the equivalent Algorithm 2 traversal. Because the
// advancement rule is identical to SSI's, iEnd + jEnd - count equals the
// reference loop's ops count bit for bit — the merge kernel carries its
// own modeled charge. Inputs must be strictly increasing.
func MergeCount(a, b []graph.V) (count, iEnd, jEnd int) {
	i, j := 0, 0
	na, nb := len(a), len(b)
	// 4-way unrolled core: four merge steps advance i and j by at most
	// four each, so one pair of bounds tests covers all four iterations.
	for i+4 <= na && j+4 <= nb {
		i, j, count = mergeStep(a, b, i, j, count)
		i, j, count = mergeStep(a, b, i, j, count)
		i, j, count = mergeStep(a, b, i, j, count)
		i, j, count = mergeStep(a, b, i, j, count)
	}
	for i < na && j < nb {
		i, j, count = mergeStep(a, b, i, j, count)
	}
	return count, i, j
}

// mergeElements is MergeCount's listing variant: it appends a ∩ b to dst
// (ascending) and returns the extended slice plus the exit positions. The
// match append is a rare, well-predicted branch; the advancement stays
// branch-free.
func mergeElements(a, b []graph.V, dst []graph.V) ([]graph.V, int, int) {
	i, j := 0, 0
	na, nb := len(a), len(b)
	for i < na && j < nb {
		x, y := uint64(a[i]), uint64(b[j])
		if x == y {
			dst = append(dst, a[i])
		}
		i += int(((y - x) >> 63) ^ 1)
		j += int(((x - y) >> 63) ^ 1)
	}
	return dst, i, j
}

// fingerFrame is one interval [lo, hi) of Algorithm 1's bisection; the
// frame's index on the stack is its depth, i.e. the number of probe
// iterations the reference loop executes to reach it from (0, len(tree)).
type fingerFrame struct {
	lo, hi int32
}

// fingerStackCap bounds the bisection depth: ceil(log2(n))+1 frames for
// n < 2³¹, plus the root.
const fingerStackCap = 40

// fingerTailLen is the interval size at or below which the replay stops
// framing and finishes with one table lookup (see fingerBinary). 32 keeps
// the two tables at ~2 KiB total — a few L1 lines next to the hot loop
// (64 was measurably worse: the 4× larger tables push the dense-key
// replay's working set out of the first-level cache) — while still
// letting every tree up to 32 elements take the frameless fast path.
const fingerTailLen = 32

// The tail lookup tables close the bisection arithmetically. Because
// mid = lo + floor((hi-lo)/2), the whole trajectory of Algorithm 1 inside
// an interval depends only on the interval's size s and the insertion
// point's offset r = p - lo, never on the absolute position — so the
// iteration count is a pure function of (s, r), tabulated once at init:
//
//	tailMissLUT[s][r]: iterations for the interval to converge to (p, p)
//	tailHitLUT[s][r]:  iterations until mid == p, including the match
//
// Each table is (fingerTailLen+1)² bytes — a few L1 lines.
var tailMissLUT, tailHitLUT [(fingerTailLen + 1) * (fingerTailLen + 1)]uint8

func init() {
	for s := 0; s <= fingerTailLen; s++ {
		for r := 0; r <= s; r++ {
			lo, hi, it := 0, s, 0
			for lo < hi {
				it++
				if mid := (lo + hi) / 2; mid < r {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			tailMissLUT[s*(fingerTailLen+1)+r] = uint8(it)
			if r < s {
				lo, hi, it = 0, s, 0
				for {
					it++
					mid := (lo + hi) / 2
					if mid == r {
						break
					}
					if mid < r {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				tailHitLUT[s*(fingerTailLen+1)+r] = uint8(it)
			}
		}
	}
}

// fingerBinary returns |keys ∩ tree| and the exact probe-iteration count
// of the reference Binary loop (Algorithm 1), in one pass over the
// ascending keys that splits the work into a memory half and an
// arithmetic half:
//
//   - a monotone galloping cursor locates each key's insertion point p
//     (linear steps for dense gaps, doubling probes plus a bracketed
//     bisection for sparse ones) — the only part that touches the tree;
//   - the reference bisection is then *replayed on indices alone*: every
//     tree[mid] comparison the reference makes is equivalent to comparing
//     mid against p (with a hit exactly at mid == p), so the per-key
//     full-depth charge is reproduced bit for bit without loading a
//     single tree element.
//
// The replay shares the path across keys with a finger stack: the frames
// of the previous key's path that still contain p resume the charge at
// their stored depth (a frame at stack index d costs the reference d
// iterations to reach), and only the divergent suffix is walked —
// amortized O(log(|tree|/|keys|)) per key. Below fingerTailLen the suffix
// is finished without frame traffic: consecutive keys usually land in the
// same small frame, and re-walking a few index-only steps is cheaper than
// pushing and popping the stack's bottom levels. Trees at or below
// fingerTailLen skip the machinery entirely: their whole charge is one
// table load at the cursor position.
//
// When wantDst is set, matched keys are appended to dst (the
// BinaryElements variant); the returned slice is dst extended, ascending.
func fingerBinary(stack []fingerFrame, keys, tree []graph.V, wantDst bool, dst []graph.V) (count, ops int, out []graph.V) {
	assertOriented(keys, tree)
	n := int32(len(tree))
	if n == 0 || len(keys) == 0 {
		return 0, 0, dst
	}
	if int(n) <= fingerTailLen {
		// Frameless fast path: the whole tree is one LUT frame, so the
		// reference charge for every key is a single table load at the
		// cursor's insertion point — no stack, no replay. Dominant on
		// power-law graphs, where most adjacency lists are short.
		base := int(n) * (fingerTailLen + 1)
		q := 0
		for _, x := range keys {
			for q < int(n) && tree[q] < x {
				q++
			}
			if q < int(n) && tree[q] == x {
				count++
				if wantDst {
					dst = append(dst, x)
				}
				ops += int(tailHitLUT[base+q])
			} else {
				ops += int(tailMissLUT[base+q])
			}
		}
		return count, ops, dst
	}
	st := stack[:fingerStackCap]
	st[0] = fingerFrame{0, n}
	sp := 1
	q := 0 // cursor: lowerBound(tree, previous key), monotone over the call
	nn := len(tree)
	for _, x := range keys {
		// Memory half: advance the cursor to p = lowerBound(tree, x).
		// Short gaps walk linearly (sequential, predictor-friendly);
		// longer ones gallop and bisect the final bracket.
		if q < nn && tree[q] < x {
			q++
			for steps := 0; q < nn && tree[q] < x; steps++ {
				q++
				if steps == 8 {
					d := 8
					for q+d < nn && tree[q+d] < x {
						q += d
						d <<= 1
					}
					hi2 := q + d
					if hi2 > nn {
						hi2 = nn
					}
					for q < hi2 {
						m := int(uint(q+hi2) >> 1)
						if tree[m] < x {
							q = m + 1
						} else {
							hi2 = m
						}
					}
					break
				}
			}
		}
		p := int32(q)
		hit := q < nn && tree[q] == x
		if hit {
			count++
			if wantDst {
				dst = append(dst, x)
			}
		}
		// Arithmetic half: replay the reference bisection on indices.
		// Pop frames that are not on x's path (each frame is popped at
		// most once, so pops are amortized O(1) per key): tree[hi] < x
		// ⟺ hi < p means the interval cannot contain p, and tree[hi] ==
		// x ⟺ hi == p on a hit means the reference terminates at the
		// ancestor that probes hi and never enters this frame. Both
		// collapse into one integer threshold.
		popT := p
		if hit {
			popT++
		}
		for sp > 1 && st[sp-1].hi < popT {
			sp--
		}
		// Resume from the deepest shared frame. Iteration accounting is
		// free on the framed part: the frame's stack index is its depth
		// and every non-match iteration pushes exactly one frame, so the
		// framed charge is sp-1 after the descent (plus the match
		// iteration itself on a hit).
		f := st[sp-1]
		lo, hi := f.lo, f.hi
		if hit {
			matched := false
			for hi-lo > fingerTailLen {
				mid := int32(uint32(lo+hi) >> 1)
				if mid == p {
					matched = true
					break
				}
				if mid < p {
					lo = mid + 1
				} else {
					hi = mid
				}
				st[sp] = fingerFrame{lo, hi}
				sp++
			}
			if matched {
				ops += sp // sp-1 framed iterations + the match
			} else {
				ops += sp - 1 + int(tailHitLUT[(hi-lo)*(fingerTailLen+1)+(p-lo)])
			}
			continue
		}
		for hi-lo > fingerTailLen {
			mid := int32(uint32(lo+hi) >> 1)
			if mid < p {
				lo = mid + 1
			} else {
				hi = mid
			}
			st[sp] = fingerFrame{lo, hi}
			sp++
		}
		ops += sp - 1 + int(tailMissLUT[(hi-lo)*(fingerTailLen+1)+(p-lo)])
	}
	return count, ops, dst
}

// upperBound returns the number of elements of s that are ≤ x (s strictly
// increasing).
func upperBound(s []graph.V, x graph.V) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
