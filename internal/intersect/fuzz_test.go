package intersect

import (
	"testing"

	"repro/internal/graph"
)

// FuzzIntersectKernels is the native-fuzzing arm of the model/host
// contract: for arbitrary sorted-set pairs and every method, each host
// kernel's count must match the map oracle, and the analytic/replayed
// charge must match the reference loops' ops — across repeated calls on
// one Scratch so the stamped and finger paths are both exercised.
func FuzzIntersectKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4}, uint8(2))
	f.Add([]byte{0, 0, 9, 9, 200}, []byte{9}, uint8(1))
	f.Add([]byte{}, []byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0))
	f.Add([]byte{255, 254, 253, 1, 1, 2}, []byte{253, 255, 7, 7}, uint8(3))
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, methodByte uint8) {
		a := setFromBytes(rawA)
		b := setFromBytes(rawB)
		m := Method(methodByte % 4)

		oracle := oracleCount(a, b)
		wantCount, wantOps := Count(m, a, b)
		if wantCount != oracle {
			t.Fatalf("reference Count(%v) = %d, oracle %d", m, wantCount, oracle)
		}
		wantElems, wantElemOps := Elements(m, a, b, nil)

		s := GetScratch()
		defer PutScratch(s)
		var elems []graph.V
		// Three rounds walk the dispatch through its states: fresh (merge
		// or finger), stamp, stamped probe.
		for call := 0; call < 3; call++ {
			count, ops := s.Count(m, a, b)
			if count != wantCount || ops != wantOps {
				t.Fatalf("call %d method %v: Scratch.Count = (%d,%d), want (%d,%d)",
					call, m, count, ops, wantCount, wantOps)
			}
			var elemOps int
			elems, elemOps = s.Elements(m, a, b, elems[:0])
			if elemOps != wantElemOps || !equalV(elems, wantElems) {
				t.Fatalf("call %d method %v: Scratch.Elements = %v/%d, want %v/%d",
					call, m, elems, elemOps, wantElems, wantElemOps)
			}
		}
	})
}

// setFromBytes builds a strictly increasing vertex list from fuzz bytes:
// consecutive byte pairs become 16-bit deltas, accumulated so the result
// is sorted and duplicate-free by construction while still reaching
// arbitrary shapes (dense runs, huge gaps, empty lists). Accumulation
// stops before the uint32 id space could wrap, which would break the
// strictly-increasing precondition.
func setFromBytes(raw []byte) []graph.V {
	out := make([]graph.V, 0, len(raw)/2)
	cur := uint64(0)
	for i := 0; i+1 < len(raw); i += 2 {
		delta := uint64(raw[i])<<8 | uint64(raw[i+1])
		cur += delta + 1
		if cur > 1<<32 {
			break
		}
		out = append(out, graph.V(cur-1))
	}
	return out
}
