package intersect

import "repro/internal/graph"

// The cost model of the decoupled kernel layer (DESIGN.md §5).
//
// The simulation charges every intersection with the exact number of loop
// iterations the paper's Algorithm 1 (binary search) or Algorithm 2 (SSI)
// would execute — that count feeds rma.Rank.Compute and therefore SimTime,
// which the golden tests pin bit for bit. The host kernels are free to
// count |a ∩ b| any way they like as long as the charge they report is
// that reference count. This file derives the Algorithm 2 charge
// analytically, so the bitmap probe kernel (which never walks the lists in
// merge order) can still charge the exact SSI ops.
//
// Algorithm 2's traversal advances one cursor per iteration, or both on a
// match, and stops when either list is exhausted, so
//
//	ops = iEnd + jEnd − count
//
// where (iEnd, jEnd) are the cursors at exit. Which list exhausts first is
// decided by the larger last element, and the surviving cursor stops at
// the number of elements ≤ the exhausted list's maximum (strictly
// increasing inputs make that an upper bound):
//
//	a[m−1] ≤ b[n−1]:  iEnd = m,  jEnd = |{y ∈ b : y ≤ a[m−1]}|
//	a[m−1] > b[n−1]:  jEnd = n,  iEnd = |{x ∈ a : x ≤ b[n−1]}|
//
// (when the maxima are equal both cursors run out: the first case yields
// jEnd = n). ssiOps computes this with one O(log) search instead of the
// O(m+n) replay; equiv and fuzz tests hold it bit-identical to the
// reference loop on randomized inputs.

// ssiOps returns the exact Algorithm 2 iteration count for a ∩ b, given
// count = |a ∩ b|. It is symmetric in its list arguments, like the
// reference loop's charge. Inputs must be strictly increasing.
func ssiOps(a, b []graph.V, count int) int {
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		return 0
	}
	if a[m-1] <= b[n-1] {
		return m + upperBound(b, a[m-1]) - count
	}
	return upperBound(a, b[n-1]) + n - count
}
