// Package intersect implements the sorted-adjacency intersection kernels of
// §II-C — binary search (Algorithm 1) and sorted set intersection
// (Algorithm 2) — plus the hybrid decision rule of Eq. (3) and the
// OpenMP-style parallel variants of §III-C. The intersection size
// |adj(v_i) ∩ adj(v_j)| is the number of triangles closed by edge e_ij, the
// primitive on which both TC and LCC are built.
//
// The package is split into two planes (DESIGN.md §5). The reference
// kernels in this file and elements.go define the *modeled* compute
// charge: their loop-iteration counts are what the simulation bills to
// SimTime, pinned bit-for-bit by the golden tests. The *host* execution
// plane — Scratch with its branch-free merge, stamp-set bitmap and
// finger-stack binary search (scratch.go, kernels.go, cost.go) — computes
// the same counts and the same charges much faster, and is what every
// engine actually runs. Differential and fuzz tests hold the two planes
// bit-identical.
package intersect

import (
	"math/bits"
	"sync"

	"repro/internal/graph"
)

// Method identifies an intersection algorithm.
type Method uint8

const (
	// MethodSSI is sorted set intersection: a linear merge of both lists,
	// O(|A|+|B|).
	MethodSSI Method = iota
	// MethodBinary is binary search: each element of the shorter list is
	// looked up in the longer one, O(|A|·log|B|).
	MethodBinary
	// MethodHybrid picks between the two per pair using Eq. (3).
	MethodHybrid
	// MethodHash is the bin-based hash intersection of Pandey et al.
	// (H-INDEX, HPEC'19; surveyed in §V-A): the longer list is
	// distributed over power-of-two bins holding a few elements each and
	// the shorter list probes them. See hash.go.
	MethodHash
)

func (m Method) String() string {
	switch m {
	case MethodSSI:
		return "ssi"
	case MethodBinary:
		return "binary"
	case MethodHybrid:
		return "hybrid"
	case MethodHash:
		return "hash"
	default:
		return "unknown"
	}
}

// SSI returns |a ∩ b| by simultaneous traversal (Algorithm 2), along with
// the number of loop iterations executed (the modeled-compute charge).
func SSI(a, b []graph.V) (count, ops int) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ops++
		switch {
		case a[i] == b[j]:
			count++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return count, ops
}

// debugChecks arms the orientation assertions of the Algorithm 1 kernels.
// Binary does not swap its arguments (callers choose the orientation), so
// a caller that passes the longer list as keys silently degrades
// O(|A|·log|B|) to O(|B|·log|A|) — and, worse, changes the modeled ops
// charge. Tests enable the checks and drive every engine through them to
// prove mis-orientation is impossible from engine code. Toggling is not
// synchronized: call SetDebugChecks only while no engine is running.
var debugChecks bool

// SetDebugChecks enables or disables the kernel debug assertions
// (orientation today). Intended for tests.
func SetDebugChecks(on bool) { debugChecks = on }

// assertOriented panics when the Algorithm 1 kernels are called with the
// keys list longer than the tree list and debug checks are armed.
func assertOriented(keys, tree []graph.V) {
	if debugChecks && len(keys) > len(tree) {
		panic("intersect: binary-search kernel mis-oriented: keys longer than tree (callers must pass the shorter list as keys)")
	}
}

// Binary returns |keys ∩ tree| by looking each key up in tree with binary
// search (Algorithm 1), along with the number of probe iterations. For the
// complexity bound to hold, keys should be the shorter list; Binary does
// not swap on its own — callers (and the paper) choose the orientation.
func Binary(keys, tree []graph.V) (count, ops int) {
	assertOriented(keys, tree)
	for _, x := range keys {
		lo, hi := 0, len(tree)
		for lo < hi {
			ops++
			mid := int(uint(lo+hi) >> 1)
			switch {
			case tree[mid] < x:
				lo = mid + 1
			case tree[mid] > x:
				hi = mid
			default:
				count++
				lo = hi
			}
		}
	}
	return count, ops
}

// PreferSSI evaluates the decision rule of Eq. (3) for |a| ≤ |b|:
// SSI is theoretically faster when |B|/|A| ≤ log2(|B|) − 1.
func PreferSSI(lenA, lenB int) bool {
	if lenA == 0 || lenB == 0 {
		return true // degenerate; both methods are O(1), pick the merge
	}
	if lenA > lenB {
		lenA, lenB = lenB, lenA
	}
	log2B := bits.Len(uint(lenB)) - 1
	return lenB <= lenA*(log2B-1)
}

// Count returns |a ∩ b| with the given method, orienting the lists so the
// shorter one is the key/merge-limited side, and reports the ops executed.
func Count(method Method, a, b []graph.V) (count, ops int) {
	if len(a) > len(b) {
		a, b = b, a
	}
	switch method {
	case MethodSSI:
		return SSI(a, b)
	case MethodBinary:
		return Binary(a, b)
	case MethodHash:
		return Hash(a, b)
	default:
		if PreferSSI(len(a), len(b)) {
			return SSI(a, b)
		}
		return Binary(a, b)
	}
}

// UpperSlice returns the suffix of sorted list b containing only elements
// strictly greater than floor. The edge-centric method uses it to count
// each undirected triangle once: for edge e_ij only common neighbours
// v_k with k > j are counted (§II-C).
func UpperSlice(b []graph.V, floor graph.V) []graph.V {
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] <= floor {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return b[lo:]
}

// --- parallel variants (§III-C) ------------------------------------------

// ParallelConfig controls the OpenMP-style parallel intersection: work is
// chunked over Threads goroutines, but only when the work exceeds Cutoff
// (too-small parallel regions cost more to enter than they save; §III-C
// determines a cut-off value below which the intersection is sequential).
type ParallelConfig struct {
	Threads int
	// Cutoff is the minimum length of the split list for going parallel.
	Cutoff int
}

// DefaultParallel mirrors the paper's shared-memory setup.
func DefaultParallel(threads int) ParallelConfig {
	return ParallelConfig{Threads: threads, Cutoff: 512}
}

// ParallelCount computes |a ∩ b| with real goroutines. For binary search
// the shorter (keys) array is split into equal chunks; for SSI the longer
// array is split and every thread intersects its chunk with the shorter
// list (§III-C). Falls back to sequential below the cutoff.
func ParallelCount(method Method, a, b []graph.V, cfg ParallelConfig) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	useSSI := method == MethodSSI || (method == MethodHybrid && PreferSSI(len(a), len(b)))
	if cfg.Threads <= 1 {
		c, _ := Count(method, a, b)
		return c
	}
	if method == MethodHash {
		// The index over the longer list is built once and shared
		// read-only; the probe (keys) array is chunked like binary
		// search's.
		if len(a) < cfg.Cutoff {
			c, _ := Hash(a, b)
			return c
		}
		ix, _ := BuildHashIndex(b)
		return parallelChunks(len(a), cfg.Threads, func(lo, hi int) int {
			c, _ := ix.CountKeys(a[lo:hi])
			return c
		})
	}
	if useSSI {
		if len(b) < cfg.Cutoff {
			c, _ := SSI(a, b)
			return c
		}
		return parallelChunks(len(b), cfg.Threads, func(lo, hi int) int {
			// Intersect the chunk of the longer list with the full
			// shorter list; chunks partition b, so counts add up.
			c, _ := SSI(a, b[lo:hi])
			return c
		})
	}
	if len(a) < cfg.Cutoff {
		c, _ := Binary(a, b)
		return c
	}
	return parallelChunks(len(a), cfg.Threads, func(lo, hi int) int {
		c, _ := Binary(a[lo:hi], b)
		return c
	})
}

// parallelChunks splits [0,n) into `threads` chunks, runs f on each in its
// own goroutine, and sums the results.
func parallelChunks(n, threads int, f func(lo, hi int) int) int {
	if threads > n {
		threads = n
	}
	results := make([]int, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		lo := t * n / threads
		hi := (t + 1) * n / threads
		wg.Add(1)
		go func(t, lo, hi int) {
			defer wg.Done()
			results[t] = f(lo, hi)
		}(t, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, c := range results {
		total += c
	}
	return total
}

// --- modeled-time parallel executor (Fig. 6 substitute) ------------------

// ThreadModel models the shared-memory execution of §III-C on a machine
// with a given per-op cost and per-edge parallel-region entry overhead.
// The paper profiles its implementation and finds that entering/leaving
// the OpenMP region *per edge* is the bottleneck that limits scaling to
// 2.0–2.7× on 16 threads; this model reproduces that mechanism so Fig. 6
// can be regenerated on the single-core host this reproduction runs on
// (see DESIGN.md §1).
type ThreadModel struct {
	OpNS float64 // cost of one intersection iteration, ns
	// RegionNS is the cost of entering+leaving a parallel region once
	// (OpenMP fork/join bookkeeping; lower with OMP_WAIT_POLICY=active).
	RegionNS float64
	Cutoff   int // sequential below this size, as in ParallelConfig
}

// DefaultThreadModel calibrates against the paper's observations: ~1 ns per
// merge step and a region-entry cost of order 100 ns with
// OMP_WAIT_POLICY=active (§III-C; the paper measured 2-4% improvement from
// keeping threads spinning).
func DefaultThreadModel() ThreadModel {
	return ThreadModel{OpNS: 1.0, RegionNS: 150, Cutoff: 128}
}

// EdgeTime returns the modeled time (ns) to intersect one pair of lists of
// the given lengths on `threads` threads, assuming the hybrid method.
func (tm ThreadModel) EdgeTime(lenA, lenB, threads int) float64 {
	if lenA > lenB {
		lenA, lenB = lenB, lenA
	}
	var seqOps float64
	var splitLen int
	if PreferSSI(lenA, lenB) {
		seqOps = float64(lenA + lenB)
		splitLen = lenB
	} else {
		log2B := float64(bits.Len(uint(lenB)))
		seqOps = float64(lenA) * log2B
		splitLen = lenA
	}
	if threads <= 1 || splitLen < tm.Cutoff {
		return seqOps * tm.OpNS
	}
	// Chunked execution: the slowest thread carries ceil(work/threads);
	// for SSI each thread also rescans the shorter list, adding lenA.
	perThread := seqOps / float64(threads)
	if PreferSSI(lenA, lenB) {
		perThread += float64(lenA)
	}
	return tm.RegionNS + perThread*tm.OpNS
}
