package intersect

import (
	"sync"

	"repro/internal/graph"
)

// Scratch is the per-rank reusable state of the cost-decoupled kernel
// layer: a uint64 stamp-set bitmap for the amortized pivot kernel and the
// finger stack of the shared-path binary search. Engines acquire one per
// simulated rank (GetScratch/PutScratch) and route every intersection
// through Count/Elements; after warm-up the kernels allocate nothing.
//
// Count and Elements return exactly the (count, ops) pair of the
// reference Count/Elements in intersect.go: the count is computed by the
// fast host kernels, the ops charge by the cost model (cost.go) or by a
// kernel whose iteration structure provably matches the reference. The
// golden SimTime pins depend on that equivalence; equiv_test.go and
// FuzzIntersectKernels enforce it.
//
// A Scratch is single-goroutine state, like the rank it belongs to.
// Inputs must be strictly increasing (adjacency lists are sorted sets).
// Repeat pivots are recognized by slice identity (address + length), so a
// caller that overwrites a previously passed buffer in place — the
// compressed-locals engines decode into reused buffers — must Unstamp
// before the overwrite, or the memo may serve the old list's stamp.
type Scratch struct {
	// words is the stamp-set bitmap, one bit per vertex id. stamped is a
	// scratch-owned copy of the stamped ids, so the stamp can be cleared
	// in O(|stamped|) even if the caller's list has since been overwritten
	// (decode-buffer reuse does exactly that); stampPtr/stampLen record the
	// caller list's identity so repeat pivots are recognized without a
	// content compare.
	words    []uint64
	stamped  []graph.V
	stampPtr *graph.V
	stampLen int

	stack []fingerFrame
}

// stampMinLen is the smallest pivot worth stamping: below it the
// branch-free merge beats the stamp+probe round trip even with reuse.
const stampMinLen = 32

// NewScratch returns a ready-to-use Scratch. Most callers should prefer
// GetScratch/PutScratch, which recycle instances across runs.
func NewScratch() *Scratch {
	return &Scratch{stack: make([]fingerFrame, 1, fingerStackCap)}
}

// EnsureUniverse pre-sizes the bitmap for vertex ids in [0, n), so the
// steady state performs no growth allocations. Stamping grows the bitmap
// on demand regardless; this is an optimization, not a requirement.
func (s *Scratch) EnsureUniverse(n int) {
	need := (n + 63) / 64
	if need > len(s.words) {
		s.grow(need)
	}
}

// grow replaces the bitmap with a larger one. Live stamped bits are
// re-derived from the stamped list rather than copied: the old array may
// be mostly empty.
func (s *Scratch) grow(need int) {
	if c := 2 * len(s.words); need < c {
		need = c
	}
	s.words = make([]uint64, need)
	for _, v := range s.stamped {
		s.words[v>>6] |= 1 << (v & 63)
	}
}

// Reset clears the stamp set, dropping every reference into caller data
// while keeping the allocated capacity.
func (s *Scratch) Reset() {
	s.Unstamp()
}

// sameList reports whether x is the identical slice (backing position and
// length) as the recorded (ptr, n) pair. CSR adjacency lists are disjoint
// subslices of one arcs array, so the pair identifies a list uniquely.
func sameList(x []graph.V, ptr *graph.V, n int) bool {
	return n > 0 && len(x) == n && &x[0] == ptr
}

// Stamp publishes list into the bitmap (clearing any previous stamp).
// The grid engine uses it directly as its sparse accumulator; Count
// invokes it through the reuse heuristic. The ids are copied into
// scratch-owned storage: a caller that later overwrites the list (reused
// decode buffers do) can stale the identity memo at worst, never the
// bitmap — Unstamp clears exactly the bits that were set.
func (s *Scratch) Stamp(list []graph.V) {
	s.Unstamp()
	if len(list) == 0 {
		return
	}
	if need := int(list[len(list)-1]>>6) + 1; need > len(s.words) {
		s.grow(need)
	}
	for _, v := range list {
		s.words[v>>6] |= 1 << (v & 63)
	}
	s.stamped = append(s.stamped[:0], list...)
	s.stampPtr, s.stampLen = &list[0], len(list)
}

// Unstamp clears the current stamp in O(|stamped|).
func (s *Scratch) Unstamp() {
	for _, v := range s.stamped {
		s.words[v>>6] &^= 1 << (v & 63)
	}
	s.stamped = s.stamped[:0]
	s.stampPtr, s.stampLen = nil, 0
}

// Has reports whether v is in the stamped set.
func (s *Scratch) Has(v graph.V) bool {
	w := int(v >> 6)
	return w < len(s.words) && s.words[w]>>(v&63)&1 != 0
}

// probeCount counts the elements of b present in the stamped set with one
// bit test each. b is ascending, so everything at or past the bitmap's
// extent is absent and the scan can stop.
func (s *Scratch) probeCount(b []graph.V) int {
	words := s.words
	// 64-bit limit: len(words)*64 can reach 2³² exactly when the stamped
	// ids touch the top of the uint32 space, which would wrap graph.V.
	limit := uint64(len(words)) * 64
	count := 0
	// 4-way unroll: b is ascending, so one limit test on the last element
	// covers the quad, and the four bit probes are independent loads the
	// core can overlap.
	i := 0
	for ; i+4 <= len(b) && uint64(b[i+3]) < limit; i += 4 {
		v0, v1, v2, v3 := b[i], b[i+1], b[i+2], b[i+3]
		count += int(words[v0>>6]>>(v0&63)&1) +
			int(words[v1>>6]>>(v1&63)&1) +
			int(words[v2>>6]>>(v2&63)&1) +
			int(words[v3>>6]>>(v3&63)&1)
	}
	for ; i < len(b); i++ {
		v := b[i]
		if uint64(v) >= limit {
			break
		}
		count += int(words[v>>6] >> (v & 63) & 1)
	}
	return count
}

// probeElements appends the elements of b present in the stamped set to
// dst (ascending, like every Elements kernel).
func (s *Scratch) probeElements(b []graph.V, dst []graph.V) []graph.V {
	words := s.words
	limit := uint64(len(words)) * 64 // see probeCount
	for _, v := range b {
		if uint64(v) >= limit {
			break
		}
		if words[v>>6]>>(v&63)&1 != 0 {
			dst = append(dst, v)
		}
	}
	return dst
}

// hostSSI computes the Algorithm 2-charged intersection of (a, b) where a
// is the caller's pivot side. Host dispatch (the Eq. (3) refinement that
// exists only on the host): a stamped pivot is probed with one bit test
// per element of the other list; a pivot of useful size is stamped first
// (the cost is linear like the merge's, but every op is independent —
// no data-dependent branches, no loop-carried load chain — and the stamp
// amortizes across the pivot's whole adjacency walk); small pairs take
// the branch-free merge, whose exit positions carry the charge.
func (s *Scratch) hostSSI(a, b []graph.V) (count, ops int) {
	switch {
	case sameList(a, s.stampPtr, s.stampLen):
		count = s.probeCount(b)
	case sameList(b, s.stampPtr, s.stampLen):
		count = s.probeCount(a)
	case len(a) >= stampMinLen:
		s.Stamp(a)
		count = s.probeCount(b)
	default:
		var iEnd, jEnd int
		count, iEnd, jEnd = MergeCount(a, b)
		return count, iEnd + jEnd - count
	}
	return count, ssiOps(a, b, count)
}

// Count returns (|a ∩ b|, modeled ops), bit-identical to the reference
// Count for every method, with the count produced by the fast host
// kernels. The first argument should be the reused side (the engines'
// pivot adj(v_i)) so the stamp-set amortization can engage; correctness
// does not depend on it.
func (s *Scratch) Count(method Method, a, b []graph.V) (count, ops int) {
	sa, sb := a, b
	if len(sa) > len(sb) {
		sa, sb = sb, sa
	}
	switch method {
	case MethodSSI:
		return s.hostSSI(a, b)
	case MethodBinary:
		count, ops, _ = fingerBinary(s.stack, sa, sb, false, nil)
		return count, ops
	case MethodHash:
		return Hash(sa, sb)
	default:
		if PreferSSI(len(sa), len(sb)) {
			return s.hostSSI(a, b)
		}
		count, ops, _ = fingerBinary(s.stack, sa, sb, false, nil)
		return count, ops
	}
}

// Elements appends a ∩ b to dst (ascending) and returns the extended
// slice plus the modeled ops — bit-identical to the reference Elements.
func (s *Scratch) Elements(method Method, a, b []graph.V, dst []graph.V) ([]graph.V, int) {
	sa, sb := a, b
	if len(sa) > len(sb) {
		sa, sb = sb, sa
	}
	ssiCharged := false
	switch method {
	case MethodSSI:
		ssiCharged = true
	case MethodBinary:
	case MethodHash:
		return HashElements(sa, sb, dst)
	default:
		ssiCharged = PreferSSI(len(sa), len(sb))
	}
	if !ssiCharged {
		_, ops, out := fingerBinary(s.stack, sa, sb, true, dst)
		return out, ops
	}
	before := len(dst)
	switch {
	case sameList(a, s.stampPtr, s.stampLen):
		dst = s.probeElements(b, dst)
	case sameList(b, s.stampPtr, s.stampLen):
		dst = s.probeElements(a, dst)
	case len(a) >= stampMinLen:
		s.Stamp(a)
		dst = s.probeElements(b, dst)
	default:
		var iEnd, jEnd int
		dst, iEnd, jEnd = mergeElements(sa, sb, dst)
		return dst, iEnd + jEnd - (len(dst) - before)
	}
	return dst, ssiOps(a, b, len(dst)-before)
}

// --- pool ------------------------------------------------------------------

// The scratch pool is an explicit free list (not a sync.Pool): instances
// survive garbage collections, so steady-state engine runs and the
// benchmark trajectory see zero pool-miss allocations.
var scratchPool struct {
	mu   sync.Mutex
	free []*Scratch
}

// GetScratch returns a reset Scratch from the pool (or a fresh one).
func GetScratch() *Scratch {
	scratchPool.mu.Lock()
	n := len(scratchPool.free)
	if n == 0 {
		scratchPool.mu.Unlock()
		return NewScratch()
	}
	s := scratchPool.free[n-1]
	scratchPool.free[n-1] = nil
	scratchPool.free = scratchPool.free[:n-1]
	scratchPool.mu.Unlock()
	return s
}

// PutScratch resets s (dropping references into caller data) and returns
// it to the pool.
func PutScratch(s *Scratch) {
	if s == nil {
		return
	}
	s.Reset()
	scratchPool.mu.Lock()
	scratchPool.free = append(scratchPool.free, s)
	scratchPool.mu.Unlock()
}
