package intersect

import (
	"testing"

	"repro/internal/graph"
)

// Allocation guards for the scratch-based kernels, in the style of
// clampi/zeroalloc_test.go: after warm-up (bitmap sized, stack in place)
// the steady-state paths — branch-free merge, stamp + probe, galloping
// finger replay, and the Elements variants into a pre-grown destination —
// must not touch the heap at all.

func stride(n, step int) []graph.V {
	out := make([]graph.V, n)
	for i := range out {
		out[i] = graph.V(i * step)
	}
	return out
}

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(100, f); avg != 0 {
		t.Errorf("%s: %.1f allocs per call, want 0", name, avg)
	}
}

func TestScratchZeroAlloc(t *testing.T) {
	s := NewScratch()
	s.EnsureUniverse(1 << 15)

	small := stride(16, 3)   // below stampMinLen: merge path
	pivot := stride(1024, 3) // stamped pivot
	other := stride(1024, 5) // SSI-charged partner
	keys := stride(64, 37)   // Binary-charged pair
	tree := stride(4096, 3)  //
	dst := make([]graph.V, 0, 2048)

	s.Count(MethodSSI, pivot, other) // warm: stamps the pivot
	assertZeroAllocs(t, "merge", func() { s.Count(MethodSSI, small, other) })
	assertZeroAllocs(t, "stamped probe", func() { s.Count(MethodSSI, pivot, other) })
	alt := stride(512, 7)
	assertZeroAllocs(t, "restamp", func() {
		s.Count(MethodSSI, pivot, other) // stamps pivot (unstamping alt)
		s.Count(MethodSSI, alt, small)   // stamps alt (unstamping pivot)
	})
	assertZeroAllocs(t, "finger binary", func() { s.Count(MethodBinary, keys, tree) })
	assertZeroAllocs(t, "hybrid dispatch", func() { s.Count(MethodHybrid, keys, tree) })
	assertZeroAllocs(t, "elements merge", func() { dst, _ = s.Elements(MethodSSI, small, other, dst[:0]) })
	assertZeroAllocs(t, "elements stamped", func() { dst, _ = s.Elements(MethodSSI, pivot, other, dst[:0]) })
	assertZeroAllocs(t, "elements finger", func() { dst, _ = s.Elements(MethodBinary, keys, tree, dst[:0]) })
	assertZeroAllocs(t, "grid accumulator", func() {
		s.Stamp(pivot)
		n := 0
		for _, v := range other {
			if s.Has(v) {
				n++
			}
		}
		s.Unstamp()
		_ = n
	})
}

// TestScratchPoolRecycles pins the pool contract the engines rely on: a
// released scratch comes back with its capacity (no regrowth allocations)
// and without stale stamp state.
func TestScratchPoolRecycles(t *testing.T) {
	s := GetScratch()
	s.EnsureUniverse(1 << 12)
	pivot := stride(256, 3)
	s.Count(MethodSSI, pivot, stride(256, 5)) // leaves pivot stamped
	PutScratch(s)

	s2 := GetScratch()
	defer PutScratch(s2)
	if len(s2.stamped) != 0 {
		t.Fatal("pooled scratch still stamped after PutScratch")
	}
	for i, w := range s2.words {
		if w != 0 {
			t.Fatalf("pooled scratch bitmap word %d nonzero: %#x", i, w)
		}
	}
	assertZeroAllocs(t, "pool round trip", func() {
		x := GetScratch()
		PutScratch(x)
	})
}
