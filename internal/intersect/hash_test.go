package intersect

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// naiveIntersect is the reference: O(|A|·|B|) membership scan.
func naiveIntersect(a, b []graph.V) int {
	count := 0
	for _, x := range a {
		for _, y := range b {
			if x == y {
				count++
				break
			}
		}
	}
	return count
}

func sortedSet(xs []uint32) []graph.V {
	seen := make(map[graph.V]bool, len(xs))
	out := make([]graph.V, 0, len(xs))
	for _, x := range xs {
		v := graph.V(x % 10000)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestHashMatchesNaive(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		a, b := sortedSet(xs), sortedSet(ys)
		want := naiveIntersect(a, b)
		got, _ := Hash(a, b)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHashEmpty(t *testing.T) {
	if c, ops := Hash(nil, nil); c != 0 || ops != 0 {
		t.Fatalf("Hash(nil,nil) = %d,%d, want 0,0", c, ops)
	}
	b := []graph.V{1, 2, 3}
	if c, _ := Hash(nil, b); c != 0 {
		t.Fatalf("Hash(nil,b) = %d, want 0", c)
	}
	if c, _ := Hash(b, nil); c != 0 {
		t.Fatalf("Hash(b,nil) = %d, want 0", c)
	}
}

func TestHashIdentical(t *testing.T) {
	a := make([]graph.V, 1000)
	for i := range a {
		a[i] = graph.V(3 * i)
	}
	c, _ := Hash(a, a)
	if c != len(a) {
		t.Fatalf("Hash(a,a) = %d, want %d", c, len(a))
	}
}

func TestHashDisjoint(t *testing.T) {
	a := []graph.V{0, 2, 4, 6, 8}
	b := []graph.V{1, 3, 5, 7, 9}
	if c, _ := Hash(a, b); c != 0 {
		t.Fatalf("disjoint Hash = %d, want 0", c)
	}
}

func TestHashIndexReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := make([]graph.V, 0, 500)
	seen := map[graph.V]bool{}
	for len(b) < 500 {
		v := graph.V(rng.Intn(5000))
		if !seen[v] {
			seen[v] = true
			b = append(b, v)
		}
	}
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	ix, buildOps := BuildHashIndex(b)
	if buildOps != 2*len(b) {
		t.Fatalf("build ops = %d, want %d", buildOps, 2*len(b))
	}
	if ix.Len() != len(b) {
		t.Fatalf("index Len = %d, want %d", ix.Len(), len(b))
	}
	// Every indexed element must be found; a value past the id range
	// must not.
	for _, x := range b {
		if ok, _ := ix.Probe(x); !ok {
			t.Fatalf("Probe(%d) = false for indexed element", x)
		}
	}
	if ok, _ := ix.Probe(99999); ok {
		t.Fatal("Probe(99999) = true for absent element")
	}
}

func TestHashProbeOpsBounded(t *testing.T) {
	// With power-of-two bins at load factor targetLoad and a mixing
	// hash, bins stay short; assert the average probe cost is within a
	// generous constant of the load factor so a regression to O(n)
	// probes is caught.
	b := make([]graph.V, 4096)
	for i := range b {
		b[i] = graph.V(i * 7)
	}
	ix, _ := BuildHashIndex(b)
	totalOps := 0
	for _, x := range b {
		_, ops := ix.Probe(x)
		totalOps += ops
	}
	avg := float64(totalOps) / float64(len(b))
	if avg > 4*targetLoad {
		t.Fatalf("average probe ops %.1f exceeds %d", avg, 4*targetLoad)
	}
}

func TestMethodHashViaCount(t *testing.T) {
	a := []graph.V{1, 5, 9, 13}
	b := []graph.V{0, 1, 2, 5, 6, 13, 20}
	c, ops := Count(MethodHash, a, b)
	if c != 3 {
		t.Fatalf("Count(MethodHash) = %d, want 3", c)
	}
	if ops <= 0 {
		t.Fatalf("Count(MethodHash) ops = %d, want > 0", ops)
	}
	if MethodHash.String() != "hash" {
		t.Fatalf("MethodHash.String() = %q", MethodHash.String())
	}
}

func TestParallelCountHash(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(n, mod int) []graph.V {
		seen := map[graph.V]bool{}
		out := []graph.V{}
		for len(out) < n {
			v := graph.V(rng.Intn(mod))
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	a := mk(2000, 20000)
	b := mk(5000, 20000)
	want, _ := SSI(a, b)
	for _, threads := range []int{1, 2, 4, 8} {
		got := ParallelCount(MethodHash, a, b, ParallelConfig{Threads: threads, Cutoff: 64})
		if got != want {
			t.Fatalf("ParallelCount(hash, %d threads) = %d, want %d", threads, got, want)
		}
	}
	// Below cutoff falls back to sequential one-shot hash.
	small := mk(8, 100)
	wantSmall, _ := SSI(small, b)
	got := ParallelCount(MethodHash, small, b, ParallelConfig{Threads: 4, Cutoff: 64})
	if got != wantSmall {
		t.Fatalf("ParallelCount(hash, small) = %d, want %d", got, wantSmall)
	}
}

func TestBinsFor(t *testing.T) {
	cases := []struct{ n, min, max int }{
		{0, 1, 1},
		{1, 1, 1},
		{targetLoad, 1, 1},
		{targetLoad + 1, 2, 2},
		{1024, 128, 512},
	}
	for _, c := range cases {
		b := binsFor(c.n)
		if b < c.min || b > c.max {
			t.Errorf("binsFor(%d) = %d, want in [%d,%d]", c.n, b, c.min, c.max)
		}
		if b&(b-1) != 0 {
			t.Errorf("binsFor(%d) = %d is not a power of two", c.n, b)
		}
	}
}
