package intersect

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// Differential tests of the cost-decoupled layer: the host kernels and the
// analytic cost model must reproduce the reference kernels' (count, ops)
// bit for bit on randomized inputs. These are the "replay" tests the
// model/host contract (DESIGN.md §5) rests on.

// randSet returns a strictly increasing list of n values drawn from
// [0, span).
func randSet(rng *rand.Rand, n, span int) []graph.V {
	if n > span {
		n = span
	}
	seen := make(map[graph.V]bool, n)
	out := make([]graph.V, 0, n)
	for len(out) < n {
		v := graph.V(rng.Intn(span))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sortV(out)
	return out
}

func sortV(s []graph.V) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// oracleCount is the map-based ground truth for |a ∩ b|.
func oracleCount(a, b []graph.V) int {
	in := make(map[graph.V]bool, len(a))
	for _, v := range a {
		in[v] = true
	}
	c := 0
	for _, v := range b {
		if in[v] {
			c++
		}
	}
	return c
}

// randPair draws a pair with a randomized size/skew/overlap profile.
func randPair(rng *rand.Rand) (a, b []graph.V) {
	na := rng.Intn(200)
	nb := rng.Intn(200)
	if rng.Intn(3) == 0 { // skewed: |A| ≪ |B|
		na = rng.Intn(20)
		nb = 200 + rng.Intn(2000)
	}
	span := 1 + rng.Intn(4000)
	return randSet(rng, na, span), randSet(rng, nb, span)
}

// TestSSIOpsAnalytic replays the reference Algorithm 2 loop against the
// analytic charge on randomized inputs.
func TestSSIOpsAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5000; trial++ {
		a, b := randPair(rng)
		count, ops := SSI(a, b)
		if got := ssiOps(a, b, count); got != ops {
			t.Fatalf("trial %d: ssiOps(|a|=%d,|b|=%d,count=%d) = %d, reference SSI ops = %d",
				trial, len(a), len(b), count, got, ops)
		}
		// The charge is symmetric, like the reference loop's.
		if got := ssiOps(b, a, count); got != ops {
			t.Fatalf("trial %d: ssiOps not symmetric: %d vs %d", trial, got, ops)
		}
	}
}

// TestMergeCountMatchesSSI pins the branch-free merge to the reference
// loop: same count, and exit positions that reproduce the exact charge.
func TestMergeCountMatchesSSI(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5000; trial++ {
		a, b := randPair(rng)
		wantCount, wantOps := SSI(a, b)
		count, iEnd, jEnd := MergeCount(a, b)
		if count != wantCount {
			t.Fatalf("trial %d: MergeCount = %d, want %d (oracle %d)", trial, count, wantCount, oracleCount(a, b))
		}
		if got := iEnd + jEnd - count; got != wantOps {
			t.Fatalf("trial %d: merge exit ops = %d, want %d", trial, got, wantOps)
		}
	}
}

// TestFingerBinaryMatchesReference replays the reference Algorithm 1 loop
// against the finger-stack descent: identical count and identical
// full-depth probe charge for every key.
func TestFingerBinaryMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5000; trial++ {
		a, b := randPair(rng)
		keys, tree := a, b
		if len(keys) > len(tree) {
			keys, tree = tree, keys
		}
		wantCount, wantOps := Binary(keys, tree)
		count, ops, _ := fingerBinary(make([]fingerFrame, 1, fingerStackCap), keys, tree, false, nil)
		if count != wantCount || ops != wantOps {
			t.Fatalf("trial %d: fingerBinary(|keys|=%d,|tree|=%d) = (%d,%d), want (%d,%d)",
				trial, len(keys), len(tree), count, ops, wantCount, wantOps)
		}
	}
}

// TestScratchCountMatchesReference drives Scratch.Count against the
// reference Count for every method, including the repeat-pivot calls that
// engage the stamp-set kernel (call 1 merges, call 2 stamps, call 3
// probes — each must charge identically).
func TestScratchCountMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewScratch()
	methods := []Method{MethodSSI, MethodBinary, MethodHybrid, MethodHash}
	for trial := 0; trial < 3000; trial++ {
		a, b := randPair(rng)
		m := methods[trial%len(methods)]
		wantCount, wantOps := Count(m, a, b)
		for call := 0; call < 3; call++ {
			count, ops := s.Count(m, a, b)
			if count != wantCount || ops != wantOps {
				t.Fatalf("trial %d call %d method %v (|a|=%d,|b|=%d): scratch = (%d,%d), want (%d,%d)",
					trial, call, m, len(a), len(b), count, ops, wantCount, wantOps)
			}
		}
		if c := oracleCount(a, b); wantCount != c {
			t.Fatalf("trial %d: reference count %d disagrees with oracle %d", trial, wantCount, c)
		}
	}
}

// TestScratchElementsMatchesReference is the listing-variant differential:
// same elements (ascending), same charge, across fresh and stamped calls.
func TestScratchElementsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewScratch()
	methods := []Method{MethodSSI, MethodBinary, MethodHybrid, MethodHash}
	var got []graph.V
	for trial := 0; trial < 3000; trial++ {
		a, b := randPair(rng)
		m := methods[trial%len(methods)]
		want, wantOps := Elements(m, a, b, nil)
		for call := 0; call < 3; call++ {
			var ops int
			got, ops = s.Elements(m, a, b, got[:0])
			if ops != wantOps || !equalV(got, want) {
				t.Fatalf("trial %d call %d method %v: scratch elements/ops = %v/%d, want %v/%d",
					trial, call, m, got, ops, want, wantOps)
			}
		}
	}
}

func equalV(a, b []graph.V) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestScratchStampedAcrossSizes exercises bitmap growth: stamping lists
// with increasing maxima must keep probes exact, and Unstamp must leave
// the bitmap empty for the next pivot.
func TestScratchStampedAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := NewScratch()
	for trial := 0; trial < 200; trial++ {
		span := 64 << uint(rng.Intn(10))
		a := randSet(rng, stampMinLen+rng.Intn(100), span)
		b := randSet(rng, rng.Intn(300), 2*span)
		wantCount, wantOps := Count(MethodSSI, a, b)
		// Two identical calls trigger the stamp; a third probes it.
		for call := 0; call < 3; call++ {
			count, ops := s.Count(MethodSSI, a, b)
			if count != wantCount || ops != wantOps {
				t.Fatalf("trial %d call %d: (%d,%d), want (%d,%d)", trial, call, count, ops, wantCount, wantOps)
			}
		}
		if trial%2 == 0 {
			s.Reset() // alternate: with and without carrying the stamp over
		}
	}
	s.Reset()
	for i, w := range s.words {
		if w != 0 {
			t.Fatalf("word %d nonzero after Reset: %#x", i, w)
		}
	}
}

// TestScratchTopOfIDSpace stamps ids at the very top of the uint32 space:
// the bitmap then spans exactly 2³² bits, and the probe limit must not
// wrap to zero (it is computed in 64 bits).
func TestScratchTopOfIDSpace(t *testing.T) {
	s := NewScratch()
	a := make([]graph.V, stampMinLen)
	for i := range a {
		a[i] = graph.V(1<<32 - 2*(stampMinLen-i)) // ..., 0xFFFFFFFC, 0xFFFFFFFE
	}
	b := []graph.V{0, a[0], a[1] + 1, 1<<32 - 2, 1<<32 - 1}
	wantCount, wantOps := Count(MethodSSI, a, b)
	if wantCount != oracleCount(a, b) {
		t.Fatalf("reference disagrees with oracle")
	}
	for call := 0; call < 3; call++ { // merge, stamp, stamped probe
		count, ops := s.Count(MethodSSI, a, b)
		if count != wantCount || ops != wantOps {
			t.Fatalf("call %d: (%d,%d), want (%d,%d)", call, count, ops, wantCount, wantOps)
		}
	}
}

// TestScratchGridAccumulator pins the Stamp/Has pair the 2D engine uses as
// its sparse accumulator.
func TestScratchGridAccumulator(t *testing.T) {
	s := NewScratch()
	s.EnsureUniverse(1 << 12)
	mask := []graph.V{3, 64, 65, 700, 4000}
	s.Stamp(mask)
	in := map[graph.V]bool{}
	for _, v := range mask {
		in[v] = true
	}
	for v := graph.V(0); v < 1<<12; v += 7 {
		if s.Has(v) != in[v] {
			t.Fatalf("Has(%d) = %v, want %v", v, s.Has(v), in[v])
		}
	}
	s.Unstamp()
	for _, v := range mask {
		if s.Has(v) {
			t.Fatalf("Has(%d) still true after Unstamp", v)
		}
	}
}

// TestBinaryOrientationAssert arms the debug checks and verifies the
// mis-oriented call panics while the correct orientation passes.
func TestBinaryOrientationAssert(t *testing.T) {
	SetDebugChecks(true)
	defer SetDebugChecks(false)
	keys := []graph.V{1, 2, 3}
	tree := []graph.V{1, 2, 3, 4, 5}
	Binary(keys, tree) // correct orientation: must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("Binary(longer, shorter) did not panic with debug checks armed")
		}
	}()
	Binary(tree, keys)
}
