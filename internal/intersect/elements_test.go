package intersect

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func sortedRandomList(rng *rand.Rand, n, span int) []graph.V {
	seen := make(map[graph.V]bool, n)
	for len(seen) < n {
		seen[graph.V(rng.IntN(span))] = true
	}
	out := make([]graph.V, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// refIntersection is the trivial map-based reference.
func refIntersection(a, b []graph.V) []graph.V {
	in := make(map[graph.V]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	var out []graph.V
	for _, x := range b {
		if in[x] {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestElementsAllMethodsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	methods := []Method{MethodSSI, MethodBinary, MethodHybrid, MethodHash}
	for trial := 0; trial < 200; trial++ {
		a := sortedRandomList(rng, rng.IntN(40), 120)
		b := sortedRandomList(rng, rng.IntN(40), 120)
		want := refIntersection(a, b)
		for _, m := range methods {
			got, _ := Elements(m, a, b, nil)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d method %s: Elements = %v, want %v (a=%v b=%v)",
					trial, m, got, want, a, b)
			}
		}
	}
}

// TestElementsLenEqualsCount: for every method, len(Elements) == Count, and
// SSI/Binary element variants charge the same ops as their counting twins.
func TestElementsLenEqualsCount(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 1))
	for trial := 0; trial < 100; trial++ {
		a := sortedRandomList(rng, rng.IntN(60), 200)
		b := sortedRandomList(rng, rng.IntN(60), 200)
		for _, m := range []Method{MethodSSI, MethodBinary, MethodHybrid, MethodHash} {
			cnt, cops := Count(m, a, b)
			els, eops := Elements(m, a, b, nil)
			if len(els) != cnt {
				t.Fatalf("method %s: len(Elements)=%d, Count=%d", m, len(els), cnt)
			}
			if m != MethodHash && cops != eops {
				// Hash rebuilds its index per call in both paths, so ops
				// match there too, but bin iteration order makes the probe
				// count identical anyway; assert strictly for all.
				t.Fatalf("method %s: Elements ops=%d, Count ops=%d", m, eops, cops)
			}
		}
	}
}

func TestElementsAppendsToDst(t *testing.T) {
	a := []graph.V{1, 2, 3}
	b := []graph.V{2, 3, 4}
	dst := []graph.V{99}
	got, _ := Elements(MethodSSI, a, b, dst)
	want := []graph.V{99, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Elements with prefilled dst = %v, want %v", got, want)
	}
}

func TestElementsEmptyInputs(t *testing.T) {
	for _, m := range []Method{MethodSSI, MethodBinary, MethodHybrid, MethodHash} {
		if got, ops := Elements(m, nil, nil, nil); len(got) != 0 || ops != 0 {
			t.Errorf("method %s: Elements(nil,nil) = %v ops=%d, want empty, 0", m, got, ops)
		}
		if got, _ := Elements(m, []graph.V{1, 2}, nil, nil); len(got) != 0 {
			t.Errorf("method %s: Elements(x, nil) = %v, want empty", m, got)
		}
	}
}

func TestElementsSelfIntersection(t *testing.T) {
	a := []graph.V{3, 7, 11, 200}
	for _, m := range []Method{MethodSSI, MethodBinary, MethodHybrid, MethodHash} {
		got, _ := Elements(m, a, a, nil)
		if !reflect.DeepEqual(got, a) {
			t.Errorf("method %s: self-intersection = %v, want %v", m, got, a)
		}
	}
}

// TestElementsQuickMethodEquivalence: all four methods return the same
// set for arbitrary sorted inputs (property-based).
func TestElementsQuickMethodEquivalence(t *testing.T) {
	f := func(seedA, seedB uint64, la, lb uint8) bool {
		rngA := rand.New(rand.NewPCG(seedA, 0))
		rngB := rand.New(rand.NewPCG(seedB, 1))
		a := sortedRandomList(rngA, int(la)%50, 150)
		b := sortedRandomList(rngB, int(lb)%50, 150)
		ssi, _ := Elements(MethodSSI, a, b, nil)
		bin, _ := Elements(MethodBinary, a, b, nil)
		hyb, _ := Elements(MethodHybrid, a, b, nil)
		hsh, _ := Elements(MethodHash, a, b, nil)
		eq := func(x, y []graph.V) bool {
			if len(x) != len(y) {
				return false
			}
			for i := range x {
				if x[i] != y[i] {
					return false
				}
			}
			return true
		}
		return eq(ssi, bin) && eq(ssi, hyb) && eq(ssi, hsh)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
