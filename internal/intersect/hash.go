package intersect

import (
	"math/bits"

	"repro/internal/graph"
)

// This file implements the hash-based intersection of Pandey et al.
// ("H-INDEX: Hash-Indexing for Parallel Triangle Counting on GPUs",
// HPEC'19), which the paper surveys in §V-A as the third family of
// intersection kernels next to SSI and binary search. Instead of hashing
// every element into its own slot, H-INDEX distributes the longer list
// over a small number of bins, each holding several elements; a probe
// scans one bin linearly. With b bins the expected probe cost is |B|/b,
// giving O(|B| + |A|·|B|/b) total — build plus probes — which beats binary
// search when the same index is reused across many probes or when |B|/b
// is below log2|B|.

// HashIndex is a bin-based hash index over one sorted adjacency list. It
// is reusable: in the edge-centric method the list adj(v_i) is intersected
// against every neighbour's list, so building the index once per pivot
// vertex amortizes the O(|B|) build across deg(v_i) probes.
type HashIndex struct {
	shift uint // 32 - log2(bins); the hash's high bits select the bin
	// bins is a flattened bucket array: bin i occupies
	// slots[starts[i]:starts[i+1]].
	starts []uint32
	slots  []graph.V
	n      int // number of indexed elements
}

// binsFor picks the bin count for a list of length n: the next power of
// two of n/targetLoad, at least 1. H-INDEX uses a fixed load factor so
// that bins stay short enough to scan linearly.
const targetLoad = 4

func binsFor(n int) int {
	if n <= targetLoad {
		return 1
	}
	b := 1 << uint(bits.Len(uint((n-1)/targetLoad)))
	return b
}

// BuildHashIndex constructs a bin index over list. The build makes two
// passes (counting sort into bins) and costs O(|list|) modeled operations,
// returned as ops.
func BuildHashIndex(list []graph.V) (*HashIndex, int) {
	b := binsFor(len(list))
	ix := &HashIndex{shift: uint(32 - bits.Len(uint(b-1))), n: len(list)}
	ix.starts = make([]uint32, b+1)
	for _, x := range list {
		ix.starts[ix.bin(x)+1]++
	}
	for i := 0; i < b; i++ {
		ix.starts[i+1] += ix.starts[i]
	}
	ix.slots = make([]graph.V, len(list))
	fill := make([]uint32, b)
	for _, x := range list {
		bn := ix.bin(x)
		ix.slots[ix.starts[bn]+fill[bn]] = x
		fill[bn]++
	}
	return ix, 2 * len(list)
}

// bin maps an element to its bin with a multiplicative (Fibonacci) hash,
// taking the high bits of the product: adjacency ids are often clustered,
// and the multiplicative mix spreads both consecutive and strided id
// patterns evenly over the bins.
func (ix *HashIndex) bin(x graph.V) uint32 {
	return (x * 2654435761) >> ix.shift
}

// Len returns the number of indexed elements.
func (ix *HashIndex) Len() int { return ix.n }

// Probe reports whether x is present, along with the number of slot
// comparisons performed.
func (ix *HashIndex) Probe(x graph.V) (found bool, ops int) {
	bn := ix.bin(x)
	for _, y := range ix.slots[ix.starts[bn]:ix.starts[bn+1]] {
		ops++
		if y == x {
			return true, ops
		}
	}
	if ops == 0 {
		ops = 1 // an empty bin still costs the lookup
	}
	return false, ops
}

// CountKeys returns |keys ∩ index| and the probe ops (build cost not
// included; the index may be amortized over many calls).
func (ix *HashIndex) CountKeys(keys []graph.V) (count, ops int) {
	for _, x := range keys {
		ok, o := ix.Probe(x)
		ops += o
		if ok {
			count++
		}
	}
	return count, ops
}

// Hash returns |a ∩ b| by building a bin index over the longer list and
// probing with the shorter one, along with the total modeled ops
// (build + probes). This is the one-shot form used by Count; the
// edge-centric engines prefer the reusable HashIndex.
func Hash(a, b []graph.V) (count, ops int) {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return 0, 0
	}
	ix, build := BuildHashIndex(b)
	c, probes := ix.CountKeys(a)
	return c, build + probes
}
