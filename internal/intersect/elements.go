package intersect

import "repro/internal/graph"

// This file adds element-listing variants of the §II-C intersection
// kernels. Counting is enough for the pull-based engine (Algorithm 3 needs
// only |adj(v_i) ∩ adj(v_j)|), but the push-based engine of the future-work
// dichotomy (§VI ii) must know *which* common neighbours close a triangle
// so it can scatter a contribution to each corner's owner. All variants
// return the intersection in ascending order and report the same ops charge
// as their counting counterparts.

// SSIElements appends a ∩ b to dst by simultaneous traversal (Algorithm 2)
// and returns the extended slice plus the loop iterations executed.
func SSIElements(a, b []graph.V, dst []graph.V) ([]graph.V, int) {
	i, j, ops := 0, 0, 0
	for i < len(a) && j < len(b) {
		ops++
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return dst, ops
}

// BinaryElements appends keys ∩ tree to dst by binary search (Algorithm 1)
// and returns the extended slice plus the probe iterations executed. As
// with Binary, keys should be the shorter list; because keys is sorted the
// appended elements are in ascending order.
func BinaryElements(keys, tree []graph.V, dst []graph.V) ([]graph.V, int) {
	assertOriented(keys, tree)
	ops := 0
	for _, x := range keys {
		lo, hi := 0, len(tree)
		for lo < hi {
			ops++
			mid := int(uint(lo+hi) >> 1)
			switch {
			case tree[mid] < x:
				lo = mid + 1
			case tree[mid] > x:
				hi = mid
			default:
				dst = append(dst, x)
				lo = hi
			}
		}
	}
	return dst, ops
}

// HashElements appends a ∩ b to dst by building a bin index over the longer
// list and probing it with the shorter one (§V-A), returning the extended
// slice plus the build+probe iterations.
func HashElements(a, b []graph.V, dst []graph.V) ([]graph.V, int) {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return dst, 0
	}
	ix, buildOps := BuildHashIndex(b)
	ops := buildOps
	for _, x := range a {
		found, o := ix.Probe(x)
		ops += o
		if found {
			dst = append(dst, x)
		}
	}
	return dst, ops
}

// Elements appends a ∩ b to dst using the given method, orienting the lists
// so the shorter one is the key/merge-limited side, and reports the ops
// executed. The result is ascending and identical for every method; only
// the ops charge differs.
func Elements(method Method, a, b []graph.V, dst []graph.V) ([]graph.V, int) {
	if len(a) > len(b) {
		a, b = b, a
	}
	switch method {
	case MethodSSI:
		return SSIElements(a, b, dst)
	case MethodBinary:
		return BinaryElements(a, b, dst)
	case MethodHash:
		return HashElements(a, b, dst)
	default:
		if PreferSSI(len(a), len(b)) {
			return SSIElements(a, b, dst)
		}
		return BinaryElements(a, b, dst)
	}
}
