package spmat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/lcc"
)

func randomGraph(rng *rand.Rand, kind graph.Kind, n, m int) *graph.Graph {
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := graph.V(rng.Intn(n))
		v := graph.V(rng.Intn(n))
		if u != v {
			edges = append(edges, graph.Edge{Src: u, Dst: v})
		}
	}
	g, err := graph.Build(kind, n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestTriangularSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, graph.Undirected, 40, 200)
	a := FromGraph(g)
	l, u := a.Lower(), a.Upper()
	if l.NNZ()+u.NNZ() != a.NNZ() {
		t.Fatalf("nnz(L)+nnz(U) = %d, want nnz(A) = %d", l.NNZ()+u.NNZ(), a.NNZ())
	}
	// A symmetric: nnz(L) == nnz(U).
	if l.NNZ() != u.NNZ() {
		t.Fatalf("nnz(L) = %d != nnz(U) = %d for symmetric A", l.NNZ(), u.NNZ())
	}
	for i := 0; i < a.N(); i++ {
		for _, j := range l.Row(graph.V(i)) {
			if j >= graph.V(i) {
				t.Fatalf("L has entry (%d,%d) on or above the diagonal", i, j)
			}
		}
		for _, j := range u.Row(graph.V(i)) {
			if j <= graph.V(i) {
				t.Fatalf("U has entry (%d,%d) on or below the diagonal", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, graph.Directed, 30, 150)
	a := FromGraph(g)
	tt := a.Transpose().Transpose()
	if tt.NNZ() != a.NNZ() || tt.N() != a.N() {
		t.Fatalf("transpose² changed shape: nnz %d→%d", a.NNZ(), tt.NNZ())
	}
	for i := 0; i < a.N(); i++ {
		ra, rt := a.Row(graph.V(i)), tt.Row(graph.V(i))
		if len(ra) != len(rt) {
			t.Fatalf("row %d length changed: %d → %d", i, len(ra), len(rt))
		}
		for k := range ra {
			if ra[k] != rt[k] {
				t.Fatalf("row %d entry %d changed: %d → %d", i, k, ra[k], rt[k])
			}
		}
	}
}

func TestTransposeSymmetric(t *testing.T) {
	// For an undirected graph A = Aᵀ.
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, graph.Undirected, 25, 100)
	a := FromGraph(g)
	at := a.Transpose()
	for i := 0; i < a.N(); i++ {
		ra, rt := a.Row(graph.V(i)), at.Row(graph.V(i))
		if len(ra) != len(rt) {
			t.Fatalf("row %d: |A| = %d, |Aᵀ| = %d", i, len(ra), len(rt))
		}
		for k := range ra {
			if ra[k] != rt[k] {
				t.Fatalf("row %d differs between A and Aᵀ", i)
			}
		}
	}
}

// denseMaskedMultiply is the O(n³) reference for MaskedMultiply.
func denseMaskedMultiply(a, b, mask *Matrix) map[[2]graph.V]int64 {
	n := a.N()
	dense := func(m *Matrix) [][]bool {
		d := make([][]bool, n)
		for i := range d {
			d[i] = make([]bool, n)
			for _, j := range m.Row(graph.V(i)) {
				d[i][j] = true
			}
		}
		return d
	}
	da, db, dm := dense(a), dense(b), dense(mask)
	out := map[[2]graph.V]int64{}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !dm[i][j] {
				continue
			}
			var s int64
			for k := 0; k < n; k++ {
				if da[i][k] && db[k][j] {
					s++
				}
			}
			if s != 0 {
				out[[2]graph.V{graph.V(i), graph.V(j)}] = s
			}
		}
	}
	return out
}

func TestMaskedMultiplyMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ga := randomGraph(rng, graph.Directed, 15, 60)
		gb := randomGraph(rng, graph.Directed, 15, 60)
		gm := randomGraph(rng, graph.Directed, 15, 80)
		a, b, m := FromGraph(ga), FromGraph(gb), FromGraph(gm)
		got, _, err := MaskedMultiply(a, b, m)
		if err != nil {
			return false
		}
		want := denseMaskedMultiply(a, b, m)
		if got.NNZ() != len(want) {
			return false
		}
		for i := 0; i < got.N(); i++ {
			cols, vals := got.Row(graph.V(i))
			for k, j := range cols {
				if want[[2]graph.V{graph.V(i), j}] != vals[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskedMultiplyDimensionMismatch(t *testing.T) {
	g1, _ := graph.Build(graph.Directed, 3, nil)
	g2, _ := graph.Build(graph.Directed, 4, nil)
	if _, _, err := MaskedMultiply(FromGraph(g1), FromGraph(g2), FromGraph(g1)); err == nil {
		t.Fatal("dimension mismatch not rejected")
	}
}

func TestCountLUMatchesEdgeCentric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, graph.Undirected, 30, 150)
		want := lcc.SharedLCC(g, intersect.MethodHybrid)
		got, err := CountLU(g)
		if err != nil {
			t.Fatal(err)
		}
		if got.Triangles != want.Triangles {
			t.Fatalf("trial %d: algebraic Δ = %d, edge-centric = %d", trial, got.Triangles, want.Triangles)
		}
		for v := range want.PerVertex {
			if got.PerVertex[v] != want.PerVertex[v] {
				t.Fatalf("trial %d: vertex %d: algebraic t=%d, edge-centric t=%d",
					trial, v, got.PerVertex[v], want.PerVertex[v])
			}
		}
	}
}

func TestCountLURejectsDirected(t *testing.T) {
	g, _ := graph.Build(graph.Directed, 3, []graph.Edge{{Src: 0, Dst: 1}})
	if _, err := CountLU(g); err == nil {
		t.Fatal("CountLU accepted a directed graph")
	}
}

func TestCountAAADirected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, graph.Directed, 25, 180)
		want := lcc.SharedLCC(g, intersect.MethodHybrid)
		got, err := CountAAA(g)
		if err != nil {
			t.Fatal(err)
		}
		if got.Triangles != want.Triangles {
			t.Fatalf("trial %d: algebraic directed Δ = %d, edge-centric = %d", trial, got.Triangles, want.Triangles)
		}
		for v := range want.PerVertex {
			if got.PerVertex[v] != want.PerVertex[v] {
				t.Fatalf("trial %d: vertex %d: algebraic t=%d, edge-centric t=%d",
					trial, v, got.PerVertex[v], want.PerVertex[v])
			}
		}
	}
}

func TestCountLUOnRMAT(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, graph.Undirected, 17))
	want := lcc.SharedLCC(g, intersect.MethodHybrid)
	got, err := CountLU(g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Triangles != want.Triangles {
		t.Fatalf("R-MAT: algebraic Δ = %d, edge-centric = %d", got.Triangles, want.Triangles)
	}
	if got.Flops <= 0 {
		t.Fatal("flops not counted")
	}
}

func TestPerEdgeCounts(t *testing.T) {
	// Triangle 0-1-2 plus edge 2-3: c_01 (via LU with apex 0 at (1,2))
	// ... assert the per-edge matrix via At on a known case: for the
	// directed 3-cycle there are no transitive triads, for the
	// transitive triangle exactly one.
	cyc, _ := graph.Build(graph.Directed, 3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}})
	got, err := CountAAA(cyc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Triangles != 0 {
		t.Fatalf("directed 3-cycle has %d transitive triads, want 0", got.Triangles)
	}
	tri, _ := graph.Build(graph.Directed, 3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	got, err = CountAAA(tri)
	if err != nil {
		t.Fatal(err)
	}
	if got.Triangles != 1 {
		t.Fatalf("transitive triangle has %d triads, want 1", got.Triangles)
	}
	if v := got.PerEdge.At(0, 2); v != 1 {
		t.Fatalf("c_02 = %d, want 1 (wedge 0→1→2)", v)
	}
	if v := got.PerEdge.At(0, 1); v != 0 {
		t.Fatalf("c_01 = %d, want 0", v)
	}
}

func TestSumAndAt(t *testing.T) {
	g, _ := graph.Build(graph.Undirected, 4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}, {Src: 2, Dst: 3},
	})
	res, err := CountLU(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 1 {
		t.Fatalf("Δ = %d, want 1", res.Triangles)
	}
	if res.PerEdge.Sum() != 2 {
		t.Fatalf("Sum = %d, want 2 (each triangle twice)", res.PerEdge.Sum())
	}
	// Apex 0 ⇒ entries (1,2) and (2,1).
	if res.PerEdge.At(1, 2) != 1 || res.PerEdge.At(2, 1) != 1 {
		t.Fatalf("per-edge entries (1,2)=%d (2,1)=%d, want 1,1",
			res.PerEdge.At(1, 2), res.PerEdge.At(2, 1))
	}
	if res.PerEdge.At(2, 3) != 0 {
		t.Fatalf("c_23 = %d, want 0", res.PerEdge.At(2, 3))
	}
	if res.PerEdge.At(0, 3) != 0 {
		t.Fatalf("absent entry not zero")
	}
}
