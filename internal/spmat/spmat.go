// Package spmat implements the sparse-matrix substrate for the algebraic
// triangle-counting family the paper surveys in §V-B: for a graph G with
// adjacency matrix A, the matrix C = A·A ∘ A (element-wise masked product)
// stores in c_ij the number of triangles containing edge e_ij; for
// undirected graphs this simplifies to C = L·U ∘ A with L and U the strict
// lower and upper triangular parts. The package provides CSR sparse
// matrices, masked sparse–sparse multiplication (SpGEMM), triangular
// splits, and the triangle-count reductions — an independent algebraic
// cross-check for the edge-centric engines and the A6 ablation baseline.
package spmat

import (
	"fmt"

	"repro/internal/graph"
)

// Matrix is a square sparse boolean matrix in CSR form. Row i's column
// indices are cols[rowPtr[i]:rowPtr[i+1]], sorted ascending. Entries are
// implicit ones (the adjacency case); products carry explicit counts.
type Matrix struct {
	n      int
	rowPtr []uint64
	cols   []graph.V
}

// CountsMatrix is a CSR matrix with explicit integer values, the result
// type of masked SpGEMM.
type CountsMatrix struct {
	n      int
	rowPtr []uint64
	cols   []graph.V
	vals   []int64
}

// FromGraph converts a graph's CSR representation into a boolean matrix.
// The matrix aliases the graph's arrays; neither may be modified.
func FromGraph(g *graph.Graph) *Matrix {
	return &Matrix{n: g.NumVertices(), rowPtr: g.Offsets(), cols: g.Arcs()}
}

// N returns the matrix dimension.
func (m *Matrix) N() int { return m.n }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.cols) }

// Row returns the sorted column indices of row i.
func (m *Matrix) Row(i graph.V) []graph.V {
	return m.cols[m.rowPtr[i]:m.rowPtr[i+1]]
}

// N returns the matrix dimension.
func (c *CountsMatrix) N() int { return c.n }

// NNZ returns the number of stored entries.
func (c *CountsMatrix) NNZ() int { return len(c.cols) }

// Row returns the sorted column indices and the values of row i.
func (c *CountsMatrix) Row(i graph.V) ([]graph.V, []int64) {
	lo, hi := c.rowPtr[i], c.rowPtr[i+1]
	return c.cols[lo:hi], c.vals[lo:hi]
}

// At returns the value at (i, j), zero if absent.
func (c *CountsMatrix) At(i, j graph.V) int64 {
	cols, vals := c.Row(i)
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case cols[mid] < j:
			lo = mid + 1
		case cols[mid] > j:
			hi = mid
		default:
			return vals[mid]
		}
	}
	return 0
}

// Sum returns the sum of all stored values.
func (c *CountsMatrix) Sum() int64 {
	var s int64
	for _, v := range c.vals {
		s += v
	}
	return s
}

// Lower returns the strict lower-triangular part L of m (entries with
// column < row).
func (m *Matrix) Lower() *Matrix { return m.triangular(true) }

// Upper returns the strict upper-triangular part U of m (entries with
// column > row).
func (m *Matrix) Upper() *Matrix { return m.triangular(false) }

func (m *Matrix) triangular(lower bool) *Matrix {
	out := &Matrix{n: m.n, rowPtr: make([]uint64, m.n+1)}
	for i := 0; i < m.n; i++ {
		for _, j := range m.Row(graph.V(i)) {
			if (lower && j < graph.V(i)) || (!lower && j > graph.V(i)) {
				out.cols = append(out.cols, j)
			}
		}
		out.rowPtr[i+1] = uint64(len(out.cols))
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := &Matrix{n: m.n, rowPtr: make([]uint64, m.n+1)}
	counts := make([]uint64, m.n+1)
	for _, j := range m.cols {
		counts[j+1]++
	}
	for i := 0; i < m.n; i++ {
		counts[i+1] += counts[i]
	}
	copy(out.rowPtr, counts)
	out.cols = make([]graph.V, len(m.cols))
	fill := make([]uint64, m.n)
	for i := 0; i < m.n; i++ {
		for _, j := range m.Row(graph.V(i)) {
			out.cols[out.rowPtr[j]+fill[j]] = graph.V(i)
			fill[j]++
		}
	}
	// Rows of the transpose are built by ascending source row, so each
	// row's columns are already sorted.
	return out
}

// MaskedMultiply computes (a·b) ∘ mask: the sparse product restricted to
// the nonzero pattern of mask, with explicit counts. This is the SpGEMM
// kernel of the algebraic method — for triangle counting the mask is A
// itself, so only the entries that correspond to edges are ever
// materialized, keeping the result's size at nnz(A) instead of nnz(A²).
// flops returns the number of scalar multiply-adds the masked product
// performed (the standard SpGEMM work metric).
func MaskedMultiply(a, b, mask *Matrix) (*CountsMatrix, int64, error) {
	if a.n != b.n || a.n != mask.n {
		return nil, 0, fmt.Errorf("spmat: dimension mismatch: %d, %d, %d", a.n, b.n, mask.n)
	}
	out := &CountsMatrix{n: a.n, rowPtr: make([]uint64, a.n+1)}
	var flops int64
	// Gustavson's row-wise algorithm with a sparse accumulator (SPA),
	// restricted to the mask's row pattern.
	acc := make([]int64, a.n)
	inMask := make([]bool, a.n)
	for i := 0; i < a.n; i++ {
		maskRow := mask.Row(graph.V(i))
		if len(maskRow) == 0 {
			out.rowPtr[i+1] = uint64(len(out.cols))
			continue
		}
		for _, j := range maskRow {
			inMask[j] = true
		}
		for _, k := range a.Row(graph.V(i)) {
			for _, j := range b.Row(k) {
				if inMask[j] {
					acc[j]++
					flops++
				}
			}
		}
		for _, j := range maskRow {
			if acc[j] != 0 {
				out.cols = append(out.cols, j)
				out.vals = append(out.vals, acc[j])
				acc[j] = 0
			}
			inMask[j] = false
		}
		out.rowPtr[i+1] = uint64(len(out.cols))
	}
	return out, flops, nil
}

// TriangleCountResult reports the algebraic triangle computation.
type TriangleCountResult struct {
	Triangles int64
	PerVertex []int64 // per-vertex participation counts, SharedLCC convention
	PerEdge   *CountsMatrix
	Flops     int64
}

// CountLU computes triangles of an undirected graph as C = L·U ∘ A
// (§V-B), with L and U the strict lower/upper triangular parts of the
// symmetric adjacency matrix A.
//
// Accounting: (L·U)_ij = |{k : k < i, k < j, a_ik = a_kj = 1}| counts
// wedges whose apex k is smaller than both endpoints. Masked by a_ij,
// entry (i,j) therefore counts the triangles {k,i,j} whose smallest
// corner is the apex. A triangle {x<y<z} shows up at exactly the two
// symmetric entries (y,z) and (z,y) (apex x), so Sum(C) = 2Δ.
func CountLU(g *graph.Graph) (*TriangleCountResult, error) {
	if g.Kind() != graph.Undirected {
		return nil, fmt.Errorf("spmat: CountLU requires an undirected graph, got %v", g.Kind())
	}
	a := FromGraph(g)
	l, u := a.Lower(), a.Upper()
	c, flops, err := MaskedMultiply(l, u, a)
	if err != nil {
		return nil, err
	}
	res := &TriangleCountResult{
		PerEdge:   c,
		Flops:     flops,
		PerVertex: make([]int64, a.n),
	}
	res.Triangles = c.Sum() / 2
	// Per-vertex participation (each triangle adds 1 to each corner, the
	// SharedLCC convention) from three views of the same product:
	//
	//   row sums of LU∘A give, for triangle {x<y<z}: +1 at y, +1 at z
	//   row sums of UL∘A (apex = largest corner): +1 at x, +1 at y
	//
	// so rowLU(v) + rowUL(v) counts the middle corner y twice. The
	// middle count m_v = |{(x,z) : x < v < z, a_xv = a_vz = a_xz = 1}|
	// is computed directly below; PerVertex = rowLU + rowUL − mid.
	ul, _, err := MaskedMultiply(u, l, a)
	if err != nil {
		return nil, err
	}
	for v := 0; v < a.n; v++ {
		_, lu := c.Row(graph.V(v))
		_, ulv := ul.Row(graph.V(v))
		var s int64
		for _, x := range lu {
			s += x
		}
		for _, x := range ulv {
			s += x
		}
		res.PerVertex[v] = s
	}
	for v := 0; v < a.n; v++ {
		var mid int64
		lowerNbrs := l.Row(graph.V(v))
		upperNbrs := u.Row(graph.V(v))
		for _, x := range lowerNbrs {
			// count z ∈ upperNbrs with edge {x,z}: intersect
			// adj(x) with upperNbrs.
			ax := a.Row(x)
			i, j := 0, 0
			for i < len(ax) && j < len(upperNbrs) {
				switch {
				case ax[i] == upperNbrs[j]:
					mid++
					i++
					j++
				case ax[i] < upperNbrs[j]:
					i++
				default:
					j++
				}
			}
		}
		res.PerVertex[v] -= mid
	}
	return res, nil
}

// CountAAA computes triangles of a directed graph as C = A·A ∘ A: entry
// c_ij is the number of transitive triads closed by edge e_ij, matching
// the paper's directed edge-centric semantics, and Sum(C) equals the
// directed triangle total of SharedLCC.
func CountAAA(g *graph.Graph) (*TriangleCountResult, error) {
	a := FromGraph(g)
	c, flops, err := MaskedMultiply(a, a, a)
	if err != nil {
		return nil, err
	}
	res := &TriangleCountResult{
		PerEdge:   c,
		Flops:     flops,
		PerVertex: make([]int64, a.n),
	}
	res.Triangles = c.Sum()
	// Directed per-vertex counts (SharedLCC convention, Eq. (1)):
	// t_i = |{(j,k) ∈ adj(i)² : e_jk ∈ E}| = Σ_{j∈adj(i)} |adj(i) ∩ adj(j)|,
	// computed directly by merging sorted rows. Note this is not a row
	// sum of C — c_ij counts wedges *through* an intermediate k, while
	// t_i counts pairs of i's own successors — but the global totals
	// agree (both enumerate the triples a_ij·a_ik·a_jk), which the tests
	// assert against Sum(C).
	for i := 0; i < a.n; i++ {
		adjI := a.Row(graph.V(i))
		var t int64
		for _, j := range adjI {
			// |adj(j) ∩ adj(i)| counting pairs (j,k), k ∈ adj(i),
			// e_jk ∈ E.
			aj := a.Row(j)
			x, y := 0, 0
			for x < len(aj) && y < len(adjI) {
				switch {
				case aj[x] == adjI[y]:
					t++
					x++
					y++
				case aj[x] < adjI[y]:
					x++
				default:
					y++
				}
			}
		}
		res.PerVertex[i] = t
	}
	return res, nil
}
