package graph

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// paperGraph builds the 6-vertex example of Fig. 1 (left): vertices 0..5,
// undirected edges forming the two-node toy graph.
func paperGraph(t testing.TB) *Graph {
	t.Helper()
	edges := []Edge{
		{0, 1}, {0, 2}, {1, 2}, {1, 3}, {1, 4}, {2, 4}, {3, 4}, {4, 5},
	}
	g, err := Build(Undirected, 6, edges)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuildBasics(t *testing.T) {
	g := paperGraph(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := g.NumVertices(), 6; got != want {
		t.Errorf("NumVertices = %d, want %d", got, want)
	}
	if got, want := g.NumEdges(), 8; got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
	if got, want := g.NumArcs(), 16; got != want {
		t.Errorf("NumArcs = %d, want %d", got, want)
	}
	if got, want := g.Adj(1), []V{0, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("Adj(1) = %v, want %v", got, want)
	}
	if g.OutDegree(4) != 4 {
		t.Errorf("OutDegree(4) = %d, want 4", g.OutDegree(4))
	}
}

func TestBuildRemovesLoopsAndMultiEdges(t *testing.T) {
	edges := []Edge{{0, 0}, {0, 1}, {1, 0}, {0, 1}, {1, 2}, {2, 2}}
	g, err := Build(Undirected, 3, edges)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := g.NumEdges(), 2; got != want {
		t.Errorf("NumEdges = %d, want %d (loops and duplicates must collapse)", got, want)
	}
}

func TestBuildDirected(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}, {2, 0}, {0, 2}}
	g, err := Build(Directed, 3, edges)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := g.NumEdges(), 4; got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Errorf("directed graph stored arcs incorrectly")
	}
	in := g.InDegrees()
	if got, want := in[2], 2; got != want {
		t.Errorf("InDegree(2) = %d, want %d", got, want)
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	if _, err := Build(Undirected, 2, []Edge{{0, 5}}); err == nil {
		t.Fatal("Build accepted an out-of-range endpoint")
	}
}

func TestHasEdge(t *testing.T) {
	g := paperGraph(t)
	cases := []struct {
		u, v V
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {0, 4, false}, {4, 5, true}, {5, 5, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := paperGraph(t)
	g2, err := Build(Undirected, g.NumVertices(), g.Edges())
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if !reflect.DeepEqual(g.offsets, g2.offsets) || !reflect.DeepEqual(g.adj, g2.adj) {
		t.Errorf("Edges()+Build did not round-trip")
	}
}

func TestRemoveLowDegree(t *testing.T) {
	// Vertex 3 is a pendant (degree 1) and vertex 4 is isolated.
	edges := []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}}
	g := MustBuild(Undirected, 5, edges)
	pruned, remap := RemoveLowDegree(g)
	if err := pruned.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := pruned.NumVertices(), 3; got != want {
		t.Fatalf("kept %d vertices, want %d", got, want)
	}
	if remap[3] != NoVertex || remap[4] != NoVertex {
		t.Errorf("pendant/isolated vertices not removed: remap=%v", remap)
	}
	if got, want := pruned.NumEdges(), 3; got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
}

func TestRemoveLowDegreeDirectedUsesTotalDegree(t *testing.T) {
	// 0->1, 1->2, 2->0 is a directed triangle: every vertex has total
	// degree 2 and must survive even though each out-degree is 1.
	g := MustBuild(Directed, 3, []Edge{{0, 1}, {1, 2}, {2, 0}})
	pruned, _ := RemoveLowDegree(g)
	if got, want := pruned.NumVertices(), 3; got != want {
		t.Fatalf("kept %d vertices, want %d", got, want)
	}
}

func TestRemoveLowDegreeIterReachesFixpoint(t *testing.T) {
	// A path 0-1-2-3-4 hanging off a triangle 4-5-6: each removal round
	// exposes the next pendant; only the triangle survives.
	edges := []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 4}}
	g := MustBuild(Undirected, 7, edges)
	pruned := RemoveLowDegreeIter(g)
	if got, want := pruned.NumVertices(), 3; got != want {
		t.Fatalf("kept %d vertices, want %d (the triangle)", got, want)
	}
	if got, want := pruned.NumEdges(), 3; got != want {
		t.Fatalf("kept %d edges, want %d", got, want)
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := paperGraph(t)
	perm := []V{5, 3, 1, 0, 2, 4}
	rl, err := Relabel(g, perm)
	if err != nil {
		t.Fatalf("Relabel: %v", err)
	}
	if err := rl.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		for u := 0; u < g.NumVertices(); u++ {
			if g.HasEdge(V(v), V(u)) != rl.HasEdge(perm[v], perm[u]) {
				t.Fatalf("edge (%d,%d) not preserved under relabeling", v, u)
			}
		}
	}
}

func TestRelabelRejectsBadPerm(t *testing.T) {
	g := paperGraph(t)
	if _, err := Relabel(g, []V{0, 0, 1, 2, 3, 4}); err == nil {
		t.Error("Relabel accepted a non-permutation")
	}
	if _, err := Relabel(g, []V{0, 1, 2}); err == nil {
		t.Error("Relabel accepted a short permutation")
	}
}

func TestIsDegreeOrdered(t *testing.T) {
	// A star graph built with the hub first is degree-ordered descending.
	star := MustBuild(Undirected, 5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if !IsDegreeOrdered(star) {
		t.Errorf("star graph should be degree-ordered")
	}
	g := paperGraph(t)
	if IsDegreeOrdered(g) {
		t.Errorf("paper graph should not be degree-ordered (degrees %v)",
			[]int{g.OutDegree(0), g.OutDegree(1), g.OutDegree(2), g.OutDegree(3), g.OutDegree(4), g.OutDegree(5)})
	}
}

func TestAsUndirected(t *testing.T) {
	d := MustBuild(Directed, 3, []Edge{{0, 1}, {1, 2}})
	u := AsUndirected(d)
	if u.Kind() != Undirected {
		t.Fatalf("Kind = %v", u.Kind())
	}
	if !u.HasEdge(1, 0) || !u.HasEdge(2, 1) {
		t.Errorf("reverse arcs missing after AsUndirected")
	}
}

func TestCSRSizeBytes(t *testing.T) {
	g := paperGraph(t)
	want := int64(7*8 + 16*4)
	if got := g.CSRSizeBytes(); got != want {
		t.Errorf("CSRSizeBytes = %d, want %d", got, want)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := paperGraph(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := ReadEdgeList(&buf, Undirected)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Errorf("round-trip changed sizes: %d/%d -> %d/%d",
			g.NumVertices(), g.NumEdges(), g2.NumVertices(), g2.NumEdges())
	}
}

func TestReadEdgeListSkipsCommentsAndCompacts(t *testing.T) {
	in := "# comment\n% konect comment\n100 200\n200 300\n\n300 100\n"
	g, err := ReadEdgeList(bytes.NewBufferString(in), Undirected)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if got, want := g.NumVertices(), 3; got != want {
		t.Errorf("NumVertices = %d, want %d (ids must be compacted)", got, want)
	}
	if got, want := g.NumEdges(), 3; got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
}

func TestReadEdgeListRejectsGarbage(t *testing.T) {
	if _, err := ReadEdgeList(bytes.NewBufferString("1 two\n"), Undirected); err == nil {
		t.Error("ReadEdgeList accepted a non-numeric endpoint")
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("justone\n"), Undirected); err == nil {
		t.Error("ReadEdgeList accepted a single-field line")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, kind := range []Kind{Undirected, Directed} {
		g := randomGraph(t, kind, 200, 800, 7)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("ReadBinary: %v", err)
		}
		if !reflect.DeepEqual(g.offsets, g2.offsets) || !reflect.DeepEqual(g.adj, g2.adj) || g.kind != g2.kind {
			t.Errorf("binary round-trip mismatch for %v", kind)
		}
	}
}

func TestReadBinaryRejectsCorruption(t *testing.T) {
	g := paperGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:10])); err == nil {
		t.Error("ReadBinary accepted a truncated stream")
	}
	bad := append([]byte{}, raw...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("ReadBinary accepted a bad magic")
	}
}

func TestGiniCoefficient(t *testing.T) {
	// A cycle is perfectly uniform: Gini must be ~0.
	cycle := make([]Edge, 64)
	for i := range cycle {
		cycle[i] = Edge{V(i), V((i + 1) % 64)}
	}
	u := MustBuild(Undirected, 64, cycle)
	if gi := GiniCoefficient(u); gi > 0.01 {
		t.Errorf("uniform cycle Gini = %.3f, want ~0", gi)
	}
	// A star is maximally unequal.
	star := make([]Edge, 63)
	for i := range star {
		star[i] = Edge{0, V(i + 1)}
	}
	s := MustBuild(Undirected, 64, star)
	if gi := GiniCoefficient(s); gi < 0.4 {
		t.Errorf("star Gini = %.3f, want large", gi)
	}
}

func TestTopDegreeShare(t *testing.T) {
	star := make([]Edge, 99)
	for i := range star {
		star[i] = Edge{0, V(i + 1)}
	}
	s := MustBuild(Undirected, 100, star)
	// The hub absorbs half of all arcs; top-10% must cover well over 10%.
	if share := TopDegreeShare(s, 0.10); share < 0.5 {
		t.Errorf("TopDegreeShare(star, 0.10) = %.2f, want >= 0.5", share)
	}
	cycle := make([]Edge, 100)
	for i := range cycle {
		cycle[i] = Edge{V(i), V((i + 1) % 100)}
	}
	c := MustBuild(Undirected, 100, cycle)
	if share := TopDegreeShare(c, 0.10); share > 0.15 {
		t.Errorf("TopDegreeShare(cycle, 0.10) = %.2f, want ~0.10", share)
	}
}

func TestReciprocity(t *testing.T) {
	full := MustBuild(Directed, 2, []Edge{{0, 1}, {1, 0}})
	if r := Reciprocity(full); r != 1 {
		t.Errorf("Reciprocity = %v, want 1", r)
	}
	half := MustBuild(Directed, 3, []Edge{{0, 1}, {1, 0}, {1, 2}, {2, 0}})
	if r := Reciprocity(half); r != 0.5 {
		t.Errorf("Reciprocity = %v, want 0.5", r)
	}
}

// randomGraph builds a deterministic random simple graph for tests.
func randomGraph(t testing.TB, kind Kind, n, m int, seed uint64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{V(rng.IntN(n)), V(rng.IntN(n))}
	}
	g, err := Build(kind, n, edges)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// Property: for any random edge multiset, Build yields a graph that passes
// Validate and whose HasEdge agrees with a map-based reference.
func TestBuildPropertyMatchesReference(t *testing.T) {
	f := func(raw []uint16, directed bool) bool {
		const n = 50
		kind := Undirected
		if directed {
			kind = Directed
		}
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{V(raw[i] % n), V(raw[i+1] % n)})
		}
		g, err := Build(kind, n, edges)
		if err != nil {
			return false
		}
		if err := g.Validate(); err != nil {
			return false
		}
		ref := map[[2]V]bool{}
		for _, e := range edges {
			if e.Src == e.Dst {
				continue
			}
			ref[[2]V{e.Src, e.Dst}] = true
			if kind == Undirected {
				ref[[2]V{e.Dst, e.Src}] = true
			}
		}
		for u := V(0); u < n; u++ {
			for v := V(0); v < n; v++ {
				if g.HasEdge(u, v) != ref[[2]V{u, v}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Relabel with a random permutation preserves the degree multiset.
func TestRelabelPropertyDegreeMultiset(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(t, Undirected, 60, 240, seed%1000+1)
		n := g.NumVertices()
		rng := rand.New(rand.NewPCG(seed, 42))
		perm := make([]V, n)
		for i := range perm {
			perm[i] = V(i)
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		rl, err := Relabel(g, perm)
		if err != nil {
			return false
		}
		a, b := make([]int, n), make([]int, n)
		for v := 0; v < n; v++ {
			a[v] = g.OutDegree(V(v))
			b[v] = rl.OutDegree(V(v))
		}
		sort.Ints(a)
		sort.Ints(b)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
