package graph

import (
	"encoding/binary"
	"hash/crc32"
)

// In-memory integrity support for the compressed adjacency plane: the
// serving layer's scrubber (internal/serve) re-checksums resident
// snapshots to catch silent corruption, and CompressedAdj's backing
// arrays are unexported — so the checksum walk lives here, next to the
// representation it covers. The same Castagnoli polynomial as the binary
// container (io.go) keeps the whole repo on one checksum discipline.

// Checksum folds the compressed plane's entire resident state — encoded
// stream plus both offset indexes — into the given CRC. A single flipped
// bit anywhere changes the result: corruption of the index arrays is as
// fatal to decoding as corruption of the stream itself.
func (ca *CompressedAdj) Checksum(crc uint32, tab *crc32.Table) uint32 {
	crc = crc32.Update(crc, tab, ca.data)
	var buf [8192]byte
	stage32 := func(s []uint32) {
		n := 0
		for _, v := range s {
			binary.LittleEndian.PutUint32(buf[n:], v)
			if n += 4; n == len(buf) {
				crc = crc32.Update(crc, tab, buf[:n])
				n = 0
			}
		}
		crc = crc32.Update(crc, tab, buf[:n])
	}
	stage64 := func(s []uint64) {
		n := 0
		for _, v := range s {
			binary.LittleEndian.PutUint64(buf[n:], v)
			if n += 8; n == len(buf) {
				crc = crc32.Update(crc, tab, buf[:n])
				n = 0
			}
		}
		crc = crc32.Update(crc, tab, buf[:n])
	}
	stage32(ca.po32)
	stage64(ca.po64)
	stage32(ca.bo32)
	stage64(ca.bo64)
	return crc
}

// CorruptForTest flips one bit of the encoded stream — the integrity
// tests' and chaos harness's stand-in for a DRAM or wild-write fault.
// Never call it on a plane a run may be decoding from.
func (ca *CompressedAdj) CorruptForTest() {
	if len(ca.data) > 0 {
		ca.data[len(ca.data)/2] ^= 0x10
	}
}
