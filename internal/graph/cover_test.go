package graph

import (
	"strings"
	"testing"
)

// This file exercises the small accessor and failure paths the main test
// files leave uncovered: Clone/FromCSR, the Validate error branches, the
// stats helpers, and the panic paths of the Must* constructors.

func TestKindString(t *testing.T) {
	if Undirected.String() != "undirected" || Directed.String() != "directed" {
		t.Error("Kind.String mismatch")
	}
	if !strings.HasPrefix(Kind(9).String(), "Kind(") {
		t.Error("unknown Kind should stringify with its numeric value")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := MustBuild(Undirected, 4, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
	c := g.Clone()
	if c.NumVertices() != g.NumVertices() || c.NumArcs() != g.NumArcs() {
		t.Fatal("clone differs in size")
	}
	// Mutating the clone's backing arrays must not affect the original.
	c.Arcs()[0] = 99
	if g.Arcs()[0] == 99 {
		t.Error("Clone shares the adjacency array")
	}
	c.Offsets()[1] = 77
	if g.Offsets()[1] == 77 {
		t.Error("Clone shares the offsets array")
	}
}

func TestFromCSRAndValidate(t *testing.T) {
	// A valid hand-built path graph 0-1-2.
	g := FromCSR(Undirected, []uint64{0, 1, 3, 4}, []V{1, 0, 2, 1})
	if err := g.Validate(); err != nil {
		t.Fatalf("valid CSR rejected: %v", err)
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}

	bad := []struct {
		name string
		g    *Graph
		want string
	}{
		{"empty offsets", FromCSR(Undirected, nil, nil), "empty"},
		{"first offset", FromCSR(Undirected, []uint64{1, 1}, nil), "offsets[0]"},
		{"last offset", FromCSR(Undirected, []uint64{0, 2}, []V{0}), "offsets[n]"},
		{"not monotone", FromCSR(Undirected, []uint64{0, 2, 1, 3}, []V{1, 2, 0}), "monotone"},
		{"out of range", FromCSR(Directed, []uint64{0, 1}, []V{5}), "out-of-range"},
		{"self loop", FromCSR(Directed, []uint64{0, 1}, []V{0}), "self-loop"},
		{"unsorted", FromCSR(Directed, []uint64{0, 2, 2, 2}, []V{2, 1}), "sorted"},
		{"asymmetric", FromCSR(Undirected, []uint64{0, 1, 1}, []V{1}), "reverse arc"},
	}
	for _, tc := range bad {
		err := tc.g.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a broken graph", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild accepted an out-of-range edge")
		}
	}()
	MustBuild(Undirected, 2, []Edge{{Src: 0, Dst: 7}})
}

func TestDegreeHistogram(t *testing.T) {
	// Star: center degree 3, leaves degree 1.
	g := MustBuild(Undirected, 4, []Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}})
	h := DegreeHistogram(g)
	if len(h) != 4 {
		t.Fatalf("histogram length %d, want 4", len(h))
	}
	if h[1] != 3 || h[3] != 1 || h[0] != 0 || h[2] != 0 {
		t.Errorf("histogram = %v, want [0 3 0 1]", h)
	}
}

func TestAverageDegree(t *testing.T) {
	g := MustBuild(Undirected, 3, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	if got := AverageDegree(g); got != 2 {
		t.Errorf("triangle average degree = %v, want 2", got)
	}
	empty := FromCSR(Directed, []uint64{0}, nil)
	if got := AverageDegree(empty); got != 0 {
		t.Errorf("empty graph average degree = %v, want 0", got)
	}
}
