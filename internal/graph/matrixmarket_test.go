package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatrixMarketRoundTripUndirected(t *testing.T) {
	g, err := Build(Undirected, 5, []Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}, {Src: 3, Dst: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "symmetric") {
		t.Fatalf("undirected graph not written as symmetric:\n%s", buf.String())
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind() != Undirected {
		t.Fatalf("round trip changed kind to %v", back.Kind())
	}
	if back.NumVertices() != 5 || back.NumEdges() != 4 {
		t.Fatalf("round trip: %d vertices / %d edges, want 5/4", back.NumVertices(), back.NumEdges())
	}
	for v := 0; v < 5; v++ {
		a, b := g.Adj(V(v)), back.Adj(V(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d: degree %d != %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
}

func TestMatrixMarketRoundTripDirected(t *testing.T) {
	g, err := Build(Directed, 4, []Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 2, Dst: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "general") {
		t.Fatalf("directed graph not written as general:\n%s", buf.String())
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind() != Directed || back.NumEdges() != 3 {
		t.Fatalf("round trip: kind %v, %d edges; want directed, 3", back.Kind(), back.NumEdges())
	}
	if !back.HasEdge(0, 1) || !back.HasEdge(1, 0) || !back.HasEdge(2, 3) {
		t.Fatal("round trip lost edges")
	}
	if back.HasEdge(3, 2) {
		t.Fatal("round trip invented reverse edge in directed graph")
	}
}

func TestMatrixMarketReadWithValuesAndComments(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% a comment line
% another

3 3 3
2 1 0.5
3 1 -1.25
3 2 7
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices / %d edges, want 3/3", g.NumVertices(), g.NumEdges())
	}
	// Triangle: every pair connected.
	for _, e := range [][2]V{{0, 1}, {0, 2}, {1, 2}} {
		if !g.HasEdge(e[0], e[1]) || !g.HasEdge(e[1], e[0]) {
			t.Fatalf("edge {%d,%d} missing", e[0], e[1])
		}
	}
}

func TestMatrixMarketSelfLoopsDropped(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 1\n1 2\n2 2\n"
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("self-loops not dropped: %d edges, want 1", g.NumEdges())
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad header", "%%NotMatrixMarket\n1 1 0\n"},
		{"array format", "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n"},
		{"skew symmetry", "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 5\n"},
		{"rectangular", "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n"},
		{"bad size", "%%MatrixMarket matrix coordinate pattern general\nx y z\n"},
		{"short entry", "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1\n"},
		{"bad index", "%%MatrixMarket matrix coordinate pattern general\n2 2 1\na 2\n"},
		{"out of range", "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 9\n"},
		{"zero index", "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n"},
	}
	for _, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestMatrixMarketRoundTripProperty(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		kind := Undirected
		if directed {
			kind = Directed
		}
		edges := make([]Edge, 0, 3*n)
		for i := 0; i < 3*n; i++ {
			u, v := V(rng.Intn(n)), V(rng.Intn(n))
			if u != v {
				edges = append(edges, Edge{Src: u, Dst: v})
			}
		}
		g, err := Build(kind, n, edges)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, g); err != nil {
			return false
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			return false
		}
		if back.Kind() != g.Kind() || back.NumVertices() != g.NumVertices() || back.NumArcs() != g.NumArcs() {
			return false
		}
		for v := 0; v < n; v++ {
			a, b := g.Adj(V(v)), back.Adj(V(v))
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixMarketHeaderCaseInsensitive(t *testing.T) {
	in := "%%matrixmarket MATRIX Coordinate Pattern SYMMETRIC\n2 2 1\n2 1\n"
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind() != Undirected || g.NumEdges() != 1 {
		t.Fatalf("case-insensitive parse failed: %v, %d edges", g.Kind(), g.NumEdges())
	}
}
