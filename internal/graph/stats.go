package graph

import "sort"

// DegreeHistogram returns counts[d] = number of vertices with out-degree d.
func DegreeHistogram(g *Graph) []int {
	h := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.NumVertices(); v++ {
		h[g.OutDegree(V(v))]++
	}
	return h
}

// TopDegreeShare returns the fraction of all arcs whose *target* falls in
// the top `frac` fraction of vertices by in-degree. For a power-law graph
// this is large (the paper's Fig. 4 reports 91.9% for R-MAT at frac=0.10)
// and for a uniform graph it is close to frac itself (11.7%).
func TopDegreeShare(g *Graph, frac float64) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	in := g.InDegrees()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return in[order[a]] > in[order[b]] })
	k := int(float64(n) * frac)
	if k < 1 {
		k = 1
	}
	top, total := 0, 0
	for i, v := range order {
		total += in[v]
		if i < k {
			top += in[v]
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

// GiniCoefficient measures the inequality of the out-degree distribution in
// [0,1]; 0 = perfectly uniform. Used by tests to check that the generator
// stand-ins have the intended distribution type (power-law vs uniform).
func GiniCoefficient(g *Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	deg := make([]float64, n)
	sum := 0.0
	for v := 0; v < n; v++ {
		deg[v] = float64(g.OutDegree(V(v)))
		sum += deg[v]
	}
	if sum == 0 {
		return 0
	}
	sort.Float64s(deg)
	// Gini = (2*sum_i i*x_i)/(n*sum x) - (n+1)/n with 1-based i.
	acc := 0.0
	for i, x := range deg {
		acc += float64(i+1) * x
	}
	return 2*acc/(float64(n)*sum) - float64(n+1)/float64(n)
}

// AverageDegree returns the mean out-degree.
func AverageDegree(g *Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumArcs()) / float64(n)
}

// Reciprocity returns, for a directed graph, the fraction of arcs (u,v) for
// which the reverse arc (v,u) also exists. The paper relies on the high
// reciprocity of real-world directed graphs when arguing that Observation
// 3.2 holds for directed inputs too. For undirected graphs it returns 1.
func Reciprocity(g *Graph) float64 {
	if g.kind == Undirected {
		return 1
	}
	arcs := g.NumArcs()
	if arcs == 0 {
		return 0
	}
	recip := 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Adj(V(v)) {
			if g.HasEdge(u, V(v)) {
				recip++
			}
		}
	}
	return float64(recip) / float64(arcs)
}
