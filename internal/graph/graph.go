// Package graph provides the compressed-sparse-row (CSR) graph core used by
// every other subsystem in this repository.
//
// The representation follows §II-B of the paper: each graph (or partition)
// is stored as two arrays, offsets and adjacencies. Element i of offsets
// stores the position at which the adjacency list of vertex i starts in the
// adjacencies array; offsets has length n+1 so that the list of vertex i is
// adjacencies[offsets[i]:offsets[i+1]]. Adjacency lists are kept sorted,
// which the intersection kernels (internal/intersect) rely on.
package graph

import (
	"fmt"
	"sort"
)

// V is the vertex identifier type. The paper's datasets fit comfortably in
// 32 bits, and 32-bit ids halve the bytes moved by every remote read, which
// matters because the evaluation is communication bound.
type V = uint32

// Kind distinguishes undirected graphs (each edge stored in both adjacency
// lists) from directed graphs (stored once, in the source's list).
type Kind uint8

const (
	// Undirected graphs store every edge {u,v} in both adj(u) and adj(v).
	Undirected Kind = iota
	// Directed graphs store an edge (u,v) only in adj(u).
	Directed
)

func (k Kind) String() string {
	switch k {
	case Undirected:
		return "undirected"
	case Directed:
		return "directed"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Edge is a directed arc from Src to Dst. Undirected builders treat it as an
// unordered pair.
type Edge struct {
	Src, Dst V
}

// Graph is an immutable CSR graph. All adjacency lists are sorted ascending
// and contain neither self-loops nor duplicates (the paper considers simple
// graphs only; Build enforces this).
type Graph struct {
	kind    Kind
	offsets []uint64 // length n+1
	adj     []V
}

// Kind reports whether the graph is directed or undirected.
func (g *Graph) Kind() Kind { return g.kind }

// NumVertices returns n, the number of vertices.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumArcs returns the number of stored adjacency entries. For a directed
// graph this equals the number of edges m; for an undirected graph it is 2m.
func (g *Graph) NumArcs() int { return len(g.adj) }

// NumEdges returns m, the number of edges in the usual graph-theoretic
// sense (an undirected edge counts once).
func (g *Graph) NumEdges() int {
	if g.kind == Undirected {
		return len(g.adj) / 2
	}
	return len(g.adj)
}

// Adj returns the sorted adjacency list of v. The returned slice aliases the
// graph's storage and must not be modified.
func (g *Graph) Adj(v V) []V {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// OutDegree returns deg+(v), the length of v's adjacency list.
func (g *Graph) OutDegree(v V) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Offsets returns the raw offsets array (length n+1). The slice aliases the
// graph's storage and must not be modified. It is exported so the RMA layer
// can expose it as a window without copying.
func (g *Graph) Offsets() []uint64 { return g.offsets }

// Arcs returns the raw adjacencies array. The slice aliases the graph's
// storage and must not be modified.
func (g *Graph) Arcs() []V { return g.adj }

// HasEdge reports whether the arc (u,v) is present, by binary search in
// adj(u).
func (g *Graph) HasEdge(u, v V) bool {
	a := g.Adj(u)
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// InDegrees computes deg-(v) for every vertex in one pass over the arcs.
// For undirected graphs in-degree equals out-degree and the offsets array
// is used directly.
func (g *Graph) InDegrees() []int {
	n := g.NumVertices()
	in := make([]int, n)
	if g.kind == Undirected {
		for v := 0; v < n; v++ {
			in[v] = g.OutDegree(V(v))
		}
		return in
	}
	for _, w := range g.adj {
		in[w]++
	}
	return in
}

// MaxDegree returns the largest out-degree in the graph, or 0 for an empty
// graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(V(v)); d > max {
			max = d
		}
	}
	return max
}

// CSRSizeBytes returns the in-memory size of the CSR representation: 8 bytes
// per offsets entry plus 4 bytes per adjacency entry. Table II of the paper
// reports this quantity per dataset.
func (g *Graph) CSRSizeBytes() int64 {
	return int64(len(g.offsets))*8 + int64(len(g.adj))*4
}

// Validate checks the structural invariants the rest of the system assumes:
// monotone offsets bounded by len(adj), sorted duplicate-free adjacency
// lists, in-range endpoints, no self-loops, and (for undirected graphs)
// symmetry. It is used by tests and by the CLI loaders.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if err := g.ValidateQuick(); err != nil {
		return err
	}
	if g.kind == Undirected {
		for v := 0; v < n; v++ {
			for _, w := range g.Adj(V(v)) {
				if !g.HasEdge(w, V(v)) {
					return fmt.Errorf("graph: undirected edge {%d,%d} missing reverse arc", v, w)
				}
			}
		}
	}
	return nil
}

// ValidateQuick checks the structural invariants in O(n+m): monotone
// bounded offsets, strictly sorted in-range adjacency lists, no self-loops.
// It skips the O(m log d) undirected-symmetry check of Validate, which is
// what makes it usable on billion-arc loads; the binary readers use it.
func (g *Graph) ValidateQuick() error {
	n := g.NumVertices()
	if len(g.offsets) == 0 {
		return fmt.Errorf("graph: offsets array is empty")
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	if g.offsets[n] != uint64(len(g.adj)) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.offsets[n], len(g.adj))
	}
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		a := g.Adj(V(v))
		for i, w := range a {
			if int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbour %d (n=%d)", v, w, n)
			}
			if w == V(v) {
				return fmt.Errorf("graph: vertex %d has a self-loop", v)
			}
			if i > 0 && a[i-1] >= w {
				return fmt.Errorf("graph: adjacency of vertex %d not strictly sorted at index %d", v, i)
			}
		}
	}
	return nil
}

// Edges returns all edges of the graph. For undirected graphs each edge is
// reported once with Src < Dst. The result is freshly allocated.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Adj(V(v)) {
			if g.kind == Undirected && w < V(v) {
				continue
			}
			out = append(out, Edge{V(v), w})
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	off := make([]uint64, len(g.offsets))
	copy(off, g.offsets)
	adj := make([]V, len(g.adj))
	copy(adj, g.adj)
	return &Graph{kind: g.kind, offsets: off, adj: adj}
}

// FromCSR wraps pre-built CSR arrays in a Graph without copying. The caller
// asserts that the invariants checked by Validate hold; tests call Validate
// on anything built this way.
func FromCSR(kind Kind, offsets []uint64, adj []V) *Graph {
	return &Graph{kind: kind, offsets: offsets, adj: adj}
}
