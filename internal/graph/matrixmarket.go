package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix Market exchange format support. The SuiteSparse collection — the
// usual source for the paper's class of graphs, and the storage format of
// the GraphBLAS ecosystem the paper surveys in §V-B — distributes graphs
// as MatrixMarket coordinate files. Supporting it makes the CLI tools
// interoperable with the standard corpora: a `.mtx` adjacency matrix reads
// directly into the CSR core.
//
// Only the subset that represents graphs is implemented: object "matrix",
// format "coordinate", field "pattern" (or numeric fields, whose values
// are ignored), symmetry "general" or "symmetric". Indices are 1-based per
// the specification.

// ReadMatrixMarket parses a MatrixMarket coordinate file into a graph. A
// "symmetric" header yields an undirected graph; "general" yields a
// directed one (pass through Build's deduplication either way). Self-loops
// are dropped, matching §II-A's simple-graph restriction.
func ReadMatrixMarket(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("graph: matrixmarket: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" {
		return nil, fmt.Errorf("graph: matrixmarket: bad header %q", sc.Text())
	}
	if header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("graph: matrixmarket: unsupported object/format %q %q", header[1], header[2])
	}
	symmetry := header[4]
	var kind Kind
	switch symmetry {
	case "symmetric":
		kind = Undirected
	case "general":
		kind = Directed
	default:
		return nil, fmt.Errorf("graph: matrixmarket: unsupported symmetry %q", symmetry)
	}

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("graph: matrixmarket: bad size line %q: %v", line, err)
		}
		break
	}
	if rows != cols {
		return nil, fmt.Errorf("graph: matrixmarket: adjacency matrix must be square, got %dx%d", rows, cols)
	}
	edges := make([]Edge, 0, nnz)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: matrixmarket: bad entry %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: matrixmarket: bad row index %q: %v", fields[0], err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: matrixmarket: bad column index %q: %v", fields[1], err)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("graph: matrixmarket: entry (%d,%d) out of range for %dx%d", i, j, rows, cols)
		}
		// 1-based → 0-based; numeric values in extra fields are ignored
		// (the adjacency pattern is the graph).
		edges = append(edges, Edge{Src: V(i - 1), Dst: V(j - 1)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: matrixmarket: %v", err)
	}
	return Build(kind, rows, edges)
}

// WriteMatrixMarket writes g as a MatrixMarket coordinate pattern file.
// Undirected graphs use the symmetric representation (lower triangle
// stored, as the format prescribes); directed graphs use general.
func WriteMatrixMarket(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	symmetry := "general"
	if g.Kind() == Undirected {
		symmetry = "symmetric"
	}
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate pattern %s\n", symmetry); err != nil {
		return err
	}
	n := g.NumVertices()
	entries := 0
	for v := 0; v < n; v++ {
		for _, u := range g.Adj(V(v)) {
			if g.Kind() == Undirected && u > V(v) {
				continue // symmetric: store the lower triangle only
			}
			entries++
		}
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", n, n, entries); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Adj(V(v)) {
			if g.Kind() == Undirected && u > V(v) {
				continue
			}
			if _, err := fmt.Fprintf(bw, "%d %d\n", v+1, u+1); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
