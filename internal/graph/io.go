package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in the whitespace-separated "src dst" text format
// used by the SNAP datasets the paper evaluates on. Undirected edges are
// written once, with the smaller endpoint first. Lines beginning with '#'
// are comments.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# kind=%s n=%d m=%d\n", g.kind, g.NumVertices(), g.NumEdges())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst)
	}
	return bw.Flush()
}

// ReadEdgeList parses a SNAP-style edge list. Vertex ids may be sparse; they
// are compacted to 0..n-1 in first-appearance order. kind selects how edges
// are interpreted.
func ReadEdgeList(r io.Reader, kind Kind) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ids := make(map[uint64]V)
	intern := func(raw uint64) V {
		if v, ok := ids[raw]; ok {
			return v
		}
		v := V(len(ids))
		ids[raw] = v
		return v
	}
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") || strings.HasPrefix(s, "%") {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want two fields, got %q", line, s)
		}
		a, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		b, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		edges = append(edges, Edge{intern(a), intern(b)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return Build(kind, len(ids), edges)
}

// Binary CSR container format:
//
//	magic   [8]byte  "LCCGRAPH"
//	version uint32   (1)
//	kind    uint32
//	n       uint64
//	arcs    uint64
//	offsets [n+1]uint64
//	adj     [arcs]uint32
//
// All fields little-endian. This is the on-disk format produced by
// cmd/graphgen and consumed by cmd/lccrun, standing in for the paper's
// "reading graph chunk from disk" step.
var binaryMagic = [8]byte{'L', 'C', 'C', 'G', 'R', 'A', 'P', 'H'}

const binaryVersion = 1

// WriteBinary serializes g in the binary CSR container format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := make([]byte, 4+4+8+8)
	binary.LittleEndian.PutUint32(hdr[0:], binaryVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(g.kind))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.NumArcs()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, o := range g.offsets {
		binary.LittleEndian.PutUint64(buf, o)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	for _, a := range g.adj {
		binary.LittleEndian.PutUint32(buf[:4], a)
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	hdr := make([]byte, 4+4+8+8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", v)
	}
	kind := Kind(binary.LittleEndian.Uint32(hdr[4:]))
	if kind != Undirected && kind != Directed {
		return nil, fmt.Errorf("graph: bad kind %d", kind)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	arcs := binary.LittleEndian.Uint64(hdr[16:])
	const maxReasonable = 1 << 34
	if n > maxReasonable || arcs > maxReasonable {
		return nil, fmt.Errorf("graph: implausible sizes n=%d arcs=%d", n, arcs)
	}
	offsets := make([]uint64, n+1)
	buf := make([]byte, 8)
	for i := range offsets {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("graph: reading offsets: %w", err)
		}
		offsets[i] = binary.LittleEndian.Uint64(buf)
	}
	adj := make([]V, arcs)
	for i := range adj {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("graph: reading adjacencies: %w", err)
		}
		adj[i] = binary.LittleEndian.Uint32(buf[:4])
	}
	g := &Graph{kind: kind, offsets: offsets, adj: adj}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
