package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// WriteEdgeList writes g in the whitespace-separated "src dst" text format
// used by the SNAP datasets the paper evaluates on. Undirected edges are
// written once, with the smaller endpoint first. Lines beginning with '#'
// are comments.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# kind=%s n=%d m=%d\n", g.kind, g.NumVertices(), g.NumEdges())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst)
	}
	return bw.Flush()
}

// ReadEdgeList parses a SNAP-style edge list. Vertex ids may be sparse; they
// are compacted to 0..n-1 in first-appearance order. kind selects how edges
// are interpreted.
//
// The reader streams token by token through a fixed-size buffer, so line
// length is unbounded: files that put many edges on one line (or one huge
// line) parse in constant memory beyond the edge slice itself. A '#' or '%'
// where a number is expected skips the rest of that line as a comment.
func ReadEdgeList(r io.Reader, kind Kind) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	line := 1
	// nextUint scans past whitespace and comments to the next unsigned
	// integer. done=true at clean EOF before any digit.
	nextUint := func() (val uint64, done bool, err error) {
		for {
			b, e := br.ReadByte()
			if e == io.EOF {
				return 0, true, nil
			}
			if e != nil {
				return 0, false, e
			}
			switch {
			case b == '\n':
				line++
			case b == ' ' || b == '\t' || b == '\r' || b == '\f' || b == '\v':
			case b == '#' || b == '%':
				for {
					c, e := br.ReadByte()
					if e == io.EOF {
						return 0, true, nil
					}
					if e != nil {
						return 0, false, e
					}
					if c == '\n' {
						line++
						break
					}
				}
			case b >= '0' && b <= '9':
				val = uint64(b - '0')
				digits := 1
				for {
					c, e := br.ReadByte()
					if e == io.EOF {
						return val, false, nil
					}
					if e != nil {
						return 0, false, e
					}
					if c < '0' || c > '9' {
						if e := br.UnreadByte(); e != nil {
							return 0, false, e
						}
						return val, false, nil
					}
					digits++
					if digits > 20 || val > (^uint64(0)-uint64(c-'0'))/10 {
						return 0, false, fmt.Errorf("graph: line %d: integer overflows uint64", line)
					}
					val = val*10 + uint64(c-'0')
				}
			default:
				return 0, false, fmt.Errorf("graph: line %d: unexpected byte %q", line, b)
			}
		}
	}
	ids := make(map[uint64]V)
	intern := func(raw uint64) V {
		if v, ok := ids[raw]; ok {
			return v
		}
		v := V(len(ids))
		ids[raw] = v
		return v
	}
	var edges []Edge
	for {
		a, done, err := nextUint()
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		b, done, err := nextUint()
		if err != nil {
			return nil, err
		}
		if done {
			return nil, fmt.Errorf("graph: line %d: dangling endpoint %d at end of input", line, a)
		}
		edges = append(edges, Edge{intern(a), intern(b)})
	}
	return Build(kind, len(ids), edges)
}

// Binary CSR container, version 2 (DESIGN.md §9):
//
//	magic    [8]byte  "LCCGRAPH"
//	version  uint32   (2)
//	kind     uint32
//	n        uint64
//	arcs     uint64
//	flags    uint32   (bit 0: offsets are uint32; bit 1: adjacency is
//	                   varint/delta; bit 2: byte-offsets are uint32)
//	nsect    uint32
//	table    nsect × { id uint32, length uint64, crc uint32 }
//	hdrcrc   uint32   (CRC-32C of every preceding byte)
//	payloads, in table order, each covered by its table CRC
//
// All fields little-endian, CRCs Castagnoli. Sections:
//
//	1  offsets       plain arc offsets, n+1 entries (uint32 iff flag bit 0)
//	2  adjacency     raw uint32 arcs, or the varint/delta stream (bit 1)
//	3  byte-offsets  varint files only: per-vertex byte offsets into the
//	                 adjacency stream, n+1 entries (uint32 iff flag bit 2)
//
// Raw sections are laid out exactly as their in-memory arrays, so a
// file-backed store (OpenBinary) can serve reads straight from the mapped
// file. Version-1 files (unversioned sections, no checksums) are rejected
// with a clear error; cmd/graphgen rewrites them.
var binaryMagic = [8]byte{'L', 'C', 'C', 'G', 'R', 'A', 'P', 'H'}

const binaryVersion = 2

// BinaryVersion is the current version of the binary container format —
// cache keys and tooling embed it so format bumps invalidate cleanly.
const BinaryVersion = binaryVersion

const (
	flagOff32   = 1 << 0
	flagVarint  = 1 << 1
	flagByte32  = 1 << 2
	flagsKnown  = flagOff32 | flagVarint | flagByte32
	sectOffsets = 1
	sectAdj     = 2
	sectByteOff = 3
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptError is returned when a binary graph file fails a checksum,
// structural, or framing check. Corrupt large files must fail loud, not
// load garbage.
type CorruptError struct {
	Section string // "header", "offsets", "adjacency", "byte-offsets"
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("graph: corrupt binary file: %s: %s", e.Section, e.Reason)
}

type sectionEntry struct {
	id     uint32
	length uint64
	crc    uint32
}

type binHeader struct {
	kind  Kind
	n     int
	arcs  int
	flags uint32
	sects []sectionEntry
}

func (h *binHeader) section(id uint32) (sectionEntry, bool) {
	for _, s := range h.sects {
		if s.id == id {
			return s, true
		}
	}
	return sectionEntry{}, false
}

func (h *binHeader) offWidth() int {
	if h.flags&flagOff32 != 0 {
		return 4
	}
	return 8
}

func (h *binHeader) byteOffWidth() int {
	if h.flags&flagByte32 != 0 {
		return 4
	}
	return 8
}

func (h *binHeader) encode() []byte {
	buf := make([]byte, 0, 40+16*len(h.sects)+4)
	buf = append(buf, binaryMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, binaryVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.kind))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h.n))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h.arcs))
	buf = binary.LittleEndian.AppendUint32(buf, h.flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.sects)))
	for _, s := range h.sects {
		buf = binary.LittleEndian.AppendUint32(buf, s.id)
		buf = binary.LittleEndian.AppendUint64(buf, s.length)
		buf = binary.LittleEndian.AppendUint32(buf, s.crc)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf
}

// maxSectionBytes bounds any single section so a corrupted length field
// cannot drive a huge allocation before its checksum is ever verified.
const maxSectionBytes = 1 << 38

func decodeBinHeader(br *bufio.Reader) (*binHeader, error) {
	head := make([]byte, 40)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, &CorruptError{Section: "header", Reason: fmt.Sprintf("short read: %v", err)}
	}
	if *(*[8]byte)(head[:8]) != binaryMagic {
		return nil, &CorruptError{Section: "header", Reason: fmt.Sprintf("bad magic %q", head[:8])}
	}
	if v := binary.LittleEndian.Uint32(head[8:]); v != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d (want %d; regenerate with cmd/graphgen)", v, binaryVersion)
	}
	h := &binHeader{
		kind:  Kind(binary.LittleEndian.Uint32(head[12:])),
		n:     int(binary.LittleEndian.Uint64(head[16:])),
		arcs:  int(binary.LittleEndian.Uint64(head[24:])),
		flags: binary.LittleEndian.Uint32(head[32:]),
	}
	nsect := binary.LittleEndian.Uint32(head[36:])
	if h.kind != Undirected && h.kind != Directed {
		return nil, &CorruptError{Section: "header", Reason: fmt.Sprintf("bad kind %d", h.kind)}
	}
	const maxReasonable = 1 << 34
	if h.n < 0 || h.arcs < 0 || h.n > maxReasonable || h.arcs > maxSectionBytes/4 {
		return nil, &CorruptError{Section: "header", Reason: fmt.Sprintf("implausible sizes n=%d arcs=%d", h.n, h.arcs)}
	}
	if h.flags&^uint32(flagsKnown) != 0 {
		return nil, &CorruptError{Section: "header", Reason: fmt.Sprintf("unknown flags %#x", h.flags)}
	}
	if nsect > 16 {
		return nil, &CorruptError{Section: "header", Reason: fmt.Sprintf("implausible section count %d", nsect)}
	}
	table := make([]byte, 16*nsect+4)
	if _, err := io.ReadFull(br, table); err != nil {
		return nil, &CorruptError{Section: "header", Reason: fmt.Sprintf("short section table: %v", err)}
	}
	crc := crc32.Checksum(head, castagnoli)
	crc = crc32.Update(crc, castagnoli, table[:len(table)-4])
	if got := binary.LittleEndian.Uint32(table[len(table)-4:]); got != crc {
		return nil, &CorruptError{Section: "header", Reason: fmt.Sprintf("checksum mismatch (stored %#x, computed %#x)", got, crc)}
	}
	h.sects = make([]sectionEntry, nsect)
	for i := range h.sects {
		h.sects[i] = sectionEntry{
			id:     binary.LittleEndian.Uint32(table[16*i:]),
			length: binary.LittleEndian.Uint64(table[16*i+4:]),
			crc:    binary.LittleEndian.Uint32(table[16*i+12:]),
		}
		if h.sects[i].length > maxSectionBytes {
			return nil, &CorruptError{Section: "header", Reason: fmt.Sprintf("section %d implausibly large (%d bytes)", h.sects[i].id, h.sects[i].length)}
		}
	}
	// Exactly the sections the flags call for, in canonical order.
	want := []uint32{sectOffsets, sectAdj}
	if h.flags&flagVarint != 0 {
		want = append(want, sectByteOff)
	}
	if len(h.sects) != len(want) {
		return nil, &CorruptError{Section: "header", Reason: fmt.Sprintf("want %d sections, have %d", len(want), len(h.sects))}
	}
	for i, id := range want {
		if h.sects[i].id != id {
			return nil, &CorruptError{Section: "header", Reason: fmt.Sprintf("section %d has id %d, want %d", i, h.sects[i].id, id)}
		}
	}
	if got, want := h.sects[0].length, uint64(h.n+1)*uint64(h.offWidth()); got != want {
		return nil, &CorruptError{Section: "offsets", Reason: fmt.Sprintf("length %d, want %d", got, want)}
	}
	if h.flags&flagVarint == 0 {
		if got, want := h.sects[1].length, uint64(h.arcs)*4; got != want {
			return nil, &CorruptError{Section: "adjacency", Reason: fmt.Sprintf("length %d, want %d", got, want)}
		}
	} else if got, want := h.sects[2].length, uint64(h.n+1)*uint64(h.byteOffWidth()); got != want {
		return nil, &CorruptError{Section: "byte-offsets", Reason: fmt.Sprintf("length %d, want %d", got, want)}
	}
	return h, nil
}

func sectionName(id uint32) string {
	switch id {
	case sectOffsets:
		return "offsets"
	case sectAdj:
		return "adjacency"
	case sectByteOff:
		return "byte-offsets"
	}
	return fmt.Sprintf("section-%d", id)
}

// readSection reads and checksum-verifies one payload.
func readSection(br *bufio.Reader, s sectionEntry) ([]byte, error) {
	buf := make([]byte, s.length)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, &CorruptError{Section: sectionName(s.id), Reason: fmt.Sprintf("short read: %v", err)}
	}
	if got := crc32.Checksum(buf, castagnoli); got != s.crc {
		return nil, &CorruptError{Section: sectionName(s.id), Reason: fmt.Sprintf("checksum mismatch (stored %#x, computed %#x)", s.crc, got)}
	}
	return buf, nil
}

func decodeOffsets(payload []byte, n int, width int) ([]uint64, error) {
	offsets := make([]uint64, n+1)
	for i := range offsets {
		if width == 4 {
			offsets[i] = uint64(binary.LittleEndian.Uint32(payload[4*i:]))
		} else {
			offsets[i] = binary.LittleEndian.Uint64(payload[8*i:])
		}
	}
	return offsets, nil
}

// WriteBinary serializes g in the raw (uncompressed) binary container
// format, with 32-bit offsets when the arc count permits.
func WriteBinary(w io.Writer, g *Graph) error {
	return WriteBinaryStore(w, g)
}

// WriteBinaryStore serializes any Store. The on-disk adjacency encoding
// follows the representation: a *CompressedCSR writes its varint/delta
// stream verbatim (no re-encode), everything else writes the raw plain
// image. Offset arrays are written 32-bit whenever their values fit.
func WriteBinaryStore(w io.Writer, st Store) error {
	if c, ok := st.(*CompressedCSR); ok {
		return writeBinaryCompressed(w, c)
	}
	g := Materialize(st)
	h := &binHeader{kind: g.kind, n: g.NumVertices(), arcs: g.NumArcs()}
	offPayload := encodeOffsetArray(g.offsets, &h.flags, flagOff32)
	adjPayload := make([]byte, 4*len(g.adj))
	for i, v := range g.adj {
		binary.LittleEndian.PutUint32(adjPayload[4*i:], v)
	}
	h.sects = []sectionEntry{
		{id: sectOffsets, length: uint64(len(offPayload)), crc: crc32.Checksum(offPayload, castagnoli)},
		{id: sectAdj, length: uint64(len(adjPayload)), crc: crc32.Checksum(adjPayload, castagnoli)},
	}
	return writePayloads(w, h, offPayload, adjPayload)
}

func writeBinaryCompressed(w io.Writer, c *CompressedCSR) error {
	ca := c.ca
	h := &binHeader{kind: c.kind, n: c.NumVertices(), arcs: c.NumArcs(), flags: flagVarint}
	var offPayload, boPayload []byte
	if ca.po32 != nil {
		h.flags |= flagOff32
		offPayload = encodeU32Array(ca.po32)
	} else {
		offPayload = encodeU64Array(ca.po64)
	}
	if ca.bo32 != nil {
		h.flags |= flagByte32
		boPayload = encodeU32Array(ca.bo32)
	} else {
		boPayload = encodeU64Array(ca.bo64)
	}
	h.sects = []sectionEntry{
		{id: sectOffsets, length: uint64(len(offPayload)), crc: crc32.Checksum(offPayload, castagnoli)},
		{id: sectAdj, length: uint64(len(ca.data)), crc: crc32.Checksum(ca.data, castagnoli)},
		{id: sectByteOff, length: uint64(len(boPayload)), crc: crc32.Checksum(boPayload, castagnoli)},
	}
	return writePayloads(w, h, offPayload, ca.data, boPayload)
}

func writePayloads(w io.Writer, h *binHeader, payloads ...[]byte) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(h.encode()); err != nil {
		return err
	}
	for _, p := range payloads {
		if _, err := bw.Write(p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodeOffsetArray(off []uint64, flags *uint32, fit32 uint32) []byte {
	if off[len(off)-1] < 1<<32 {
		*flags |= fit32
		buf := make([]byte, 4*len(off))
		for i, o := range off {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(o))
		}
		return buf
	}
	return encodeU64Array(off)
}

func encodeU32Array(a []uint32) []byte {
	buf := make([]byte, 4*len(a))
	for i, x := range a {
		binary.LittleEndian.PutUint32(buf[4*i:], x)
	}
	return buf
}

func encodeU64Array(a []uint64) []byte {
	buf := make([]byte, 8*len(a))
	for i, x := range a {
		binary.LittleEndian.PutUint64(buf[8*i:], x)
	}
	return buf
}

// ReadBinary deserializes a graph written by WriteBinary/WriteBinaryStore
// into a plain in-RAM *Graph, decoding compressed files eagerly. Every
// section is checksum-verified and the result passes the O(n+m) structural
// checks of ValidateQuick; failures return a *CorruptError. For a
// representation-preserving resident load use ReadBinaryStore; for a lazy
// file-backed load use OpenBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	st, err := ReadBinaryStore(r)
	if err != nil {
		return nil, err
	}
	g := Materialize(st)
	if err := g.ValidateQuick(); err != nil {
		return nil, &CorruptError{Section: "adjacency", Reason: err.Error()}
	}
	return g, nil
}

// ReadBinaryStore deserializes a binary graph file into the resident
// representation it was written in: raw files load as *Graph, varint files
// as *CompressedCSR (the stream is adopted verbatim, no decode pass). All
// checksums are verified; raw files additionally pass ValidateQuick.
func ReadBinaryStore(r io.Reader) (Store, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	h, err := decodeBinHeader(br)
	if err != nil {
		return nil, err
	}
	offPayload, err := readSection(br, h.sects[0])
	if err != nil {
		return nil, err
	}
	adjPayload, err := readSection(br, h.sects[1])
	if err != nil {
		return nil, err
	}
	offsets, err := decodeOffsets(offPayload, h.n, h.offWidth())
	if err != nil {
		return nil, err
	}
	if offsets[h.n] != uint64(h.arcs) {
		return nil, &CorruptError{Section: "offsets", Reason: fmt.Sprintf("offsets[n] = %d, want arcs = %d", offsets[h.n], h.arcs)}
	}
	if h.flags&flagVarint == 0 {
		adj := make([]V, h.arcs)
		for i := range adj {
			adj[i] = binary.LittleEndian.Uint32(adjPayload[4*i:])
		}
		g := &Graph{kind: h.kind, offsets: offsets, adj: adj}
		if err := g.ValidateQuick(); err != nil {
			return nil, &CorruptError{Section: "adjacency", Reason: err.Error()}
		}
		return g, nil
	}
	boPayload, err := readSection(br, h.sects[2])
	if err != nil {
		return nil, err
	}
	ca := &CompressedAdj{lists: h.n, data: adjPayload}
	if h.flags&flagOff32 != 0 {
		ca.po32 = make([]uint32, h.n+1)
		for i := range ca.po32 {
			ca.po32[i] = binary.LittleEndian.Uint32(offPayload[4*i:])
		}
	} else {
		ca.po64 = offsets
	}
	if err := adoptByteOffsets(ca, boPayload, h); err != nil {
		return nil, err
	}
	return &CompressedCSR{kind: h.kind, ca: ca}, nil
}

func adoptByteOffsets(ca *CompressedAdj, boPayload []byte, h *binHeader) error {
	last := uint64(0)
	if h.flags&flagByte32 != 0 {
		ca.bo32 = make([]uint32, h.n+1)
		for i := range ca.bo32 {
			ca.bo32[i] = binary.LittleEndian.Uint32(boPayload[4*i:])
		}
		last = uint64(ca.bo32[h.n])
		for i := 0; i < h.n; i++ {
			if ca.bo32[i] > ca.bo32[i+1] {
				return &CorruptError{Section: "byte-offsets", Reason: fmt.Sprintf("not monotone at %d", i)}
			}
		}
	} else {
		ca.bo64 = make([]uint64, h.n+1)
		for i := range ca.bo64 {
			ca.bo64[i] = binary.LittleEndian.Uint64(boPayload[8*i:])
		}
		last = ca.bo64[h.n]
		for i := 0; i < h.n; i++ {
			if ca.bo64[i] > ca.bo64[i+1] {
				return &CorruptError{Section: "byte-offsets", Reason: fmt.Sprintf("not monotone at %d", i)}
			}
		}
	}
	if last != uint64(len(ca.data)) {
		return &CorruptError{Section: "byte-offsets", Reason: fmt.Sprintf("byte-offsets[n] = %d, want stream length %d", last, len(ca.data))}
	}
	return nil
}
