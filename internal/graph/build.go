package graph

import (
	"fmt"
	"sort"
)

// Build constructs a simple CSR graph with n vertices from an arbitrary edge
// list. Self-loops are dropped and multi-edges collapsed, matching the
// paper's graph model (§II-A: no multi-edges, no loops). For undirected
// graphs every surviving edge is materialized in both adjacency lists.
// Endpoints must be < n.
func Build(kind Kind, n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", e.Src, e.Dst, n)
		}
	}

	// Count arcs per vertex (over-counting duplicates; they are removed
	// after sorting each list).
	deg := make([]int, n)
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		deg[e.Src]++
		if kind == Undirected {
			deg[e.Dst]++
		}
	}
	offsets := make([]uint64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + uint64(deg[v])
	}
	adj := make([]V, offsets[n])
	cursor := make([]uint64, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		adj[cursor[e.Src]] = e.Dst
		cursor[e.Src]++
		if kind == Undirected {
			adj[cursor[e.Dst]] = e.Src
			cursor[e.Dst]++
		}
	}

	// Sort each list and strip duplicates in place, then compact.
	newOff := make([]uint64, n+1)
	w := uint64(0)
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		list := adj[lo:hi]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		newOff[v] = w
		for i, x := range list {
			if i > 0 && list[i-1] == x {
				continue
			}
			adj[w] = x
			w++
		}
	}
	newOff[n] = w
	return &Graph{kind: kind, offsets: newOff, adj: adj[:w:w]}, nil
}

// MustBuild is Build for statically correct inputs (tests, generators); it
// panics on error.
func MustBuild(kind Kind, n int, edges []Edge) *Graph {
	g, err := Build(kind, n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// RemoveLowDegree returns the subgraph induced by vertices whose total
// degree (out-degree, plus in-degree for directed graphs) is at least two,
// together with the mapping old→new id (entries for dropped vertices are
// NoVertex). Vertices of degree below two cannot participate in a triangle,
// so the paper removes them before distribution (§II-B). The removal is a
// single pass, as in the paper ("one-degree removal"); it does not iterate
// to a 2-core.
func RemoveLowDegree(g *Graph) (*Graph, []V) {
	n := g.NumVertices()
	total := g.InDegrees()
	if g.kind == Directed {
		for v := 0; v < n; v++ {
			total[v] += g.OutDegree(V(v))
		}
	}
	remap := make([]V, n)
	kept := 0
	for v := 0; v < n; v++ {
		if total[v] >= 2 {
			remap[v] = V(kept)
			kept++
		} else {
			remap[v] = NoVertex
		}
	}
	edges := make([]Edge, 0, g.NumEdges())
	for v := 0; v < n; v++ {
		if remap[v] == NoVertex {
			continue
		}
		for _, u := range g.Adj(V(v)) {
			if remap[u] == NoVertex {
				continue
			}
			if g.kind == Undirected && u < V(v) {
				continue
			}
			edges = append(edges, Edge{remap[v], remap[u]})
		}
	}
	out := MustBuild(g.kind, kept, edges)
	return out, remap
}

// NoVertex marks a vertex removed by RemoveLowDegree in the returned remap.
const NoVertex = ^V(0)

// RemoveLowDegreeIter applies RemoveLowDegree repeatedly until no vertex of
// total degree below two remains (removing a pendant vertex can create new
// pendants). Triangle counts and LCC numerators are unaffected: a vertex
// with fewer than two incident edges cannot close a triangle.
func RemoveLowDegreeIter(g *Graph) *Graph {
	for {
		pruned, remap := RemoveLowDegree(g)
		changed := false
		for _, r := range remap {
			if r == NoVertex {
				changed = true
				break
			}
		}
		g = pruned
		if !changed {
			return g
		}
	}
}

// Relabel returns a copy of g with vertex v renamed to perm[v]. perm must be
// a permutation of 0..n-1. The paper applies a random relabeling when the
// input is degree-ordered, so that 1D partitioning does not assign all the
// hub vertices to the same process (§II-B).
func Relabel(g *Graph, perm []V) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: perm is not a permutation (value %d)", p)
		}
		seen[p] = true
	}
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[perm[v]] = g.OutDegree(V(v))
	}
	offsets := make([]uint64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + uint64(deg[v])
	}
	adj := make([]V, offsets[n])
	for v := 0; v < n; v++ {
		nv := perm[v]
		dst := adj[offsets[nv]:offsets[nv+1]]
		for i, u := range g.Adj(V(v)) {
			dst[i] = perm[u]
		}
		sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	}
	return &Graph{kind: g.kind, offsets: offsets, adj: adj}, nil
}

// IsDegreeOrdered reports whether vertex ids are (weakly) sorted by
// non-increasing or non-decreasing out-degree — the situation in which the
// paper applies a random relabeling before partitioning.
func IsDegreeOrdered(g *Graph) bool {
	n := g.NumVertices()
	if n < 2 {
		return true
	}
	asc, desc := true, true
	prev := g.OutDegree(0)
	for v := 1; v < n; v++ {
		d := g.OutDegree(V(v))
		if d < prev {
			asc = false
		}
		if d > prev {
			desc = false
		}
		prev = d
	}
	return asc || desc
}

// AsUndirected returns the undirected version of g: every directed arc
// becomes an undirected edge. Useful for comparing directed datasets against
// undirected baselines.
func AsUndirected(g *Graph) *Graph {
	if g.kind == Undirected {
		return g.Clone()
	}
	edges := make([]Edge, 0, g.NumArcs())
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Adj(V(v)) {
			edges = append(edges, Edge{V(v), u})
		}
	}
	return MustBuild(Undirected, g.NumVertices(), edges)
}
