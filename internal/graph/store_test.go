package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// randomStoreGraph builds a moderately skewed random graph for the storage
// tests: enough vertices to exercise varint widths, hubs for dense runs.
func randomStoreGraph(t testing.TB, n, m int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := V(rng.Intn(n))
		var v V
		if rng.Intn(4) == 0 {
			v = V(rng.Intn(n / 16)) // hub-biased endpoint
		} else {
			v = V(rng.Intn(n))
		}
		if u != v {
			edges = append(edges, Edge{u, v})
		}
	}
	g, err := Build(Undirected, n, edges)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// sameStore asserts st serves exactly g's adjacency through the Store
// contract.
func sameStore(t *testing.T, g *Graph, st Store) {
	t.Helper()
	if st.Kind() != g.Kind() || st.NumVertices() != g.NumVertices() ||
		st.NumArcs() != g.NumArcs() || st.NumEdges() != g.NumEdges() {
		t.Fatalf("%s: shape mismatch: kind=%v n=%d arcs=%d edges=%d, want %v/%d/%d/%d",
			st.ReprName(), st.Kind(), st.NumVertices(), st.NumArcs(), st.NumEdges(),
			g.Kind(), g.NumVertices(), g.NumArcs(), g.NumEdges())
	}
	var buf []V
	for v := 0; v < g.NumVertices(); v++ {
		if d := st.OutDegree(V(v)); d != g.OutDegree(V(v)) {
			t.Fatalf("%s: OutDegree(%d) = %d, want %d", st.ReprName(), v, d, g.OutDegree(V(v)))
		}
		buf = st.AdjInto(V(v), buf)
		want := g.Adj(V(v))
		if len(buf) != len(want) {
			t.Fatalf("%s: AdjInto(%d) returned %d elements, want %d", st.ReprName(), v, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("%s: AdjInto(%d)[%d] = %d, want %d", st.ReprName(), v, i, buf[i], want[i])
			}
		}
	}
}

func TestCompressedCSRMatchesPlain(t *testing.T) {
	g := randomStoreGraph(t, 2000, 12000, 1)
	c := CompressGraph(g)
	sameStore(t, g, c)
	if c.ca.DataBytes() >= c.ca.PlainBytes() {
		t.Errorf("compressed stream %d bytes, plain %d: no compression on a skewed graph",
			c.ca.DataBytes(), c.ca.PlainBytes())
	}
	if got := Materialize(c); got.NumArcs() != g.NumArcs() {
		t.Fatalf("Materialize arcs = %d, want %d", got.NumArcs(), g.NumArcs())
	} else if err := got.Validate(); err != nil {
		t.Fatalf("materialized graph invalid: %v", err)
	}
}

func TestCompressedAdjDecodeAt(t *testing.T) {
	g := randomStoreGraph(t, 300, 2000, 2)
	ca := CompressGraph(g).Adjacency()
	var buf []V
	for v := 0; v < g.NumVertices(); v++ {
		start := int(g.Offsets()[v])
		deg := g.OutDegree(V(v))
		buf = ca.DecodeAt(start*4, deg*4, buf)
		want := g.Adj(V(v))
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("DecodeAt(%d): element %d = %d, want %d", v, i, buf[i], want[i])
			}
		}
	}
	// Partial-run and misaligned reads must panic: the engines fetch whole
	// vertex runs only, and anything else would leak representation.
	for _, bad := range [][2]int{{2, 4}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DecodeAt(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			ca.DecodeAt(bad[0], bad[1], nil)
		}()
	}
}

func TestBinaryStoreRoundTripCompressed(t *testing.T) {
	g := randomStoreGraph(t, 1500, 9000, 3)
	c := CompressGraph(g)
	var buf bytes.Buffer
	if err := WriteBinaryStore(&buf, c); err != nil {
		t.Fatalf("WriteBinaryStore: %v", err)
	}
	st, err := ReadBinaryStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinaryStore: %v", err)
	}
	if st.ReprName() != "compressed" {
		t.Fatalf("round-trip representation = %s, want compressed", st.ReprName())
	}
	sameStore(t, g, st)
	// The eager reader decodes the same file to a plain graph.
	g2, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinary(compressed file): %v", err)
	}
	sameStore(t, g, g2)
}

func TestFileCSRServesBothEncodings(t *testing.T) {
	g := randomStoreGraph(t, 1200, 8000, 4)
	dir := t.TempDir()
	for name, st := range map[string]Store{"raw.lcc": g, "comp.lcc": CompressGraph(g)} {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteBinaryStore(f, st); err != nil {
			t.Fatalf("WriteBinaryStore(%s): %v", name, err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		fc, err := OpenBinary(path)
		if err != nil {
			t.Fatalf("OpenBinary(%s): %v", name, err)
		}
		sameStore(t, g, fc)
		if fc.DiskBytes() == 0 || fc.MemBytes() != 0 {
			t.Errorf("%s: DiskBytes=%d MemBytes=%d, want >0 and 0", name, fc.DiskBytes(), fc.MemBytes())
		}
		if err := fc.Close(); err != nil {
			t.Fatalf("Close(%s): %v", name, err)
		}
	}
}

func TestBinaryCorruptSectionsFailTyped(t *testing.T) {
	g := randomStoreGraph(t, 400, 2500, 5)
	for _, st := range []Store{g, CompressGraph(g)} {
		var buf bytes.Buffer
		if err := WriteBinaryStore(&buf, st); err != nil {
			t.Fatal(err)
		}
		clean := buf.Bytes()
		// Flip one byte at a spread of positions: header, table, payloads.
		for _, pos := range []int{9, 20, 45, 80, len(clean) / 2, len(clean) - 3} {
			bad := append([]byte(nil), clean...)
			bad[pos] ^= 0x40
			_, err := ReadBinaryStore(bytes.NewReader(bad))
			if err == nil {
				t.Fatalf("%s: corruption at byte %d loaded silently", st.ReprName(), pos)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) && pos != 9 {
				// Byte 9 flips the version field, which reports a plain
				// unsupported-version error by design.
				t.Errorf("%s: corruption at byte %d: error %v is not a *CorruptError", st.ReprName(), pos, err)
			}
		}
		// Truncation fails loud too.
		_, err := ReadBinaryStore(bytes.NewReader(clean[:len(clean)-10]))
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s: truncated file: error %v is not a *CorruptError", st.ReprName(), err)
		}
	}
}

func TestReadBinaryRejectsVersion1(t *testing.T) {
	old := append([]byte("LCCGRAPH"), make([]byte, 40)...)
	old[8] = 1 // version field
	_, err := ReadBinary(bytes.NewReader(old))
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("version")) {
		t.Fatalf("version-1 file: got %v, want unsupported-version error", err)
	}
}

func TestStoreUnderBudget(t *testing.T) {
	g := randomStoreGraph(t, 2000, 12000, 6)
	if st, err := StoreUnderBudget(g, 0); err != nil || st != Store(g) {
		t.Fatalf("unconstrained budget: got %v repr, err %v", st.ReprName(), err)
	}
	if st, err := StoreUnderBudget(g, g.MemBytes()); err != nil || st.ReprName() != "plain" {
		t.Fatalf("roomy budget: got %s, err %v", st.ReprName(), err)
	}
	c := CompressGraph(g)
	if st, err := StoreUnderBudget(g, g.MemBytes()-1); err != nil || st.ReprName() != "compressed" {
		t.Fatalf("tight budget: got %s, err %v", st.ReprName(), err)
	}
	if st, err := StoreUnderBudget(g, c.MemBytes()-1); err == nil || st.ReprName() != "compressed" {
		t.Fatalf("impossible budget: got %s, err %v — want compressed with error", st.ReprName(), err)
	}
}

func TestReadEdgeListStreamsLongLines(t *testing.T) {
	// One line far beyond any scanner token limit: 400k edges, no newlines.
	var buf bytes.Buffer
	n := 2000
	for i := 0; i < 400000; i++ {
		fmtInt(&buf, uint64(i%n))
		buf.WriteByte(' ')
		fmtInt(&buf, uint64((i+7)%n))
		buf.WriteByte(' ')
	}
	g, err := ReadEdgeList(&buf, Undirected)
	if err != nil {
		t.Fatalf("ReadEdgeList on a single %d-byte line: %v", buf.Len(), err)
	}
	if g.NumVertices() != n {
		t.Fatalf("n = %d, want %d", g.NumVertices(), n)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func fmtInt(buf *bytes.Buffer, x uint64) {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + x%10)
		x /= 10
		if x == 0 {
			break
		}
	}
	buf.Write(tmp[i:])
}

func TestReadEdgeListDanglingEndpoint(t *testing.T) {
	_, err := ReadEdgeList(bytes.NewReader([]byte("0 1\n2")), Undirected)
	if err == nil {
		t.Fatal("odd token count parsed silently")
	}
}

// FuzzVarintAdjacency fuzzes both directions of the varint/delta codec:
// encoded lists round-trip exactly, and the decoder, fed arbitrary bytes,
// never reads past its section and never accepts a malformed stream as a
// full-length list of the wrong width.
func FuzzVarintAdjacency(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x00}, uint16(3))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}, uint16(1))
	f.Add([]byte{0x80}, uint16(1))
	f.Add([]byte{}, uint16(0))
	f.Fuzz(func(t *testing.T, data []byte, degRaw uint16) {
		deg := int(degRaw%512) + 1
		// Direction 1: decode arbitrary bytes — must stay in bounds and,
		// on success, consume only bytes it reports.
		list, n, ok := decodeDeltaList(data, deg, nil)
		if n < 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if ok {
			if len(list) != deg {
				t.Fatalf("ok decode returned %d elements, want %d", len(list), deg)
			}
			for i := 1; i < deg; i++ {
				if list[i] <= list[i-1] {
					t.Fatalf("decoded list not strictly increasing at %d", i)
				}
			}
			// Direction 2: re-encode decodes back to the same list. (The
			// bytes themselves may shrink — the decoder tolerates
			// non-canonical varints with trailing zero continuations, the
			// encoder never emits them.)
			re := appendDeltaList(nil, list)
			if len(re) > n {
				t.Fatalf("canonical re-encode (%d bytes) longer than accepted input (%d)", len(re), n)
			}
			got2, n2, ok2 := decodeDeltaList(re, deg, nil)
			if !ok2 || n2 != len(re) {
				t.Fatalf("re-encoded list failed to decode")
			}
			for i := range list {
				if got2[i] != list[i] {
					t.Fatalf("re-encode round-trip mismatch at %d", i)
				}
			}
		}
		// Direction 3: round-trip a synthesized strictly-increasing list
		// derived from the fuzz bytes.
		syn := make([]V, 0, len(data))
		prev := uint64(0)
		for _, b := range data {
			next := prev + uint64(b) + 1
			if next >= 1<<32 {
				break
			}
			syn = append(syn, V(next))
			prev = next
		}
		enc := appendDeltaList(nil, syn)
		got, n2, ok2 := decodeDeltaList(enc, len(syn), nil)
		if !ok2 || n2 != len(enc) {
			t.Fatalf("round-trip decode failed (ok=%v, consumed %d of %d)", ok2, n2, len(enc))
		}
		for i := range syn {
			if got[i] != syn[i] {
				t.Fatalf("round-trip mismatch at %d: %d != %d", i, got[i], syn[i])
			}
		}
	})
}
