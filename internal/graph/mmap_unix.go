//go:build linux || darwin || freebsd || netbsd || openbsd

package graph

import (
	"os"
	"syscall"
)

// mmapFile maps f read-only. The returned release function unmaps; both are
// no-ops for empty files.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
