package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// FileCSR is a lazy, file-backed Store over a version-2 binary graph file.
// OpenBinary maps the file read-only (mmap on platforms that have it, a
// one-shot buffered read elsewhere) and serves adjacency reads straight
// from the mapped sections — the "mmap-style streaming" load mode: opening
// a graph costs one sequential checksum pass instead of an eager decode,
// and cold lists are paged in on first touch by the OS rather than held
// resident.
type FileCSR struct {
	path    string
	size    int64
	mapped  []byte
	unmap   func() error
	kind    Kind
	n       int
	arcs    int
	flags   uint32
	offSect []byte // raw offsets payload (width per flags)
	adjSect []byte // raw u32 arcs, or the varint stream
	boSect  []byte // varint files only
}

// OpenBinary opens a binary graph file as a lazy file-backed Store. The
// header and every section checksum are verified up front (one sequential
// pass over the mapping) and the offsets array is checked for monotonicity,
// so later reads cannot wander out of bounds; per-list contents are decoded
// on access. Close releases the mapping.
func OpenBinary(path string) (*FileCSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	mapped, unmap, err := mmapFile(f, info.Size())
	if err != nil {
		return nil, fmt.Errorf("graph: mapping %s: %w", path, err)
	}
	fc := &FileCSR{path: path, size: info.Size(), mapped: mapped, unmap: unmap}
	if err := fc.init(); err != nil {
		unmap()
		return nil, err
	}
	return fc, nil
}

func (fc *FileCSR) init() error {
	h, err := decodeBinHeader(bufio.NewReader(bytes.NewReader(fc.mapped)))
	if err != nil {
		return err
	}
	fc.kind, fc.n, fc.arcs, fc.flags = h.kind, h.n, h.arcs, h.flags
	pos := uint64(40 + 16*len(h.sects) + 4)
	for _, s := range h.sects {
		if pos+s.length > uint64(len(fc.mapped)) {
			return &CorruptError{Section: sectionName(s.id), Reason: "section extends past end of file"}
		}
		payload := fc.mapped[pos : pos+s.length]
		if got := crc32.Checksum(payload, castagnoli); got != s.crc {
			return &CorruptError{Section: sectionName(s.id), Reason: fmt.Sprintf("checksum mismatch (stored %#x, computed %#x)", s.crc, got)}
		}
		switch s.id {
		case sectOffsets:
			fc.offSect = payload
		case sectAdj:
			fc.adjSect = payload
		case sectByteOff:
			fc.boSect = payload
		}
		pos += s.length
	}
	last := uint64(0)
	for i := 0; i <= fc.n; i++ {
		o := fc.offAt(i)
		if o < last {
			return &CorruptError{Section: "offsets", Reason: fmt.Sprintf("not monotone at %d", i)}
		}
		last = o
	}
	if last != uint64(fc.arcs) {
		return &CorruptError{Section: "offsets", Reason: fmt.Sprintf("offsets[n] = %d, want arcs = %d", last, fc.arcs)}
	}
	if fc.boSect != nil {
		last = 0
		for i := 0; i <= fc.n; i++ {
			o := fc.byteOffAt(i)
			if o < last {
				return &CorruptError{Section: "byte-offsets", Reason: fmt.Sprintf("not monotone at %d", i)}
			}
			last = o
		}
		if last != uint64(len(fc.adjSect)) {
			return &CorruptError{Section: "byte-offsets", Reason: fmt.Sprintf("byte-offsets[n] = %d, want stream length %d", last, len(fc.adjSect))}
		}
	}
	return nil
}

// Close releases the file mapping. Adjacency views handed out earlier must
// not be used afterwards.
func (fc *FileCSR) Close() error {
	if fc.unmap == nil {
		return nil
	}
	u := fc.unmap
	fc.unmap, fc.mapped, fc.offSect, fc.adjSect, fc.boSect = nil, nil, nil, nil, nil
	return u()
}

func (fc *FileCSR) offAt(i int) uint64 {
	if fc.flags&flagOff32 != 0 {
		return uint64(binary.LittleEndian.Uint32(fc.offSect[4*i:]))
	}
	return binary.LittleEndian.Uint64(fc.offSect[8*i:])
}

func (fc *FileCSR) byteOffAt(i int) uint64 {
	if fc.flags&flagByte32 != 0 {
		return uint64(binary.LittleEndian.Uint32(fc.boSect[4*i:]))
	}
	return binary.LittleEndian.Uint64(fc.boSect[8*i:])
}

// Kind reports whether the graph is directed or undirected.
func (fc *FileCSR) Kind() Kind { return fc.kind }

// NumVertices returns n.
func (fc *FileCSR) NumVertices() int { return fc.n }

// NumArcs returns the number of stored adjacency entries.
func (fc *FileCSR) NumArcs() int { return fc.arcs }

// NumEdges returns m (an undirected edge counts once).
func (fc *FileCSR) NumEdges() int {
	if fc.kind == Undirected {
		return fc.arcs / 2
	}
	return fc.arcs
}

// OutDegree returns deg+(v) from the mapped offsets section.
func (fc *FileCSR) OutDegree(v V) int {
	return int(fc.offAt(int(v)+1) - fc.offAt(int(v)))
}

// AdjInto decodes the adjacency list of v from the mapped file into buf.
func (fc *FileCSR) AdjInto(v V, buf []V) []V {
	deg := fc.OutDegree(v)
	if deg == 0 {
		return buf[:0]
	}
	if cap(buf) < deg {
		buf = make([]V, deg)
	}
	buf = buf[:deg]
	if fc.flags&flagVarint != 0 {
		section := fc.adjSect[fc.byteOffAt(int(v)):fc.byteOffAt(int(v)+1)]
		out, n, ok := decodeDeltaList(section, deg, buf)
		if !ok || n != len(section) {
			panic(fmt.Sprintf("graph: corrupt varint adjacency in list %d of %s", v, fc.path))
		}
		return out
	}
	start := fc.offAt(int(v))
	for i := 0; i < deg; i++ {
		buf[i] = binary.LittleEndian.Uint32(fc.adjSect[4*(start+uint64(i)):])
	}
	return buf
}

// MemBytes returns 0: the mapping is file-backed and its pages are
// reclaimable, which is the entire point of the representation.
func (fc *FileCSR) MemBytes() int64 { return 0 }

// DiskBytes returns the on-disk size of the backing file.
func (fc *FileCSR) DiskBytes() int64 { return fc.size }

// Path returns the backing file's path.
func (fc *FileCSR) Path() string { return fc.path }

// ReprName identifies the file-backed representation.
func (fc *FileCSR) ReprName() string { return "file" }
