package graph

import "fmt"

// Store is the adjacency-access contract every graph representation
// satisfies: plain in-RAM CSR (*Graph), delta/varint-compressed CSR
// (*CompressedCSR), and file-backed CSR (*FileCSR). Consumers that only
// traverse adjacency lists — partitioning, local-CSR extraction, the
// engines' setup paths — accept a Store and therefore work with any
// representation.
//
// The contract is deliberately narrow: a Store answers "what are the sorted
// neighbours of v" and nothing about how those neighbours are laid out in
// host memory. The simulated model plane never sees a Store at all — by the
// time ranks exchange bytes over RMA windows, every representation has been
// decoded to the identical plain image (same offsets, same adjacency byte
// layout), so simulated costs, cache keys, and SimTime bits cannot depend
// on the host-side representation (DESIGN.md §9).
type Store interface {
	// Kind reports whether the graph is directed or undirected.
	Kind() Kind
	// NumVertices returns n.
	NumVertices() int
	// NumArcs returns the number of stored adjacency entries.
	NumArcs() int
	// NumEdges returns m (an undirected edge counts once).
	NumEdges() int
	// OutDegree returns deg+(v) in O(1).
	OutDegree(v V) int
	// AdjInto returns the sorted adjacency list of v. Representations that
	// hold the plain image return an aliased view and ignore buf; others
	// decode into buf (growing it only if cap(buf) < deg(v)) and return
	// buf[:deg(v)]. Either way the result is valid until the next AdjInto
	// call with the same buf and must not be modified.
	AdjInto(v V, buf []V) []V
	// MemBytes returns the resident host-memory footprint of the
	// representation (on-disk bytes for file-backed stores count as 0 —
	// mapped pages are reclaimable).
	MemBytes() int64
	// ReprName names the representation ("plain", "compressed", "file") for
	// logs and BENCH records.
	ReprName() string
}

// *Graph satisfies Store with aliased, zero-copy views.

// AdjInto returns the adjacency list of v as an aliased view; buf is
// ignored. It exists so *Graph satisfies Store.
func (g *Graph) AdjInto(v V, _ []V) []V { return g.Adj(v) }

// MemBytes returns the resident footprint of the plain CSR arrays.
func (g *Graph) MemBytes() int64 { return g.CSRSizeBytes() }

// ReprName identifies the plain representation.
func (g *Graph) ReprName() string { return "plain" }

// Materialize decodes any Store into a plain in-RAM *Graph. If st already
// is one it is returned unchanged (no copy).
func Materialize(st Store) *Graph {
	if g, ok := st.(*Graph); ok {
		return g
	}
	n := st.NumVertices()
	offsets := make([]uint64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + uint64(st.OutDegree(V(v)))
	}
	adj := make([]V, st.NumArcs())
	for v := 0; v < n; v++ {
		copy(adj[offsets[v]:offsets[v+1]], st.AdjInto(V(v), nil))
	}
	return &Graph{kind: st.Kind(), offsets: offsets, adj: adj}
}

// PlainBytes returns the in-memory size of the plain CSR image for a graph
// with n vertices and the given arc count: 8 bytes per offsets entry plus 4
// bytes per adjacency entry.
func PlainBytes(n, arcs int) int64 {
	return int64(n+1)*8 + int64(arcs)*4
}

// StoreUnderBudget returns the cheapest representation of g that fits under
// budget bytes of resident memory, preferring plain (fastest) over
// compressed (decode per access). A zero or negative budget means
// unconstrained and returns g itself. If even the compressed form exceeds
// the budget it is returned anyway — it is the smallest fully-resident
// representation available — along with an error describing the overshoot;
// callers wanting a hard failure can check the error, callers wanting
// best-effort can ignore it.
func StoreUnderBudget(g *Graph, budget int64) (Store, error) {
	if budget <= 0 || g.MemBytes() <= budget {
		return g, nil
	}
	c := CompressGraph(g)
	if c.MemBytes() <= budget {
		return c, nil
	}
	return c, fmt.Errorf("graph: no resident representation fits budget %d bytes (plain %d, compressed %d)",
		budget, g.MemBytes(), c.MemBytes())
}
