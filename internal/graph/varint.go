package graph

// Varint/delta adjacency codec. An adjacency list a[0] < a[1] < ... <
// a[d-1] is stored as LEB128-style unsigned varints: a[0] first, then the
// gaps a[i]-a[i-1]-1 (lists are strictly increasing, so subtracting one
// from each gap shaves a byte off dense runs — consecutive neighbours
// encode as a single 0x00). Each byte carries 7 payload bits, high bit set
// on continuation; values are V (uint32), so an element is 1–5 bytes.
//
// The codec is deliberately hand-rolled rather than encoding/binary's
// Uvarint: decodeList is on the engine's per-fetch path, and a fused
// bounds-checked loop with no per-element function call is what keeps the
// compressed decode at 0 allocs/op and competitive with a memcpy of the
// plain image.

// appendUvarint appends the varint encoding of x to dst.
func appendUvarint(dst []byte, x uint32) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

// appendDeltaList appends the varint/delta encoding of the strictly
// increasing list a to dst.
func appendDeltaList(dst []byte, a []V) []byte {
	if len(a) == 0 {
		return dst
	}
	dst = appendUvarint(dst, a[0])
	prev := a[0]
	for _, v := range a[1:] {
		dst = appendUvarint(dst, v-prev-1)
		prev = v
	}
	return dst
}

// decodeDeltaList decodes deg elements from data into buf, which is grown
// if needed, and returns the decoded list plus the number of bytes
// consumed. ok is false if data is malformed: truncated mid-element, a
// varint wider than 32 bits, or a delta that overflows V. The decoder never
// reads past len(data) — data is exactly the caller's section, and a
// corrupt length must fail loud, not read a neighbour's bytes.
func decodeDeltaList(data []byte, deg int, buf []V) (list []V, n int, ok bool) {
	if cap(buf) < deg {
		buf = make([]V, deg)
	}
	buf = buf[:deg]
	prev := uint32(0)
	pos := 0
	for i := 0; i < deg; i++ {
		var x uint32
		var shift uint
		for {
			if pos >= len(data) || shift > 28 {
				return nil, pos, false
			}
			b := data[pos]
			pos++
			if shift == 28 && b > 0x0f {
				return nil, pos, false // >32 significant bits
			}
			x |= uint32(b&0x7f) << shift
			if b < 0x80 {
				break
			}
			shift += 7
		}
		if i == 0 {
			prev = x
		} else {
			next := prev + x + 1
			if next <= prev { // wrapped past MaxUint32
				return nil, pos, false
			}
			prev = next
		}
		buf[i] = prev
	}
	return buf, pos, true
}
