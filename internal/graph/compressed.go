package graph

import (
	"fmt"
	"sort"
)

// CompressedAdj is a varint/delta-encoded adjacency plane: the lists of a
// CSR graph (or of one rank's local partition) stored as delta-coded
// varints with per-list byte offsets. It preserves the plain image's
// addressing — every list is identified by its arc offset in the plain
// layout — so consumers that address adjacency by plain byte offset (the
// RMA window plane does: adjacency reads are "deg*4 bytes at start*4") can
// decode from it without observing the representation.
//
// Offset arrays use 32-bit entries whenever the addressed space fits in
// uint32 (the 32-bit eligibility rule, DESIGN.md §9): plain arc offsets
// shrink to uint32 when arcs < 2^32, byte offsets when the encoded stream
// is under 4 GiB. Both hold for every graph this repository targets short
// of the paper's extreme scale, halving index footprint.
type CompressedAdj struct {
	lists int
	po32  []uint32 // plain arc offsets, length lists+1 (exactly one of po32/po64 set)
	po64  []uint64
	bo32  []uint32 // byte offsets into data, length lists+1
	bo64  []uint64
	data  []byte
}

// NewCompressedAdj encodes the lists whose plain arc offsets are off
// (length lists+1, off[0] == 0). list(i, buf) must return list i, strictly
// increasing, with off[i+1]-off[i] elements; buf is a scratch slice the
// callback may decode into (it is reused across calls).
func NewCompressedAdj(off []uint64, list func(i int, buf []V) []V) *CompressedAdj {
	lists := len(off) - 1
	ca := &CompressedAdj{lists: lists}
	arcs := off[lists]
	bo := make([]uint64, lists+1)
	// Sized for ~2 bytes/arc; append regrows if the graph compresses worse.
	data := make([]byte, 0, 2*arcs)
	var buf []V
	for i := 0; i < lists; i++ {
		bo[i] = uint64(len(data))
		a := list(i, buf)
		if uint64(len(a)) != off[i+1]-off[i] {
			panic(fmt.Sprintf("graph: list %d has %d elements, offsets say %d", i, len(a), off[i+1]-off[i]))
		}
		data = appendDeltaList(data, a)
		if cap(buf) < cap(a) {
			buf = a[:0]
		}
	}
	bo[lists] = uint64(len(data))
	ca.data = data
	if arcs < 1<<32 {
		ca.po32 = make([]uint32, lists+1)
		for i, o := range off {
			ca.po32[i] = uint32(o)
		}
	} else {
		ca.po64 = make([]uint64, lists+1)
		copy(ca.po64, off)
	}
	if uint64(len(data)) < 1<<32 {
		ca.bo32 = make([]uint32, lists+1)
		for i, o := range bo {
			ca.bo32[i] = uint32(o)
		}
	} else {
		ca.bo64 = bo
	}
	return ca
}

// Lists returns the number of encoded lists.
func (ca *CompressedAdj) Lists() int { return ca.lists }

func (ca *CompressedAdj) plainOffAt(i int) uint64 {
	if ca.po32 != nil {
		return uint64(ca.po32[i])
	}
	return ca.po64[i]
}

func (ca *CompressedAdj) byteOffAt(i int) uint64 {
	if ca.bo32 != nil {
		return uint64(ca.bo32[i])
	}
	return ca.bo64[i]
}

// Arcs returns the total number of encoded adjacency entries.
func (ca *CompressedAdj) Arcs() int { return int(ca.plainOffAt(ca.lists)) }

// DegreeOf returns the length of list i.
func (ca *CompressedAdj) DegreeOf(i int) int {
	return int(ca.plainOffAt(i+1) - ca.plainOffAt(i))
}

// PlainBytes returns the byte size of the plain adjacency image (4 bytes
// per arc) — the size the RMA window plane reports and charges for.
func (ca *CompressedAdj) PlainBytes() int { return 4 * ca.Arcs() }

// DataBytes returns the encoded stream size in bytes.
func (ca *CompressedAdj) DataBytes() int { return len(ca.data) }

// MemBytes returns the resident footprint: encoded stream plus both offset
// arrays.
func (ca *CompressedAdj) MemBytes() int64 {
	b := int64(len(ca.data))
	b += int64(len(ca.po32))*4 + int64(len(ca.po64))*8
	b += int64(len(ca.bo32))*4 + int64(len(ca.bo64))*8
	return b
}

// DecodeList decodes list i into buf (grown only if too small) and returns
// it. The result is valid until the next decode into the same buf.
func (ca *CompressedAdj) DecodeList(i int, buf []V) []V {
	deg := ca.DegreeOf(i)
	if deg == 0 {
		return buf[:0]
	}
	section := ca.data[ca.byteOffAt(i):ca.byteOffAt(i+1)]
	out, n, ok := decodeDeltaList(section, deg, buf)
	if !ok || n != len(section) {
		panic(fmt.Sprintf("graph: corrupt varint adjacency in list %d", i))
	}
	return out
}

// DecodeAt decodes the list whose plain image occupies size bytes at byte
// offset off (both in plain-image units: off = start*4, size = deg*4). The
// coordinates must address exactly one whole list — the engines always
// fetch whole vertex runs, and partial-run reads would let host
// representation leak into behaviour — otherwise DecodeAt panics.
func (ca *CompressedAdj) DecodeAt(off, size int, buf []V) []V {
	if off%4 != 0 || size%4 != 0 {
		panic(fmt.Sprintf("graph: unaligned compressed read (offset %d, size %d)", off, size))
	}
	start := uint64(off / 4)
	i := sort.Search(ca.lists, func(i int) bool { return ca.plainOffAt(i) >= start })
	if i >= ca.lists || ca.plainOffAt(i) != start || ca.DegreeOf(i) != size/4 {
		panic(fmt.Sprintf("graph: compressed read (offset %d, size %d) is not a whole list", off, size))
	}
	return ca.DecodeList(i, buf)
}

// CompressedCSR is a whole-graph Store backed by a CompressedAdj.
type CompressedCSR struct {
	kind Kind
	ca   *CompressedAdj
}

// CompressStore encodes st as varint/delta-compressed CSR.
func CompressStore(st Store) *CompressedCSR {
	n := st.NumVertices()
	off := make([]uint64, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + uint64(st.OutDegree(V(v)))
	}
	ca := NewCompressedAdj(off, func(i int, buf []V) []V {
		return st.AdjInto(V(i), buf)
	})
	return &CompressedCSR{kind: st.Kind(), ca: ca}
}

// CompressGraph is CompressStore for a plain graph.
func CompressGraph(g *Graph) *CompressedCSR { return CompressStore(g) }

// Kind reports whether the graph is directed or undirected.
func (c *CompressedCSR) Kind() Kind { return c.kind }

// NumVertices returns n.
func (c *CompressedCSR) NumVertices() int { return c.ca.Lists() }

// NumArcs returns the number of stored adjacency entries.
func (c *CompressedCSR) NumArcs() int { return c.ca.Arcs() }

// NumEdges returns m (an undirected edge counts once).
func (c *CompressedCSR) NumEdges() int {
	if c.kind == Undirected {
		return c.ca.Arcs() / 2
	}
	return c.ca.Arcs()
}

// OutDegree returns deg+(v) from the offset array, without decoding.
func (c *CompressedCSR) OutDegree(v V) int { return c.ca.DegreeOf(int(v)) }

// AdjInto decodes the adjacency list of v into buf.
func (c *CompressedCSR) AdjInto(v V, buf []V) []V { return c.ca.DecodeList(int(v), buf) }

// Adjacency returns the underlying compressed adjacency plane.
func (c *CompressedCSR) Adjacency() *CompressedAdj { return c.ca }

// MemBytes returns the resident footprint of the compressed form.
func (c *CompressedCSR) MemBytes() int64 { return c.ca.MemBytes() }

// ReprName identifies the compressed representation.
func (c *CompressedCSR) ReprName() string { return "compressed" }

// CompressionRatio returns encoded-adjacency bytes over plain-adjacency
// bytes (lower is better; 1.0 means no win).
func (c *CompressedCSR) CompressionRatio() float64 {
	if c.ca.PlainBytes() == 0 {
		return 1
	}
	return float64(c.ca.DataBytes()) / float64(c.ca.PlainBytes())
}
