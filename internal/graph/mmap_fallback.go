//go:build !(linux || darwin || freebsd || netbsd || openbsd)

package graph

import (
	"io"
	"os"
)

// mmapFile on platforms without syscall.Mmap degrades to one buffered read
// of the whole file; the FileCSR contract (lazy per-list decode, Close
// releases) is preserved, only the pages are heap-resident.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, nil, err
	}
	return b, func() error { return nil }, nil
}
