// Package tric reimplements the TriC baseline (Ghosh & Halappanavar,
// HPEC'20 — the 2020 Graph Challenge champion) the paper compares against
// (§IV-B): distributed-memory triangle counting in a per-vertex fashion
// with a blocking query–response exchange pattern over two-sided MPI.
//
// Where the paper's asynchronous engine *reads* remote adjacency lists with
// one-sided gets, TriC *ships the candidate sets*: for an edge (i,j) whose
// endpoint j lives on another rank, the owner of i sends the candidate
// neighbour list to the owner of j, which counts the closed triangles and
// responds. Every round is a bulk-synchronous all-to-all exchange, so each
// rank pays the straggler barrier cost — the synchronization overhead the
// paper identifies as TriC's limitation. The memory demand of staged
// candidate lists grows sharply for scale-free graphs; the TriC-Buffered
// variant caps per-peer buffers (16 MiB in the paper's runs) and drains the
// queues over multiple rounds, trading memory for extra synchronization.
package tric

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/p2p"
	"repro/internal/part"
	"repro/internal/rma"
)

// Options configure a TriC run.
type Options struct {
	Ranks int
	Model rma.CostModel
	// Workers bounds concurrent superstep execution on the host; 0
	// selects GOMAXPROCS. Results are bit-identical at any worker count.
	Workers int
	Method  intersect.Method
	// Buffered caps the bytes of queries a rank may send to one peer per
	// round (the TriC-Buffered variant). 0 means unbuffered: all queries
	// go out in a single exchange.
	Buffered    bool
	BufferBytes int
	// QueryCostNS is the receiver-side processing charge per query:
	// dispatching the request, locating the target vertex, generating
	// and accounting the response. The paper's §I observation — TriC's
	// "synchronization overheads being as costly as communication" —
	// calibrates the default to 2α (two network latencies' worth of
	// handling per query-response pair, 4 µs). Without this charge the
	// aggregated buffered variant would ship candidate volume at pure
	// bandwidth cost, which no measured TriC deployment achieves.
	QueryCostNS float64
	// Faults installs a deterministic fault schedule on the exchange
	// substrate (see lcc.Options); dropped messages are retransmitted by
	// the sender, results are unchanged.
	Faults *fault.Spec
}

func (o Options) withDefaults() Options {
	if o.Ranks == 0 {
		o.Ranks = 1
	}
	if o.Model == (rma.CostModel{}) {
		o.Model = rma.DefaultCostModel()
	}
	if o.Buffered && o.BufferBytes == 0 {
		o.BufferBytes = 16 << 20 // the paper's 16 MiB cap
	}
	if o.QueryCostNS == 0 {
		o.QueryCostNS = 2 * o.Model.RemoteLatency
	}
	return o
}

// Result is the output of a TriC run.
type Result struct {
	LCC        []float64
	Triangles  int64
	SumT       int64
	SimTime    float64 // slowest rank across all supersteps, ns
	Supersteps int
	// MaxQueuedBytes is the peak bytes of staged queries on any rank —
	// the memory pressure that motivates the buffered variant.
	MaxQueuedBytes int64
	PerRank        []p2p.Counters
}

// query asks the owner of vj to count |candidates ∩ adj'(vj)| and credit
// the result to vertex vi. The modeled wire format is
// [vi, vj, len(candidates), candidates...] as uint32 words; the payload
// itself travels by reference (p2p.SendPayload) with wireSize charged, so
// the simulation does not burn wall-clock time copying the quadratic
// candidate volume that makes real TriC run out of memory.
type query struct {
	vi, vj graph.V
	cands  []graph.V
}

func (q query) wireSize() int { return 4 * (3 + len(q.cands)) }

// queryBatch is the aggregated payload of the buffered variant.
type queryBatch []query

func (b queryBatch) wireSize() int {
	s := 0
	for _, q := range b {
		s += q.wireSize()
	}
	return s
}

// response credits count triangles to vertex vi; responses are always
// batched per destination ([vi, count] word pairs on the wire).
type response struct {
	vi    graph.V
	count graph.V
}

type responseBatch []response

func (b responseBatch) wireSize() int { return 8 * len(b) }

// Run executes TriC on g with p ranks over the simulated BSP world.
func Run(g graph.Store, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	n := g.NumVertices()
	pt, err := part.New(part.Block, n, opt.Ranks)
	if err != nil {
		return nil, err
	}
	locals := part.ExtractAll(g, pt)
	world := p2p.NewWorldWorkers(opt.Ranks, opt.Model, opt.Workers)
	world.SetFaults(opt.Faults)

	perVertexT := make([]int64, n)
	res := &Result{LCC: make([]float64, n)}

	// Per-rank staged query queues (bytes staged per destination) and a
	// running peak for the memory statistic.
	type rankState struct {
		pendingQ [][]query // per destination
		queuedB  int64
	}
	states := make([]*rankState, opt.Ranks)
	for i := range states {
		states[i] = &rankState{pendingQ: make([][]query, opt.Ranks)}
	}

	// Superstep 1: local counting and query generation.
	world.Superstep(func(r *p2p.Rank) {
		lc := locals[r.ID()]
		st := states[r.ID()]
		its := intersect.GetScratch()
		defer intersect.PutScratch(its)
		for li := 0; li < lc.NumLocal(); li++ {
			vi := pt.VertexAt(r.ID(), li)
			adjI := lc.AdjOf(li)
			r.Compute(len(adjI))
			for _, vj := range adjI {
				owner := pt.Owner(vj)
				if owner == r.ID() {
					adjJ := lc.AdjOf(pt.LocalIndex(vj))
					if g.Kind() == graph.Undirected {
						adjJ = intersect.UpperSlice(adjJ, vj)
					}
					c, ops := its.Count(opt.Method, adjI, adjJ)
					r.Compute(ops + 4)
					perVertexT[vi] += int64(c)
					continue
				}
				// Remote endpoint: ship the candidate set (only the
				// upper-triangle suffix is needed for undirected
				// graphs, §II-C).
				cands := adjI
				if g.Kind() == graph.Undirected {
					cands = intersect.UpperSlice(adjI, vj)
				}
				q := query{vi: vi, vj: vj, cands: cands}
				st.pendingQ[owner] = append(st.pendingQ[owner], q)
				st.queuedB += int64(q.wireSize())
				r.Compute(len(cands)) // staging copy
			}
		}
	})
	// Queues only grow during the generation superstep, so the per-rank
	// value now IS the peak; reduce host-side (superstep bodies run
	// concurrently and must not contend on a shared maximum).
	for _, st := range states {
		if st.queuedB > res.MaxQueuedBytes {
			res.MaxQueuedBytes = st.queuedB
		}
	}

	// Rounds: drain query queues (respecting the buffer cap), process
	// received queries, return responses, absorb counts. Repeat until no
	// rank holds pending queries and no messages were exchanged.
	pendingResponses := make([][][]response, opt.Ranks)
	for i := range pendingResponses {
		pendingResponses[i] = make([][]response, opt.Ranks)
	}
	// Per-rank activity flags, OR-reduced host-side after each round:
	// superstep bodies run concurrently, so a shared bool would be a
	// write-write race (benign in value, flagged by the race detector).
	act := make([]bool, opt.Ranks)
	for {
		for i := range act {
			act[i] = false
		}
		// Send a bounded batch of queries plus all pending responses.
		world.Superstep(func(r *p2p.Rank) {
			st := states[r.ID()]
			for dst := 0; dst < opt.Ranks; dst++ {
				// Responses first: they are small and unblock peers.
				if rs := pendingResponses[r.ID()][dst]; len(rs) > 0 {
					batch := responseBatch(rs)
					r.SendPayload(dst, batch, batch.wireSize())
					pendingResponses[r.ID()][dst] = nil
					act[r.ID()] = true
				}
				if opt.Buffered {
					// TriC-Buffered: aggregate queries into one
					// fixed-size buffer per peer per round (the
					// paper caps it at 16 MiB), trading extra
					// rounds for amortized message overheads.
					budget := opt.BufferBytes
					var batch queryBatch
					for len(st.pendingQ[dst]) > 0 {
						q := st.pendingQ[dst][0]
						if len(batch) > 0 && q.wireSize() > budget {
							break
						}
						budget -= q.wireSize()
						batch = append(batch, q)
						st.pendingQ[dst] = st.pendingQ[dst][1:]
						st.queuedB -= int64(q.wireSize())
					}
					if len(batch) > 0 {
						r.SendPayload(dst, batch, batch.wireSize())
						act[r.ID()] = true
					}
					continue
				}
				// Plain TriC: one query-response message per remote
				// edge. Each message pays the two-sided matching
				// overhead (§II-E), and ranks owning hub vertices
				// receive disproportionately many of them — the
				// straggler every barrier then imposes on the whole
				// world. This fine-grained pattern plus the blocking
				// exchanges is the synchronization cost the paper's
				// asynchronous design removes (§I, §IV-B).
				for _, q := range st.pendingQ[dst] {
					r.SendPayload(dst, q, q.wireSize())
					st.queuedB -= int64(q.wireSize())
					act[r.ID()] = true
				}
				st.pendingQ[dst] = nil
			}
		})

		// Process what arrived: queries become responses (for the next
		// round); responses fold into per-vertex counts.
		world.Superstep(func(r *p2p.Rank) {
			lc := locals[r.ID()]
			its := intersect.GetScratch()
			defer intersect.PutScratch(its)
			answer := func(q query, from int) {
				adjJ := lc.AdjOf(pt.LocalIndex(q.vj))
				if g.Kind() == graph.Undirected {
					adjJ = intersect.UpperSlice(adjJ, q.vj)
				}
				c, ops := its.Count(opt.Method, q.cands, adjJ)
				// Unpacking the candidate list costs a pass over it,
				// plus the fixed per-query handling charge.
				r.Compute(ops + len(q.cands) + 4)
				r.AdvanceBy(opt.QueryCostNS)
				pendingResponses[r.ID()][from] = append(
					pendingResponses[r.ID()][from],
					response{vi: q.vi, count: graph.V(c)})
			}
			for _, m := range r.Inbox() {
				switch pl := m.Payload.(type) {
				case responseBatch:
					for _, resp := range pl {
						perVertexT[resp.vi] += int64(resp.count)
					}
					r.Compute(2 * len(pl))
				case query:
					answer(pl, m.From)
				case queryBatch:
					for _, q := range pl {
						answer(q, m.From)
					}
				default:
					panic(fmt.Sprintf("tric: unknown payload type %T", pl))
				}
				act[r.ID()] = true
			}
		})

		active := false
		for _, a := range act {
			active = active || a
		}
		if !active {
			break
		}
	}

	// Final reduction of the global triangle count (TriC reports the
	// global value with an MPI_Reduce).
	partial := make([]int64, opt.Ranks)
	for v := 0; v < n; v++ {
		partial[pt.Owner(graph.V(v))] += perVertexT[v]
	}
	res.SumT = world.AllreduceSum(partial)
	res.Triangles = lcc.TriangleCount(g.Kind(), res.SumT)
	for v := 0; v < n; v++ {
		res.LCC[v] = lcc.Score(g.Kind(), perVertexT[v], g.OutDegree(graph.V(v)))
	}
	res.SimTime = world.MaxClock()
	res.Supersteps = world.Steps()
	for _, r := range world.Ranks() {
		res.PerRank = append(res.PerRank, r.Counters())
	}
	return res, nil
}

// MustRun is Run for known-valid options; it panics on error.
func MustRun(g graph.Store, opt Options) *Result {
	r, err := Run(g, opt)
	if err != nil {
		panic(fmt.Sprintf("tric: %v", err))
	}
	return r
}
