package tric

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/rma"
)

func randomGraph(kind graph.Kind, n, m int, seed uint64) *graph.Graph {
	rng := rand.New(rand.NewPCG(seed, seed+101))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.V(rng.IntN(n)), Dst: graph.V(rng.IntN(n))}
	}
	return graph.MustBuild(kind, n, edges)
}

func lccClose(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			return false
		}
	}
	return true
}

func TestTriCMatchesSharedReference(t *testing.T) {
	for _, kind := range []graph.Kind{graph.Undirected, graph.Directed} {
		for seed := uint64(1); seed <= 3; seed++ {
			g := randomGraph(kind, 100, 700, seed)
			want := lcc.SharedLCC(g, intersect.MethodHybrid)
			for _, p := range []int{1, 2, 5, 8} {
				got, err := Run(g, Options{Ranks: p, Method: intersect.MethodHybrid})
				if err != nil {
					t.Fatalf("%v seed %d p=%d: %v", kind, seed, p, err)
				}
				if got.Triangles != want.Triangles {
					t.Errorf("%v seed %d p=%d: Triangles = %d, want %d",
						kind, seed, p, got.Triangles, want.Triangles)
				}
				if !lccClose(got.LCC, want.LCC) {
					t.Errorf("%v seed %d p=%d: LCC mismatch", kind, seed, p)
				}
			}
		}
	}
}

func TestTriCBufferedMatchesUnbuffered(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, graph.Undirected, 4))
	plain := MustRun(g, Options{Ranks: 4, Method: intersect.MethodHybrid})
	buffered := MustRun(g, Options{Ranks: 4, Method: intersect.MethodHybrid, Buffered: true, BufferBytes: 1 << 12})
	if plain.Triangles != buffered.Triangles {
		t.Fatalf("buffered Triangles = %d, want %d", buffered.Triangles, plain.Triangles)
	}
	if !lccClose(plain.LCC, buffered.LCC) {
		t.Error("buffered LCC differs")
	}
	// Smaller buffers force more rounds.
	if buffered.Supersteps <= plain.Supersteps {
		t.Errorf("buffered supersteps %d not above unbuffered %d", buffered.Supersteps, plain.Supersteps)
	}
}

func TestTriCMatchesAsyncEngine(t *testing.T) {
	// Cross-validation of the two independent distributed implementations.
	g := gen.RMAT(gen.DefaultRMAT(9, 8, graph.Undirected, 5))
	a, err := lcc.Run(g, lcc.Options{Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	b := MustRun(g, Options{Ranks: 4, Method: intersect.MethodHybrid})
	if a.Triangles != b.Triangles {
		t.Fatalf("async %d vs TriC %d triangles", a.Triangles, b.Triangles)
	}
	if !lccClose(a.LCC, b.LCC) {
		t.Error("async and TriC LCC disagree")
	}
}

func TestTriCSlowerThanAsyncOnScaleFree(t *testing.T) {
	// The paper's headline comparison (§IV-D-2): on scale-free graphs the
	// asynchronous RMA engine beats TriC by a large factor.
	g := gen.RMAT(gen.DefaultRMAT(11, 16, graph.Undirected, 6))
	a, err := lcc.Run(g, lcc.Options{Ranks: 8, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	b := MustRun(g, Options{Ranks: 8, Method: intersect.MethodHybrid})
	if b.SimTime <= a.SimTime {
		t.Errorf("TriC (%.1fms) not slower than async (%.1fms) on a scale-free graph",
			b.SimTime/1e6, a.SimTime/1e6)
	}
}

func TestTriCMemoryPressure(t *testing.T) {
	// Staged candidate lists demand far more memory on hub-heavy graphs
	// than the per-rank CSR partition itself (the OOM motivation for
	// TriC-Buffered).
	g := gen.RMAT(gen.DefaultRMAT(10, 16, graph.Undirected, 7))
	res := MustRun(g, Options{Ranks: 8, Method: intersect.MethodHybrid})
	perRankCSR := g.CSRSizeBytes() / 8
	if res.MaxQueuedBytes < perRankCSR {
		t.Errorf("MaxQueuedBytes = %d below per-rank CSR %d; expected heavy staging",
			res.MaxQueuedBytes, perRankCSR)
	}
}

func TestTriCSuperstepsCounted(t *testing.T) {
	g := randomGraph(graph.Undirected, 50, 200, 9)
	res := MustRun(g, Options{Ranks: 4, Method: intersect.MethodHybrid})
	if res.Supersteps < 3 {
		t.Errorf("Supersteps = %d, want >= 3 (queries, responses, absorb)", res.Supersteps)
	}
	if res.SimTime <= 0 {
		t.Error("SimTime not charged")
	}
	if len(res.PerRank) != 4 {
		t.Errorf("PerRank size %d, want 4", len(res.PerRank))
	}
}

func TestTriCBarrierCostVisible(t *testing.T) {
	// Every rank must have paid barrier waits: the synchronization
	// overhead the paper's async design removes.
	g := randomGraph(graph.Undirected, 100, 600, 10)
	res := MustRun(g, Options{Ranks: 4, Method: intersect.MethodHybrid})
	for i, c := range res.PerRank {
		if c.BarrierWait <= 0 && c.ComputeTime > 0 {
			t.Errorf("rank %d: BarrierWait = %v, want > 0", i, c.BarrierWait)
		}
	}
}

func TestTriCSingleRankNoComm(t *testing.T) {
	g := randomGraph(graph.Undirected, 60, 300, 11)
	res := MustRun(g, Options{Ranks: 1, Method: intersect.MethodHybrid})
	want := lcc.SharedLCC(g, intersect.MethodHybrid)
	if res.Triangles != want.Triangles {
		t.Errorf("Triangles = %d, want %d", res.Triangles, want.Triangles)
	}
	if res.PerRank[0].MsgsSent != 0 {
		t.Errorf("single rank sent %d messages", res.PerRank[0].MsgsSent)
	}
}

func TestTriCOptionsDefaults(t *testing.T) {
	o := Options{Buffered: true}.withDefaults()
	if o.BufferBytes != 16<<20 {
		t.Errorf("default buffer = %d, want 16 MiB (the paper's cap)", o.BufferBytes)
	}
	if o.Ranks != 1 {
		t.Errorf("default ranks = %d, want 1", o.Ranks)
	}
	if o.Model == (rma.CostModel{}) {
		t.Error("default model not applied")
	}
	if want := 2 * o.Model.RemoteLatency; o.QueryCostNS != want {
		t.Errorf("QueryCostNS = %v, want 2α = %v", o.QueryCostNS, want)
	}
}

func TestTriCDirectedBuffered(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, graph.Directed, 12))
	want := lcc.SharedLCC(g, intersect.MethodHybrid)
	res := MustRun(g, Options{Ranks: 6, Method: intersect.MethodHybrid, Buffered: true, BufferBytes: 1 << 11})
	if res.Triangles != want.Triangles {
		t.Errorf("directed buffered Triangles = %d, want %d", res.Triangles, want.Triangles)
	}
	if !lccClose(res.LCC, want.LCC) {
		t.Error("directed buffered LCC mismatch")
	}
}

func TestTriCQueryCostSlowsRun(t *testing.T) {
	g := randomGraph(graph.Undirected, 200, 1200, 13)
	cheap := MustRun(g, Options{Ranks: 4, Method: intersect.MethodHybrid, QueryCostNS: 1})
	costly := MustRun(g, Options{Ranks: 4, Method: intersect.MethodHybrid, QueryCostNS: 50000})
	if costly.SimTime <= cheap.SimTime {
		t.Errorf("higher per-query cost did not slow the run: %v vs %v", costly.SimTime, cheap.SimTime)
	}
	if costly.Triangles != cheap.Triangles {
		t.Error("query cost changed the result")
	}
}

func TestTriCSlowerThanAsyncEverywhere(t *testing.T) {
	// The paper's central comparison must hold in both variants.
	g := gen.RMAT(gen.DefaultRMAT(10, 16, graph.Undirected, 14))
	a, err := lcc.Run(g, lcc.Options{Ranks: 8, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	plain := MustRun(g, Options{Ranks: 8, Method: intersect.MethodHybrid})
	buf := MustRun(g, Options{Ranks: 8, Method: intersect.MethodHybrid, Buffered: true, BufferBytes: 64 << 10})
	if plain.SimTime <= a.SimTime {
		t.Errorf("plain TriC (%.1fms) not slower than async (%.1fms)", plain.SimTime/1e6, a.SimTime/1e6)
	}
	if buf.SimTime <= a.SimTime {
		t.Errorf("TriC-Buffered (%.1fms) not slower than async (%.1fms)", buf.SimTime/1e6, a.SimTime/1e6)
	}
}
