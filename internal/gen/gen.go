// Package gen provides deterministic, seeded graph generators that stand in
// for the datasets the paper evaluates on (SNAP, KONECT, WebGraph) and for
// its synthetic R-MAT inputs.
//
// The container this reproduction runs in is offline, so the real datasets
// cannot be downloaded; DESIGN.md §1 maps each paper graph to a generator
// whose degree-distribution *type* matches (power-law for Orkut/LiveJournal/
// Skitter/uk-2005/wiki-en, uniform for the Fig. 4 baseline, social-circle
// structure for Facebook circles). The caching and scaling phenomena the
// paper studies depend on exactly those distribution types.
package gen

import (
	"math/rand/v2"

	"repro/internal/graph"
)

// newRNG returns the deterministic RNG used by every generator.
func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// RMATParams control the recursive-matrix generator of Chakrabarti et al.
// The paper generates graphs with a=0.57, b=c=0.19, d=0.05 (§IV-A), which
// yields a heavily skewed, close-to-scale-free degree distribution.
type RMATParams struct {
	Scale      int     // 2^Scale vertices
	EdgeFactor int     // 2^(Scale+log2(EdgeFactor)) directed edge samples
	A, B, C    float64 // quadrant probabilities; D = 1-A-B-C
	Kind       graph.Kind
	Seed       uint64
	// Noise perturbs the quadrant probabilities at each recursion level,
	// the standard "smoothing" that avoids staircase artifacts. 0 disables.
	Noise float64
}

// DefaultRMAT returns the paper's R-MAT parameterization for the given
// scale and edge factor.
func DefaultRMAT(scale, edgeFactor int, kind graph.Kind, seed uint64) RMATParams {
	return RMATParams{
		Scale: scale, EdgeFactor: edgeFactor,
		A: 0.57, B: 0.19, C: 0.19,
		Kind: kind, Seed: seed, Noise: 0.05,
	}
}

// RMAT generates an R-MAT graph: 2^Scale vertices and EdgeFactor·2^Scale
// edge samples placed by recursive quadrant descent. Duplicate edges and
// self-loops are collapsed by the CSR builder, so the resulting edge count
// is slightly below the nominal value, as with the original generator.
func RMAT(p RMATParams) *graph.Graph {
	n := 1 << p.Scale
	target := n * p.EdgeFactor
	rng := newRNG(p.Seed)
	edges := make([]graph.Edge, 0, target)
	d := 1 - p.A - p.B - p.C
	for i := 0; i < target; i++ {
		u, v := 0, 0
		a, b, c := p.A, p.B, p.C
		for bit := p.Scale - 1; bit >= 0; bit-- {
			// Optional per-level noise, renormalized.
			aa, bb, cc, dd := a, b, c, d
			if p.Noise > 0 {
				aa *= 1 - p.Noise + 2*p.Noise*rng.Float64()
				bb *= 1 - p.Noise + 2*p.Noise*rng.Float64()
				cc *= 1 - p.Noise + 2*p.Noise*rng.Float64()
				dd *= 1 - p.Noise + 2*p.Noise*rng.Float64()
				s := aa + bb + cc + dd
				aa, bb, cc, dd = aa/s, bb/s, cc/s, dd/s
			}
			r := rng.Float64()
			switch {
			case r < aa:
				// top-left: no bits set
			case r < aa+bb:
				v |= 1 << bit
			case r < aa+bb+cc:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		edges = append(edges, graph.Edge{Src: graph.V(u), Dst: graph.V(v)})
	}
	return graph.MustBuild(p.Kind, n, edges)
}

// ErdosRenyi generates a uniform random graph with n vertices and m edge
// samples, the "Uniform" baseline of Fig. 4.
func ErdosRenyi(n, m int, kind graph.Kind, seed uint64) *graph.Graph {
	rng := newRNG(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.V(rng.IntN(n)), Dst: graph.V(rng.IntN(n))}
	}
	return graph.MustBuild(kind, n, edges)
}

// BarabasiAlbert generates a preferential-attachment graph: each new vertex
// attaches m edges to existing vertices chosen proportionally to degree.
// This produces the dense power-law structure of social graphs like Orkut.
// The repeated-endpoints trick (sampling from the flat endpoint list) gives
// exact degree-proportional sampling in O(1) per edge.
func BarabasiAlbert(n, m int, kind graph.Kind, seed uint64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	if n < m+1 {
		n = m + 1
	}
	rng := newRNG(seed)
	// endpoints holds every arc endpoint ever created; sampling uniformly
	// from it is sampling vertices proportionally to their current degree.
	endpoints := make([]graph.V, 0, 2*n*m)
	edges := make([]graph.Edge, 0, n*m)
	// Seed clique over the first m+1 vertices.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			edges = append(edges, graph.Edge{Src: graph.V(i), Dst: graph.V(j)})
			endpoints = append(endpoints, graph.V(i), graph.V(j))
		}
	}
	for v := m + 1; v < n; v++ {
		for k := 0; k < m; k++ {
			t := endpoints[rng.IntN(len(endpoints))]
			edges = append(edges, graph.Edge{Src: graph.V(v), Dst: t})
			endpoints = append(endpoints, graph.V(v), t)
		}
	}
	return graph.MustBuild(kind, n, edges)
}

// EgoNetParams configure the social-circles generator that stands in for
// the Facebook circles dataset (4,039 vertices / 88,234 edges) used by the
// paper's Fig. 1 (right) and Fig. 5.
type EgoNetParams struct {
	Circles      int     // number of ego circles
	MeanSize     int     // mean circle size
	IntraP       float64 // edge probability inside a circle
	BridgeFactor int     // random inter-circle edges per circle
	Seed         uint64
}

// DefaultEgoNet approximates the Facebook circles dataset's size and
// density (~4k vertices, ~88k edges).
func DefaultEgoNet(seed uint64) EgoNetParams {
	return EgoNetParams{Circles: 28, MeanSize: 145, IntraP: 0.26, BridgeFactor: 60, Seed: seed}
}

// EgoNet generates a union of dense circles (ego networks) with sparse
// bridges, each circle centered on a hub connected to all its members. The
// hubs reproduce the high-degree vertices whose adjacency lists dominate
// remote reads in Fig. 1/5.
func EgoNet(p EgoNetParams) *graph.Graph {
	rng := newRNG(p.Seed)
	type circle struct{ lo, hi int } // member id range [lo,hi)
	var circles []circle
	n := 0
	for c := 0; c < p.Circles; c++ {
		size := p.MeanSize/2 + rng.IntN(p.MeanSize)
		if size < 3 {
			size = 3
		}
		circles = append(circles, circle{n, n + size})
		n += size
	}
	var edges []graph.Edge
	for _, c := range circles {
		hub := c.lo
		for v := c.lo + 1; v < c.hi; v++ {
			edges = append(edges, graph.Edge{Src: graph.V(hub), Dst: graph.V(v)})
		}
		for u := c.lo + 1; u < c.hi; u++ {
			for v := u + 1; v < c.hi; v++ {
				if rng.Float64() < p.IntraP {
					edges = append(edges, graph.Edge{Src: graph.V(u), Dst: graph.V(v)})
				}
			}
		}
	}
	for range circles {
		for b := 0; b < p.BridgeFactor; b++ {
			u := graph.V(rng.IntN(n))
			v := graph.V(rng.IntN(n))
			edges = append(edges, graph.Edge{Src: u, Dst: v})
		}
	}
	// Scatter vertex ids: real ego-net datasets have no id locality, so a
	// contiguous 1D partition cuts across every circle. Without this,
	// block partitioning would keep each circle on one rank and the
	// Fig. 1/5 remote-reuse pattern would vanish.
	perm := make([]graph.V, n)
	for i := range perm {
		perm[i] = graph.V(i)
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	for i := range edges {
		edges[i] = graph.Edge{Src: perm[edges[i].Src], Dst: perm[edges[i].Dst]}
	}
	return graph.MustBuild(graph.Undirected, n, edges)
}
