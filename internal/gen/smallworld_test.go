package gen_test

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/lcc"
)

func TestWattsStrogatzLattice(t *testing.T) {
	// beta=0: a pure ring lattice with n·k/2 edges and uniform degree k.
	g := gen.WattsStrogatz(100, 6, 0, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 100*6/2 {
		t.Fatalf("lattice has %d edges, want %d", g.NumEdges(), 300)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.V(v)); d != 6 {
			t.Fatalf("lattice vertex %d has degree %d, want 6", v, d)
		}
	}
}

func TestWattsStrogatzLatticeLCCClosedForm(t *testing.T) {
	// The beta=0 clustering coefficient is 3(k-2)/(4(k-1)) for every
	// vertex; this doubles as an end-to-end check of the LCC engine.
	for _, k := range []int{4, 6, 10} {
		g := gen.WattsStrogatz(200, k, 0, 1)
		res := lcc.SharedLCC(g, intersect.MethodHybrid)
		want := gen.RingLatticeLCC(k)
		for v := 0; v < g.NumVertices(); v++ {
			if math.Abs(res.LCC[v]-want) > 1e-12 {
				t.Fatalf("k=%d: lattice LCC[%d] = %g, closed form %g", k, v, res.LCC[v], want)
			}
		}
	}
}

func TestWattsStrogatzRewiringLowersLCC(t *testing.T) {
	// The small-world result: clustering decays as beta grows.
	avg := func(beta float64) float64 {
		g := gen.WattsStrogatz(400, 8, beta, 7)
		res := lcc.SharedLCC(g, intersect.MethodHybrid)
		s := 0.0
		for _, c := range res.LCC {
			s += c
		}
		return s / float64(len(res.LCC))
	}
	c0, cHalf, c1 := avg(0), avg(0.5), avg(1)
	if !(c0 > cHalf && cHalf > c1) {
		t.Fatalf("LCC not decreasing in beta: C(0)=%g, C(0.5)=%g, C(1)=%g", c0, cHalf, c1)
	}
	if c1 > 0.2*c0 {
		t.Fatalf("full rewiring kept too much clustering: C(1)=%g vs C(0)=%g", c1, c0)
	}
}

func TestWattsStrogatzDeterministic(t *testing.T) {
	a := gen.WattsStrogatz(128, 6, 0.3, 42)
	b := gen.WattsStrogatz(128, 6, 0.3, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		av, bv := a.Adj(graph.V(v)), b.Adj(graph.V(v))
		if len(av) != len(bv) {
			t.Fatalf("same seed, vertex %d degree differs", v)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("same seed, vertex %d adjacency differs", v)
			}
		}
	}
	c := gen.WattsStrogatz(128, 6, 0.3, 43)
	same := true
	for v := 0; v < a.NumVertices() && same; v++ {
		av, cv := a.Adj(graph.V(v)), c.Adj(graph.V(v))
		if len(av) != len(cv) {
			same = false
			break
		}
		for i := range av {
			if av[i] != cv[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestWattsStrogatzParameterClamping(t *testing.T) {
	// Odd k is rounded up; k >= n is clamped down; the result must stay
	// a valid simple graph.
	g := gen.WattsStrogatz(10, 9, 0.2, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g = gen.WattsStrogatz(5, 12, 0, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRingLatticeLCC(t *testing.T) {
	cases := []struct {
		k    int
		want float64
	}{
		{2, 0},
		{4, 0.5},
		{6, 0.6},
		{1, 0},
	}
	for _, c := range cases {
		if got := gen.RingLatticeLCC(c.k); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("gen.RingLatticeLCC(%d) = %g, want %g", c.k, got, c.want)
		}
	}
}

func TestKroneckerBasic(t *testing.T) {
	g := gen.Kronecker(10, 0.57, 0.19, 0.19, 0.05, graph.Undirected, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("Kronecker scale 10 has %d vertices, want 1024", g.NumVertices())
	}
	if g.NumEdges() == 0 {
		t.Fatal("Kronecker generated no edges")
	}
	// Skewed initiator ⇒ skewed degrees: the max degree must far exceed
	// the mean.
	mean := float64(g.NumArcs()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 4*mean {
		t.Fatalf("Kronecker degree distribution too flat: max %d vs mean %.1f", g.MaxDegree(), mean)
	}
}

func TestKroneckerDeterministic(t *testing.T) {
	a := gen.Kronecker(8, 0.5, 0.2, 0.2, 0.1, graph.Directed, 9)
	b := gen.Kronecker(8, 0.5, 0.2, 0.2, 0.1, graph.Directed, 9)
	if a.NumArcs() != b.NumArcs() {
		t.Fatalf("same seed, different arc counts: %d vs %d", a.NumArcs(), b.NumArcs())
	}
}

func TestKroneckerDensityTracksInitiatorSum(t *testing.T) {
	// Expected edges = (a+b+c+d)^scale before dedup; a larger initiator
	// sum must produce a denser graph.
	sparse := gen.Kronecker(9, 0.4, 0.15, 0.15, 0.05, graph.Undirected, 4) // sum 0.75... rises slowly
	dense := gen.Kronecker(9, 0.57, 0.19, 0.19, 0.05, graph.Undirected, 4) // sum 1.0
	if sparse.NumEdges() >= dense.NumEdges() {
		t.Fatalf("sparse initiator gave %d edges >= dense %d", sparse.NumEdges(), dense.NumEdges())
	}
}
