package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestRMATDeterministic(t *testing.T) {
	p := DefaultRMAT(10, 8, graph.Undirected, 99)
	a := RMAT(p)
	b := RMAT(p)
	if a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() {
		t.Fatalf("RMAT not deterministic: %d/%d vs %d/%d",
			a.NumVertices(), a.NumArcs(), b.NumVertices(), b.NumArcs())
	}
	for v := 0; v < a.NumVertices(); v++ {
		av, bv := a.Adj(graph.V(v)), b.Adj(graph.V(v))
		if len(av) != len(bv) {
			t.Fatalf("adjacency of %d differs between runs", v)
		}
	}
}

func TestRMATSeedChangesGraph(t *testing.T) {
	a := RMAT(DefaultRMAT(10, 8, graph.Undirected, 1))
	b := RMAT(DefaultRMAT(10, 8, graph.Undirected, 2))
	if a.NumArcs() == b.NumArcs() && a.MaxDegree() == b.MaxDegree() {
		// Extremely unlikely for both to coincide if the seed matters.
		t.Errorf("different seeds produced suspiciously identical graphs")
	}
}

func TestRMATValidAndSkewed(t *testing.T) {
	g := RMAT(DefaultRMAT(12, 16, graph.Undirected, 7))
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := g.NumVertices(), 1<<12; got != want {
		t.Errorf("NumVertices = %d, want %d", got, want)
	}
	// The paper's parameterization is heavily skewed: the Gini coefficient
	// must be far above a uniform graph's.
	if gi := graph.GiniCoefficient(g); gi < 0.35 {
		t.Errorf("R-MAT Gini = %.3f, want skewed (>= 0.35)", gi)
	}
	if share := graph.TopDegreeShare(g, 0.10); share < 0.4 {
		t.Errorf("R-MAT top-10%% share = %.2f, want >= 0.4 (paper reports 91.9%% at full scale)", share)
	}
}

func TestErdosRenyiUniform(t *testing.T) {
	g := ErdosRenyi(1<<12, 1<<16, graph.Undirected, 5)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if gi := graph.GiniCoefficient(g); gi > 0.25 {
		t.Errorf("Erdos-Renyi Gini = %.3f, want near-uniform (<= 0.25)", gi)
	}
	share := graph.TopDegreeShare(g, 0.10)
	if share < 0.08 || share > 0.25 {
		t.Errorf("uniform top-10%% share = %.2f, want ~0.12 (paper: 11.7%%)", share)
	}
}

func TestBarabasiAlbertPowerLaw(t *testing.T) {
	g := BarabasiAlbert(4096, 8, graph.Undirected, 3)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if gi := graph.GiniCoefficient(g); gi < 0.3 {
		t.Errorf("BA Gini = %.3f, want skewed", gi)
	}
	// Preferential attachment: max degree far above the mean.
	if md, avg := g.MaxDegree(), graph.AverageDegree(g); float64(md) < 5*avg {
		t.Errorf("BA max degree %d not a hub (avg %.1f)", md, avg)
	}
}

func TestBarabasiAlbertSmallN(t *testing.T) {
	g := BarabasiAlbert(3, 5, graph.Undirected, 1)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumVertices() < 3 {
		t.Errorf("BA clamped n too far: %d", g.NumVertices())
	}
}

func TestEgoNetShape(t *testing.T) {
	g := EgoNet(DefaultEgoNet(11))
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	n, m := g.NumVertices(), g.NumEdges()
	// Target the Facebook circles dataset scale: ~4k vertices, ~88k edges.
	if n < 2500 || n > 6500 {
		t.Errorf("EgoNet n = %d, want ~4000", n)
	}
	if m < 40000 || m > 160000 {
		t.Errorf("EgoNet m = %d, want ~88000", m)
	}
	// Hubs exist (circle centers).
	if md := g.MaxDegree(); md < 80 {
		t.Errorf("EgoNet max degree = %d, want hubby (>= 80)", md)
	}
}

func TestRegistryAllLoadable(t *testing.T) {
	if testing.Short() {
		t.Skip("generates every dataset; skipped in -short")
	}
	for _, name := range Names() {
		g, err := Load(name)
		if err != nil {
			t.Fatalf("Load(%q): %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: Validate: %v", name, err)
		}
		d, _ := Lookup(name)
		if g.Kind() != d.Kind {
			t.Errorf("%s: kind = %v, want %v", name, g.Kind(), d.Kind)
		}
		// Preparation must have removed all degree-<2 vertices.
		in := g.InDegrees()
		for v := 0; v < g.NumVertices(); v++ {
			total := in[v]
			if g.Kind() == graph.Directed {
				total += g.OutDegree(graph.V(v))
			}
			if total < 2 {
				t.Errorf("%s: vertex %d survives with total degree %d", name, v, total)
				break
			}
		}
	}
}

func TestLoadMemoizes(t *testing.T) {
	a := MustLoad("fb-sim")
	b := MustLoad("fb-sim")
	if a != b {
		t.Errorf("Load did not memoize")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-dataset"); err == nil {
		t.Error("Lookup accepted an unknown name")
	}
	if _, err := Load("no-such-dataset"); err == nil {
		t.Error("Load accepted an unknown name")
	}
}

func TestPrepareBreaksDegreeOrder(t *testing.T) {
	// BA assigns low ids to hubs; Prepare must de-correlate id and degree.
	raw := BarabasiAlbert(4096, 8, graph.Undirected, 42)
	prep := Prepare(raw, 1)
	if degreeCorrelated(prep) {
		t.Errorf("Prepare left ids correlated with degree")
	}
}

func TestPreparePreservesEdgeCount(t *testing.T) {
	raw := RMAT(DefaultRMAT(10, 16, graph.Undirected, 9))
	pruned, _ := graph.RemoveLowDegree(raw)
	prep := Prepare(raw, 1)
	if prep.NumEdges() != pruned.NumEdges() {
		t.Errorf("Prepare changed edge count: %d vs %d", prep.NumEdges(), pruned.NumEdges())
	}
}

// Property: every RMAT scale/edge-factor in a small range yields a valid
// graph with the right vertex count.
func TestRMATPropertyValid(t *testing.T) {
	f := func(seed uint64) bool {
		scale := 6 + int(seed%4)
		ef := 4 + int(seed%8)
		g := RMAT(DefaultRMAT(scale, ef, graph.Undirected, seed))
		return g.Validate() == nil && g.NumVertices() == 1<<scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDirectedGenerators(t *testing.T) {
	d := RMAT(DefaultRMAT(10, 8, graph.Directed, 4))
	if d.Kind() != graph.Directed {
		t.Fatalf("Kind = %v", d.Kind())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	b := BarabasiAlbert(1024, 4, graph.Directed, 4)
	if b.Kind() != graph.Directed {
		t.Fatalf("BA Kind = %v", b.Kind())
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("BA Validate: %v", err)
	}
}
