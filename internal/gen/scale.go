package gen

import "repro/internal/graph"

// scaleRegistry lists the large-scale datasets of the BENCH_MODE=scale
// series. They are loaded by name exactly like regular datasets — Lookup,
// Load, LoadStore and the disk cache all apply — but they are excluded
// from Names(): generating half a billion edges must be opted into
// explicitly, never hit by a registry sweep in tests or benchmarks.
//
// rmat-s21-ef256 is ~100× the arc count of rmat-s18-ef16, the largest
// standard dataset: 2^21 vertex ids at edge factor 256 sample ~537M edge
// slots; after dedup, degree<2 pruning and relabeling roughly 450M edges
// (~900M arcs, ~3.6 GB of plain adjacency) remain. First generation takes
// minutes; with the disk cache enabled subsequent loads are a checksummed
// binary read.
var scaleRegistry = []Dataset{
	{
		Name: "rmat-s21-ef256", PaperName: "R-MAT S21 EF256 (scale series)", Kind: graph.Undirected,
		Make: func() *graph.Graph { return RMAT(DefaultRMAT(21, 256, graph.Undirected, 25)) },
	},
}

// ScaleNames returns the scale-series dataset names in registry order.
func ScaleNames() []string {
	out := make([]string, len(scaleRegistry))
	for i, d := range scaleRegistry {
		out[i] = d.Name
	}
	return out
}
