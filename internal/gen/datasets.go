package gen

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"

	"repro/internal/graph"
)

// Dataset describes one named input graph of the evaluation, i.e. one row
// of the paper's Table II (or a scaled stand-in for it; see DESIGN.md §1).
type Dataset struct {
	Name      string // registry key, e.g. "lj-sim"
	PaperName string // the paper dataset it stands in for
	Kind      graph.Kind
	Make      func() *graph.Graph
}

// registry lists every dataset used by the benchmarks and the figure
// harness. All generators are seeded, so each entry is fully deterministic.
var registry = []Dataset{
	{
		Name: "fb-sim", PaperName: "Facebook circles", Kind: graph.Undirected,
		Make: func() *graph.Graph { return EgoNet(DefaultEgoNet(11)) },
	},
	{
		Name: "uniform", PaperName: "Uniform (Fig. 4)", Kind: graph.Undirected,
		Make: func() *graph.Graph { return ErdosRenyi(1<<15, 1<<19, graph.Undirected, 12) },
	},
	{
		Name: "rmat-s14-ef8", PaperName: "R-MAT S20 EF8", Kind: graph.Undirected,
		Make: func() *graph.Graph { return RMAT(DefaultRMAT(14, 8, graph.Undirected, 13)) },
	},
	{
		Name: "rmat-s14-ef16", PaperName: "R-MAT S20 EF16", Kind: graph.Undirected,
		Make: func() *graph.Graph { return RMAT(DefaultRMAT(14, 16, graph.Undirected, 14)) },
	},
	{
		Name: "rmat-s14-ef32", PaperName: "R-MAT S20 EF32", Kind: graph.Undirected,
		Make: func() *graph.Graph { return RMAT(DefaultRMAT(14, 32, graph.Undirected, 15)) },
	},
	{
		Name: "rmat-s15-ef16", PaperName: "R-MAT S21 EF16", Kind: graph.Undirected,
		Make: func() *graph.Graph { return RMAT(DefaultRMAT(15, 16, graph.Undirected, 16)) },
	},
	{
		Name: "rmat-s16-ef16", PaperName: "R-MAT S23 EF16", Kind: graph.Undirected,
		Make: func() *graph.Graph { return RMAT(DefaultRMAT(16, 16, graph.Undirected, 17)) },
	},
	{
		Name: "rmat-s18-ef16", PaperName: "R-MAT S30 EF16", Kind: graph.Undirected,
		Make: func() *graph.Graph { return RMAT(DefaultRMAT(18, 16, graph.Undirected, 18)) },
	},
	{
		Name: "orkut-sim", PaperName: "SNAP-Orkut", Kind: graph.Undirected,
		Make: func() *graph.Graph { return BarabasiAlbert(1<<15, 24, graph.Undirected, 19) },
	},
	{
		Name: "lj-sim", PaperName: "SNAP-LiveJournal", Kind: graph.Undirected,
		Make: func() *graph.Graph { return RMAT(DefaultRMAT(16, 8, graph.Undirected, 20)) },
	},
	{
		Name: "lj1-sim", PaperName: "SNAP-LiveJournal1", Kind: graph.Directed,
		Make: func() *graph.Graph { return RMAT(DefaultRMAT(16, 8, graph.Directed, 21)) },
	},
	{
		Name: "skitter-sim", PaperName: "SNAP-Skitter", Kind: graph.Undirected,
		Make: func() *graph.Graph { return RMAT(DefaultRMAT(15, 8, graph.Undirected, 22)) },
	},
	{
		Name: "uk-sim", PaperName: "uk-2005", Kind: graph.Directed,
		Make: func() *graph.Graph { return RMAT(DefaultRMAT(17, 12, graph.Directed, 23)) },
	},
	{
		Name: "wiki-sim", PaperName: "wiki-en", Kind: graph.Directed,
		Make: func() *graph.Graph { return BarabasiAlbert(1<<16, 16, graph.Directed, 24) },
	},
}

// cacheEntry memoizes one prepared dataset. The sync.Once decouples the
// registry lock from graph generation: cacheMu is held only long enough to
// find-or-create the entry, so concurrent Loads of different datasets (the
// benchmark harness, cmd/compare) generate in parallel instead of
// serializing on one global mutex, while concurrent Loads of the same
// dataset still generate exactly once.
type cacheEntry struct {
	once sync.Once
	g    *graph.Graph
	err  error
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*cacheEntry{}
)

// Names returns the registered dataset names in registry order.
func Names() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.Name
	}
	return out
}

// Lookup returns the dataset descriptor for name, searching the standard
// registry and the scale-series registry (see scale.go).
func Lookup(name string) (Dataset, error) {
	for _, d := range registry {
		if d.Name == name {
			return d, nil
		}
	}
	for _, d := range scaleRegistry {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q (have %v)", name, Names())
}

// Load generates (or returns the memoized) *prepared* graph for name. The
// preparation pipeline follows §II-B of the paper: generate, remove
// vertices of degree < 2, and apply a random relabeling when the vertex
// order correlates with degree (always, for the BA generator, whose early
// vertices are the hubs).
//
// When the disk cache is enabled (SetCacheDir / LCC_GRAPH_CACHE), the
// first generation persists the prepared graph in the checksummed binary
// container and later process lifetimes deserialize it instead of
// regenerating; the per-entry sync.Once still guarantees at most one
// generation or read per process.
func Load(name string) (*graph.Graph, error) {
	cacheMu.Lock()
	e, ok := cache[name]
	if !ok {
		e = &cacheEntry{}
		cache[name] = e
	}
	cacheMu.Unlock()
	e.once.Do(func() {
		d, err := Lookup(name)
		if err != nil {
			e.err = err
			return
		}
		if path := CachePath(name); path != "" {
			if g, ok := loadFromDisk(path); ok {
				e.g = g
				return
			}
			e.g = Prepare(d.Make(), prepareSeed)
			persistToDisk(path, e.g)
			return
		}
		e.g = Prepare(d.Make(), prepareSeed)
	})
	return e.g, e.err
}

// MustLoad is Load for registry names known at compile time; it panics on
// unknown names.
func MustLoad(name string) *graph.Graph {
	g, err := Load(name)
	if err != nil {
		panic(err)
	}
	return g
}

// Prepare applies the paper's §II-B preprocessing to an arbitrary graph:
// degree<2 removal followed by a seeded random relabeling. The paper
// relabels whenever the input is degree-ordered so that 1D partitioning
// does not assign all the hub vertices to the same process; every
// generator here has such a bias (R-MAT's quadrant skew favours low ids,
// BA's early vertices are the hubs), so Prepare always relabels.
// Measured consequence if skipped: on R-MAT S15 at 64 ranks one rank owns
// ~9x the average arc count and the strong scaling of Fig. 9 collapses.
func Prepare(g *graph.Graph, seed uint64) *graph.Graph {
	pruned := graph.RemoveLowDegreeIter(g)
	n := pruned.NumVertices()
	perm := make([]graph.V, n)
	for i := range perm {
		perm[i] = graph.V(i)
	}
	rng := rand.New(rand.NewPCG(seed, 0xD1CE))
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	rl, err := graph.Relabel(pruned, perm)
	if err != nil {
		panic(err) // perm is a permutation by construction
	}
	return rl
}

// degreeCorrelated reports whether vertex id rank correlates with degree
// rank strongly enough (|Spearman| > 0.5 on a sample) that 1D partitioning
// would concentrate hubs on few processes.
func degreeCorrelated(g *graph.Graph) bool {
	n := g.NumVertices()
	if n < 4 {
		return false
	}
	const samples = 4096
	step := n / samples
	if step < 1 {
		step = 1
	}
	type pair struct {
		id  int
		deg int
	}
	var pts []pair
	for v := 0; v < n; v += step {
		pts = append(pts, pair{v, g.OutDegree(graph.V(v))})
	}
	k := len(pts)
	// Spearman rank correlation between id order and degree rank.
	byDeg := make([]int, k)
	for i := range byDeg {
		byDeg[i] = i
	}
	sort.SliceStable(byDeg, func(a, b int) bool { return pts[byDeg[a]].deg < pts[byDeg[b]].deg })
	rank := make([]float64, k)
	for r, idx := range byDeg {
		rank[idx] = float64(r)
	}
	var sum float64
	for i, r := range rank {
		d := float64(i) - r
		sum += d * d
	}
	fk := float64(k)
	rho := 1 - 6*sum/(fk*(fk*fk-1))
	return rho > 0.5 || rho < -0.5
}
