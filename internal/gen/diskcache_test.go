package gen

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/graph"
)

// evictMemo drops the in-memory memo entry for name so the next Load goes
// through the disk-cache path again (tests only; the per-entry sync.Once
// makes entries otherwise immortal within a process).
func evictMemo(name string) {
	cacheMu.Lock()
	delete(cache, name)
	cacheMu.Unlock()
}

func sameGraph(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.Kind() != b.Kind() || a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() {
		t.Fatalf("graph shape differs: kind %v/%v n %d/%d arcs %d/%d",
			a.Kind(), b.Kind(), a.NumVertices(), b.NumVertices(), a.NumArcs(), b.NumArcs())
	}
	for v := 0; v < a.NumVertices(); v++ {
		la, lb := a.Adj(graph.V(v)), b.Adj(graph.V(v))
		if len(la) != len(lb) {
			t.Fatalf("vertex %d: degree %d vs %d", v, len(la), len(lb))
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("vertex %d: neighbour %d is %d vs %d", v, i, la[i], lb[i])
			}
		}
	}
}

// TestDiskCachePersistsAndReloads pins the round trip: a cold Load with
// the cache enabled persists the prepared graph; a later cold Load (memo
// evicted, as a fresh process would be) deserializes the identical graph
// instead of regenerating; a corrupted file is a miss, not an error.
func TestDiskCachePersistsAndReloads(t *testing.T) {
	const name = "fb-sim"
	SetCacheDir(t.TempDir())
	defer SetCacheDir("")
	defer evictMemo(name) // leave no disk-backed memo for other tests

	evictMemo(name)
	g1 := MustLoad(name)
	path := CachePath(name)
	if path == "" {
		t.Fatal("CachePath empty with cache dir set")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("dataset was not persisted: %v", err)
	}

	evictMemo(name)
	g2 := MustLoad(name)
	if g1 == g2 {
		t.Fatal("second load returned the memoized pointer; memo eviction failed")
	}
	sameGraph(t, g1, g2)

	// Corrupt one payload byte: the checksummed read must fail closed and
	// Load must regenerate (and re-persist) rather than surface bytes.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	evictMemo(name)
	g3 := MustLoad(name)
	sameGraph(t, g1, g3)
}

// TestDiskCacheConcurrentLoads exercises the per-entry sync.Once with the
// disk cache enabled: many goroutines cold-loading the same dataset must
// produce exactly one generation (same returned pointer) and one valid
// cache file — no torn writes, no duplicate temp files left behind.
func TestDiskCacheConcurrentLoads(t *testing.T) {
	const name = "rmat-s14-ef8"
	dir := t.TempDir()
	SetCacheDir(dir)
	defer SetCacheDir("")
	defer evictMemo(name)

	evictMemo(name)
	const loaders = 8
	graphs := make([]*graph.Graph, loaders)
	var wg sync.WaitGroup
	for i := 0; i < loaders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			graphs[i] = MustLoad(name)
		}(i)
	}
	wg.Wait()
	for i := 1; i < loaders; i++ {
		if graphs[i] != graphs[0] {
			t.Fatalf("loader %d got a distinct graph: sync.Once discipline broken", i)
		}
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		files = append(files, e.Name())
	}
	if len(files) != 1 || filepath.Join(dir, files[0]) != CachePath(name) {
		t.Fatalf("cache dir holds %v, want exactly the entry for %s", files, name)
	}

	// The persisted file must round-trip through the checksummed reader.
	f, err := os.Open(CachePath(name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := graph.ReadBinaryStore(f)
	if err != nil {
		t.Fatalf("persisted file does not parse: %v", err)
	}
	sameGraph(t, graphs[0], graph.Materialize(st))
}

// TestLoadStoreBudgets pins the representation ladder of LoadStore: no
// budget → plain, tight budget → compressed, and a budget below even the
// compressed footprint falls back to the file-backed form when the disk
// cache holds the dataset.
func TestLoadStoreBudgets(t *testing.T) {
	const name = "fb-sim"
	SetCacheDir(t.TempDir())
	defer SetCacheDir("")
	defer evictMemo(name)
	evictMemo(name)

	plain, err := LoadStore(name, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ReprName() != "plain" {
		t.Fatalf("no budget chose %q, want plain", plain.ReprName())
	}

	comp, err := LoadStore(name, plain.MemBytes()-1)
	if err != nil {
		t.Fatal(err)
	}
	if comp.ReprName() != "compressed" {
		t.Fatalf("tight budget chose %q, want compressed", comp.ReprName())
	}
	if comp.MemBytes() >= plain.MemBytes() {
		t.Fatalf("compressed footprint %d not below plain %d", comp.MemBytes(), plain.MemBytes())
	}

	fileSt, err := LoadStore(name, 1) // nothing fits in one byte
	if err != nil {
		t.Fatal(err)
	}
	fc, ok := fileSt.(*graph.FileCSR)
	if !ok {
		t.Fatalf("1-byte budget returned %T (%s), want *graph.FileCSR", fileSt, fileSt.ReprName())
	}
	defer fc.Close()
	if fc.MemBytes() != 0 {
		t.Fatalf("file-backed MemBytes = %d, want 0", fc.MemBytes())
	}
	sameStoreAdj(t, plain, fc)
}

func sameStoreAdj(t *testing.T, a, b graph.Store) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() {
		t.Fatalf("store shape differs: n %d/%d arcs %d/%d",
			a.NumVertices(), b.NumVertices(), a.NumArcs(), b.NumArcs())
	}
	var ba, bb []graph.V
	for v := 0; v < a.NumVertices(); v++ {
		ba = a.AdjInto(graph.V(v), ba)
		bb = b.AdjInto(graph.V(v), bb)
		if len(ba) != len(bb) {
			t.Fatalf("vertex %d: degree %d vs %d", v, len(ba), len(bb))
		}
		for i := range ba {
			if ba[i] != bb[i] {
				t.Fatalf("vertex %d: neighbour %d is %d vs %d", v, i, ba[i], bb[i])
			}
		}
	}
}
