package gen

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/graph"
)

// This file adds the binary disk cache under the in-memory memoization:
// the first Load of a dataset persists the prepared graph in the versioned
// binary container (graph.WriteBinaryStore, compressed adjacency), and
// later Loads — including Loads from a fresh process — deserialize instead
// of regenerating. For the scale-series datasets this turns a multi-minute
// generation into a seconds-long checksummed read.
//
// The cache is opt-in: it activates when SetCacheDir is called or when the
// LCC_GRAPH_CACHE environment variable names a directory. Entries are keyed
// by dataset name, the preparation seed and the binary format version, so a
// registry change that alters any of them misses cleanly instead of serving
// stale bytes; a corrupt or truncated file (graph.CorruptError) is treated
// as a miss and regenerated over.

// prepareSeed is the §II-B relabeling seed baked into every registry
// dataset (see Load); it participates in the disk-cache key.
const prepareSeed = 0xC0FFEE

// CacheDirEnv names the environment variable that enables the disk cache.
const CacheDirEnv = "LCC_GRAPH_CACHE"

var (
	cacheDirMu  sync.Mutex
	cacheDir    string
	cacheDirSet bool
)

// SetCacheDir points the disk cache at dir ("" disables it), overriding
// the LCC_GRAPH_CACHE environment variable. Tests point it at a temp dir.
func SetCacheDir(dir string) {
	cacheDirMu.Lock()
	defer cacheDirMu.Unlock()
	cacheDir, cacheDirSet = dir, true
}

// CacheDir returns the active disk-cache directory, or "" when the cache
// is disabled.
func CacheDir() string {
	cacheDirMu.Lock()
	defer cacheDirMu.Unlock()
	if cacheDirSet {
		return cacheDir
	}
	return os.Getenv(CacheDirEnv)
}

// CachePath returns the file the dataset persists to, or "" when the
// cache is disabled. The file need not exist yet.
func CachePath(name string) string {
	dir := CacheDir()
	if dir == "" {
		return ""
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|seed=%#x|binv=%d", name, prepareSeed, graph.BinaryVersion)
	return filepath.Join(dir, fmt.Sprintf("%s-%016x.lcg", name, h.Sum64()))
}

// loadFromDisk deserializes a previously persisted dataset. A missing,
// corrupt or stale file reports ok=false: every failure mode is a cache
// miss, never an error surfaced to Load.
func loadFromDisk(path string) (*graph.Graph, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	st, err := graph.ReadBinaryStore(f)
	if err != nil {
		return nil, false
	}
	return graph.Materialize(st), true
}

// persistToDisk writes the prepared graph to the cache atomically (tmp +
// rename, so concurrent processes never observe a torn file) with
// compressed adjacency — roughly 2-3× smaller on disk than plain CSR, and
// the per-section checksums guard the read path either way. Persistence is
// best-effort: a full disk or read-only directory degrades to regenerating
// next time, not to a failed Load.
func persistToDisk(path string, g *graph.Graph) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	if err := graph.WriteBinaryStore(tmp, graph.CompressGraph(g)); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	os.Rename(tmp.Name(), path)
}

// LoadStore returns the dataset as the cheapest Store that fits the given
// resident-memory budget: plain CSR when it fits, varint/delta-compressed
// when that fits, and the file-backed (mmap) representation when even the
// compressed form would overshoot and the disk cache holds the dataset.
// budget <= 0 means no budget (plain). The returned Store may need Close
// (graph.FileCSR); callers that only want *graph.Graph should use Load.
func LoadStore(name string, budget int64) (graph.Store, error) {
	g, err := Load(name)
	if err != nil {
		return nil, err
	}
	if budget <= 0 {
		return g, nil
	}
	st, fitErr := graph.StoreUnderBudget(g, budget)
	if fitErr == nil {
		return st, nil
	}
	// Even compressed does not fit: fall back to the file-backed form,
	// whose resident footprint is zero (pages stream in on demand).
	if path := CachePath(name); path != "" {
		if _, statErr := os.Stat(path); statErr == nil {
			if fc, openErr := graph.OpenBinary(path); openErr == nil {
				return fc, nil
			}
		}
	}
	// No disk cache to map: return the compressed form with the same
	// over-budget error StoreUnderBudget reported.
	return st, fitErr
}
