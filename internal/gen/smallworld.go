package gen

import (
	"repro/internal/graph"
)

// WattsStrogatz generates the small-world graph of Watts & Strogatz —
// "Collective dynamics of 'small-world' networks", the paper's reference
// [9] and the origin of the local clustering coefficient itself (§II-D).
// n vertices are placed on a ring, each joined to its k nearest neighbours
// (k even), and every edge is rewired with probability beta to a uniformly
// random endpoint. beta=0 yields a lattice with high, uniform LCC; beta=1
// approaches a random graph with vanishing LCC. Sweeping beta reproduces
// the classic C(β)/C(0) curve (examples/smallworld), which doubles as a
// validation workload for the LCC engines: the lattice's exact clustering
// coefficient is known in closed form.
func WattsStrogatz(n, k int, beta float64, seed uint64) *graph.Graph {
	if k < 2 {
		k = 2
	}
	if k%2 == 1 {
		k++
	}
	if k >= n {
		k = n - 1
		if k%2 == 1 {
			k--
		}
	}
	rng := newRNG(seed)
	// present tracks edges as u*n+v with u<v so rewiring can avoid
	// duplicates without rebuilding adjacency sets.
	present := make(map[uint64]bool, n*k/2)
	key := func(u, v graph.V) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(u)*uint64(n) + uint64(v)
	}
	type edge struct{ u, v graph.V }
	edges := make([]edge, 0, n*k/2)
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			u := graph.V(i)
			v := graph.V((i + j) % n)
			if u == v || present[key(u, v)] {
				continue
			}
			present[key(u, v)] = true
			edges = append(edges, edge{u, v})
		}
	}
	// Rewire pass (the published procedure rewires the "far" endpoint of
	// each lattice edge with probability beta).
	for idx := range edges {
		if rng.Float64() >= beta {
			continue
		}
		e := edges[idx]
		// Draw a replacement endpoint; skip if it would create a
		// self-loop or duplicate. A bounded number of retries keeps
		// the generator total even for dense rings.
		for attempt := 0; attempt < 32; attempt++ {
			w := graph.V(rng.IntN(n))
			if w == e.u || present[key(e.u, w)] {
				continue
			}
			delete(present, key(e.u, e.v))
			present[key(e.u, w)] = true
			edges[idx].v = w
			break
		}
	}
	out := make([]graph.Edge, len(edges))
	for i, e := range edges {
		out[i] = graph.Edge{Src: e.u, Dst: e.v}
	}
	return graph.MustBuild(graph.Undirected, n, out)
}

// RingLatticeLCC returns the closed-form clustering coefficient of the
// beta=0 Watts–Strogatz lattice: C(0) = 3(k−2) / (4(k−1)). Tests compare
// the engines against it.
func RingLatticeLCC(k int) float64 {
	if k < 2 {
		return 0
	}
	return 3 * float64(k-2) / (4 * float64(k-1))
}

// Kronecker generates a stochastic Kronecker graph (Leskovec et al.): the
// k-fold Kronecker power of a 2×2 initiator probability matrix
// [[a,b],[c,d]]. R-MAT is the edge-sampling approximation of this model;
// the explicit generator samples each edge independently with its exact
// product probability, which produces the same degree-distribution family
// with controllable density — useful for ablations that need graphs whose
// expected structure is analytically known. The implementation samples
// per-edge Bernoulli draws by recursive descent over non-negligible
// subtrees, which is feasible at the scales this reproduction uses.
func Kronecker(scale int, a, b, c, d float64, kind graph.Kind, seed uint64) *graph.Graph {
	n := 1 << scale
	rng := newRNG(seed)
	var edges []graph.Edge
	// Expected edge count is (a+b+c+d)^scale; descend the implicit
	// quadtree, pruning subtrees by a Binomial(expected) draw — the
	// standard "ball dropping" refinement: instead of exact per-cell
	// Bernoulli over n² cells (quadratic), drop the expected number of
	// edges and resolve collisions at the CSR builder.
	sum := a + b + c + d
	expected := 1.0
	for i := 0; i < scale; i++ {
		expected *= sum
	}
	target := int(expected)
	probs := []float64{a, b, c, d}
	for e := 0; e < target; e++ {
		u, v := 0, 0
		for level := 0; level < scale; level++ {
			r := rng.Float64() * sum
			q := 0
			acc := 0.0
			for i, p := range probs {
				acc += p
				if r < acc {
					q = i
					break
				}
			}
			u = u<<1 | q>>1
			v = v<<1 | q&1
		}
		if u != v {
			edges = append(edges, graph.Edge{Src: graph.V(u), Dst: graph.V(v)})
		}
	}
	return graph.MustBuild(kind, n, edges)
}
