package gen

import (
	"sync"
	"testing"
)

// TestLoadConcurrent pins the memoization contract under concurrency: the
// registry lock must not serialize generation (different datasets load in
// parallel), same-name loads must generate exactly once and return the
// same prepared graph, and errors must not be cached as graphs. Run with
// -race this also guards the lock-scope fix (cacheMu is no longer held
// across graph generation).
func TestLoadConcurrent(t *testing.T) {
	names := []string{"fb-sim", "uniform", "rmat-s14-ef8", "nope-does-not-exist"}
	const loadersPerName = 4
	type got struct {
		name string
		g    interface{ NumVertices() int }
		err  error
	}
	results := make(chan got, len(names)*loadersPerName)
	var wg sync.WaitGroup
	for _, name := range names {
		for i := 0; i < loadersPerName; i++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				g, err := Load(name)
				results <- got{name: name, g: g, err: err}
			}(name)
		}
	}
	wg.Wait()
	close(results)

	first := map[string]interface{ NumVertices() int }{}
	for r := range results {
		if r.name == "nope-does-not-exist" {
			if r.err == nil {
				t.Error("unknown dataset loaded without error")
			}
			continue
		}
		if r.err != nil {
			t.Fatalf("Load(%q): %v", r.name, r.err)
		}
		if prev, ok := first[r.name]; ok {
			if prev != r.g {
				t.Errorf("Load(%q) returned distinct graphs across goroutines", r.name)
			}
		} else {
			first[r.name] = r.g
		}
	}
}
