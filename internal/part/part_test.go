package part

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestBlockRangesCoverAndDisjoint(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{16, 4}, {17, 4}, {5, 8}, {1, 1}, {1000, 7}, {64, 64},
	} {
		pt := MustNew(Block, tc.n, tc.p)
		covered := 0
		prevHi := graph.V(0)
		for r := 0; r < tc.p; r++ {
			lo, hi := pt.Range(r)
			if lo != prevHi {
				t.Errorf("n=%d p=%d: rank %d range starts at %d, want %d", tc.n, tc.p, r, lo, prevHi)
			}
			covered += int(hi - lo)
			prevHi = hi
			if got, want := pt.Size(r), int(hi-lo); got != want {
				t.Errorf("Size(%d) = %d, want %d", r, got, want)
			}
		}
		if covered != tc.n {
			t.Errorf("n=%d p=%d: ranges cover %d vertices", tc.n, tc.p, covered)
		}
	}
}

func TestOwnerMatchesRange(t *testing.T) {
	for _, scheme := range []Scheme{Block, Cyclic} {
		for _, tc := range []struct{ n, p int }{{16, 4}, {17, 4}, {100, 3}, {7, 7}} {
			pt := MustNew(scheme, tc.n, tc.p)
			counts := make([]int, tc.p)
			for v := 0; v < tc.n; v++ {
				o := pt.Owner(graph.V(v))
				if o < 0 || o >= tc.p {
					t.Fatalf("%v n=%d p=%d: Owner(%d) = %d out of range", scheme, tc.n, tc.p, v, o)
				}
				counts[o]++
			}
			for r := 0; r < tc.p; r++ {
				if counts[r] != pt.Size(r) {
					t.Errorf("%v n=%d p=%d: rank %d owns %d vertices, Size says %d",
						scheme, tc.n, tc.p, r, counts[r], pt.Size(r))
				}
			}
		}
	}
}

func TestLocalIndexVertexAtInverse(t *testing.T) {
	f := func(seed uint64) bool {
		n := 10 + int(seed%500)
		p := 1 + int(seed%13)
		for _, scheme := range []Scheme{Block, Cyclic} {
			pt := MustNew(scheme, n, p)
			for v := 0; v < n; v++ {
				o := pt.Owner(graph.V(v))
				li := pt.LocalIndex(graph.V(v))
				if li < 0 || li >= pt.Size(o) {
					return false
				}
				if pt.VertexAt(o, li) != graph.V(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCyclicBalancesSkewedGraph(t *testing.T) {
	// A graph whose low ids are hubs (BA without relabeling): cyclic must
	// be much better balanced than block.
	g := gen.BarabasiAlbert(4096, 8, graph.Undirected, 5)
	const p = 8
	block := Imbalance(g, MustNew(Block, g.NumVertices(), p))
	cyclic := Imbalance(g, MustNew(Cyclic, g.NumVertices(), p))
	if cyclic >= block {
		t.Errorf("cyclic imbalance %.3f not better than block %.3f on degree-ordered hubs", cyclic, block)
	}
	if cyclic > 1.3 {
		t.Errorf("cyclic imbalance %.3f, want near 1", cyclic)
	}
}

func TestEdgeCutGrowsWithP(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(12, 16, graph.Undirected, 3))
	prev := 0.0
	for _, p := range []int{2, 4, 8, 16} {
		cut := EdgeCut(g, MustNew(Block, g.NumVertices(), p))
		if cut < prev {
			t.Errorf("edge cut decreased from %.3f to %.3f at p=%d", prev, cut, p)
		}
		prev = cut
	}
	// Paper: 95% of edges cross partitions for R-MAT on 8 ranks.
	cut8 := EdgeCut(g, MustNew(Block, g.NumVertices(), 8))
	if cut8 < 0.75 {
		t.Errorf("R-MAT edge cut at p=8 = %.2f, want high (paper: 0.95)", cut8)
	}
}

func TestExtractMatchesGraph(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 8, graph.Undirected, 9))
	const p = 4
	pt := MustNew(Block, g.NumVertices(), p)
	locals := ExtractAll(g, pt)
	if len(locals) != p {
		t.Fatalf("ExtractAll returned %d partitions", len(locals))
	}
	seen := 0
	for r, lc := range locals {
		if lc.NumLocal() != pt.Size(r) {
			t.Fatalf("rank %d: NumLocal = %d, want %d", r, lc.NumLocal(), pt.Size(r))
		}
		for i := 0; i < lc.NumLocal(); i++ {
			v := pt.VertexAt(r, i)
			want := g.Adj(v)
			got := lc.AdjOf(i)
			if len(got) != len(want) {
				t.Fatalf("rank %d local %d: adjacency length %d, want %d", r, i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("rank %d local %d: adjacency mismatch at %d", r, i, j)
				}
			}
			seen++
		}
	}
	if seen != g.NumVertices() {
		t.Errorf("partitions cover %d vertices, want %d", seen, g.NumVertices())
	}
}

func TestNewRejectsBadArgs(t *testing.T) {
	if _, err := New(Block, 10, 0); err == nil {
		t.Error("New accepted p=0")
	}
	if _, err := New(Block, -1, 2); err == nil {
		t.Error("New accepted n<0")
	}
}

func TestRangePanicsForCyclic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Range on a Cyclic partition did not panic")
		}
	}()
	MustNew(Cyclic, 10, 2).Range(0)
}
