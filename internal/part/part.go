// Package part implements the vertex partitioning schemes of §III-A: the
// paper's 1D block partitioning (an equal, contiguous range of vertices per
// process) and the cyclic 1D distribution it cites as the balanced
// alternative (Lumsdaine et al.), which this repository implements as the
// future-work ablation A3.
package part

import (
	"fmt"

	"repro/internal/graph"
)

// Scheme selects how vertices map to ranks.
type Scheme uint8

const (
	// Block assigns vertex v to rank v*p/n (contiguous ranges, the
	// paper's default; §III-A). Unlike the paper we do not require p | n:
	// ranges differ by at most one vertex.
	Block Scheme = iota
	// Cyclic assigns vertex v to rank v mod p.
	Cyclic
	// BlockArcs assigns contiguous vertex ranges whose *arc* counts are
	// balanced (equal Σ deg per rank, up to one vertex), addressing the
	// up-to-25% runtime imbalance the paper attributes to plain Block on
	// skewed graphs (§IV-D-2). It keeps Block's contiguity — and thus
	// its cheap ownership arithmetic on the remote path — while fixing
	// the work balance; the A10 ablation quantifies the trade.
	// Partitions with this scheme must be created by NewArcBalanced (the
	// boundaries depend on the degree sequence).
	BlockArcs
)

func (s Scheme) String() string {
	switch s {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	case BlockArcs:
		return "block-arcs"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// ParseScheme is the inverse of Scheme.String, accepting the spellings the
// tooling uses ("blockarcs" is an alias for "block-arcs"). The empty
// string selects the paper's default, Block.
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "", "block":
		return Block, nil
	case "cyclic":
		return Cyclic, nil
	case "blockarcs", "block-arcs":
		return BlockArcs, nil
	default:
		return Block, fmt.Errorf("part: unknown scheme %q", s)
	}
}

// Partition maps the vertex set {0..n-1} onto p ranks under a Scheme.
type Partition struct {
	scheme Scheme
	n      int
	p      int
	// bounds holds the range boundaries for BlockArcs: rank r owns
	// [bounds[r], bounds[r+1]). nil for Block and Cyclic.
	bounds []int
}

// New creates a partition of n vertices over p ranks. BlockArcs partitions
// need the degree sequence and must be created with NewArcBalanced.
func New(scheme Scheme, n, p int) (*Partition, error) {
	if p < 1 {
		return nil, fmt.Errorf("part: need at least one rank, got %d", p)
	}
	if n < 0 {
		return nil, fmt.Errorf("part: negative vertex count %d", n)
	}
	if scheme == BlockArcs {
		return nil, fmt.Errorf("part: BlockArcs partitions require the graph; use NewArcBalanced")
	}
	return &Partition{scheme: scheme, n: n, p: p}, nil
}

// NewArcBalanced creates a BlockArcs partition of g over p ranks:
// contiguous vertex ranges chosen so every rank holds as close to
// NumArcs/p adjacency entries as contiguity allows (greedy prefix cut at
// the target quota, the standard 1D arc-balancing heuristic).
func NewArcBalanced(g graph.Store, p int) (*Partition, error) {
	if p < 1 {
		return nil, fmt.Errorf("part: need at least one rank, got %d", p)
	}
	n := g.NumVertices()
	pt := &Partition{scheme: BlockArcs, n: n, p: p, bounds: make([]int, p+1)}
	total := g.NumArcs()
	v := 0
	carried := 0 // arcs assigned so far
	for r := 0; r < p; r++ {
		pt.bounds[r] = v
		// Quota for ranks r..p-1 splits the remaining arcs evenly; the
		// running recomputation keeps one oversized hub from starving
		// every later rank.
		remainingRanks := p - r
		quota := (total - carried + remainingRanks - 1) / remainingRanks
		acc := 0
		// Leave at least one vertex per remaining rank when possible.
		for v < n-(remainingRanks-1) && (acc == 0 || acc+g.OutDegree(graph.V(v)) <= quota) {
			acc += g.OutDegree(graph.V(v))
			v++
		}
		carried += acc
	}
	pt.bounds[p] = n
	return pt, nil
}

// Build constructs a partition of g's vertices under any scheme,
// dispatching to NewArcBalanced when the scheme needs the degree sequence.
// Engines use it so that Options.Scheme can select all three schemes.
func Build(scheme Scheme, g graph.Store, p int) (*Partition, error) {
	if scheme == BlockArcs {
		return NewArcBalanced(g, p)
	}
	return New(scheme, g.NumVertices(), p)
}

// MustNew is New that panics on error, for statically valid arguments.
func MustNew(scheme Scheme, n, p int) *Partition {
	pt, err := New(scheme, n, p)
	if err != nil {
		panic(err)
	}
	return pt
}

// Scheme returns the partitioning scheme.
func (pt *Partition) Scheme() Scheme { return pt.scheme }

// NumRanks returns p.
func (pt *Partition) NumRanks() int { return pt.p }

// NumVertices returns n.
func (pt *Partition) NumVertices() int { return pt.n }

// Owner returns the rank that owns vertex v.
func (pt *Partition) Owner(v graph.V) int {
	switch pt.scheme {
	case Block:
		// Inverse of the balanced block ranges produced by Range.
		return (int(v)*pt.p + pt.p - 1) / pt.n
	case BlockArcs:
		// Binary search for the range containing v: the largest r with
		// bounds[r] <= v.
		lo, hi := 0, pt.p
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if pt.bounds[mid+1] <= int(v) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	default: // Cyclic
		return int(v) % pt.p
	}
}

// Range returns the contiguous global-id range [lo,hi) owned by rank under
// the Block and BlockArcs schemes. It panics for Cyclic partitions, whose
// ownership is not contiguous.
func (pt *Partition) Range(rank int) (lo, hi graph.V) {
	switch pt.scheme {
	case Block:
		return graph.V(rank * pt.n / pt.p), graph.V((rank + 1) * pt.n / pt.p)
	case BlockArcs:
		return graph.V(pt.bounds[rank]), graph.V(pt.bounds[rank+1])
	default:
		panic("part: Range is only defined for contiguous (Block/BlockArcs) partitions")
	}
}

// Size returns the number of vertices owned by rank.
func (pt *Partition) Size(rank int) int {
	switch pt.scheme {
	case Block, BlockArcs:
		lo, hi := pt.Range(rank)
		return int(hi - lo)
	default:
		base := pt.n / pt.p
		if rank < pt.n%pt.p {
			base++
		}
		return base
	}
}

// LocalIndex converts the global id of a vertex into its index within its
// owner's local arrays.
func (pt *Partition) LocalIndex(v graph.V) int {
	switch pt.scheme {
	case Block, BlockArcs:
		lo, _ := pt.Range(pt.Owner(v))
		return int(v - lo)
	default:
		return int(v) / pt.p
	}
}

// VertexAt is the inverse of LocalIndex: the global id of the local-th
// vertex of rank.
func (pt *Partition) VertexAt(rank, local int) graph.V {
	switch pt.scheme {
	case Block, BlockArcs:
		lo, _ := pt.Range(rank)
		return lo + graph.V(local)
	default:
		return graph.V(local*pt.p + rank)
	}
}

// EdgeCut returns the fraction of arcs (u,v) whose endpoints live on
// different ranks. The paper observes 95% cut for R-MAT S20 E24 on 8 ranks
// and uses the cut fraction to explain why communication dominates.
func EdgeCut(g graph.Store, pt *Partition) float64 {
	arcs := g.NumArcs()
	if arcs == 0 {
		return 0
	}
	cut := 0
	var buf []graph.V
	for v := 0; v < g.NumVertices(); v++ {
		ov := pt.Owner(graph.V(v))
		buf = g.AdjInto(graph.V(v), buf)
		for _, u := range buf {
			if pt.Owner(u) != ov {
				cut++
			}
		}
	}
	return float64(cut) / float64(arcs)
}

// Imbalance returns max_rank(arcs owned)/mean(arcs owned) — the load
// imbalance the paper blames for Orkut's weaker scaling (§IV-D-2, up to 25%
// runtime difference between processes).
func Imbalance(g graph.Store, pt *Partition) float64 {
	arcs := make([]int, pt.p)
	for v := 0; v < g.NumVertices(); v++ {
		arcs[pt.Owner(graph.V(v))] += g.OutDegree(graph.V(v))
	}
	max, sum := 0, 0
	for _, a := range arcs {
		sum += a
		if a > max {
			max = a
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(pt.p)
	return float64(max) / mean
}

// LocalCSR is one rank's partition of the graph in CSR form: the arrays the
// rank exposes in its RMA windows (Fig. 3 of the paper). Offsets are local
// (offsets[i] indexes into Adj for the rank's i-th owned vertex), while
// adjacency entries keep their *global* vertex ids, so a reader can chase
// them to other ranks.
type LocalCSR struct {
	Rank    int
	Part    *Partition
	Offsets []uint64  // length Size(rank)+1
	Adj     []graph.V // concatenated adjacency lists, global ids (nil when compressed)
	// Comp holds the varint/delta-compressed adjacency plane when the rank's
	// lists are stored compressed (Adj is nil then). Offsets stays plain —
	// it backs the offsets window, whose byte image is model-visible and
	// pinned regardless of how adjacency is stored host-side.
	Comp *graph.CompressedAdj
}

// Extract builds rank's LocalCSR from the full graph. In a real deployment
// each node reads only its chunk from disk (Fig. 3 step 1); here the
// in-memory store plays the role of the shared file.
func Extract(g graph.Store, pt *Partition, rank int) *LocalCSR {
	size := pt.Size(rank)
	offsets := make([]uint64, size+1)
	total := 0
	for i := 0; i < size; i++ {
		total += g.OutDegree(pt.VertexAt(rank, i))
	}
	adj := make([]graph.V, 0, total)
	var buf []graph.V
	for i := 0; i < size; i++ {
		buf = g.AdjInto(pt.VertexAt(rank, i), buf)
		adj = append(adj, buf...)
		offsets[i+1] = uint64(len(adj))
	}
	return &LocalCSR{Rank: rank, Part: pt, Offsets: offsets, Adj: adj}
}

// ExtractCompressed builds rank's LocalCSR with varint/delta-compressed
// adjacency, encoding straight from the source store without materializing
// the plain local lists. The decoded lists are bit-identical to Extract's,
// so everything downstream of the decode — partitions, windows, charges —
// is too.
func ExtractCompressed(g graph.Store, pt *Partition, rank int) *LocalCSR {
	size := pt.Size(rank)
	offsets := make([]uint64, size+1)
	for i := 0; i < size; i++ {
		offsets[i+1] = offsets[i] + uint64(g.OutDegree(pt.VertexAt(rank, i)))
	}
	comp := graph.NewCompressedAdj(offsets, func(i int, buf []graph.V) []graph.V {
		return g.AdjInto(pt.VertexAt(rank, i), buf)
	})
	return &LocalCSR{Rank: rank, Part: pt, Offsets: offsets, Comp: comp}
}

// ExtractAll builds every rank's LocalCSR.
func ExtractAll(g graph.Store, pt *Partition) []*LocalCSR {
	out := make([]*LocalCSR, pt.NumRanks())
	for r := range out {
		out[r] = Extract(g, pt, r)
	}
	return out
}

// ExtractAllCompressed builds every rank's LocalCSR in compressed form.
func ExtractAllCompressed(g graph.Store, pt *Partition) []*LocalCSR {
	out := make([]*LocalCSR, pt.NumRanks())
	for r := range out {
		out[r] = ExtractCompressed(g, pt, r)
	}
	return out
}

// Compressed reports whether the rank's adjacency is stored compressed.
func (lc *LocalCSR) Compressed() bool { return lc.Comp != nil }

// AdjOf returns the adjacency list of the rank's local-th vertex as an
// aliased view. It is only available on plain locals; compressed callers
// must use AdjInto (a silent decode-and-allocate here would hide exactly
// the per-access cost the compressed form trades away).
func (lc *LocalCSR) AdjOf(local int) []graph.V {
	if lc.Comp != nil {
		panic("part: AdjOf on a compressed LocalCSR; use AdjInto")
	}
	return lc.Adj[lc.Offsets[local]:lc.Offsets[local+1]]
}

// AdjInto returns the adjacency list of the rank's local-th vertex: an
// aliased view for plain locals, a decode into buf for compressed ones.
func (lc *LocalCSR) AdjInto(local int, buf []graph.V) []graph.V {
	if lc.Comp != nil {
		return lc.Comp.DecodeList(local, buf)
	}
	return lc.Adj[lc.Offsets[local]:lc.Offsets[local+1]]
}

// DegreeOf returns the degree of the local-th vertex without decoding.
func (lc *LocalCSR) DegreeOf(local int) int {
	return int(lc.Offsets[local+1] - lc.Offsets[local])
}

// AdjMemBytes returns the resident bytes of the adjacency plane (offsets
// excluded): 4 per arc when plain, the encoded footprint when compressed.
func (lc *LocalCSR) AdjMemBytes() int64 {
	if lc.Comp != nil {
		return lc.Comp.MemBytes()
	}
	return int64(len(lc.Adj)) * 4
}

// NumLocal returns the number of vertices owned by this rank.
func (lc *LocalCSR) NumLocal() int { return len(lc.Offsets) - 1 }
