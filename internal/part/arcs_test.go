package part

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func skewedGraph(n int, seed int64) *graph.Graph {
	// Degree-ordered BA-like construction: early vertices become hubs.
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for v := 1; v < n; v++ {
		for k := 0; k < 4; k++ {
			// Preferential-ish: attach to a random earlier vertex,
			// biased to small ids.
			t := rng.Intn(v)
			t = rng.Intn(t + 1)
			if graph.V(t) != graph.V(v) {
				edges = append(edges, graph.Edge{Src: graph.V(v), Dst: graph.V(t)})
			}
		}
	}
	g, err := graph.Build(graph.Undirected, n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestNewArcBalancedInvariants(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		p := 1 + int(pRaw)%16
		g := skewedGraph(200, seed)
		pt, err := NewArcBalanced(g, p)
		if err != nil {
			return false
		}
		// Ranges must tile [0, n) in order.
		covered := 0
		for r := 0; r < p; r++ {
			lo, hi := pt.Range(r)
			if int(lo) != covered || hi < lo {
				return false
			}
			covered = int(hi)
		}
		if covered != g.NumVertices() {
			return false
		}
		// Owner / LocalIndex / VertexAt must be mutually consistent.
		for v := 0; v < g.NumVertices(); v++ {
			r := pt.Owner(graph.V(v))
			lo, hi := pt.Range(r)
			if graph.V(v) < lo || graph.V(v) >= hi {
				return false
			}
			if pt.VertexAt(r, pt.LocalIndex(graph.V(v))) != graph.V(v) {
				return false
			}
		}
		// Sizes sum to n.
		total := 0
		for r := 0; r < p; r++ {
			total += pt.Size(r)
		}
		return total == g.NumVertices()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestArcBalancedBeatsBlockOnSkew(t *testing.T) {
	g := skewedGraph(2000, 7)
	for _, p := range []int{4, 8, 16} {
		block := MustNew(Block, g.NumVertices(), p)
		arcs, err := NewArcBalanced(g, p)
		if err != nil {
			t.Fatal(err)
		}
		ib, ia := Imbalance(g, block), Imbalance(g, arcs)
		if ia >= ib {
			t.Fatalf("p=%d: arc-balanced imbalance %.2f not below block %.2f", p, ia, ib)
		}
		if ia > 1.6 {
			t.Fatalf("p=%d: arc-balanced imbalance %.2f too high", p, ia)
		}
	}
}

func TestArcBalancedUniformNearEqual(t *testing.T) {
	// On a uniform-degree graph, arc balancing reduces to vertex
	// balancing: sizes differ only around range boundaries.
	var edges []graph.Edge
	n := 512
	for v := 0; v < n; v++ {
		for k := 1; k <= 3; k++ {
			edges = append(edges, graph.Edge{Src: graph.V(v), Dst: graph.V((v + k) % n)})
		}
	}
	g, err := graph.Build(graph.Undirected, n, edges)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := NewArcBalanced(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		if s := pt.Size(r); s < n/8-2 || s > n/8+2 {
			t.Fatalf("rank %d owns %d vertices on a uniform graph, want ≈ %d", r, s, n/8)
		}
	}
}

func TestArcBalancedEveryRankNonEmpty(t *testing.T) {
	g := skewedGraph(64, 3)
	pt, err := NewArcBalanced(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 16; r++ {
		if pt.Size(r) == 0 {
			t.Fatalf("rank %d empty with n=64, p=16", r)
		}
	}
}

func TestBlockArcsSchemeErrors(t *testing.T) {
	if _, err := New(BlockArcs, 10, 2); err == nil {
		t.Fatal("New accepted BlockArcs without a graph")
	}
	g := skewedGraph(20, 1)
	if _, err := NewArcBalanced(g, 0); err == nil {
		t.Fatal("NewArcBalanced accepted p=0")
	}
	if BlockArcs.String() != "block-arcs" {
		t.Fatalf("String() = %q", BlockArcs.String())
	}
}

func TestBuildDispatch(t *testing.T) {
	g := skewedGraph(50, 2)
	for _, s := range []Scheme{Block, Cyclic, BlockArcs} {
		pt, err := Build(s, g, 4)
		if err != nil {
			t.Fatalf("Build(%v): %v", s, err)
		}
		if pt.Scheme() != s {
			t.Fatalf("Build(%v) produced scheme %v", s, pt.Scheme())
		}
	}
}
