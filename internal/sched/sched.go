// Package sched provides the deterministic multicore rank scheduler: it
// runs the bodies of p simulated ranks on real goroutines while bounding
// how many execute simultaneously to a fixed worker count.
//
// The paper's machine makes P ranks progress concurrently; the simulation
// must do the same to use the host's cores, but it must also keep the
// golden-test guarantee that every simulated quantity — SimTime float
// bits, triangle counts, cache hit counts — is bit-identical at any
// worker count, including Workers=1. The scheduler therefore never
// *orders* rank execution: it only bounds concurrency. Determinism is a
// property of the workloads it runs, enforced by construction elsewhere
// (rank-local clocks and counters, disjoint output ranges, and the staged
// commutative window updates of internal/rma — see DESIGN.md §4). Under
// that discipline any interleaving of rank bodies produces the same
// results, so the pool is free to let the Go runtime schedule however it
// likes.
//
// The one scheduling subtlety is blocking rendezvous: a rank that waits
// at a simulated barrier must not pin an execution slot, or W < p worker
// slots could all be held by blocked ranks while the ranks they wait for
// are starved — a deadlock. Yield releases the caller's slot around a
// blocking section and reacquires it afterwards; internal/rma's Barrier
// and every other cross-rank rendezvous built on the pool route their
// blocking through it.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds how many rank bodies execute concurrently. The zero value
// is not usable; call New.
type Pool struct {
	workers int
	slots   chan struct{}

	// Run supervision (cancel.go): the in-flight RunCtx's cancellation
	// state, and the registered rendezvous wakeup hooks.
	cur    atomic.Pointer[runState]
	hookMu sync.Mutex
	hooks  []func()
}

// New creates a pool with the given worker bound. workers <= 0 selects
// GOMAXPROCS, the default that saturates the host without oversubscribing
// it.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, slots: make(chan struct{}, workers)}
	for i := 0; i < workers; i++ {
		p.slots <- struct{}{}
	}
	return p
}

// Workers returns the concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// acquire takes an execution slot, blocking until one is free.
func (p *Pool) acquire() { <-p.slots }

// release returns an execution slot.
func (p *Pool) release() { p.slots <- struct{}{} }

// Run executes body(i) for every i in [0, n), each on its own goroutine
// but with at most Workers bodies executing at any moment, and returns
// when all have finished. Bodies may block in Yield-routed rendezvous
// without deadlocking the pool. A body that panics (outside a Yield
// section) has its panic re-thrown from Run once the remaining bodies
// finish, matching the old serial engine loops where a rank's panic
// unwound through the caller.
func (p *Pool) Run(n int, body func(i int)) {
	done := make(chan interface{}, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			p.acquire()
			defer p.release()
			defer func() { done <- recover() }()
			body(i)
		}(i)
	}
	var pv interface{}
	for i := 0; i < n; i++ {
		if v := <-done; v != nil {
			pv = v
		}
	}
	if pv != nil {
		panic(pv)
	}
}

// Yield releases the caller's execution slot, runs blocked (which may
// block on other ranks — a barrier rendezvous, a condition variable), and
// reacquires a slot before returning. It must only be called from inside
// a body started by Run or RunCtx; the caller holds a slot by
// construction. The reacquire is deferred so that a blocked section that
// panics — a canceled rank unwinding out of a rendezvous — restores the
// slot the body's own deferred release is about to return; without it the
// unwind would release a slot the body no longer holds and corrupt the
// pool's accounting.
func (p *Pool) Yield(blocked func()) {
	p.release()
	defer p.acquire()
	blocked()
}
