package sched

// Run progress accounting for the serving plane's watchdog.
//
// A wedged run — a rank body stuck in host code that never reaches a
// checkpoint — is invisible to the cancellation plane: Checkpoint is
// only observed at operation issue points and barrier wakeups, so a rank
// that stops issuing operations stops observing anything. The watchdog
// (internal/serve) needs an out-of-band signal that the run is still
// moving. Progress is that signal: a set of monotonic counters bumped
// from the substrate's existing checkpoint plants and barrier closes,
// read atomically by a supervisor goroutine. The counters are host-side
// diagnostics only — they are never observed by the simulated clocks, so
// arming them cannot perturb a single modeled bit.
//
// Why these two sources compose into a stall-proof contract:
//
//   - Checkpoint ticks fire every checkpointMask+1 issue points on each
//     rank (internal/rma), so any rank actively issuing operations keeps
//     the total moving.
//   - Barrier generation fires each time a barrier round closes. A rank
//     parked *at* a barrier is not issuing operations, but it is waiting
//     for stragglers that are — and those stragglers tick. The total
//     therefore only goes quiet when every rank is simultaneously stuck:
//     either all parked at a rendezvous that cannot close (a genuine
//     wedge — some rank will never arrive) or all wedged in host code.
//     A healthy run at a barrier can never false-positive, because the
//     barrier closes (bumping the generation) as soon as the last
//     straggler — which was ticking — arrives.

import "sync/atomic"

// progressCell is one rank's tick counter, padded to a cache line so the
// per-rank bumps on the hot checkpoint path never false-share.
type progressCell struct {
	v atomic.Uint64
	_ [56]byte
}

// Progress is the monotonic progress counter of one supervised run:
// per-rank checkpoint ticks plus a global barrier generation. The zero
// value is not usable; call NewProgress. All methods are safe for
// concurrent use; Tick is wait-free (one relaxed atomic add).
type Progress struct {
	barriers atomic.Uint64
	ticks    []progressCell
}

// NewProgress creates a progress counter for a run of the given rank
// count.
func NewProgress(ranks int) *Progress {
	if ranks < 1 {
		ranks = 1
	}
	return &Progress{ticks: make([]progressCell, ranks)}
}

// Tick records one unit of forward progress on the given rank. Called
// from the substrate's masked checkpoint plant — every checkpointMask+1
// operation issue points — so the cost is one atomic add every few
// hundred simulated operations.
func (p *Progress) Tick(rank int) {
	if p == nil || rank < 0 || rank >= len(p.ticks) {
		return
	}
	p.ticks[rank].v.Add(1)
}

// BarrierTick records the close of one barrier round (all ranks arrived
// and the generation advanced).
func (p *Progress) BarrierTick() {
	if p == nil {
		return
	}
	p.barriers.Add(1)
}

// Total returns the monotonic sum the watchdog samples: every per-rank
// tick plus every barrier close. Two equal consecutive samples spaced a
// stall-timeout apart mean no rank issued an operation and no barrier
// closed in between — the run is wedged.
func (p *Progress) Total() uint64 {
	if p == nil {
		return 0
	}
	t := p.barriers.Load()
	for i := range p.ticks {
		t += p.ticks[i].v.Load()
	}
	return t
}

// ProgressSnapshot is a point-in-time copy of the counters, captured for
// stall diagnostics: which ranks were still moving and which had gone
// quiet when the watchdog fired.
type ProgressSnapshot struct {
	// Ticks is the per-rank checkpoint tick count.
	Ticks []uint64
	// Barriers is the number of barrier rounds that closed.
	Barriers uint64
}

// Snapshot copies the current counter values.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	s := ProgressSnapshot{
		Ticks:    make([]uint64, len(p.ticks)),
		Barriers: p.barriers.Load(),
	}
	for i := range p.ticks {
		s.Ticks[i] = p.ticks[i].v.Load()
	}
	return s
}
