package sched

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCtxCompletesWithoutError(t *testing.T) {
	p := New(4)
	var n int32
	if err := p.RunCtx(context.Background(), 16, func(i int) { atomic.AddInt32(&n, 1) }); err != nil {
		t.Fatalf("RunCtx = %v, want nil", err)
	}
	if n != 16 {
		t.Fatalf("executed %d bodies, want 16", n)
	}
}

func TestRunCtxCancelUnwindsAtCheckpoints(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		ctx, cancel := context.WithCancel(context.Background())
		var reached int32
		err := p.RunCtx(ctx, 8, func(i int) {
			if atomic.AddInt32(&reached, 1) == 8 {
				cancel()
			}
			// Spin until the cancel propagates; Checkpoint must be the only
			// exit. Yielding keeps the remaining bodies schedulable at
			// workers=1 so every rank reaches the loop.
			for {
				p.Checkpoint()
				p.Yield(func() {})
			}
		})
		if !errors.Is(err, ErrRunCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrRunCanceled", workers, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want to unwrap context.Canceled", workers, err)
		}
	}
}

func TestRunCtxDeadlineIsDistinguishable(t *testing.T) {
	p := New(2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := p.RunCtx(ctx, 2, func(i int) {
		for {
			p.Checkpoint()
		}
	})
	if !errors.Is(err, ErrRunCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrRunCanceled wrapping DeadlineExceeded", err)
	}
}

func TestRunCtxPanicIsIsolated(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		err := p.RunCtx(context.Background(), 8, func(i int) {
			if i == 3 {
				panic("kaboom")
			}
			// Unwound by the panic-induced cancel; yielding keeps rank 3
			// schedulable at workers=1.
			for {
				p.Checkpoint()
				p.Yield(func() {})
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Rank != 3 || pe.Value != "kaboom" {
			t.Fatalf("workers=%d: PanicError = rank %d value %v", workers, pe.Rank, pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "cancel_test.go") {
			t.Fatalf("workers=%d: stack does not point at the panic site:\n%s", workers, pe.Stack)
		}
	}
}

func TestRunCtxAbortReturnsTheError(t *testing.T) {
	p := New(2)
	boom := errors.New("deterministic failure")
	err := p.RunCtx(context.Background(), 4, func(i int) {
		if i == 1 {
			Abort(boom)
		}
		for {
			p.Checkpoint()
			p.Yield(func() {})
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the abort error", err)
	}
	if errors.Is(err, ErrRunCanceled) {
		t.Fatalf("abort error must not read as plain cancellation")
	}
}

// TestRunCtxCancelWakesYieldedRendezvous pins the wakeup path: a rank
// blocked inside a Yield-routed rendezvous holds no slot and polls no
// checkpoints, so cancellation must reach it through a NotifyCancel hook.
func TestRunCtxCancelWakesYieldedRendezvous(t *testing.T) {
	p := New(2)
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	p.NotifyCancel(func() {
		mu.Lock()
		cond.Broadcast()
		mu.Unlock()
	})
	ctx, cancel := context.WithCancel(context.Background())
	var waiting int32
	go func() {
		for atomic.LoadInt32(&waiting) < 4 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	err := p.RunCtx(ctx, 4, func(i int) {
		p.Yield(func() {
			mu.Lock()
			atomic.AddInt32(&waiting, 1)
			for !p.Canceled() {
				cond.Wait()
			}
			mu.Unlock()
			panic(panicCanceled{})
		})
	})
	if !errors.Is(err, ErrRunCanceled) {
		t.Fatalf("err = %v, want ErrRunCanceled", err)
	}
}

// TestRunCtxReusableAfterCancel pins that a pool whose run was canceled
// (or panicked) supervises the next run cleanly — the slot accounting
// survived the unwind.
func TestRunCtxReusableAfterCancel(t *testing.T) {
	p := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.RunCtx(ctx, 4, func(i int) {
		for {
			p.Checkpoint()
			p.Yield(func() {})
		}
	}); !errors.Is(err, ErrRunCanceled) {
		t.Fatalf("first run: err = %v, want ErrRunCanceled", err)
	}
	if err := p.RunCtx(context.Background(), 4, func(i int) { panic("x") }); err == nil {
		t.Fatalf("second run: want panic error")
	}
	var n int32
	if err := p.RunCtx(context.Background(), 4, func(i int) { atomic.AddInt32(&n, 1) }); err != nil || n != 4 {
		t.Fatalf("third run: err = %v, executed %d", err, n)
	}
}
