package sched

// Run supervision: context cancellation, deterministic aborts and panic
// isolation for pool-scheduled rank bodies.
//
// RunCtx is Run with an escape hatch. Three things can end a run early:
//
//   - The context is canceled (caller deadline, server shutdown). Rank
//     bodies observe this only at checkpoints — Checkpoint calls the
//     substrate plants at operation issue points and barrier waits — and
//     unwind by panicking with a private sentinel the collector translates
//     into ErrRunCanceled. Between checkpoints a body runs exactly the
//     instructions it would have run anyway, which is what keeps the
//     cancellation plane invisible to the simulated clocks: a run either
//     completes with bit-identical results or returns an error and no
//     results at all (DESIGN.md §8).
//
//   - A body calls Abort(err): a deterministic, modeled failure (the
//     fault plane's crash-stop class in fail-fast mode). The aborting
//     rank unwinds immediately, every other rank is canceled, and RunCtx
//     returns err itself — the same error on every host schedule.
//
//   - A body panics: a bug, not a model event. The collector wraps the
//     value and stack into *PanicError with the rank attached, cancels
//     the remaining ranks so nobody waits forever at a rendezvous, and
//     returns the error instead of crashing the process. The panic is
//     contained to the run; state owned by the run is unwound through the
//     bodies' own defers (scratch repooling, slot release).
//
// Cancellation must also wake ranks blocked in rendezvous (a barrier
// holds no slot and polls no checkpoints). NotifyCancel registers a
// wakeup hook — the rma Barrier registers its Broadcast — invoked once
// per canceled run.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ErrRunCanceled is the sentinel a canceled run's error matches via
// errors.Is. The concrete error additionally unwraps to the context's
// cause, so errors.Is(err, context.DeadlineExceeded) distinguishes a
// deadline from an explicit cancel.
var ErrRunCanceled = errors.New("sched: run canceled")

// canceledError is the concrete error of a canceled run.
type canceledError struct{ cause error }

func (e *canceledError) Error() string {
	if e.cause != nil {
		return "sched: run canceled: " + e.cause.Error()
	}
	return ErrRunCanceled.Error()
}

func (e *canceledError) Is(target error) bool { return target == ErrRunCanceled }
func (e *canceledError) Unwrap() error        { return e.cause }

// PanicError is a rank-body panic converted into a run error: the rank
// that panicked, the recovered value, and the goroutine stack captured at
// the recovery point. The process survives; the run's results are
// discarded.
type PanicError struct {
	Rank  int
	Value interface{}
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: rank %d panicked: %v", e.Rank, e.Value)
}

// panicCanceled is the private unwind sentinel Checkpoint throws. It never
// escapes the package: the collector swallows it.
type panicCanceled struct{}

// runAbort carries a deterministic abort error up the aborting rank's
// stack. Like panicCanceled it never escapes RunCtx.
type runAbort struct{ err error }

// Abort unwinds the calling rank body and makes the surrounding RunCtx
// return err (the remaining ranks are canceled). It must be called from
// inside a body started by RunCtx; under plain Run the abort surfaces as
// a panic, since plain Run has no error channel.
func Abort(err error) {
	panic(runAbort{err: err})
}

// runState is the cancellation state of one RunCtx invocation.
type runState struct {
	canceled atomic.Bool
	mu       sync.Mutex
	cause    error
	// ctx/done let Checkpoint observe cancellation directly: a run whose
	// ranks keep hitting checkpoints must not depend on the watcher
	// goroutine winning a scheduling race to be canceled (on a loaded
	// single-core host a short run can otherwise finish first).
	ctx  context.Context
	done <-chan struct{}
	// wedge is closed exactly once when the run is canceled or aborted;
	// WedgeUntilCanceled parks on it. Unlike the NotifyCancel hooks it
	// needs no registration, so a wedged rank costs nothing when no rank
	// wedges.
	wedge chan struct{}
}

// NotifyCancel registers f to be invoked (once, on the canceling
// goroutine) whenever a run on this pool is canceled or aborted. It is
// the rendezvous wakeup hook: blocking primitives built over the pool
// register their broadcast so waiters re-check Canceled. Hooks persist
// across runs; registration must not race RunCtx's cancellation (create
// barriers before starting the run).
func (p *Pool) NotifyCancel(f func()) {
	p.hookMu.Lock()
	p.hooks = append(p.hooks, f)
	p.hookMu.Unlock()
}

// Canceled reports whether the pool's current run has been canceled or
// aborted. Rendezvous loops poll it after NotifyCancel wakeups.
func (p *Pool) Canceled() bool {
	rs := p.cur.Load()
	return rs != nil && rs.canceled.Load()
}

// Checkpoint panics with the cancellation sentinel if the current run has
// been canceled, unwinding the calling rank body; otherwise it is a nil
// check, an atomic load and a non-blocking channel poll. The substrate
// calls it at operation issue points and after barrier wakeups — the only
// places a rank observes cancellation. Polling the context's done channel
// here (not just the canceled flag) makes observation deterministic: the
// first checkpoint after the context is canceled unwinds, whether or not
// the watcher goroutine has run yet.
func (p *Pool) Checkpoint() {
	rs := p.cur.Load()
	if rs == nil {
		return
	}
	if rs.canceled.Load() {
		panic(panicCanceled{})
	}
	if rs.done != nil {
		select {
		case <-rs.done:
			p.cancel(rs, &canceledError{cause: context.Cause(rs.ctx)})
			panic(panicCanceled{})
		default:
		}
	}
}

// WedgeUntilCanceled parks the calling rank body until the surrounding
// run is canceled or aborted, then unwinds it through the normal
// cancellation sentinel. It is the fault plane's wedge class (a rank
// stuck in host code that never again reaches a checkpoint): the slot is
// yielded first, so the wedged rank starves nobody — it is invisible to
// the pool, to the other ranks, and to every simulated clock. Only an
// external cancel (the serve watchdog, a caller deadline, run abort)
// releases it. Under plain Run — no supervision, nothing will ever
// cancel — it returns immediately rather than deadlock.
func (p *Pool) WedgeUntilCanceled() {
	rs := p.cur.Load()
	if rs == nil {
		return
	}
	p.Yield(func() { <-rs.wedge })
	p.Checkpoint()
}

// cancel flips the run canceled (recording cause on the first call) and
// fires the registered wakeup hooks.
func (p *Pool) cancel(rs *runState, cause error) {
	rs.mu.Lock()
	if rs.canceled.Load() {
		rs.mu.Unlock()
		return
	}
	rs.cause = cause
	rs.canceled.Store(true)
	close(rs.wedge)
	rs.mu.Unlock()
	p.hookMu.Lock()
	hooks := append([]func(){}, p.hooks...)
	p.hookMu.Unlock()
	for _, f := range hooks {
		f()
	}
}

// RunCtx is Run under supervision: it executes body(i) for every i in
// [0, n) with at most Workers bodies concurrent, and returns when all
// have finished — nil on a completed run, ErrRunCanceled (wrapping the
// context cause) on cancellation, the Abort error on a deterministic
// abort, or *PanicError when a body panics. On any non-nil return the
// run's outputs must be discarded: some bodies did not finish.
//
// A pool supervises one run at a time; RunCtx panics if a run is already
// in flight (the engines create one pool per run).
func (p *Pool) RunCtx(ctx context.Context, n int, body func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	rs := &runState{ctx: ctx, done: ctx.Done(), wedge: make(chan struct{})}
	if !p.cur.CompareAndSwap(nil, rs) {
		panic("sched: RunCtx on a pool whose run is still in flight")
	}
	defer p.cur.Store(nil)

	if rs.done != nil {
		// Checkpoints poll done directly; the watcher goroutine covers the
		// complement — ranks blocked in a rendezvous need its cancel to
		// fire the registered wakeup hooks.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-rs.done:
				p.cancel(rs, &canceledError{cause: context.Cause(ctx)})
			case <-stop:
			}
		}()
	}

	results := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			p.acquire()
			defer p.release()
			defer func() {
				switch v := recover().(type) {
				case nil:
					results <- nil
				case panicCanceled:
					results <- nil // canceled rank: unwound cleanly, no error of its own
				case runAbort:
					results <- v.err
				default:
					results <- &PanicError{Rank: i, Value: v, Stack: debug.Stack()}
				}
			}()
			body(i)
		}(i)
	}
	var firstErr error
	for i := 0; i < n; i++ {
		if err := <-results; err != nil {
			if firstErr == nil {
				firstErr = err
			}
			// Unwind the remaining ranks: without this they would wait
			// forever at a rendezvous for a rank that no longer exists.
			p.cancel(rs, err)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if rs.canceled.Load() {
		rs.mu.Lock()
		cause := rs.cause
		rs.mu.Unlock()
		if cause == nil {
			cause = &canceledError{}
		}
		return cause
	}
	return nil
}
