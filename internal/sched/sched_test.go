package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunExecutesAllOnce(t *testing.T) {
	p := New(3)
	const n = 100
	var counts [n]int32
	p.Run(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("body %d executed %d times, want 1", i, c)
		}
	}
}

func TestConcurrencyBounded(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := New(workers)
		var cur, peak int32
		p.Run(32, func(i int) {
			c := atomic.AddInt32(&cur, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if c <= old || atomic.CompareAndSwapInt32(&peak, old, c) {
					break
				}
			}
			runtime.Gosched() // widen the overlap window
			atomic.AddInt32(&cur, -1)
		})
		if got := atomic.LoadInt32(&peak); got > int32(workers) {
			t.Errorf("workers=%d: observed %d concurrent bodies", workers, got)
		}
	}
}

func TestDefaultWorkersIsGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want GOMAXPROCS = %d", got, want)
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(-3).Workers() = %d, want GOMAXPROCS", got)
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("New(7).Workers() = %d, want 7", got)
	}
}

// TestYieldPreventsBarrierDeadlock is the load-bearing property: with a
// single worker slot, n ranks that all rendezvous at a barrier can only
// make progress if the blocked ranks release their slot.
func TestYieldPreventsBarrierDeadlock(t *testing.T) {
	const n = 8
	p := New(1)
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	arrived := 0
	p.Run(n, func(i int) {
		p.Yield(func() {
			mu.Lock()
			arrived++
			if arrived == n {
				cond.Broadcast()
			} else {
				for arrived < n {
					cond.Wait()
				}
			}
			mu.Unlock()
		})
	})
	if arrived != n {
		t.Fatalf("arrived = %d, want %d", arrived, n)
	}
}

func TestRunMoreRanksThanWorkers(t *testing.T) {
	p := New(2)
	var sum int64
	var mu sync.Mutex
	p.Run(50, func(i int) {
		mu.Lock()
		sum += int64(i)
		mu.Unlock()
	})
	if sum != 50*49/2 {
		t.Fatalf("sum = %d, want %d", sum, 50*49/2)
	}
}
