package p2p

import (
	"testing"

	"repro/internal/rma"
)

// TestBarrierAmplifiesNoise pins the mechanism behind the A7 ablation at
// the substrate level: under per-rank noise, a BSP world's barrier makes
// every rank pay the worst perturbation, so the world's clock advances by
// more than any average rank would alone.
func TestBarrierAmplifiesNoise(t *testing.T) {
	const ranks = 8
	const steps = 50
	const workNS = 10000

	run := func(noise rma.NoiseSpec) (maxClock float64, sumWait float64) {
		model := rma.DefaultCostModel()
		model.Noise = noise
		w := NewWorld(ranks, model)
		for s := 0; s < steps; s++ {
			w.Superstep(func(r *Rank) {
				r.AdvanceBy(workNS)
			})
		}
		for _, r := range w.Ranks() {
			sumWait += r.Counters().BarrierWait
		}
		return w.MaxClock(), sumWait
	}

	quiet, quietWait := run(rma.NoiseSpec{})
	noisy, noisyWait := run(rma.NoiseSpec{Amp: 0.5, Seed: 3})

	if noisy <= quiet {
		t.Fatalf("noisy BSP world (%.0f) not slower than quiet (%.0f)", noisy, quiet)
	}
	// The barrier effect: expected per-step cost under max-of-8 U(0,0.5)
	// jitter is close to the 50% worst case, not the 25% average. Allow
	// slack but require the max-statistics signature.
	perStepExtra := (noisy - quiet) / steps
	if perStepExtra < 0.35*workNS {
		t.Fatalf("per-step noise cost %.0f ns; barrier should pay near-worst-case (~%.0f), not the mean",
			perStepExtra, 0.5*workNS)
	}
	if noisyWait <= quietWait {
		t.Fatalf("noise did not increase barrier waiting (%.0f vs %.0f)", noisyWait, quietWait)
	}
}

// TestNoiseDeterministicInBSP: identical seeds give identical superstep
// schedules.
func TestNoiseDeterministicInBSP(t *testing.T) {
	run := func() float64 {
		model := rma.DefaultCostModel()
		model.Noise = rma.NoiseSpec{Amp: 0.3, SpikePeriodNS: 20000, SpikeNS: 5000, Seed: 9}
		w := NewWorld(4, model)
		for s := 0; s < 20; s++ {
			w.Superstep(func(r *Rank) {
				r.AdvanceBy(5000)
				r.Send((r.ID()+1)%4, make([]byte, 64))
			})
		}
		return w.MaxClock()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical noisy BSP runs diverged: %g vs %g", a, b)
	}
}
