// Package p2p simulates two-sided MPI messaging organized as bulk-
// synchronous supersteps. It is the substrate for the TriC baseline
// (internal/tric): TriC follows a query–response, all-to-all pattern with
// blocking collective exchanges, whose synchronization overhead is exactly
// what the paper's asynchronous RMA design removes (§I, §IV-B).
//
// Cost model (shared with internal/rma): a message of s bytes costs the
// sender SendRecvOverhead + α + s·β (two-sided adds matching overhead over
// RMA, §II-E) and the receiver a matching overhead plus a local copy. Every
// Exchange ends with a barrier: all clocks jump to the global maximum plus
// BarrierLatency. The simulated time of a run is therefore dominated by the
// slowest rank of every superstep — the BSP straggler effect.
package p2p

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/rma"
	"repro/internal/sched"
)

// Message is a delivered two-sided message. Payload travels by reference —
// the simulation runs in one address space, so copying real bytes would
// only burn wall-clock time — while Size is the modeled wire size in bytes
// that all costs are charged from. Data is a convenience accessor for
// []byte payloads.
type Message struct {
	From    int
	Size    int
	Payload interface{}
}

// Data returns the payload as []byte; it panics for non-byte payloads.
func (m Message) Data() []byte { return m.Payload.([]byte) }

// Counters aggregates a rank's two-sided communication activity.
type Counters struct {
	MsgsSent    int64
	BytesSent   int64
	SendCost    float64 // ns charged for sends
	RecvCost    float64 // ns charged for receives
	BarrierWait float64 // ns spent waiting at barriers for stragglers
	ComputeTime float64
	Retransmits int64   // messages dropped in flight and resent (fault plane)
	FaultWait   float64 // ns lost to ack timeouts and retransmissions
}

// Rank is one process of the BSP world. Ranks must only be used inside
// World.Superstep bodies.
type Rank struct {
	id    int
	world *World
	clock rma.Clock
	ctr   Counters

	// tape defers the superstep body's charges (compute, protocol
	// handling, send costs) until the clock is observed — the same
	// model/host decoupling as the rma charge tape, specialized to the
	// two counter destinations a BSP rank has. Charges fold in append
	// (= program) order at Clock/Counters reads and at the exchange
	// boundary, so noise draws and float accumulation keep the exact
	// canonical sequence.
	tape []p2pCharge

	outbox [][]Message // staged sends, indexed by destination
	inbox  []Message   // messages delivered by the previous exchange

	// faults is the rank's bound fault schedule (World.SetFaults); nil —
	// the default — costs one nil check per send.
	faults *fault.Sched
}

// p2pCharge is one deferred charge: a modeled duration plus its
// destination — compute time, send cost, or fault recovery (ack timeouts
// and retransmissions, which fold as raw advances: recovery is blocking,
// so it is never noise-perturbed and consumes no noise draws).
type p2pCharge struct {
	ns   float64
	kind uint8
}

const (
	chargeCompute uint8 = iota
	chargeSend
	chargeFault
)

// push appends a charge, folding a full tape in place first (folding
// early is always legal — fold order equals append order either way — so
// the tape stays one fixed slab however long a superstep body runs).
func (r *Rank) push(c p2pCharge) {
	if len(r.tape) == cap(r.tape) {
		r.fold()
	}
	r.tape = append(r.tape, c)
}

// fold drains the deferred charges in program order.
func (r *Rank) fold() {
	if len(r.tape) == 0 {
		return
	}
	for _, c := range r.tape {
		switch c.kind {
		case chargeSend:
			r.clock.Advance(c.ns)
			r.ctr.SendCost += c.ns
		case chargeFault:
			r.clock.AdvanceRaw(c.ns)
			r.ctr.FaultWait += c.ns
		default:
			r.clock.Advance(c.ns)
			r.ctr.ComputeTime += c.ns
		}
	}
	r.tape = r.tape[:0]
}

// ID returns the rank id.
func (r *Rank) ID() int { return r.id }

// Clock returns the rank's simulated clock, folding deferred charges first.
func (r *Rank) Clock() *rma.Clock {
	r.fold()
	return &r.clock
}

// Counters returns a snapshot of the rank's counters, folding first.
func (r *Rank) Counters() Counters {
	r.fold()
	return r.ctr
}

// Compute charges ops × κ of modeled computation.
func (r *Rank) Compute(ops int) {
	r.push(p2pCharge{ns: float64(ops) * r.world.model.ComputePerOp})
}

// AdvanceBy charges an arbitrary modeled duration in ns (e.g. per-query
// protocol processing that is not proportional to intersection ops).
func (r *Rank) AdvanceBy(ns float64) {
	r.push(p2pCharge{ns: ns})
}

// Send stages a []byte message for dst; it is delivered by the next
// Exchange. The send cost (matching overhead + α + s·β) is charged
// immediately, as with a blocking MPI_Send in rendezvous mode.
func (r *Rank) Send(dst int, data []byte) {
	r.SendPayload(dst, data, len(data))
}

// SendPayload stages an arbitrary payload with an explicit modeled wire
// size. Callers shipping large derived data (e.g. TriC's candidate lists)
// use this to charge the full cost without materializing the bytes.
func (r *Rank) SendPayload(dst int, payload interface{}, size int) {
	if dst < 0 || dst >= r.world.p {
		panic(fmt.Sprintf("p2p: rank %d: Send to invalid rank %d", r.id, dst))
	}
	if size < 0 {
		panic(fmt.Sprintf("p2p: rank %d: negative message size %d", r.id, size))
	}
	m := r.world.model
	cost := m.SendRecvOverhead + m.RemoteCost(size)
	if dst == r.id {
		cost = m.LocalCost(size)
	}
	r.push(p2pCharge{ns: cost, kind: chargeSend})
	if r.faults != nil && dst != r.id {
		// Fault plane: the schedule may drop this message in flight d
		// times. The sender detects each loss at the ack-timeout budget
		// and resends at full wire cost, all before the rendezvous
		// returns — so delivery content and the canonical
		// (sender, send-order) exchange fold are untouched, only the
		// sender's clock pays. Decisions key on the rank-local send
		// sequence, making them identical at any worker count.
		if d := r.faults.MsgDrops(); d > 0 {
			pol := r.faults.Policy()
			for i := 0; i < d; i++ {
				r.push(p2pCharge{ns: pol.TimeoutNS, kind: chargeFault})
				r.push(p2pCharge{ns: cost, kind: chargeFault})
			}
			r.ctr.Retransmits += int64(d)
		}
	}
	r.ctr.MsgsSent++
	r.ctr.BytesSent += int64(size)
	r.outbox[dst] = append(r.outbox[dst], Message{From: r.id, Size: size, Payload: payload})
}

// Inbox returns the messages delivered to this rank by the last Exchange,
// in deterministic (sender-rank, send-order) order.
func (r *Rank) Inbox() []Message { return r.inbox }

// World is a BSP world of p ranks.
type World struct {
	p     int
	model rma.CostModel
	pool  *sched.Pool
	ranks []*Rank
	steps int
}

// NewWorld creates a BSP world of p ranks sharing the given cost model,
// with superstep bodies running on up to GOMAXPROCS concurrent workers
// (see NewWorldWorkers).
func NewWorld(p int, model rma.CostModel) *World {
	return NewWorldWorkers(p, model, 0)
}

// NewWorldWorkers creates a BSP world whose superstep bodies execute on at
// most workers concurrent goroutines; workers <= 0 selects GOMAXPROCS.
// Supersteps are barrier-phased — ranks interact only through the
// host-serial Exchange between steps — so results are bit-identical at
// every worker count provided bodies keep their writes rank-disjoint (the
// contract Superstep documents).
func NewWorldWorkers(p int, model rma.CostModel, workers int) *World {
	if p < 1 {
		panic(fmt.Sprintf("p2p: need at least one rank, got %d", p))
	}
	w := &World{p: p, model: model, pool: sched.New(workers)}
	w.ranks = make([]*Rank, p)
	for i := range w.ranks {
		w.ranks[i] = &Rank{id: i, world: w, outbox: make([][]Message, p), tape: make([]p2pCharge, 0, 512)}
		w.ranks[i].clock.SetNoise(model.Noise, i)
	}
	return w
}

// SetFaults installs a deterministic fault schedule: every rank binds its
// own decision stream from the spec. Must be called before the first
// Superstep; a nil or disabled spec leaves the plane off at zero cost.
// Only the message-drop class applies to the two-sided world.
func (w *World) SetFaults(spec *fault.Spec) {
	for i, r := range w.ranks {
		r.faults = fault.New(spec, i)
	}
}

// NumRanks returns the world size.
func (w *World) NumRanks() int { return w.p }

// Ranks returns the rank handles (for reading clocks/counters after a run).
func (w *World) Ranks() []*Rank { return w.ranks }

// Steps returns the number of supersteps executed so far.
func (w *World) Steps() int { return w.steps }

// Superstep runs body on every rank — concurrently, bounded by the
// world's worker count — then performs the all-to-all exchange and
// barrier. Ranks interact only at the exchange boundary, which runs
// host-serially in deterministic (sender, send-order) order, so the
// simulation stays bit-identical at any worker count as long as bodies
// write only rank-disjoint state: a body may touch its own rank's
// staging (outbox, per-rank slices indexed by r.ID(), vertices its rank
// owns) and read shared immutable data, nothing else.
func (w *World) Superstep(body func(r *Rank)) {
	w.pool.Run(w.p, func(i int) {
		body(w.ranks[i])
	})
	w.Exchange()
}

// Exchange delivers all staged messages and synchronizes: every clock jumps
// to the global maximum plus BarrierLatency, and receivers are charged the
// per-message matching overhead plus a local copy of the payload. This is
// the blocking all-to-all step whose cost TriC pays every round.
func (w *World) Exchange() {
	w.steps++
	// Barrier: all ranks wait for the slowest. Superstep bodies have
	// finished, so folding their deferred charges here is safe and makes
	// every clock read true simulated time.
	max := 0.0
	for _, r := range w.ranks {
		r.fold()
		if t := r.clock.Now(); t > max {
			max = t
		}
	}
	max += w.model.BarrierLatency
	for _, r := range w.ranks {
		r.ctr.BarrierWait += max - r.clock.Now()
		r.clock.AdvanceTo(max)
	}
	// Deliver and charge receive costs. Outbox backing arrays are kept
	// for reuse: the Message values were copied into the inbox, so the
	// staging slots can be overwritten by the next superstep's sends
	// without a fresh allocation per (src, dst) pair per round.
	for _, dst := range w.ranks {
		dst.inbox = dst.inbox[:0]
		for src := 0; src < w.p; src++ {
			msgs := w.ranks[src].outbox[dst.id]
			for i, m := range msgs {
				cost := w.model.SendRecvOverhead + w.model.LocalCost(m.Size)
				if src == dst.id {
					cost = w.model.LocalCost(m.Size)
				}
				dst.clock.Advance(cost)
				dst.ctr.RecvCost += cost
				dst.inbox = append(dst.inbox, m)
				msgs[i].Payload = nil // drop the staging reference
			}
			w.ranks[src].outbox[dst.id] = msgs[:0]
		}
	}
}

// AllreduceSum performs a sum all-reduction over per-rank int64 values,
// charging a log₂(p)-depth reduction tree of 8-byte messages, and returns
// the global sum (identical on all ranks, as in MPI_Allreduce).
func (w *World) AllreduceSum(vals []int64) int64 {
	if len(vals) != w.p {
		panic(fmt.Sprintf("p2p: AllreduceSum got %d values for %d ranks", len(vals), w.p))
	}
	sum := int64(0)
	for _, v := range vals {
		sum += v
	}
	depth := 0
	for 1<<depth < w.p {
		depth++
	}
	cost := float64(depth) * (w.model.SendRecvOverhead + w.model.RemoteCost(8))
	max := 0.0
	for _, r := range w.ranks {
		r.fold()
		if t := r.clock.Now(); t > max {
			max = t
		}
	}
	max += cost + w.model.BarrierLatency
	for _, r := range w.ranks {
		r.ctr.BarrierWait += max - r.clock.Now()
		r.clock.AdvanceTo(max)
	}
	w.steps++
	return sum
}

// MaxClock returns the simulated job time: the slowest rank's clock.
func (w *World) MaxClock() float64 {
	max := 0.0
	for _, r := range w.ranks {
		r.fold()
		if t := r.clock.Now(); t > max {
			max = t
		}
	}
	return max
}
