package p2p

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rma"
)

func TestSuperstepDeliversMessages(t *testing.T) {
	w := NewWorld(4, rma.DefaultCostModel())
	// Everyone sends its id to rank (id+1) mod p.
	w.Superstep(func(r *Rank) {
		r.Send((r.ID()+1)%4, []byte{byte(r.ID())})
	})
	w.Superstep(func(r *Rank) {
		in := r.Inbox()
		if len(in) != 1 {
			t.Errorf("rank %d inbox size %d, want 1", r.ID(), len(in))
			return
		}
		want := (r.ID() + 3) % 4
		if in[0].From != want || int(in[0].Data()[0]) != want {
			t.Errorf("rank %d got message %v, want from %d", r.ID(), in[0], want)
		}
	})
}

func TestInboxOrderDeterministic(t *testing.T) {
	w := NewWorld(3, rma.DefaultCostModel())
	w.Superstep(func(r *Rank) {
		for dst := 0; dst < 3; dst++ {
			r.Send(dst, []byte(fmt.Sprintf("%d.a", r.ID())))
			r.Send(dst, []byte(fmt.Sprintf("%d.b", r.ID())))
		}
	})
	w.Superstep(func(r *Rank) {
		in := r.Inbox()
		if len(in) != 6 {
			t.Fatalf("rank %d inbox size %d, want 6", r.ID(), len(in))
		}
		want := []string{"0.a", "0.b", "1.a", "1.b", "2.a", "2.b"}
		for i, m := range in {
			if string(m.Data()) != want[i] {
				t.Errorf("rank %d inbox[%d] = %q, want %q", r.ID(), i, m.Data(), want[i])
			}
		}
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	m := rma.DefaultCostModel()
	w := NewWorld(3, m)
	w.Superstep(func(r *Rank) {
		r.Compute(1000 * (r.ID() + 1)) // rank 2 is the straggler
	})
	slowest := 3000 * m.ComputePerOp
	wantMin := slowest + m.BarrierLatency
	for _, r := range w.Ranks() {
		if got := r.Clock().Now(); got < wantMin-1e-9 {
			t.Errorf("rank %d clock = %v, want >= %v after barrier", r.ID(), got, wantMin)
		}
	}
	// Rank 0 waited longest.
	w0 := w.Ranks()[0].Counters().BarrierWait
	w2 := w.Ranks()[2].Counters().BarrierWait
	if w0 <= w2 {
		t.Errorf("BarrierWait: rank0 %v should exceed rank2 %v", w0, w2)
	}
}

func TestSendChargesMatchingOverhead(t *testing.T) {
	m := rma.DefaultCostModel()
	w := NewWorld(2, m)
	w.Superstep(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, make([]byte, 100))
		}
	})
	ctr := w.Ranks()[0].Counters()
	want := m.SendRecvOverhead + m.RemoteCost(100)
	if math.Abs(ctr.SendCost-want) > 1e-9 {
		t.Errorf("SendCost = %v, want %v (matching overhead + α + sβ)", ctr.SendCost, want)
	}
	// Receiver paid matching + copy.
	if rc := w.Ranks()[1].Counters().RecvCost; rc <= 0 {
		t.Errorf("RecvCost = %v, want > 0", rc)
	}
}

func TestSelfSendIsLocalCost(t *testing.T) {
	m := rma.DefaultCostModel()
	w := NewWorld(2, m)
	w.Superstep(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(0, make([]byte, 10))
		}
	})
	ctr := w.Ranks()[0].Counters()
	if ctr.SendCost >= m.SendRecvOverhead {
		t.Errorf("self-send cost %v should be below matching overhead %v", ctr.SendCost, m.SendRecvOverhead)
	}
}

func TestAllreduceSum(t *testing.T) {
	w := NewWorld(4, rma.DefaultCostModel())
	got := w.AllreduceSum([]int64{1, 2, 3, 4})
	if got != 10 {
		t.Errorf("AllreduceSum = %d, want 10", got)
	}
	if w.MaxClock() <= 0 {
		t.Error("AllreduceSum charged no time")
	}
	// All clocks equal after an allreduce.
	c0 := w.Ranks()[0].Clock().Now()
	for _, r := range w.Ranks() {
		if r.Clock().Now() != c0 {
			t.Errorf("clocks diverge after allreduce")
		}
	}
}

func TestAllreduceValidatesLength(t *testing.T) {
	w := NewWorld(2, rma.DefaultCostModel())
	defer func() {
		if recover() == nil {
			t.Error("AllreduceSum accepted wrong-length input")
		}
	}()
	w.AllreduceSum([]int64{1})
}

func TestSendValidatesRank(t *testing.T) {
	w := NewWorld(2, rma.DefaultCostModel())
	defer func() {
		if recover() == nil {
			t.Error("Send accepted invalid destination")
		}
	}()
	w.Superstep(func(r *Rank) { r.Send(7, nil) })
}

func TestStepsCount(t *testing.T) {
	w := NewWorld(2, rma.DefaultCostModel())
	w.Superstep(func(r *Rank) {})
	w.Superstep(func(r *Rank) {})
	if w.Steps() != 2 {
		t.Errorf("Steps = %d, want 2", w.Steps())
	}
}

func TestManySuperstepsAccumulateBarrierCost(t *testing.T) {
	// Even with zero compute and no messages, every superstep costs at
	// least the barrier latency: the synchronization tax TriC pays.
	m := rma.DefaultCostModel()
	w := NewWorld(4, m)
	const rounds = 10
	for i := 0; i < rounds; i++ {
		w.Superstep(func(r *Rank) {})
	}
	if got, want := w.MaxClock(), rounds*m.BarrierLatency; math.Abs(got-want) > 1e-6 {
		t.Errorf("MaxClock = %v, want %v", got, want)
	}
}
