package p2p

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/rma"
)

// faultExchange drives a 3-rank all-to-all over several supersteps under
// the given fault spec and returns the concatenated inbox contents per
// rank (the logical result), aggregate counters, and final SimTime.
func faultExchange(t *testing.T, spec *fault.Spec) ([][]string, Counters, float64) {
	t.Helper()
	w := NewWorld(3, rma.DefaultCostModel())
	w.SetFaults(spec)
	got := make([][]string, 3)
	for step := 0; step < 4; step++ {
		w.Superstep(func(r *Rank) {
			for _, m := range r.Inbox() {
				got[r.ID()] = append(got[r.ID()], string(m.Data()))
			}
			for dst := 0; dst < 3; dst++ {
				if dst != r.ID() {
					r.Send(dst, []byte(fmt.Sprintf("s%d.%d>%d", step, r.ID(), dst)))
				}
			}
			r.Compute(50)
		})
	}
	var agg Counters
	for _, r := range w.Ranks() {
		c := r.Counters()
		agg.MsgsSent += c.MsgsSent
		agg.Retransmits += c.Retransmits
		agg.FaultWait += c.FaultWait
	}
	return got, agg, w.MaxClock()
}

// TestDropRetransmitPreservesDelivery: dropped messages are retransmitted
// by the sender — every inbox holds the same messages in the same
// canonical (sender, send-order) fold as the fault-free run, the sender
// pays for the drops, and SimTime lands strictly above fault-free.
func TestDropRetransmitPreservesDelivery(t *testing.T) {
	base, baseCtr, baseSim := faultExchange(t, nil)
	if baseCtr.Retransmits != 0 || baseCtr.FaultWait != 0 {
		t.Fatalf("fault-free run recorded recovery: %+v", baseCtr)
	}
	spec := &fault.Spec{Seed: 11, DropPct: 0.2}
	got, ctr, sim := faultExchange(t, spec)
	for r := range got {
		if len(got[r]) != len(base[r]) {
			t.Fatalf("rank %d received %d messages, want %d", r, len(got[r]), len(base[r]))
		}
		for i := range got[r] {
			if got[r][i] != base[r][i] {
				t.Fatalf("rank %d inbox[%d] = %q, fault-free %q", r, i, got[r][i], base[r][i])
			}
		}
	}
	if ctr.Retransmits == 0 || ctr.FaultWait == 0 {
		t.Fatalf("20%% drops recorded no retransmits: %+v", ctr)
	}
	if ctr.MsgsSent != baseCtr.MsgsSent {
		t.Fatalf("logical send count changed: %d vs %d", ctr.MsgsSent, baseCtr.MsgsSent)
	}
	if sim <= baseSim {
		t.Fatalf("faulted SimTime %v not above fault-free %v", sim, baseSim)
	}
}

// TestDropDeterministicReplay: the drop schedule is a pure function of
// (seed, rank, message index) — same spec, same SimTime bits.
func TestDropDeterministicReplay(t *testing.T) {
	spec := &fault.Spec{Seed: 7, DropPct: 0.15}
	_, _, sim1 := faultExchange(t, spec)
	_, _, sim2 := faultExchange(t, spec)
	if math.Float64bits(sim1) != math.Float64bits(sim2) {
		t.Fatalf("replay diverged: %x vs %x", math.Float64bits(sim1), math.Float64bits(sim2))
	}
	other := &fault.Spec{Seed: 8, DropPct: 0.15}
	_, _, sim3 := faultExchange(t, other)
	if math.Float64bits(sim1) == math.Float64bits(sim3) {
		t.Fatal("different seeds produced identical SimTime — drops ignore the seed")
	}
}
