package rma

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/fault"
)

// This file extends the simulated runtime beyond the operations the LCC
// engine itself needs, covering the rest of the MPI-3 RMA surface the
// paper's §II-E describes: per-target flushes, atomic accumulates
// (MPI_Accumulate / MPI_Fetch_and_op), and active-target fence epochs.
// The Jaccard extension and the examples exercise them; they also make the
// substrate reusable for the push-style algorithms of the paper's
// future-work list (§VI ii), which accumulate partial results at the owner
// instead of pulling adjacency lists.

// Flush completes every outstanding operation of this rank addressed to
// one target on w (MPI_Win_flush): staged accumulates for that target
// land in the region, and the clock advances to the latest completion
// time among the pending operations. Operations to other targets stay
// pending (and staged).
func (r *Rank) Flush(w *Window, target int) {
	if r.stagedOps > 0 {
		r.commitStaged(w, target)
	}
	r.completePending(func(q *Request) bool { return q.win == w && q.target == target })
}

// Accumulate atomically adds delta to the uint64 at byte offset in
// target's region (MPI_Accumulate with MPI_SUM). Like Put, the operation
// is non-blocking; its completion — and, since the parallel scheduler,
// its effect on the target region — is observed by a flush or barrier:
// the update is staged per (origin, target) and committed there
// (staged.go), so issuing an accumulate is a rank-local append rather
// than a serializing read-modify-write. Accumulates targeting the rank
// itself commit immediately, preserving local program order.
func (r *Rank) Accumulate(w *Window, target, offset int, delta uint64) *Request {
	r.checkpoint()
	if !r.inEpoch(w) {
		panic(fmt.Sprintf("rma: rank %d: Accumulate on %q outside an access epoch", r.id, w.name))
	}
	if w.kind != WritableBytes {
		panic(fmt.Sprintf("rma: rank %d: Accumulate on %v window %q", r.id, w.kind, w.name))
	}
	r.fold() // the completion time below reads the clock eagerly
	if offset < 0 || offset+8 > len(w.loc[target]) {
		panic(fmt.Sprintf("rma: rank %d: Accumulate %q target %d [%d:+8) out of range (len %d)",
			r.id, w.name, target, offset, len(w.loc[target])))
	}
	r.stage(w, target, offset, delta)

	q := r.newRequest(w, target, reqAccumulate)
	if target == r.id {
		r.commitStaged(w, target)
		r.clock.Advance(r.comm.model.LocalCost(8))
		q.completeAt = r.clock.Now()
		q.done = true
		return q
	}
	if r.faults != nil {
		r.injectFaults(fault.ClassAccumulate, 8)
		r.fold() // the completion time below reads the clock eagerly
	}
	cost := r.clock.PerturbDuration(r.comm.model.RemoteCost(8))
	q.completeAt = r.clock.Now() + cost
	r.ctr.Puts++
	r.ctr.RemoteBytes += 8
	q.tracked = true
	r.pending = append(r.pending, q)
	return q
}

// FetchAdd64 atomically adds delta to the uint64 at byte offset in
// target's region and returns the previous value (MPI_Fetch_and_op with
// MPI_SUM). Unlike Accumulate it blocks until the round trip completes:
// fetch-and-op is a synchronizing read-modify-write, so the issuing rank
// cannot proceed without the old value.
func (r *Rank) FetchAdd64(w *Window, target, offset int, delta uint64) uint64 {
	r.checkpoint()
	if !r.inEpoch(w) {
		panic(fmt.Sprintf("rma: rank %d: FetchAdd64 on %q outside an access epoch", r.id, w.name))
	}
	if w.kind != WritableBytes {
		panic(fmt.Sprintf("rma: rank %d: FetchAdd64 on %v window %q", r.id, w.kind, w.name))
	}
	r.fold() // blocking round trip: charges fold before the clock advances
	region := w.loc[target]
	if offset < 0 || offset+8 > len(region) {
		panic(fmt.Sprintf("rma: rank %d: FetchAdd64 %q target %d [%d:+8) out of range (len %d)",
			r.id, w.name, target, offset, len(region)))
	}
	applyMu.Lock()
	// Same-origin ordering: this rank's earlier accumulates to the word
	// must be visible in the fetched value (MPI orders atomics per
	// origin-target pair).
	r.commitStagedLocked(w, target)
	old := binary.LittleEndian.Uint64(region[offset:])
	binary.LittleEndian.PutUint64(region[offset:], old+delta)
	applyMu.Unlock()
	if target == r.id {
		r.clock.Advance(r.comm.model.LocalCost(8))
		return old
	}
	if r.faults != nil {
		r.injectFaults(fault.ClassAccumulate, 8)
		r.fold() // blocking round trip reads the clock eagerly
	}
	r.clock.Advance(r.comm.model.RemoteCost(8))
	r.ctr.Puts++
	r.ctr.RemoteBytes += 8
	return old
}

// Update is one element of a batched accumulate: add Delta to the uint64 at
// byte Offset in the target's region.
type Update struct {
	Offset int
	Delta  uint64
}

// updateWireBytes is the modeled wire size of one Update: a 4-byte index
// plus the 8-byte operand, as an MPI_Accumulate with an indexed datatype
// would ship.
const updateWireBytes = 12

// AccumulateBatch atomically applies every update to target's region in one
// operation (MPI_Accumulate with an indexed datatype and MPI_SUM). The
// whole batch is charged as a single message of 12 bytes per element —
// this is what makes local combining pay off for push-style algorithms:
// k scattered Accumulates cost k·(α + 8β), the combined batch α + 12k·β.
// Like Accumulate it is non-blocking; completion is observed by a flush.
func (r *Rank) AccumulateBatch(w *Window, target int, ups []Update) *Request {
	r.checkpoint()
	if !r.inEpoch(w) {
		panic(fmt.Sprintf("rma: rank %d: AccumulateBatch on %q outside an access epoch", r.id, w.name))
	}
	if w.kind != WritableBytes {
		panic(fmt.Sprintf("rma: rank %d: AccumulateBatch on %v window %q", r.id, w.kind, w.name))
	}
	r.fold() // the completion time below reads the clock eagerly
	region := w.loc[target]
	for _, u := range ups {
		if u.Offset < 0 || u.Offset+8 > len(region) {
			panic(fmt.Sprintf("rma: rank %d: AccumulateBatch %q target %d [%d:+8) out of range (len %d)",
				r.id, w.name, target, u.Offset, len(region)))
		}
	}
	r.stageBatch(w, target, ups)

	size := updateWireBytes * len(ups)
	q := r.newRequest(w, target, reqAccumulateBatch)
	if target == r.id {
		r.commitStaged(w, target)
		r.clock.Advance(r.comm.model.LocalCost(size))
		q.completeAt = r.clock.Now()
		q.done = true
		return q
	}
	if r.faults != nil {
		r.injectFaults(fault.ClassAccumulate, size)
		r.fold() // the completion time below reads the clock eagerly
	}
	cost := r.clock.PerturbDuration(r.comm.model.RemoteCost(size))
	q.completeAt = r.clock.Now() + cost
	r.ctr.Puts++
	r.ctr.RemoteBytes += int64(size)
	q.tracked = true
	r.pending = append(r.pending, q)
	return q
}

// Barrier synchronizes all p ranks of a communicator: real goroutine
// rendezvous plus simulated-clock alignment (everyone jumps to the global
// maximum plus BarrierLatency). It is the building block for active-target
// epochs and for the collective phases of the baselines when they run over
// raw RMA.
//
// A barrier is also the scheduler's commit point: once the last rank has
// arrived, every rank's staged accumulates are replayed into the window
// regions in origin-rank order (staged.go), so post-barrier reads observe
// the same bytes at any worker count. A rank blocked here releases its
// worker slot (sched.Pool.Yield) — with W < p workers the ranks it waits
// for could otherwise never run.
type Barrier struct {
	comm *Comm

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	gen     int
	maxT    float64
	doneT   float64 // release time of the last closed generation
}

// NewBarrier creates a reusable barrier over the communicator's p ranks.
// The barrier registers a cancellation wakeup with the scheduler: a
// canceled run must rouse ranks blocked in the rendezvous (they hold no
// slot and poll no checkpoints), so they re-check the run state and
// unwind. Create barriers before starting the supervised run.
func (c *Comm) NewBarrier() *Barrier {
	b := &Barrier{comm: c}
	b.cond = sync.NewCond(&b.mu)
	c.pool.NotifyCancel(func() {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	})
	return b
}

// Wait blocks until all p ranks have arrived, then advances every clock to
// the latest arrival time plus BarrierLatency. The time a rank spends
// blocked is accounted as FlushWait (it is synchronization, not work).
//
// Under a supervised run (Comm.RunCtx) Wait is also a cancellation point:
// a waiter woken by a canceled run unwinds instead of completing the
// round, and an arriving rank checks before joining. A completed Wait is
// the crash-stop recovery point — the rank's clock at release is recorded
// as the state a recovered crash re-executes from (fault.go).
func (b *Barrier) Wait(r *Rank) {
	r.fold() // the rendezvous publishes this rank's clock to the world
	pool := r.comm.pool
	if r.running {
		pool.Checkpoint()
	}
	var target float64
	canceled := false
	rendezvous := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		gen := b.gen
		if t := r.clock.Now(); t > b.maxT {
			b.maxT = t
		}
		b.arrived++
		if b.arrived == b.comm.p {
			b.comm.commitAllStaged()
			b.maxT += b.comm.model.BarrierLatency
			// Snapshot the release time per generation: early arrivals of
			// the NEXT round bump maxT before slow waiters of this round
			// wake, and reading the live maxT then would make a waiter's
			// clock depend on the host schedule.
			b.doneT = b.maxT
			b.arrived = 0
			b.gen++
			if r.prog != nil {
				r.prog.BarrierTick()
			}
			b.cond.Broadcast()
		} else {
			for gen == b.gen && !pool.Canceled() {
				b.cond.Wait()
			}
			if gen == b.gen {
				// Woken by cancellation: the round will never close —
				// some rank of the world is already unwinding. Leave the
				// rendezvous and unwind too.
				canceled = true
				return
			}
		}
		target = b.doneT
	}
	if r.running {
		pool.Yield(rendezvous)
	} else {
		rendezvous()
	}
	if canceled {
		pool.Checkpoint() // Canceled() held above: this unwinds
	}
	before := r.clock.Now()
	r.clock.AdvanceTo(target)
	r.ctr.FlushWait += r.clock.Now() - before
	r.ckptT = r.clock.Now()
}

// Fence closes the current active-target epoch on w and opens the next one
// (MPI_Win_fence): all pending operations of this rank on w complete, and
// all ranks synchronize at the given barrier. The paper's engine never
// fences — passive target is the whole point — but the substrate supports
// it so the synchronization cost of an active-target design can be
// measured against the passive one (see the rma tests and the A7 bench).
func (r *Rank) Fence(w *Window, b *Barrier) {
	r.FlushAll(w)
	b.Wait(r)
}
