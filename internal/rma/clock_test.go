package rma

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockBasics(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock reads %v", c.Now())
	}
	c.Advance(10)
	c.Advance(-5) // negative durations are ignored
	if c.Now() != 10 {
		t.Errorf("Now = %v, want 10", c.Now())
	}
	c.AdvanceTo(8) // past: no-op
	if c.Now() != 10 {
		t.Errorf("AdvanceTo(past) moved the clock to %v", c.Now())
	}
	c.AdvanceTo(25)
	if c.Now() != 25 {
		t.Errorf("AdvanceTo(future) = %v, want 25", c.Now())
	}
}

// Property: a clock never runs backwards under any interleaving of
// Advance/AdvanceTo calls.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(steps []int16) bool {
		var c Clock
		prev := 0.0
		for _, s := range steps {
			if s%2 == 0 {
				c.Advance(float64(s))
			} else {
				c.AdvanceTo(float64(s))
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMultipleWindowsIndependentFlush(t *testing.T) {
	c := NewComm(2, DefaultCostModel())
	w1 := c.CreateWindow("w1", [][]byte{nil, make([]byte, 64)})
	w2 := c.CreateWindow("w2", [][]byte{nil, make([]byte, 64)})
	r := c.Rank(0)
	r.LockAll(w1)
	r.LockAll(w2)
	q1 := r.Get(w1, 1, 0, 8)
	q2 := r.Get(w2, 1, 0, 8)
	r.FlushAll(w1)
	if !q1.Done() {
		t.Error("flush of w1 left its request pending")
	}
	if q2.Done() {
		t.Error("flush of w1 completed a w2 request")
	}
	r.UnlockAll(w2) // implies flush
	if !q2.Done() {
		t.Error("UnlockAll did not flush w2")
	}
	r.UnlockAll(w1)
}

func TestComputeVsAdvanceByCounters(t *testing.T) {
	c := NewComm(1, DefaultCostModel())
	r := c.Rank(0)
	r.Compute(100)
	r.AdvanceBy(500)
	ctr := r.Counters()
	want := 100*c.Model().ComputePerOp + 500
	if math.Abs(ctr.ComputeTime-want) > 1e-9 {
		t.Errorf("ComputeTime = %v, want %v", ctr.ComputeTime, want)
	}
	if math.Abs(r.Clock().Now()-want) > 1e-9 {
		t.Errorf("clock = %v, want %v", r.Clock().Now(), want)
	}
}

func TestPutLocalNoNetworkCounters(t *testing.T) {
	c := NewComm(2, DefaultCostModel())
	w := c.CreateWindow("w", [][]byte{make([]byte, 8), nil})
	r := c.Rank(0)
	r.LockAll(w)
	r.Put(w, 0, 0, []byte{1, 2})
	r.UnlockAll(w)
	if ctr := r.Counters(); ctr.Puts != 0 || ctr.RemoteBytes != 0 {
		t.Errorf("local put touched network counters: %+v", ctr)
	}
}

func TestRankIDValidation(t *testing.T) {
	c := NewComm(2, DefaultCostModel())
	defer func() {
		if recover() == nil {
			t.Error("Rank(5) on a 2-rank world did not panic")
		}
	}()
	c.Rank(5)
}
