package rma

import (
	"encoding/binary"
	"reflect"
	"testing"
)

// TestCountersMergeCoversEveryField fills a Counters with distinct
// non-zero values via reflection and checks Merge propagates each one —
// so a field added to Counters without a Merge line fails here instead of
// silently vanishing from end-of-run rollups.
func TestCountersMergeCoversEveryField(t *testing.T) {
	var src Counters
	sv := reflect.ValueOf(&src).Elem()
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Field(i)
		switch f.Kind() {
		case reflect.Int64:
			f.SetInt(int64(100 + i))
		case reflect.Float64:
			f.SetFloat(float64(1000 + i))
		default:
			t.Fatalf("Counters field %s has unhandled kind %v; extend this test and Merge",
				sv.Type().Field(i).Name, f.Kind())
		}
	}

	var dst Counters
	dst.Merge(src)
	if dst != src {
		t.Fatalf("Merge into zero Counters = %+v, want %+v", dst, src)
	}
	dst.Merge(src)
	dv := reflect.ValueOf(dst)
	for i := 0; i < dv.NumField(); i++ {
		name := dv.Type().Field(i).Name
		switch f := dv.Field(i); f.Kind() {
		case reflect.Int64:
			if want := 2 * sv.Field(i).Int(); f.Int() != want {
				t.Errorf("after double merge, %s = %d, want %d", name, f.Int(), want)
			}
		case reflect.Float64:
			if want := 2 * sv.Field(i).Float(); f.Float() != want {
				t.Errorf("after double merge, %s = %g, want %g", name, f.Float(), want)
			}
		}
	}
}

// TestStagedAccumulateVisibility pins the staged-accumulate contract: a
// remote accumulate is buffered at issue and lands at the origin's flush;
// same-origin Get/Put/FetchAdd64 observe earlier accumulates without an
// explicit flush (program order); and a barrier commits every rank's
// buffers so post-barrier readers see the full sum.
func TestStagedAccumulateVisibility(t *testing.T) {
	c, w := twoRankComm()
	r := c.Rank(0)
	r.LockAll(w)

	// Buffered at issue: the target region is untouched until a flush.
	r.Accumulate(w, 1, 0, 5)
	if got := binary.LittleEndian.Uint64(w.loc[1][0:]); got != 0 {
		t.Fatalf("region modified at issue time: %d, want 0 (staged)", got)
	}
	r.FlushAll(w)
	if got := binary.LittleEndian.Uint64(w.loc[1][0:]); got != 5 {
		t.Fatalf("after FlushAll, region = %d, want 5", got)
	}

	// Per-target flush commits that target only.
	r.Accumulate(w, 1, 0, 2)
	r.Flush(w, 1)
	if got := binary.LittleEndian.Uint64(w.loc[1][0:]); got != 7 {
		t.Fatalf("after Flush(target), region = %d, want 7", got)
	}

	// Same-origin program order: a snapshot Get observes the rank's own
	// staged accumulates.
	r.Accumulate(w, 1, 0, 3)
	q := r.Get(w, 1, 0, 8)
	q.Wait()
	if got := binary.LittleEndian.Uint64(q.Data()); got != 10 {
		t.Fatalf("snapshot after own accumulate = %d, want 10", got)
	}
	q.Release()

	// Same-origin FetchAdd64 observes staged accumulates too.
	r.Accumulate(w, 1, 8, 4)
	if old := r.FetchAdd64(w, 1, 8, 1); old != 4 {
		t.Fatalf("FetchAdd64 old = %d, want 4 (staged accumulate ordered before)", old)
	}
	r.UnlockAll(w)
}

// TestBarrierCommitsStaged checks the barrier commit path: ranks
// accumulate into rank 0's region and rendezvous without flushing; after
// the barrier every contribution is visible.
func TestBarrierCommitsStaged(t *testing.T) {
	const p = 4
	c := NewComm(p, DefaultCostModel())
	w := c.CreateWindow("ctr", [][]byte{make([]byte, 8), nil, nil, nil})
	b := c.NewBarrier()
	c.Run(func(r *Rank) {
		r.LockAll(w)
		r.Accumulate(w, 0, 0, uint64(r.ID())+1).Release()
		b.Wait(r)
		if r.ID() == 0 {
			q := r.Get(w, 0, 0, 8)
			q.Wait()
			if got := binary.LittleEndian.Uint64(q.Data()); got != 1+2+3+4 {
				t.Errorf("post-barrier sum = %d, want 10", got)
			}
			q.Release()
		}
		b.Wait(r) // keep rank 0's read inside the epoch for all ranks
		r.UnlockAll(w)
	})
}

// TestRunBoundedWorkers checks that Workers=1 and Workers=8 produce
// identical simulated results for a barrier-heavy workload — the
// determinism contract of the scheduler at the substrate level.
func TestRunBoundedWorkers(t *testing.T) {
	run := func(workers int) []float64 {
		c := NewCommWorkers(6, DefaultCostModel(), workers)
		w := c.CreateWindow("w", [][]byte{
			make([]byte, 64), make([]byte, 64), make([]byte, 64),
			make([]byte, 64), make([]byte, 64), make([]byte, 64)})
		b := c.NewBarrier()
		ranks := c.Run(func(r *Rank) {
			r.LockAll(w)
			for round := 0; round < 3; round++ {
				r.AdvanceBy(float64((r.ID()+round)%5) * 777)
				r.Accumulate(w, (r.ID()+1)%6, 0, 1).Release()
				r.Fence(w, b)
			}
			r.UnlockAll(w)
		})
		out := make([]float64, len(ranks))
		for i, r := range ranks {
			out[i] = r.Clock().Now()
		}
		return out
	}
	w1, w8 := run(1), run(8)
	for i := range w1 {
		if w1[i] != w8[i] {
			t.Fatalf("rank %d clock differs across worker counts: %v vs %v", i, w1[i], w8[i])
		}
	}
}
