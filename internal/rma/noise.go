package rma

// System noise (OS jitter, network contention, daemons stealing cycles) is
// a first-order concern for the two communication disciplines this
// repository compares. A bulk-synchronous program pays, at every barrier,
// the *worst* perturbation across all ranks; a fully asynchronous program
// pays only each rank's *own* perturbation. The paper's argument for
// asynchrony (§I, §IV-D) therefore predicts that noise widens the gap
// between the RMA engine and the TriC baseline — the A7 ablation injects
// identical noise into both substrates and measures exactly that.
//
// NoiseSpec travels inside CostModel, so any engine accepting a cost model
// (lcc, tric, disttc) can be run under noise without API changes. The
// noise process is deterministic: a per-rank xorshift stream derived from
// (Seed, rank) drives both the proportional jitter and the spike schedule,
// so noisy runs remain exactly reproducible.

// NoiseSpec describes per-rank execution noise. The zero value disables
// noise entirely.
type NoiseSpec struct {
	// Amp is the amplitude of proportional jitter: every charged
	// duration d is stretched to d·(1 + Amp·u) with u ∈ [0,1) drawn
	// per charge. Models fine-grained interference (cache/TLB/network
	// contention).
	Amp float64
	// SpikePeriodNS and SpikeNS model coarse OS detours (daemon wakeups,
	// page reclaim): roughly every SpikePeriodNS of simulated time the
	// rank loses an additional SpikeNS·(0.5 + u). Both must be positive
	// for spikes to fire.
	SpikePeriodNS float64
	SpikeNS       float64
	// Seed decorrelates noise streams across experiments; rank ids
	// decorrelate them within a run.
	Seed uint64
}

// Enabled reports whether the spec produces any perturbation.
func (n NoiseSpec) Enabled() bool {
	return n.Amp > 0 || (n.SpikeNS > 0 && n.SpikePeriodNS > 0)
}

// noiseState is the per-clock instantiation of a NoiseSpec.
type noiseState struct {
	spec      NoiseSpec
	rng       uint64
	nextSpike float64
}

func newNoiseState(spec NoiseSpec, rank int) *noiseState {
	s := &noiseState{spec: spec}
	// splitmix-style seeding keeps streams for adjacent ranks unrelated.
	x := spec.Seed ^ (0x9E3779B97F4A7C15 * uint64(rank+1))
	if x == 0 {
		x = 0x1234567
	}
	s.rng = x
	if spec.SpikePeriodNS > 0 {
		s.nextSpike = s.uniform() * spec.SpikePeriodNS
	}
	return s
}

// uniform returns the next deterministic u ∈ [0,1).
func (s *noiseState) uniform() float64 {
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	return float64(x>>11) / float64(1<<53)
}

// perturb maps a charged duration to its noisy equivalent given the
// clock's current time, and advances the spike schedule past the end of
// the charge.
func (s *noiseState) perturb(now, d float64) float64 {
	if s.spec.Amp > 0 {
		d *= 1 + s.spec.Amp*s.uniform()
	}
	if s.spec.SpikePeriodNS > 0 && s.spec.SpikeNS > 0 {
		for s.nextSpike <= now+d {
			d += s.spec.SpikeNS * (0.5 + s.uniform())
			s.nextSpike += s.spec.SpikePeriodNS * (0.5 + s.uniform())
		}
	}
	return d
}
