package rma

import (
	"encoding/binary"
	"sync"
)

// Staged accumulates — the one cross-rank shared-write path of the
// simulated runtime, restructured for deterministic multicore execution.
//
// With every rank on its own goroutine, letting Accumulate read-modify-
// write the target region at issue time would serialize all ranks on a
// global lock (one acquire per 8-byte update) and make the byte-level
// apply order a function of the host schedule. Instead, each rank buffers
// its accumulates per (origin, target) in pooled slices — a purely
// rank-local append, no lock, no false sharing — and the buffers are
// replayed into the window regions at the points MPI makes them visible:
//
//   - the origin's own flush (MPI_Win_flush / flush_all / unlock) commits
//     that origin's buffers for the flushed window, and
//   - a barrier commits every rank's remaining buffers in origin-rank
//     order, each buffer in issue order — the canonical order the golden
//     tests pin.
//
// Determinism at any worker count follows: all staged updates are uint64
// additions, which commute and associate exactly (mod 2^64), so the final
// region bytes cannot depend on which commit path ran first; the
// barrier's origin-rank order makes the canonical schedule explicit.
// Same-origin program order — an origin's own Get/Put/FetchAdd64
// observing its earlier accumulates — is preserved by committing the
// origin's buffers before those operations touch the region (rma.go,
// ext.go). Readers on OTHER ranks may only touch a region that peers
// accumulate into after a synchronization (the MPI separation rule every
// engine here already obeys), at which point all buffers have landed.
//
// applyMu serializes the replays themselves: commits from different ranks
// may race in host time, and the read-modify-write of one uint64 word
// must stay atomic with respect to other commits. It is taken once per
// commit (amortized over the whole buffer), not once per update — the
// lock the old immediate-apply Accumulate took per operation.
var applyMu sync.Mutex

// stagedAcc buffers one rank's pending accumulates for one (window,
// target) pair. The ups slice is pooled: commit resets it to length zero
// and the backing array is reused for the next batch.
type stagedAcc struct {
	win *Window
	ups []Update
}

// stagedFor returns the staging buffer for (w, target), creating it on
// first use. Buffers are indexed by target rank; the inner scan is over
// the windows this rank accumulates into per target — one for every
// engine here.
func (r *Rank) stagedFor(w *Window, target int) *stagedAcc {
	if r.staged == nil {
		r.staged = make([][]stagedAcc, r.comm.p)
	}
	lst := r.staged[target]
	for i := range lst {
		if lst[i].win == w {
			return &lst[i]
		}
	}
	r.staged[target] = append(lst, stagedAcc{win: w})
	return &r.staged[target][len(r.staged[target])-1]
}

// stage buffers one update for (w, target).
func (r *Rank) stage(w *Window, target, offset int, delta uint64) {
	s := r.stagedFor(w, target)
	s.ups = append(s.ups, Update{Offset: offset, Delta: delta})
	r.stagedOps++
}

// stageBatch buffers a batch of updates for (w, target), copying them so
// the caller may reuse its slice.
func (r *Rank) stageBatch(w *Window, target int, ups []Update) {
	s := r.stagedFor(w, target)
	s.ups = append(s.ups, ups...)
	r.stagedOps += len(ups)
}

// commitStaged replays this rank's staged buffers matching (w, target)
// into the window regions and resets them. w == nil matches every window;
// target < 0 matches every target. Callers gate on r.stagedOps > 0 so the
// accumulate-free hot paths never reach the lock.
func (r *Rank) commitStaged(w *Window, target int) {
	applyMu.Lock()
	r.commitStagedLocked(w, target)
	applyMu.Unlock()
}

func (r *Rank) commitStagedLocked(w *Window, target int) {
	if r.stagedOps == 0 {
		return
	}
	for t := range r.staged {
		if target >= 0 && t != target {
			continue
		}
		for i := range r.staged[t] {
			s := &r.staged[t][i]
			if (w == nil || s.win == w) && len(s.ups) > 0 {
				region := s.win.loc[t]
				for _, u := range s.ups {
					old := binary.LittleEndian.Uint64(region[u.Offset:])
					binary.LittleEndian.PutUint64(region[u.Offset:], old+u.Delta)
				}
				r.stagedOps -= len(s.ups)
				s.ups = s.ups[:0]
			}
		}
	}
}

// commitAllStaged replays every rank's remaining staged buffers in
// origin-rank order (ids ascending, handles per id in creation order,
// updates in issue order) — the canonical commit the barrier performs
// once all ranks have arrived. Safe then: arrived ranks publish their
// buffers to the closing rank via the barrier mutex, and none can issue
// further accumulates until released.
func (c *Comm) commitAllStaged() {
	c.mu.Lock()
	applyMu.Lock()
	for id := 0; id < c.p; id++ {
		for _, r := range c.byID[id] {
			r.commitStagedLocked(nil, -1)
		}
	}
	applyMu.Unlock()
	c.mu.Unlock()
}
