package rma

import (
	"encoding/binary"
	"sync"
	"testing"
)

func twoRankComm() (*Comm, *Window) {
	c := NewComm(2, DefaultCostModel())
	local := [][]byte{make([]byte, 64), make([]byte, 64)}
	w := c.CreateWindow("test", local)
	return c, w
}

func TestFlushSingleTarget(t *testing.T) {
	c := NewComm(3, DefaultCostModel())
	w := c.CreateWindow("w", [][]byte{make([]byte, 16), make([]byte, 16), make([]byte, 16)})
	r := c.Rank(0)
	r.LockAll(w)
	q1 := r.Get(w, 1, 0, 8)
	q2 := r.Get(w, 2, 0, 8)
	r.Flush(w, 1)
	if !q1.Done() {
		t.Fatal("Flush(target 1) did not complete the target-1 get")
	}
	if q2.Done() {
		t.Fatal("Flush(target 1) completed the target-2 get")
	}
	if q1.Target() != 1 || q2.Target() != 2 {
		t.Fatalf("targets = %d,%d, want 1,2", q1.Target(), q2.Target())
	}
	r.FlushAll(w)
	if !q2.Done() {
		t.Fatal("FlushAll left a pending get")
	}
	r.UnlockAll(w)
}

func TestAccumulate(t *testing.T) {
	c, w := twoRankComm()
	r := c.Rank(0)
	r.LockAll(w)
	r.Accumulate(w, 1, 8, 5)
	r.Accumulate(w, 1, 8, 7)
	r.FlushAll(w)
	got := binary.LittleEndian.Uint64(w.loc[1][8:])
	if got != 12 {
		t.Fatalf("accumulated value = %d, want 12", got)
	}
	// Local accumulate completes immediately.
	q := r.Accumulate(w, 0, 0, 3)
	if !q.Done() {
		t.Fatal("local accumulate not immediately done")
	}
	r.UnlockAll(w)
}

func TestAccumulateConcurrentRanks(t *testing.T) {
	const perRank = 200
	c := NewComm(4, DefaultCostModel())
	w := c.CreateWindow("ctr", [][]byte{make([]byte, 8), nil, nil, nil})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := c.Rank(id)
			r.LockAll(w)
			for k := 0; k < perRank; k++ {
				r.Accumulate(w, 0, 0, 1)
			}
			r.UnlockAll(w)
		}(i)
	}
	wg.Wait()
	got := binary.LittleEndian.Uint64(w.loc[0])
	if got != 4*perRank {
		t.Fatalf("concurrent accumulates lost updates: %d, want %d", got, 4*perRank)
	}
}

func TestFetchAdd64(t *testing.T) {
	c, w := twoRankComm()
	r := c.Rank(0)
	r.LockAll(w)
	if old := r.FetchAdd64(w, 1, 0, 10); old != 0 {
		t.Fatalf("first FetchAdd returned %d, want 0", old)
	}
	if old := r.FetchAdd64(w, 1, 0, 5); old != 10 {
		t.Fatalf("second FetchAdd returned %d, want 10", old)
	}
	if got := binary.LittleEndian.Uint64(w.loc[1]); got != 15 {
		t.Fatalf("final value %d, want 15", got)
	}
	// FetchAdd blocks: the clock must have advanced by at least two
	// remote round trips.
	if r.Clock().Now() < 2*c.Model().RemoteCost(8) {
		t.Fatalf("clock %.0f after two remote fetch-adds, want >= %.0f",
			r.Clock().Now(), 2*c.Model().RemoteCost(8))
	}
	r.UnlockAll(w)
}

func TestFetchAdd64ConcurrentUnique(t *testing.T) {
	// Fetch-and-add must hand out unique, gap-free tickets across ranks.
	const perRank = 100
	const ranks = 4
	c := NewComm(ranks, DefaultCostModel())
	w := c.CreateWindow("tickets", [][]byte{make([]byte, 8), nil, nil, nil})
	got := make([][]uint64, ranks)
	var wg sync.WaitGroup
	for i := 0; i < ranks; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := c.Rank(id)
			r.LockAll(w)
			for k := 0; k < perRank; k++ {
				got[id] = append(got[id], r.FetchAdd64(w, 0, 0, 1))
			}
			r.UnlockAll(w)
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, ts := range got {
		for _, v := range ts {
			if seen[v] {
				t.Fatalf("ticket %d issued twice", v)
			}
			seen[v] = true
		}
	}
	for v := uint64(0); v < ranks*perRank; v++ {
		if !seen[v] {
			t.Fatalf("ticket %d never issued", v)
		}
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	c := NewComm(4, DefaultCostModel())
	b := c.NewBarrier()
	ranks := c.Run(func(r *Rank) {
		// Rank i works i·10 µs before the barrier.
		r.AdvanceBy(float64(r.ID()) * 10000)
		b.Wait(r)
	})
	want := 30000 + c.Model().BarrierLatency
	for _, r := range ranks {
		if r.Clock().Now() != want {
			t.Fatalf("rank %d clock %.0f after barrier, want %.0f", r.ID(), r.Clock().Now(), want)
		}
	}
	// The straggler (rank 3) waited only the barrier latency; rank 0
	// waited for everyone.
	if w0, w3 := ranks[0].Counters().FlushWait, ranks[3].Counters().FlushWait; w0 <= w3 {
		t.Fatalf("rank 0 waited %.0f, rank 3 waited %.0f; want rank 0 to wait longer", w0, w3)
	}
}

func TestBarrierReusable(t *testing.T) {
	c := NewComm(2, DefaultCostModel())
	b := c.NewBarrier()
	ranks := c.Run(func(r *Rank) {
		for round := 0; round < 5; round++ {
			r.AdvanceBy(float64(r.ID()+1) * 1000)
			b.Wait(r)
		}
	})
	if ranks[0].Clock().Now() != ranks[1].Clock().Now() {
		t.Fatalf("clocks diverged after repeated barriers: %.0f vs %.0f",
			ranks[0].Clock().Now(), ranks[1].Clock().Now())
	}
}

func TestFence(t *testing.T) {
	c, w := twoRankComm()
	b := c.NewBarrier()
	ranks := c.Run(func(r *Rank) {
		r.LockAll(w)
		q := r.Get(w, 1-r.ID(), 0, 32)
		r.Fence(w, b)
		if !q.Done() {
			t.Errorf("rank %d: fence did not complete the pending get", r.ID())
		}
		r.UnlockAll(w)
	})
	if ranks[0].Clock().Now() != ranks[1].Clock().Now() {
		t.Fatalf("fence left clocks unaligned: %.0f vs %.0f",
			ranks[0].Clock().Now(), ranks[1].Clock().Now())
	}
}

func TestAccumulateOutsideEpochPanics(t *testing.T) {
	c, w := twoRankComm()
	r := c.Rank(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Accumulate outside an epoch did not panic")
		}
	}()
	r.Accumulate(w, 1, 0, 1)
}

func TestAccumulateOutOfRangePanics(t *testing.T) {
	c, w := twoRankComm()
	r := c.Rank(0)
	r.LockAll(w)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Accumulate did not panic")
		}
	}()
	r.Accumulate(w, 1, 60, 1) // needs 8 bytes, only 4 left
}

// --- noise ----------------------------------------------------------------

func TestNoiseDisabledByDefault(t *testing.T) {
	var spec NoiseSpec
	if spec.Enabled() {
		t.Fatal("zero NoiseSpec reports enabled")
	}
	var c Clock
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("noise-free clock advanced to %g, want 100", c.Now())
	}
}

func TestNoiseStretchesWork(t *testing.T) {
	spec := NoiseSpec{Amp: 0.5, Seed: 1}
	var noisy, exact Clock
	noisy.SetNoise(spec, 0)
	for i := 0; i < 1000; i++ {
		noisy.Advance(100)
		exact.Advance(100)
	}
	if noisy.Now() <= exact.Now() {
		t.Fatalf("noisy clock %.0f not ahead of exact %.0f", noisy.Now(), exact.Now())
	}
	// Amp=0.5 stretches each charge by at most 50%.
	if noisy.Now() > 1.5*exact.Now() {
		t.Fatalf("noisy clock %.0f exceeds the amp bound %.0f", noisy.Now(), 1.5*exact.Now())
	}
}

func TestNoiseDeterministic(t *testing.T) {
	spec := NoiseSpec{Amp: 0.3, SpikePeriodNS: 5000, SpikeNS: 2000, Seed: 42}
	run := func() float64 {
		var c Clock
		c.SetNoise(spec, 3)
		for i := 0; i < 500; i++ {
			c.Advance(123)
		}
		return c.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical noisy runs diverged: %g vs %g", a, b)
	}
}

func TestNoiseDecorrelatedAcrossRanks(t *testing.T) {
	spec := NoiseSpec{Amp: 0.3, Seed: 42}
	finish := func(rank int) float64 {
		var c Clock
		c.SetNoise(spec, rank)
		for i := 0; i < 100; i++ {
			c.Advance(100)
		}
		return c.Now()
	}
	if finish(0) == finish(1) {
		t.Fatal("ranks 0 and 1 drew identical noise streams")
	}
}

func TestNoiseSpikes(t *testing.T) {
	spec := NoiseSpec{SpikePeriodNS: 1000, SpikeNS: 500, Seed: 7}
	var c Clock
	c.SetNoise(spec, 0)
	c.Advance(100000) // crosses ~100 spike periods
	// Expected extra: ~100 spikes × ~500·(0.5+u) each ⇒ well above the
	// noise-free duration but bounded.
	if c.Now() < 120000 {
		t.Fatalf("spiky clock %.0f, want visible spike contribution above 120000", c.Now())
	}
	if c.Now() > 400000 {
		t.Fatalf("spiky clock %.0f implausibly large", c.Now())
	}
}

func TestNoiseWaitsUnperturbed(t *testing.T) {
	spec := NoiseSpec{Amp: 1.0, Seed: 9}
	var c Clock
	c.SetNoise(spec, 0)
	c.AdvanceTo(5000)
	if c.Now() != 5000 {
		t.Fatalf("AdvanceTo perturbed by noise: %g, want 5000", c.Now())
	}
}

func TestNoiseFlowsThroughCostModel(t *testing.T) {
	model := DefaultCostModel()
	model.Noise = NoiseSpec{Amp: 0.4, Seed: 11}
	c := NewComm(2, model)
	w := c.CreateWindow("w", [][]byte{make([]byte, 16), make([]byte, 16)})
	r := c.Rank(0)
	r.LockAll(w)
	q := r.Get(w, 1, 0, 16)
	q.Wait()
	r.UnlockAll(w)
	exact := model.RemoteCost(16)
	if got := r.Clock().Now(); got <= exact {
		t.Fatalf("noisy get finished at %.1f, want > exact %.1f", got, exact)
	}
}

func TestAccumulateBatch(t *testing.T) {
	c, w := twoRankComm()
	r := c.Rank(0)
	r.LockAll(w)
	q := r.AccumulateBatch(w, 1, []Update{
		{Offset: 0, Delta: 3},
		{Offset: 8, Delta: 5},
		{Offset: 0, Delta: 4}, // repeated offset folds into the same word
	})
	if q.Done() {
		t.Fatal("remote batch reported done before flush")
	}
	r.FlushAll(w)
	if !q.Done() {
		t.Fatal("FlushAll left the batch pending")
	}
	if got := binary.LittleEndian.Uint64(w.loc[1][0:]); got != 7 {
		t.Errorf("word 0 = %d, want 7", got)
	}
	if got := binary.LittleEndian.Uint64(w.loc[1][8:]); got != 5 {
		t.Errorf("word 8 = %d, want 5", got)
	}
	ctr := r.Counters()
	if ctr.Puts != 1 {
		t.Errorf("Puts = %d, want 1 (the whole batch is one message)", ctr.Puts)
	}
	if ctr.RemoteBytes != 3*updateWireBytes {
		t.Errorf("RemoteBytes = %d, want %d", ctr.RemoteBytes, 3*updateWireBytes)
	}
	r.UnlockAll(w)
}

func TestAccumulateBatchLocal(t *testing.T) {
	c, w := twoRankComm()
	r := c.Rank(1)
	r.LockAll(w)
	q := r.AccumulateBatch(w, 1, []Update{{Offset: 16, Delta: 9}})
	if !q.Done() {
		t.Fatal("local batch should complete immediately")
	}
	if got := binary.LittleEndian.Uint64(w.loc[1][16:]); got != 9 {
		t.Errorf("local word = %d, want 9", got)
	}
	if ctr := r.Counters(); ctr.Puts != 0 || ctr.RemoteBytes != 0 {
		t.Errorf("local batch charged remote counters: %+v", ctr)
	}
	r.UnlockAll(w)
}

func TestAccumulateBatchCheaperThanScatter(t *testing.T) {
	const k = 64
	c, w := twoRankComm()
	scatter := c.Rank(0)
	scatter.LockAll(w)
	// With an unbounded queue the model pipelines all k scatters behind a
	// single latency, so compare under a bounded outstanding-op queue --
	// the regime every real NIC (and the push engine, see
	// maxOutstandingAccumulates) operates in. Bound of 8: one exposed
	// latency per 8 messages.
	const queueBound = 8
	for i := 0; i < k; i++ {
		scatter.Accumulate(w, 1, (i%8)*8, 1)
		if (i+1)%queueBound == 0 {
			scatter.FlushAll(w)
		}
	}
	scatter.FlushAll(w)
	scatterTime := scatter.Clock().Now()
	scatter.UnlockAll(w)

	c2, w2 := twoRankComm()
	batch := c2.Rank(0)
	batch.LockAll(w2)
	ups := make([]Update, k)
	for i := range ups {
		ups[i] = Update{Offset: (i % 8) * 8, Delta: 1}
	}
	batch.AccumulateBatch(w2, 1, ups)
	batch.FlushAll(w2)
	batchTime := batch.Clock().Now()
	batch.UnlockAll(w2)

	// The scatter exposes k/queueBound latencies; the single batch
	// exposes one latency plus 12k wire bytes and must be cheaper.
	if batchTime >= scatterTime {
		t.Errorf("batch time %v >= scatter time %v, want batch cheaper", batchTime, scatterTime)
	}
}

func TestAccumulateBatchPanics(t *testing.T) {
	c, w := twoRankComm()
	r := c.Rank(0)

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("outside epoch", func() {
		r.AccumulateBatch(w, 1, []Update{{Offset: 0, Delta: 1}})
	})
	r.LockAll(w)
	mustPanic("offset out of range", func() {
		r.AccumulateBatch(w, 1, []Update{{Offset: 60, Delta: 1}})
	})
	mustPanic("negative offset", func() {
		r.AccumulateBatch(w, 1, []Update{{Offset: -8, Delta: 1}})
	})
	r.UnlockAll(w)
}

func TestAccessors(t *testing.T) {
	c, w := twoRankComm()
	if c.NumRanks() != 2 {
		t.Errorf("NumRanks = %d, want 2", c.NumRanks())
	}
	r := c.Rank(0)
	if r.Model() != c.Model() {
		t.Error("rank model differs from comm model")
	}
	if w.SizeAt(1) != 64 {
		t.Errorf("SizeAt(1) = %d, want 64", w.SizeAt(1))
	}
	r.LockAll(w)
	q := r.Get(w, 1, 0, 8)
	if q.CompleteAt() <= r.Clock().Now() {
		t.Error("remote get completes no later than issue time")
	}
	r.FlushAll(w)
	r.UnlockAll(w)
}
