package rma

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/graph"
)

// Comm is a simulated MPI communicator: a world of p ranks plus the cost
// model of the machine they run on.
type Comm struct {
	p     int
	model CostModel

	mu      sync.Mutex
	windows []*Window
}

// NewComm creates a world of p ranks.
func NewComm(p int, model CostModel) *Comm {
	if p < 1 {
		panic(fmt.Sprintf("rma: need at least one rank, got %d", p))
	}
	return &Comm{p: p, model: model}
}

// NumRanks returns the world size p.
func (c *Comm) NumRanks() int { return c.p }

// Model returns the communicator's cost model.
func (c *Comm) Model() CostModel { return c.model }

// Window is a logically distributed memory region: each rank contributes a
// local byte buffer that remote peers can read with one-sided Gets
// ("network exposed" in Fig. 3 of the paper).
type Window struct {
	name string
	comm *Comm
	loc  [][]byte // per-rank local regions
}

// CreateWindow collectively creates a window from per-rank local regions.
// local must have one entry per rank (entries may differ in length, and may
// be nil for ranks exposing nothing).
func (c *Comm) CreateWindow(name string, local [][]byte) *Window {
	if len(local) != c.p {
		panic(fmt.Sprintf("rma: window %q: got %d local regions for %d ranks", name, len(local), c.p))
	}
	w := &Window{name: name, comm: c, loc: local}
	c.mu.Lock()
	c.windows = append(c.windows, w)
	c.mu.Unlock()
	return w
}

// Name returns the window's debug name.
func (w *Window) Name() string { return w.name }

// SizeAt returns the byte length of the region rank exposes.
func (w *Window) SizeAt(rank int) int { return len(w.loc[rank]) }

// Counters aggregates a rank's communication activity; the evaluation
// harness reads these to report remote-read counts, bytes moved, and
// communication time (the paper reports e.g. the remote/local read ratio
// and the fraction of runtime spent communicating).
type Counters struct {
	Gets        int64   // one-sided reads issued to remote ranks
	LocalGets   int64   // one-sided reads that targeted the rank itself
	Puts        int64   // one-sided writes
	RemoteBytes int64   // bytes fetched from remote ranks
	LocalBytes  int64   // bytes read from the local region
	GetCost     float64 // sum of α+s·β over issued remote gets (ns)
	FlushWait   float64 // simulated time spent blocked in flushes (ns)
	ComputeTime float64 // simulated time charged via Compute (ns)
}

// Rank is one process of the world. A Rank must be used from a single
// goroutine; different Ranks may run concurrently.
type Rank struct {
	id    int
	comm  *Comm
	clock Clock
	ctr   Counters

	epochs  map[*Window]bool
	pending []*Request
}

// Rank constructs the handle for rank id. Each id should be obtained once,
// typically inside Run.
func (c *Comm) Rank(id int) *Rank {
	if id < 0 || id >= c.p {
		panic(fmt.Sprintf("rma: rank %d out of range [0,%d)", id, c.p))
	}
	r := &Rank{id: id, comm: c, epochs: map[*Window]bool{}}
	r.clock.SetNoise(c.model.Noise, id)
	return r
}

// ID returns the rank's id in [0,p).
func (r *Rank) ID() int { return r.id }

// Model returns the cost model of the rank's communicator.
func (r *Rank) Model() CostModel { return r.comm.model }

// Clock returns the rank's simulated clock.
func (r *Rank) Clock() *Clock { return &r.clock }

// Counters returns a snapshot of the rank's counters.
func (r *Rank) Counters() Counters { return r.ctr }

// Compute charges modeled computation time (ops × κ) to the rank's clock.
func (r *Rank) Compute(ops int) {
	d := float64(ops) * r.comm.model.ComputePerOp
	r.clock.Advance(d)
	r.ctr.ComputeTime += d
}

// AdvanceBy charges an arbitrary simulated duration (used for modeled
// costs that are not per-op, e.g. OpenMP region entry in the shared-memory
// experiments).
func (r *Rank) AdvanceBy(ns float64) {
	r.clock.Advance(ns)
	r.ctr.ComputeTime += ns
}

// LockAll opens a passive-target access epoch on w, after which the rank
// may issue RMA operations to any peer. As §III-A stresses, this is not a
// lock and involves no synchronization; here it only flips epoch state.
func (r *Rank) LockAll(w *Window) {
	if r.epochs[w] {
		panic(fmt.Sprintf("rma: rank %d: LockAll on %q with epoch already open", r.id, w.name))
	}
	r.epochs[w] = true
}

// UnlockAll closes the access epoch on w, implying a flush. Like the real
// operation in passive mode, it is local: no peer involvement.
func (r *Rank) UnlockAll(w *Window) {
	if !r.epochs[w] {
		panic(fmt.Sprintf("rma: rank %d: UnlockAll on %q without open epoch", r.id, w.name))
	}
	r.FlushAll(w)
	delete(r.epochs, w)
}

// Request is an outstanding non-blocking RMA operation. Data() is valid
// only after the request completed (a flush on its window, or Wait).
type Request struct {
	rank       *Rank
	win        *Window
	target     int
	data       []byte
	completeAt float64 // simulated completion time
	done       bool
}

// Target returns the rank this operation addressed.
func (q *Request) Target() int { return q.target }

// Done reports whether the request has completed.
func (q *Request) Done() bool { return q.done }

// Data returns the bytes read by a completed Get. It panics if the request
// has not completed: the MPI RMA semantics the paper relies on forbid
// touching a get's target buffer before a flush.
func (q *Request) Data() []byte {
	if !q.done {
		panic("rma: Data() before flush; RMA reads complete only at flush")
	}
	return q.data
}

// CompleteAt returns the simulated time at which the transfer finishes.
func (q *Request) CompleteAt() float64 { return q.completeAt }

// Wait completes this single request, advancing the rank's clock to the
// request's completion time if needed (MPI_Win_flush_local on one op).
func (q *Request) Wait() {
	if q.done {
		return
	}
	r := q.rank
	before := r.clock.Now()
	r.clock.AdvanceTo(q.completeAt)
	r.ctr.FlushWait += r.clock.Now() - before
	q.done = true
	r.removePending(q)
}

func (r *Rank) removePending(q *Request) {
	for i, p := range r.pending {
		if p == q {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return
		}
	}
}

// Get issues a one-sided, non-blocking read of size bytes at offset in the
// region target exposes in w. The rank's clock is charged only the issue
// overhead; the transfer completes in the background at now+α+s·β, and a
// later flush waits for it (this is what makes double buffering effective,
// §III-A). Reads targeting the rank itself are served at local-memory cost
// and complete immediately.
func (r *Rank) Get(w *Window, target, offset, size int) *Request {
	if !r.epochs[w] {
		panic(fmt.Sprintf("rma: rank %d: Get on %q outside an access epoch", r.id, w.name))
	}
	region := w.loc[target]
	if offset < 0 || size < 0 || offset+size > len(region) {
		panic(fmt.Sprintf("rma: rank %d: Get %q target %d [%d:+%d) out of range (len %d)",
			r.id, w.name, target, offset, size, len(region)))
	}
	// Snapshot at issue time. The algorithms here only read immutable
	// graph data during epochs, so issue-time and completion-time
	// contents coincide; MPI forbids conflicting concurrent access
	// within an epoch anyway.
	data := make([]byte, size)
	copy(data, region[offset:offset+size])

	q := &Request{rank: r, win: w, target: target, data: data}
	if target == r.id {
		cost := r.comm.model.LocalCost(size)
		r.clock.Advance(cost)
		r.ctr.LocalGets++
		r.ctr.LocalBytes += int64(size)
		q.completeAt = r.clock.Now()
		q.done = true
		return q
	}
	cost := r.clock.PerturbDuration(r.comm.model.RemoteCost(size))
	q.completeAt = r.clock.Now() + cost
	r.ctr.Gets++
	r.ctr.RemoteBytes += int64(size)
	r.ctr.GetCost += cost
	r.pending = append(r.pending, q)
	return q
}

// Put issues a one-sided write of data into target's region at offset. The
// write is applied immediately (our callers never race puts against gets in
// the same epoch, which MPI forbids) but completion time follows the same
// α+s·β model.
func (r *Rank) Put(w *Window, target, offset int, data []byte) *Request {
	if !r.epochs[w] {
		panic(fmt.Sprintf("rma: rank %d: Put on %q outside an access epoch", r.id, w.name))
	}
	region := w.loc[target]
	if offset < 0 || offset+len(data) > len(region) {
		panic(fmt.Sprintf("rma: rank %d: Put %q target %d [%d:+%d) out of range (len %d)",
			r.id, w.name, target, offset, len(data), len(region)))
	}
	copy(region[offset:], data)
	q := &Request{rank: r, win: w, target: target}
	if target == r.id {
		r.clock.Advance(r.comm.model.LocalCost(len(data)))
		q.completeAt = r.clock.Now()
		q.done = true
		return q
	}
	cost := r.clock.PerturbDuration(r.comm.model.RemoteCost(len(data)))
	q.completeAt = r.clock.Now() + cost
	r.ctr.Puts++
	r.ctr.RemoteBytes += int64(len(data))
	r.pending = append(r.pending, q)
	return q
}

// FlushAll completes every outstanding operation of this rank on w
// (MPI_Win_flush_all): the clock advances to the latest completion time.
func (r *Rank) FlushAll(w *Window) {
	before := r.clock.Now()
	rest := r.pending[:0]
	for _, q := range r.pending {
		if q.win != w {
			rest = append(rest, q)
			continue
		}
		r.clock.AdvanceTo(q.completeAt)
		q.done = true
	}
	r.pending = rest
	r.ctr.FlushWait += r.clock.Now() - before
}

// Run executes body on every rank concurrently and returns the rank handles
// (with final clocks and counters) once all have finished. This mirrors an
// SPMD mpirun: fully asynchronous ranks, no hidden synchronization.
func (c *Comm) Run(body func(r *Rank)) []*Rank {
	ranks := make([]*Rank, c.p)
	var wg sync.WaitGroup
	for i := 0; i < c.p; i++ {
		ranks[i] = c.Rank(i)
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			body(r)
		}(ranks[i])
	}
	wg.Wait()
	return ranks
}

// MaxClock returns the largest simulated finish time over ranks — the
// paper's measurement ("the longest-running node").
func MaxClock(ranks []*Rank) float64 {
	max := 0.0
	for _, r := range ranks {
		if t := r.Clock().Now(); t > max {
			max = t
		}
	}
	return max
}

// --- typed window helpers ------------------------------------------------

// EncodeUint64s serializes vals little-endian for exposure in a window (the
// offsets arrays of Fig. 3 are uint64 pairs).
func EncodeUint64s(vals []uint64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], v)
	}
	return out
}

// DecodeUint64s parses a buffer written by EncodeUint64s.
func DecodeUint64s(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

// EncodeVertices serializes a vertex list little-endian (4 bytes each).
func EncodeVertices(vals []graph.V) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// DecodeVertices parses a buffer written by EncodeVertices.
func DecodeVertices(b []byte) []graph.V {
	out := make([]graph.V, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// DecodeVerticesInto is DecodeVertices into a caller-provided buffer,
// avoiding the allocation on the engine's hot path.
func DecodeVerticesInto(dst []graph.V, b []byte) []graph.V {
	n := len(b) / 4
	if cap(dst) < n {
		dst = make([]graph.V, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return dst
}
