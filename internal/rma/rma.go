package rma

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/sched"
)

// Comm is a simulated MPI communicator: a world of p ranks plus the cost
// model of the machine they run on.
type Comm struct {
	p     int
	model CostModel
	pool  *sched.Pool

	// deferred / observer configure the charge plane of every rank created
	// from this world (tape.go); both must be set before Run.
	deferred bool
	observer ChargeObserver

	// faults is the deterministic fault schedule every rank binds at
	// construction (fault.go); nil leaves the plane off at zero cost.
	faults *fault.Spec

	// prog, when set, receives out-of-band run-progress ticks (sched
	// .Progress): one per masked checkpoint poll per rank, one per barrier
	// round close. Host-side diagnostics for the serve watchdog only —
	// never observed by the simulated clocks.
	prog *sched.Progress

	mu      sync.Mutex
	windows []*Window
	byID    [][]*Rank // every Rank handle created, grouped by id (staged-op commit order)
}

// NewComm creates a world of p ranks whose bodies run on up to GOMAXPROCS
// concurrent worker goroutines (see NewCommWorkers).
func NewComm(p int, model CostModel) *Comm {
	return NewCommWorkers(p, model, 0)
}

// NewCommWorkers creates a world of p ranks bounded to the given number of
// concurrently executing rank bodies. workers <= 0 selects GOMAXPROCS.
// Results are bit-identical at every worker count: rank state is
// rank-local, and the only cross-rank writes — accumulates into writable
// windows — are staged per (origin, target) and committed in origin-rank
// order at barriers (DESIGN.md §4).
func NewCommWorkers(p int, model CostModel, workers int) *Comm {
	if p < 1 {
		panic(fmt.Sprintf("rma: need at least one rank, got %d", p))
	}
	return &Comm{p: p, model: model, pool: sched.New(workers), byID: make([][]*Rank, p)}
}

// NumRanks returns the world size p.
func (c *Comm) NumRanks() int { return c.p }

// Model returns the communicator's cost model.
func (c *Comm) Model() CostModel { return c.model }

// Workers returns the scheduler's concurrency bound.
func (c *Comm) Workers() int { return c.pool.Workers() }

// WindowKind identifies the storage and aliasing discipline of a window.
// The modeled communication cost is identical across kinds — only the
// host-side behaviour of Get differs (snapshot copy vs. aliased view); see
// DESIGN.md §2 for the full aliasing contract.
type WindowKind uint8

const (
	// WritableBytes is the classic window: a byte region peers may Put,
	// Accumulate and FetchAdd into. Get snapshots the region at issue
	// time into a request-owned buffer.
	WritableBytes WindowKind = iota
	// ReadOnlyBytes exposes immutable byte data: Get returns an aliased
	// subslice of the target region, no copy. Put/Accumulate panic.
	ReadOnlyBytes
	// ReadOnlyUint64s exposes immutable []uint64 data natively (the
	// offset pairs of Fig. 3); Get returns an aliased []uint64 view via
	// Request.Uint64s. Offsets and sizes remain byte-addressed.
	ReadOnlyUint64s
	// ReadOnlyVertices exposes immutable []graph.V data natively (the
	// adjacency arrays of Fig. 3); Get returns an aliased []graph.V view
	// via Request.Vertices. Offsets and sizes remain byte-addressed.
	ReadOnlyVertices
	// CompressedVertices exposes immutable vertex lists stored host-side as
	// varint/delta-compressed runs (graph.CompressedAdj). The window's
	// byte geometry is the PLAIN image — SizeAt, offsets, sizes, and
	// therefore every charge and cache key are identical to an equivalent
	// ReadOnlyVertices window; compression is invisible to the model plane
	// (DESIGN.md §9). Gets must address whole vertex runs and decode into
	// request-owned storage: Request.Vertices returns a buffer that is
	// recycled with the request, not a window alias.
	CompressedVertices
)

func (k WindowKind) String() string {
	switch k {
	case WritableBytes:
		return "writable-bytes"
	case ReadOnlyBytes:
		return "readonly-bytes"
	case ReadOnlyUint64s:
		return "readonly-uint64s"
	case ReadOnlyVertices:
		return "readonly-vertices"
	case CompressedVertices:
		return "compressed-vertices"
	default:
		return fmt.Sprintf("WindowKind(%d)", uint8(k))
	}
}

// Window is a logically distributed memory region: each rank contributes a
// local region that remote peers can read with one-sided Gets ("network
// exposed" in Fig. 3 of the paper). Exactly one of loc/locU/locV is
// populated, according to kind; all public addressing is in bytes
// regardless of kind, so cost accounting and cache keys are uniform.
type Window struct {
	name string
	comm *Comm
	kind WindowKind
	loc  [][]byte               // WritableBytes / ReadOnlyBytes
	locU [][]uint64             // ReadOnlyUint64s
	locV [][]graph.V            // ReadOnlyVertices
	locZ []*graph.CompressedAdj // CompressedVertices
}

func (c *Comm) register(w *Window, nLocal int) *Window {
	if nLocal != c.p {
		panic(fmt.Sprintf("rma: window %q: got %d local regions for %d ranks", w.name, nLocal, c.p))
	}
	c.mu.Lock()
	c.windows = append(c.windows, w)
	c.mu.Unlock()
	return w
}

// CreateWindow collectively creates a writable byte window from per-rank
// local regions. local must have one entry per rank (entries may differ in
// length, and may be nil for ranks exposing nothing). Gets on a writable
// window snapshot the region at issue time.
func (c *Comm) CreateWindow(name string, local [][]byte) *Window {
	return c.register(&Window{name: name, comm: c, kind: WritableBytes, loc: local}, len(local))
}

// CreateReadOnlyWindow creates a window over immutable byte data: Get
// returns aliased views instead of copies. The caller asserts that no
// region is modified while any epoch on the window is open (the MPI RMA
// separation rules the paper's engines rely on anyway).
func (c *Comm) CreateReadOnlyWindow(name string, local [][]byte) *Window {
	return c.register(&Window{name: name, comm: c, kind: ReadOnlyBytes, loc: local}, len(local))
}

// CreateUint64Window creates a read-only window natively exposing []uint64
// regions, eliminating the encode copy at setup and the decode at every
// fetch. Byte addressing: rank i exposes 8*len(local[i]) bytes.
func (c *Comm) CreateUint64Window(name string, local [][]uint64) *Window {
	return c.register(&Window{name: name, comm: c, kind: ReadOnlyUint64s, locU: local}, len(local))
}

// CreateVertexWindow creates a read-only window natively exposing []graph.V
// regions. Byte addressing: rank i exposes 4*len(local[i]) bytes.
func (c *Comm) CreateVertexWindow(name string, local [][]graph.V) *Window {
	return c.register(&Window{name: name, comm: c, kind: ReadOnlyVertices, locV: local}, len(local))
}

// CreateCompressedVertexWindow creates a read-only window over
// varint/delta-compressed vertex lists. Byte addressing follows each
// region's plain image (4 bytes per vertex entry), so the simulated wire
// format — and with it every charge, counter, and cache key — matches an
// uncompressed vertex window bit for bit.
func (c *Comm) CreateCompressedVertexWindow(name string, local []*graph.CompressedAdj) *Window {
	return c.register(&Window{name: name, comm: c, kind: CompressedVertices, locZ: local}, len(local))
}

// Name returns the window's debug name.
func (w *Window) Name() string { return w.name }

// Kind returns the window's storage/aliasing kind.
func (w *Window) Kind() WindowKind { return w.kind }

// ReadOnly reports whether Gets on this window return aliased views.
func (w *Window) ReadOnly() bool { return w.kind != WritableBytes }

// SizeAt returns the byte length of the region rank exposes.
func (w *Window) SizeAt(rank int) int {
	switch w.kind {
	case ReadOnlyUint64s:
		return 8 * len(w.locU[rank])
	case ReadOnlyVertices:
		return 4 * len(w.locV[rank])
	case CompressedVertices:
		return w.locZ[rank].PlainBytes()
	default:
		return len(w.loc[rank])
	}
}

// ViewBytes returns the aliased [offset, offset+size) byte view of target's
// region in a ReadOnlyBytes window. The view is immutable and remains valid
// for the lifetime of the window (it does not depend on any request).
func (w *Window) ViewBytes(target, offset, size int) []byte {
	if w.kind != ReadOnlyBytes {
		panic(fmt.Sprintf("rma: ViewBytes on %v window %q", w.kind, w.name))
	}
	return w.loc[target][offset : offset+size : offset+size]
}

// ViewUint64s returns the aliased typed view of a byte range in a
// ReadOnlyUint64s window. offset and size are in bytes and must be
// 8-aligned.
func (w *Window) ViewUint64s(target, offset, size int) []uint64 {
	if w.kind != ReadOnlyUint64s {
		panic(fmt.Sprintf("rma: ViewUint64s on %v window %q", w.kind, w.name))
	}
	if offset%8 != 0 || size%8 != 0 {
		panic(fmt.Sprintf("rma: misaligned uint64 view [%d:+%d) on %q", offset, size, w.name))
	}
	return w.locU[target][offset/8 : (offset+size)/8 : (offset+size)/8]
}

// ViewVertices returns the aliased typed view of a byte range in a
// ReadOnlyVertices window. offset and size are in bytes and must be
// 4-aligned.
func (w *Window) ViewVertices(target, offset, size int) []graph.V {
	if w.kind != ReadOnlyVertices {
		panic(fmt.Sprintf("rma: ViewVertices on %v window %q", w.kind, w.name))
	}
	if offset%4 != 0 || size%4 != 0 {
		panic(fmt.Sprintf("rma: misaligned vertex view [%d:+%d) on %q", offset, size, w.name))
	}
	return w.locV[target][offset/4 : (offset+size)/4 : (offset+size)/4]
}

// ReadVertices reads a byte range of a vertex window independent of its
// storage: an aliased view for ReadOnlyVertices, a decode into buf (grown
// only if too small) for CompressedVertices — where the range must cover
// exactly one whole vertex run. It is the representation-agnostic
// counterpart of ViewVertices for callers (the engines' inline cache-hit
// path) that can supply their own buffer.
func (w *Window) ReadVertices(target, offset, size int, buf []graph.V) []graph.V {
	if w.kind == CompressedVertices {
		return w.locZ[target].DecodeAt(offset, size, buf)
	}
	return w.ViewVertices(target, offset, size)
}

// Counters aggregates a rank's communication activity; the evaluation
// harness reads these to report remote-read counts, bytes moved, and
// communication time (the paper reports e.g. the remote/local read ratio
// and the fraction of runtime spent communicating).
type Counters struct {
	Gets        int64   // one-sided reads issued to remote ranks
	LocalGets   int64   // one-sided reads that targeted the rank itself
	Puts        int64   // one-sided writes
	RemoteBytes int64   // bytes fetched from remote ranks
	LocalBytes  int64   // bytes read from the local region
	GetCost     float64 // sum of α+s·β over issued remote gets (ns)
	FlushWait   float64 // simulated time spent blocked in flushes (ns)
	ComputeTime float64 // simulated time charged via Compute (ns)
	Retries     int64   // failed one-sided attempts retransmitted (fault plane)
	FaultWait   float64 // simulated time lost to fault recovery (ns)
	Crashes     int64   // crash-stops recovered by restart + redo (fault plane)
}

// Merge accumulates o's activity into c. It is the one end-of-run rollup
// path: engines aggregating per-rank counters call Merge instead of
// summing fields ad hoc, so a counter added here is never silently
// dropped from a report (merge_test.go pins the field coverage). Merge is
// not concurrency-safe; aggregate after the run, from one goroutine.
func (c *Counters) Merge(o Counters) {
	c.Gets += o.Gets
	c.LocalGets += o.LocalGets
	c.Puts += o.Puts
	c.RemoteBytes += o.RemoteBytes
	c.LocalBytes += o.LocalBytes
	c.GetCost += o.GetCost
	c.FlushWait += o.FlushWait
	c.ComputeTime += o.ComputeTime
	c.Retries += o.Retries
	c.FaultWait += o.FaultWait
	c.Crashes += o.Crashes
}

// Rank is one process of the world. A Rank must be used from a single
// goroutine; different Ranks may run concurrently. That single-goroutine
// contract is what makes the request free list (and the charge tape) safe
// without locking.
type Rank struct {
	id      int
	comm    *Comm
	clock   Clock
	ctr     Counters
	running bool // inside a pool-scheduled Run body (holds a worker slot)

	// tape is the rank's deferred-charge tape (tape.go): descriptors in
	// canonical program order, folded into the clock at observation
	// points when deferred mode is on. The default folds each charge at
	// its canonical point and never touches the tape; observer sees every
	// fold in either mode.
	tape     []tapeOp
	deferred bool
	observer ChargeObserver

	// epochs is the set of windows with an open access epoch. A flat
	// slice: every engine here holds at most three epochs at once, so a
	// linear scan beats a map lookup on every Get/Put — and allocates
	// nothing at rank construction.
	epochs  []*Window
	pending []*Request
	free    []*Request // recycled requests (see Request.Release)

	// Staged accumulates: cross-rank window writes buffered per target
	// until a flush or barrier commits them (staged.go). stagedOps counts
	// buffered updates so the no-accumulate hot paths pay one int check.
	staged    [][]stagedAcc
	stagedOps int

	// faults is the rank's bound fault schedule (fault.go); nil — the
	// default — keeps every issue path at one nil check of overhead.
	faults *fault.Sched

	// ckOps counts issue points for the masked cancellation poll
	// (checkpoint); ckptT is the rank's clock at its last completed
	// barrier — the recovery point a crash-stop re-executes from.
	ckOps uint32
	ckptT float64

	// prog mirrors Comm.prog (bound at construction): the watchdog's
	// progress counter, ticked on the same masked cadence as the
	// cancellation poll. nil keeps the hot path at one predictable branch.
	prog *sched.Progress
}

// checkpointMask throttles cancellation polling: one atomic load every
// 256 issue points keeps the cancel latency far below any human-visible
// deadline while costing the hot paths a counter increment and a branch.
const checkpointMask = 0xff

// checkpoint polls run cancellation. If the surrounding RunCtx has been
// canceled, the rank unwinds here (by panic, collected by the scheduler);
// ops between two checkpoints run exactly as in an unsupervised run, so
// the poll never perturbs the charge sequence (DESIGN.md §8).
func (r *Rank) checkpoint() {
	r.ckOps++
	if r.ckOps&checkpointMask == 0 {
		if r.prog != nil {
			r.prog.Tick(r.id)
		}
		r.comm.pool.Checkpoint()
	}
}

// Rank constructs the handle for rank id. Each id should be obtained once,
// typically inside Run.
func (c *Comm) Rank(id int) *Rank {
	if id < 0 || id >= c.p {
		panic(fmt.Sprintf("rma: rank %d out of range [0,%d)", id, c.p))
	}
	r := &Rank{id: id, comm: c, deferred: c.deferred, observer: c.observer}
	// Every engine here opens at most three epochs (offsets, adjacency,
	// and possibly a counter window); one slab keeps LockAll append-free.
	r.epochs = make([]*Window, 0, 4)
	if r.deferred {
		// One slab covers any realistic inter-fold charge burst; folds
		// keep the backing array, so the tape never allocates again.
		r.tape = make([]tapeOp, 0, 64)
	}
	r.clock.SetNoise(c.model.Noise, id)
	r.faults = fault.New(c.faults, id)
	r.prog = c.prog
	c.mu.Lock()
	c.byID[id] = append(c.byID[id], r)
	c.mu.Unlock()
	return r
}

// ID returns the rank's id in [0,p).
func (r *Rank) ID() int { return r.id }

// NumRanks returns the world size of the rank's communicator.
func (r *Rank) NumRanks() int { return r.comm.p }

// Model returns the cost model of the rank's communicator.
func (r *Rank) Model() CostModel { return r.comm.model }

// Clock returns the rank's simulated clock, folding any deferred charges
// first so the returned clock reads true simulated time.
func (r *Rank) Clock() *Clock {
	r.fold()
	return &r.clock
}

// Counters returns a snapshot of the rank's counters, folding any deferred
// charges first.
func (r *Rank) Counters() Counters {
	r.fold()
	return r.ctr
}

// Compute charges modeled computation time (ops × κ) to the rank's clock.
func (r *Rank) Compute(ops int) {
	r.checkpoint()
	d := float64(ops) * r.comm.model.ComputePerOp
	if r.plain() {
		r.clock.Advance(d)
		r.ctr.ComputeTime += d
		return
	}
	r.charge(ChargeOps, ops, d, nil)
}

// AdvanceBy charges an arbitrary simulated duration (used for modeled
// costs that are not per-op, e.g. OpenMP region entry in the shared-memory
// experiments). Raw durations do not fit the (kind, bytes) tape, so
// AdvanceBy is itself a fold point: deferred charges land first, then the
// duration applies eagerly — the same canonical order either way.
func (r *Rank) AdvanceBy(ns float64) {
	r.fold()
	r.clock.Advance(ns)
	r.ctr.ComputeTime += ns
	if r.observer != nil {
		r.observer(r.id, ChargeNS, 0, ns, r.clock.Now())
	}
}

// inEpoch reports whether the rank has an open access epoch on w.
func (r *Rank) inEpoch(w *Window) bool {
	for _, e := range r.epochs {
		if e == w {
			return true
		}
	}
	return false
}

// LockAll opens a passive-target access epoch on w, after which the rank
// may issue RMA operations to any peer. As §III-A stresses, this is not a
// lock and involves no synchronization; here it only flips epoch state.
func (r *Rank) LockAll(w *Window) {
	if r.inEpoch(w) {
		panic(fmt.Sprintf("rma: rank %d: LockAll on %q with epoch already open", r.id, w.name))
	}
	r.epochs = append(r.epochs, w)
}

// UnlockAll closes the access epoch on w, implying a flush. Like the real
// operation in passive mode, it is local: no peer involvement.
func (r *Rank) UnlockAll(w *Window) {
	if !r.inEpoch(w) {
		panic(fmt.Sprintf("rma: rank %d: UnlockAll on %q without open epoch", r.id, w.name))
	}
	r.FlushAll(w)
	for i, e := range r.epochs {
		if e == w {
			r.epochs = append(r.epochs[:i], r.epochs[i+1:]...)
			break
		}
	}
}

// Request is an outstanding non-blocking RMA operation. The data accessors
// are valid only after the request completed (a flush on its window, or
// Wait). Requests come from a per-rank free list: call Release when done
// with a request to return it — the allocation-free discipline every hot
// path here relies on. A request that is never released is ordinary
// garbage, exactly as before pooling.
type Request struct {
	rank       *Rank
	win        *Window
	target     int
	kind       reqKind   // operation class that issued this request
	data       []byte    // byte windows: snapshot (writable) or view (read-only)
	u64        []uint64  // ReadOnlyUint64s windows: aliased view
	verts      []graph.V // ReadOnlyVertices: aliased view; CompressedVertices: decoded into vbuf
	buf        []byte    // owned snapshot storage, reused across pool cycles
	vbuf       []graph.V // owned decode storage (CompressedVertices), reused across pool cycles
	completeAt float64   // simulated completion time
	done       bool
	autoFree   bool // released while pending; recycle at completion
	pooled     bool // currently on the free list (double-release guard)
	tracked    bool // on the rank's pending list (flushes complete it)
	owned      bool // caller-owned storage (GetInto); must never be pooled
}

// reqKind names the operation class that issued a request, so misuse
// diagnostics (double Release) can say what was released, not just where.
type reqKind uint8

const (
	reqGet reqKind = iota
	reqPut
	reqAccumulate
	reqAccumulateBatch
)

func (k reqKind) String() string {
	switch k {
	case reqGet:
		return "get"
	case reqPut:
		return "put"
	case reqAccumulate:
		return "accumulate"
	case reqAccumulateBatch:
		return "accumulate-batch"
	default:
		return "unknown"
	}
}

// newRequest pops a recycled request or allocates one.
func (r *Rank) newRequest(w *Window, target int, kind reqKind) *Request {
	var q *Request
	if n := len(r.free); n > 0 {
		q = r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		q.pooled = false
	} else {
		q = &Request{rank: r}
	}
	q.win = w
	q.target = target
	q.kind = kind
	q.data, q.u64, q.verts = nil, nil, nil
	q.completeAt = 0
	q.done = false
	q.autoFree = false
	return q
}

// Release returns the request to its rank's free list. If the request is
// still pending, it is recycled automatically when a flush completes it
// (the fire-and-forget pattern of the push engine's accumulates). After
// Release, the request must not be touched again; data obtained from a
// read-only window remains valid (it aliases the window, not the request),
// while a writable-window snapshot is invalidated. A second Release of the
// same request panics — recycling it twice would hand two future
// operations the same backing storage, and that free-list corruption
// surfaces far from its cause.
func (q *Request) Release() {
	if q.pooled {
		panic(fmt.Sprintf("rma: rank %d: double Release of %s request",
			q.rank.id, q.kind))
	}
	if q.owned {
		panic("rma: Release of a caller-owned request (GetInto); the caller owns its storage")
	}
	if !q.done {
		q.autoFree = true
		return
	}
	q.recycle()
}

func (q *Request) recycle() {
	q.win = nil
	q.data, q.u64, q.verts = nil, nil, nil
	q.autoFree = false
	q.pooled = true
	q.rank.free = append(q.rank.free, q)
}

// Target returns the rank this operation addressed.
func (q *Request) Target() int { return q.target }

// Done reports whether the request has completed.
func (q *Request) Done() bool { return q.done }

// Data returns the bytes read by a completed Get on a byte window. It
// panics if the request has not completed: the MPI RMA semantics the paper
// relies on forbid touching a get's target buffer before a flush. For
// writable windows the slice is a request-owned snapshot (valid until
// Release); for ReadOnlyBytes windows it aliases the window region and
// outlives the request.
func (q *Request) Data() []byte {
	if !q.done {
		panic("rma: Data() before flush; RMA reads complete only at flush")
	}
	return q.data
}

// Uint64s returns the typed view read by a completed Get on a
// ReadOnlyUint64s window. The view aliases the window region and remains
// valid after Release.
func (q *Request) Uint64s() []uint64 {
	if !q.done {
		panic("rma: Uint64s() before flush; RMA reads complete only at flush")
	}
	return q.u64
}

// Vertices returns the typed view read by a completed Get on a vertex
// window. Over ReadOnlyVertices the view aliases the window region and
// remains valid after Release; over CompressedVertices it is request-owned
// decode storage, valid only until the request is recycled or reused.
func (q *Request) Vertices() []graph.V {
	if !q.done {
		panic("rma: Vertices() before flush; RMA reads complete only at flush")
	}
	return q.verts
}

// CompleteAt returns the simulated time at which the transfer finishes.
// Completion times are established when the issue charge folds, so the
// rank's tape is folded first.
func (q *Request) CompleteAt() float64 {
	q.rank.fold()
	return q.completeAt
}

// Wait completes this single request, advancing the rank's clock to the
// request's completion time if needed (MPI_Win_flush_local on one op).
func (q *Request) Wait() {
	if q.done {
		return
	}
	r := q.rank
	r.fold()
	before := r.clock.Now()
	r.clock.AdvanceTo(q.completeAt)
	r.ctr.FlushWait += r.clock.Now() - before
	q.done = true
	if q.tracked {
		q.tracked = false
		r.removePending(q)
	}
	if q.autoFree {
		q.recycle()
	}
}

// removePending unlinks q with a swap-remove: completion order does not
// matter to the simulated clock (AdvanceTo is a running max), so the O(n)
// shift of an ordered delete would buy nothing.
func (r *Rank) removePending(q *Request) {
	for i, p := range r.pending {
		if p == q {
			last := len(r.pending) - 1
			r.pending[i] = r.pending[last]
			r.pending[last] = nil
			r.pending = r.pending[:last]
			return
		}
	}
}

// resolve fills the request's data fields for a Get of [offset, offset+size)
// on the target region: a snapshot copy for writable windows, an aliased
// view otherwise. Snapshot-at-issue and view semantics coincide for the
// algorithms here: they only read immutable graph data during epochs, and
// MPI forbids conflicting concurrent access within an epoch anyway.
func (q *Request) resolve(w *Window, target, offset, size int) {
	switch w.kind {
	case WritableBytes:
		if cap(q.buf) < size {
			q.buf = make([]byte, size)
		}
		b := q.buf[:size]
		copy(b, w.loc[target][offset:offset+size])
		q.data = b
	case ReadOnlyBytes:
		q.data = w.loc[target][offset : offset+size : offset+size]
	case ReadOnlyUint64s:
		q.u64 = w.ViewUint64s(target, offset, size)
	case ReadOnlyVertices:
		q.verts = w.ViewVertices(target, offset, size)
	case CompressedVertices:
		q.verts = w.locZ[target].DecodeAt(offset, size, q.vbuf)
		q.vbuf = q.verts
	}
}

// Get issues a one-sided, non-blocking read of size bytes at offset in the
// region target exposes in w. The rank's clock is charged only the issue
// overhead; the transfer completes in the background at now+α+s·β, and a
// later flush waits for it (this is what makes double buffering effective,
// §III-A). Reads targeting the rank itself are served at local-memory cost
// and complete immediately.
func (r *Rank) Get(w *Window, target, offset, size int) *Request {
	r.checkpoint()
	if !r.inEpoch(w) {
		panic(fmt.Sprintf("rma: rank %d: Get on %q outside an access epoch", r.id, w.name))
	}
	if rl := w.SizeAt(target); offset < 0 || size < 0 || offset+size > rl {
		panic(fmt.Sprintf("rma: rank %d: Get %q target %d [%d:+%d) out of range (len %d)",
			r.id, w.name, target, offset, size, rl))
	}
	if r.stagedOps > 0 && w.kind == WritableBytes {
		// Same-origin program order: a snapshot taken after this rank's
		// own accumulates must observe them (staged.go).
		r.commitStaged(w, target)
	}
	q := r.newRequest(w, target, reqGet)
	q.resolve(w, target, offset, size)
	if target == r.id {
		q.done = true
		if r.plain() {
			r.clock.Advance(r.comm.model.LocalCost(size))
			r.ctr.LocalGets++
			r.ctr.LocalBytes += int64(size)
			q.completeAt = r.clock.Now()
		} else {
			r.charge(ChargeGetLocal, size, r.comm.model.LocalCost(size), q)
		}
		return q
	}
	// Fault plane: recovery charges land before the canonical op charge,
	// modeling a rank blocked in its retry loop at the issue point.
	if r.faults != nil {
		r.injectFaults(fault.ClassGet, size)
	}
	// The issue charges nothing to the clock; the in-flight duration and
	// the completion time are established here, at the canonical issue
	// point (or at the fold of this position's descriptor in deferred
	// mode).
	if r.plain() {
		cost := r.clock.PerturbDuration(r.comm.model.RemoteCost(size))
		q.completeAt = r.clock.Now() + cost
		r.ctr.Gets++
		r.ctr.RemoteBytes += int64(size)
		r.ctr.GetCost += cost
	} else {
		r.charge(ChargeGetRemote, size, r.comm.model.RemoteCost(size), q)
	}
	q.tracked = true
	r.pending = append(r.pending, q)
	return q
}

// GetInto is Get into a caller-owned request: q is typically embedded by
// value in the caller's own pipeline state, so the per-rank request pool
// and the pending list are bypassed entirely — no pool pop/push, no
// pending append, no swap-remove on completion. The trade is a narrower
// contract, which the engines' fetch pipeline satisfies by construction:
// the caller must complete the request with q.Wait() (window-level flushes
// do not see it) and must not Release it (it owns the storage). Everything
// else — charges, completion time, counters, data views — is identical to
// Get, including the canonical charge-tape position.
func (r *Rank) GetInto(q *Request, w *Window, target, offset, size int) {
	r.checkpoint()
	if !r.inEpoch(w) {
		panic(fmt.Sprintf("rma: rank %d: GetInto on %q outside an access epoch", r.id, w.name))
	}
	if rl := w.SizeAt(target); offset < 0 || size < 0 || offset+size > rl {
		panic(fmt.Sprintf("rma: rank %d: GetInto %q target %d [%d:+%d) out of range (len %d)",
			r.id, w.name, target, offset, size, rl))
	}
	if r.stagedOps > 0 && w.kind == WritableBytes {
		r.commitStaged(w, target)
	}
	q.rank = r
	q.win = w
	q.target = target
	q.kind = reqGet
	q.done = false
	q.owned = true
	q.data, q.u64, q.verts = nil, nil, nil
	q.resolve(w, target, offset, size)
	if target == r.id {
		q.done = true
		if r.plain() {
			r.clock.Advance(r.comm.model.LocalCost(size))
			r.ctr.LocalGets++
			r.ctr.LocalBytes += int64(size)
			q.completeAt = r.clock.Now()
		} else {
			r.charge(ChargeGetLocal, size, r.comm.model.LocalCost(size), q)
		}
		return
	}
	if r.faults != nil {
		r.injectFaults(fault.ClassGet, size)
	}
	if r.plain() {
		cost := r.clock.PerturbDuration(r.comm.model.RemoteCost(size))
		q.completeAt = r.clock.Now() + cost
		r.ctr.Gets++
		r.ctr.RemoteBytes += int64(size)
		r.ctr.GetCost += cost
	} else {
		r.charge(ChargeGetRemote, size, r.comm.model.RemoteCost(size), q)
	}
}

// Put issues a one-sided write of data into target's region at offset. The
// write is applied immediately (our callers never race puts against gets in
// the same epoch, which MPI forbids) but completion time follows the same
// α+s·β model. Put requires a writable window.
func (r *Rank) Put(w *Window, target, offset int, data []byte) *Request {
	r.checkpoint()
	if !r.inEpoch(w) {
		panic(fmt.Sprintf("rma: rank %d: Put on %q outside an access epoch", r.id, w.name))
	}
	r.fold() // Put reads the clock (and noise stream) eagerly below
	if w.kind != WritableBytes {
		panic(fmt.Sprintf("rma: rank %d: Put on %v window %q", r.id, w.kind, w.name))
	}
	region := w.loc[target]
	if offset < 0 || offset+len(data) > len(region) {
		panic(fmt.Sprintf("rma: rank %d: Put %q target %d [%d:+%d) out of range (len %d)",
			r.id, w.name, target, offset, len(data), len(region)))
	}
	if r.stagedOps > 0 {
		// Same-origin program order: accumulates issued before this Put
		// land first (staged.go).
		r.commitStaged(w, target)
	}
	copy(region[offset:], data)
	q := r.newRequest(w, target, reqPut)
	if target == r.id {
		r.clock.Advance(r.comm.model.LocalCost(len(data)))
		q.completeAt = r.clock.Now()
		q.done = true
		return q
	}
	if r.faults != nil {
		// Put reads the clock eagerly below, so the recovery charges must
		// be folded, not just appended, before the completion arithmetic.
		r.injectFaults(fault.ClassPut, len(data))
		r.fold()
	}
	cost := r.clock.PerturbDuration(r.comm.model.RemoteCost(len(data)))
	q.completeAt = r.clock.Now() + cost
	r.ctr.Puts++
	r.ctr.RemoteBytes += int64(len(data))
	q.tracked = true
	r.pending = append(r.pending, q)
	return q
}

// completePending completes every pending request that match accepts:
// the clock advances to the latest completion time among them, auto-freed
// requests return to the pool, and the pending list is compacted. Shared
// by FlushAll and the per-target Flush.
func (r *Rank) completePending(match func(q *Request) bool) {
	r.fold()
	before := r.clock.Now()
	rest := r.pending[:0]
	for _, q := range r.pending {
		if !match(q) {
			rest = append(rest, q)
			continue
		}
		r.clock.AdvanceTo(q.completeAt)
		q.done = true
		q.tracked = false
		if q.autoFree {
			q.recycle()
		}
	}
	for i := len(rest); i < len(r.pending); i++ {
		r.pending[i] = nil
	}
	r.pending = rest
	r.ctr.FlushWait += r.clock.Now() - before
}

// FlushAll completes every outstanding operation of this rank on w
// (MPI_Win_flush_all): staged accumulates on w land in the target regions,
// and the clock advances to the latest completion time. Completed requests
// that were released while pending return to the free list here.
func (r *Rank) FlushAll(w *Window) {
	if r.stagedOps > 0 {
		r.commitStaged(w, -1)
	}
	r.completePending(func(q *Request) bool { return q.win == w })
}

// Run executes body on every rank concurrently — each rank on its own
// goroutine, with at most Workers (NewCommWorkers) executing at any
// moment — and returns the rank handles (with final clocks and counters)
// once all have finished. This mirrors an SPMD mpirun on a host with
// Workers cores: fully asynchronous ranks, no hidden synchronization, and
// results that are bit-identical at every worker count.
func (c *Comm) Run(body func(r *Rank)) []*Rank {
	ranks := make([]*Rank, c.p)
	for i := 0; i < c.p; i++ {
		ranks[i] = c.Rank(i)
	}
	c.pool.Run(c.p, func(i int) {
		r := ranks[i]
		r.running = true
		body(r)
		r.running = false
	})
	return ranks
}

// RunCtx is Run under supervision (sched.Pool.RunCtx): ranks observe ctx
// cancellation at their issue-point checkpoints and barrier waits and
// unwind cleanly; a rank-body panic is converted into a *sched.PanicError
// with the rank attached; a deterministic abort (the crash-stop class in
// fail-fast mode) returns its error. On any non-nil error the returned
// ranks are nil — a supervised run yields complete results or none.
func (c *Comm) RunCtx(ctx context.Context, body func(r *Rank)) ([]*Rank, error) {
	ranks := make([]*Rank, c.p)
	for i := 0; i < c.p; i++ {
		ranks[i] = c.Rank(i)
	}
	err := c.pool.RunCtx(ctx, c.p, func(i int) {
		r := ranks[i]
		r.running = true
		defer func() { r.running = false }()
		body(r)
	})
	if err != nil {
		return nil, err
	}
	return ranks, nil
}

// MaxClock returns the largest simulated finish time over ranks — the
// paper's measurement ("the longest-running node").
func MaxClock(ranks []*Rank) float64 {
	max := 0.0
	for _, r := range ranks {
		if t := r.Clock().Now(); t > max {
			max = t
		}
	}
	return max
}

// --- typed window helpers ------------------------------------------------

// EncodeUint64s serializes vals little-endian for exposure in a byte window
// (used by serialization formats; the engines expose uint64 data natively
// via CreateUint64Window instead).
func EncodeUint64s(vals []uint64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], v)
	}
	return out
}

// DecodeUint64s parses a buffer written by EncodeUint64s.
func DecodeUint64s(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

// EncodeVertices serializes a vertex list little-endian (4 bytes each).
func EncodeVertices(vals []graph.V) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// DecodeVertices parses a buffer written by EncodeVertices.
func DecodeVertices(b []byte) []graph.V {
	out := make([]graph.V, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// DecodeVerticesInto is DecodeVertices into a caller-provided buffer,
// avoiding the allocation on the caller's hot path.
func DecodeVerticesInto(dst []graph.V, b []byte) []graph.V {
	n := len(b) / 4
	if cap(dst) < n {
		dst = make([]graph.V, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return dst
}
