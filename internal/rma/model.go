// Package rma simulates an MPI-3 RMA runtime: a world of p ranks, windows
// of network-exposed memory, one-sided non-blocking Get/Put operations, and
// passive-target synchronization (MPI_Win_lock_all / flush / unlock_all),
// following §II-E of the paper.
//
// Why a simulation: there is no MPI implementation for Go, and this
// reproduction runs on a single machine (see DESIGN.md §1). Ranks execute as
// goroutines, each carrying an independent *simulated clock*. Every remote
// read charges t(s) = α + s·β — precisely the cost model the paper itself
// uses to analyze caching (§IV-D-1) — so the communication/computation
// balance and all crossover behaviour of the evaluation are preserved while
// remaining deterministic and hardware-independent.
package rma

// CostModel holds the calibration constants of the simulated machine. All
// times are in nanoseconds. Defaults mirror the numbers the paper quotes
// for Piz Daint's Cray Aries network (§III-B: remote accesses take 2-3 µs;
// DRAM accesses hundreds of ns, tens when cached).
type CostModel struct {
	// RemoteLatency is α: the setup overhead of one remote read.
	RemoteLatency float64
	// RemoteBytePeriod is β: time to move one byte over the network
	// (0.1 ns/B ≈ 10 GB/s per NIC).
	RemoteBytePeriod float64
	// LocalLatency is the cost of one local (DRAM) access.
	LocalLatency float64
	// LocalBytePeriod is the per-byte cost of streaming local memory.
	LocalBytePeriod float64
	// CacheHitLatency is the cost of serving a read from the CLaMPI
	// cache instead of the network (tens of ns: a hash probe plus an
	// in-cache DRAM copy).
	CacheHitLatency float64
	// CacheMissOverhead is CLaMPI's bookkeeping cost added to every miss
	// that goes through the cache (hash insert, allocator work, possible
	// evictions). This is the overhead that makes caching a net loss
	// when compulsory misses dominate (§IV-D-2, scenario 2).
	CacheMissOverhead float64
	// ComputePerOp is κ: the charge for one comparison inside an
	// intersection kernel. Charging modeled compute instead of wall
	// time keeps distributed results deterministic on any host.
	ComputePerOp float64
	// SendRecvOverhead is the extra per-message cost of two-sided MPI
	// (message matching, possible extra copy) relative to RMA; §II-E
	// motivates RMA with exactly this overhead. Used by internal/p2p.
	SendRecvOverhead float64
	// BarrierLatency is the base cost of a barrier/collective step in
	// the BSP baseline, on top of waiting for the slowest rank.
	BarrierLatency float64
	// Noise optionally injects deterministic per-rank execution noise
	// (see NoiseSpec); the zero value leaves every charge exact. It is
	// part of the cost model so that every engine taking a CostModel can
	// be run under identical noise — the A7 ablation.
	Noise NoiseSpec
}

// DefaultCostModel returns the Cray-Aries-like calibration used throughout
// the evaluation.
func DefaultCostModel() CostModel {
	return CostModel{
		RemoteLatency:     2000, // 2 µs
		RemoteBytePeriod:  0.1,  // 10 GB/s
		LocalLatency:      100,
		LocalBytePeriod:   0.05,
		CacheHitLatency:   30,
		CacheMissOverhead: 750,
		ComputePerOp:      1.5,
		SendRecvOverhead:  1000,
		BarrierLatency:    5000,
	}
}

// RemoteCost returns α + s·β for a remote access of s bytes.
func (m CostModel) RemoteCost(s int) float64 {
	return m.RemoteLatency + float64(s)*m.RemoteBytePeriod
}

// LocalCost returns the charge for reading s bytes of local memory.
func (m CostModel) LocalCost(s int) float64 {
	return m.LocalLatency + float64(s)*m.LocalBytePeriod
}

// HitCost returns the charge for serving s bytes from the RMA cache.
func (m CostModel) HitCost(s int) float64 {
	return m.CacheHitLatency + float64(s)*m.LocalBytePeriod
}

// Clock is a rank's simulated time. The zero value reads 0 ns and is
// noise-free.
type Clock struct {
	now   float64
	noise *noiseState
}

// Now returns the current simulated time in ns.
func (c *Clock) Now() float64 { return c.now }

// SetNoise installs a deterministic noise stream for this clock; the rank
// id decorrelates streams within a run. A disabled spec clears the stream.
func (c *Clock) SetNoise(spec NoiseSpec, rank int) {
	if spec.Enabled() {
		c.noise = newNoiseState(spec, rank)
	} else {
		c.noise = nil
	}
}

// Advance moves the clock forward by d ns (negative d is ignored),
// stretching the charge under the installed noise stream, if any. Waits
// (AdvanceTo) are not perturbed: noise models stolen cycles during work,
// not during blocking.
func (c *Clock) Advance(d float64) {
	if d > 0 {
		if c.noise != nil {
			d = c.noise.perturb(c.now, d)
		}
		c.now += d
	}
}

// AdvanceTo moves the clock to t if t is in the future.
func (c *Clock) AdvanceTo(t float64) {
	if t > c.now {
		c.now = t
	}
}

// AdvanceRaw moves the clock forward by d ns without noise perturbation
// and without consuming noise-RNG draws. The fault plane's recovery
// charges — timeout detection, backoff sleeps, stall windows, retransmit
// wire time — fold through here: recovery is blocking, not work, the same
// doctrine that exempts AdvanceTo waits from noise. Leaving the noise
// stream untouched keeps the fault-free run's draw sequence embedded
// verbatim in the faulted run, which is what makes SimTime under faults
// deterministically ≥ the fault-free SimTime.
func (c *Clock) AdvanceRaw(d float64) {
	if d > 0 {
		c.now += d
	}
}

// PerturbDuration applies the clock's noise stream to a duration that is
// charged indirectly — e.g. the in-flight time of a non-blocking transfer
// whose completion a later flush observes via AdvanceTo. Noise-free clocks
// return d unchanged.
func (c *Clock) PerturbDuration(d float64) float64 {
	if c.noise != nil && d > 0 {
		return c.noise.perturb(c.now, d)
	}
	return d
}
