package rma

// The charge tape — model/host clock decoupling for the fetch plane.
//
// Every simulated cost a rank incurs used to be an ad-hoc float fold
// scattered through the call sites: Get computed a completion time inline,
// Compute and AdvanceBy advanced the clock in place, and the CLaMPI caches
// reached through Clock() on every hit. That coupling pins the host's
// execution schedule to the model's charge order: nothing may be batched,
// hoisted or pipelined without moving float accumulation (and, under
// noise, the stateful RNG draws) out of the canonical order the golden
// tests pin — and nothing can PROVE that a host-side restructuring left
// that order intact.
//
// The tape names every charge as a (kind, bytes) descriptor recorded in
// canonical program order. Two modes fold descriptors into the float
// clock:
//
//   - Default: a descriptor folds at its canonical point — the exact
//     positions the pre-tape AdvanceBy/Get/Wait folded, for free (the
//     fold IS the op's own charge arithmetic).
//   - Deferred (SetDeferredCharges): descriptors queue on a small
//     per-rank append-only tape and fold — in exactly that order, with
//     exactly the same float operations and RNG draws — at the points
//     where simulated time is actually observed: waits, flushes,
//     barriers, clock/counter reads. Between two observation points the
//     host's own schedule is provably irrelevant to the model.
//
// Both modes are bit-identical; the tape-equivalence test drives every
// golden configuration through both and diffs the full per-rank charge
// sequence (kind, bytes, folded clock value) op-for-op via the observer.
// That equivalence is what licenses the fetch plane's host-side freedoms
// — the lookahead-k pipeline, inline cache hits that never materialize a
// request, caller-owned requests — and pins down what may NOT move: a
// charge's canonical position. DESIGN.md §6 states the contract.

// ChargeKind identifies the cost expression a tape entry folds. The kinds
// mirror the charge sites of the simulated machine, not Go call sites: one
// kind per distinct (cost formula, counter set) pair.
type ChargeKind uint8

const (
	// ChargeOps is modeled computation: ops × κ, counted as ComputeTime.
	ChargeOps ChargeKind = iota
	// ChargeLocalRead is a local memory read charged via LocalCost(bytes)
	// and counted as ComputeTime (the engines' local adjacency reads).
	ChargeLocalRead
	// ChargeNS is a raw modeled duration in ns, counted as ComputeTime
	// (AdvanceBy's generic form). Raw durations cannot ride the
	// (kind, bytes) tape; AdvanceBy is therefore itself a fold point and
	// applies eagerly — the kind exists so observers still see the charge
	// in sequence (ns carries the value, bytes is 0).
	ChargeNS
	// ChargeGetLocal is a one-sided read served from the rank's own
	// region: LocalCost(bytes), LocalGets/LocalBytes counters, and the
	// request's completion stamp.
	ChargeGetLocal
	// ChargeGetRemote is a one-sided remote read: no clock advance at
	// issue, but the in-flight duration α+s·β is perturbed and the
	// request's completion time and the Gets/RemoteBytes/GetCost counters
	// are established at the issue point of the canonical order.
	ChargeGetRemote
	// ChargeCacheHit is a CLaMPI hit served from the cache: HitCost(bytes).
	ChargeCacheHit
	// ChargeCacheMiss is CLaMPI's per-miss bookkeeping overhead:
	// CacheMissOverhead, independent of size.
	ChargeCacheMiss
	// ChargeCacheManage is CLaMPI management work proportional to a byte
	// count at local-memory speed — storing a fetched entry, growing the
	// buffer — charged as LocalCost(bytes) with no counter side effects.
	ChargeCacheManage
	// ChargeRetryBackoff is the deterministic jittered backoff sleep
	// before retrying a failed one-sided operation (internal/fault). All
	// fault-plane kinds fold as raw clock advances (Clock.AdvanceRaw):
	// recovery is blocking, not work, so it is neither stretched by noise
	// nor consumes noise-RNG draws — which keeps the fault-free charge
	// sequence, draw for draw, embedded in the faulted one.
	ChargeRetryBackoff
	// ChargeTimeout is time lost waiting on an attempt that did not
	// complete within budget: the detection delay of a failed attempt, or
	// an absorbed latency spike on the successful one.
	ChargeTimeout
	// ChargeRetransmit is the wasted wire time of a failed attempt,
	// re-charged at the unperturbed remote cost of the operation's bytes;
	// it also counts one retry in the rank's counters.
	ChargeRetransmit
	// ChargeStall is a rank stall window (OS jitter, GC, a wedged
	// progress engine) the fault schedule opens between operations.
	ChargeStall
	// ChargeCrashRestart is the modeled restart delay of a recovered
	// crash-stop (the rank rebooting); it also counts one crash in the
	// rank's counters.
	ChargeCrashRestart
	// ChargeCrashRedo is the re-execution of the work between the rank's
	// last barrier and the crash point, charged as blocked time rather
	// than re-run: the redo replays deterministically into the same state
	// the first execution left, so only its duration — clock at the crash
	// minus clock at the last barrier — is modeled (DESIGN.md §8).
	ChargeCrashRedo

	numChargeKinds
)

func (k ChargeKind) String() string {
	switch k {
	case ChargeOps:
		return "ops"
	case ChargeLocalRead:
		return "local-read"
	case ChargeNS:
		return "ns"
	case ChargeGetLocal:
		return "get-local"
	case ChargeGetRemote:
		return "get-remote"
	case ChargeCacheHit:
		return "cache-hit"
	case ChargeCacheMiss:
		return "cache-miss"
	case ChargeCacheManage:
		return "cache-manage"
	case ChargeRetryBackoff:
		return "retry-backoff"
	case ChargeTimeout:
		return "timeout"
	case ChargeRetransmit:
		return "retransmit"
	case ChargeStall:
		return "stall"
	case ChargeCrashRestart:
		return "crash-restart"
	case ChargeCrashRedo:
		return "crash-redo"
	default:
		return "unknown"
	}
}

// ChargeObserver observes every charge of a run at its fold point, in
// canonical order per rank: kind and bytes identify the descriptor, ns is
// the raw duration for ChargeNS entries (0 otherwise), and now is the
// rank's clock immediately after the fold. Observers are a diagnostic
// surface (the tape-equivalence test records tapes with one); they run on
// the rank's goroutine, so an observer may keep per-rank state without
// locking but must not touch shared state.
type ChargeObserver func(rank int, kind ChargeKind, bytes int, ns, now float64)

// SetChargeObserver installs an observer for all ranks of the world. It
// must be called before Run; installing one mid-run is a race.
func (c *Comm) SetChargeObserver(o ChargeObserver) { c.observer = o }

// SetDeferredCharges switches every rank of the world to deferred
// charging: each charge queues on the rank's tape and folds at the next
// observation of simulated time instead of at its canonical point.
// Results are bit-identical either way — that equivalence is the tape's
// whole contract, and the tape-equivalence test proves it by diffing both
// modes op-for-op. Deferred mode is the diagnostic/verification mode; the
// default folds each charge at its canonical point at zero cost. It must
// be set before Run.
func (c *Comm) SetDeferredCharges(deferred bool) { c.deferred = deferred }

// tapeOp is one deferred charge: the kind in the low byte of word, the
// byte count in the high bits, and the charge's *unperturbed* cost in ns.
// The cost is a pure function of (kind, bytes) under the world's model —
// no clock or noise state — so computing it at the append point is free of
// ordering concerns and keeps the fold to an Advance plus a counter
// update, exactly the arithmetic the eager code ran. req is set only for
// the get kinds, whose fold establishes the request's completion time
// (remote gets perturb cost under noise at the fold, where the RNG draw
// belongs). Raw-ns charges — AdvanceBy — are fold points themselves and
// never appear on the tape.
type tapeOp struct {
	cost float64
	word uint64 // uint64(bytes)<<8 | uint64(kind)
	req  *Request
}

// charge routes one descriptor: deferred mode appends it to the tape
// (folding a full tape in place first — folding early is always legal,
// fold order equals append order either way, so a fixed one-slab tape
// suffices and a caller that never observes its clock cannot grow it
// without bound); the default applies it at this, its canonical, point.
func (r *Rank) charge(kind ChargeKind, bytes int, cost float64, req *Request) {
	op := tapeOp{cost: cost, word: uint64(bytes)<<8 | uint64(kind), req: req}
	if !r.deferred {
		r.applyCharge(op)
		return
	}
	if len(r.tape) == cap(r.tape) {
		r.foldTape()
	}
	r.tape = append(r.tape, op)
}

// fold drains the tape in append (= canonical) order. Every operation that
// observes simulated time — Wait, the flushes, barriers, Clock, Counters,
// CompleteAt, and the write-side RMA ops that read the clock eagerly —
// folds first. The empty-tape check inlines at every fold point; the
// drain itself is the out-of-line slow path.
func (r *Rank) fold() {
	if len(r.tape) != 0 {
		r.foldTape()
	}
}

// foldTape replays the deferred descriptors in append (= canonical) order.
func (r *Rank) foldTape() {
	for i := range r.tape {
		r.applyCharge(r.tape[i])
		r.tape[i].req = nil
	}
	r.tape = r.tape[:0]
}

// applyCharge folds one descriptor: the same float expressions, counter
// updates and noise draws the eager code performed, in the same order.
// The pure cost was computed at the append point; only clock folds and
// RNG draws happen here.
func (r *Rank) applyCharge(op tapeOp) {
	kind := ChargeKind(op.word & 0xff)
	bytes := int(op.word >> 8)
	obsNS := 0.0
	switch kind {
	case ChargeOps, ChargeLocalRead:
		r.clock.Advance(op.cost)
		r.ctr.ComputeTime += op.cost
	case ChargeGetLocal:
		r.clock.Advance(op.cost)
		r.ctr.LocalGets++
		r.ctr.LocalBytes += int64(bytes)
		op.req.completeAt = r.clock.Now()
	case ChargeGetRemote:
		cost := r.clock.PerturbDuration(op.cost)
		op.req.completeAt = r.clock.Now() + cost
		r.ctr.Gets++
		r.ctr.RemoteBytes += int64(bytes)
		r.ctr.GetCost += cost
	case ChargeRetryBackoff, ChargeTimeout, ChargeStall:
		// Fault-plane recovery: raw folds — blocking, never perturbed,
		// no RNG draws (see Clock.AdvanceRaw). The duration is not a
		// pure function of (kind, bytes), so it rides to the observer.
		r.clock.AdvanceRaw(op.cost)
		r.ctr.FaultWait += op.cost
		obsNS = op.cost
	case ChargeRetransmit:
		r.clock.AdvanceRaw(op.cost)
		r.ctr.FaultWait += op.cost
		r.ctr.Retries++
		obsNS = op.cost
	case ChargeCrashRestart:
		r.clock.AdvanceRaw(op.cost)
		r.ctr.FaultWait += op.cost
		r.ctr.Crashes++
		obsNS = op.cost
	case ChargeCrashRedo:
		r.clock.AdvanceRaw(op.cost)
		r.ctr.FaultWait += op.cost
		obsNS = op.cost
	default: // the cache kinds: clock only, stats live in the cache
		r.clock.Advance(op.cost)
	}
	if r.observer != nil {
		r.observer(r.id, kind, bytes, obsNS, r.clock.Now())
	}
}

// plain reports whether charges take the zero-overhead canonical path:
// no deferral, no observer. The hot charge helpers below fold their
// arithmetic inline in that case and only build descriptors otherwise.
func (r *Rank) plain() bool { return !r.deferred && r.observer == nil }

// ChargeLocalRead charges a local memory read of the given byte count at
// LocalCost, accounted as compute time — the engines' charge for reading
// an adjacency list out of their own partition (or a delegation replica)
// without inventing the duration at the call site.
func (r *Rank) ChargeLocalRead(bytes int) {
	r.checkpoint()
	cost := r.comm.model.LocalCost(bytes)
	if r.plain() {
		r.clock.Advance(cost)
		r.ctr.ComputeTime += cost
		return
	}
	r.charge(ChargeLocalRead, bytes, cost, nil)
}

// ChargeCacheHit charges serving bytes from an RMA cache (HitCost) and
// returns the unperturbed cost for the cache's own statistics. Part of the
// cache charge surface the CLaMPI layer records as descriptors instead of
// reaching through Clock().
func (r *Rank) ChargeCacheHit(bytes int) float64 {
	cost := r.comm.model.HitCost(bytes)
	if r.plain() {
		r.clock.Advance(cost)
		return cost
	}
	r.charge(ChargeCacheHit, bytes, cost, nil)
	return cost
}

// ChargeCacheMissOverhead charges CLaMPI's fixed per-miss bookkeeping cost
// and returns it.
func (r *Rank) ChargeCacheMissOverhead() float64 {
	cost := r.comm.model.CacheMissOverhead
	if r.plain() {
		r.clock.Advance(cost)
		return cost
	}
	r.charge(ChargeCacheMiss, 0, cost, nil)
	return cost
}

// ChargeCacheManage charges cache-management work proportional to bytes at
// local-memory cost (entry installation, buffer growth) and returns it.
func (r *Rank) ChargeCacheManage(bytes int) float64 {
	cost := r.comm.model.LocalCost(bytes)
	if r.plain() {
		r.clock.Advance(cost)
		return cost
	}
	r.charge(ChargeCacheManage, bytes, cost, nil)
	return cost
}
