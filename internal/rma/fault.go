package rma

// The fault plane of the RMA substrate: deterministic seeded injection of
// transient one-sided failures, latency spikes and rank stall windows
// (internal/fault), recovered by a capped-backoff retry loop whose every
// cost folds through the charge tape as a descriptor.
//
// The recovery model: a remote one-sided operation is attempted, and each
// failed attempt costs a timeout-detection delay (the per-op timeout
// budget), a jittered exponential backoff sleep, and the wasted wire time
// of the attempt (retransmit at the unperturbed α+s·β of the op's bytes).
// After the schedule's capped number of failures the attempt is forced to
// succeed — faults cost simulated time, never correctness. All recovery
// charges are raw clock advances (Clock.AdvanceRaw): they are neither
// perturbed by the noise plane nor consume its RNG draws, so the
// fault-free run's charge and draw sequence is embedded verbatim in the
// faulted run's — which is what makes results bit-identical, SimTime
// reproducible at any worker count, and SimTime under faults ≥ fault-free
// (every added charge is non-negative, and completion times and barrier
// maxima are monotone in their inputs). DESIGN.md §7 states the contract.

import (
	"repro/internal/fault"
	"repro/internal/sched"
)

// SetFaults installs a deterministic fault schedule: every rank created
// after the call binds its own decision stream from the spec. Like the
// charge-plane setters it must be called before Run; a nil spec (or one
// that cannot inject anything) keeps the fault plane disabled at the cost
// of one nil check per issue path.
func (c *Comm) SetFaults(spec *fault.Spec) { c.faults = spec }

// SetProgress installs a run-progress counter: every rank created after
// the call ticks it on the masked checkpoint cadence, and barrier round
// closes bump its generation. Like the charge-plane setters it must be
// set before Run; nil (the default) costs the hot path one predictable
// branch. The counter is host-side only — arming it cannot perturb a
// simulated bit (see sched.Progress).
func (c *Comm) SetProgress(p *sched.Progress) { c.prog = p }

// Faults returns the world's installed fault schedule, nil if none.
func (c *Comm) Faults() *fault.Spec { return c.faults }

// injectFaults consults the rank's fault schedule at the issue point of
// one remote one-sided operation and charges the recovery it dictates, in
// canonical order ahead of the operation's own charge: the stall window
// opening at this op, then per failed attempt the timeout detection, the
// backoff sleep and the retransmitted wire time, then any absorbed
// latency spike on the successful attempt. Decisions are a pure function
// of (seed, rank, op-index, attempt), so the charge sequence is identical
// under either fold schedule and at any worker count. Callers must hold
// r.faults != nil.
func (r *Rank) injectFaults(cl fault.Class, size int) {
	o := r.faults.Op(cl)
	if o.Crashed() {
		r.crashStop(o)
	}
	if o.Wedged() && r.running {
		// The wedge class: this rank is stuck in host code and will never
		// issue another operation or reach another checkpoint. Park until
		// an external cancel (caller deadline, serve watchdog) unwinds the
		// run; under an unsupervised run (no supervision to ever cancel)
		// the park is a no-op (see sched). Yield semantics require a held
		// worker slot, hence the r.running guard. No charge folds — a
		// wedged run never completes, so there is no result whose clocks
		// could observe it.
		r.comm.pool.WedgeUntilCanceled()
	}
	if st := o.StallNS(); st > 0 {
		r.charge(ChargeStall, 0, st, nil)
	}
	if n := o.Failed(); n > 0 {
		pol := r.faults.Policy()
		cost := r.comm.model.RemoteCost(size)
		for a := 0; a < n; a++ {
			r.charge(ChargeTimeout, 0, pol.TimeoutNS, nil)
			r.charge(ChargeRetryBackoff, 0, o.BackoffNS(a), nil)
			r.charge(ChargeRetransmit, size, cost, nil)
		}
	}
	if sp := o.SpikeNS(); sp > 0 {
		r.charge(ChargeTimeout, 0, sp, nil)
	}
}

// crashStop handles the crash-stop class firing at this op's issue point.
//
// Fail-fast mode aborts the run with the deterministic CrashError — under
// a supervised run (Comm.RunCtx) the abort surfaces as the run's error
// and the remaining ranks unwind; under plain Run it panics.
//
// Recovery mode models a restart plus re-execution from the rank's last
// barrier (ckptT, run start if none): the redo REPLAYS deterministically
// into exactly the state the first execution built — rank state is
// rank-local and every decision below the crash point is a pure function
// of position — so the substrate never actually re-runs it; it charges
// the redo's duration (clock at the crash minus clock at the recovery
// point) plus the restart delay as blocked time. Both charges fold raw
// (no noise draws), so the fault-free charge and draw sequence embeds
// verbatim in the recovered run: results bit-identical, SimTime ≥
// fault-free, reproducible at any worker count (DESIGN.md §8).
func (r *Rank) crashStop(o fault.Outcome) {
	if !o.CrashRecovers() {
		sched.Abort(o.CrashError(r.id))
	}
	// The redo duration reads the clock at the canonical issue point:
	// fold any deferred charges first, like every eager clock read — and
	// before the restart charge lands, so the measured redo is the same
	// under either fold schedule.
	r.fold()
	redo := r.clock.Now() - r.ckptT
	r.charge(ChargeCrashRestart, 0, o.CrashRestartNS(), nil)
	if redo > 0 {
		r.charge(ChargeCrashRedo, 0, redo, nil)
	}
}

// CacheFault consults the rank's fault schedule for one CLaMPI access and
// reports whether a cache-unavailability fault fires (Spec.CacheFailPct).
// The CLaMPI layer translates a firing into its degraded mode: flush the
// resident entries and let the engine fall back to the direct-RMA fetch
// flavor for the access.
func (r *Rank) CacheFault() bool {
	return r.faults != nil && r.faults.CacheOp()
}
