package rma

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fault"
)

// faultGetRun drives a 2-rank world of cross-rank gets under the given
// fault spec and charge plane, returning final counters and SimTime.
func faultGetRun(t *testing.T, spec *fault.Spec, deferred bool, obs ChargeObserver) ([]Counters, float64) {
	t.Helper()
	c := NewComm(2, DefaultCostModel())
	c.SetFaults(spec)
	c.SetDeferredCharges(deferred)
	if obs != nil {
		c.SetChargeObserver(obs)
	}
	local := [][]byte{make([]byte, 1<<14), make([]byte, 1<<14)}
	w := c.CreateReadOnlyWindow("data", local)
	ranks := c.Run(func(r *Rank) {
		r.LockAll(w)
		for i := 0; i < 2000; i++ {
			q := r.Get(w, 1-r.ID(), (i%255)*64, 64)
			q.Wait()
			q.Release()
		}
		r.UnlockAll(w)
	})
	ctrs := make([]Counters, len(ranks))
	for i, r := range ranks {
		ctrs[i] = r.Counters()
	}
	return ctrs, MaxClock(ranks)
}

// TestFaultRetryCharges: transient get failures charge recovery time and
// count retries, leave the logical op counts untouched, and push SimTime
// strictly above the fault-free run.
func TestFaultRetryCharges(t *testing.T) {
	base, baseSim := faultGetRun(t, nil, false, nil)
	spec := &fault.Spec{Seed: 5, GetFailPct: 0.05}
	got, sim := faultGetRun(t, spec, false, nil)
	for i := range got {
		if got[i].Retries == 0 || got[i].FaultWait == 0 {
			t.Fatalf("rank %d: no recovery recorded under 5%% failures: %+v", i, got[i])
		}
		if got[i].Gets != base[i].Gets || got[i].RemoteBytes != base[i].RemoteBytes {
			t.Fatalf("rank %d: logical op counts changed under faults: %+v vs %+v", i, got[i], base[i])
		}
	}
	if sim <= baseSim {
		t.Fatalf("faulted SimTime %v not above fault-free %v", sim, baseSim)
	}
}

// TestFaultSpikesAndStalls: latency spikes and stall windows charge
// FaultWait without any retransmits.
func TestFaultSpikesAndStalls(t *testing.T) {
	_, baseSim := faultGetRun(t, nil, false, nil)
	spec := &fault.Spec{Seed: 8, SpikePct: 0.05, SpikeNS: 1e4, StallPeriodOps: 100, StallNS: 5e4}
	got, sim := faultGetRun(t, spec, false, nil)
	for i := range got {
		if got[i].Retries != 0 {
			t.Fatalf("rank %d: spikes/stalls must not retransmit: %+v", i, got[i])
		}
		if got[i].FaultWait == 0 {
			t.Fatalf("rank %d: no FaultWait under spikes+stalls", i)
		}
	}
	if sim <= baseSim {
		t.Fatalf("faulted SimTime %v not above fault-free %v", sim, baseSim)
	}
}

// TestFaultChargeTapeEquivalence is the fault plane's slice of the charge
// tape contract: under faults, the canonical and deferred fold schedules
// replay identical charge sequences — kinds, bytes, durations and folded
// clock bits — and identical counters.
func TestFaultChargeTapeEquivalence(t *testing.T) {
	type rec struct {
		kind  ChargeKind
		bytes int
		ns    float64
		now   float64
	}
	record := func(deferred bool) ([][]rec, []Counters, float64) {
		seq := make([][]rec, 2)
		obs := func(rank int, kind ChargeKind, bytes int, ns, now float64) {
			seq[rank] = append(seq[rank], rec{kind, bytes, ns, now})
		}
		spec := fault.ChaosSpec(21)
		ctrs, sim := faultGetRun(t, &spec, deferred, obs)
		return seq, ctrs, sim
	}
	refSeq, refCtr, refSim := record(false)
	tapeSeq, tapeCtr, tapeSim := record(true)
	if math.Float64bits(refSim) != math.Float64bits(tapeSim) {
		t.Fatalf("SimTime bits differ: canonical %x vs deferred %x",
			math.Float64bits(refSim), math.Float64bits(tapeSim))
	}
	for i := range refCtr {
		if refCtr[i] != tapeCtr[i] {
			t.Fatalf("rank %d counters differ: %+v vs %+v", i, refCtr[i], tapeCtr[i])
		}
	}
	sawFault := false
	for r := range refSeq {
		if len(refSeq[r]) != len(tapeSeq[r]) {
			t.Fatalf("rank %d charge count: canonical %d vs deferred %d", r, len(refSeq[r]), len(tapeSeq[r]))
		}
		for i := range refSeq[r] {
			if refSeq[r][i] != tapeSeq[r][i] {
				t.Fatalf("rank %d op %d diverges: %+v vs %+v", r, i, refSeq[r][i], tapeSeq[r][i])
			}
			switch refSeq[r][i].kind {
			case ChargeRetryBackoff, ChargeTimeout, ChargeRetransmit, ChargeStall:
				sawFault = true
			}
		}
	}
	if !sawFault {
		t.Fatal("chaos spec injected no fault charges")
	}
}

// TestFaultDeterministicReplay: equal specs replay bit-identical clocks.
func TestFaultDeterministicReplay(t *testing.T) {
	spec := fault.ChaosSpec(33)
	_, sim1 := faultGetRun(t, &spec, false, nil)
	_, sim2 := faultGetRun(t, &spec, false, nil)
	if math.Float64bits(sim1) != math.Float64bits(sim2) {
		t.Fatalf("replay diverged: %x vs %x", math.Float64bits(sim1), math.Float64bits(sim2))
	}
	other := fault.ChaosSpec(34)
	_, sim3 := faultGetRun(t, &other, false, nil)
	if math.Float64bits(sim1) == math.Float64bits(sim3) {
		t.Fatal("different seeds produced identical SimTime — schedule ignores the seed")
	}
}

// TestFaultWriteOps: the write-side ops (Put, Accumulate, AccumulateBatch,
// FetchAdd64) consult the schedule too, and results are unchanged.
func TestFaultWriteOps(t *testing.T) {
	run := func(spec *fault.Spec) (Counters, uint64, float64) {
		c := NewComm(2, DefaultCostModel())
		c.SetFaults(spec)
		local := [][]byte{make([]byte, 1024), make([]byte, 1024)}
		w := c.CreateWindow("acc", local)
		b := c.NewBarrier()
		ranks := c.Run(func(r *Rank) {
			r.LockAll(w)
			for i := 0; i < 200; i++ {
				r.Accumulate(w, 1-r.ID(), 0, 1).Release()
				r.AccumulateBatch(w, 1-r.ID(), []Update{{Offset: 8, Delta: 2}}).Release()
				r.Put(w, 1-r.ID(), 16+8*r.ID(), []byte{1, 2, 3, 4}).Release()
				r.FetchAdd64(w, 1-r.ID(), 24, 3)
				r.FlushAll(w)
			}
			b.Wait(r)
			r.UnlockAll(w)
		})
		sum := uint64(0)
		for i := 0; i < 2; i++ {
			sum += DecodeUint64s(local[i][:8])[0]
		}
		ctr := Counters{}
		for _, r := range ranks {
			ctr.Merge(r.Counters())
		}
		return ctr, sum, MaxClock(ranks)
	}
	base, baseSum, baseSim := run(nil)
	spec := &fault.Spec{Seed: 2, PutFailPct: 0.05, AccFailPct: 0.05}
	got, sum, sim := run(spec)
	if sum != baseSum {
		t.Fatalf("accumulated values changed under faults: %d vs %d", sum, baseSum)
	}
	if got.Retries == 0 || got.FaultWait == 0 {
		t.Fatalf("write ops recorded no recovery: %+v", got)
	}
	if got.Puts != base.Puts {
		t.Fatalf("logical put count changed: %d vs %d", got.Puts, base.Puts)
	}
	if sim <= baseSim {
		t.Fatalf("faulted SimTime %v not above fault-free %v", sim, baseSim)
	}
}

// TestDoubleReleasePanics is the regression test for the free-list guard:
// releasing a request twice must panic and name the rank and the request
// kind instead of corrupting the pool.
func TestDoubleReleasePanics(t *testing.T) {
	c := NewComm(2, DefaultCostModel())
	w := c.CreateReadOnlyWindow("data", [][]byte{make([]byte, 64), make([]byte, 64)})
	c.Run(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		r.LockAll(w)
		defer r.UnlockAll(w)
		q := r.Get(w, 1, 0, 8)
		q.Wait()
		q.Release()
		defer func() {
			msg, ok := recover().(string)
			if !ok {
				t.Error("double Release did not panic")
				return
			}
			for _, want := range []string{"rank 0", "get request", "double Release"} {
				if !strings.Contains(msg, want) {
					t.Errorf("panic %q does not mention %q", msg, want)
				}
			}
		}()
		q.Release()
	})
}
