package rma

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func testComm(p int) *Comm { return NewComm(p, DefaultCostModel()) }

func twoRankWindow(t *testing.T, c *Comm) *Window {
	t.Helper()
	return c.CreateWindow("w", [][]byte{
		{0, 1, 2, 3, 4, 5, 6, 7},
		{10, 11, 12, 13},
	})
}

func TestGetRemoteReadsBytesAndChargesCost(t *testing.T) {
	c := testComm(2)
	w := twoRankWindow(t, c)
	r := c.Rank(0)
	r.LockAll(w)
	q := r.Get(w, 1, 1, 3)
	if q.Done() {
		t.Fatal("remote get completed before flush")
	}
	r.FlushAll(w)
	if got, want := q.Data(), []byte{11, 12, 13}; !reflect.DeepEqual(got, want) {
		t.Errorf("Data = %v, want %v", got, want)
	}
	m := c.Model()
	want := m.RemoteCost(3)
	if got := r.Clock().Now(); math.Abs(got-want) > 1e-9 {
		t.Errorf("clock = %v, want %v (α+3β)", got, want)
	}
	ctr := r.Counters()
	if ctr.Gets != 1 || ctr.RemoteBytes != 3 {
		t.Errorf("counters = %+v", ctr)
	}
	r.UnlockAll(w)
}

func TestGetLocalIsCheapAndImmediate(t *testing.T) {
	c := testComm(2)
	w := twoRankWindow(t, c)
	r := c.Rank(0)
	r.LockAll(w)
	q := r.Get(w, 0, 2, 4)
	if !q.Done() {
		t.Fatal("local get should complete immediately")
	}
	if got, want := q.Data(), []byte{2, 3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("Data = %v, want %v", got, want)
	}
	if r.Clock().Now() >= c.Model().RemoteLatency {
		t.Errorf("local read cost %v should be far below remote latency", r.Clock().Now())
	}
	ctr := r.Counters()
	if ctr.LocalGets != 1 || ctr.Gets != 0 {
		t.Errorf("counters = %+v", ctr)
	}
	r.UnlockAll(w)
}

func TestNonBlockingOverlap(t *testing.T) {
	// Issue a get, compute for longer than the transfer, flush: the flush
	// must not add time (communication fully hidden), matching the
	// double-buffering rationale of §III-A.
	c := testComm(2)
	w := twoRankWindow(t, c)
	r := c.Rank(0)
	r.LockAll(w)
	r.Get(w, 1, 0, 4)
	transfer := c.Model().RemoteCost(4)
	r.AdvanceBy(2 * transfer)
	before := r.Clock().Now()
	r.FlushAll(w)
	if r.Clock().Now() != before {
		t.Errorf("flush added %v ns although compute covered the transfer", r.Clock().Now()-before)
	}
	if wait := r.Counters().FlushWait; wait != 0 {
		t.Errorf("FlushWait = %v, want 0", wait)
	}
	r.UnlockAll(w)
}

func TestFlushWaitsForSlowTransfer(t *testing.T) {
	c := testComm(2)
	w := twoRankWindow(t, c)
	r := c.Rank(0)
	r.LockAll(w)
	r.Get(w, 1, 0, 4)
	r.FlushAll(w)
	want := c.Model().RemoteCost(4)
	if got := r.Counters().FlushWait; math.Abs(got-want) > 1e-9 {
		t.Errorf("FlushWait = %v, want %v", got, want)
	}
	r.UnlockAll(w)
}

func TestRequestWaitSingle(t *testing.T) {
	c := testComm(2)
	w := twoRankWindow(t, c)
	r := c.Rank(0)
	r.LockAll(w)
	q1 := r.Get(w, 1, 0, 2)
	q2 := r.Get(w, 1, 2, 2)
	q1.Wait()
	if !q1.Done() || q2.Done() {
		t.Fatalf("Wait completed wrong requests: q1=%v q2=%v", q1.Done(), q2.Done())
	}
	r.FlushAll(w)
	if !q2.Done() {
		t.Error("FlushAll left q2 pending")
	}
	r.UnlockAll(w)
}

func TestPutWritesRemote(t *testing.T) {
	c := testComm(2)
	w := twoRankWindow(t, c)
	r := c.Rank(0)
	r.LockAll(w)
	r.Put(w, 1, 1, []byte{42, 43})
	r.FlushAll(w)
	r.UnlockAll(w)

	r1 := c.Rank(1)
	r1.LockAll(w)
	q := r1.Get(w, 1, 0, 4)
	r1.FlushAll(w)
	if got, want := q.Data(), []byte{10, 42, 43, 13}; !reflect.DeepEqual(got, want) {
		t.Errorf("after Put, region = %v, want %v", got, want)
	}
	r1.UnlockAll(w)
}

func TestEpochDiscipline(t *testing.T) {
	c := testComm(2)
	w := twoRankWindow(t, c)
	r := c.Rank(0)
	mustPanic(t, "Get outside epoch", func() { r.Get(w, 1, 0, 1) })
	r.LockAll(w)
	mustPanic(t, "double LockAll", func() { r.LockAll(w) })
	r.UnlockAll(w)
	mustPanic(t, "UnlockAll without epoch", func() { r.UnlockAll(w) })
}

func TestGetBoundsChecked(t *testing.T) {
	c := testComm(2)
	w := twoRankWindow(t, c)
	r := c.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	mustPanic(t, "get past end", func() { r.Get(w, 1, 2, 10) })
	mustPanic(t, "negative offset", func() { r.Get(w, 1, -1, 1) })
}

func TestDataBeforeFlushPanics(t *testing.T) {
	c := testComm(2)
	w := twoRankWindow(t, c)
	r := c.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	q := r.Get(w, 1, 0, 2)
	mustPanic(t, "Data before flush", func() { q.Data() })
}

func TestRunExecutesAllRanksConcurrently(t *testing.T) {
	c := testComm(8)
	var visited int64
	ranks := c.Run(func(r *Rank) {
		atomic.AddInt64(&visited, 1)
		r.Compute(1000)
	})
	if visited != 8 {
		t.Fatalf("Run visited %d ranks, want 8", visited)
	}
	want := 1000 * c.Model().ComputePerOp
	for _, r := range ranks {
		if got := r.Clock().Now(); math.Abs(got-want) > 1e-9 {
			t.Errorf("rank %d clock = %v, want %v", r.ID(), got, want)
		}
	}
	if got := MaxClock(ranks); math.Abs(got-want) > 1e-9 {
		t.Errorf("MaxClock = %v, want %v", got, want)
	}
}

func TestWindowPerRankSizes(t *testing.T) {
	c := testComm(3)
	w := c.CreateWindow("var", [][]byte{make([]byte, 10), nil, make([]byte, 5)})
	if w.SizeAt(0) != 10 || w.SizeAt(1) != 0 || w.SizeAt(2) != 5 {
		t.Errorf("SizeAt = %d/%d/%d", w.SizeAt(0), w.SizeAt(1), w.SizeAt(2))
	}
	if w.Name() != "var" {
		t.Errorf("Name = %q", w.Name())
	}
}

func TestCreateWindowValidatesRankCount(t *testing.T) {
	c := testComm(2)
	mustPanic(t, "wrong region count", func() { c.CreateWindow("bad", [][]byte{nil}) })
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		return reflect.DeepEqual(DecodeUint64s(EncodeUint64s(vals)), append([]uint64{}, vals...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(vals []uint32) bool {
		vs := make([]graph.V, len(vals))
		for i, v := range vals {
			vs[i] = graph.V(v)
		}
		dec := DecodeVertices(EncodeVertices(vs))
		if len(dec) != len(vs) {
			return false
		}
		for i := range dec {
			if dec[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeVerticesIntoReusesBuffer(t *testing.T) {
	b := EncodeVertices([]graph.V{1, 2, 3})
	buf := make([]graph.V, 0, 16)
	out := DecodeVerticesInto(buf, b)
	if &out[0] != &buf[:1][0] {
		t.Error("DecodeVerticesInto allocated although capacity sufficed")
	}
	if !reflect.DeepEqual(out, []graph.V{1, 2, 3}) {
		t.Errorf("out = %v", out)
	}
}

func TestCostModelShape(t *testing.T) {
	m := DefaultCostModel()
	// Remote reads are orders of magnitude above DRAM (§III-B).
	if m.RemoteCost(8) < 10*m.LocalCost(8) {
		t.Errorf("remote cost %v not >> local cost %v", m.RemoteCost(8), m.LocalCost(8))
	}
	// Cache hits are far cheaper than remote reads.
	if m.HitCost(1024) > m.RemoteCost(1024)/5 {
		t.Errorf("hit cost %v too close to remote cost %v", m.HitCost(1024), m.RemoteCost(1024))
	}
	// Cost is monotone in size.
	if m.RemoteCost(100) <= m.RemoteCost(10) {
		t.Errorf("remote cost not monotone")
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
