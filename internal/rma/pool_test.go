package rma

import (
	"testing"

	"repro/internal/graph"
)

// TestReadOnlyGetAliasesWindow pins the zero-copy contract: a Get on a
// read-only window returns a view of the target region itself, not a copy.
func TestReadOnlyGetAliasesWindow(t *testing.T) {
	c := testComm(2)
	region := []byte{10, 11, 12, 13}
	w := c.CreateReadOnlyWindow("ro", [][]byte{nil, region})
	r := c.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	q := r.Get(w, 1, 1, 2)
	q.Wait()
	got := q.Data()
	if &got[0] != &region[1] {
		t.Error("read-only Get copied instead of aliasing the window region")
	}
	if cap(got) != len(got) {
		t.Errorf("view capacity %d leaks past the requested range (len %d)", cap(got), len(got))
	}
	q.Release()
	if got[0] != 11 || got[1] != 12 {
		t.Errorf("view invalid after Release: %v", got)
	}
}

// TestTypedWindows pins byte addressing and aliasing of the typed windows.
func TestTypedWindows(t *testing.T) {
	c := testComm(2)
	u := []uint64{5, 6, 7, 8}
	v := []graph.V{1, 2, 3, 4, 5, 6}
	wu := c.CreateUint64Window("u64", [][]uint64{nil, u})
	wv := c.CreateVertexWindow("verts", [][]graph.V{nil, v})
	if wu.SizeAt(1) != 32 || wv.SizeAt(1) != 24 {
		t.Fatalf("SizeAt = %d/%d, want 32/24 bytes", wu.SizeAt(1), wv.SizeAt(1))
	}
	r := c.Rank(0)
	r.LockAll(wu)
	r.LockAll(wv)
	defer r.UnlockAll(wu)
	defer r.UnlockAll(wv)

	qu := r.Get(wu, 1, 8, 16) // elements 1..2
	qu.Wait()
	if got := qu.Uint64s(); len(got) != 2 || got[0] != 6 || got[1] != 7 || &got[0] != &u[1] {
		t.Errorf("Uint64s = %v (aliased=%v)", got, len(got) == 2 && &got[0] == &u[1])
	}
	qu.Release()

	qv := r.Get(wv, 1, 4, 12) // elements 1..3
	qv.Wait()
	if got := qv.Vertices(); len(got) != 3 || got[0] != 2 || &got[0] != &v[1] {
		t.Errorf("Vertices = %v", got)
	}
	qv.Release()

	mustPanic(t, "misaligned uint64 get", func() { r.Get(wu, 1, 4, 8) })
	mustPanic(t, "Put on read-only window", func() { r.Put(wv, 1, 0, []byte{1}) })
	mustPanic(t, "Accumulate on typed window", func() { r.Accumulate(wu, 1, 0, 1) })
}

// TestWritableGetSnapshots pins the copy semantics writable windows keep:
// the data must reflect the region at issue time even if it changes before
// the flush.
func TestWritableGetSnapshots(t *testing.T) {
	c := testComm(2)
	region := []byte{1, 2, 3, 4}
	w := c.CreateWindow("rw", [][]byte{nil, region})
	r := c.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	q := r.Get(w, 1, 0, 4)
	region[0] = 99 // direct host-side mutation between issue and flush
	q.Wait()
	if q.Data()[0] != 1 {
		t.Errorf("writable-window Get observed post-issue mutation: %v", q.Data())
	}
	q.Release()
}

// TestRequestPoolRecycles verifies the free-list discipline, including
// fire-and-forget Release of a pending request.
func TestRequestPoolRecycles(t *testing.T) {
	c := testComm(2)
	w := c.CreateReadOnlyWindow("ro", [][]byte{nil, make([]byte, 64)})
	r := c.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)

	q1 := r.Get(w, 1, 0, 8)
	q1.Wait()
	q1.Release()
	q2 := r.Get(w, 1, 8, 8)
	if q1 != q2 {
		t.Error("released request was not recycled")
	}
	mustPanic(t, "double release", func() { q2.Wait(); q2.Release(); q2.Release() })

	// Fire-and-forget: releasing a pending request defers recycling to
	// the completing flush.
	q3 := r.Get(w, 1, 0, 8)
	q3.Release()
	if len(r.free) != 0 {
		t.Error("pending request recycled before completion")
	}
	r.FlushAll(w)
	if len(r.free) != 1 {
		t.Errorf("flush did not recycle auto-freed request (free list: %d)", len(r.free))
	}
}

// TestPendingSwapRemove exercises out-of-order Waits against the
// swap-remove pending list.
func TestPendingSwapRemove(t *testing.T) {
	c := testComm(2)
	w := c.CreateReadOnlyWindow("ro", [][]byte{nil, make([]byte, 64)})
	r := c.Rank(0)
	r.LockAll(w)
	defer r.UnlockAll(w)
	qs := make([]*Request, 5)
	for i := range qs {
		qs[i] = r.Get(w, 1, 8*i, 8)
	}
	qs[2].Wait()
	qs[0].Wait()
	qs[4].Wait()
	if len(r.pending) != 2 {
		t.Fatalf("pending = %d, want 2", len(r.pending))
	}
	r.FlushAll(w)
	for i, q := range qs {
		if !q.Done() {
			t.Errorf("request %d not completed", i)
		}
	}
	if len(r.pending) != 0 {
		t.Errorf("pending not drained: %d", len(r.pending))
	}
}

// TestGetAllocFree is the allocation regression guard of the zero-copy
// substrate: a Get+Wait+Release cycle must not allocate, on any window
// kind (the writable path reuses the request's snapshot buffer).
func TestGetAllocFree(t *testing.T) {
	c := testComm(2)
	ro := c.CreateReadOnlyWindow("ro", [][]byte{nil, make([]byte, 1024)})
	rw := c.CreateWindow("rw", [][]byte{nil, make([]byte, 1024)})
	wu := c.CreateUint64Window("u64", [][]uint64{nil, make([]uint64, 128)})
	wv := c.CreateVertexWindow("verts", [][]graph.V{nil, make([]graph.V, 256)})
	r := c.Rank(0)
	for name, f := range map[string]func(){
		"readonly": func() { q := r.Get(ro, 1, 64, 64); q.Wait(); q.Release() },
		"writable": func() { q := r.Get(rw, 1, 64, 64); q.Wait(); q.Release() },
		"uint64":   func() { q := r.Get(wu, 1, 64, 64); q.Wait(); q.Release() },
		"vertices": func() { q := r.Get(wv, 1, 64, 64); q.Wait(); q.Release() },
	} {
		w := map[string]*Window{"readonly": ro, "writable": rw, "uint64": wu, "vertices": wv}[name]
		r.LockAll(w)
		f() // warm the pool (first cycle may allocate the request/buffer)
		if got := testing.AllocsPerRun(100, f); got != 0 {
			t.Errorf("%s window: Get+Wait+Release allocates %.1f/op, want 0", name, got)
		}
		r.UnlockAll(w)
	}
}
