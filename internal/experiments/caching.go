package experiments

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/lcc"
)

// fig7Dataset is the Fig. 7/8 workload: the paper uses an R-MAT graph with
// 2^20 vertices and 2^24 edges (edge factor 16); the scaled stand-in keeps
// the edge factor.
const fig7Dataset = "rmat-s15-ef16"

// baseEngineOptions returns the non-cached engine configuration shared by
// the caching experiments.
func baseEngineOptions(ranks int) lcc.Options {
	return lcc.Options{
		Ranks:        ranks,
		Method:       intersect.MethodHybrid,
		DoubleBuffer: true,
	}
}

// paperCacheBytes returns the Fig. 9/10 cache budget scaled to this
// reproduction: C_offsets sized to hold 40% of the vertices as (start,end)
// pairs (the paper's 0.8·|V| allocation) and C_adj given an ample budget
// (the paper's "rest of 16 GiB", which exceeds the small-scale graphs).
func paperCacheBytes(g *graph.Graph) (offBytes, adjBytes int) {
	offBytes = 16 * (2 * g.NumVertices() / 5)
	adjBytes = 64 << 20
	return
}

// Fig7CacheSize regenerates Fig. 7: communication time and miss rate as a
// function of the cache size, enabling caching on one window at a time
// (R-MAT with EF16 on 2 ranks).
func Fig7CacheSize() *Table {
	t := &Table{
		ID:     "fig7",
		Title:  "Cache behaviour vs cache size (" + fig7Dataset + ", 2 ranks, one cache enabled at a time)",
		Paper:  "C_offsets: miss rate falls linearly with size; C_adj: power-law fall, small caches already save ~30% comm, full C_adj -51.6%",
		Header: []string{"cache", "rel size", "bytes", "comm time (ms)", "vs uncached", "miss rate", "compulsory"},
	}
	g := gen.MustLoad(fig7Dataset)

	base, err := lcc.Run(g, baseEngineOptions(2))
	if err != nil {
		panic(err)
	}
	baseComm := base.MaxCommTime()
	t.Notes = append(t.Notes, fmt.Sprintf("uncached communication time: %.1f ms (simulated)", baseComm/1e6))

	rels := []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0}

	// C_offsets sweep: full size caches every vertex's (start,end) pair.
	fullOff := 16 * g.NumVertices()
	for _, rel := range rels {
		opt := baseEngineOptions(2)
		opt.Caching = true
		opt.OffsetsCacheBytes = int(rel * float64(fullOff))
		res, err := lcc.Run(g, opt)
		if err != nil {
			panic(err)
		}
		offRate, _ := res.CacheMissRates()
		t.AddRow("C_offsets", rel, fmtBytes(int64(opt.OffsetsCacheBytes)),
			res.MaxCommTime()/1e6,
			fmt.Sprintf("%+.1f%%", 100*(res.MaxCommTime()-baseComm)/baseComm),
			offRate, compulsoryFrac(res, true))
	}

	// C_adj sweep: full size caches the entire adjacency array.
	fullAdj := 4 * g.NumArcs()
	for _, rel := range rels {
		opt := baseEngineOptions(2)
		opt.Caching = true
		opt.AdjCacheBytes = int(rel * float64(fullAdj))
		res, err := lcc.Run(g, opt)
		if err != nil {
			panic(err)
		}
		_, adjRate := res.CacheMissRates()
		t.AddRow("C_adj", rel, fmtBytes(int64(opt.AdjCacheBytes)),
			res.MaxCommTime()/1e6,
			fmt.Sprintf("%+.1f%%", 100*(res.MaxCommTime()-baseComm)/baseComm),
			adjRate, compulsoryFrac(res, false))
	}
	t.Notes = append(t.Notes,
		"expect: C_adj reduces comm far more than C_offsets at equal relative size (adjacency gets move the bytes)",
		"grey area of the paper's plot = compulsory miss floor, reported in the last column")
	return t
}

// compulsoryFrac returns the fraction of misses that were compulsory for
// the offsets (true) or adjacency (false) cache.
func compulsoryFrac(res *lcc.Result, offsets bool) float64 {
	var comp, miss int64
	for _, s := range res.PerRank {
		cs := s.AdjCache
		if offsets {
			cs = s.OffsetsCache
		}
		comp += cs.CompulsoryMisses
		miss += cs.Misses
	}
	if miss == 0 {
		return 0
	}
	return float64(comp) / float64(miss)
}

// Fig8Scores regenerates Fig. 8: default (LRU+positional) versus
// application-defined degree-centrality scores, with C_adj capped at 25% of
// each rank's non-local partition to force evictions.
func Fig8Scores() *Table {
	t := &Table{
		ID:     "fig8",
		Title:  "Eviction scores: LRU+positional vs degree centrality (" + fig7Dataset + ", C_adj = 25% of non-local partition)",
		Paper:  "degree scores improve caching performance by 14.4%-35.6% on R-MAT 2^20/2^24",
		Header: []string{"ranks", "scores", "avg remote read (µs)", "C_adj miss rate", "compulsory", "evictions", "sim time (ms)"},
	}
	g := gen.MustLoad(fig7Dataset)
	totalAdjBytes := 4 * g.NumArcs()
	for _, p := range []int{4, 8, 16, 32, 64} {
		nonLocal := totalAdjBytes * (p - 1) / p
		for _, deg := range []bool{false, true} {
			opt := baseEngineOptions(p)
			opt.Caching = true
			opt.OffsetsCacheBytes, _ = paperCacheBytes(g)
			opt.AdjCacheBytes = nonLocal / 4
			opt.DegreeScores = deg
			res, err := lcc.Run(g, opt)
			if err != nil {
				panic(err)
			}
			_, adjRate := res.CacheMissRates()
			var evict int64
			for _, s := range res.PerRank {
				evict += s.AdjCache.CapacityEvictions + s.AdjCache.ConflictEvictions
			}
			label := "LRU+positional"
			if deg {
				label = "degree"
			}
			t.AddRow(p, label, res.AvgRemoteReadTime()/1e3, adjRate,
				compulsoryFrac(res, false), evict, res.SimTime/1e6)
		}
	}
	t.Notes = append(t.Notes,
		"expect: degree scores lower the C_adj miss rate and the average remote read time at every rank count",
		"compulsory misses (grey area in the paper) bound the achievable hit rate")
	return t
}
