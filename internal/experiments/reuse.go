package experiments

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/trace"
)

// traceRun executes the non-cached engine on a dataset with a trace
// recorder attached and returns the recorder.
func traceRun(name string, ranks int) (*graph.Graph, *trace.Recorder) {
	g := gen.MustLoad(name)
	rec := trace.NewRecorder(ranks)
	_, err := lcc.Run(g, lcc.Options{
		Ranks:        ranks,
		Method:       intersect.MethodHybrid,
		DoubleBuffer: true,
		OnRemoteRead: rec.Hook(),
	})
	if err != nil {
		panic(err)
	}
	return g, rec
}

// Fig1DataReuse regenerates the Fig. 1 (right) histogram: remote reads
// issued by rank 0 on the Facebook-circles stand-in over 2 nodes, bucketed
// by how often each target was re-read.
func Fig1DataReuse() *Table {
	g, rec := traceRun("fb-sim", 2)
	counts := rec.Counts(g.NumVertices(), 0)
	bins := trace.ReuseHistogram(counts)
	t := &Table{
		ID:     "fig1",
		Title:  "LCC data reuse: remote reads issued by rank 0 (fb-sim, 2 ranks)",
		Paper:  "Facebook circles (4,039 v / 88,234 e): a heavy tail of targets re-read up to hundreds of times",
		Header: []string{"repetitions", "remote targets"},
		Notes: []string{
			fmt.Sprintf("fb-sim stands in for Facebook circles: n=%d m=%d (see DESIGN.md)", g.NumVertices(), g.NumEdges()),
			fmt.Sprintf("total remote reads by rank 0: %d over %d distinct targets", sum(counts), distinct(counts)),
		},
	}
	// Compact the long tail the way the paper's log-style axis does:
	// individual bins up to 8 repetitions, then ranges.
	ranges := []struct {
		lo, hi int
		label  string
	}{
		{1, 1, "1"}, {2, 2, "2"}, {3, 4, "3-4"}, {5, 8, "5-8"},
		{9, 16, "9-16"}, {17, 32, "17-32"}, {33, 64, "33-64"},
		{65, 256, "65-256"}, {257, 1 << 30, ">256"},
	}
	for _, r := range ranges {
		n := 0
		for _, b := range bins {
			if b.Repetitions >= r.lo && b.Repetitions <= r.hi {
				n += b.Reads
			}
		}
		t.AddRow(r.label, n)
	}
	return t
}

// Fig4DataReuse regenerates Fig. 4: how much of the remote-read traffic
// concentrates on the highest-degree vertices, for four degree
// distributions on 8 ranks with 1D partitioning.
func Fig4DataReuse() *Table {
	t := &Table{
		ID:     "fig4",
		Title:  "Share of remote reads targeting the top 10% highest-degree vertices (8 ranks, 1D)",
		Paper:  "Uniform 11.7%, R-MAT S21 E16 91.9%, Orkut 42.5%, LiveJournal 57.4%",
		Header: []string{"dataset", "paper graph", "top-10% share", "paper value", "reads", "targets"},
	}
	cases := []struct {
		name  string
		paper string
		value string
	}{
		{"uniform", "Uniform", "11.7%"},
		{"rmat-s15-ef16", "R-MAT S21 E16", "91.9%"},
		{"orkut-sim", "Orkut", "42.5%"},
		{"lj-sim", "LiveJournal", "57.4%"},
	}
	for _, c := range cases {
		g, rec := traceRun(c.name, 8)
		counts := rec.Counts(g.NumVertices(), -1)
		share := trace.TopShare(g, counts, 0.10)
		t.AddRow(c.name, c.paper, fmt.Sprintf("%.1f%%", 100*share), c.value,
			sum(counts), distinct(counts))
	}
	t.Notes = append(t.Notes,
		"expectation is ordinal: uniform lowest, R-MAT highest, social graphs between")
	return t
}

// Fig5CacheEntries regenerates Fig. 5: per-vertex remote-access counts and
// cache entry sizes against vertex degree (fb-sim on 2 ranks), summarized
// by degree decile plus the degree/access correlation of Observation 3.1.
func Fig5CacheEntries() *Table {
	g, rec := traceRun("fb-sim", 2)
	counts := rec.Counts(g.NumVertices(), -1)
	pts := trace.DegreeScatter(g, counts)
	t := &Table{
		ID:     "fig5",
		Title:  "Data reuse and cache entry sizes vs vertex degree (fb-sim, 2 ranks)",
		Paper:  "accesses grow linearly with degree (Obs. 3.1); entry size = 4*degree bytes (Obs. 3.2)",
		Header: []string{"degree decile", "max degree", "avg accesses", "avg entry size (B)"},
	}
	if len(pts) == 0 {
		t.Notes = append(t.Notes, "no remote reads recorded")
		return t
	}
	const buckets = 10
	for b := 0; b < buckets; b++ {
		lo := b * len(pts) / buckets
		hi := (b + 1) * len(pts) / buckets
		if lo >= hi {
			continue
		}
		var acc, size, maxDeg int
		for _, p := range pts[lo:hi] {
			acc += p.Accesses
			size += p.EntrySize
			if p.Degree > maxDeg {
				maxDeg = p.Degree
			}
		}
		n := hi - lo
		t.AddRow(fmt.Sprintf("%d", b+1), maxDeg,
			float64(acc)/float64(n), float64(size)/float64(n))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Pearson correlation(degree, accesses) = %.3f (Obs. 3.1 predicts strongly positive)",
			trace.Correlation(pts)))
	return t
}

// Table2Datasets regenerates Table II: the dataset inventory with vertex,
// edge and CSR sizes after degree<2 removal.
func Table2Datasets() *Table {
	t := &Table{
		ID:     "table2",
		Title:  "Graphs used in this reproduction (Table II, scaled stand-ins)",
		Paper:  "SNAP/KONECT/WebGraph datasets, 1.7M-1074M vertices; see DESIGN.md for the mapping",
		Header: []string{"name", "stands in for", "kind", "|V|", "|E|", "CSR size", "max deg", "Gini"},
	}
	for _, name := range gen.Names() {
		d, _ := gen.Lookup(name)
		g := gen.MustLoad(name)
		t.AddRow(name, d.PaperName, g.Kind().String(),
			g.NumVertices(), g.NumEdges(), fmtBytes(g.CSRSizeBytes()),
			g.MaxDegree(), graph.GiniCoefficient(g))
	}
	t.Notes = append(t.Notes, "sizes after one-degree removal, as in the paper's Table II")
	return t
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func distinct(xs []int) int {
	d := 0
	for _, x := range xs {
		if x > 0 {
			d++
		}
	}
	return d
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
