package experiments

import (
	"fmt"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/stats"
)

// Table3Intersection regenerates Table III: edges processed per
// microsecond for the hybrid, SSI and binary-search intersection methods.
// These are real wall-clock measurements (the only experiment family that
// is not simulated), taken with the §IV-A methodology: repeat until the
// 95% CI of the median is within 5%.
func Table3Intersection() *Table {
	t := &Table{
		ID:     "table3",
		Title:  "Intersection methods, edges/µs (wall clock, single thread)",
		Paper:  "hybrid > SSI > binary on every graph (e.g. LiveJournal 1.084/1.018/0.984 at 16 threads)",
		Header: []string{"dataset", "paper graph", "hybrid", "ssi", "binary", "best"},
		Notes: []string{
			"paper used 16 threads on a Xeon Gold 6154; this host has one core, so absolute rates differ",
			"expectation is ordinal: hybrid first on every row",
		},
	}
	cases := []struct{ name, paper string }{
		{"rmat-s14-ef8", "R-MAT S20 EF8"},
		{"rmat-s14-ef16", "R-MAT S20 EF16"},
		{"rmat-s14-ef32", "R-MAT S20 EF32"},
		{"lj-sim", "LiveJournal"},
		{"orkut-sim", "Orkut"},
	}
	methods := []intersect.Method{intersect.MethodHybrid, intersect.MethodSSI, intersect.MethodBinary}
	for _, c := range cases {
		g := gen.MustLoad(c.name)
		rates := make([]float64, len(methods))
		for i, m := range methods {
			meas := stats.Repeat(func() float64 {
				start := time.Now()
				lcc.SharedLCC(g, m)
				return time.Since(start).Seconds() * 1e6 // µs
			}, 3, 7, 0.05)
			rates[i] = float64(g.NumArcs()) / meas.Median
		}
		best := "hybrid"
		if rates[1] > rates[0] && rates[1] >= rates[2] {
			best = "ssi"
		} else if rates[2] > rates[0] {
			best = "binary"
		}
		t.AddRow(c.name, c.paper, rates[0], rates[1], rates[2], best)
	}
	return t
}

// Fig6SharedScaling regenerates Fig. 6: strong scaling of the hybrid
// method over 1..16 threads. The paper's mechanism — per-edge OpenMP
// region entry limiting the speedup to 2.0-2.7x — is reproduced with the
// modeled-time executor (this host has one core; see DESIGN.md §1).
func Fig6SharedScaling() *Table {
	t := &Table{
		ID:     "fig6",
		Title:  "Shared-memory strong scaling, hybrid method (modeled threads)",
		Paper:  "speedups at 16 threads: R-MAT S20 EF16 2.0x, R-MAT S20 EF32 2.7x, Orkut 1.2x",
		Header: []string{"dataset", "paper graph", "threads", "edges/µs", "speedup"},
		Notes: []string{
			"modeled-time executor: per-edge parallel-region cost + chunked work, the bottleneck §IV-C profiles",
			"single-core host: real goroutine scaling is available via intersect.ParallelCount on multicore machines",
		},
	}
	cases := []struct{ name, paper string }{
		{"rmat-s14-ef16", "R-MAT S20 EF16"},
		{"rmat-s14-ef32", "R-MAT S20 EF32"},
		{"orkut-sim", "Orkut"},
	}
	tm := intersect.DefaultThreadModel()
	for _, c := range cases {
		g := gen.MustLoad(c.name)
		base := 0.0
		for _, threads := range []int{1, 2, 4, 8, 16} {
			total := modeledSharedTime(g, tm, threads) // ns
			rate := float64(g.NumArcs()) / (total / 1e3)
			if threads == 1 {
				base = total
			}
			t.AddRow(c.name, c.paper, threads, rate, fmt.Sprintf("%.1fx", base/total))
		}
	}
	return t
}

// modeledSharedTime sums the modeled per-edge intersection time over every
// edge of the graph.
func modeledSharedTime(g *graph.Graph, tm intersect.ThreadModel, threads int) float64 {
	total := 0.0
	for v := 0; v < g.NumVertices(); v++ {
		adjI := g.Adj(graph.V(v))
		for _, vj := range adjI {
			adjJ := g.Adj(vj)
			if g.Kind() == graph.Undirected {
				adjJ = intersect.UpperSlice(adjJ, vj)
			}
			total += tm.EdgeTime(len(adjI), len(adjJ), threads)
		}
	}
	return total
}

// AblationCutoff regenerates the A1 ablation: the sequential cut-off value
// of the parallel intersection (§III-C determines one empirically).
func AblationCutoff() *Table {
	t := &Table{
		ID:     "ablation-cutoff",
		Title:  "A1: parallel-region cutoff sweep (16 modeled threads, rmat-s14-ef16)",
		Paper:  "§III-C: a too-small parallel region limits performance; a cutoff is required",
		Header: []string{"cutoff", "edges/µs", "vs best"},
	}
	g := gen.MustLoad("rmat-s14-ef16")
	tm := intersect.DefaultThreadModel()
	cutoffs := []int{0, 64, 256, 512, 1024, 4096, 1 << 30}
	rates := make([]float64, len(cutoffs))
	best := 0.0
	for i, c := range cutoffs {
		tm.Cutoff = c
		total := modeledSharedTime(g, tm, 16)
		rates[i] = float64(g.NumArcs()) / (total / 1e3)
		if rates[i] > best {
			best = rates[i]
		}
	}
	for i, c := range cutoffs {
		label := fmt.Sprint(c)
		if c == 1<<30 {
			label = "inf (sequential)"
		}
		t.AddRow(label, rates[i], fmt.Sprintf("%.0f%%", 100*rates[i]/best))
	}
	t.Notes = append(t.Notes, "expect an interior optimum: 0 pays region cost on tiny lists, inf never parallelizes")
	return t
}
