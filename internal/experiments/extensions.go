package experiments

import (
	"fmt"
	"time"

	"repro/internal/disttc"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/grid"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/part"
	"repro/internal/rma"
	"repro/internal/stats"
	"repro/internal/tric"
)

// This file holds the extension experiments that go beyond the paper's own
// evaluation: the DistTC comparison the paper argues qualitatively (§I),
// the hash-intersection family of §V-A, the orientation ablation from the
// Schank–Wagner reference (§V), and the noise-sensitivity study that
// quantifies the asynchrony argument. Ids follow the DESIGN.md §3 index.

// AblationNoise regenerates A7: identical deterministic OS-style noise is
// injected into the asynchronous RMA engine and into the BSP TriC baseline
// via the shared cost model; the table reports each engine's slowdown
// relative to its own noise-free run. BSP pays the *maximum* perturbation
// across ranks at every barrier, the async engine only its own, so TriC's
// slowdown must grow faster with the noise level — the paper's §I argument
// made quantitative.
func AblationNoise() *Table {
	t := &Table{
		ID:     "ablation-noise",
		Title:  "Noise sensitivity: async RMA vs BSP TriC (A7)",
		Paper:  "§I: BSP synchronization 'as costly as communication'; asynchrony avoids straggler amplification",
		Header: []string{"noise", "async (ms)", "async slowdown", "tric (ms)", "tric slowdown", "bsp penalty"},
		Notes: []string{
			"noise: proportional jitter amplitude + 25 µs OS detours at the stated period, per rank, deterministic",
			"slowdowns are vs the same engine without noise; bsp penalty = tric slowdown / async slowdown",
			"dataset rmat-s14-ef16 on 8 ranks (the asymmetry is scale-independent; kept small for the bench budget)",
		},
	}
	g := gen.MustLoad("rmat-s14-ef16")
	const ranks = 8
	levels := []struct {
		name string
		spec rma.NoiseSpec
	}{
		{"off", rma.NoiseSpec{}},
		{"low (5%, 1ms period)", rma.NoiseSpec{Amp: 0.05, SpikePeriodNS: 1e6, SpikeNS: 25000, Seed: 1}},
		{"high (30%, 50µs)", rma.NoiseSpec{Amp: 0.30, SpikePeriodNS: 50e3, SpikeNS: 25000, Seed: 1}},
	}
	var asyncBase, tricBase float64
	for i, lv := range levels {
		model := rma.DefaultCostModel()
		model.Noise = lv.spec

		opt := baseEngineOptions(ranks)
		opt.Model = model
		async, err := lcc.Run(g, opt)
		if err != nil {
			panic(err)
		}
		tr := tric.MustRun(g, tric.Options{Ranks: ranks, Model: model, Method: intersect.MethodHybrid})
		if i == 0 {
			asyncBase, tricBase = async.SimTime, tr.SimTime
		}
		aSlow := async.SimTime / asyncBase
		tSlow := tr.SimTime / tricBase
		t.AddRow(lv.name, ms(async.SimTime), fmt.Sprintf("%.2fx", aSlow),
			ms(tr.SimTime), fmt.Sprintf("%.2fx", tSlow), fmt.Sprintf("%.2f", tSlow/aSlow))
	}
	return t
}

// AblationDistTC regenerates A8: the DistTC shadow-edge baseline against
// the asynchronous engine and TriC over a strong-scaling sweep. The paper
// (§I) credits DistTC with low computation time but a total dominated by
// precomputation; the precompute share and the shadow replication factor
// make that visible.
func AblationDistTC() *Table {
	t := &Table{
		ID:     "ablation-disttc",
		Title:  "DistTC shadow-edge baseline vs async RMA and TriC (A8)",
		Paper:  "§I: DistTC 'leads to a low computation time but makes the total running time dominated by this pre-computation step'",
		Header: []string{"ranks", "async (ms)", "tric (ms)", "disttc (ms)", "disttc precompute", "replication"},
		Notes: []string{
			"dataset rmat-s14-ef16 (undirected scale-free); disttc precompute = share of its total time",
			"replication = (local+shadow arcs)/local arcs over all ranks",
			"absolute times are not the story: disttc's bulk shadow transfer amortizes latency, but its",
			"replication factor is the graph fraction every rank must hold — at paper scale that is the",
			"out-of-memory failure mode, and the growing precompute share is the scalability ceiling (§I)",
		},
	}
	g := gen.MustLoad("rmat-s14-ef16")
	for _, ranks := range []int{4, 8, 16, 32} {
		async, err := lcc.Run(g, baseEngineOptions(ranks))
		if err != nil {
			panic(err)
		}
		tr := tric.MustRun(g, tric.Options{Ranks: ranks, Method: intersect.MethodHybrid})
		dt := disttc.MustRun(g, disttc.Options{Ranks: ranks})
		if dt.Triangles != async.Triangles {
			panic(fmt.Sprintf("experiments: DistTC disagrees on triangles: %d vs %d",
				dt.Triangles, async.Triangles))
		}
		t.AddRow(ranks, ms(async.SimTime), ms(tr.SimTime), ms(dt.SimTime),
			fmt.Sprintf("%.0f%%", 100*dt.PrecomputeTime/dt.SimTime),
			fmt.Sprintf("%.2fx", dt.ReplicationFactor))
	}
	return t
}

// Table3Hash extends Table III with the §V-A hash intersection (H-INDEX)
// and the Schank–Wagner forward algorithm, wall-clock measured like the
// original table.
func Table3Hash() *Table {
	t := &Table{
		ID:     "table3x",
		Title:  "Extended intersection methods, edges/µs (wall clock, single thread)",
		Paper:  "§V-A surveys hashing as the third kernel family; §V cites forward as the classic alternative",
		Header: []string{"dataset", "hybrid", "hash", "forward", "best"},
		Notes: []string{
			"hash = one-shot bin index per pair (build + probe); forward amortizes orientation across the whole run",
			"forward rates use the same edges/µs denominator (arcs of the input graph)",
		},
	}
	cases := []string{"rmat-s14-ef8", "rmat-s14-ef16", "lj-sim"}
	for _, name := range cases {
		g := gen.MustLoad(name)
		rate := func(f func()) float64 {
			meas := stats.Repeat(func() float64 {
				start := time.Now()
				f()
				return time.Since(start).Seconds() * 1e6
			}, 3, 7, 0.05)
			return float64(g.NumArcs()) / meas.Median
		}
		hybrid := rate(func() { lcc.SharedLCC(g, intersect.MethodHybrid) })
		hash := rate(func() { lcc.SharedLCC(g, intersect.MethodHash) })
		fwd := 0.0
		if g.Kind() == graph.Undirected {
			fwd = rate(func() {
				if _, err := lcc.ForwardLCC(g); err != nil {
					panic(err)
				}
			})
		}
		best := "hybrid"
		switch {
		case fwd > hybrid && fwd >= hash:
			best = "forward"
		case hash > hybrid:
			best = "hash"
		}
		t.AddRow(name, hybrid, hash, fwd, best)
	}
	return t
}

// Ablation2D regenerates A9, the paper's future-work direction (i): the
// asynchronous 2D block engine against the 1D engine over a strong-scaling
// sweep, reporting per-rank remote traffic (max over ranks), per-rank get
// counts, and simulated times. 2D turns O(m/p) latency-bound small gets
// into 2(√p−1) block transfers.
func Ablation2D() *Table {
	t := &Table{
		ID:     "ablation-2d",
		Title:  "1D vs 2D asynchronous distribution (A9, future work i)",
		Paper:  "§VI i: 'distribution schema that have lower communication costs than 1D' (cites 2.5D matmul)",
		Header: []string{"ranks", "1d (ms)", "2d (ms)", "1d MB/rank", "2d MB/rank", "1d gets/rank", "2d gets/rank"},
		Notes: []string{
			"dataset rmat-s14-ef16; traffic and gets are the max over ranks; 2D gets = 2(√p−1)",
			"the 1d engine is non-cached here: caching recovers part of the reuse 2D avoids structurally",
		},
	}
	g := gen.MustLoad("rmat-s14-ef16")
	for _, p := range []int{4, 16, 64} {
		one, err := lcc.Run(g, baseEngineOptions(p))
		if err != nil {
			panic(err)
		}
		two, err := grid.Run(g, grid.Options{Ranks: p})
		if err != nil {
			panic(err)
		}
		if one.Triangles != two.Triangles {
			panic(fmt.Sprintf("experiments: 2D engine disagrees: %d vs %d", two.Triangles, one.Triangles))
		}
		var oneBytes, oneGets int64
		for _, s := range one.PerRank {
			if s.RMA.RemoteBytes > oneBytes {
				oneBytes = s.RMA.RemoteBytes
			}
			if s.RMA.Gets > oneGets {
				oneGets = s.RMA.Gets
			}
		}
		t.AddRow(p, ms(one.SimTime), ms(two.SimTime),
			fmt.Sprintf("%.2f", float64(oneBytes)/1e6),
			fmt.Sprintf("%.2f", float64(two.RemoteBytesMax)/1e6),
			oneGets, two.BlockFetches/int64(p))
	}
	return t
}

// AblationOrientation regenerates A5: merge work (ops per arc) of the
// edge-centric method vs the forward algorithm under degree and degeneracy
// orderings. Orientation bounds out-degrees by O(√m) (degree order) or by
// the graph's degeneracy, shrinking intersection work — the quantitative
// reason direction-optimized kernels win on scale-free graphs.
func AblationOrientation() *Table {
	t := &Table{
		ID:     "ablation-orientation",
		Title:  "Orientation ablation: merge ops per arc (A5)",
		Paper:  "Schank & Wagner (§V): forward does asymptotically less work than edge-iteration",
		Header: []string{"dataset", "edge-centric", "forward/degree", "forward/degeneracy", "max out-deg", "degeneracy"},
		Notes: []string{
			"ops = merge/search iterations per stored arc; smaller is better",
			"all three agree on the triangle count by construction (asserted)",
		},
	}
	for _, name := range []string{"rmat-s14-ef8", "rmat-s14-ef16", "lj-sim"} {
		g := gen.MustLoad(name)
		shared := lcc.SharedLCC(g, intersect.MethodHybrid)
		fwd, err := lcc.ForwardLCC(g)
		if err != nil {
			panic(err)
		}
		if fwd.Triangles != shared.Triangles {
			panic(fmt.Sprintf("experiments: forward disagrees on %s: %d vs %d",
				name, fwd.Triangles, shared.Triangles))
		}
		order, k, err := lcc.DegeneracyOrder(g)
		if err != nil {
			panic(err)
		}
		o, err := lcc.OrientByOrder(g, order)
		if err != nil {
			panic(err)
		}
		tris, degenOps := lcc.CountOriented(o)
		if tris != shared.Triangles {
			panic(fmt.Sprintf("experiments: degeneracy orientation disagrees on %s: %d vs %d",
				name, tris, shared.Triangles))
		}
		degOrient, err := lcc.Orient(g)
		if err != nil {
			panic(err)
		}
		arcs := float64(g.NumArcs())
		t.AddRow(name,
			fmt.Sprintf("%.1f", float64(shared.Ops)/arcs),
			fmt.Sprintf("%.1f", float64(fwd.Ops)/arcs),
			fmt.Sprintf("%.1f", float64(degenOps)/arcs),
			degOrient.MaxOutDegree(), k)
	}
	return t
}

// AblationPushPull regenerates A10: the push side of the push–pull
// dichotomy (§VI ii) against the paper's pull engine. Push discovers each
// triangle once (at the smallest corner's owner, walking only upper
// wedges) and scatters +1 contributions to the other two corners through
// one-sided accumulates; pull discovers each triangle three times but
// needs no write traffic and no synchronization. The table shows where
// each side wins: caching rescues pull exactly where reuse exists
// (scale-free), while batched push wins where there is nothing to cache
// (flat degree distributions) by halving the get traffic.
func AblationPushPull() *Table {
	t := &Table{
		ID:     "ablation-pushpull",
		Title:  "Push vs pull triangle counting on the same RMA substrate (A10)",
		Paper:  "§VI ii: 'graph problems … that can be expressed in a push-pull dichotomy'",
		Header: []string{"dataset", "ranks", "pull (ms)", "pull+cache (ms)", "push direct (ms)", "push batched (ms)", "push/pull gets", "winner"},
		Notes: []string{
			"push = once-per-triangle discovery at the smallest corner + one-sided accumulates to the other two;",
			"one closing fence per rank (the only synchronization in any engine here)",
			"direct = one 8-byte accumulate per remote corner; batched = local combining, one message per peer",
			"pull+cache uses the Fig. 7 C_adj budget (25% of the non-local partition)",
		},
	}
	for _, name := range []string{"rmat-s14-ef16", "uniform"} {
		g := gen.MustLoad(name)
		for _, ranks := range []int{4, 16} {
			pullOpt := baseEngineOptions(ranks)
			pull, err := lcc.Run(g, pullOpt)
			if err != nil {
				panic(err)
			}
			cachedOpt := pullOpt
			cachedOpt.Caching = true
			_, adjBytes := paperCacheBytes(g)
			cachedOpt.OffsetsCacheBytes = 16 * g.NumVertices()
			cachedOpt.AdjCacheBytes = adjBytes / 4
			cachedOpt.DegreeScores = true
			cached, err := lcc.Run(g, cachedOpt)
			if err != nil {
				panic(err)
			}
			direct, err := lcc.RunPush(g, lcc.PushOptions{Options: pullOpt, Aggregation: lcc.PushDirect})
			if err != nil {
				panic(err)
			}
			batched, err := lcc.RunPush(g, lcc.PushOptions{Options: pullOpt, Aggregation: lcc.PushBatched})
			if err != nil {
				panic(err)
			}
			for _, r := range []*lcc.Result{cached, direct, batched} {
				if r.Triangles != pull.Triangles {
					panic(fmt.Sprintf("experiments: push/pull triangle mismatch on %s: %d vs %d",
						name, r.Triangles, pull.Triangles))
				}
			}
			pullGets := pull.AggregateRMA().Gets
			pushGets := batched.AggregateRMA().Gets
			times := map[string]float64{
				"pull": pull.SimTime, "pull+cache": cached.SimTime,
				"push direct": direct.SimTime, "push batched": batched.SimTime,
			}
			winner := "pull"
			for k, v := range times {
				if v < times[winner] {
					winner = k
				}
			}
			t.AddRow(name, ranks, ms(pull.SimTime), ms(cached.SimTime),
				ms(direct.SimTime), ms(batched.SimTime),
				fmt.Sprintf("%.2f", float64(pushGets)/float64(pullGets)), winner)
		}
	}
	return t
}

// AblationDelegation regenerates A11: static vertex delegation against
// dynamic CLaMPI caching under the same per-rank memory budget. The
// abstract frames the paper's contribution as "achieving vertex delegation
// by a caching mechanism"; this table quantifies that claim. Delegation
// gets oracle degree knowledge and free replication (excluded from timing,
// like the paper's distribution phase), yet dynamic caching tracks it
// closely wherever reuse is skewed — and only the cache adapts to what a
// rank actually touches.
func AblationDelegation() *Table {
	t := &Table{
		ID:     "ablation-delegation",
		Title:  "Static vertex delegation vs dynamic RMA caching (A11)",
		Paper:  "abstract: 'achieving vertex delegation by a caching mechanism leads to clear performance improvements'",
		Header: []string{"ranks", "budget", "plain (ms)", "cached (ms)", "hit rate", "delegated (ms)", "deleg share", "both (ms)"},
		Notes: []string{
			"budget = per-rank bytes, 25% of the mean non-local partition (the Fig. 8 eviction-pressure setup);",
			"the same budget funds C_adj for 'cached' and the static replica for 'delegated'; 'both' splits it half/half",
			"deleg share = fraction of would-be remote reads served by the replica",
			"delegation picks by global in-degree (an oracle); caching discovers the working set at runtime",
		},
	}
	g := gen.MustLoad(fig7Dataset)
	csr := int(g.CSRSizeBytes())
	for _, ranks := range []int{4, 8, 16, 32, 64} {
		nonLocal := csr - csr/ranks
		budget := nonLocal / 4

		plain, err := lcc.Run(g, baseEngineOptions(ranks))
		if err != nil {
			panic(err)
		}

		cachedOpt := baseEngineOptions(ranks)
		cachedOpt.Caching = true
		cachedOpt.OffsetsCacheBytes = 16 * g.NumVertices()
		cachedOpt.AdjCacheBytes = budget
		cachedOpt.DegreeScores = true
		cached, err := lcc.Run(g, cachedOpt)
		if err != nil {
			panic(err)
		}

		delegOpt := baseEngineOptions(ranks)
		delegOpt.DelegateBytes = budget
		deleg, err := lcc.Run(g, delegOpt)
		if err != nil {
			panic(err)
		}

		bothOpt := cachedOpt
		bothOpt.AdjCacheBytes = budget / 2
		bothOpt.DelegateBytes = budget / 2
		both, err := lcc.Run(g, bothOpt)
		if err != nil {
			panic(err)
		}

		for _, r := range []*lcc.Result{cached, deleg, both} {
			if r.Triangles != plain.Triangles {
				panic(fmt.Sprintf("experiments: delegation ablation triangle mismatch: %d vs %d",
					r.Triangles, plain.Triangles))
			}
		}

		var plainRemote, delegated int64
		for i := 0; i < ranks; i++ {
			plainRemote += plain.PerRank[i].RemoteReads
			delegated += deleg.PerRank[i].DelegatedReads
		}
		t.AddRow(ranks, fmtBytes(int64(budget)), ms(plain.SimTime),
			ms(cached.SimTime), fmt.Sprintf("%.0f%%", 100*cached.HitRate()),
			ms(deleg.SimTime), fmt.Sprintf("%.0f%%", 100*float64(delegated)/float64(plainRemote)),
			ms(both.SimTime))
	}
	return t
}

// AblationRelabel regenerates A12: the paper's §II-B design decision made
// measurable. "If the input graph is stored in a degree-ordered format, we
// use a random relabeling to avoid assigning all the highest degree
// vertices to the same process." A Barabási–Albert graph is naturally
// degree-ordered (old vertices are hubs), so block 1D without relabeling
// piles the hubs — and their remote-read traffic — onto rank 0.
func AblationRelabel() *Table {
	t := &Table{
		ID:     "ablation-relabel",
		Title:  "A12: random relabeling vs degree-ordered ids under block 1D (16 ranks)",
		Paper:  "§II-B: random relabeling avoids assigning all the highest-degree vertices to the same process",
		Header: []string{"labeling", "sim time (ms)", "imbalance", "max/mean remote reads", "triangles"},
		Notes: []string{
			"graph: BA 2^14 vertices m=16, whose construction order is degree-ordered",
			"imbalance = max/mean arcs per rank; remote-read ratio = max/mean over ranks",
			"the relabeled run is the paper's default (gen.Prepare applies it to every dataset)",
		},
	}
	raw := graph.RemoveLowDegreeIter(gen.BarabasiAlbert(1<<14, 16, graph.Undirected, 99))
	labeled := gen.Prepare(raw, 99)

	var wantTri int64
	for _, cs := range []struct {
		name string
		g    *graph.Graph
	}{{"degree-ordered", raw}, {"random-relabeled", labeled}} {
		res, err := lcc.Run(cs.g, baseEngineOptions(16))
		if err != nil {
			panic(err)
		}
		if cs.name == "degree-ordered" {
			wantTri = res.Triangles
		} else if res.Triangles != wantTri {
			panic("relabeling changed the triangle count")
		}
		pt, err := part.Build(part.Block, cs.g, 16)
		if err != nil {
			panic(err)
		}
		var maxR, sumR int64
		for _, s := range res.PerRank {
			sumR += s.RemoteReads
			if s.RemoteReads > maxR {
				maxR = s.RemoteReads
			}
		}
		meanR := float64(sumR) / 16
		t.AddRow(cs.name, ms(res.SimTime), part.Imbalance(cs.g, pt),
			fmt.Sprintf("%.2f", float64(maxR)/meanR), res.Triangles)
	}
	return t
}

// AblationReplication regenerates A13 — future-work direction (i) again,
// from the memory side: replicated-groups "1.5D" distribution, the 2.5D
// matmul idea [41] applied to the paper's 1D scheme. c graph copies form c
// groups of p/c ranks; each fetch then sees a coarser 1/(p/c) partition, so
// the remote-read fraction falls while per-rank window memory grows by c.
func AblationReplication() *Table {
	t := &Table{
		ID:     "ablation-replication",
		Title:  "Replicated-groups (1.5D) distribution at fixed p=16 (A13)",
		Paper:  "§VI i: 'distribution schema that have lower communication costs than 1D distribution' [41]",
		Header: []string{"c", "groups x slots", "time (ms)", "speedup", "remote frac", "window MB/rank", "memory cost"},
		Notes: []string{
			"c = graph copies; at c=1 this is exactly the paper's 1D engine layout",
			"remote frac ~ (q-1)/q with q = p/c: coarser partitions mean fewer remote reads",
			"window MB/rank is the replicated CSR each rank must hold - the 2.5D memory-for-communication trade",
			"every configuration returns bit-identical LCC scores (asserted)",
		},
	}
	g := gen.MustLoad(fig7Dataset)
	const p = 16
	base, err := lcc.Run(g, baseEngineOptions(p))
	if err != nil {
		panic(err)
	}
	for _, c := range []int{1, 2, 4, 8} {
		opt := baseEngineOptions(p)
		res, err := lcc.RunReplicated(g, lcc.ReplicatedOptions{Options: opt, Replication: c})
		if err != nil {
			panic(err)
		}
		if res.Triangles != base.Triangles {
			panic(fmt.Sprintf("experiments: replication c=%d changed triangles: %d vs %d",
				c, res.Triangles, base.Triangles))
		}
		mem, err := lcc.ReplicaWindowBytes(g, p, c)
		if err != nil {
			panic(err)
		}
		mem1, _ := lcc.ReplicaWindowBytes(g, p, 1)
		t.AddRow(c, fmt.Sprintf("%dx%d", c, p/c), ms(res.SimTime),
			fmt.Sprintf("%.2fx", base.SimTime/res.SimTime),
			fmt.Sprintf("%.0f%%", 100*res.RemoteReadFraction()),
			fmt.Sprintf("%.2f", float64(mem)/1e6),
			fmt.Sprintf("%.1fx", float64(mem)/float64(mem1)))
	}
	return t
}
