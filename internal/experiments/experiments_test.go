package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:     "t",
		Title:  "demo",
		Paper:  "expected",
		Header: []string{"a", "long-header", "c"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("x", 1.23456, 42)
	tab.AddRow("longer-cell", "y", "z")
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== t: demo ==", "paper: expected", "long-header", "1.23", "longer-cell", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	// Columns must align: header and first row share the first column width.
	lines := strings.Split(out, "\n")
	var hdr, row string
	for i, l := range lines {
		if strings.HasPrefix(l, "a ") {
			hdr = l
			row = lines[i+3] // separator, first row, second row
			break
		}
	}
	if hdr == "" || len(row) == 0 {
		t.Fatalf("could not locate header/row in output:\n%s", out)
	}
	if strings.Index(hdr, "long-header") != strings.Index(row, "y") {
		t.Errorf("columns misaligned:\n%s\n%s", hdr, row)
	}
}

func TestAddRowFormatsFloats(t *testing.T) {
	tab := &Table{Header: []string{"v"}}
	tab.AddRow(0.123456789)
	if got := tab.Rows[0][0]; got != "0.123" {
		t.Errorf("float cell = %q, want %q", got, "0.123")
	}
	tab.AddRow(7)
	if got := tab.Rows[1][0]; got != "7" {
		t.Errorf("int cell = %q", got)
	}
}

func TestLookupAndAllConsistent(t *testing.T) {
	all := All()
	if len(all) < 13 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		got, ok := Lookup(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("Lookup(%q) failed", e.ID)
		}
		if e.Make == nil {
			t.Errorf("experiment %q has nil constructor", e.ID)
		}
	}
	if _, ok := Lookup("not-an-experiment"); ok {
		t.Error("Lookup accepted an unknown id")
	}
	// Every paper artifact must be covered.
	for _, id := range []string{"table2", "table3", "fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
		if !seen[id] {
			t.Errorf("paper artifact %s not registered", id)
		}
	}
}

func TestFig1Smoke(t *testing.T) {
	tab := Fig1DataReuse()
	if len(tab.Rows) == 0 {
		t.Fatal("fig1 produced no rows")
	}
	// Reuse must exist: some bin above repetition 1 is non-empty.
	found := false
	for _, r := range tab.Rows[1:] {
		if r[1] != "0" {
			found = true
		}
	}
	if !found {
		t.Error("fig1 shows no data reuse at all")
	}
}

func TestFig5Smoke(t *testing.T) {
	tab := Fig5CacheEntries()
	if len(tab.Rows) < 5 {
		t.Fatalf("fig5 produced %d rows", len(tab.Rows))
	}
	// Accesses must grow from the first to the last degree decile
	// (Observation 3.1).
	var first, last float64
	if _, err := sscan(tab.Rows[0][2], &first); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[len(tab.Rows)-1][2], &last); err != nil {
		t.Fatal(err)
	}
	if last <= first {
		t.Errorf("accesses not increasing with degree: %v -> %v", first, last)
	}
}

func TestAblationCutoffSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("model sweep over a full graph")
	}
	tab := AblationCutoff()
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Interior optimum: neither the first (cutoff 0) nor the last
	// (sequential) row should be the best.
	best := 0
	var bestV float64
	for i := range tab.Rows {
		var v float64
		sscan(tab.Rows[i][1], &v)
		if v > bestV {
			bestV, best = v, i
		}
	}
	if best == 0 || best == len(tab.Rows)-1 {
		t.Errorf("cutoff optimum at boundary row %d; expected interior", best)
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
