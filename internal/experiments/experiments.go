// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) as printable tables. Both the cmd/figures CLI and the
// top-level benchmark harness (bench_test.go) drive these functions, so the
// numbers reported by `go test -bench` and by the CLI are the same code
// path. See EXPERIMENTS.md for the paper-vs-measured record and DESIGN.md
// §3 for the experiment index.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated table or figure: rows of formatted cells plus
// the context a reader needs to compare against the paper.
type Table struct {
	ID     string // experiment id, e.g. "fig9"
	Title  string
	Paper  string // what the paper reports (the expectation)
	Header []string
	Rows   [][]string
	Notes  []string // substitutions, scaled parameters, caveats
}

// AddRow appends a row of cells formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(w, "paper: %s\n", t.Paper)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// All returns every experiment in presentation order, keyed by ID. Each
// entry is a constructor so callers pay only for what they run.
func All() []NamedExperiment {
	return []NamedExperiment{
		{"table2", "Dataset inventory (Table II)", Table2Datasets},
		{"fig1", "LCC data reuse histogram (Fig. 1 right)", Fig1DataReuse},
		{"fig4", "Remote-read concentration (Fig. 4)", Fig4DataReuse},
		{"fig5", "Reuse and entry size vs degree (Fig. 5)", Fig5CacheEntries},
		{"table3", "Intersection methods (Table III)", Table3Intersection},
		{"fig6", "Shared-memory strong scaling (Fig. 6)", Fig6SharedScaling},
		{"fig7", "Cache behaviour vs cache size (Fig. 7)", Fig7CacheSize},
		{"fig8", "Application-defined scores (Fig. 8)", Fig8Scores},
		{"fig9", "Small-scale strong scaling (Fig. 9)", Fig9SmallScale},
		{"fig10", "Large-scale strong scaling (Fig. 10)", Fig10LargeScale},
		{"ablation-cutoff", "Hybrid cutoff ablation (A1)", AblationCutoff},
		{"ablation-overlap", "Double-buffering ablation (A2)", AblationOverlap},
		{"ablation-cyclic", "Cyclic vs block 1D ablation (A3)", AblationCyclic},
		{"ablation-scores", "Eviction score policies ablation (A4)", AblationScores},
		{"ablation-orientation", "Orientation / forward-algorithm ablation (A5)", AblationOrientation},
		{"table3x", "Extended intersection methods incl. hash (§V-A)", Table3Hash},
		{"ablation-noise", "Noise sensitivity, async vs BSP (A7)", AblationNoise},
		{"ablation-disttc", "DistTC shadow-edge baseline (A8)", AblationDistTC},
		{"ablation-2d", "1D vs 2D asynchronous distribution (A9)", Ablation2D},
		{"ablation-pushpull", "Push vs pull dichotomy (A10)", AblationPushPull},
		{"ablation-delegation", "Static delegation vs dynamic caching (A11)", AblationDelegation},
		{"ablation-relabel", "Random relabeling vs degree-ordered ids (A12)", AblationRelabel},
		{"ablation-replication", "Replicated-groups 1.5D distribution (A13)", AblationReplication},
	}
}

// NamedExperiment pairs an experiment ID with its constructor.
type NamedExperiment struct {
	ID    string
	Title string
	Make  func() *Table
}

// Lookup finds an experiment by ID.
func Lookup(id string) (NamedExperiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return NamedExperiment{}, false
}
