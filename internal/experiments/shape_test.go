package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// This file runs the cheaper experiments end to end and asserts the
// *shape* the paper (or DESIGN.md §3) predicts: who wins, what grows, what
// shrinks. The expensive sweeps (table3, table3x, fig7–fig10, A10, A11)
// stay bench-only; see bench_test.go at the repository root.

// cell parses the leading float of a formatted table cell ("123.4",
// "91.9%", "1.23x", "669.9 KiB" all yield their leading number).
func cell(t *testing.T, s string) float64 {
	t.Helper()
	end := len(s)
	for i, r := range s {
		if (r < '0' || r > '9') && r != '.' && r != '-' && r != '+' {
			end = i
			break
		}
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("8-rank trace of four datasets")
	}
	tab := Fig4DataReuse()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	share := map[string]float64{}
	for _, r := range tab.Rows {
		share[r[0]] = cell(t, r[2])
	}
	// The paper's ordinal expectation: uniform lowest, R-MAT highest,
	// the social-network stand-ins in between.
	if !(share["uniform"] < share["orkut-sim"] &&
		share["uniform"] < share["lj-sim"] &&
		share["orkut-sim"] < share["rmat-s15-ef16"] &&
		share["lj-sim"] < share["rmat-s15-ef16"]) {
		t.Errorf("top-10%% shares out of order: %v", share)
	}
	// And the extremes should be in the right ballpark (paper: 11.7% for
	// uniform with its graph; ours must at least stay under 1/3 and the
	// R-MAT concentration above 2/3).
	if share["uniform"] > 33 {
		t.Errorf("uniform share %.1f%% too concentrated", share["uniform"])
	}
	if share["rmat-s15-ef16"] < 66 {
		t.Errorf("R-MAT share %.1f%% too flat", share["rmat-s15-ef16"])
	}
}

func TestFig6Shape(t *testing.T) {
	tab := Fig6SharedScaling()
	if len(tab.Rows) == 0 {
		t.Fatal("fig6 empty")
	}
	// Performance must rise with the thread count within each dataset,
	// sublinearly: the paper's Fig. 6 annotations are 2.0x, 2.7x and 1.2x
	// (Orkut) at 16 threads — gains exist but the OpenMP region-entry
	// bottleneck caps them well below linear.
	type series struct{ speedup, threadsLast float64 }
	byDataset := map[string]*series{}
	for _, r := range tab.Rows {
		name := r[0]
		threads := cell(t, r[2])
		sp := cell(t, r[4])
		s, ok := byDataset[name]
		if !ok {
			byDataset[name] = &series{speedup: sp, threadsLast: threads}
			continue
		}
		if threads > s.threadsLast {
			s.speedup, s.threadsLast = sp, threads
		}
	}
	for name, s := range byDataset {
		if s.speedup <= 1.05 {
			t.Errorf("%s: 16-thread speedup %.2fx, want > 1.05x", name, s.speedup)
		}
		if s.speedup >= 8 {
			t.Errorf("%s: speedup %.2fx implausibly near-linear; the region-entry bottleneck should cap it", name, s.speedup)
		}
	}
}

func TestAblationOverlapShape(t *testing.T) {
	if testing.Short() {
		t.Skip("six full engine runs")
	}
	tab := AblationOverlap()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		on, off := cell(t, r[1]), cell(t, r[2])
		if on > off {
			t.Errorf("ranks %s: overlap on (%.1f ms) slower than off (%.1f ms)", r[0], on, off)
		}
		// §IV-D-2: gains are modest because communication dominates —
		// overlap must not look like a 2x win.
		if gain := (off - on) / off; gain > 0.5 {
			t.Errorf("ranks %s: overlap gain %.0f%% implausibly large", r[0], 100*gain)
		}
	}
}

func TestAblationCyclicShape(t *testing.T) {
	tab := AblationCyclic()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	byScheme := map[string][]string{}
	for _, r := range tab.Rows {
		byScheme[r[0]] = r
	}
	blockImb := cell(t, byScheme["block"][2])
	cyclicImb := cell(t, byScheme["cyclic"][2])
	arcsImb := cell(t, byScheme["block-arcs"][2])
	if cyclicImb >= blockImb || arcsImb >= blockImb {
		t.Errorf("imbalance: block %.2f should exceed cyclic %.2f and block-arcs %.2f on a degree-ordered graph",
			blockImb, cyclicImb, arcsImb)
	}
	blockT := cell(t, byScheme["block"][1])
	cyclicT := cell(t, byScheme["cyclic"][1])
	if cyclicT >= blockT {
		t.Errorf("cyclic (%.1f ms) not faster than block (%.1f ms) despite balancing", cyclicT, blockT)
	}
}

func TestAblationOrientationShape(t *testing.T) {
	tab := AblationOrientation()
	if len(tab.Rows) == 0 {
		t.Fatal("orientation table empty")
	}
	// Forward (either order) must do fewer merge operations per arc than
	// the edge-centric method on every dataset — that is the §V point of
	// orienting the graph.
	for _, r := range tab.Rows {
		edgeOps := cell(t, r[1])
		degOps := cell(t, r[2])
		degenOps := cell(t, r[3])
		if degOps >= edgeOps || degenOps >= edgeOps {
			t.Errorf("%s: forward ops/arc (deg %.2f, degen %.2f) not below edge-centric %.2f",
				r[0], degOps, degenOps, edgeOps)
		}
	}
}

func TestAblation2DShape(t *testing.T) {
	tab := Ablation2D()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The 2D engine trades per-edge latency-bound gets for 2(√p−1) bulk
	// block pulls: its get count must be far below 1D's at every p.
	for _, r := range tab.Rows {
		gets1D := cell(t, r[5])
		gets2D := cell(t, r[6])
		if gets2D*10 > gets1D {
			t.Errorf("p=%s: 2D gets %v not an order of magnitude below 1D %v", r[0], gets2D, gets1D)
		}
	}
}

func TestAblationNoiseShape(t *testing.T) {
	tab := AblationNoise()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The BSP penalty (TriC's slowdown over the async engine's under the
	// same noise) must be ≥ ~1 at every level and grow with the noise.
	first := cell(t, tab.Rows[1][5])
	last := cell(t, tab.Rows[2][5])
	if first < 0.95 {
		t.Errorf("low-noise BSP penalty %.2f < 1: barriers should amplify noise", first)
	}
	if last < first {
		t.Errorf("BSP penalty fell from %.2f to %.2f as noise grew", first, last)
	}
}

func TestAblationDistTCShape(t *testing.T) {
	if testing.Short() {
		t.Skip("four-way engine sweep")
	}
	tab := AblationDistTC()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// §I: DistTC's precompute share grows with the rank count, and the
	// shadow replication factor grows with it.
	firstPre := cell(t, tab.Rows[0][4])
	lastPre := cell(t, tab.Rows[len(tab.Rows)-1][4])
	if lastPre <= firstPre {
		t.Errorf("precompute share did not grow with ranks: %.0f%% -> %.0f%%", firstPre, lastPre)
	}
	firstRep := cell(t, tab.Rows[0][5])
	lastRep := cell(t, tab.Rows[len(tab.Rows)-1][5])
	if lastRep <= firstRep {
		t.Errorf("replication factor did not grow with ranks: %.2fx -> %.2fx", firstRep, lastRep)
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("generates every registered dataset")
	}
	tab := Table2Datasets()
	if len(tab.Rows) < 10 {
		t.Fatalf("rows = %d, want the full dataset registry", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if cell(t, r[3]) <= 0 || cell(t, r[4]) <= 0 {
			t.Errorf("dataset %s reports empty graph: %v", r[0], r)
		}
	}
}

// TestAllExperimentsHaveDistinctIDs guards the registry against copy-paste
// drift as new ablations are added.
func TestAllExperimentsHaveDistinctIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Make == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if _, ok := Lookup(e.ID); !ok {
			t.Errorf("Lookup(%q) failed", e.ID)
		}
	}
	if _, ok := Lookup("no-such-experiment"); ok {
		t.Error("Lookup accepted an unknown id")
	}
	if !strings.Contains(strings.Join(idList(), ","), "fig9") {
		t.Error("fig9 missing from registry")
	}
}

func idList() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

func TestAblationRelabelShape(t *testing.T) {
	if testing.Short() {
		t.Skip("two 16-rank engine runs")
	}
	tab := AblationRelabel()
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	ordT, relT := cell(t, tab.Rows[0][1]), cell(t, tab.Rows[1][1])
	if relT >= ordT {
		t.Errorf("relabeled run (%.1f ms) not faster than degree-ordered (%.1f ms)", relT, ordT)
	}
	ordI, relI := cell(t, tab.Rows[0][2]), cell(t, tab.Rows[1][2])
	if relI >= ordI {
		t.Errorf("relabeled imbalance %.2f not below degree-ordered %.2f", relI, ordI)
	}
	if tab.Rows[0][4] != tab.Rows[1][4] {
		t.Error("relabeling changed the triangle count")
	}
}

func TestAblationReplicationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("five 16-rank engine runs")
	}
	tab := AblationReplication()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Remote fraction must fall monotonically with c; time must not rise;
	// memory must grow roughly linearly in c.
	prevFrac, prevTime := 101.0, 1e18
	for _, r := range tab.Rows {
		frac := cell(t, r[4])
		tm := cell(t, r[2])
		if frac >= prevFrac {
			t.Errorf("c=%s: remote fraction %.0f%% did not fall (prev %.0f%%)", r[0], frac, prevFrac)
		}
		if tm > prevTime*1.05 {
			t.Errorf("c=%s: time %.1f ms rose (prev %.1f ms)", r[0], tm, prevTime)
		}
		prevFrac, prevTime = frac, tm
	}
	memCost := cell(t, tab.Rows[3][6])
	if memCost < 4 {
		t.Errorf("c=8 memory cost %.1fx implausibly low", memCost)
	}
}
