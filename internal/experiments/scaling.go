package experiments

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lcc"
	"repro/internal/part"
	"repro/internal/tric"
)

// scalingSeries runs the four Fig. 9 series on one dataset for one rank
// count and returns simulated times in ns: LCC non-cached, LCC cached,
// TriC, TriC-Buffered. TriC is skipped (NaN-like -1) where noted.
type seriesResult struct {
	NonCached  float64
	Cached     float64
	TriC       float64
	TriCBuf    float64
	RemoteFrac float64
	CommFrac   float64
}

func runSeries(g *graph.Graph, ranks int, withTriC, withTriCBuf bool) seriesResult {
	var out seriesResult
	nc, err := lcc.Run(g, baseEngineOptions(ranks))
	if err != nil {
		panic(err)
	}
	out.NonCached = nc.SimTime
	out.RemoteFrac = nc.RemoteReadFraction()
	out.CommFrac = nc.CommFraction()

	opt := baseEngineOptions(ranks)
	opt.Caching = true
	opt.OffsetsCacheBytes, opt.AdjCacheBytes = paperCacheBytes(g)
	cached, err := lcc.Run(g, opt)
	if err != nil {
		panic(err)
	}
	if cached.Triangles != nc.Triangles {
		panic(fmt.Sprintf("experiments: cached run changed triangle count: %d vs %d",
			cached.Triangles, nc.Triangles))
	}
	out.Cached = cached.SimTime

	if withTriC {
		tr := tric.MustRun(g, tric.Options{Ranks: ranks, Method: opt.Method})
		if tr.Triangles != nc.Triangles {
			panic(fmt.Sprintf("experiments: TriC disagrees on triangles: %d vs %d",
				tr.Triangles, nc.Triangles))
		}
		out.TriC = tr.SimTime
	}
	if withTriCBuf {
		// The paper caps TriC-Buffered at 16 MiB per peer; graphs here
		// are ~64x smaller, so the cap scales to 256 KiB.
		tb := tric.MustRun(g, tric.Options{
			Ranks: ranks, Method: opt.Method, Buffered: true, BufferBytes: 256 << 10,
		})
		out.TriCBuf = tb.SimTime
	}
	return out
}

// fig9Cases maps the six panels of Fig. 9 to their stand-ins.
var fig9Cases = []struct{ name, paper string }{
	{"rmat-s15-ef16", "R-MAT S21 EF16"},
	{"orkut-sim", "Orkut"},
	{"lj-sim", "LiveJournal"},
	{"rmat-s16-ef16", "R-MAT S23 EF16"},
	{"skitter-sim", "Skitter"},
	{"lj1-sim", "LiveJournal1"},
}

// Fig9SmallScale regenerates Fig. 9: strong scaling on 4..64 ranks for six
// graphs and four implementations, plus the §IV-D-2 remote-read and
// communication fractions (E11).
func Fig9SmallScale() *Table {
	t := &Table{
		ID:    "fig9",
		Title: "Small-scale strong scaling, simulated time in ms (4..64 ranks)",
		Paper: "async scales 9.2-14x from 4 to 64 ranks; caching up to -67%; TriC 10-100x slower on scale-free graphs",
		Header: []string{"dataset", "ranks", "non-cached", "cached", "tric", "tric-buf",
			"cache gain", "tric/nc", "remote frac", "comm frac"},
	}
	ranks := []int{4, 8, 16, 32, 64}
	for _, c := range fig9Cases {
		g := gen.MustLoad(c.name)
		var first, last float64
		for _, p := range ranks {
			r := runSeries(g, p, true, true)
			if p == ranks[0] {
				first = r.NonCached
			}
			last = r.NonCached
			t.AddRow(c.name, p,
				ms(r.NonCached), ms(r.Cached), ms(r.TriC), ms(r.TriCBuf),
				fmt.Sprintf("%+.0f%%", 100*(r.Cached-r.NonCached)/r.NonCached),
				fmt.Sprintf("%.1fx", r.TriC/r.NonCached),
				fmt.Sprintf("%.0f%%", 100*r.RemoteFrac),
				fmt.Sprintf("%.0f%%", 100*r.CommFrac))
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s (%s): non-cached speedup 4→64 ranks = %.1fx",
			c.name, c.paper, first/last))
	}
	t.Notes = append(t.Notes,
		"paper speedups 4→64: R-MAT S21 10.8x, Orkut 9.4x, LiveJournal 13.9x, R-MAT S23 9.2x, Skitter 11.3x, LiveJournal1 14.0x")
	return t
}

// fig10Cases maps the three panels of Fig. 10.
var fig10Cases = []struct {
	name, paper string
	tricBufOnly bool // the paper ran TriC-Buffered where plain TriC OOMed
}{
	{"rmat-s18-ef16", "R-MAT S30 EF16", true},
	{"uk-sim", "uk-2005", false},
	{"wiki-sim", "wiki-en", false},
}

// Fig10LargeScale regenerates Fig. 10: strong scaling on 128..512 ranks.
func Fig10LargeScale() *Table {
	t := &Table{
		ID:     "fig10",
		Title:  "Large-scale strong scaling, simulated time in ms (128..512 ranks)",
		Paper:  "cached up to -73% on R-MAT S30 (cache only 12% of CSR); async up to 3.6x faster than TriC",
		Header: []string{"dataset", "ranks", "non-cached", "cached", "tric", "cache gain", "tric/nc"},
	}
	for _, c := range fig10Cases {
		g := gen.MustLoad(c.name)
		for _, p := range []int{128, 256, 512} {
			r := runSeries(g, p, !c.tricBufOnly, c.tricBufOnly)
			tricTime := r.TriC
			if c.tricBufOnly {
				tricTime = r.TriCBuf
			}
			t.AddRow(c.name, p, ms(r.NonCached), ms(r.Cached), ms(tricTime),
				fmt.Sprintf("%+.0f%%", 100*(r.Cached-r.NonCached)/r.NonCached),
				fmt.Sprintf("%.1fx", tricTime/r.NonCached))
		}
	}
	t.Notes = append(t.Notes,
		"rmat-s18-ef16 runs TriC-Buffered: the paper notes plain TriC runs out of memory on large scale-free graphs",
		"paper speedups 128→512: R-MAT S30 3.4x, uk-2005 1.8x (cached), wiki-en 1.8x (cached)")
	return t
}

// AblationOverlap regenerates A2: double buffering on/off.
func AblationOverlap() *Table {
	t := &Table{
		ID:     "ablation-overlap",
		Title:  "A2: double-buffering ablation (" + fig7Dataset + ")",
		Paper:  "§III-A overlaps the next edge's communication with the current edge's computation",
		Header: []string{"ranks", "overlap on (ms)", "overlap off (ms)", "gain"},
	}
	g := gen.MustLoad(fig7Dataset)
	for _, p := range []int{4, 16, 64} {
		on := baseEngineOptions(p)
		off := baseEngineOptions(p)
		off.DoubleBuffer = false
		ron, err := lcc.Run(g, on)
		if err != nil {
			panic(err)
		}
		roff, err := lcc.Run(g, off)
		if err != nil {
			panic(err)
		}
		t.AddRow(p, ms(ron.SimTime), ms(roff.SimTime),
			fmt.Sprintf("%.1f%%", 100*(roff.SimTime-ron.SimTime)/roff.SimTime))
	}
	t.Notes = append(t.Notes,
		"§IV-D-2 predicts modest gains: communication dominates, so overlapping one edge cannot hide most of it")
	return t
}

// AblationCyclic regenerates A3 (the paper's future-work direction i and
// §III-A discussion): cyclic vs block 1D distribution on a degree-ordered
// graph, where block partitioning concentrates the hubs.
func AblationCyclic() *Table {
	t := &Table{
		ID:     "ablation-cyclic",
		Title:  "A3: block vs cyclic vs arc-balanced 1D distribution on a degree-ordered BA graph (16 ranks)",
		Paper:  "§III-A: skewed degrees imbalance block 1D; cyclic balances (Lumsdaine et al.); §IV-D-2 blames imbalance for up to 25% runtime spread",
		Header: []string{"scheme", "sim time (ms)", "imbalance", "edge cut"},
	}
	// Degree-ordered: BA assigns low ids to hubs; skip the random
	// relabeling the paper would apply so the imbalance is visible.
	raw := gen.BarabasiAlbert(1<<14, 16, graph.Undirected, 77)
	g := graph.RemoveLowDegreeIter(raw)
	for _, scheme := range []part.Scheme{part.Block, part.Cyclic, part.BlockArcs} {
		opt := baseEngineOptions(16)
		opt.Scheme = scheme
		res, err := lcc.Run(g, opt)
		if err != nil {
			panic(err)
		}
		pt, err := part.Build(scheme, g, 16)
		if err != nil {
			panic(err)
		}
		t.AddRow(scheme.String(), ms(res.SimTime), part.Imbalance(g, pt), part.EdgeCut(g, pt))
	}
	t.Notes = append(t.Notes,
		"expect: cyclic and block-arcs both erase the imbalance; block-arcs keeps contiguous ranges",
		"(cheap ownership arithmetic) at a similar edge cut — the practical fix for §IV-D-2")
	return t
}

// AblationScores regenerates A4 — the paper's future-work direction (iii):
// alternative application-specific eviction scores, compared under the
// Fig. 8 eviction-pressure setup.
func AblationScores() *Table {
	t := &Table{
		ID:     "ablation-scores",
		Title:  "A4: C_adj eviction score policies (" + fig7Dataset + ", 16 ranks, C_adj = 25% of non-local)",
		Paper:  "§VI future work iii: study other application-specific scores; §III-B-2 argues degree predicts reuse",
		Header: []string{"policy", "C_adj miss rate", "avg remote read (µs)", "sim time (ms)"},
	}
	g := gen.MustLoad(fig7Dataset)
	const p = 16
	nonLocal := 4 * g.NumArcs() * (p - 1) / p
	for _, policy := range []lcc.ScorePolicy{
		lcc.ScoreLRU, lcc.ScoreDegree, lcc.ScoreCostBenefit, lcc.ScoreDegreeRecency,
	} {
		opt := baseEngineOptions(p)
		opt.Caching = true
		opt.OffsetsCacheBytes, _ = paperCacheBytes(g)
		opt.AdjCacheBytes = nonLocal / 4
		opt.AdjScorePolicy = policy
		res, err := lcc.Run(g, opt)
		if err != nil {
			panic(err)
		}
		_, adjRate := res.CacheMissRates()
		t.AddRow(policy.String(), adjRate, res.AvgRemoteReadTime()/1e3, res.SimTime/1e6)
	}
	t.Notes = append(t.Notes,
		"expect: degree-based policies beat LRU; cost-benefit (favouring small entries) loses — small entries are the rarely-reused ones")
	return t
}

func ms(ns float64) string {
	if ns <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", ns/1e6)
}
