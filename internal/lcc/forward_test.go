package lcc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
)

func randomUndirected(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := graph.V(rng.Intn(n))
		v := graph.V(rng.Intn(n))
		if u != v {
			edges = append(edges, graph.Edge{Src: u, Dst: v})
		}
	}
	g, err := graph.Build(graph.Undirected, n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestForwardMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		g := randomUndirected(rng, 24, 70)
		want := BruteForceLCC(g)
		got, err := ForwardLCC(g)
		if err != nil {
			t.Fatal(err)
		}
		if got.Triangles != want.Triangles {
			t.Fatalf("trial %d: forward triangles = %d, brute force = %d", trial, got.Triangles, want.Triangles)
		}
		for v := range want.PerVertex {
			if got.PerVertex[v] != want.PerVertex[v] {
				t.Fatalf("trial %d: vertex %d: forward t=%d, brute force t=%d", trial, v, got.PerVertex[v], want.PerVertex[v])
			}
			if got.LCC[v] != want.LCC[v] {
				t.Fatalf("trial %d: vertex %d: forward lcc=%g, want %g", trial, v, got.LCC[v], want.LCC[v])
			}
		}
	}
}

func TestForwardMatchesSharedOnRMAT(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, graph.Undirected, 99))
	want := SharedLCC(g, intersect.MethodHybrid)
	got, err := ForwardLCC(g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Triangles != want.Triangles {
		t.Fatalf("forward = %d triangles, shared = %d", got.Triangles, want.Triangles)
	}
}

func TestForwardRejectsDirected(t *testing.T) {
	g, err := graph.Build(graph.Directed, 3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ForwardLCC(g); err == nil {
		t.Fatal("ForwardLCC accepted a directed graph")
	}
	if _, err := Orient(g); err == nil {
		t.Fatal("Orient accepted a directed graph")
	}
	if _, _, err := DegeneracyOrder(g); err == nil {
		t.Fatal("DegeneracyOrder accepted a directed graph")
	}
}

func TestOrientationInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomUndirected(rng, 60, 300)
	o, err := Orient(g)
	if err != nil {
		t.Fatal(err)
	}
	if o.NumArcs() != g.NumEdges() {
		t.Fatalf("orientation has %d arcs, want m=%d", o.NumArcs(), g.NumEdges())
	}
	for u := 0; u < g.NumVertices(); u++ {
		outU := o.Out(graph.V(u))
		for i, v := range outU {
			if i > 0 && outU[i-1] >= v {
				t.Fatalf("out(%d) not strictly sorted", u)
			}
			du, dv := g.OutDegree(graph.V(u)), g.OutDegree(v)
			if du > dv || (du == dv && graph.V(u) > v) {
				t.Fatalf("arc %d→%d violates degree order (deg %d vs %d)", u, v, du, dv)
			}
			// Antisymmetry: v must not also point to u.
			for _, w := range o.Out(v) {
				if w == graph.V(u) {
					t.Fatalf("both %d→%d and %d→%d oriented", u, v, v, u)
				}
			}
		}
	}
}

func TestListTriangles(t *testing.T) {
	// K4 has exactly 4 triangles.
	var edges []graph.Edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, graph.Edge{Src: graph.V(i), Dst: graph.V(j)})
		}
	}
	g, err := graph.Build(graph.Undirected, 4, edges)
	if err != nil {
		t.Fatal(err)
	}
	tris, err := ListTriangles(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 4 {
		t.Fatalf("K4 has %d listed triangles, want 4", len(tris))
	}
	seen := map[Triangle]bool{}
	for _, tr := range tris {
		if seen[tr] {
			t.Fatalf("duplicate triangle %v", tr)
		}
		seen[tr] = true
		if !g.HasEdge(tr.U, tr.V) || !g.HasEdge(tr.V, tr.W) || !g.HasEdge(tr.U, tr.W) {
			t.Fatalf("listed non-triangle %v", tr)
		}
	}
}

func TestListTrianglesCountsMatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomUndirected(rng, 20, 60)
		tris, err := ListTriangles(g)
		if err != nil {
			return false
		}
		res, err := ForwardLCC(g)
		if err != nil {
			return false
		}
		return int64(len(tris)) == res.Triangles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDegeneracyOrder(t *testing.T) {
	// A triangle with a pendant: degeneracy 2.
	g, err := graph.Build(graph.Undirected, 4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}, {Src: 2, Dst: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	order, k, err := DegeneracyOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("degeneracy = %d, want 2", k)
	}
	if len(order) != 4 {
		t.Fatalf("order has %d entries, want 4", len(order))
	}
	seen := map[graph.V]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("order repeats vertex %d", v)
		}
		seen[v] = true
	}
}

func TestDegeneracyTree(t *testing.T) {
	// A path: degeneracy 1.
	g, err := graph.Build(graph.Undirected, 5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, k, err := DegeneracyOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("path degeneracy = %d, want 1", k)
	}
}

func TestOrientByOrderMatchesCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		g := randomUndirected(rng, 30, 120)
		want, err := ForwardLCC(g)
		if err != nil {
			t.Fatal(err)
		}
		order, _, err := DegeneracyOrder(g)
		if err != nil {
			t.Fatal(err)
		}
		o, err := OrientByOrder(g, order)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := CountOriented(o)
		if got != want.Triangles {
			t.Fatalf("trial %d: degeneracy-oriented count = %d, want %d", trial, got, want.Triangles)
		}
		// A random permutation must also preserve the count: any acyclic
		// orientation keeps exactly one wedge per triangle.
		perm := make([]graph.V, g.NumVertices())
		for i := range perm {
			perm[i] = graph.V(i)
		}
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		o2, err := OrientByOrder(g, perm)
		if err != nil {
			t.Fatal(err)
		}
		got2, _ := CountOriented(o2)
		if got2 != want.Triangles {
			t.Fatalf("trial %d: random-order count = %d, want %d", trial, got2, want.Triangles)
		}
	}
}

func TestOrientByOrderRejectsBadOrder(t *testing.T) {
	g, err := graph.Build(graph.Undirected, 3, []graph.Edge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OrientByOrder(g, []graph.V{0, 1}); err == nil {
		t.Fatal("accepted short order")
	}
	if _, err := OrientByOrder(g, []graph.V{0, 1, 1}); err == nil {
		t.Fatal("accepted non-permutation")
	}
}

func TestMaxOutDegreeBound(t *testing.T) {
	// Star graph: the centre has degree n-1 but the degree orientation
	// points every leaf at the centre... leaves have degree 1 < centre,
	// so arcs go leaf→centre and the centre's out-degree is 0.
	n := 50
	var edges []graph.Edge
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: graph.V(i)})
	}
	g, err := graph.Build(graph.Undirected, n, edges)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Orient(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.MaxOutDegree(); got != 1 {
		t.Fatalf("star max oriented out-degree = %d, want 1", got)
	}
	if len(o.Out(0)) != 0 {
		t.Fatalf("star centre out-degree = %d, want 0", len(o.Out(0)))
	}
}
