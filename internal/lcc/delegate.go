package lcc

import (
	"sort"

	"repro/internal/graph"
)

// This file implements static vertex delegation, the classical alternative
// to the paper's dynamic RMA caching. The abstract frames the contribution
// as "achieving vertex delegation by a caching mechanism": instead of
// *predicting* which vertices are hot and replicating their adjacency
// lists everywhere before the run (delegation), CLaMPI *discovers* them —
// each rank's cache converges on its own working set. The A11 ablation
// puts the two head to head under the same per-rank memory budget.
//
// Delegation here is deliberately the strong form of the baseline: the
// replica set is chosen with exact global degree knowledge (an oracle a
// real system would have to approximate), and the replication traffic is
// excluded from the measured time, exactly as the paper excludes the graph
// distribution phase (§IV-A). Even against that oracle, caching holds its
// ground wherever reuse is dynamic — and the oracle still pays its memory
// on every rank for vertices that particular rank never touches.

// Delegation is an immutable set of replicated adjacency lists, shared
// read-only by every rank. The zero value delegates nothing.
type Delegation struct {
	lists map[graph.V][]graph.V
	bytes int
}

// delegationEntryOverhead is the per-entry bookkeeping charge (index slot
// plus bounds), mirroring the 16-byte (start,end) pair a cached offsets
// entry occupies, so delegation and cache budgets are comparable.
const delegationEntryOverhead = 16

// BuildDelegation selects the vertices with the highest in-degree — the
// number of adjacency lists that name them, which is what the expected
// remote-access count of §III-B tracks — greedily until the per-rank byte
// budget is exhausted, and returns their replicated out-adjacency lists.
// Each entry charges 4 bytes per neighbour plus a 16-byte header. Ties are
// broken by vertex id so the selection is deterministic.
func BuildDelegation(g graph.Store, budgetBytes int) *Delegation {
	d := &Delegation{lists: make(map[graph.V][]graph.V)}
	if budgetBytes <= 0 {
		return d
	}
	n := g.NumVertices()
	indeg := storeInDegrees(g)
	order := make([]graph.V, n)
	for i := range order {
		order[i] = graph.V(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := indeg[order[i]], indeg[order[j]]
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	for _, v := range order {
		cost := delegationEntryOverhead + 4*g.OutDegree(v)
		if d.bytes+cost > budgetBytes {
			// Degrees only shrink from here; the next smaller entry
			// might still fit, so keep scanning until even the header
			// would not.
			if d.bytes+delegationEntryOverhead >= budgetBytes {
				break
			}
			continue
		}
		// AdjInto with a nil buffer aliases the CSR for plain stores and
		// decodes a fresh owned copy for compressed ones; either way the
		// replica is stable for the lifetime of the delegation.
		d.lists[v] = g.AdjInto(v, nil)
		d.bytes += cost
	}
	return d
}

// storeInDegrees computes per-vertex in-degrees for any Store; plain
// graphs answer from their own (possibly cached) scan.
func storeInDegrees(g graph.Store) []int {
	if pg, ok := g.(*graph.Graph); ok {
		return pg.InDegrees()
	}
	in := make([]int, g.NumVertices())
	var buf []graph.V
	for v := 0; v < len(in); v++ {
		buf = g.AdjInto(graph.V(v), buf)
		for _, u := range buf {
			in[u]++
		}
	}
	return in
}

// Lookup returns the replicated adjacency list of v, if v was delegated.
func (d *Delegation) Lookup(v graph.V) ([]graph.V, bool) {
	if d == nil || d.lists == nil {
		return nil, false
	}
	l, ok := d.lists[v]
	return l, ok
}

// Len returns the number of delegated vertices.
func (d *Delegation) Len() int {
	if d == nil {
		return 0
	}
	return len(d.lists)
}

// Bytes returns the per-rank memory the delegation occupies, including the
// per-entry overhead.
func (d *Delegation) Bytes() int {
	if d == nil {
		return 0
	}
	return d.bytes
}
