package lcc

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/part"
	"repro/internal/rma"
)

// This file implements replicated-groups 1D distribution — "1.5D" — the
// paper's future-work direction (i): "distribution schema that have lower
// communication costs than 1D distribution", citing the 2.5D matrix
// algorithms of Solomonik & Demmel [41]. The 2.5D idea is to spend memory
// to buy communication: replicate the data c times and let each replica do
// 1/c of the work against a coarser partition.
//
// Applied to the paper's 1D vertex distribution with p ranks and
// replication factor c (c | p): the ranks form c groups of q = p/c slots.
// The graph is partitioned q ways — much coarser than the p-way 1D
// partition — and group i's slot j holds a full copy of partition j. The
// owned vertices of partition j are interleaved over the c replicas
// (local index ≡ i mod c), so every vertex is scored by exactly one rank
// and the result needs no reduction: the engine stays fully asynchronous,
// preserving the paper's central design property.
//
// What changes is the edge cut each fetch sees: a remote neighbour is one
// that falls outside a 1/q slice of the graph instead of a 1/p slice, so
// the remote-read fraction drops from ~(p-1)/p toward ~(q-1)/q, and every
// remote get stays inside the rank's own group (slot s of group i reads
// from rank i·q+s). The price is memory: each rank stores n/q vertices
// instead of n/p — exactly c times more, the 2.5D trade. The A13 ablation
// sweeps c at fixed p.

// ReplicatedOptions configure a replicated-groups run.
type ReplicatedOptions struct {
	Options
	// Replication is the number of graph copies c. It must divide Ranks.
	// c = 1 reduces to the plain 1D engine layout.
	Replication int
}

// RunReplicated executes LCC over the replicated-groups distribution.
// Results are bit-identical to Run's; only the communication pattern and
// the per-rank memory differ.
func RunReplicated(g graph.Store, opt ReplicatedOptions) (*Result, error) {
	return RunReplicatedCtx(context.Background(), g, opt)
}

// RunReplicatedCtx is RunReplicated under supervision, with the same
// cancellation, panic-isolation and crash-stop contract as RunCtx.
func RunReplicatedCtx(ctx context.Context, g graph.Store, opt ReplicatedOptions) (*Result, error) {
	n := g.NumVertices()
	opt.Options = opt.Options.withDefaults(n)
	c := opt.Replication
	if c == 0 {
		c = 1
	}
	if c < 1 || opt.Ranks%c != 0 {
		return nil, fmt.Errorf("lcc: replication factor %d does not divide %d ranks", c, opt.Ranks)
	}
	q := opt.Ranks / c
	pt, err := part.Build(opt.Scheme, g, q)
	if err != nil {
		return nil, err
	}
	slots := extractLocals(g, pt, opt.Storage, opt.MemBudgetBytes)

	// Rank r = group·q + slot exposes partition `slot` (makeGraphWindows
	// wraps the slot index modulo len(slots)). The per-rank window sizes
	// — and hence the memory accounting of the 2.5D trade — are identical
	// across replicas of a slot; the host-side storage is now shared,
	// which is exactly the zero-copy point.
	comm := rma.NewCommWorkers(opt.Ranks, opt.Model, opt.Workers)
	opt.configureCharges(comm)
	wOff, wAdj := makeGraphWindows(comm, slots)
	resolve := buildResolve(pt)
	deleg := BuildDelegation(g, opt.DelegateBytes)

	lccOut := make([]float64, n)
	triOut := make([]int64, opt.Ranks)
	stats := make([]RankStats, opt.Ranks)

	ranks, err := comm.RunCtx(ctx, func(r *rma.Rank) {
		group, slot := r.ID()/q, r.ID()%q
		w := newWorker(r, g.Kind(), pt, slots[slot], wOff, wAdj, resolve, opt.Options)
		w.deleg = deleg
		// All fetches stay inside the rank's own group: the shared
		// resolve table yields slot coordinates, and ownerBase maps a
		// slot to the replica this rank reads from.
		w.slot, w.ownerBase = slot, group*q
		defer w.close()
		sumT := w.runSlice(lccOut, slot, group, c)
		w.close()
		triOut[r.ID()] = sumT
		stats[r.ID()] = w.stats()
	})
	if err != nil {
		return nil, err
	}

	res := &Result{LCC: lccOut, PerRank: stats, SimTime: rma.MaxClock(ranks),
		DelegatedVertices: deleg.Len(), DelegationBytes: deleg.Bytes()}
	for _, t := range triOut {
		res.SumT += t
	}
	res.Triangles = TriangleCount(g.Kind(), res.SumT)
	return res, nil
}

// runSlice executes Algorithm 3 for the 1/c interleaved share of the
// rank's partition: local indices li ≡ phase (mod c). The walk reuses the
// standard fetch pipeline; skipped vertices never issue communication.
func (w *worker) runSlice(lccOut []float64, slot, phase, c int) int64 {
	nLocal := w.lc.NumLocal()
	perVertexT := make([]int64, nLocal)
	w.edgeFilter = func(li int, vj graph.V) bool { return li%c == phase }

	w.forEachEdge(func(li int, vj graph.V, adjJ []graph.V) {
		adjI := w.adjOwned(li)
		if w.kind == graph.Undirected {
			adjJ = intersect.UpperSlice(adjJ, vj)
		}
		cnt, ops := w.its.Count(w.opt.Method, adjI, adjJ)
		w.r.Compute(ops + 4)
		perVertexT[li] += int64(cnt)
	})

	var sumT int64
	for li := phase; li < nLocal; li += c {
		v := w.pt.VertexAt(slot, li)
		d := w.lc.DegreeOf(li)
		lccOut[v] = Score(w.kind, perVertexT[li], d)
		sumT += perVertexT[li]
		w.r.Compute(2)
	}
	return sumT
}

// ReplicaWindowBytes reports the per-rank window memory of a replicated
// run with the given parameters — the cost side of the 2.5D trade.
func ReplicaWindowBytes(g graph.Store, ranks, replication int) (int64, error) {
	if replication < 1 || ranks%replication != 0 {
		return 0, fmt.Errorf("lcc: replication factor %d does not divide %d ranks", replication, ranks)
	}
	q := ranks / replication
	// Max over slots of (16 bytes per owned vertex + 4 per arc).
	pt, err := part.Build(part.Block, g, q)
	if err != nil {
		return 0, err
	}
	var max int64
	for s := 0; s < q; s++ {
		lo, hi := pt.Range(s)
		var arcs int64
		for v := lo; v < hi; v++ {
			arcs += int64(g.OutDegree(v))
		}
		b := 16*int64(hi-lo) + 4*arcs
		if b > max {
			max = b
		}
	}
	return max, nil
}
