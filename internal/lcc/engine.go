package lcc

import (
	"context"
	"fmt"
	"math"

	"repro/internal/clampi"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/part"
	"repro/internal/rma"
	"repro/internal/sched"
)

// Options configure one distributed run (Algorithm 3 + §III-B caching).
type Options struct {
	// Ranks is the number of computing nodes p.
	Ranks int
	// Workers bounds how many simulated ranks execute concurrently on
	// host goroutines (internal/sched). 0 selects GOMAXPROCS. Every
	// result — SimTime float bits, triangle counts, LCC scores, cache
	// hit counts — is bit-identical at any worker count; Workers only
	// trades host wall-clock for cores (DESIGN.md §4).
	Workers int
	// Scheme is the 1D vertex distribution; Block is the paper's default.
	Scheme part.Scheme
	// Model is the machine calibration; zero value selects the default
	// Cray-Aries-like model.
	Model rma.CostModel
	// Method selects the intersection kernel; default MethodHybrid
	// (§III-C: the hybrid always beat pure SSI or binary search).
	Method intersect.Method
	// DoubleBuffer overlaps the communication of the next edge with the
	// processing of the current one (§III-A). The A2 ablation turns it
	// off.
	DoubleBuffer bool

	// Caching enables the two CLaMPI caches, C_offsets and C_adj.
	Caching bool
	// OffsetsCacheBytes / AdjCacheBytes are the per-rank buffer
	// capacities. The Fig. 9/10 configuration reserves 16 GiB per node
	// split as 0.8·|V| bytes for C_offsets and the rest for C_adj.
	OffsetsCacheBytes int
	AdjCacheBytes     int
	// OffsetsBuckets / AdjBuckets override the hash-table sizing; 0
	// applies the §III-B-1 rule (linear in capacity for C_offsets,
	// power-law-discounted for C_adj with α=2).
	OffsetsBuckets int
	AdjBuckets     int
	// DegreeScores switches C_adj eviction from LRU+positional to the
	// paper's application-defined score: the remote vertex's out-degree
	// (§III-B-2). Equivalent to AdjScorePolicy = ScoreDegree.
	DegreeScores bool
	// AdjScorePolicy selects the C_adj eviction score; see ScorePolicy.
	// The non-default policies implement the paper's future-work
	// direction (iii): "studying other application-specific scores for
	// cached entries".
	AdjScorePolicy ScorePolicy
	// Adaptive enables CLaMPI's hash-table auto-tuning.
	Adaptive bool
	// AdjCacheMaxBytes additionally lets the adaptive heuristic grow the
	// C_adj memory buffer (doubling under sustained capacity evictions)
	// up to this many bytes. 0 keeps the buffer fixed at AdjCacheBytes.
	AdjCacheMaxBytes int

	// DelegateBytes enables static vertex delegation (the A11 ablation):
	// before the run, the adjacency lists of the highest in-degree
	// vertices are replicated on every rank, greedily up to this many
	// bytes per rank, and served at local-memory cost. The replication
	// traffic is excluded from the measured time, as the paper excludes
	// the distribution phase (§IV-A). Composable with Caching: delegated
	// vertices never reach the caches.
	DelegateBytes int

	// OnRemoteRead, when set, observes every remote adjacency fetch
	// (before caching) as (rank, target vertex). Rank r only ever
	// reports with its own id, so per-rank storage needs no locking.
	OnRemoteRead func(rank int, target graph.V)

	// ChargeObserver, when set, observes every modeled charge of the run
	// at its fold point, in canonical per-rank order (rma.ChargeObserver).
	// Diagnostic surface: the charge-tape equivalence tests record and
	// diff whole runs with it. Observers run on rank goroutines.
	ChargeObserver rma.ChargeObserver
	// DeferredCharges queues every charge on the rank's tape and folds it
	// at the next observation of simulated time instead of at its
	// canonical point. Results are bit-identical either way (the
	// charge-tape contract, DESIGN.md §6); the deferred mode is the
	// verification schedule the equivalence tests diff against the
	// default.
	DeferredCharges bool

	// Faults installs a deterministic fault schedule on the world
	// (internal/fault): seeded transient RMA failures, latency spikes,
	// stall windows and CLaMPI unavailability, recovered by the
	// substrate's retry/backoff machinery and the engine's cache
	// degradation ladder. Results are bit-identical to the fault-free
	// run — faults cost simulated time, never correctness. nil = off.
	Faults *fault.Spec

	// Progress, when set, receives out-of-band run-progress ticks
	// (sched.Progress): one per masked checkpoint poll per rank, one per
	// barrier round close. The serving layer's watchdog samples it to
	// detect wedged runs. Host-side diagnostics only — arming it cannot
	// perturb a simulated bit. nil = off.
	Progress *sched.Progress

	// Storage selects the host-side representation of the per-rank
	// adjacency plane (see StorageMode). Purely host-side: the windows'
	// byte images, charge tape and cache keys are pinned by the model
	// plane, so every simulated result is bit-identical across modes
	// (DESIGN.md §9); only host memory and host wall-clock differ.
	Storage StorageMode
	// MemBudgetBytes caps the host bytes the extracted per-rank CSRs may
	// occupy under StorageAuto: when the plain layout would overshoot it,
	// the engine stores adjacency varint/delta-compressed instead.
	// 0 means no budget (plain). Ignored outside StorageAuto.
	MemBudgetBytes int64
}

// StorageMode selects how the engine stores the per-rank adjacency lists
// on the host. The simulated machine is oblivious to the choice: windows
// keep their plain-image byte geometry regardless (rma.CompressedVertices).
type StorageMode uint8

const (
	// StorageAuto picks the cheapest representation that fits
	// Options.MemBudgetBytes — plain when no budget is set.
	StorageAuto StorageMode = iota
	// StoragePlain forces plain CSR locals (aliased window views,
	// zero decode cost).
	StoragePlain
	// StorageCompressed forces varint/delta-compressed locals: ~2-3×
	// less host memory for the adjacency plane, one bounded decode per
	// fetched list.
	StorageCompressed
)

func (m StorageMode) String() string {
	switch m {
	case StorageAuto:
		return "auto"
	case StoragePlain:
		return "plain"
	case StorageCompressed:
		return "compressed"
	default:
		return "unknown"
	}
}

// ParseStorageMode is the inverse of StorageMode.String. The empty string
// selects StorageAuto.
func ParseStorageMode(s string) (StorageMode, error) {
	switch s {
	case "", "auto":
		return StorageAuto, nil
	case "plain":
		return StoragePlain, nil
	case "compressed":
		return StorageCompressed, nil
	default:
		return StorageAuto, fmt.Errorf("lcc: unknown storage mode %q", s)
	}
}

// extractLocals builds every rank's LocalCSR in the representation the
// options select. Auto mode estimates the plain footprint — 4 bytes per
// arc of adjacency plus 24 per vertex of offsets and (start,end) pairs —
// and falls back to compressed when a budget is set and plain would
// overshoot it.
func extractLocals(g graph.Store, pt *part.Partition, storage StorageMode, budget int64) []*part.LocalCSR {
	switch storage {
	case StoragePlain:
		return part.ExtractAll(g, pt)
	case StorageCompressed:
		return part.ExtractAllCompressed(g, pt)
	}
	if budget > 0 {
		plain := 4*int64(g.NumArcs()) + 24*int64(g.NumVertices())
		if plain > budget {
			return part.ExtractAllCompressed(g, pt)
		}
	}
	return part.ExtractAll(g, pt)
}

// configureCharges applies the diagnostic charge-plane options to a world.
func (o Options) configureCharges(comm *rma.Comm) {
	if o.ChargeObserver != nil {
		comm.SetChargeObserver(o.ChargeObserver)
	}
	if o.DeferredCharges {
		comm.SetDeferredCharges(true)
	}
	if o.Faults != nil {
		comm.SetFaults(o.Faults)
	}
	if o.Progress != nil {
		comm.SetProgress(o.Progress)
	}
}

// ScorePolicy selects how C_adj entries are scored for eviction.
type ScorePolicy uint8

const (
	// ScoreLRU keeps CLaMPI's default: least-recently-used weighted by
	// the positional (anti-fragmentation) score.
	ScoreLRU ScorePolicy = iota
	// ScoreDegree is the paper's §III-B-2 extension: the remote vertex's
	// out-degree, known after the offsets get, predicts reuse
	// (Observation 3.1).
	ScoreDegree
	// ScoreCostBenefit scores an entry by the network time a future hit
	// saves per cache byte it occupies, (α + s·β)/s. It favours small
	// entries — a plausible-sounding alternative the A4 ablation shows
	// to be inferior to degree scores for LCC, since small entries are
	// exactly the rarely-reused ones (future work iii).
	ScoreCostBenefit
	// ScoreDegreeRecency refreshes the degree score with a small recency
	// bonus on every access, so equally-hubby entries evict oldest-first
	// (future work iii).
	ScoreDegreeRecency
)

func (s ScorePolicy) String() string {
	switch s {
	case ScoreLRU:
		return "lru+positional"
	case ScoreDegree:
		return "degree"
	case ScoreCostBenefit:
		return "cost-benefit"
	case ScoreDegreeRecency:
		return "degree+recency"
	default:
		return "unknown"
	}
}

func (o Options) withDefaults(n int) Options {
	if o.Ranks == 0 {
		o.Ranks = 1
	}
	if o.Model == (rma.CostModel{}) {
		o.Model = rma.DefaultCostModel()
	}
	if o.DegreeScores && o.AdjScorePolicy == ScoreLRU {
		o.AdjScorePolicy = ScoreDegree
	}
	// Method zero value is MethodSSI; the engine's conventional default
	// is the hybrid, selected explicitly by callers that want it. We keep
	// the zero value meaningful (SSI) and do not override it here.
	if o.Caching {
		if o.OffsetsBuckets == 0 {
			o.OffsetsBuckets = clampOne(o.OffsetsCacheBytes / 16)
		}
		if o.AdjBuckets == 0 {
			o.AdjBuckets = adjBuckets(n, o.AdjCacheBytes)
		}
	}
	return o
}

func clampOne(x int) int {
	if x < 1 {
		return 1
	}
	return x
}

// adjBuckets applies the §III-B-1 sizing rule for C_adj: with a power-law
// degree distribution, a cache holding a fraction f of the graph stores
// about n·f^α entries; the paper found α = 2 a good approximation.
func adjBuckets(n, capacity int) int {
	if capacity <= 0 {
		return 1
	}
	// Approximate the graph's adjacency bytes by 4 bytes per arc; the
	// caller knows the real value, but the rule only needs the order of
	// magnitude. We conservatively use n·32 (edge factor 8), computed in
	// float throughout: the integer product n*32 would overflow for very
	// large n, and the rule only ever needs the ratio.
	f := float64(capacity) / (float64(n) * 32)
	if f > 1 {
		f = 1
	}
	b := int(float64(n) * f * f)
	return clampOne(b)
}

// RankStats reports one rank's activity after a run.
type RankStats struct {
	Rank           int
	SimTime        float64 // rank finish time, ns
	ComputeTime    float64 // modeled compute, ns
	CommTime       float64 // SimTime - ComputeTime: everything else is communication
	RemoteReads    int64   // adjacency fetches that crossed ranks
	LocalReads     int64   // adjacency fetches served locally
	DelegatedReads int64   // fetches served from the static delegation replica
	RMA            rma.Counters
	OffsetsCache   clampi.Stats // zero value when caching is off
	AdjCache       clampi.Stats
}

// Result is the output of a distributed run.
type Result struct {
	LCC       []float64 // global, indexed by vertex id
	Triangles int64     // global triangle count (see TriangleCount)
	SumT      int64     // Σ t_i, the raw closed-triplet total
	SimTime   float64   // slowest rank's finish time, ns (the paper's metric)
	PerRank   []RankStats

	// DelegatedVertices / DelegationBytes report the static replica each
	// rank holds when Options.DelegateBytes is set; zero otherwise.
	DelegatedVertices int
	DelegationBytes   int
}

// RemoteReadFraction returns remote/(remote+local) adjacency fetches — the
// quantity the paper tracks as p grows (66%→98% for R-MAT S21; §IV-D-2).
func (res *Result) RemoteReadFraction() float64 {
	var rem, loc int64
	for _, s := range res.PerRank {
		rem += s.RemoteReads
		loc += s.LocalReads + s.DelegatedReads
	}
	if rem+loc == 0 {
		return 0
	}
	return float64(rem) / float64(rem+loc)
}

// HitRate returns the global C_adj hit rate over all ranks — the headline
// caching metric of Figs. 7/8. It is 0 for non-cached runs.
func (res *Result) HitRate() float64 {
	var hits, misses int64
	for _, s := range res.PerRank {
		hits += s.AdjCache.Hits
		misses += s.AdjCache.Misses
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// CommFraction returns the communication share of the slowest rank's time.
func (res *Result) CommFraction() float64 {
	if res.SimTime == 0 {
		return 0
	}
	worst := 0.0
	for _, s := range res.PerRank {
		if s.SimTime == res.SimTime {
			worst = s.CommTime / s.SimTime
		}
	}
	return worst
}

// Run executes the fully asynchronous distributed LCC computation
// (Algorithm 3). The graph is 1D-partitioned; each rank exposes its local
// CSR in two RMA windows (offsets as (start,end) uint64 pairs, adjacencies
// as uint32 ids), opens passive-target access epochs, and walks its owned
// vertices reading remote adjacency lists with paired one-sided gets —
// optionally through CLaMPI caches. No rank ever synchronizes with another
// during the computation.
func Run(g graph.Store, opt Options) (*Result, error) {
	return RunCtx(context.Background(), g, opt)
}

// RunCtx is Run under supervision: the setup is snapshotted (NewSnapshot)
// and the rank bodies execute under rma.Comm.RunCtx, so ctx cancellation
// unwinds the run at its checkpoints (error wraps sched.ErrRunCanceled), a
// rank panic surfaces as *sched.PanicError instead of killing the process,
// and a fail-fast crash-stop fault returns its *fault.CrashError. Callers
// that keep the graph loaded across queries should build the Snapshot once
// and call its RunCtx directly; this entry point rebuilds it per run.
func RunCtx(ctx context.Context, g graph.Store, opt Options) (*Result, error) {
	opt = opt.withDefaults(g.NumVertices())
	if opt.Ranks < 1 {
		return nil, fmt.Errorf("lcc: invalid rank count %d", opt.Ranks)
	}
	snap, err := NewSnapshotOpts(g, SnapshotOptions{
		Ranks: opt.Ranks, Scheme: opt.Scheme, DelegateBytes: opt.DelegateBytes,
		Storage: opt.Storage, MemBudgetBytes: opt.MemBudgetBytes,
	})
	if err != nil {
		return nil, err
	}
	return snap.RunCtx(ctx, opt)
}

// RunDataset is Run over a named dataset from the registry.
func RunDataset(name string, opt Options) (*Result, error) {
	g, err := gen.Load(name)
	if err != nil {
		return nil, err
	}
	return Run(g, opt)
}

// makeGraphWindows builds the two typed, read-only RMA windows every
// engine exposes: (start,end) offset pairs as native []uint64 and the
// adjacency arrays as native []graph.V (aliasing the partitions' own CSR
// storage — the O(|E|) encode copy of the byte-window design is gone).
// Each rank exposes (start,end) pairs rather than the raw offsets array:
// one 16-byte get fetches both bounds of an adjacency list (Fig. 3 reads
// offsets[li] and offsets[li+1] in one operation).
func makeGraphWindows(comm *rma.Comm, locals []*part.LocalCSR) (wOff, wAdj *rma.Window) {
	pairs := make([][]uint64, len(locals))
	for s, lc := range locals {
		pairs[s] = offsetPairs(lc)
	}
	return windowsFromPairs(comm, locals, pairs)
}

// windowsFromPairs is makeGraphWindows with the pair arrays precomputed —
// the snapshot path reuses them across runs. Compressed locals get a
// CompressedVertices adjacency window: same name, same byte geometry, same
// charges and cache keys — only the host-side backing store differs.
func windowsFromPairs(comm *rma.Comm, locals []*part.LocalCSR, pairs [][]uint64) (wOff, wAdj *rma.Window) {
	p := comm.NumRanks()
	// Replicas of a slot (the 1.5D engine passes fewer locals than ranks)
	// share one pairs array, like they share the CSR storage itself.
	offs := make([][]uint64, p)
	for r := 0; r < p; r++ {
		offs[r] = pairs[r%len(locals)]
	}
	wOff = comm.CreateUint64Window("offsets", offs)
	if locals[0].Compressed() {
		comps := make([]*graph.CompressedAdj, p)
		for r := 0; r < p; r++ {
			comps[r] = locals[r%len(locals)].Comp
		}
		return wOff, comm.CreateCompressedVertexWindow("adjacencies", comps)
	}
	adjs := make([][]graph.V, p)
	for r := 0; r < p; r++ {
		adjs[r] = locals[r%len(locals)].Adj
	}
	return wOff, comm.CreateVertexWindow("adjacencies", adjs)
}

// offsetPairs lays the rank's offsets out as (start,end) pairs, the window
// image one 16-byte get addresses by 16*li.
func offsetPairs(lc *part.LocalCSR) []uint64 {
	pairs := make([]uint64, 2*lc.NumLocal())
	for i := 0; i < lc.NumLocal(); i++ {
		pairs[2*i] = lc.Offsets[i]
		pairs[2*i+1] = lc.Offsets[i+1]
	}
	return pairs
}

// resolveLiBits is the local-index width of a packed resolve word:
// owner slot in the high bits, local index in the low 40 (far beyond any
// vertex count a partition here can hold).
const resolveLiBits = 40

// buildResolve precomputes the per-vertex fetch coordinates every engine
// resolves on every edge: the owning slot (pt.Owner) fused with the local
// index (pt.LocalIndex) in one packed word, so the per-edge cost is a
// single flat array load instead of two function calls and a division.
// The table is immutable and shared read-only by all ranks of a run; the
// replicated-groups engine reuses the slot field unchanged and redirects
// only the target rank (worker.ownerBase).
func buildResolve(pt *part.Partition) []uint64 {
	tbl := make([]uint64, pt.NumVertices())
	for v := range tbl {
		tbl[v] = uint64(pt.Owner(graph.V(v)))<<resolveLiBits | uint64(pt.LocalIndex(graph.V(v)))
	}
	return tbl
}

// worker is the per-rank execution state.
type worker struct {
	r    *rma.Rank
	kind graph.Kind
	pt   *part.Partition
	lc   *part.LocalCSR
	wOff *rma.Window
	wAdj *rma.Window
	opt  Options

	cOff *clampi.Cache
	cAdj *clampi.Cache

	// deleg is the shared static replica of hot adjacency lists; nil or
	// empty when delegation is off.
	deleg *Delegation

	// its is the rank's pooled intersection scratch: the fast host
	// kernels (branch-free merge, stamp-set bitmap, galloping replay)
	// that report the exact Algorithm 1/2 modeled charge (DESIGN.md §5).
	// Acquired by newWorker, released by close.
	its *intersect.Scratch

	// resolve is the shared per-run table mapping a vertex to its packed
	// (owner slot, local index) fetch coordinate; slot is the rank's own
	// slot in that table (fetches to it are local), and ownerBase maps a
	// slot to the target rank id (0 for the 1D engines; group·q for the
	// replicated-groups engine, whose fetches stay inside its group).
	resolve   []uint64
	slot      int
	ownerBase int

	remoteReads    int64
	localReads     int64
	delegatedReads int64
	seq            uint64 // fetch sequence number (ScoreDegreeRecency)

	// edgeFilter, when set, restricts forEachEdge to the (li, vj) pairs
	// it accepts. The push engine uses it to walk only the upper wedge
	// vj > vi so each triangle is discovered exactly once.
	edgeFilter func(li int, vj graph.V) bool

	// Lookahead pipeline state (forEachEdge): the edge ring and the two
	// fetch slots live on the worker so the steady-state loop allocates
	// nothing and captures nothing.
	ring              [fetchLookahead]pipeEdge
	ringHead, ringLen int
	scanLi, scanJ     int
	fetchA, fetchB    fetch

	// Compressed-locals decode state. compLoc/compWin are resolved once
	// at construction so the per-edge paths branch on a flag, not an
	// interface. Each consumer of an owned list keeps its own reuse
	// buffer, so decoded runs stay valid across the pipeline stages that
	// interleave them; all of it is dormant for plain locals, where the
	// accessors return aliased CSR views. The memo indices amortize the
	// decode to once per owned vertex — both the ring scan and the visit
	// side walk local indices in CSR order.
	compLoc   bool      // lc stores adjacency varint/delta-compressed
	compWin   bool      // wAdj is a CompressedVertices window
	scanDec   []graph.V // refillRing's staged owned list
	scanDecLi int
	ownDec    []graph.V // visit-side adjI (run/runPush/runSlice/jaccard)
	ownDecLi  int
}

// scanAdj returns the owned list the ring scan is staging, decoding it at
// most once per owned vertex (scanLi advances monotonically, and a refill
// that resumes mid-list hits the memo).
func (w *worker) scanAdj() []graph.V {
	if !w.compLoc {
		return w.lc.AdjOf(w.scanLi)
	}
	if w.scanDecLi != w.scanLi {
		w.scanDec = w.lc.AdjInto(w.scanLi, w.scanDec)
		w.scanDecLi = w.scanLi
	}
	return w.scanDec
}

// adjOwned returns owned vertex li's list for the visit side. forEachEdge
// delivers a vertex's edges consecutively, so the memo amortizes the
// compressed decode to once per owned vertex — the same asymptotics as the
// plain-CSR alias it replaces.
func (w *worker) adjOwned(li int) []graph.V {
	if !w.compLoc {
		return w.lc.AdjOf(li)
	}
	if w.ownDecLi != li {
		// The previous owned list may be the scratch's stamped pivot, and
		// it is about to be overwritten in place; drop the stamp while its
		// content is still intact (Scratch's identity-memo contract).
		w.its.Unstamp()
		w.ownDec = w.lc.AdjInto(li, w.ownDec)
		w.ownDecLi = li
	}
	return w.ownDec
}

// pipeEdge is one staged (owned vertex, neighbour) pair of the lookahead
// ring.
type pipeEdge struct {
	li int32
	vj graph.V
}

// refillRing stages upcoming edges of the CSR walk until the ring is full
// or the walk is exhausted. Pure host work: the filter is evaluated at
// staging time, ahead of the model (see fetchLookahead).
func (w *worker) refillRing() {
	nLocal := w.lc.NumLocal()
	for w.scanLi < nLocal {
		adj := w.scanAdj()
		for w.scanJ < len(adj) {
			vj := adj[w.scanJ]
			w.scanJ++
			if w.edgeFilter != nil && !w.edgeFilter(w.scanLi, vj) {
				continue
			}
			w.ring[(w.ringHead+w.ringLen)%fetchLookahead] = pipeEdge{int32(w.scanLi), vj}
			w.ringLen++
			if w.ringLen == fetchLookahead {
				return
			}
		}
		w.scanLi++
		w.scanJ = 0
	}
}

// popEdge takes the next staged edge, refilling the ring in a batch when
// it runs dry.
func (w *worker) popEdge() (pipeEdge, bool) {
	if w.ringLen == 0 {
		w.refillRing()
		if w.ringLen == 0 {
			return pipeEdge{}, false
		}
	}
	e := w.ring[w.ringHead]
	w.ringHead = (w.ringHead + 1) % fetchLookahead
	w.ringLen--
	return e, true
}

func newWorker(r *rma.Rank, kind graph.Kind, pt *part.Partition, lc *part.LocalCSR,
	wOff, wAdj *rma.Window, resolve []uint64, opt Options) *worker {
	w := &worker{r: r, kind: kind, pt: pt, lc: lc, wOff: wOff, wAdj: wAdj, opt: opt}
	w.resolve = resolve
	w.slot = r.ID()
	w.compLoc = lc.Compressed()
	w.compWin = wAdj.Kind() == rma.CompressedVertices
	w.scanDecLi, w.ownDecLi = -1, -1
	w.its = intersect.GetScratch()
	r.LockAll(wOff)
	r.LockAll(wAdj)
	if opt.Caching {
		w.cOff = clampi.New(r, wOff, clampi.Config{
			Capacity: opt.OffsetsCacheBytes,
			Buckets:  opt.OffsetsBuckets,
			Mode:     clampi.AlwaysCache,
			Adaptive: opt.Adaptive,
		})
		w.cAdj = clampi.New(r, wAdj, clampi.Config{
			Capacity:    opt.AdjCacheBytes,
			Buckets:     opt.AdjBuckets,
			Mode:        clampi.AlwaysCache,
			Adaptive:    opt.Adaptive,
			MaxCapacity: opt.AdjCacheMaxBytes,
		})
	}
	return w
}

// fetch is the two-get remote read of one adjacency list, pipelined in up
// to three stages (issue offsets get → issue adjacency get → resolve).
//
// The handles are a union of concrete types — at most one of each
// (rma, clampi) pair is live, selected by branches the worker resolves
// statically (caching on or off) — so every Wait/Uint64s/Vertices/Release
// on the per-edge path is a direct call: no itab dispatch, no interface
// resets. An inline cache hit (clampi.TryGet) materializes no handle at
// all: the list/offView fields carry the aliased window view directly.
type fetch struct {
	target graph.V
	owner  int
	local  bool
	list   []graph.V // resolved adjacency list

	// adjacency-window coordinates of the second get (set by mid), used
	// by the score policies to address the cached entry
	adjOff, adjSize int

	offView []uint64 // inline offsets-cache hit: the (start,end) view

	// offQ/adjQ are caller-owned value requests (rma.GetInto) for the
	// non-cached path: no pool traffic, no pending-list traffic. offR/adjR
	// flag them live. The cache misses of the cached path go through
	// pooled clampi requests (offC/adjC), whose lifecycle the cache owns.
	offQ, adjQ rma.Request
	offR, adjR bool
	offC       *clampi.Request
	adjC       *clampi.Request

	// dec is the slot's decode buffer for compressed adjacency: local
	// fetches and inline cache hits decode into it instead of aliasing
	// CSR/window storage. Per-slot ownership makes the pipeline safe —
	// the next decode into this slot happens only after the current
	// edge's visit — and reuse keeps the steady state allocation-free.
	dec []graph.V
}

// start issues the first get (or resolves a local list immediately).
func (w *worker) start(f *fetch, vj graph.V) {
	f.target = vj
	f.offR, f.adjR = false, false
	f.offC, f.adjC = nil, nil
	f.offView = nil
	f.list = nil
	rv := w.resolve[vj]
	slot := int(rv >> resolveLiBits)
	li := int(rv & (1<<resolveLiBits - 1))
	if slot == w.slot {
		f.local = true
		w.localReads++
		if w.compLoc {
			f.dec = w.lc.AdjInto(li, f.dec)
			f.list = f.dec
		} else {
			f.list = w.lc.AdjOf(li)
		}
		// Local DRAM read of the list (the plain-image bytes: the model
		// never sees the host representation).
		w.r.ChargeLocalRead(4 * len(f.list))
		return
	}
	if list, ok := w.deleg.Lookup(vj); ok {
		// Served from the static replica at local-memory cost.
		f.local = true
		w.delegatedReads++
		f.list = list
		w.r.ChargeLocalRead(4 * len(list))
		return
	}
	f.local = false
	f.owner = w.ownerBase + slot
	w.remoteReads++
	if w.opt.OnRemoteRead != nil {
		w.opt.OnRemoteRead(w.r.ID(), vj)
	}
	off := 16 * li
	if w.cOff == nil || !w.cOff.Available() {
		// No cache, or the fault schedule degraded it for this access:
		// the direct-RMA flavor serves the same window bytes uncached.
		w.r.GetInto(&f.offQ, w.wOff, f.owner, off, 16)
		f.offR = true
		return
	}
	if w.cOff.TryGet(f.owner, off, 16) {
		// Inline hit: the pair is read straight off the window.
		f.offView = w.wOff.ViewUint64s(f.owner, off, 16)
		return
	}
	f.offC = w.cOff.Get(f.owner, off, 16)
}

// mid completes the offsets get and issues the adjacency get.
func (w *worker) mid(f *fetch) {
	if f.local {
		return
	}
	var pair []uint64
	switch {
	case f.offR:
		f.offQ.Wait()
		pair = f.offQ.Uint64s()
		f.offR = false
	case f.offView != nil:
		pair = f.offView
		f.offView = nil
	default:
		f.offC.Wait()
		pair = f.offC.Uint64s()
		f.offC.Release()
		f.offC = nil
	}
	start, end := pair[0], pair[1]
	deg := int(end - start)
	f.adjOff, f.adjSize = int(start)*4, deg*4
	if w.cAdj == nil || !w.cAdj.Available() {
		w.r.GetInto(&f.adjQ, w.wAdj, f.owner, f.adjOff, f.adjSize)
		f.adjR = true
		return
	}
	// Hits are the steady state of the Fig. 7/8 regime: probe the inline
	// fast path first. A hit performs the full bookkeeping and charge
	// inside TryGet and resolves the list as a window view with no
	// request at all; scores only matter on insertion, so the policies
	// below join in only on the miss path (plus the recency refresh).
	if w.cAdj.TryGet(f.owner, f.adjOff, f.adjSize) {
		if w.compWin {
			f.dec = w.wAdj.ReadVertices(f.owner, f.adjOff, f.adjSize, f.dec)
			f.list = f.dec
		} else {
			f.list = w.wAdj.ViewVertices(f.owner, f.adjOff, f.adjSize)
		}
		if w.opt.AdjScorePolicy == ScoreDegreeRecency {
			w.seq++
			w.cAdj.SetScore(f.owner, f.adjOff, f.adjSize, float64(deg)*(1+float64(w.seq)*1e-7))
		}
		return
	}
	// Miss: issue through the cache. After the offsets get we know the
	// remote vertex's degree; the non-default policies pass an
	// application-defined score derived from it (§III-B-2 and future
	// work iii).
	switch w.opt.AdjScorePolicy {
	case ScoreDegree:
		f.adjC = w.cAdj.GetScored(f.owner, f.adjOff, f.adjSize, float64(deg))
	case ScoreCostBenefit:
		score := w.opt.Model.RemoteCost(f.adjSize) / float64(f.adjSize+1)
		f.adjC = w.cAdj.GetScored(f.owner, f.adjOff, f.adjSize, score)
	case ScoreDegreeRecency:
		w.seq++
		score := float64(deg) * (1 + float64(w.seq)*1e-7)
		f.adjC = w.cAdj.GetScored(f.owner, f.adjOff, f.adjSize, score)
	default:
		f.adjC = w.cAdj.Get(f.owner, f.adjOff, f.adjSize)
	}
}

// finish completes the adjacency get and resolves the list as an aliased
// view of the adjacency window — no decode, no copy. Local fetches and
// inline cache hits arrive already resolved.
func (w *worker) finish(f *fetch) []graph.V {
	if f.local || f.list != nil {
		return f.list
	}
	if f.adjR {
		f.adjQ.Wait()
		f.list = f.adjQ.Vertices()
		f.adjR = false
		return f.list
	}
	f.adjC.Wait()
	f.list = f.adjC.Vertices()
	f.adjC.Release()
	f.adjC = nil
	return f.list
}

// fetchLookahead is the depth k of the host-side software pipeline in
// forEachEdge: edge enumeration (CSR scan, filter evaluation, ring
// staging) runs up to k edges ahead of the model in tight refill batches.
// Only host work moves — every model-visible operation (charge appends,
// get issues, cache transitions) still fires at its canonical
// lookahead-one position, which is what the charge-tape contract
// (DESIGN.md §6) requires for bit-identical SimTime.
const fetchLookahead = 8

// forEachEdge streams the rank's (owned vertex, neighbour, neighbour's
// adjacency list) triples through visit, running the paper's fetch
// pipeline: two dependent one-sided gets per remote neighbour, with the
// next edge's communication overlapping the current edge's visit when
// double buffering is on (§III-A). The adjacency slice passed to visit is
// only valid for the duration of the call. Both TC/LCC (Algorithm 3) and
// the Jaccard extension run on top of this visitor.
//
// Host schedule: edges are enumerated through a fetchLookahead-deep ring
// refilled in batches, so the per-edge steady state touches no enumeration
// state beyond a ring pop. The charge tape keeps this host pipelining
// invisible to the model (see fetchLookahead).
func (w *worker) forEachEdge(visit func(li int, vj graph.V, adjJ []graph.V)) {
	w.ringHead, w.ringLen = 0, 0
	w.scanLi, w.scanJ = 0, 0

	// Two fetch slots flipped by pointer: the devirtualized handles are
	// reset by start, so no per-edge struct zeroing is needed.
	cur, nxt := &w.fetchA, &w.fetchB

	e, ok := w.popEdge()
	if ok {
		w.start(cur, e.vj)
	}
	for ok {
		// Complete the offsets get and fire the dependent adjacency
		// get for the current edge, then wait for the data. Both remote
		// latencies are exposed here, as in the paper: §IV-D observes
		// that communication dominates and overlap cannot hide it.
		w.mid(cur)
		list := w.finish(cur)

		// Double buffering (§III-A): issue the next edge's first get
		// now, so its transfer overlaps the visit below — the
		// communication of edge i+1 overlaps the computation of edge
		// i, exactly one edge of lookahead in the model regardless of
		// the host pipeline depth.
		var en pipeEdge
		var okn bool
		if w.opt.DoubleBuffer {
			en, okn = w.popEdge()
			if okn {
				w.start(nxt, en.vj)
			}
		}

		visit(int(e.li), e.vj, list)

		if w.opt.DoubleBuffer {
			e, ok = en, okn
			cur, nxt = nxt, cur
		} else {
			e, ok = w.popEdge()
			if ok {
				w.start(cur, e.vj)
			}
		}
	}
}

// close ends the access epochs (a local operation in passive mode) and
// returns the intersection scratch to its pool. It is idempotent: the
// engine bodies close explicitly before reading stats (the implied flush
// charges time, which must land ahead of the snapshot) and also defer a
// close, so a rank unwinding on cancellation or panic still repools its
// scratch and leaves the windows' epochs closed. The close path performs
// no checkpoint polls, so it cannot re-panic during an unwind.
func (w *worker) close() {
	if w.its == nil {
		return
	}
	w.r.UnlockAll(w.wOff)
	w.r.UnlockAll(w.wAdj)
	intersect.PutScratch(w.its)
	w.its = nil
}

// run executes Algorithm 3 for the rank's owned vertices, writing LCC
// scores into the global output slice (each rank touches only its own
// range) and returning Σ t_i over owned vertices.
func (w *worker) run(lccOut []float64) int64 {
	var sumT int64
	method := w.opt.Method
	nLocal := w.lc.NumLocal()
	perVertexT := make([]int64, nLocal)

	w.forEachEdge(func(li int, vj graph.V, adjJ []graph.V) {
		adjI := w.adjOwned(li)
		if w.kind == graph.Undirected {
			adjJ = intersect.UpperSlice(adjJ, vj)
		}
		c, ops := w.its.Count(method, adjI, adjJ)
		// A small per-edge constant covers loop and bookkeeping costs.
		w.r.Compute(ops + 4)
		perVertexT[li] += int64(c)
	})

	for li := 0; li < nLocal; li++ {
		v := w.pt.VertexAt(w.r.ID(), li)
		d := w.lc.DegreeOf(li)
		lccOut[v] = Score(w.kind, perVertexT[li], d)
		sumT += perVertexT[li]
		w.r.Compute(2)
	}
	return sumT
}

func (w *worker) stats() RankStats {
	ctr := w.r.Counters()
	s := RankStats{
		Rank:           w.r.ID(),
		SimTime:        w.r.Clock().Now(),
		ComputeTime:    ctr.ComputeTime,
		RemoteReads:    w.remoteReads,
		LocalReads:     w.localReads,
		DelegatedReads: w.delegatedReads,
		RMA:            ctr,
	}
	s.CommTime = s.SimTime - s.ComputeTime
	if s.CommTime < 0 {
		s.CommTime = 0
	}
	if w.cOff != nil {
		s.OffsetsCache = w.cOff.Stats()
		s.AdjCache = w.cAdj.Stats()
	}
	return s
}

// CacheMissRates aggregates the C_offsets and C_adj miss rates over ranks.
func (res *Result) CacheMissRates() (offRate, adjRate float64) {
	var oh, om, ah, am int64
	for _, s := range res.PerRank {
		oh += s.OffsetsCache.Hits
		om += s.OffsetsCache.Misses
		ah += s.AdjCache.Hits
		am += s.AdjCache.Misses
	}
	if oh+om > 0 {
		offRate = float64(om) / float64(oh+om)
	}
	if ah+am > 0 {
		adjRate = float64(am) / float64(ah+am)
	}
	return
}

// AggregateRMA rolls the per-rank RMA counters into one global record via
// Counters.Merge — the single aggregation path end-of-run reporting uses,
// so no counter field is dropped by an ad-hoc sum.
func (res *Result) AggregateRMA() rma.Counters {
	var agg rma.Counters
	for _, s := range res.PerRank {
		agg.Merge(s.RMA)
	}
	return agg
}

// AvgRemoteReadTime returns the mean simulated cost of one remote
// adjacency fetch (both gets plus cache service time), the metric of
// Fig. 8. NaN-free: returns 0 when no remote reads occurred.
func (res *Result) AvgRemoteReadTime() float64 {
	var reads int64
	cost := res.AggregateRMA().GetCost
	for _, s := range res.PerRank {
		reads += s.RemoteReads
		cost += s.OffsetsCache.HitTime + s.AdjCache.HitTime +
			s.OffsetsCache.OverheadTime + s.AdjCache.OverheadTime
	}
	if reads == 0 {
		return 0
	}
	return cost / float64(reads)
}

// TotalCommTime sums the per-rank communication time.
func (res *Result) TotalCommTime() float64 {
	var t float64
	for _, s := range res.PerRank {
		t += s.CommTime
	}
	return t
}

// MaxCommTime returns the largest per-rank communication time, a proxy for
// the communication-bound critical path used by the Fig. 7 sweep.
func (res *Result) MaxCommTime() float64 {
	var t float64
	for _, s := range res.PerRank {
		t = math.Max(t, s.CommTime)
	}
	return t
}
