package lcc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/part"
	"repro/internal/rma"
)

// TestDistributedPropertyRandomConfigs is the engine's main property test:
// for random graphs and *random engine configurations* — rank count,
// distribution scheme, intersection method (including hash), caching with
// arbitrary tiny cache sizes, score policy, double buffering — the
// distributed result must equal brute force exactly. Caching and
// distribution are performance features; any influence on the numbers is
// a bug.
func TestDistributedPropertyRandomConfigs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		m := 2 * n * (1 + rng.Intn(4))
		kind := graph.Undirected
		if rng.Intn(2) == 0 {
			kind = graph.Directed
		}
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			u, v := graph.V(rng.Intn(n)), graph.V(rng.Intn(n))
			if u != v {
				edges = append(edges, graph.Edge{Src: u, Dst: v})
			}
		}
		g, err := graph.Build(kind, n, edges)
		if err != nil {
			return false
		}
		want := BruteForceLCC(g)

		opt := Options{
			Ranks:        1 + rng.Intn(9),
			Method:       []intersect.Method{intersect.MethodSSI, intersect.MethodBinary, intersect.MethodHybrid, intersect.MethodHash}[rng.Intn(4)],
			DoubleBuffer: rng.Intn(2) == 0,
		}
		switch rng.Intn(3) {
		case 1:
			opt.Scheme = part.Cyclic
		case 2:
			opt.Scheme = part.BlockArcs
		}
		if rng.Intn(2) == 0 {
			opt.Caching = true
			opt.OffsetsCacheBytes = 16 * (1 + rng.Intn(n)) // deliberately tiny
			opt.AdjCacheBytes = 4 * (1 + rng.Intn(4*n))
			opt.AdjScorePolicy = ScorePolicy(rng.Intn(4))
		}
		got, err := Run(g, opt)
		if err != nil {
			return false
		}
		if got.Triangles != want.Triangles {
			t.Logf("seed %d: config %+v: triangles %d, want %d", seed, opt, got.Triangles, want.Triangles)
			return false
		}
		for v := range want.LCC {
			if got.LCC[v] != want.LCC[v] {
				t.Logf("seed %d: vertex %d: lcc %g, want %g", seed, v, got.LCC[v], want.LCC[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestNoiseNeverChangesResults: injected noise perturbs simulated time
// only; the computed triangles and LCC scores must be bit-identical to the
// noise-free run, and the noisy run must take longer.
func TestNoiseNeverChangesResults(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, graph.Undirected, 21))
	quiet, err := Run(g, Options{Ranks: 8, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	model := rma.DefaultCostModel()
	model.Noise = rma.NoiseSpec{Amp: 0.25, SpikePeriodNS: 100e3, SpikeNS: 30000, Seed: 5}
	noisy, err := Run(g, Options{Ranks: 8, Method: intersect.MethodHybrid, DoubleBuffer: true, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Triangles != quiet.Triangles {
		t.Fatalf("noise changed triangles: %d vs %d", noisy.Triangles, quiet.Triangles)
	}
	for v := range quiet.LCC {
		if noisy.LCC[v] != quiet.LCC[v] {
			t.Fatalf("noise changed LCC[%d]: %g vs %g", v, noisy.LCC[v], quiet.LCC[v])
		}
	}
	if noisy.SimTime <= quiet.SimTime {
		t.Fatalf("noisy run (%.0f ns) not slower than quiet run (%.0f ns)", noisy.SimTime, quiet.SimTime)
	}
}

// TestNoisyRunsDeterministic: the same noise seed must give the same
// simulated time; a different seed a different one.
func TestNoisyRunsDeterministic(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, graph.Undirected, 2))
	run := func(seed uint64) float64 {
		model := rma.DefaultCostModel()
		model.Noise = rma.NoiseSpec{Amp: 0.2, Seed: seed}
		res, err := Run(g, Options{Ranks: 4, Method: intersect.MethodHybrid, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}
	if a, b := run(1), run(1); a != b {
		t.Fatalf("same noise seed diverged: %g vs %g", a, b)
	}
	if a, b := run(1), run(2); a == b {
		t.Fatal("different noise seeds produced identical sim times")
	}
}

// TestHashMethodInEngine runs the full distributed engine with the hash
// intersection on a real generator graph.
func TestHashMethodInEngine(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, graph.Undirected, 31))
	want := SharedLCC(g, intersect.MethodHybrid)
	got, err := Run(g, Options{Ranks: 4, Method: intersect.MethodHash})
	if err != nil {
		t.Fatal(err)
	}
	if got.Triangles != want.Triangles {
		t.Fatalf("hash engine: %d triangles, want %d", got.Triangles, want.Triangles)
	}
}
