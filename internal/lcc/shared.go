// Package lcc implements the paper's core contribution: triangle counting
// and local clustering coefficient, both as a single-node shared-memory
// kernel (§III-C, used by the Table III / Fig. 6 experiments) and as the
// fully asynchronous distributed-memory engine over simulated MPI RMA with
// optional CLaMPI caching (§III-A/B, the headline system).
package lcc

import (
	"repro/internal/graph"
	"repro/internal/intersect"
)

// Score computes the LCC of a vertex from its triangle count t and
// out-degree d, per Eq. (1)/(2) of the paper. For undirected graphs t is
// the number of *unordered* connected neighbour pairs (the edge-centric
// method with the upper-triangle offset counts each pair once), so the
// numerator 2t matches Eq. (2); for directed graphs t counts ordered pairs
// directly as in Eq. (1).
func Score(kind graph.Kind, t int64, d int) float64 {
	if d < 2 {
		return 0
	}
	den := float64(d) * float64(d-1)
	if kind == graph.Undirected {
		return 2 * float64(t) / den
	}
	return float64(t) / den
}

// TriangleCount converts the per-vertex sum Σt_i into the global triangle
// count. With the upper-triangle offset, an undirected triangle is counted
// once at each of its three corners, so Δ = Σt/3. For directed graphs Σt
// enumerates transitive triads (e_ij, e_jk, e_ik) once each and is returned
// unchanged.
func TriangleCount(kind graph.Kind, sumT int64) int64 {
	if kind == graph.Undirected {
		return sumT / 3
	}
	return sumT
}

// VertexTriangles returns the edge-centric triangle count t_i of a single
// vertex: Σ_{v_j ∈ adj(v_i)} |adj(v_i) ∩ adj'(v_j)| where adj' is offset to
// the upper triangle for undirected graphs (§II-C). ops returns the total
// intersection iterations, the modeled-compute charge.
func VertexTriangles(g *graph.Graph, vi graph.V, method intersect.Method) (t int64, ops int) {
	its := intersect.GetScratch()
	defer intersect.PutScratch(its)
	return vertexTriangles(g, vi, method, its)
}

// vertexTriangles is VertexTriangles with a caller-held scratch, so loops
// over many vertices amortize the stamp set across pivots.
func vertexTriangles(g *graph.Graph, vi graph.V, method intersect.Method, its *intersect.Scratch) (t int64, ops int) {
	adjI := g.Adj(vi)
	for _, vj := range adjI {
		adjJ := g.Adj(vj)
		if g.Kind() == graph.Undirected {
			adjJ = intersect.UpperSlice(adjJ, vj)
		}
		c, o := its.Count(method, adjI, adjJ)
		t += int64(c)
		ops += o
	}
	return t, ops
}

// SharedResult is the output of the single-node computation.
type SharedResult struct {
	LCC       []float64 // per-vertex local clustering coefficient
	PerVertex []int64   // per-vertex triangle counts t_i
	Triangles int64     // global count (see TriangleCount)
	Ops       int64     // total intersection iterations
}

// SharedLCC computes LCC for every vertex on a single node with the given
// intersection method — the shared-memory baseline of §IV-C and the ground
// truth the distributed engines are tested against.
func SharedLCC(g *graph.Graph, method intersect.Method) *SharedResult {
	n := g.NumVertices()
	res := &SharedResult{
		LCC:       make([]float64, n),
		PerVertex: make([]int64, n),
	}
	its := intersect.GetScratch()
	defer intersect.PutScratch(its)
	var sum int64
	for v := 0; v < n; v++ {
		t, ops := vertexTriangles(g, graph.V(v), method, its)
		res.PerVertex[v] = t
		res.LCC[v] = Score(g.Kind(), t, g.OutDegree(graph.V(v)))
		res.Ops += int64(ops)
		sum += t
	}
	res.Triangles = TriangleCount(g.Kind(), sum)
	return res
}

// SharedLCCParallel is SharedLCC with the per-edge intersection computed on
// `threads` goroutines (the paper's OpenMP scheme: parallelism inside each
// intersection, not across edges, for low imbalance; §III-C).
func SharedLCCParallel(g *graph.Graph, method intersect.Method, cfg intersect.ParallelConfig) *SharedResult {
	n := g.NumVertices()
	res := &SharedResult{
		LCC:       make([]float64, n),
		PerVertex: make([]int64, n),
	}
	var sum int64
	for v := 0; v < n; v++ {
		adjI := g.Adj(graph.V(v))
		var t int64
		for _, vj := range adjI {
			adjJ := g.Adj(vj)
			if g.Kind() == graph.Undirected {
				adjJ = intersect.UpperSlice(adjJ, vj)
			}
			t += int64(intersect.ParallelCount(method, adjI, adjJ, cfg))
		}
		res.PerVertex[v] = t
		res.LCC[v] = Score(g.Kind(), t, len(adjI))
		sum += t
	}
	res.Triangles = TriangleCount(g.Kind(), sum)
	return res
}

// BruteForceLCC is the O(n·d²) reference used only by tests: it checks
// every neighbour pair with HasEdge.
func BruteForceLCC(g *graph.Graph) *SharedResult {
	n := g.NumVertices()
	res := &SharedResult{
		LCC:       make([]float64, n),
		PerVertex: make([]int64, n),
	}
	var sum int64
	for v := 0; v < n; v++ {
		adj := g.Adj(graph.V(v))
		var t int64
		for _, vj := range adj {
			for _, vk := range adj {
				if g.Kind() == graph.Undirected && vk <= vj {
					continue
				}
				if vj == vk {
					continue
				}
				if g.HasEdge(vj, vk) {
					t++
				}
			}
		}
		res.PerVertex[v] = t
		res.LCC[v] = Score(g.Kind(), t, len(adj))
		sum += t
	}
	res.Triangles = TriangleCount(g.Kind(), sum)
	return res
}
