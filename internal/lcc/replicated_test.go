package lcc

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
)

// TestReplicatedEqualsPlain: for every replication factor, the
// replicated-groups engine returns bit-identical LCC and triangle counts.
func TestReplicatedEqualsPlain(t *testing.T) {
	for name, g := range pushTestGraphs(t) {
		base, err := Run(g, Options{Ranks: 8, Method: intersect.MethodHybrid})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []int{1, 2, 4, 8} {
			res, err := RunReplicated(g, ReplicatedOptions{
				Options:     Options{Ranks: 8, Method: intersect.MethodHybrid, DoubleBuffer: true},
				Replication: c,
			})
			if err != nil {
				t.Fatalf("%s c=%d: %v", name, c, err)
			}
			if !lccClose(res.LCC, base.LCC) {
				t.Errorf("%s c=%d: LCC differs from 1D", name, c)
			}
			if res.Triangles != base.Triangles || res.SumT != base.SumT {
				t.Errorf("%s c=%d: triangles %d (sum %d), want %d (%d)",
					name, c, res.Triangles, res.SumT, base.Triangles, base.SumT)
			}
		}
	}
}

func TestReplicatedRejectsBadFactor(t *testing.T) {
	g := fig1Graph()
	for _, c := range []int{-1, 3, 5, 7} {
		if _, err := RunReplicated(g, ReplicatedOptions{Options: Options{Ranks: 8}, Replication: c}); err == nil {
			t.Errorf("replication %d over 8 ranks: want error", c)
		}
	}
	// Zero defaults to 1.
	if _, err := RunReplicated(g, ReplicatedOptions{Options: Options{Ranks: 4}}); err != nil {
		t.Errorf("zero replication: %v", err)
	}
}

// TestReplicatedReducesRemoteFraction is the point of the 2.5D trade: at
// fixed p, the remote-read fraction drops as c grows because each fetch
// sees a 1/q partition instead of a 1/p one.
func TestReplicatedReducesRemoteFraction(t *testing.T) {
	g := gen.Prepare(gen.ErdosRenyi(1<<13, 1<<17, graph.Undirected, 51), 51)
	const p = 16
	var prev float64 = 2
	for _, c := range []int{1, 2, 4, 8} {
		res, err := RunReplicated(g, ReplicatedOptions{Options: Options{Ranks: p}, Replication: c})
		if err != nil {
			t.Fatal(err)
		}
		frac := res.RemoteReadFraction()
		if frac >= prev {
			t.Errorf("c=%d: remote fraction %.3f did not drop (previous %.3f)", c, frac, prev)
		}
		// Expected value ~ (q-1)/q for a uniform random graph.
		q := p / c
		want := float64(q-1) / float64(q)
		if frac > want+0.05 || frac < want-0.10 {
			t.Errorf("c=%d: remote fraction %.3f far from (q-1)/q = %.3f", c, frac, want)
		}
		prev = frac
	}
}

// TestReplicatedTimeAndMemoryTrade: more replication, less time, more
// per-rank window memory.
func TestReplicatedTimeAndMemoryTrade(t *testing.T) {
	g := gen.Prepare(gen.ErdosRenyi(1<<13, 1<<17, graph.Undirected, 53), 53)
	const p = 16
	r1, err := RunReplicated(g, ReplicatedOptions{Options: Options{Ranks: p, DoubleBuffer: true}, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunReplicated(g, ReplicatedOptions{Options: Options{Ranks: p, DoubleBuffer: true}, Replication: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r4.SimTime >= r1.SimTime {
		t.Errorf("c=4 time %.1f ms not below c=1 %.1f ms", r4.SimTime/1e6, r1.SimTime/1e6)
	}
	m1, err := ReplicaWindowBytes(g, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := ReplicaWindowBytes(g, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m4 < 3*m1 {
		t.Errorf("c=4 window bytes %d not about 4x of c=1 %d", m4, m1)
	}
	if _, err := ReplicaWindowBytes(g, p, 3); err == nil {
		t.Error("ReplicaWindowBytes accepted a non-dividing factor")
	}
}

// TestReplicatedFetchesStayInGroup: with c groups, no get may target a
// rank outside the issuing rank's group.
func TestReplicatedFetchesStayInGroup(t *testing.T) {
	g := gen.Prepare(gen.RMAT(gen.DefaultRMAT(10, 8, graph.Undirected, 55)), 55)
	const p, c = 8, 2
	res, err := RunReplicated(g, ReplicatedOptions{Options: Options{Ranks: p}, Replication: c})
	if err != nil {
		t.Fatal(err)
	}
	// The group property is structural (ownerOf); here we confirm the
	// traffic exists and every rank did a fair share of the scoring.
	var total int64
	for _, s := range res.PerRank {
		total += s.RemoteReads + s.LocalReads
	}
	if total == 0 {
		t.Fatal("no reads recorded")
	}
	for _, s := range res.PerRank {
		share := float64(s.RemoteReads+s.LocalReads) / float64(total)
		if share < 0.02 {
			t.Errorf("rank %d served only %.1f%% of reads: interleave broken?", s.Rank, 100*share)
		}
	}
}

// TestReplicatedWithCachingAndDelegation: the option surface composes.
func TestReplicatedWithCachingAndDelegation(t *testing.T) {
	g := gen.Prepare(gen.RMAT(gen.DefaultRMAT(10, 8, graph.Undirected, 57)), 57)
	base, err := Run(g, Options{Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunReplicated(g, ReplicatedOptions{
		Options: Options{
			Ranks: 8, Caching: true,
			OffsetsCacheBytes: 1 << 14, AdjCacheBytes: 1 << 18,
			DelegateBytes: 1 << 14,
		},
		Replication: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lccClose(res.LCC, base.LCC) || res.Triangles != base.Triangles {
		t.Error("replicated+caching+delegation changed results")
	}
}

// TestReplicatedQuick: equality holds for random graphs and factors.
func TestReplicatedQuick(t *testing.T) {
	f := func(seed uint64, pick uint8) bool {
		c := []int{1, 2, 4}[int(pick)%3]
		g := gen.Prepare(gen.ErdosRenyi(1<<8, 1<<11, graph.Undirected, seed), seed)
		base, err := Run(g, Options{Ranks: 4})
		if err != nil {
			return false
		}
		res, err := RunReplicated(g, ReplicatedOptions{Options: Options{Ranks: 4}, Replication: c})
		if err != nil {
			return false
		}
		return lccClose(res.LCC, base.LCC) && res.Triangles == base.Triangles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
