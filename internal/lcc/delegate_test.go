package lcc

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
)

func TestBuildDelegationBudget(t *testing.T) {
	g := gen.Prepare(gen.BarabasiAlbert(1<<10, 8, graph.Undirected, 3), 3)
	for _, budget := range []int{0, 100, 1 << 10, 1 << 14, 1 << 30} {
		d := BuildDelegation(g, budget)
		if d.Bytes() > budget && budget > 0 {
			t.Errorf("budget %d: delegation used %d bytes", budget, d.Bytes())
		}
		if budget <= 0 && d.Len() != 0 {
			t.Errorf("budget %d: delegated %d vertices, want 0", budget, d.Len())
		}
	}
	// An unlimited budget replicates every vertex.
	d := BuildDelegation(g, 1<<30)
	if d.Len() != g.NumVertices() {
		t.Errorf("unlimited budget delegated %d of %d vertices", d.Len(), g.NumVertices())
	}
}

func TestBuildDelegationPicksHubsFirst(t *testing.T) {
	// A star plus a few stray edges: the center must be the first pick.
	edges := []graph.Edge{}
	for i := 1; i <= 20; i++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: graph.V(i)})
	}
	edges = append(edges,
		graph.Edge{Src: 1, Dst: 2},
		graph.Edge{Src: 3, Dst: 4},
		graph.Edge{Src: 5, Dst: 6})
	g := graph.MustBuild(graph.Undirected, 21, edges)
	d := BuildDelegation(g, delegationEntryOverhead+4*g.OutDegree(0))
	if d.Len() != 1 {
		t.Fatalf("delegated %d vertices, want exactly the hub", d.Len())
	}
	if _, ok := d.Lookup(0); !ok {
		t.Error("hub vertex 0 not delegated")
	}
}

func TestDelegationLookupNilSafe(t *testing.T) {
	var d *Delegation
	if _, ok := d.Lookup(3); ok {
		t.Error("nil delegation claimed a hit")
	}
	if d.Len() != 0 || d.Bytes() != 0 {
		t.Error("nil delegation has nonzero size")
	}
}

// TestDelegatedRunSameResults: delegation must never change LCC scores or
// triangle counts, only where reads are served.
func TestDelegatedRunSameResults(t *testing.T) {
	for name, g := range pushTestGraphs(t) {
		base, err := Run(g, Options{Ranks: 4, Method: intersect.MethodHybrid})
		if err != nil {
			t.Fatal(err)
		}
		for _, budget := range []int{0, 1 << 10, 1 << 16, 1 << 24} {
			res, err := Run(g, Options{Ranks: 4, Method: intersect.MethodHybrid, DelegateBytes: budget})
			if err != nil {
				t.Fatal(err)
			}
			if !lccClose(res.LCC, base.LCC) || res.Triangles != base.Triangles {
				t.Errorf("%s budget %d: delegated run changed results", name, budget)
			}
		}
	}
}

// TestDelegationReducesRemoteReads: every delegated hit is a remote read
// saved; the sum remote+delegated must equal the non-delegated remote
// count, and the delegated share must be large on a hub-heavy graph.
func TestDelegationReducesRemoteReads(t *testing.T) {
	g := gen.Prepare(gen.BarabasiAlbert(1<<11, 8, graph.Undirected, 5), 5)
	const ranks = 8
	plain, err := Run(g, Options{Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	deleg, err := Run(g, Options{Ranks: ranks, DelegateBytes: int(g.CSRSizeBytes() / 4)})
	if err != nil {
		t.Fatal(err)
	}
	var plainRemote, delegRemote, delegated int64
	for i := 0; i < ranks; i++ {
		plainRemote += plain.PerRank[i].RemoteReads
		delegRemote += deleg.PerRank[i].RemoteReads
		delegated += deleg.PerRank[i].DelegatedReads
	}
	if delegRemote+delegated != plainRemote {
		t.Errorf("remote %d + delegated %d != plain remote %d", delegRemote, delegated, plainRemote)
	}
	// A quarter of the graph's bytes covers the hubs; on a BA graph the
	// hubs draw disproportionately many accesses, so the saved share must
	// clearly exceed the byte share would predict under uniform access
	// spread over this heavy-tailed degree sequence.
	if share := float64(delegated) / float64(plainRemote); share < 0.2 {
		t.Errorf("delegated share = %.2f, want > 0.2 with a quarter-size replica", share)
	}
	if deleg.SimTime >= plain.SimTime {
		t.Error("delegation did not reduce the simulated time")
	}
	if deleg.DelegatedVertices == 0 || deleg.DelegationBytes == 0 {
		t.Error("result does not report the delegation size")
	}
}

// TestDelegationComposesWithCaching: delegated vertices never reach the
// caches, and the combined run still returns identical results.
func TestDelegationComposesWithCaching(t *testing.T) {
	g := gen.Prepare(gen.RMAT(gen.DefaultRMAT(11, 8, graph.Undirected, 29)), 29)
	base, err := Run(g, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Run(g, Options{
		Ranks: 4, Caching: true,
		OffsetsCacheBytes: 1 << 14, AdjCacheBytes: 1 << 18,
		DelegateBytes: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lccClose(both.LCC, base.LCC) || both.Triangles != base.Triangles {
		t.Error("delegation+caching changed results")
	}
	var delegated, cacheOps int64
	for _, s := range both.PerRank {
		delegated += s.DelegatedReads
		cacheOps += s.AdjCache.Hits + s.AdjCache.Misses
	}
	if delegated == 0 {
		t.Error("no delegated reads in combined run")
	}
	if cacheOps == 0 {
		t.Error("cache saw no traffic in combined run")
	}
}

// TestDelegationWorksWithPushAndJaccard: the replica path is shared by all
// three engines through the common worker.
func TestDelegationWorksWithPushAndJaccard(t *testing.T) {
	g := gen.Prepare(gen.RMAT(gen.DefaultRMAT(10, 8, graph.Undirected, 31)), 31)
	pull, err := Run(g, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	push, err := RunPush(g, PushOptions{
		Options:     Options{Ranks: 4, DelegateBytes: 1 << 16},
		Aggregation: PushBatched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lccClose(push.LCC, pull.LCC) {
		t.Error("delegated push differs from pull")
	}
	jacBase, err := RunJaccard(g, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	jacDeleg, err := RunJaccard(g, Options{Ranks: 4, DelegateBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(jacBase.Scores) != len(jacDeleg.Scores) {
		t.Fatal("jaccard score lengths differ")
	}
	for i := range jacBase.Scores {
		if jacBase.Scores[i] != jacDeleg.Scores[i] {
			t.Fatalf("jaccard score %d differs under delegation", i)
		}
	}
}

// TestDelegationQuick: for arbitrary budgets on a fixed graph, results are
// unchanged and the budget is respected.
func TestDelegationQuick(t *testing.T) {
	g := gen.Prepare(gen.ErdosRenyi(1<<8, 1<<11, graph.Undirected, 37), 37)
	base, err := Run(g, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := func(budget uint32) bool {
		b := int(budget % (1 << 20))
		res, err := Run(g, Options{Ranks: 4, DelegateBytes: b})
		if err != nil {
			return false
		}
		return lccClose(res.LCC, base.LCC) && res.DelegationBytes <= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestAdaptiveAdjBufferGrowthInEngine: with a deliberately undersized
// C_adj and growth headroom, the adaptive heuristic must enlarge the
// buffer during a run — and never change the results.
func TestAdaptiveAdjBufferGrowthInEngine(t *testing.T) {
	g := gen.Prepare(gen.RMAT(gen.DefaultRMAT(12, 16, graph.Undirected, 43)), 43)
	base, err := Run(g, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	grown, err := Run(g, Options{
		Ranks: 4, Caching: true, Adaptive: true,
		OffsetsCacheBytes: 1 << 16,
		AdjCacheBytes:     1 << 12,
		AdjCacheMaxBytes:  1 << 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lccClose(grown.LCC, base.LCC) || grown.Triangles != base.Triangles {
		t.Error("adaptive buffer growth changed results")
	}
	var resizes int64
	for _, s := range grown.PerRank {
		resizes += s.AdjCache.BufferResizes
	}
	if resizes == 0 {
		t.Error("no rank grew its C_adj buffer under pressure")
	}
}
