package lcc

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
)

// pressuredOptions returns a caching configuration with heavy C_adj
// eviction pressure, where the score policy actually matters.
func pressuredOptions(g *graph.Graph, p int, policy ScorePolicy) Options {
	return Options{
		Ranks: p, Method: intersect.MethodHybrid, DoubleBuffer: true,
		Caching:           true,
		OffsetsCacheBytes: 16 * g.NumVertices(),
		AdjCacheBytes:     4 * g.NumArcs() / 8, // far below the working set
		AdjScorePolicy:    policy,
	}
}

func TestAllScorePoliciesCorrect(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 16, graph.Undirected, 33))
	want := SharedLCC(g, intersect.MethodHybrid)
	for _, policy := range []ScorePolicy{ScoreLRU, ScoreDegree, ScoreCostBenefit, ScoreDegreeRecency} {
		res, err := Run(g, pressuredOptions(g, 8, policy))
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if res.Triangles != want.Triangles {
			t.Errorf("policy %v changed the triangle count: %d vs %d",
				policy, res.Triangles, want.Triangles)
		}
	}
}

func TestDegreeBeatsLRUUnderPressure(t *testing.T) {
	// §III-B-2's claim, under eviction pressure on a power-law graph.
	g := gen.RMAT(gen.DefaultRMAT(11, 16, graph.Undirected, 34))
	lru, err := Run(g, pressuredOptions(g, 8, ScoreLRU))
	if err != nil {
		t.Fatal(err)
	}
	deg, err := Run(g, pressuredOptions(g, 8, ScoreDegree))
	if err != nil {
		t.Fatal(err)
	}
	_, lruMiss := lru.CacheMissRates()
	_, degMiss := deg.CacheMissRates()
	if degMiss >= lruMiss {
		t.Errorf("degree scores did not lower the C_adj miss rate: %.3f vs LRU %.3f", degMiss, lruMiss)
	}
}

func TestDegreeScoresFlagMapsToPolicy(t *testing.T) {
	o := Options{DegreeScores: true}.withDefaults(100)
	if o.AdjScorePolicy != ScoreDegree {
		t.Errorf("DegreeScores did not map to ScoreDegree (got %v)", o.AdjScorePolicy)
	}
	// An explicit policy wins over the legacy flag.
	o = Options{DegreeScores: true, AdjScorePolicy: ScoreCostBenefit}.withDefaults(100)
	if o.AdjScorePolicy != ScoreCostBenefit {
		t.Errorf("explicit policy overridden (got %v)", o.AdjScorePolicy)
	}
}

func TestScorePolicyString(t *testing.T) {
	for policy, want := range map[ScorePolicy]string{
		ScoreLRU: "lru+positional", ScoreDegree: "degree",
		ScoreCostBenefit: "cost-benefit", ScoreDegreeRecency: "degree+recency",
		ScorePolicy(99): "unknown",
	} {
		if got := policy.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", policy, got, want)
		}
	}
}

func TestCostBenefitFavoursSmallEntries(t *testing.T) {
	// On a graph with one giant hub and many small vertices under severe
	// pressure, cost-benefit keeps small lists while degree keeps the
	// hub: their hit patterns must differ, with degree ahead on a
	// hub-reuse workload.
	g := gen.BarabasiAlbert(4096, 8, graph.Undirected, 35)
	g = gen.Prepare(g, 36)
	cb, err := Run(g, pressuredOptions(g, 8, ScoreCostBenefit))
	if err != nil {
		t.Fatal(err)
	}
	deg, err := Run(g, pressuredOptions(g, 8, ScoreDegree))
	if err != nil {
		t.Fatal(err)
	}
	_, cbMiss := cb.CacheMissRates()
	_, degMiss := deg.CacheMissRates()
	if degMiss > cbMiss {
		t.Errorf("degree (%.3f) should beat cost-benefit (%.3f) on hub reuse", degMiss, cbMiss)
	}
}
