package lcc

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
)

func TestJaccardKnownGraph(t *testing.T) {
	// Triangle: for every edge (u,v), adj(u)={v,w}, adj(v)={u,w}:
	// intersection {w} (u ∉ adj(u)), union {u,v,w} -> J = 1/3.
	tri := graph.MustBuild(graph.Undirected, 3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}})
	res, err := RunJaccard(tri, Options{Ranks: 2, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != tri.NumArcs() {
		t.Fatalf("Scores length %d, want %d", len(res.Scores), tri.NumArcs())
	}
	for k, s := range res.Scores {
		if math.Abs(s-1.0/3.0) > 1e-12 {
			t.Errorf("arc %d: J = %v, want 1/3", k, s)
		}
	}
}

func TestJaccardMatchesBruteForce(t *testing.T) {
	for _, kind := range []graph.Kind{graph.Undirected, graph.Directed} {
		g := randomSimpleGraph(kind, 80, 500, 9)
		want := BruteForceJaccard(g)
		for _, ranks := range []int{1, 3, 8} {
			for _, caching := range []bool{false, true} {
				opt := Options{Ranks: ranks, Method: intersect.MethodHybrid, DoubleBuffer: true, Caching: caching}
				if caching {
					opt.OffsetsCacheBytes = 1 << 12
					opt.AdjCacheBytes = 1 << 14
				}
				res, err := RunJaccard(g, opt)
				if err != nil {
					t.Fatal(err)
				}
				for k := range want {
					if math.Abs(res.Scores[k]-want[k]) > 1e-12 {
						t.Fatalf("%v p=%d caching=%v: arc %d J = %v, want %v",
							kind, ranks, caching, k, res.Scores[k], want[k])
					}
				}
			}
		}
	}
}

func TestJaccardSymmetricOnUndirected(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 8, graph.Undirected, 10))
	res, err := RunJaccard(g, Options{Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	// J(u,v) must equal J(v,u): locate both arcs via CSR offsets.
	offsets := g.Offsets()
	arcs := g.Arcs()
	arcIndex := func(u, v graph.V) int {
		for k := offsets[u]; k < offsets[u+1]; k++ {
			if arcs[k] == v {
				return int(k)
			}
		}
		return -1
	}
	checked := 0
	for u := 0; u < g.NumVertices() && checked < 500; u++ {
		for _, v := range g.Adj(graph.V(u)) {
			k1 := arcIndex(graph.V(u), v)
			k2 := arcIndex(v, graph.V(u))
			if k1 < 0 || k2 < 0 {
				t.Fatalf("missing reverse arc (%d,%d)", u, v)
			}
			if math.Abs(res.Scores[k1]-res.Scores[k2]) > 1e-12 {
				t.Fatalf("J(%d,%d)=%v != J(%d,%d)=%v", u, v, res.Scores[k1], v, u, res.Scores[k2])
			}
			checked++
		}
	}
}

func TestJaccardScoresInRange(t *testing.T) {
	g := gen.BarabasiAlbert(1024, 8, graph.Undirected, 11)
	res, err := RunJaccard(g, Options{Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	for k, s := range res.Scores {
		if s < 0 || s > 1 {
			t.Fatalf("arc %d: J = %v out of [0,1]", k, s)
		}
	}
	if res.SimTime <= 0 {
		t.Error("no simulated time charged")
	}
}

func TestJaccardDataset(t *testing.T) {
	res, err := RunJaccardDataset("fb-sim", Options{Ranks: 2, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	// Dense social circles must contain some strongly similar pairs.
	max := 0.0
	for _, s := range res.Scores {
		if s > max {
			max = s
		}
	}
	if max < 0.3 {
		t.Errorf("max Jaccard = %v, want clustered pairs (>= 0.3)", max)
	}
	if _, err := RunJaccardDataset("nope", Options{Ranks: 2}); err == nil {
		t.Error("RunJaccardDataset accepted unknown dataset")
	}
}
