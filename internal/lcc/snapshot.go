package lcc

import (
	"context"
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/rma"
)

// Snapshot is the per-graph half of a distributed run: the partition, the
// extracted per-rank CSRs, the precomputed (start,end) offset pairs the
// windows expose, the packed resolve table and the static delegation
// replica. All of it is immutable once built and — unlike the communicator,
// the caches and the clocks — independent of any particular query, so one
// snapshot is shared by any number of sequential or concurrent runs over
// the same graph (the serving layer keeps exactly one per loaded instance).
//
// The split is conservative by construction: Snapshot.RunCtx builds its
// windows from the same pair arrays makeGraphWindows would compute, so a
// run through a snapshot is bit-identical to the corresponding lcc.Run.
type Snapshot struct {
	src           graph.Store
	kind          graph.Kind
	n             int
	ranks         int
	scheme        part.Scheme
	delegateBytes int
	storage       StorageMode

	pt      *part.Partition
	locals  []*part.LocalCSR
	pairs   [][]uint64
	resolve []uint64
	deleg   *Delegation

	// sums / resolveSum are the build-time CRC-32C of the resident tables
	// (integrity.go); Verify re-checks them for the snapshot's lifetime.
	sums       []rankSums
	resolveSum uint32
}

// SnapshotOptions are the per-graph half of Options: everything the
// snapshot pins for all queries executed on it.
type SnapshotOptions struct {
	// Ranks is the number of computing nodes p; 0 selects 1.
	Ranks int
	// Scheme is the 1D vertex distribution; Block is the paper's default.
	Scheme part.Scheme
	// DelegateBytes is the static-delegation budget per rank; 0 = off.
	DelegateBytes int
	// Storage selects the host-side representation of the per-rank
	// adjacency plane; see StorageMode. Host-side only — results are
	// bit-identical across modes.
	Storage StorageMode
	// MemBudgetBytes is the StorageAuto budget; see Options.
	MemBudgetBytes int64
}

// NewSnapshot partitions g over the given rank count and precomputes every
// per-graph table of the engine setup. ranks == 0 selects 1. The snapshot
// pins the distribution: queries executed on it inherit its rank count,
// scheme and delegation budget regardless of what their Options say.
func NewSnapshot(g graph.Store, ranks int, scheme part.Scheme, delegateBytes int) (*Snapshot, error) {
	return NewSnapshotOpts(g, SnapshotOptions{Ranks: ranks, Scheme: scheme, DelegateBytes: delegateBytes})
}

// NewSnapshotOpts is NewSnapshot with the full per-graph option set,
// including the storage mode the per-rank CSRs are extracted in.
func NewSnapshotOpts(g graph.Store, so SnapshotOptions) (*Snapshot, error) {
	if so.Ranks == 0 {
		so.Ranks = 1
	}
	if so.Ranks < 1 {
		return nil, fmt.Errorf("lcc: invalid rank count %d", so.Ranks)
	}
	pt, err := part.Build(so.Scheme, g, so.Ranks)
	if err != nil {
		return nil, err
	}
	locals := extractLocals(g, pt, so.Storage, so.MemBudgetBytes)
	pairs := make([][]uint64, len(locals))
	for s, lc := range locals {
		pairs[s] = offsetPairs(lc)
	}
	s := &Snapshot{
		src: g, kind: g.Kind(), n: g.NumVertices(),
		ranks: so.Ranks, scheme: so.Scheme, delegateBytes: so.DelegateBytes,
		storage: so.Storage,
		pt:      pt, locals: locals, pairs: pairs,
		resolve: buildResolve(pt),
		deleg:   BuildDelegation(g, so.DelegateBytes),
	}
	s.computeSums()
	return s, nil
}

// LoadSnapshot is NewSnapshot over a named dataset from the registry.
func LoadSnapshot(name string, ranks int, scheme part.Scheme, delegateBytes int) (*Snapshot, error) {
	g, err := gen.Load(name)
	if err != nil {
		return nil, err
	}
	return NewSnapshot(g, ranks, scheme, delegateBytes)
}

// Graph returns the snapshot's source graph store.
func (s *Snapshot) Graph() graph.Store { return s.src }

// LocalBytes reports the host bytes the extracted per-rank adjacency
// planes occupy — the quantity the storage budget governs.
func (s *Snapshot) LocalBytes() int64 {
	var b int64
	for _, lc := range s.locals {
		b += lc.AdjMemBytes() + 8*int64(len(lc.Offsets))
	}
	return b
}

// StorageRepr names the representation the per-rank CSRs ended up in.
func (s *Snapshot) StorageRepr() string {
	if len(s.locals) > 0 && s.locals[0].Compressed() {
		return "compressed"
	}
	return "plain"
}

// Ranks returns the pinned rank count p.
func (s *Snapshot) Ranks() int { return s.ranks }

// Scheme returns the pinned partitioning scheme.
func (s *Snapshot) Scheme() part.Scheme { return s.scheme }

// options pins the snapshot-owned fields — the distribution belongs to the
// snapshot, the method/caching/workers/faults to the query — and applies
// the usual defaults.
func (s *Snapshot) options(opt Options) Options {
	opt.Ranks, opt.Scheme, opt.DelegateBytes = s.ranks, s.scheme, s.delegateBytes
	opt.Storage = s.storage
	return opt.withDefaults(s.n)
}

// windows exposes the snapshot's partitions in a fresh communicator,
// reusing the precomputed pair arrays.
func (s *Snapshot) windows(comm *rma.Comm) (wOff, wAdj *rma.Window) {
	return windowsFromPairs(comm, s.locals, s.pairs)
}

// RunCtx executes the fully asynchronous LCC computation (Algorithm 3)
// over the snapshot, under supervision: ctx cancellation unwinds every
// rank at its next checkpoint or barrier and returns an error wrapping
// sched.ErrRunCanceled; a rank panic surfaces as *sched.PanicError; a
// fail-fast crash-stop fault as *fault.CrashError. On any error the
// result is nil — a supervised run yields complete results or none —
// and the snapshot itself is untouched: it holds no per-run state, so
// the caller can simply run again.
func (s *Snapshot) RunCtx(ctx context.Context, opt Options) (*Result, error) {
	opt = s.options(opt)
	n := s.n
	comm := rma.NewCommWorkers(s.ranks, opt.Model, opt.Workers)
	opt.configureCharges(comm)
	wOff, wAdj := s.windows(comm)

	lccOut := make([]float64, n)
	triOut := make([]int64, s.ranks)
	stats := make([]RankStats, s.ranks)

	ranks, err := comm.RunCtx(ctx, func(r *rma.Rank) {
		w := newWorker(r, s.kind, s.pt, s.locals[r.ID()], wOff, wAdj, s.resolve, opt)
		w.deleg = s.deleg
		// The deferred close repools the scratch and closes the epochs on
		// the cancel/panic unwind path; the explicit close keeps the
		// epoch-close charges ahead of the stats snapshot, as the charge
		// order always had them.
		defer w.close()
		sumT := w.run(lccOut)
		w.close()
		triOut[r.ID()] = sumT
		stats[r.ID()] = w.stats()
	})
	if err != nil {
		return nil, err
	}

	res := &Result{LCC: lccOut, PerRank: stats, SimTime: rma.MaxClock(ranks),
		DelegatedVertices: s.deleg.Len(), DelegationBytes: s.deleg.Bytes()}
	for _, t := range triOut {
		res.SumT += t
	}
	res.Triangles = TriangleCount(s.kind, res.SumT)
	return res, nil
}

// RunJaccardCtx executes the per-edge Jaccard computation (jaccard.go)
// over the snapshot, under the same supervision contract as RunCtx.
func (s *Snapshot) RunJaccardCtx(ctx context.Context, opt Options) (*JaccardResult, error) {
	opt = s.options(opt)
	comm := rma.NewCommWorkers(s.ranks, opt.Model, opt.Workers)
	opt.configureCharges(comm)
	wOff, wAdj := s.windows(comm)

	scores := make([]float64, s.src.NumArcs())
	stats := make([]RankStats, s.ranks)

	// Global arc index of each rank's first arc: offsets of preceding
	// ranks' partitions sum up because Extract preserves CSR order. The
	// last offset is the partition's arc count in any representation.
	base := make([]uint64, s.ranks+1)
	for r, lc := range s.locals {
		base[r+1] = base[r] + lc.Offsets[lc.NumLocal()]
	}

	ranks, err := comm.RunCtx(ctx, func(r *rma.Rank) {
		w := newWorker(r, s.kind, s.pt, s.locals[r.ID()], wOff, wAdj, s.resolve, opt)
		w.deleg = s.deleg
		defer w.close()
		arc := base[r.ID()]
		// forEachEdge visits arcs in exactly CSR order, so `arc`
		// advances in lockstep.
		w.forEachEdge(func(li int, vj graph.V, adjJ []graph.V) {
			adjI := w.adjOwned(li)
			inter, ops := w.its.Count(opt.Method, adjI, adjJ)
			union := len(adjI) + len(adjJ) - inter
			if union > 0 {
				scores[arc] = float64(inter) / float64(union)
			}
			arc++
			w.r.Compute(ops + 6)
		})
		w.close()
		stats[r.ID()] = w.stats()
	})
	if err != nil {
		return nil, err
	}

	return &JaccardResult{
		Scores:  scores,
		SimTime: rma.MaxClock(ranks),
		PerRank: stats,
	}, nil
}
