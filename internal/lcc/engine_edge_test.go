package lcc

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/rma"
)

func TestEngineEmptyGraph(t *testing.T) {
	g := graph.MustBuild(graph.Undirected, 0, nil)
	res, err := Run(g, Options{Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 0 || len(res.LCC) != 0 {
		t.Errorf("empty graph: %+v", res)
	}
}

func TestEngineEdgelessVertices(t *testing.T) {
	// Vertices with no edges at all: every rank owns some, none crash.
	g := graph.MustBuild(graph.Undirected, 16, []graph.Edge{{Src: 0, Dst: 15}})
	res, err := Run(g, Options{Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 0 {
		t.Errorf("Triangles = %d", res.Triangles)
	}
	for v, c := range res.LCC {
		if c != 0 {
			t.Errorf("LCC[%d] = %v, want 0", v, c)
		}
	}
}

func TestEngineMoreRanksThanVertices(t *testing.T) {
	g := graph.MustBuild(graph.Undirected, 3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}})
	res, err := Run(g, Options{Ranks: 8, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 1 {
		t.Errorf("Triangles = %d, want 1 (ranks with empty partitions must be harmless)", res.Triangles)
	}
}

func TestEngineDirectedZeroOutDegree(t *testing.T) {
	// Vertex 2 has in-degree 2 but out-degree 0: its (empty) adjacency
	// list is still fetched remotely by others without error.
	g := graph.MustBuild(graph.Directed, 4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 3, Dst: 0},
	})
	want := SharedLCC(g, intersect.MethodHybrid)
	for _, caching := range []bool{false, true} {
		opt := Options{Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true, Caching: caching}
		if caching {
			opt.OffsetsCacheBytes = 1 << 10
			opt.AdjCacheBytes = 1 << 12
		}
		res, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Triangles != want.Triangles {
			t.Errorf("caching=%v: Triangles = %d, want %d", caching, res.Triangles, want.Triangles)
		}
	}
}

func TestEngineStarGraph(t *testing.T) {
	// Star: hub 0 with 63 leaves, no triangles; all remote reads target
	// the hub's long list — the degenerate reuse case.
	edges := make([]graph.Edge, 63)
	for i := range edges {
		edges[i] = graph.Edge{Src: 0, Dst: graph.V(i + 1)}
	}
	g := graph.MustBuild(graph.Undirected, 64, edges)
	res, err := Run(g, Options{
		Ranks: 8, Method: intersect.MethodHybrid, DoubleBuffer: true,
		Caching: true, OffsetsCacheBytes: 1 << 10, AdjCacheBytes: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 0 {
		t.Errorf("star Triangles = %d", res.Triangles)
	}
	// Every leaf outside rank 0 reads the hub's list: hit rate should be
	// high once cached.
	var hits int64
	for _, s := range res.PerRank {
		hits += s.AdjCache.Hits
	}
	if hits == 0 {
		t.Error("no cache hits on star hub reuse")
	}
}

func TestEngineTinyCachesNeverWrong(t *testing.T) {
	// Pathologically small caches (a few bytes) must never change the
	// result, only the time.
	g := randomSimpleGraph(graph.Undirected, 60, 400, 5)
	want := SharedLCC(g, intersect.MethodHybrid)
	res, err := Run(g, Options{
		Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true,
		Caching: true, OffsetsCacheBytes: 8, AdjCacheBytes: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != want.Triangles {
		t.Errorf("tiny caches broke the count: %d vs %d", res.Triangles, want.Triangles)
	}
}

func TestEngineSumTAdditivity(t *testing.T) {
	// SumT must equal the sum of per-vertex counts from the reference.
	g := randomSimpleGraph(graph.Undirected, 100, 700, 6)
	ref := SharedLCC(g, intersect.MethodHybrid)
	var want int64
	for _, t := range ref.PerVertex {
		want += t
	}
	res, err := Run(g, Options{Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SumT != want {
		t.Errorf("SumT = %d, want %d", res.SumT, want)
	}
}

func TestEngineDeterministicSimTime(t *testing.T) {
	// The whole point of modeled time: identical runs give identical
	// simulated clocks, regardless of goroutine scheduling.
	g := randomSimpleGraph(graph.Undirected, 200, 1500, 7)
	opt := Options{
		Ranks: 8, Method: intersect.MethodHybrid, DoubleBuffer: true,
		Caching: true, OffsetsCacheBytes: 1 << 12, AdjCacheBytes: 1 << 14,
	}
	a, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimTime != b.SimTime {
		t.Errorf("sim time not deterministic: %v vs %v", a.SimTime, b.SimTime)
	}
	for i := range a.PerRank {
		if a.PerRank[i].SimTime != b.PerRank[i].SimTime {
			t.Errorf("rank %d clock differs between runs", i)
		}
	}
}

func TestEngineCustomModelPropagates(t *testing.T) {
	g := randomSimpleGraph(graph.Undirected, 100, 600, 8)
	m := rma.DefaultCostModel()
	m.RemoteLatency = 50000 // brutally slow network
	slow, err := Run(g, Options{Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(g, Options{Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if slow.SimTime <= fast.SimTime {
		t.Errorf("25x slower network did not increase sim time (%v vs %v)", slow.SimTime, fast.SimTime)
	}
}

func TestOptionsBucketSizing(t *testing.T) {
	// §III-B-1 sizing: C_offsets buckets linear in capacity; C_adj
	// buckets discounted by the power-law factor (α=2).
	o := Options{Caching: true, OffsetsCacheBytes: 16000, AdjCacheBytes: 32000}
	o = o.withDefaults(1000)
	if o.OffsetsBuckets != 1000 {
		t.Errorf("OffsetsBuckets = %d, want 1000 (capacity/16)", o.OffsetsBuckets)
	}
	if o.AdjBuckets < 1 || o.AdjBuckets > 1000 {
		t.Errorf("AdjBuckets = %d, want within (0, n]", o.AdjBuckets)
	}
	big := Options{Caching: true, OffsetsCacheBytes: 16, AdjCacheBytes: 1 << 30}
	big = big.withDefaults(1000)
	if big.AdjBuckets != 1000 {
		t.Errorf("ample C_adj should size buckets to ~n, got %d", big.AdjBuckets)
	}
}
