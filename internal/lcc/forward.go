package lcc

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// This file implements the forward algorithm of Schank & Wagner ("Finding,
// Counting and Listing all Triangles in Large Graphs", WEA'05), the
// experimental-study reference the paper points to in §V for a thorough
// comparison of triangle-counting algorithms. The forward algorithm orients
// every undirected edge from the lower-degree endpoint to the higher-degree
// one; the resulting DAG has out-degrees bounded by O(√m), and each
// triangle survives as exactly one directed wedge, so no double counting
// and no upper-triangle offsetting is needed. It serves here as an
// independent shared-memory baseline that cross-checks the edge-centric
// engines and as the A5 ablation (orientation vs. §II-C offsetting).

// Orientation is a degree-ordered acyclic orientation of an undirected
// graph: arc u→v exists iff {u,v} ∈ E and u precedes v in the total order
// (deg(u), u) < (deg(v), v).
type Orientation struct {
	out [][]graph.V // out-neighbourhoods, each sorted by vertex id
	n   int
}

// Orient builds the degree-ordered orientation of an undirected graph.
func Orient(g graph.Store) (*Orientation, error) {
	if g.Kind() != graph.Undirected {
		return nil, fmt.Errorf("lcc: Orient requires an undirected graph, got %v", g.Kind())
	}
	n := g.NumVertices()
	o := &Orientation{out: make([][]graph.V, n), n: n}
	var buf []graph.V
	for u := 0; u < n; u++ {
		buf = g.AdjInto(graph.V(u), buf)
		du := len(buf)
		var nbrs []graph.V
		for _, v := range buf {
			dv := g.OutDegree(v)
			if du < dv || (du == dv && graph.V(u) < v) {
				nbrs = append(nbrs, v)
			}
		}
		// buf is sorted by id and filtering preserves order.
		o.out[u] = nbrs
	}
	return o, nil
}

// Out returns the sorted out-neighbourhood of u under the orientation.
func (o *Orientation) Out(u graph.V) []graph.V { return o.out[u] }

// MaxOutDegree returns the largest oriented out-degree; for a degree-ordered
// orientation this is O(√m), the property that bounds the forward
// algorithm's work.
func (o *Orientation) MaxOutDegree() int {
	max := 0
	for _, nbrs := range o.out {
		if len(nbrs) > max {
			max = len(nbrs)
		}
	}
	return max
}

// NumArcs returns the number of oriented arcs (= m for a simple graph).
func (o *Orientation) NumArcs() int {
	total := 0
	for _, nbrs := range o.out {
		total += len(nbrs)
	}
	return total
}

// ForwardLCC computes per-vertex triangle counts and LCC scores of an
// undirected graph with the forward algorithm. The PerVertex convention
// matches SharedLCC: each triangle contributes 1 to each of its three
// corners, so the results are directly comparable (and are compared, in
// tests). Ops counts merge iterations, comparable to SharedLCC's
// intersection ops. The merge is inherent to forward — there is no method
// parameter because the algorithm enumerates, rather than counts, common
// neighbours.
func ForwardLCC(g *graph.Graph) (*SharedResult, error) {
	o, err := Orient(g)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	res := &SharedResult{
		LCC:       make([]float64, n),
		PerVertex: make([]int64, n),
	}
	for u := 0; u < n; u++ {
		outU := o.out[u]
		for _, v := range outU {
			// Enumerate common oriented out-neighbours w of u and v:
			// each is the apex of exactly one triangle {u,v,w}.
			outV := o.out[v]
			i, j := 0, 0
			for i < len(outU) && j < len(outV) {
				res.Ops++
				switch {
				case outU[i] == outV[j]:
					w := outU[i]
					res.PerVertex[u]++
					res.PerVertex[v]++
					res.PerVertex[w]++
					res.Triangles++
					i++
					j++
				case outU[i] < outV[j]:
					i++
				default:
					j++
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		res.LCC[v] = Score(graph.Undirected, res.PerVertex[v], g.OutDegree(graph.V(v)))
	}
	return res, nil
}

// Triangle is one triangle {U, V, W} with U < V < W in orientation order.
type Triangle struct {
	U, V, W graph.V
}

// ListTriangles enumerates every triangle of an undirected graph exactly
// once via the forward algorithm, in deterministic order. It is used by
// the community-analysis example and by tests that need the actual
// triangles rather than counts.
func ListTriangles(g *graph.Graph) ([]Triangle, error) {
	o, err := Orient(g)
	if err != nil {
		return nil, err
	}
	var out []Triangle
	for u := 0; u < o.n; u++ {
		outU := o.out[u]
		for _, v := range outU {
			outV := o.out[v]
			i, j := 0, 0
			for i < len(outU) && j < len(outV) {
				switch {
				case outU[i] == outV[j]:
					out = append(out, Triangle{graph.V(u), v, outU[i]})
					i++
					j++
				case outU[i] < outV[j]:
					i++
				default:
					j++
				}
			}
		}
	}
	return out, nil
}

// DegeneracyOrder returns a smallest-last (core) ordering of an undirected
// graph and its degeneracy (the largest minimum degree over the peeling).
// Orienting by a degeneracy order bounds oriented out-degrees by the
// degeneracy itself, which for real-world graphs is far below √m; the A5
// ablation compares it against the plain degree order.
func DegeneracyOrder(g *graph.Graph) (order []graph.V, degeneracy int, err error) {
	if g.Kind() != graph.Undirected {
		return nil, 0, fmt.Errorf("lcc: DegeneracyOrder requires an undirected graph, got %v", g.Kind())
	}
	n := g.NumVertices()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.V(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue over current degrees.
	buckets := make([][]graph.V, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], graph.V(v))
	}
	removed := make([]bool, n)
	order = make([]graph.V, 0, n)
	cur := 0
	for len(order) < n {
		// Find the lowest non-empty bucket; cur only needs to step
		// back by one per removal (degrees drop by at most 1 per
		// removed neighbour).
		if cur > 0 {
			cur--
		}
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxDeg {
			break
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[v] || deg[v] != cur {
			continue // stale bucket entry; v was re-bucketed
		}
		removed[v] = true
		order = append(order, v)
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, w := range g.Adj(v) {
			if !removed[w] {
				deg[w]--
				buckets[deg[w]] = append(buckets[deg[w]], w)
			}
		}
	}
	return order, degeneracy, nil
}

// OrientByOrder builds an orientation from an arbitrary total order given
// as a permutation of the vertices (order[i] is removed i-th): arcs point
// from earlier to later vertices. Out-neighbourhoods remain sorted by id.
func OrientByOrder(g *graph.Graph, order []graph.V) (*Orientation, error) {
	if g.Kind() != graph.Undirected {
		return nil, fmt.Errorf("lcc: OrientByOrder requires an undirected graph, got %v", g.Kind())
	}
	n := g.NumVertices()
	if len(order) != n {
		return nil, fmt.Errorf("lcc: order has %d entries for %d vertices", len(order), n)
	}
	pos := make([]int, n)
	seen := make([]bool, n)
	for i, v := range order {
		if int(v) >= n || seen[v] {
			return nil, fmt.Errorf("lcc: order is not a permutation (entry %d = %d)", i, v)
		}
		seen[v] = true
		pos[v] = i
	}
	o := &Orientation{out: make([][]graph.V, n), n: n}
	for u := 0; u < n; u++ {
		var nbrs []graph.V
		for _, v := range g.Adj(graph.V(u)) {
			if pos[u] < pos[v] {
				nbrs = append(nbrs, v)
			}
		}
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		o.out[u] = nbrs
	}
	return o, nil
}

// CountOriented counts triangles on a prebuilt orientation (each counted
// once). It is the inner kernel of ForwardLCC exposed for ablations that
// swap orderings.
func CountOriented(o *Orientation) (triangles int64, ops int64) {
	for u := 0; u < o.n; u++ {
		outU := o.out[u]
		for _, v := range outU {
			outV := o.out[v]
			i, j := 0, 0
			for i < len(outU) && j < len(outV) {
				ops++
				switch {
				case outU[i] == outV[j]:
					triangles++
					i++
					j++
				case outU[i] < outV[j]:
					i++
				default:
					j++
				}
			}
		}
	}
	return triangles, ops
}
