package lcc

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/rma"
)

// Fetch-plane micro-benchmarks: the three flavors of one adjacency fetch —
// a local partition read, a remote two-get pipeline, and an inline CLaMPI
// hit — isolated from the intersection kernels, so the perf trajectory
// (BENCH_*.json) tracks the flat fetch plane on its own. The companion
// alloc guards pin the steady state of all three flavors, plus the
// lookahead pipeline itself, at zero heap allocations.

// fetchHarness is a two-rank world with rank 0's worker ready to fetch:
// vertex `local` is owned by rank 0, `remote` by rank 1.
type fetchHarness struct {
	w             *worker
	local, remote graph.V
}

// newFetchHarness builds the harness over a small random graph. caching
// selects the CLaMPI-wrapped worker (C_offsets + C_adj, ScoreDegree — the
// golden cached configuration's policy).
func newFetchHarness(tb testing.TB, caching bool) *fetchHarness {
	return newFetchHarnessStorage(tb, caching, StoragePlain)
}

// newFetchHarnessStorage is newFetchHarness with the locals representation
// selected explicitly: StorageCompressed exercises the varint/delta decode
// on every flavor of the fetch plane.
func newFetchHarnessStorage(tb testing.TB, caching bool, storage StorageMode) *fetchHarness {
	tb.Helper()
	rng := rand.New(rand.NewPCG(11, 13))
	const n = 256
	edges := make([]graph.Edge, 4*n)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.V(rng.IntN(n)), Dst: graph.V(rng.IntN(n))}
	}
	g := graph.MustBuild(graph.Undirected, n, edges)
	opt := Options{Ranks: 2, DoubleBuffer: true, Storage: storage}
	if caching {
		opt.Caching = true
		opt.OffsetsCacheBytes = 1 << 14
		opt.AdjCacheBytes = 1 << 16
		opt.AdjScorePolicy = ScoreDegree
	}
	opt = opt.withDefaults(n)
	pt, err := part.Build(opt.Scheme, g, opt.Ranks)
	if err != nil {
		tb.Fatal(err)
	}
	locals := extractLocals(g, pt, storage, 0)
	comm := rma.NewCommWorkers(opt.Ranks, opt.Model, opt.Workers)
	wOff, wAdj := makeGraphWindows(comm, locals)
	w := newWorker(comm.Rank(0), g.Kind(), pt, locals[0], wOff, wAdj, buildResolve(pt), opt)
	h := &fetchHarness{w: w}
	// Pick a rank-0 and a rank-1 vertex with non-empty adjacency.
	for v := graph.V(0); int(v) < n; v++ {
		if len(g.Adj(v)) == 0 {
			continue
		}
		if pt.Owner(v) == 0 && h.local == 0 {
			h.local = v
		}
		if pt.Owner(v) == 1 && h.remote == 0 {
			h.remote = v
		}
	}
	if h.local == 0 || h.remote == 0 {
		tb.Fatal("harness graph has no usable local/remote vertex")
	}
	return h
}

// fetchOnce drives one full start→mid→finish fetch of vj on the harness
// worker and returns the resolved list length.
func (h *fetchHarness) fetchOnce(vj graph.V) int {
	f := &h.w.fetchA
	h.w.start(f, vj)
	h.w.mid(f)
	return len(h.w.finish(f))
}

// BenchmarkFetchLocal is the local flavor: resolve-table hit, partition
// read, one LocalCost charge. No requests, no cache.
func BenchmarkFetchLocal(b *testing.B) {
	h := newFetchHarness(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.fetchOnce(h.local)
	}
}

// BenchmarkFetchRemoteMiss is the non-cached remote flavor: the full
// two-get pipeline (offsets get, wait, adjacency get, wait) through
// caller-owned value requests.
func BenchmarkFetchRemoteMiss(b *testing.B) {
	h := newFetchHarness(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.fetchOnce(h.remote)
	}
}

// BenchmarkFetchCachedHit is the steady-state cached flavor: both the
// offsets and the adjacency access are inline CLaMPI hits (TryGet), served
// as window views with no request materialized at all.
func BenchmarkFetchCachedHit(b *testing.B) {
	h := newFetchHarness(b, true)
	h.fetchOnce(h.remote) // compulsory misses: populate both caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.fetchOnce(h.remote)
	}
}

// TestFetchFlavorsAllocFree pins all three fetch flavors at zero
// steady-state heap allocations.
func TestFetchFlavorsAllocFree(t *testing.T) {
	cases := []struct {
		name    string
		caching bool
		target  func(h *fetchHarness) graph.V
	}{
		{"local", false, func(h *fetchHarness) graph.V { return h.local }},
		{"remote-miss", false, func(h *fetchHarness) graph.V { return h.remote }},
		{"cached-hit", true, func(h *fetchHarness) graph.V { return h.remote }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			h := newFetchHarness(t, tc.caching)
			vj := tc.target(h)
			h.fetchOnce(vj) // warm pools / populate caches
			if allocs := testing.AllocsPerRun(100, func() { h.fetchOnce(vj) }); allocs > 0 {
				t.Errorf("%s fetch allocates %.1f objects per op, want 0", tc.name, allocs)
			}
		})
	}
}

// TestLookaheadPipelineAllocFree pins the full forEachEdge lookahead
// pipeline — ring refills, fetch slot flips, visits — at zero steady-state
// allocations for both the plain and the cached worker.
func TestLookaheadPipelineAllocFree(t *testing.T) {
	for _, caching := range []bool{false, true} {
		name := "plain"
		if caching {
			name = "cached"
		}
		t.Run(name, func(t *testing.T) {
			h := newFetchHarness(t, caching)
			walk := func() {
				h.w.forEachEdge(func(li int, vj graph.V, adjJ []graph.V) {})
			}
			walk() // warm pools, populate caches
			if allocs := testing.AllocsPerRun(5, walk); allocs > 0 {
				t.Errorf("lookahead pipeline (%s) allocates %.1f objects per walk, want 0", name, allocs)
			}
		})
	}
}

// TestCompressedDecodeAllocFree pins the compressed-locals decode path at
// zero steady-state heap allocations across every flavor that reaches it:
// the local fetch (decode into the slot's dec buffer), the remote two-get
// pipeline (decode into the caller-owned request's vbuf at issue), the
// inline cache hit (ReadVertices into the slot buffer), and the full
// lookahead walk — ring-scan decode, fetch-slot decode, and the visit
// side's adjOwned memo all reusing their warm buffers.
func TestCompressedDecodeAllocFree(t *testing.T) {
	cases := []struct {
		name    string
		caching bool
		target  func(h *fetchHarness) graph.V
	}{
		{"local", false, func(h *fetchHarness) graph.V { return h.local }},
		{"remote-miss", false, func(h *fetchHarness) graph.V { return h.remote }},
		{"cached-hit", true, func(h *fetchHarness) graph.V { return h.remote }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			h := newFetchHarnessStorage(t, tc.caching, StorageCompressed)
			if !h.w.compLoc || h.w.wAdj.Kind() != rma.CompressedVertices {
				t.Fatal("harness did not build compressed locals")
			}
			vj := tc.target(h)
			h.fetchOnce(vj) // warm decode buffers / populate caches
			if allocs := testing.AllocsPerRun(100, func() { h.fetchOnce(vj) }); allocs > 0 {
				t.Errorf("compressed %s fetch allocates %.1f objects per op, want 0", tc.name, allocs)
			}
		})
	}
	t.Run("lookahead-walk", func(t *testing.T) {
		h := newFetchHarnessStorage(t, false, StorageCompressed)
		walk := func() {
			h.w.forEachEdge(func(li int, vj graph.V, adjJ []graph.V) {
				_ = h.w.adjOwned(li) // the visit side's decode memo
			})
		}
		walk() // warm every reuse buffer along the ring
		if allocs := testing.AllocsPerRun(5, walk); allocs > 0 {
			t.Errorf("compressed lookahead walk allocates %.1f objects per walk, want 0", allocs)
		}
	})
}

// TestFaultPlaneDisabledAllocFree pins the cost of the disabled fault
// plane at exactly nothing: with no schedule installed (Options.Faults
// nil, so every rank's schedule pointer stays nil) the injection guards in
// the fetch flavors are a single nil check, and the steady-state
// allocation profile of all three flavors remains zero objects per op.
func TestFaultPlaneDisabledAllocFree(t *testing.T) {
	cases := []struct {
		name    string
		caching bool
		target  func(h *fetchHarness) graph.V
	}{
		{"local", false, func(h *fetchHarness) graph.V { return h.local }},
		{"remote-miss", false, func(h *fetchHarness) graph.V { return h.remote }},
		{"cached-hit", true, func(h *fetchHarness) graph.V { return h.remote }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// The harness never sets Options.Faults, so the schedule
			// pointer on every rank is nil — the disabled plane.
			h := newFetchHarness(t, tc.caching)
			vj := tc.target(h)
			h.fetchOnce(vj) // warm pools / populate caches
			if allocs := testing.AllocsPerRun(100, func() { h.fetchOnce(vj) }); allocs > 0 {
				t.Errorf("%s fetch with disabled fault plane allocates %.1f objects per op, want 0", tc.name, allocs)
			}
		})
	}
}
