package lcc

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/part"
)

// fig1Graph is the toy graph of Fig. 1 (left): two triangles sharing
// structure across the A/B partition boundary.
func fig1Graph() *graph.Graph {
	return graph.MustBuild(graph.Undirected, 6, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 1, Dst: 4}, {Src: 2, Dst: 4}, {Src: 3, Dst: 4}, {Src: 4, Dst: 5},
	})
}

func lccClose(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			return false
		}
	}
	return true
}

func TestScore(t *testing.T) {
	if got := Score(graph.Undirected, 1, 2); got != 1.0 {
		t.Errorf("undirected Score(1,2) = %v, want 1", got)
	}
	if got := Score(graph.Undirected, 3, 4); got != 0.5 {
		t.Errorf("undirected Score(3,4) = %v, want 0.5", got)
	}
	if got := Score(graph.Directed, 6, 3); got != 1.0 {
		t.Errorf("directed Score(6,3) = %v, want 1", got)
	}
	if got := Score(graph.Undirected, 0, 1); got != 0 {
		t.Errorf("degree<2 Score = %v, want 0", got)
	}
}

func TestSharedLCCKnownGraph(t *testing.T) {
	// Triangle graph: every vertex has LCC 1.
	tri := graph.MustBuild(graph.Undirected, 3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}})
	res := SharedLCC(tri, intersect.MethodHybrid)
	for v, c := range res.LCC {
		if c != 1.0 {
			t.Errorf("triangle LCC[%d] = %v, want 1", v, c)
		}
	}
	if res.Triangles != 1 {
		t.Errorf("Triangles = %d, want 1", res.Triangles)
	}

	// Square (4-cycle): no triangles, all LCC 0.
	sq := graph.MustBuild(graph.Undirected, 4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0}})
	res = SharedLCC(sq, intersect.MethodHybrid)
	for v, c := range res.LCC {
		if c != 0 {
			t.Errorf("square LCC[%d] = %v, want 0", v, c)
		}
	}
	if res.Triangles != 0 {
		t.Errorf("Triangles = %d, want 0", res.Triangles)
	}

	// Complete graph K5: every LCC 1, C(5,3)=10 triangles.
	var edges []graph.Edge
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, graph.Edge{Src: graph.V(i), Dst: graph.V(j)})
		}
	}
	k5 := graph.MustBuild(graph.Undirected, 5, edges)
	res = SharedLCC(k5, intersect.MethodHybrid)
	for v, c := range res.LCC {
		if c != 1.0 {
			t.Errorf("K5 LCC[%d] = %v, want 1", v, c)
		}
	}
	if res.Triangles != 10 {
		t.Errorf("K5 Triangles = %d, want 10", res.Triangles)
	}
}

func TestSharedLCCFig1Graph(t *testing.T) {
	g := fig1Graph()
	res := SharedLCC(g, intersect.MethodHybrid)
	// Triangles: {0,1,2}, {1,2,4}... check: edges 0-1,0-2,1-2 -> yes;
	// 1-2,1-4,2-4 -> yes; 1-3,1-4,3-4 -> yes. Total 3.
	if res.Triangles != 3 {
		t.Errorf("Triangles = %d, want 3", res.Triangles)
	}
	// Vertex 0: neighbours {1,2}, edge 1-2 exists: LCC = 2*1/(2*1) = 1.
	if res.LCC[0] != 1.0 {
		t.Errorf("LCC[0] = %v, want 1", res.LCC[0])
	}
	// Vertex 5: single neighbour, LCC 0.
	if res.LCC[5] != 0 {
		t.Errorf("LCC[5] = %v, want 0", res.LCC[5])
	}
	// Vertex 1: neighbours {0,2,3,4}, edges among them: 0-2, 2-4, 3-4 ->
	// LCC = 2*3/(4*3) = 0.5.
	if res.LCC[1] != 0.5 {
		t.Errorf("LCC[1] = %v, want 0.5", res.LCC[1])
	}
}

func TestSharedMatchesBruteForce(t *testing.T) {
	for _, kind := range []graph.Kind{graph.Undirected, graph.Directed} {
		for seed := uint64(1); seed <= 5; seed++ {
			g := randomSimpleGraph(kind, 80, 400, seed)
			want := BruteForceLCC(g)
			for _, m := range []intersect.Method{intersect.MethodSSI, intersect.MethodBinary, intersect.MethodHybrid} {
				got := SharedLCC(g, m)
				if got.Triangles != want.Triangles {
					t.Errorf("%v seed %d method %v: Triangles = %d, want %d",
						kind, seed, m, got.Triangles, want.Triangles)
				}
				if !lccClose(got.LCC, want.LCC) {
					t.Errorf("%v seed %d method %v: LCC mismatch", kind, seed, m)
				}
			}
		}
	}
}

func TestSharedParallelMatchesSequential(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, graph.Undirected, 42))
	want := SharedLCC(g, intersect.MethodHybrid)
	got := SharedLCCParallel(g, intersect.MethodHybrid, intersect.ParallelConfig{Threads: 4, Cutoff: 64})
	if got.Triangles != want.Triangles {
		t.Errorf("parallel Triangles = %d, want %d", got.Triangles, want.Triangles)
	}
	if !lccClose(got.LCC, want.LCC) {
		t.Error("parallel LCC differs from sequential")
	}
}

func randomSimpleGraph(kind graph.Kind, n, m int, seed uint64) *graph.Graph {
	rng := rand.New(rand.NewPCG(seed, seed*7+1))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.V(rng.IntN(n)), Dst: graph.V(rng.IntN(n))}
	}
	return graph.MustBuild(kind, n, edges)
}

// --- distributed engine --------------------------------------------------

func TestDistributedMatchesSharedAllConfigs(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"fig1":       fig1Graph(),
		"undirected": randomSimpleGraph(graph.Undirected, 120, 900, 3),
		"directed":   randomSimpleGraph(graph.Directed, 120, 900, 4),
		"rmat":       gen.RMAT(gen.DefaultRMAT(9, 8, graph.Undirected, 5)),
	}
	for name, g := range graphs {
		want := SharedLCC(g, intersect.MethodHybrid)
		for _, ranks := range []int{1, 2, 4, 7} {
			for _, caching := range []bool{false, true} {
				for _, db := range []bool{false, true} {
					opt := Options{
						Ranks:        ranks,
						Method:       intersect.MethodHybrid,
						Caching:      caching,
						DoubleBuffer: db,
					}
					if caching {
						opt.OffsetsCacheBytes = 1 << 14
						opt.AdjCacheBytes = 1 << 16
					}
					got, err := Run(g, opt)
					if err != nil {
						t.Fatalf("%s p=%d caching=%v db=%v: %v", name, ranks, caching, db, err)
					}
					if got.Triangles != want.Triangles {
						t.Errorf("%s p=%d caching=%v db=%v: Triangles = %d, want %d",
							name, ranks, caching, db, got.Triangles, want.Triangles)
					}
					if !lccClose(got.LCC, want.LCC) {
						t.Errorf("%s p=%d caching=%v db=%v: LCC mismatch", name, ranks, caching, db)
					}
				}
			}
		}
	}
}

func TestDistributedCyclicScheme(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, graph.Undirected, 6))
	want := SharedLCC(g, intersect.MethodHybrid)
	got, err := Run(g, Options{Ranks: 4, Scheme: part.Cyclic, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Triangles != want.Triangles {
		t.Errorf("cyclic Triangles = %d, want %d", got.Triangles, want.Triangles)
	}
	if !lccClose(got.LCC, want.LCC) {
		t.Error("cyclic LCC mismatch")
	}
}

func TestDistributedDegreeScores(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, graph.Undirected, 7))
	want := SharedLCC(g, intersect.MethodHybrid)
	got, err := Run(g, Options{
		Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true,
		Caching: true, OffsetsCacheBytes: 1 << 13, AdjCacheBytes: 1 << 14,
		DegreeScores: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Triangles != want.Triangles {
		t.Errorf("degree-score Triangles = %d, want %d", got.Triangles, want.Triangles)
	}
}

func TestCachingReducesSimTime(t *testing.T) {
	// A power-law graph with plenty of reuse: the cached run must be
	// faster and must register cache hits (§IV-D-1).
	g := gen.RMAT(gen.DefaultRMAT(11, 16, graph.Undirected, 8))
	base := Options{Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true}
	plain, err := Run(g, base)
	if err != nil {
		t.Fatal(err)
	}
	withCache := base
	withCache.Caching = true
	withCache.OffsetsCacheBytes = 1 << 20
	withCache.AdjCacheBytes = 1 << 22
	cached, err := Run(g, withCache)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Triangles != plain.Triangles {
		t.Fatalf("caching changed the result: %d vs %d", cached.Triangles, plain.Triangles)
	}
	if cached.SimTime >= plain.SimTime {
		t.Errorf("cached run (%.2fms) not faster than non-cached (%.2fms)",
			cached.SimTime/1e6, plain.SimTime/1e6)
	}
	var hits int64
	for _, s := range cached.PerRank {
		hits += s.AdjCache.Hits + s.OffsetsCache.Hits
	}
	if hits == 0 {
		t.Error("large cache recorded zero hits on a power-law graph")
	}
}

func TestDoubleBufferingHelps(t *testing.T) {
	// Overlap must never hurt, and on remote-heavy runs it should help.
	g := gen.RMAT(gen.DefaultRMAT(10, 16, graph.Undirected, 9))
	on, err := Run(g, Options{Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(g, Options{Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: false})
	if err != nil {
		t.Fatal(err)
	}
	if on.Triangles != off.Triangles {
		t.Fatalf("double buffering changed the result")
	}
	if on.SimTime > off.SimTime*1.001 {
		t.Errorf("double buffering slowed the run: %.2fms vs %.2fms", on.SimTime/1e6, off.SimTime/1e6)
	}
}

func TestRemoteReadFractionGrowsWithRanks(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, graph.Undirected, 10))
	prev := -1.0
	for _, p := range []int{2, 4, 8, 16} {
		res, err := Run(g, Options{Ranks: p, Method: intersect.MethodHybrid, DoubleBuffer: true})
		if err != nil {
			t.Fatal(err)
		}
		frac := res.RemoteReadFraction()
		if frac < prev {
			t.Errorf("remote fraction decreased from %.3f to %.3f at p=%d", prev, frac, p)
		}
		prev = frac
	}
	if prev < 0.5 {
		t.Errorf("remote fraction at p=16 = %.2f, want high (paper: up to 0.98)", prev)
	}
}

func TestCommDominatesAtScale(t *testing.T) {
	// §IV-D-2: communication dominates total running time as p grows.
	g := gen.RMAT(gen.DefaultRMAT(10, 8, graph.Undirected, 11))
	res, err := Run(g, Options{Ranks: 16, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if cf := res.CommFraction(); cf < 0.5 {
		t.Errorf("comm fraction at p=16 = %.2f, want dominant", cf)
	}
}

func TestOnRemoteReadHook(t *testing.T) {
	g := fig1Graph()
	events := make([][]graph.V, 2)
	_, err := Run(g, Options{
		Ranks: 2, Method: intersect.MethodHybrid, DoubleBuffer: true,
		OnRemoteRead: func(rank int, v graph.V) { events[rank] = append(events[rank], v) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node A (vertices 0-2) must have read vertex 4 remotely (Fig. 1:
	// computing LCC(1) and LCC(2) requires adj(4) twice).
	count4 := 0
	for _, v := range events[0] {
		if v == 4 {
			count4++
		}
	}
	if count4 < 2 {
		t.Errorf("rank 0 read vertex 4 %d times, want >= 2 (Fig. 1 data reuse)", count4)
	}
	for r, evs := range events {
		for _, v := range evs {
			owner := 0
			if v >= 3 {
				owner = 1
			}
			if owner == r {
				t.Errorf("rank %d reported remote read of its own vertex %d", r, v)
			}
		}
	}
}

func TestTriangleCountConversion(t *testing.T) {
	if got := TriangleCount(graph.Undirected, 9); got != 3 {
		t.Errorf("undirected TriangleCount(9) = %d, want 3", got)
	}
	if got := TriangleCount(graph.Directed, 9); got != 9 {
		t.Errorf("directed TriangleCount(9) = %d, want 9", got)
	}
}

func TestRunValidation(t *testing.T) {
	g := fig1Graph()
	if _, err := Run(g, Options{Ranks: -2}); err == nil {
		t.Error("Run accepted negative rank count")
	}
}

func TestRunDataset(t *testing.T) {
	res, err := RunDataset("fb-sim", Options{Ranks: 2, Method: intersect.MethodHybrid, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles <= 0 {
		t.Errorf("fb-sim Triangles = %d, want > 0 (dense social circles)", res.Triangles)
	}
	if _, err := RunDataset("nope", Options{Ranks: 2}); err == nil {
		t.Error("RunDataset accepted unknown dataset")
	}
}

func TestAvgRemoteReadTimeAndMissRates(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, graph.Undirected, 12))
	res, err := Run(g, Options{
		Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true,
		Caching: true, OffsetsCacheBytes: 1 << 16, AdjCacheBytes: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.AvgRemoteReadTime(); v <= 0 {
		t.Errorf("AvgRemoteReadTime = %v, want > 0", v)
	}
	offR, adjR := res.CacheMissRates()
	if offR <= 0 || offR > 1 || adjR <= 0 || adjR > 1 {
		t.Errorf("miss rates out of range: off=%v adj=%v", offR, adjR)
	}
}
