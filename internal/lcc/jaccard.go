package lcc

import (
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/rma"
)

// Jaccard similarity is the paper's future-work direction (ii): "other
// graph problems that may benefit from the proposed approach" — the
// authors' own prior work computes distributed Jaccard similarity with
// exactly this access pattern (Besta et al., IPDPS'20, cited as [12]).
//
// The per-edge Jaccard coefficient J(u,v) = |adj(u) ∩ adj(v)| / |adj(u) ∪
// adj(v)| needs, for every edge, the same two-get remote read of adj(v)
// the LCC engine performs, so it runs on the identical asynchronous RMA
// substrate — caching, degree scores and double buffering included.

// JaccardResult is the output of a distributed Jaccard computation.
type JaccardResult struct {
	// Scores holds one coefficient per stored arc, aligned with the
	// graph's CSR order: Scores[k] is the similarity across the k-th arc
	// (for undirected graphs each edge appears twice, once per
	// direction, with equal scores).
	Scores  []float64
	SimTime float64
	PerRank []RankStats
}

// RunJaccard computes the per-edge Jaccard similarity with the same fully
// asynchronous distributed engine as RunLCC.
func RunJaccard(g *graph.Graph, opt Options) (*JaccardResult, error) {
	n := g.NumVertices()
	opt = opt.withDefaults(n)
	pt, err := part.New(opt.Scheme, n, opt.Ranks)
	if err != nil {
		return nil, err
	}
	locals := part.ExtractAll(g, pt)

	comm := rma.NewCommWorkers(opt.Ranks, opt.Model, opt.Workers)
	opt.configureCharges(comm)
	wOff, wAdj := makeGraphWindows(comm, locals)
	resolve := buildResolve(pt)

	scores := make([]float64, g.NumArcs())
	stats := make([]RankStats, opt.Ranks)

	// Global arc index of each rank's first arc: offsets of preceding
	// ranks' partitions sum up because Extract preserves CSR order.
	base := make([]uint64, opt.Ranks+1)
	for r, lc := range locals {
		base[r+1] = base[r] + uint64(len(lc.Adj))
	}

	deleg := BuildDelegation(g, opt.DelegateBytes)

	ranks := comm.Run(func(r *rma.Rank) {
		w := newWorker(r, g.Kind(), pt, locals[r.ID()], wOff, wAdj, resolve, opt)
		w.deleg = deleg
		lc := locals[r.ID()]
		arc := base[r.ID()]
		// forEachEdge visits arcs in exactly CSR order, so `arc`
		// advances in lockstep.
		w.forEachEdge(func(li int, vj graph.V, adjJ []graph.V) {
			adjI := lc.AdjOf(li)
			inter, ops := w.its.Count(opt.Method, adjI, adjJ)
			union := len(adjI) + len(adjJ) - inter
			if union > 0 {
				scores[arc] = float64(inter) / float64(union)
			}
			arc++
			w.r.Compute(ops + 6)
		})
		w.close()
		stats[r.ID()] = w.stats()
	})

	return &JaccardResult{
		Scores:  scores,
		SimTime: rma.MaxClock(ranks),
		PerRank: stats,
	}, nil
}

// RunJaccardDataset is RunJaccard over a named dataset from the registry.
func RunJaccardDataset(name string, opt Options) (*JaccardResult, error) {
	g, err := gen.Load(name)
	if err != nil {
		return nil, err
	}
	return RunJaccard(g, opt)
}

// BruteForceJaccard is the O(m·d) reference used by tests.
func BruteForceJaccard(g *graph.Graph) []float64 {
	scores := make([]float64, g.NumArcs())
	arc := 0
	for v := 0; v < g.NumVertices(); v++ {
		adjV := g.Adj(graph.V(v))
		for _, u := range adjV {
			adjU := g.Adj(u)
			inter := 0
			for _, x := range adjV {
				if g.HasEdge(u, x) {
					inter++
				}
			}
			union := len(adjV) + len(adjU) - inter
			if union > 0 {
				scores[arc] = float64(inter) / float64(union)
			}
			arc++
		}
	}
	return scores
}
