package lcc

import (
	"context"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Jaccard similarity is the paper's future-work direction (ii): "other
// graph problems that may benefit from the proposed approach" — the
// authors' own prior work computes distributed Jaccard similarity with
// exactly this access pattern (Besta et al., IPDPS'20, cited as [12]).
//
// The per-edge Jaccard coefficient J(u,v) = |adj(u) ∩ adj(v)| / |adj(u) ∪
// adj(v)| needs, for every edge, the same two-get remote read of adj(v)
// the LCC engine performs, so it runs on the identical asynchronous RMA
// substrate — caching, degree scores and double buffering included.

// JaccardResult is the output of a distributed Jaccard computation.
type JaccardResult struct {
	// Scores holds one coefficient per stored arc, aligned with the
	// graph's CSR order: Scores[k] is the similarity across the k-th arc
	// (for undirected graphs each edge appears twice, once per
	// direction, with equal scores).
	Scores  []float64
	SimTime float64
	PerRank []RankStats
}

// RunJaccard computes the per-edge Jaccard similarity with the same fully
// asynchronous distributed engine as RunLCC.
func RunJaccard(g graph.Store, opt Options) (*JaccardResult, error) {
	return RunJaccardCtx(context.Background(), g, opt)
}

// RunJaccardCtx is RunJaccard under supervision, with the same
// cancellation, panic-isolation and crash-stop contract as RunCtx. The
// setup rides the Snapshot path, so arc-balanced (BlockArcs) partitions
// now work for Jaccard too.
func RunJaccardCtx(ctx context.Context, g graph.Store, opt Options) (*JaccardResult, error) {
	opt = opt.withDefaults(g.NumVertices())
	snap, err := NewSnapshotOpts(g, SnapshotOptions{
		Ranks: opt.Ranks, Scheme: opt.Scheme, DelegateBytes: opt.DelegateBytes,
		Storage: opt.Storage, MemBudgetBytes: opt.MemBudgetBytes,
	})
	if err != nil {
		return nil, err
	}
	return snap.RunJaccardCtx(ctx, opt)
}

// RunJaccardDataset is RunJaccard over a named dataset from the registry.
func RunJaccardDataset(name string, opt Options) (*JaccardResult, error) {
	g, err := gen.Load(name)
	if err != nil {
		return nil, err
	}
	return RunJaccard(g, opt)
}

// BruteForceJaccard is the O(m·d) reference used by tests.
func BruteForceJaccard(g *graph.Graph) []float64 {
	scores := make([]float64, g.NumArcs())
	arc := 0
	for v := 0; v < g.NumVertices(); v++ {
		adjV := g.Adj(graph.V(v))
		for _, u := range adjV {
			adjU := g.Adj(u)
			inter := 0
			for _, x := range adjV {
				if g.HasEdge(u, x) {
					inter++
				}
			}
			union := len(adjV) + len(adjU) - inter
			if union > 0 {
				scores[arc] = float64(inter) / float64(union)
			}
			arc++
		}
	}
	return scores
}
