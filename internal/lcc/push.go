package lcc

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/rma"
)

// This file implements the push side of the push–pull dichotomy the paper
// lists as future work (§VI ii, citing Besta et al., HPDC'17). The pull
// engine (engine.go) has every rank read the adjacency lists it is missing
// and count triangles for its own vertices; each undirected triangle is
// therefore *discovered three times*, once per corner owner, and each
// discovery pulls a full adjacency list across the network. The push engine
// inverts the data flow: each triangle is discovered exactly once — at the
// owner of its corner that is smallest in a hashed total order (see
// discLess), by walking only wedges v_i <h v_j and keeping common
// neighbours v_k >h v_j — and the two non-local corners receive their +1
// contribution through one-sided accumulates into a third RMA window of
// per-vertex counters.
//
// The trade this exposes (and the A10 ablation measures):
//
//   - pull moves large payloads (whole adjacency lists, α + deg·4β per
//     get) but needs no write traffic and *no synchronization at all*;
//   - push pulls only half the wedges but scatters two fine-grained
//     writes per triangle, and must close with one fence so every
//     contribution has landed before LCC scores are read — the single
//     synchronization point the paper's pull design exists to avoid.
//
// With direct accumulates (PushDirect) the α-per-triangle cost is ruinous
// on triangle-dense graphs; with local combining (PushBatched) the writes
// collapse to one batched accumulate per (rank, target-rank) pair and push
// becomes competitive exactly where caching does not help pull: flat degree
// distributions with little reuse.

// PushAggregation selects how the push engine ships triangle contributions.
type PushAggregation uint8

const (
	// PushDirect issues one 8-byte Accumulate per remote triangle corner
	// as soon as the triangle is found. Simple, fully overlapped, and
	// α-bound: two messages per triangle.
	PushDirect PushAggregation = iota
	// PushBatched combines contributions in a per-rank local map and
	// ships one AccumulateBatch per target rank after the wedge walk —
	// the message-aggregation optimization every production push system
	// applies.
	PushBatched
)

func (a PushAggregation) String() string {
	switch a {
	case PushDirect:
		return "direct"
	case PushBatched:
		return "batched"
	default:
		return "unknown"
	}
}

// PushOptions configure a push-mode run. The embedded Options keep their
// meaning: the caches still accelerate the (halved) pull side, the cost
// model and scheme are shared with the pull engine so the two are directly
// comparable.
type PushOptions struct {
	Options
	// Aggregation selects direct scatters or local combining.
	Aggregation PushAggregation
}

// mix32 is the 32-bit murmur3 finalizer: a bijective scramble of vertex
// ids. The discovery order must be decoupled from the partition order —
// under the raw id order the rank owning the lowest block would keep
// almost every wedge (every neighbour id is larger) while the last rank
// kept none, so the halved get traffic would all pool on one critical-path
// rank. Hashing makes "smallest corner" uniform across ranks.
func mix32(x graph.V) uint32 {
	z := uint32(x)
	z ^= z >> 16
	z *= 0x85ebca6b
	z ^= z >> 13
	z *= 0xc2b2ae35
	z ^= z >> 16
	return z
}

// discLess is the deterministic total order used for once-per-triangle
// discovery: hashed id, ties broken by raw id (mix32 is bijective, so ties
// never actually occur; the fallback keeps the order total by
// construction).
func discLess(u, v graph.V) bool {
	hu, hv := mix32(u), mix32(v)
	if hu != hv {
		return hu < hv
	}
	return u < v
}

// maxOutstandingAccumulates bounds the queue of pending direct accumulates
// per rank; when full, the rank flushes the counter window. Real NICs and
// MPI implementations cap outstanding non-blocking operations the same way;
// only the first flush in a drained queue exposes latency, so the charge
// stays α + 8β per message amortized.
const maxOutstandingAccumulates = 4096

// RunPush executes push-mode distributed triangle counting and LCC. It
// requires an undirected graph: the once-per-triangle discovery rule
// totally orders corners, which has no meaning for the directed Eq. (1)
// numerator. Results (LCC and Triangles) are bit-identical to Run's.
func RunPush(g graph.Store, opt PushOptions) (*Result, error) {
	return RunPushCtx(context.Background(), g, opt)
}

// RunPushCtx is RunPush under supervision, with the same cancellation,
// panic-isolation and crash-stop contract as RunCtx. The push engine's
// single fence is a cancellation point like every barrier: a canceled run
// wakes the ranks parked in the rendezvous and unwinds them.
func RunPushCtx(ctx context.Context, g graph.Store, opt PushOptions) (*Result, error) {
	if g.Kind() != graph.Undirected {
		return nil, fmt.Errorf("lcc: push engine requires an undirected graph (directed LCC has no smallest-corner discovery rule)")
	}
	n := g.NumVertices()
	opt.Options = opt.Options.withDefaults(n)
	if opt.Ranks < 1 {
		return nil, fmt.Errorf("lcc: invalid rank count %d", opt.Ranks)
	}
	pt, err := part.Build(opt.Scheme, g, opt.Ranks)
	if err != nil {
		return nil, err
	}
	locals := extractLocals(g, pt, opt.Storage, opt.MemBudgetBytes)

	// The graph windows are typed and read-only; the triangle-counter
	// window stays a writable byte window — it is the one region peers
	// write (Accumulate), so its gets keep snapshot-copy semantics.
	triBufs := make([][]byte, opt.Ranks)
	for r, lc := range locals {
		triBufs[r] = make([]byte, 8*lc.NumLocal())
	}

	comm := rma.NewCommWorkers(opt.Ranks, opt.Model, opt.Workers)
	opt.configureCharges(comm)
	wOff, wAdj := makeGraphWindows(comm, locals)
	wTri := comm.CreateWindow("triangles", triBufs)
	bar := comm.NewBarrier()
	resolve := buildResolve(pt)
	deleg := BuildDelegation(g, opt.DelegateBytes)

	lccOut := make([]float64, n)
	triOut := make([]int64, opt.Ranks)
	stats := make([]RankStats, opt.Ranks)

	ranks, err := comm.RunCtx(ctx, func(r *rma.Rank) {
		w := newWorker(r, g.Kind(), pt, locals[r.ID()], wOff, wAdj, resolve, opt.Options)
		w.deleg = deleg
		defer w.close()
		sumT := w.runPush(lccOut, wTri, bar, opt.Aggregation)
		w.close()
		triOut[r.ID()] = sumT
		stats[r.ID()] = w.stats()
	})
	if err != nil {
		return nil, err
	}

	res := &Result{LCC: lccOut, PerRank: stats, SimTime: rma.MaxClock(ranks),
		DelegatedVertices: deleg.Len(), DelegationBytes: deleg.Bytes()}
	for _, t := range triOut {
		res.SumT += t
	}
	res.Triangles = TriangleCount(g.Kind(), res.SumT)
	return res, nil
}

// runPush walks the rank's upper wedges, discovers each triangle once,
// keeps the smallest corner's count locally and scatters the other two
// corners' contributions, then fences and scores the owned vertices. It
// returns this rank's Σ t_i (after the fence, i.e. including contributions
// pushed by peers).
func (w *worker) runPush(lccOut []float64, wTri *rma.Window, bar *rma.Barrier, agg PushAggregation) int64 {
	w.r.LockAll(wTri)
	nLocal := w.lc.NumLocal()
	perVertexT := make([]uint64, nLocal)

	var combined map[graph.V]uint64
	if agg == PushBatched {
		combined = make(map[graph.V]uint64)
	}
	outstanding := 0
	push := func(u graph.V) {
		if agg == PushBatched {
			combined[u]++
			w.r.Compute(1)
			return
		}
		rv := w.resolve[u]
		owner := int(rv >> resolveLiBits)
		li := int(rv & (1<<resolveLiBits - 1))
		// Fire-and-forget: release immediately so the pooled request is
		// recycled at the next flush instead of becoming garbage.
		w.r.Accumulate(wTri, owner, 8*li, 1).Release()
		if owner != w.r.ID() {
			outstanding++
			if outstanding >= maxOutstandingAccumulates {
				w.r.FlushAll(wTri)
				outstanding = 0
			}
		}
	}

	// Only wedges v_i <h v_j (hashed order) are walked: the filter halves
	// the pull traffic relative to Algorithm 3 — uniformly across ranks,
	// see discLess — and makes the hash-smallest corner the unique
	// discoverer of each triangle.
	w.edgeFilter = func(li int, vj graph.V) bool {
		return discLess(w.pt.VertexAt(w.r.ID(), li), vj)
	}
	var common []graph.V
	w.forEachEdge(func(li int, vj graph.V, adjJ []graph.V) {
		adjI := w.adjOwned(li)
		var ops int
		common, ops = w.its.Elements(w.opt.Method, adjI, adjJ, common[:0])
		w.r.Compute(ops + 4)
		for _, vk := range common {
			// Keep only v_j <h v_k: with the walk filter this makes the
			// corner order v_i <h v_j <h v_k unique per triangle.
			if !discLess(vj, vk) {
				continue
			}
			perVertexT[li]++
			push(vj)
			push(vk)
		}
	})

	if agg == PushBatched {
		w.flushCombined(wTri, combined)
	}

	// One fence: every contribution — ours and our peers' — must have
	// landed in the counter windows before scores are read. This is the
	// single synchronization point push re-introduces.
	w.r.Fence(wTri, bar)

	// Fold the locally-kept smallest-corner counts into the window image
	// and score. The local region is read back with one local get.
	req := w.r.Get(wTri, w.r.ID(), 0, 8*nLocal)
	pushed := rma.DecodeUint64s(req.Data())
	req.Release()

	var sumT int64
	for li := 0; li < nLocal; li++ {
		t := int64(perVertexT[li] + pushed[li])
		v := w.pt.VertexAt(w.r.ID(), li)
		d := w.lc.DegreeOf(li)
		lccOut[v] = Score(w.kind, t, d)
		sumT += t
		w.r.Compute(2)
	}
	w.r.UnlockAll(wTri)
	return sumT
}

// flushCombined groups the combining map by owner rank and ships one
// batched accumulate per target. Updates are sorted by offset so runs are
// deterministic and the wire image is sequential.
func (w *worker) flushCombined(wTri *rma.Window, combined map[graph.V]uint64) {
	byOwner := make(map[int][]rma.Update)
	for u, cnt := range combined {
		rv := w.resolve[u]
		owner := int(rv >> resolveLiBits)
		byOwner[owner] = append(byOwner[owner], rma.Update{Offset: 8 * int(rv&(1<<resolveLiBits-1)), Delta: cnt})
	}
	owners := make([]int, 0, len(byOwner))
	for o := range byOwner {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	for _, o := range owners {
		ups := byOwner[o]
		sort.Slice(ups, func(i, j int) bool { return ups[i].Offset < ups[j].Offset })
		w.r.Compute(len(ups))
		w.r.AccumulateBatch(wTri, o, ups).Release()
	}
}
