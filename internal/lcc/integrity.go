package lcc

// Snapshot integrity: per-rank CRC-32C over the resident adjacency plane,
// recorded once at build time and re-verifiable for the life of the
// snapshot. The serving layer holds snapshots resident for hours serving
// thousands of queries; a DRAM fault or wild write in that window would
// otherwise corrupt results silently — the engines trust resident memory
// completely, and a flipped adjacency bit just becomes a wrong triangle
// count. The scrubber (serve.Scrubber) calls Verify on idle instances and
// quarantines on mismatch.
//
// Coverage: each rank's offset table and adjacency plane (plain vertex
// array, or the compressed stream plus both of its offset indexes), and
// the global packed resolve table. All of it is immutable after build and
// read on every query. The checksums themselves are host-side metadata:
// the model plane never observes them, so recording or verifying them
// cannot move a single simulated bit (the same invisibility contract as
// the storage plane, DESIGN.md §9).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/graph"
)

// Integrity section names, as reported by IntegrityError.
const (
	SectionOffsets   = "offsets"
	SectionAdjacency = "adjacency"
	SectionResolve   = "resolve"
)

var integrityCRC = crc32.MakeTable(crc32.Castagnoli)

// IntegrityError reports a checksum mismatch in a snapshot's resident
// state: the rank and section whose bytes no longer match the build-time
// CRC-32C. Rank is -1 for the global resolve table.
type IntegrityError struct {
	Rank    int
	Section string
	Want    uint32
	Got     uint32
}

func (e *IntegrityError) Error() string {
	if e.Rank < 0 {
		return fmt.Sprintf("lcc: snapshot integrity: %s table checksum mismatch (want %08x, got %08x)",
			e.Section, e.Want, e.Got)
	}
	return fmt.Sprintf("lcc: snapshot integrity: rank %d %s checksum mismatch (want %08x, got %08x)",
		e.Rank, e.Section, e.Want, e.Got)
}

// rankSums is one rank's build-time checksums.
type rankSums struct {
	offsets uint32
	adj     uint32
}

func checksumU64s(crc uint32, s []uint64, tab *crc32.Table) uint32 {
	var buf [8192]byte
	n := 0
	for _, v := range s {
		binary.LittleEndian.PutUint64(buf[n:], v)
		if n += 8; n == len(buf) {
			crc = crc32.Update(crc, tab, buf[:n])
			n = 0
		}
	}
	return crc32.Update(crc, tab, buf[:n])
}

func checksumVs(crc uint32, s []graph.V, tab *crc32.Table) uint32 {
	var buf [8192]byte
	n := 0
	for _, v := range s {
		binary.LittleEndian.PutUint32(buf[n:], uint32(v))
		if n += 4; n == len(buf) {
			crc = crc32.Update(crc, tab, buf[:n])
			n = 0
		}
	}
	return crc32.Update(crc, tab, buf[:n])
}

// computeSums records the build-time checksums of every rank's resident
// tables plus the resolve table.
func (s *Snapshot) computeSums() {
	s.sums = make([]rankSums, len(s.locals))
	for r, lc := range s.locals {
		s.sums[r].offsets = checksumU64s(0, lc.Offsets, integrityCRC)
		if lc.Comp != nil {
			s.sums[r].adj = lc.Comp.Checksum(0, integrityCRC)
		} else {
			s.sums[r].adj = checksumVs(0, lc.Adj, integrityCRC)
		}
	}
	s.resolveSum = checksumU64s(0, s.resolve, integrityCRC)
}

// Verify re-checksums the snapshot's resident state against the sums
// recorded at build time and returns a *IntegrityError naming the first
// mismatching (rank, section), or nil when every section still matches.
// Safe to call concurrently with runs — everything covered is immutable,
// Verify only reads — though the scrubber calls it on idle instances so a
// detected fault can quarantine before the next query, not after.
func (s *Snapshot) Verify() error {
	for r, lc := range s.locals {
		if got := checksumU64s(0, lc.Offsets, integrityCRC); got != s.sums[r].offsets {
			return &IntegrityError{Rank: r, Section: SectionOffsets, Want: s.sums[r].offsets, Got: got}
		}
		var got uint32
		if lc.Comp != nil {
			got = lc.Comp.Checksum(0, integrityCRC)
		} else {
			got = checksumVs(0, lc.Adj, integrityCRC)
		}
		if got != s.sums[r].adj {
			return &IntegrityError{Rank: r, Section: SectionAdjacency, Want: s.sums[r].adj, Got: got}
		}
	}
	if got := checksumU64s(0, s.resolve, integrityCRC); got != s.resolveSum {
		return &IntegrityError{Rank: -1, Section: SectionResolve, Want: s.resolveSum, Got: got}
	}
	return nil
}

// CorruptForTest flips one bit in the named section — rank < 0 with
// SectionResolve targets the resolve table — so the integrity tests and
// the chaos harness can stage the fault Verify exists to catch. Never
// call it while a run is in flight on the snapshot.
func (s *Snapshot) CorruptForTest(rank int, section string) error {
	switch {
	case section == SectionResolve:
		if len(s.resolve) == 0 {
			return fmt.Errorf("lcc: empty resolve table")
		}
		s.resolve[len(s.resolve)/2] ^= 1
	case rank < 0 || rank >= len(s.locals):
		return fmt.Errorf("lcc: rank %d out of range [0,%d)", rank, len(s.locals))
	case section == SectionOffsets:
		off := s.locals[rank].Offsets
		off[len(off)/2] ^= 1
	case section == SectionAdjacency:
		lc := s.locals[rank]
		if lc.Comp != nil {
			lc.Comp.CorruptForTest()
		} else if len(lc.Adj) > 0 {
			lc.Adj[len(lc.Adj)/2] ^= 1
		} else {
			return fmt.Errorf("lcc: rank %d has no adjacency", rank)
		}
	default:
		return fmt.Errorf("lcc: unknown section %q", section)
	}
	return nil
}
