package lcc

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
)

// pushTestGraphs returns a spread of small undirected graphs: the Fig. 1
// toy, a scale-free R-MAT, a flat Erdős–Rényi, and a hub-heavy
// Barabási–Albert — the degree-distribution extremes the push/pull trade
// depends on.
func pushTestGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	return map[string]*graph.Graph{
		"fig1": fig1Graph(),
		"rmat": gen.Prepare(gen.RMAT(gen.DefaultRMAT(9, 8, graph.Undirected, 7)), 7),
		"er":   gen.Prepare(gen.ErdosRenyi(1<<9, 1<<12, graph.Undirected, 11), 11),
		"ba":   gen.Prepare(gen.BarabasiAlbert(1<<9, 8, graph.Undirected, 13), 13),
	}
}

// TestPushEqualsPull is the central correctness claim: the push engine
// computes bit-identical LCC scores and triangle counts to the pull engine
// (Algorithm 3), for every aggregation mode, rank count, and cache setting.
func TestPushEqualsPull(t *testing.T) {
	for name, g := range pushTestGraphs(t) {
		pull, err := Run(g, Options{Ranks: 4, Method: intersect.MethodHybrid, DoubleBuffer: true})
		if err != nil {
			t.Fatalf("%s: pull: %v", name, err)
		}
		for _, ranks := range []int{1, 2, 4, 8} {
			for _, agg := range []PushAggregation{PushDirect, PushBatched} {
				for _, caching := range []bool{false, true} {
					opt := PushOptions{Options: Options{
						Ranks: ranks, Method: intersect.MethodHybrid, DoubleBuffer: true,
					}, Aggregation: agg}
					if caching {
						opt.Caching = true
						opt.OffsetsCacheBytes = 1 << 14
						opt.AdjCacheBytes = 1 << 16
					}
					push, err := RunPush(g, opt)
					if err != nil {
						t.Fatalf("%s: push ranks=%d agg=%s: %v", name, ranks, agg, err)
					}
					if !lccClose(push.LCC, pull.LCC) {
						t.Errorf("%s: push ranks=%d agg=%s caching=%v: LCC differs from pull",
							name, ranks, agg, caching)
					}
					if push.Triangles != pull.Triangles {
						t.Errorf("%s: push ranks=%d agg=%s: Triangles = %d, want %d",
							name, ranks, agg, push.Triangles, pull.Triangles)
					}
					if push.SumT != pull.SumT {
						t.Errorf("%s: push ranks=%d agg=%s: SumT = %d, want %d",
							name, ranks, agg, push.SumT, pull.SumT)
					}
				}
			}
		}
	}
}

func TestPushMatchesSharedReference(t *testing.T) {
	g := gen.Prepare(gen.RMAT(gen.DefaultRMAT(10, 8, graph.Undirected, 3)), 3)
	ref := SharedLCC(g, intersect.MethodHybrid)
	push, err := RunPush(g, PushOptions{Options: Options{Ranks: 4}, Aggregation: PushBatched})
	if err != nil {
		t.Fatal(err)
	}
	if push.Triangles != ref.Triangles {
		t.Errorf("Triangles = %d, want %d", push.Triangles, ref.Triangles)
	}
	if !lccClose(push.LCC, ref.LCC) {
		t.Error("push LCC differs from shared-memory reference")
	}
}

func TestPushRejectsDirected(t *testing.T) {
	g := gen.Prepare(gen.RMAT(gen.DefaultRMAT(8, 8, graph.Directed, 5)), 5)
	if _, err := RunPush(g, PushOptions{Options: Options{Ranks: 2}}); err == nil {
		t.Fatal("RunPush on a directed graph: want error, got nil")
	}
}

func TestPushRejectsBadRanks(t *testing.T) {
	g := fig1Graph()
	if _, err := RunPush(g, PushOptions{Options: Options{Ranks: -3}}); err == nil {
		t.Fatal("RunPush with negative ranks: want error, got nil")
	}
}

// TestPushBatchedFewerMessages verifies the aggregation claim: on a
// triangle-dense graph, local combining ships far fewer one-sided writes
// than direct scatters (at most p-1 batches per rank vs two per triangle).
func TestPushBatchedFewerMessages(t *testing.T) {
	g := gen.Prepare(gen.BarabasiAlbert(1<<10, 12, graph.Undirected, 21), 21)
	const ranks = 8
	direct, err := RunPush(g, PushOptions{Options: Options{Ranks: ranks}, Aggregation: PushDirect})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := RunPush(g, PushOptions{Options: Options{Ranks: ranks}, Aggregation: PushBatched})
	if err != nil {
		t.Fatal(err)
	}
	var directPuts, batchedPuts int64
	for i := 0; i < ranks; i++ {
		directPuts += direct.PerRank[i].RMA.Puts
		batchedPuts += batched.PerRank[i].RMA.Puts
		if got := batched.PerRank[i].RMA.Puts; got > ranks-1 {
			t.Errorf("rank %d: batched puts = %d, want <= %d", i, got, ranks-1)
		}
	}
	if directPuts <= batchedPuts {
		t.Errorf("direct puts = %d, batched = %d: want direct >> batched", directPuts, batchedPuts)
	}
	if direct.SimTime <= batched.SimTime {
		t.Errorf("direct SimTime = %v <= batched %v: α-bound scatters should be slower",
			direct.SimTime, batched.SimTime)
	}
}

// TestPushHalvesPullTraffic verifies the wedge-filter claim: push fetches
// only neighbours v_j > v_i, so its adjacency gets are strictly fewer than
// pull's on any graph with triangles.
func TestPushHalvesPullTraffic(t *testing.T) {
	g := gen.Prepare(gen.RMAT(gen.DefaultRMAT(10, 8, graph.Undirected, 17)), 17)
	const ranks = 4
	pull, err := Run(g, Options{Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	push, err := RunPush(g, PushOptions{Options: Options{Ranks: ranks}, Aggregation: PushBatched})
	if err != nil {
		t.Fatal(err)
	}
	var pullReads, pushReads int64
	for i := 0; i < ranks; i++ {
		pullReads += pull.PerRank[i].RemoteReads
		pushReads += push.PerRank[i].RemoteReads
	}
	if pushReads >= pullReads {
		t.Errorf("push remote reads = %d, pull = %d: want push < pull", pushReads, pullReads)
	}
	// The split is close to half: each undirected edge appears in both
	// endpoints' lists, and exactly one of the two satisfies v_j > v_i.
	if ratio := float64(pushReads) / float64(pullReads); ratio > 0.75 {
		t.Errorf("push/pull read ratio = %.2f, want about 0.5", ratio)
	}
}

// TestPushQuickER is the property-based check: for random Erdős–Rényi
// parameters, push and pull agree exactly.
func TestPushQuickER(t *testing.T) {
	f := func(seed uint64, nBits, mBits uint8) bool {
		n := 1 << (4 + nBits%5) // 16..256 vertices
		m := 1 << (5 + mBits%5) // 32..512 edges
		g := gen.Prepare(gen.ErdosRenyi(n, m, graph.Undirected, seed), seed)
		pull, err := Run(g, Options{Ranks: 4})
		if err != nil {
			return false
		}
		push, err := RunPush(g, PushOptions{Options: Options{Ranks: 4}, Aggregation: PushBatched})
		if err != nil {
			return false
		}
		return lccClose(push.LCC, pull.LCC) && push.Triangles == pull.Triangles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPushSingleRankNoRemoteTraffic: with p=1 everything is local — no
// gets, no puts, and the fence costs only the barrier latency.
func TestPushSingleRankNoRemoteTraffic(t *testing.T) {
	g := gen.Prepare(gen.RMAT(gen.DefaultRMAT(9, 8, graph.Undirected, 9)), 9)
	for _, agg := range []PushAggregation{PushDirect, PushBatched} {
		res, err := RunPush(g, PushOptions{Options: Options{Ranks: 1}, Aggregation: agg})
		if err != nil {
			t.Fatal(err)
		}
		s := res.PerRank[0]
		if s.RMA.Gets != 0 || s.RemoteReads != 0 {
			t.Errorf("agg=%s: remote gets = %d, remote reads = %d, want 0", agg, s.RMA.Gets, s.RemoteReads)
		}
		if agg == PushBatched && s.RMA.Puts != 0 {
			t.Errorf("batched single rank: puts = %d, want 0 (self-batches are local)", s.RMA.Puts)
		}
	}
}

func TestPushAggregationString(t *testing.T) {
	if PushDirect.String() != "direct" || PushBatched.String() != "batched" {
		t.Error("PushAggregation.String mismatch")
	}
	if PushAggregation(99).String() != "unknown" {
		t.Error("unknown PushAggregation should stringify to unknown")
	}
}

// TestPushBalancedAcrossRanks guards the hashed discovery order: the
// halved wedge work must spread evenly over ranks, not pool on the rank
// owning the lowest vertex ids (which is what a raw-id order would do).
func TestPushBalancedAcrossRanks(t *testing.T) {
	g := gen.Prepare(gen.ErdosRenyi(1<<12, 1<<15, graph.Undirected, 33), 33)
	const ranks = 8
	res, err := RunPush(g, PushOptions{Options: Options{Ranks: ranks}, Aggregation: PushBatched})
	if err != nil {
		t.Fatal(err)
	}
	var total, max int64
	for i := 0; i < ranks; i++ {
		r := res.PerRank[i].RemoteReads
		total += r
		if r > max {
			max = r
		}
	}
	mean := float64(total) / ranks
	if float64(max) > 1.5*mean {
		t.Errorf("max per-rank remote reads %d > 1.5x mean %.0f: discovery order is unbalanced", max, mean)
	}
}

// TestPushFasterThanPullOnFlatGraph pins the headline speedup: on a
// uniform-degree graph (nothing for a cache to reuse) batched push should
// run in about half of pull's time, since it walks half the wedges with
// balanced ownership.
func TestPushFasterThanPullOnFlatGraph(t *testing.T) {
	g := gen.Prepare(gen.ErdosRenyi(1<<12, 1<<16, graph.Undirected, 41), 41)
	const ranks = 8
	pull, err := Run(g, Options{Ranks: ranks, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	push, err := RunPush(g, PushOptions{Options: Options{Ranks: ranks, DoubleBuffer: true}, Aggregation: PushBatched})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := push.SimTime / pull.SimTime; ratio > 0.7 {
		t.Errorf("push/pull time ratio = %.2f, want about 0.5 (< 0.7)", ratio)
	}
}

func TestPushEmptyAndDegenerateGraphs(t *testing.T) {
	empty := graph.MustBuild(graph.Undirected, 0, nil)
	res, err := RunPush(empty, PushOptions{Options: Options{Ranks: 1}})
	if err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	if res.Triangles != 0 || len(res.LCC) != 0 {
		t.Errorf("empty graph: triangles=%d len(LCC)=%d", res.Triangles, len(res.LCC))
	}

	// Edgeless vertices: no wedges, no triangles, LCC all zero.
	lone := graph.MustBuild(graph.Undirected, 8, []graph.Edge{{Src: 0, Dst: 1}})
	res, err = RunPush(lone, PushOptions{Options: Options{Ranks: 4}, Aggregation: PushBatched})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 0 {
		t.Errorf("single-edge graph has %d triangles", res.Triangles)
	}
	for v, c := range res.LCC {
		if c != 0 {
			t.Errorf("LCC[%d] = %v, want 0", v, c)
		}
	}
}

func TestPushMoreRanksThanVertices(t *testing.T) {
	g := fig1Graph() // 6 vertices
	for _, agg := range []PushAggregation{PushDirect, PushBatched} {
		res, err := RunPush(g, PushOptions{Options: Options{Ranks: 6}, Aggregation: agg})
		if err != nil {
			t.Fatalf("agg=%s: %v", agg, err)
		}
		pull, _ := Run(g, Options{Ranks: 1})
		if !lccClose(res.LCC, pull.LCC) {
			t.Errorf("agg=%s: one-vertex-per-rank push differs from reference", agg)
		}
	}
}
