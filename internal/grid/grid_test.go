package grid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/lcc"
)

func randomUndirected(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := graph.V(rng.Intn(n))
		v := graph.V(rng.Intn(n))
		if u != v {
			edges = append(edges, graph.Edge{Src: u, Dst: v})
		}
	}
	g, err := graph.Build(graph.Undirected, n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(10, 0); err == nil {
		t.Fatal("accepted p=0")
	}
	if _, err := NewGrid(10, 8); err == nil {
		t.Fatal("accepted non-square p=8")
	}
	gr, err := NewGrid(10, 9)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Side() != 3 || gr.NumRanks() != 9 {
		t.Fatalf("grid 9: side %d ranks %d", gr.Side(), gr.NumRanks())
	}
}

func TestChunksCoverVertices(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := 1 + int(nRaw)
		q := 1 + int(pRaw)%5
		gr, err := NewGrid(n, q*q)
		if err != nil {
			return false
		}
		covered := 0
		prev := 0
		for c := 0; c < gr.Side(); c++ {
			lo, hi := gr.Chunk(c)
			if lo != prev || hi < lo {
				return false
			}
			covered += hi - lo
			prev = hi
		}
		return covered == n && prev == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRankCoordsRoundTrip(t *testing.T) {
	gr, err := NewGrid(100, 16)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 16; r++ {
		i, j := gr.CoordsOf(r)
		if gr.RankOf(i, j) != r {
			t.Fatalf("rank %d → (%d,%d) → %d", r, i, j, gr.RankOf(i, j))
		}
	}
}

func TestExtractPartitionsArcs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomUndirected(rng, 50, 300)
	gr, err := NewGrid(g.NumVertices(), 9)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			b := gr.Extract(g, i, j)
			total += b.NNZ()
			// Every entry in range and rows consistent with the graph.
			for r := 0; r < b.RowHi-b.RowLo; r++ {
				for _, c := range b.Row(r) {
					if int(c) < b.ColLo || int(c) >= b.ColHi {
						t.Fatalf("block (%d,%d) row %d has out-of-chunk col %d", i, j, r, c)
					}
					if !g.HasEdge(graph.V(b.RowLo+r), c) {
						t.Fatalf("block entry (%d,%d) not a graph edge", b.RowLo+r, c)
					}
				}
			}
		}
	}
	if total != g.NumArcs() {
		t.Fatalf("blocks hold %d arcs, graph has %d", total, g.NumArcs())
	}
}

func TestBlockSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomUndirected(rng, 40, 200)
	gr, err := NewGrid(g.NumVertices(), 4)
	if err != nil {
		t.Fatal(err)
	}
	b := gr.Extract(g, 1, 0)
	data := b.Serialize()
	if len(data) != b.WireSize() {
		t.Fatalf("serialized %d bytes, WireSize says %d", len(data), b.WireSize())
	}
	back, err := DeserializeBlock(data, b.RowLo, b.RowHi, b.ColLo, b.ColHi)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != b.NNZ() {
		t.Fatalf("round trip nnz %d, want %d", back.NNZ(), b.NNZ())
	}
	for r := 0; r < b.RowHi-b.RowLo; r++ {
		a, bb := b.Row(r), back.Row(r)
		if len(a) != len(bb) {
			t.Fatalf("row %d length changed", r)
		}
		for i := range a {
			if a[i] != bb[i] {
				t.Fatalf("row %d entry %d changed", r, i)
			}
		}
	}
}

func TestDeserializeBlockRejectsCorruption(t *testing.T) {
	if _, err := DeserializeBlock([]byte{1, 2, 3}, 0, 4, 0, 4); err == nil {
		t.Fatal("accepted truncated payload")
	}
	// Offsets claiming more cols than present.
	b := &Block{RowLo: 0, RowHi: 1, Offsets: []uint64{0, 5}, Cols: []graph.V{1}}
	data := b.Serialize()
	if _, err := DeserializeBlock(data, 0, 1, 0, 4); err == nil {
		t.Fatal("accepted inconsistent offsets")
	}
}

func TestRun2DMatchesShared(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := randomUndirected(rng, 30+rng.Intn(30), 250)
		want := lcc.SharedLCC(g, intersect.MethodHybrid)
		for _, p := range []int{1, 4, 9, 16} {
			got, err := Run(g, Options{Ranks: p})
			if err != nil {
				t.Fatal(err)
			}
			if got.Triangles != want.Triangles {
				t.Fatalf("trial %d, p=%d: 2D Δ = %d, want %d", trial, p, got.Triangles, want.Triangles)
			}
			for v := range want.LCC {
				if got.LCC[v] != want.LCC[v] {
					t.Fatalf("trial %d, p=%d: LCC[%d] = %g, want %g", trial, p, v, got.LCC[v], want.LCC[v])
				}
			}
		}
	}
}

func TestRun2DOnRMAT(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, graph.Undirected, 77))
	want := lcc.SharedLCC(g, intersect.MethodHybrid)
	got, err := Run(g, Options{Ranks: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got.Triangles != want.Triangles {
		t.Fatalf("R-MAT 2D: %d triangles, want %d", got.Triangles, want.Triangles)
	}
	if got.BlockFetches != int64(16*2*(4-1)) {
		t.Fatalf("block fetches = %d, want %d (2(√p−1) per rank)", got.BlockFetches, 16*2*3)
	}
}

func TestRun2DRejectsBadInputs(t *testing.T) {
	g, _ := graph.Build(graph.Directed, 4, []graph.Edge{{Src: 0, Dst: 1}})
	if _, err := Run(g, Options{Ranks: 4}); err == nil {
		t.Fatal("accepted directed graph")
	}
	ug, _ := graph.Build(graph.Undirected, 4, []graph.Edge{{Src: 0, Dst: 1}})
	if _, err := Run(ug, Options{Ranks: 8}); err == nil {
		t.Fatal("accepted non-square rank count")
	}
}

func TestRun2DDeterministic(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, graph.Undirected, 5))
	a := MustRun(g, Options{Ranks: 9})
	b := MustRun(g, Options{Ranks: 9})
	if a.SimTime != b.SimTime || a.Triangles != b.Triangles {
		t.Fatalf("identical 2D runs diverged: (%g,%d) vs (%g,%d)",
			a.SimTime, a.Triangles, b.SimTime, b.Triangles)
	}
}

func TestRun2DCommunicationBeats1D(t *testing.T) {
	// The §VI-i claim, made precise: the 1D engine re-reads each remote
	// adjacency list once per in-edge (Σ deg² volume, O(m/p) small
	// latency-bound messages per rank); the 2D engine fetches 2(√p−1)
	// large blocks. While the average degree exceeds ~√p, 2D moves
	// strictly fewer bytes per rank, and it always issues far fewer
	// messages. The byte advantage erodes like √p — the crossover the
	// 2.5D literature (§VI) addresses — which the last assertion pins.
	g := gen.RMAT(gen.DefaultRMAT(11, 8, graph.Undirected, 13))
	var ratios []float64
	for _, p := range []int{4, 16, 64} {
		two, err := Run(g, Options{Ranks: p})
		if err != nil {
			t.Fatal(err)
		}
		one, err := lcc.Run(g, lcc.Options{Ranks: p, Method: intersect.MethodHybrid})
		if err != nil {
			t.Fatal(err)
		}
		var oneMaxBytes, oneMaxGets int64
		for _, s := range one.PerRank {
			if s.RMA.RemoteBytes > oneMaxBytes {
				oneMaxBytes = s.RMA.RemoteBytes
			}
			if s.RMA.Gets > oneMaxGets {
				oneMaxGets = s.RMA.Gets
			}
		}
		if two.Triangles != one.Triangles {
			t.Fatalf("p=%d: 2D and 1D disagree: %d vs %d", p, two.Triangles, one.Triangles)
		}
		ratio := float64(two.RemoteBytesMax) / float64(oneMaxBytes)
		if ratio >= 0.5 {
			t.Fatalf("p=%d: 2D moves %.2fx of 1D's per-rank bytes, want < 0.5", p, ratio)
		}
		ratios = append(ratios, ratio)
		perRankFetches := two.BlockFetches / int64(p)
		if perRankFetches >= oneMaxGets/10 {
			t.Fatalf("p=%d: 2D issues %d gets/rank vs 1D's %d — expected at least 10x fewer",
				p, perRankFetches, oneMaxGets)
		}
	}
	// Crossover trend: the byte ratio grows with p (≈√p), motivating the
	// 2.5D schemes the paper cites for very large p.
	if !(ratios[0] < ratios[2]) {
		t.Fatalf("expected the 2D advantage to erode with p: ratios %v", ratios)
	}
}
