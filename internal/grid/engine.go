package grid

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/intersect"
	"repro/internal/lcc"
	"repro/internal/rma"
)

// Options configure a 2D distributed run.
type Options struct {
	// Ranks is p; it must be a perfect square (the grid is √p×√p).
	Ranks int
	Model rma.CostModel
	// Workers bounds concurrent rank execution on the host; 0 selects
	// GOMAXPROCS. Results are bit-identical at any worker count.
	Workers int

	// ChargeObserver / DeferredCharges expose the rma charge-tape
	// diagnostics (see lcc.Options): observe every folded charge in
	// canonical order, or defer folds to the observation points as the
	// verification schedule.
	ChargeObserver  rma.ChargeObserver
	DeferredCharges bool

	// Faults installs a deterministic fault schedule (see lcc.Options).
	Faults *fault.Spec
}

func (o Options) withDefaults() Options {
	if o.Ranks == 0 {
		o.Ranks = 1
	}
	if o.Model == (rma.CostModel{}) {
		o.Model = rma.DefaultCostModel()
	}
	return o
}

// Result is the output of a 2D run.
type Result struct {
	LCC       []float64
	Triangles int64
	SimTime   float64 // slowest rank, ns — same metric as the 1D engine
	// RemoteBytesMax is the largest per-rank remote traffic; the 2D
	// scheme's selling point is that it shrinks as O(nnz/√p) where the
	// 1D engine's stays O(nnz) (§VI i).
	RemoteBytesMax int64
	BlockFetches   int64 // total remote block gets across ranks
	PerRank        []rma.Counters
}

// Run executes asynchronous 2D triangle counting and LCC on an undirected
// graph. Rank (i,j) owns block A[i,j] and computes the masked partial
// products Σ_k A[i,k]·A[k,j] ∘ A[i,j], pulling each non-local operand
// block once with a single one-sided get. No rank synchronizes with any
// other between setup and finish — the 2D engine keeps the paper's
// fully-asynchronous discipline, only the distribution changes.
func Run(g graph.Store, opt Options) (*Result, error) {
	if g.Kind() != graph.Undirected {
		return nil, fmt.Errorf("grid: 2D engine requires an undirected graph, got %v", g.Kind())
	}
	opt = opt.withDefaults()
	n := g.NumVertices()
	gr, err := NewGrid(n, opt.Ranks)
	if err != nil {
		return nil, err
	}
	q := gr.Side()

	// Cut all q² blocks and expose each rank's own block in one window.
	blocks := make([]*Block, opt.Ranks)
	bufs := make([][]byte, opt.Ranks)
	for r := 0; r < opt.Ranks; r++ {
		i, j := gr.CoordsOf(r)
		blocks[r] = gr.Extract(g, i, j)
		bufs[r] = blocks[r].Serialize()
	}
	// Serialized blocks are immutable for the whole run, so the window is
	// read-only: every block get is served as an aliased view.
	comm := rma.NewCommWorkers(opt.Ranks, opt.Model, opt.Workers)
	if opt.ChargeObserver != nil {
		comm.SetChargeObserver(opt.ChargeObserver)
	}
	if opt.DeferredCharges {
		comm.SetDeferredCharges(true)
	}
	if opt.Faults != nil {
		comm.SetFaults(opt.Faults)
	}
	win := comm.CreateReadOnlyWindow("blocks", bufs)

	// Per-row triangle partials: rank (i,j) writes only rows of chunk i;
	// ranks in the same grid row write disjoint... no — they write the
	// same rows (different mask columns), so each rank accumulates into
	// its own slab and the host sums afterwards (the reduction is not
	// part of the timed computation, matching the 1D engine's
	// convention).
	partials := make([][]int64, opt.Ranks)
	stats := make([]rma.Counters, opt.Ranks)

	ranks := comm.Run(func(r *rma.Rank) {
		i, j := gr.CoordsOf(r.ID())
		own := blocks[r.ID()]
		rowLo, rowHi := gr.Chunk(i)
		mine := make([]int64, rowHi-rowLo)
		r.LockAll(win)

		// The rank's pooled intersection scratch doubles as the per-row
		// sparse accumulator over the mask columns (Gustavson's SPA
		// restricted to A[i,j]'s row pattern): Stamp publishes the mask
		// row, Has tests membership, at one bit per column.
		its := intersect.GetScratch()
		its.EnsureUniverse(n)
		defer intersect.PutScratch(its)

		fetch := func(br, bc int) (*Block, error) {
			owner := gr.RankOf(br, bc)
			if owner == r.ID() {
				// Own block: already in memory; charge one local
				// streaming read, as the 1D engine does for local
				// partitions — recorded on the charge tape, like the
				// 1D engines' local fetches.
				r.ChargeLocalRead(own.WireSize())
				return own, nil
			}
			rLo2, rHi2 := gr.Chunk(br)
			cLo2, cHi2 := gr.Chunk(bc)
			qreq := r.Get(win, owner, 0, win.SizeAt(owner))
			qreq.Wait()
			blk, err := DeserializeBlock(qreq.Data(), rLo2, rHi2, cLo2, cHi2)
			qreq.Release()
			return blk, err
		}

		for k := 0; k < q; k++ {
			aik, err := fetch(i, k)
			if err != nil {
				panic(fmt.Sprintf("grid: rank %d: %v", r.ID(), err))
			}
			akj, err := fetch(k, j)
			if err != nil {
				panic(fmt.Sprintf("grid: rank %d: %v", r.ID(), err))
			}
			for lr := 0; lr < rowHi-rowLo; lr++ {
				maskRow := own.Row(lr)
				if len(maskRow) == 0 {
					continue
				}
				aRow := aik.Row(lr)
				if len(aRow) == 0 {
					continue
				}
				// The modeled charge is unchanged: one pass to set the
				// mask, one per probed row, one pass to clear — only
				// the host data structure moved into the stamp set.
				ops := 0
				its.Stamp(maskRow)
				ops += len(maskRow)
				var t int64
				for _, w := range aRow {
					bRow := akj.RowOf(w)
					ops += len(bRow) + 1
					for _, c := range bRow {
						if its.Has(c) {
							t++
						}
					}
				}
				its.Unstamp()
				ops += len(maskRow)
				r.Compute(ops)
				mine[lr] += t
			}
		}
		r.UnlockAll(win)
		partials[r.ID()] = mine
		stats[r.ID()] = r.Counters()
	})

	// Host-side reduction (untimed, as in the 1D engine): sum partials
	// into per-vertex row sums; t_u = rowsum/2, Δ = Σ rowsum / 6.
	rowSums := make([]int64, n)
	for r := 0; r < opt.Ranks; r++ {
		i, _ := gr.CoordsOf(r)
		rowLo, _ := gr.Chunk(i)
		for lr, t := range partials[r] {
			rowSums[rowLo+lr] += t
		}
	}
	res := &Result{LCC: make([]float64, n), SimTime: rma.MaxClock(ranks), PerRank: stats}
	var total int64
	for u := 0; u < n; u++ {
		total += rowSums[u]
		res.LCC[u] = lcc.Score(graph.Undirected, rowSums[u]/2, g.OutDegree(graph.V(u)))
	}
	res.Triangles = total / 6
	var agg rma.Counters
	for _, s := range stats {
		if s.RemoteBytes > res.RemoteBytesMax {
			res.RemoteBytesMax = s.RemoteBytes
		}
		agg.Merge(s)
	}
	res.BlockFetches = agg.Gets
	return res, nil
}

// MustRun is Run for known-valid options; it panics on error.
func MustRun(g graph.Store, opt Options) *Result {
	r, err := Run(g, opt)
	if err != nil {
		panic(fmt.Sprintf("grid: %v", err))
	}
	return r
}
