// Package grid implements the paper's first future-work direction (§VI i):
// an asynchronous TC/LCC engine over a *2D* distribution whose
// communication cost is lower than the 1D scheme's. The adjacency matrix
// is split over a √p×√p rank grid; rank (i,j) owns block A[I_i, J_j]. The
// engine computes C = A·A ∘ A block-wise, SUMMA-style: rank (i,j)
// accumulates Σ_k A[i,k]·A[k,j] masked by its own block, fetching the
// 2·(√p−1) non-local blocks it needs with one-sided RMA gets — no
// synchronization, exactly as the 1D engine, only the distribution
// changes.
//
// Why this communicates less: the 1D engine re-reads each remote adjacency
// list once per referencing edge (Σ deg² total volume, and O(m/p)
// latency-bound small gets per rank); the 2D engine fetches 2(√p−1) large
// blocks of ~nnz/p entries, i.e. O(nnz/√p) bytes and a handful of
// messages per rank. The per-rank byte advantage is ~avgdeg/√p, eroding as
// p grows — the regime the 2.5D schemes of Solomonik & Demmel (cited in
// §VI) address; the message-count advantage is unconditional.
package grid

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rma"
)

// Grid describes a √p×√p process grid over n vertices. Vertex rows and
// columns are split into √p contiguous chunks (the 2D analogue of §III-A's
// 1D block scheme).
type Grid struct {
	n int // vertices
	q int // grid side: p = q²
}

// NewGrid creates the process grid. p must be a perfect square (the paper
// assumes p is a power of two for 1D; the 2D analogue needs a square).
func NewGrid(n, p int) (*Grid, error) {
	if p < 1 {
		return nil, fmt.Errorf("grid: invalid rank count %d", p)
	}
	q := int(math.Sqrt(float64(p)))
	if q*q != p {
		return nil, fmt.Errorf("grid: 2D distribution needs a square rank count, got %d", p)
	}
	return &Grid{n: n, q: q}, nil
}

// Side returns √p, the grid dimension.
func (gr *Grid) Side() int { return gr.q }

// NumRanks returns p = Side².
func (gr *Grid) NumRanks() int { return gr.q * gr.q }

// Chunk returns the vertex range [lo,hi) of chunk c ∈ [0,√p).
func (gr *Grid) Chunk(c int) (lo, hi int) {
	lo = c * gr.n / gr.q
	hi = (c + 1) * gr.n / gr.q
	return
}

// RankOf maps grid coordinates to the linear rank id.
func (gr *Grid) RankOf(row, col int) int { return row*gr.q + col }

// CoordsOf maps a linear rank id to grid coordinates.
func (gr *Grid) CoordsOf(rank int) (row, col int) { return rank / gr.q, rank % gr.q }

// Block is the CSR of one sub-matrix A[rows lo..hi) restricted to a column
// chunk. Row indices are local (row r holds global vertex rowLo+r); column
// ids stay global, so masked merges need no translation.
type Block struct {
	RowLo, RowHi int
	ColLo, ColHi int
	Offsets      []uint64 // len RowHi-RowLo+1
	Cols         []graph.V
}

// NNZ returns the number of stored entries.
func (b *Block) NNZ() int { return len(b.Cols) }

// Row returns the global column ids of local row r (global vertex RowLo+r).
func (b *Block) Row(r int) []graph.V {
	return b.Cols[b.Offsets[r]:b.Offsets[r+1]]
}

// RowOf returns the row of a global vertex id, or nil if out of range.
func (b *Block) RowOf(v graph.V) []graph.V {
	if int(v) < b.RowLo || int(v) >= b.RowHi {
		return nil
	}
	return b.Row(int(v) - b.RowLo)
}

// Extract cuts block (rowChunk, colChunk) of g's adjacency matrix.
func (gr *Grid) Extract(g graph.Store, rowChunk, colChunk int) *Block {
	rLo, rHi := gr.Chunk(rowChunk)
	cLo, cHi := gr.Chunk(colChunk)
	b := &Block{RowLo: rLo, RowHi: rHi, ColLo: cLo, ColHi: cHi}
	b.Offsets = make([]uint64, rHi-rLo+1)
	var buf []graph.V
	for r := rLo; r < rHi; r++ {
		buf = g.AdjInto(graph.V(r), buf)
		for _, w := range buf {
			if int(w) >= cLo && int(w) < cHi {
				b.Cols = append(b.Cols, w)
			}
		}
		b.Offsets[r-rLo+1] = uint64(len(b.Cols))
	}
	return b
}

// WireSize returns the serialized size of the block in bytes: the offsets
// array plus the column ids (the quantity charged to the network when a
// remote rank fetches this block).
func (b *Block) WireSize() int {
	return 8*len(b.Offsets) + 4*len(b.Cols)
}

// Serialize encodes the block's arrays for exposure in an RMA window.
// Bounds travel in the window directory (allgathered at setup, like the
// offsets/adjacencies window shapes of the 1D engine).
func (b *Block) Serialize() []byte {
	out := make([]byte, 0, b.WireSize())
	out = append(out, rma.EncodeUint64s(b.Offsets)...)
	out = append(out, rma.EncodeVertices(b.Cols)...)
	return out
}

// DeserializeBlock reconstructs a block from Serialize output and its
// bounds.
func DeserializeBlock(data []byte, rowLo, rowHi, colLo, colHi int) (*Block, error) {
	rows := rowHi - rowLo
	offBytes := 8 * (rows + 1)
	if len(data) < offBytes {
		return nil, fmt.Errorf("grid: block payload too short: %d bytes for %d rows", len(data), rows)
	}
	b := &Block{RowLo: rowLo, RowHi: rowHi, ColLo: colLo, ColHi: colHi}
	b.Offsets = rma.DecodeUint64s(data[:offBytes])
	b.Cols = rma.DecodeVertices(data[offBytes:])
	if int(b.Offsets[rows]) != len(b.Cols) {
		return nil, fmt.Errorf("grid: block offsets end at %d, have %d cols", b.Offsets[rows], len(b.Cols))
	}
	return b, nil
}
