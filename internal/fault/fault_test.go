package fault

import (
	"math"
	"testing"
)

// TestDisabledSchedIsNil pins the zero-overhead contract: nil and disabled
// specs bind to a nil schedule, so consumers pay one nil check per op.
func TestDisabledSchedIsNil(t *testing.T) {
	if s := New(nil, 0); s != nil {
		t.Fatal("New(nil) != nil")
	}
	if s := New(&Spec{Seed: 42}, 0); s != nil {
		t.Fatal("New(zero-probability spec) != nil")
	}
	if s := New(&Spec{GetFailPct: 0.1}, 0); s == nil {
		t.Fatal("New(enabled spec) == nil")
	}
}

// TestDeterministicReplay: two schedules bound from the same spec replay
// identical decision sequences, while a different rank or seed diverges.
func TestDeterministicReplay(t *testing.T) {
	spec := ChaosSpec(7)
	a := New(&spec, 3)
	b := New(&spec, 3)
	other := New(&spec, 4)
	diverged := false
	for i := 0; i < 20000; i++ {
		oa, ob, oo := a.Op(ClassGet), b.Op(ClassGet), other.Op(ClassGet)
		if oa.Failed() != ob.Failed() || oa.SpikeNS() != ob.SpikeNS() || oa.StallNS() != ob.StallNS() {
			t.Fatalf("op %d: same (spec, rank) diverged", i)
		}
		if oa.Failed() > 0 && oa.BackoffNS(0) != ob.BackoffNS(0) {
			t.Fatalf("op %d: backoff diverged", i)
		}
		if a.CacheOp() != b.CacheOp() || a.MsgDrops() != b.MsgDrops() {
			t.Fatalf("op %d: cache/drop decisions diverged", i)
		}
		if oa.Failed() != oo.Failed() || oa.SpikeNS() != oo.SpikeNS() {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("rank 3 and rank 4 replayed identical schedules — streams are correlated")
	}
}

// TestFailureRate: observed per-op failure frequency tracks the configured
// probability (loose 3σ-ish bounds over 100k draws).
func TestFailureRate(t *testing.T) {
	const p = 0.1
	spec := Spec{Seed: 11, GetFailPct: p}
	s := New(&spec, 0)
	fails := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Op(ClassGet).Failed() > 0 {
			fails++
		}
	}
	got := float64(fails) / n
	if got < 0.09 || got > 0.11 {
		t.Fatalf("failure rate %.4f, want ≈ %.2f", got, p)
	}
}

// TestRetriesBounded: Failed never exceeds the policy cap, and backoff
// stays inside [Base/2, 1.5·Max] with exponential growth up to the cap.
func TestRetriesBounded(t *testing.T) {
	spec := Spec{Seed: 3, GetFailPct: 0.9, Retry: RetryPolicy{MaxAttempts: 5}}
	s := New(&spec, 1)
	pol := s.Policy()
	sawCap := false
	for i := 0; i < 5000; i++ {
		o := s.Op(ClassGet)
		if o.Failed() > pol.MaxAttempts {
			t.Fatalf("op %d: %d failed attempts > cap %d", i, o.Failed(), pol.MaxAttempts)
		}
		if o.Failed() == pol.MaxAttempts {
			sawCap = true
		}
		for a := 0; a < o.Failed(); a++ {
			b := o.BackoffNS(a)
			if b < pol.BackoffBaseNS/2 || b > 1.5*pol.BackoffMaxNS {
				t.Fatalf("backoff %v outside [%v, %v]", b, pol.BackoffBaseNS/2, 1.5*pol.BackoffMaxNS)
			}
		}
	}
	if !sawCap {
		t.Fatal("p=0.9 never hit the attempt cap in 5000 ops")
	}
}

// TestStallWindows: stalls open exactly every StallPeriodOps remote ops.
func TestStallWindows(t *testing.T) {
	spec := Spec{Seed: 9, StallPeriodOps: 100, StallNS: 1000}
	s := New(&spec, 0)
	for i := 0; i < 1000; i++ {
		st := s.Op(ClassGet).StallNS()
		if want := i > 0 && i%100 == 0; (st > 0) != want {
			t.Fatalf("op %d: stall=%v, want stall fired=%v", i, st, want)
		}
		if st > 0 && (st < 500 || st > 1500) {
			t.Fatalf("op %d: stall %v outside [500, 1500]", i, st)
		}
	}
}

// TestParseSpec exercises the -faults grammar round trip and its errors.
func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("seed=42,get=0.01,put=0.02,acc=0.03,spike=0.01:25000,stall=4096:200000,drop=0.05,cache=0.001,retries=4,timeout=30000,backoff=1000:8000")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Seed: 42, GetFailPct: 0.01, PutFailPct: 0.02, AccFailPct: 0.03,
		SpikePct: 0.01, SpikeNS: 25000, StallPeriodOps: 4096, StallNS: 200000,
		DropPct: 0.05, CacheFailPct: 0.001,
		Retry: RetryPolicy{MaxAttempts: 4, TimeoutNS: 30000, BackoffBaseNS: 1000, BackoffMaxNS: 8000},
	}
	if *spec != want {
		t.Fatalf("ParseSpec = %+v, want %+v", *spec, want)
	}
	if spec2, err := ParseSpec(spec.String()); err != nil || spec2.Seed != 42 || spec2.GetFailPct != 0.01 {
		t.Fatalf("String round trip failed: %+v, %v", spec2, err)
	}
	if s, err := ParseSpec("seed=7,chaos"); err != nil || s.Seed != 7 || !s.Enabled() {
		t.Fatalf("chaos preset: %+v, %v", s, err)
	}
	if s, err := ParseSpec("p=0.05"); err != nil || s.GetFailPct != 0.05 || s.DropPct != 0.05 {
		t.Fatalf("p shorthand: %+v, %v", s, err)
	}
	if s, err := ParseSpec("seed=9,wedge=2:512"); err != nil || s.WedgeRank != 2 || s.WedgeAtOp != 512 {
		t.Fatalf("wedge spec: %+v, %v", s, err)
	}
	if s, _ := ParseSpec("seed=9,wedge=2:512"); s != nil {
		if s2, err := ParseSpec(s.String()); err != nil || *s2 != *s {
			t.Fatalf("wedge String round trip: %+v, %v", s2, err)
		}
	}
	if s, err := ParseSpec(""); s != nil || err != nil {
		t.Fatalf("empty spec should be (nil, nil), got %v, %v", s, err)
	}
	for _, bad := range []string{"bogus=1", "get=2", "get", "seed=1", "spike=0.1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestUniformRange: the hash-derived uniforms stay in [0, 1) and are not
// visibly biased in the mean.
func TestUniformRange(t *testing.T) {
	spec := Spec{Seed: 123, GetFailPct: 0.5}
	s := New(&spec, 2)
	sum := 0.0
	const n = 100000
	for i := uint64(0); i < n; i++ {
		u := s.u(chSpike, i, 0)
		if u < 0 || u >= 1 || math.IsNaN(u) {
			t.Fatalf("u = %v out of [0,1)", u)
		}
		sum += u
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean %v, want ≈ 0.5", mean)
	}
}
