// Package fault is the deterministic fault plane of the simulated machine:
// a seeded schedule of transient failures that the RMA substrate, the p2p
// exchange layer and the CLaMPI cache consult at their issue points, and
// recover from by charging simulated time — never by changing results.
//
// The paper's asynchronous design is pitched at 1024-rank clusters, where
// transient Get/Put failures, latency spikes, stalled ranks, dropped
// messages and flaky cache state are the norm. The schedule makes that
// regime reproducible: every decision is a pure function of
// (seed, rank, channel, op-index, attempt) hashed through splitmix64, so a
// run under faults is bit-identical across replays, host schedules and
// worker counts — the same determinism contract the noise plane
// (rma.NoiseSpec) already obeys. Faults are charged as raw (unperturbed)
// clock advances: recovery is blocking, not work, so it neither stretches
// under noise nor consumes noise-RNG draws — which is what keeps a faulted
// run's SimTime deterministically ≥ the fault-free run's.
//
// The zero Spec (and a nil *Spec) disables the plane entirely: New returns
// nil and every consumer's per-op check is a single nil comparison.
package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Class identifies the one-sided operation class a fault decision applies
// to; each class draws from its own decision channel so enabling faults on
// one class does not reshuffle another's schedule.
type Class uint8

const (
	// ClassGet covers one-sided reads (Get/GetInto), including the
	// fetches CLaMPI issues on a cache miss.
	ClassGet Class = iota
	// ClassPut covers one-sided writes.
	ClassPut
	// ClassAccumulate covers Accumulate, AccumulateBatch and FetchAdd64.
	ClassAccumulate
)

// Decision channels beyond the op classes. Kept in the same keyspace so
// every draw in a rank's schedule has a distinct (channel, index, sub)
// coordinate.
const (
	chSpike   = 8 + iota // per-op latency spike (probability, magnitude)
	chStall              // rank stall windows
	chBackoff            // retry backoff jitter
	chDrop               // p2p message drops
	chCache              // CLaMPI unavailability
)

// RetryPolicy bounds the recovery loop of a failed one-sided operation or
// dropped message. The zero value selects the defaults.
type RetryPolicy struct {
	// MaxAttempts caps the retries of one operation; after MaxAttempts
	// failed attempts the next attempt is forced to succeed, so faults
	// cost simulated time but can never leak an error into results.
	// Default 8, hard cap 16.
	MaxAttempts int
	// TimeoutNS is the per-attempt timeout budget: the detection delay
	// charged before a failed attempt is declared lost and retried.
	// Default 25000 ns (≈ 12 α of the default model).
	TimeoutNS float64
	// BackoffBaseNS and BackoffMaxNS shape the capped exponential
	// backoff between attempts: attempt a sleeps
	// min(Base·2^a, Max) × (0.5 + u) with deterministic jitter u.
	// Defaults 2000 ns and 64000 ns.
	BackoffBaseNS float64
	BackoffMaxNS  float64
}

const maxAttemptsCap = 16

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.MaxAttempts > maxAttemptsCap {
		p.MaxAttempts = maxAttemptsCap
	}
	if p.TimeoutNS <= 0 {
		p.TimeoutNS = 25000
	}
	if p.BackoffBaseNS <= 0 {
		p.BackoffBaseNS = 2000
	}
	if p.BackoffMaxNS < p.BackoffBaseNS {
		p.BackoffMaxNS = 64000
		if p.BackoffMaxNS < p.BackoffBaseNS {
			p.BackoffMaxNS = p.BackoffBaseNS
		}
	}
	return p
}

// Spec describes a fault schedule. All probabilities are per-decision in
// [0, 1). The zero value injects nothing and keeps the plane disabled at
// zero cost.
type Spec struct {
	// Seed keys every decision of the schedule; two runs with equal
	// specs replay the same faults everywhere.
	Seed uint64

	// GetFailPct, PutFailPct and AccFailPct are the per-attempt transient
	// failure probabilities of remote one-sided operations by class.
	GetFailPct float64
	PutFailPct float64
	AccFailPct float64

	// SpikePct injects a latency spike on a remote op's successful
	// attempt with the given probability; the op is delayed by
	// SpikeNS × (0.5 + u) ns, absorbed within the timeout budget.
	SpikePct float64
	SpikeNS  float64

	// StallPeriodOps opens a rank stall window every that many remote
	// ops (0 disables): the rank blocks for StallNS × (0.5 + u) ns —
	// modeled OS jitter, GC, or a wedged progress engine.
	StallPeriodOps int
	StallNS        float64

	// DropPct is the probability a p2p exchange message is dropped in
	// flight; the sender detects the missing ack after TimeoutNS and
	// retransmits (delivery itself is never lost — see internal/p2p).
	DropPct float64

	// CacheFailPct is the per-access probability the CLaMPI cache is
	// transiently unavailable: resident entries are flushed and the
	// access degrades to the direct-RMA fetch flavor.
	CacheFailPct float64

	// CrashAtOp arms the crash-stop class: rank CrashRank dies at its
	// CrashAtOp-th remote one-sided operation (1-based; 0 disables the
	// class). Unlike the probabilistic classes the crash is a scheduled
	// event — it fires exactly once, at a deterministic op index, which is
	// what makes both recovery modes pinnable. With CrashRecover false the
	// run fails fast with a deterministic *CrashError; with it true the
	// rank restarts (CrashRestartNS) and re-executes from its last barrier
	// — charged as blocked simulated time, never actually re-run, so the
	// fault-free charge and draw sequence embeds verbatim in the recovered
	// run and results stay bit-identical (DESIGN.md §8).
	CrashAtOp      int
	CrashRank      int
	CrashRecover   bool
	CrashRestartNS float64 // modeled restart delay; default 5e6 ns

	// WedgeAtOp arms the wedge class: rank WedgeRank parks forever at its
	// WedgeAtOp-th remote one-sided operation (1-based; 0 disables the
	// class). Unlike every other class there is no in-run recovery — the
	// rank stops issuing operations and stops reaching checkpoints, so the
	// run can only end through an external cancel (a caller deadline or
	// the serve watchdog). This is the schedule for a host-side hang: a
	// deadlocked lock, a stuck syscall, a livelocked progress engine. Like
	// the crash-stop it is a scheduled event that fires exactly once at a
	// deterministic op index.
	WedgeAtOp int
	WedgeRank int

	// Retry bounds the recovery loops; zero value = defaults.
	Retry RetryPolicy
}

// Enabled reports whether the spec can inject any fault at all.
func (s Spec) Enabled() bool {
	return s.GetFailPct > 0 || s.PutFailPct > 0 || s.AccFailPct > 0 ||
		(s.SpikePct > 0 && s.SpikeNS > 0) ||
		(s.StallPeriodOps > 0 && s.StallNS > 0) ||
		s.DropPct > 0 || s.CacheFailPct > 0 || s.CrashAtOp > 0 ||
		s.WedgeAtOp > 0
}

func (s Spec) withDefaults() Spec {
	s.Retry = s.Retry.withDefaults()
	if s.CrashRestartNS <= 0 {
		s.CrashRestartNS = 5e6
	}
	return s
}

// CrashError is the deterministic failure of a crash-stop without
// recovery: rank Rank died at its Op-th remote one-sided operation. The
// same spec produces the same error at any worker count and under either
// charge-fold schedule.
type CrashError struct {
	Rank int
	Op   int // 1-based remote-op index, equals Spec.CrashAtOp
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("fault: rank %d crash-stop at remote op %d", e.Rank, e.Op)
}

// ChaosSpec returns the moderate everything-on schedule the chaos tests
// and CI run under: a few percent of transient failures and drops, sparse
// spikes and stalls, occasional cache unavailability.
func ChaosSpec(seed uint64) Spec {
	return Spec{
		Seed:           seed,
		GetFailPct:     0.01,
		PutFailPct:     0.01,
		AccFailPct:     0.01,
		SpikePct:       0.005,
		SpikeNS:        2e4,
		StallPeriodOps: 8192,
		StallNS:        1e5,
		DropPct:        0.02,
		CacheFailPct:   0.001,
	}
}

// Sched is one rank's bound fault schedule: the spec plus the rank's
// decision counters. A Sched is owned by its rank's goroutine and must not
// be shared. New returns nil for nil or disabled specs, so consumers guard
// the whole plane with one nil check.
type Sched struct {
	spec     Spec
	rank     int
	ops      uint64 // remote one-sided op index (all classes)
	cacheOps uint64 // CLaMPI access index
	msgs     uint64 // p2p send sequence
	crashed  bool   // the crash-stop already fired (it fires once)
	wedged   bool   // the wedge already fired (it fires once)
}

// New binds spec to a rank. nil spec, or one that cannot inject anything,
// returns nil.
func New(spec *Spec, rank int) *Sched {
	if spec == nil || !spec.Enabled() {
		return nil
	}
	return &Sched{spec: spec.withDefaults(), rank: rank}
}

// Policy returns the schedule's effective (default-filled) retry policy.
func (s *Sched) Policy() RetryPolicy { return s.spec.Retry }

// splitmix64 is the finalizer of the splitmix64 generator — the same mixer
// the noise plane seeds its per-rank streams with.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// u returns a uniform draw in [0, 1) that is a pure function of
// (seed, rank, channel, idx, sub) — no state beyond the counters that
// produce idx, so decisions replay identically at any worker count and
// under either charge-fold schedule.
func (s *Sched) u(ch uint64, idx, sub uint64) float64 {
	x := s.spec.Seed
	x = splitmix64(x ^ (uint64(s.rank)+1)*0x9E3779B97F4A7C15)
	x = splitmix64(x ^ ch*0xBF58476D1CE4E5B9)
	x = splitmix64(x ^ idx*0x94D049BB133111EB ^ sub*0xD6E8FEB86659FD93)
	return float64(x>>11) / (1 << 53)
}

func (s *Sched) failPct(cl Class) float64 {
	switch cl {
	case ClassGet:
		return s.spec.GetFailPct
	case ClassPut:
		return s.spec.PutFailPct
	default:
		return s.spec.AccFailPct
	}
}

// Outcome is the fault decision of one remote one-sided operation: how
// many attempts failed before the forced-successful one, the absorbed
// latency spike on the successful attempt, and the stall window opening at
// this op (all zero on the fault-free fast path).
type Outcome struct {
	s       *Sched
	op      uint64
	failed  int
	spikeNS float64
	stallNS float64
	crashed bool
	wedged  bool
}

// Op advances the rank's remote-op counter and decides the op's faults.
// It must be called exactly once per remote one-sided operation, at the
// issue point of the canonical charge order.
func (s *Sched) Op(cl Class) Outcome {
	op := s.ops
	s.ops++
	o := Outcome{s: s, op: op}
	if p := s.failPct(cl); p > 0 {
		for a := 0; a < s.spec.Retry.MaxAttempts; a++ {
			if s.u(uint64(cl), op, uint64(a)) >= p {
				break
			}
			o.failed++
		}
	}
	if s.spec.SpikePct > 0 && s.u(chSpike, op, 0) < s.spec.SpikePct {
		o.spikeNS = s.spec.SpikeNS * (0.5 + s.u(chSpike, op, 1))
	}
	if n := uint64(s.spec.StallPeriodOps); n > 0 && op > 0 && op%n == 0 {
		o.stallNS = s.spec.StallNS * (0.5 + s.u(chStall, op/n, 0))
	}
	if s.spec.CrashAtOp > 0 && !s.crashed && s.rank == s.spec.CrashRank &&
		op+1 == uint64(s.spec.CrashAtOp) {
		s.crashed = true
		o.crashed = true
	}
	if s.spec.WedgeAtOp > 0 && !s.wedged && s.rank == s.spec.WedgeRank &&
		op+1 == uint64(s.spec.WedgeAtOp) {
		s.wedged = true
		o.wedged = true
	}
	return o
}

// Failed returns the number of failed attempts before the successful one
// (0 on the fault-free path, ≤ the policy's MaxAttempts always).
func (o Outcome) Failed() int { return o.failed }

// SpikeNS returns the absorbed latency-spike delay of the successful
// attempt, 0 if none fired.
func (o Outcome) SpikeNS() float64 { return o.spikeNS }

// StallNS returns the stall-window duration opening at this op, 0 if none.
func (o Outcome) StallNS() float64 { return o.stallNS }

// Crashed reports whether the crash-stop fires at this op.
func (o Outcome) Crashed() bool { return o.crashed }

// Wedged reports whether the wedge class fires at this op: the rank
// parks forever and only an external cancel releases it.
func (o Outcome) Wedged() bool { return o.wedged }

// CrashRecovers reports the armed recovery mode: true re-executes from
// the last barrier, false fails the run fast.
func (o Outcome) CrashRecovers() bool { return o.s.spec.CrashRecover }

// CrashRestartNS returns the modeled restart delay of a recovered crash.
func (o Outcome) CrashRestartNS() float64 { return o.s.spec.CrashRestartNS }

// CrashError builds the deterministic error of an unrecovered crash at
// this op on the given rank.
func (o Outcome) CrashError(rank int) *CrashError {
	return &CrashError{Rank: rank, Op: int(o.op) + 1}
}

// BackoffNS returns the deterministic jittered backoff before retrying
// after failed attempt a: min(Base·2^a, Max) × (0.5 + u).
func (o Outcome) BackoffNS(attempt int) float64 {
	p := o.s.spec.Retry
	sh := uint(attempt)
	if sh > 30 {
		sh = 30
	}
	b := p.BackoffBaseNS * float64(uint64(1)<<sh)
	if b > p.BackoffMaxNS {
		b = p.BackoffMaxNS
	}
	return b * (0.5 + o.s.u(chBackoff, o.op, uint64(attempt)))
}

// CacheOp advances the rank's cache-access counter and reports whether a
// CLaMPI-unavailability fault fires on this access.
func (s *Sched) CacheOp() bool {
	if s.spec.CacheFailPct <= 0 {
		return false
	}
	idx := s.cacheOps
	s.cacheOps++
	return s.u(chCache, idx, 0) < s.spec.CacheFailPct
}

// MsgDrops advances the rank's p2p send sequence and returns how many
// times this message is dropped in flight before getting through (0 on
// the fault-free path, bounded by the retry policy).
func (s *Sched) MsgDrops() int {
	if s.spec.DropPct <= 0 {
		s.msgs++
		return 0
	}
	seq := s.msgs
	s.msgs++
	d := 0
	for d < s.spec.Retry.MaxAttempts && s.u(chDrop, seq, uint64(d)) < s.spec.DropPct {
		d++
	}
	return d
}

// ParseSpec parses the -faults flag grammar: a comma-separated list of
// key=value settings.
//
//	seed=N            schedule seed (default 1)
//	get=P put=P acc=P per-attempt transient failure probability by class
//	p=P               shorthand: get, put, acc and drop at once
//	spike=P:NS        latency spikes: probability and magnitude
//	stall=N:NS        a stall window every N remote ops, ~NS ns each
//	drop=P            p2p message drop probability
//	cache=P           CLaMPI unavailability probability per access
//	crash=R:OP        crash-stop: rank R dies at its OP-th remote op and
//	                  the run fails fast with a deterministic error
//	crashrecover=R:OP crash-stop with recovery: the rank restarts and
//	                  re-executes from its last barrier (results are
//	                  bit-identical to the fault-free run)
//	restart=NS        modeled restart delay of a recovered crash
//	wedge=R:OP        wedge: rank R parks forever at its OP-th remote op;
//	                  only an external cancel (deadline, serve watchdog)
//	                  ends the run
//	retries=N timeout=NS backoff=BASE:MAX   retry policy
//	chaos             the ChaosSpec preset (other keys still override)
//
// The empty string returns (nil, nil): faults off.
func ParseSpec(s string) (*Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	spec := Spec{Seed: 1}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		if kv == "chaos" {
			spec = ChaosSpec(spec.Seed)
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("fault: %q is not key=value", kv)
		}
		pair := func() (float64, float64, error) {
			a, b, ok := strings.Cut(v, ":")
			if !ok {
				return 0, 0, fmt.Errorf("fault: %s needs a:b, got %q", k, v)
			}
			x, err := strconv.ParseFloat(a, 64)
			if err != nil {
				return 0, 0, fmt.Errorf("fault: %s: %v", k, err)
			}
			y, err := strconv.ParseFloat(b, 64)
			if err != nil {
				return 0, 0, fmt.Errorf("fault: %s: %v", k, err)
			}
			return x, y, nil
		}
		var f float64
		var err error
		switch k {
		case "spike":
			spec.SpikePct, spec.SpikeNS, err = pair()
		case "stall":
			var n float64
			n, spec.StallNS, err = pair()
			spec.StallPeriodOps = int(n)
		case "backoff":
			spec.Retry.BackoffBaseNS, spec.Retry.BackoffMaxNS, err = pair()
		case "crash", "crashrecover":
			var rk, op float64
			rk, op, err = pair()
			spec.CrashRank, spec.CrashAtOp = int(rk), int(op)
			spec.CrashRecover = k == "crashrecover"
			if err == nil && (spec.CrashRank < 0 || spec.CrashAtOp < 1) {
				return nil, fmt.Errorf("fault: %s=%s needs rank>=0 and op>=1", k, v)
			}
		case "wedge":
			var rk, op float64
			rk, op, err = pair()
			spec.WedgeRank, spec.WedgeAtOp = int(rk), int(op)
			if err == nil && (spec.WedgeRank < 0 || spec.WedgeAtOp < 1) {
				return nil, fmt.Errorf("fault: %s=%s needs rank>=0 and op>=1", k, v)
			}
		default:
			f, err = strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: %s: %v", k, err)
			}
			switch k {
			case "seed":
				spec.Seed = uint64(f)
			case "get":
				spec.GetFailPct = f
			case "put":
				spec.PutFailPct = f
			case "acc":
				spec.AccFailPct = f
			case "p":
				spec.GetFailPct, spec.PutFailPct = f, f
				spec.AccFailPct, spec.DropPct = f, f
			case "drop":
				spec.DropPct = f
			case "cache":
				spec.CacheFailPct = f
			case "retries":
				spec.Retry.MaxAttempts = int(f)
			case "timeout":
				spec.Retry.TimeoutNS = f
			case "restart":
				spec.CrashRestartNS = f
			default:
				return nil, fmt.Errorf("fault: unknown key %q", k)
			}
		}
		if err != nil {
			return nil, err
		}
		if prob(k) && (f < 0 || f >= 1) {
			return nil, fmt.Errorf("fault: %s=%v outside [0,1)", k, f)
		}
	}
	if !spec.Enabled() {
		return nil, fmt.Errorf("fault: %q enables no fault class", s)
	}
	return &spec, nil
}

func prob(k string) bool {
	switch k {
	case "get", "put", "acc", "p", "drop", "cache":
		return true
	}
	return false
}

// String renders the spec in ParseSpec grammar (diagnostics, run logs).
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", s.Seed)
	add := func(k string, v float64) {
		if v > 0 {
			fmt.Fprintf(&b, ",%s=%g", k, v)
		}
	}
	add("get", s.GetFailPct)
	add("put", s.PutFailPct)
	add("acc", s.AccFailPct)
	if s.SpikePct > 0 && s.SpikeNS > 0 {
		fmt.Fprintf(&b, ",spike=%g:%g", s.SpikePct, s.SpikeNS)
	}
	if s.StallPeriodOps > 0 && s.StallNS > 0 {
		fmt.Fprintf(&b, ",stall=%d:%g", s.StallPeriodOps, s.StallNS)
	}
	add("drop", s.DropPct)
	add("cache", s.CacheFailPct)
	if s.CrashAtOp > 0 {
		k := "crash"
		if s.CrashRecover {
			k = "crashrecover"
		}
		fmt.Fprintf(&b, ",%s=%d:%d", k, s.CrashRank, s.CrashAtOp)
		if s.CrashRestartNS > 0 {
			fmt.Fprintf(&b, ",restart=%g", s.CrashRestartNS)
		}
	}
	if s.WedgeAtOp > 0 {
		fmt.Fprintf(&b, ",wedge=%d:%d", s.WedgeRank, s.WedgeAtOp)
	}
	return b.String()
}
