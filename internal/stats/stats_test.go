package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{7}, 7},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("Q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("Q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("Q0.5 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("Q0.25 = %v", got)
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample stddev of this classic set is ~2.138.
	if got := Stddev(xs); math.Abs(got-2.138) > 0.01 {
		t.Errorf("Stddev = %v, want ~2.138", got)
	}
	if Stddev([]float64{1}) != 0 {
		t.Error("Stddev of one sample should be 0")
	}
}

func TestMedianCIContainsMedian(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 6 + int(seed%100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 50
		}
		lo, hi := MedianCI(xs)
		m := Median(xs)
		return lo <= m && m <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMedianCISmallSamples(t *testing.T) {
	lo, hi := MedianCI([]float64{5, 1, 3})
	if lo != 1 || hi != 5 {
		t.Errorf("small-sample CI = [%v,%v], want full range", lo, hi)
	}
}

func TestRepeatStopsWhenTight(t *testing.T) {
	calls := 0
	m := Repeat(func() float64 {
		calls++
		return 100 // zero variance: tight immediately at minRuns
	}, 5, 1000, 0.05)
	if calls != 5 {
		t.Errorf("Repeat ran %d times, want 5 (tight at minRuns)", calls)
	}
	if m.Median != 100 || m.Samples != 5 {
		t.Errorf("Measurement = %+v", m)
	}
	if !m.Tight(0.05) {
		t.Error("constant measurement not tight")
	}
}

func TestRepeatHitsMaxOnNoisyData(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	calls := 0
	m := Repeat(func() float64 {
		calls++
		return rng.Float64() * 1000 // hopeless variance
	}, 3, 40, 0.001)
	if calls != 40 {
		t.Errorf("Repeat ran %d times, want maxRuns=40", calls)
	}
	if m.Samples != 40 {
		t.Errorf("Samples = %d", m.Samples)
	}
}

func TestTight(t *testing.T) {
	m := Measurement{Median: 100, CILo: 97, CIHi: 103}
	if !m.Tight(0.05) {
		t.Error("3% CI should be tight at 5%")
	}
	if m.Tight(0.01) {
		t.Error("3% CI should not be tight at 1%")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(140, 10); got != 14 {
		t.Errorf("Speedup = %v, want 14", got)
	}
	if got := Speedup(1, 0); got != 0 {
		t.Errorf("Speedup by zero = %v, want 0", got)
	}
}

func TestMeasurementString(t *testing.T) {
	m := Measurement{Median: 1.5, CILo: 1.4, CIHi: 1.6, Samples: 12}
	if s := m.String(); s == "" {
		t.Error("empty String()")
	}
}
