// Package stats provides the measurement methodology of the paper's §IV-A,
// modeled on the LibLSB scientific-benchmarking library (Hoefler & Belli,
// SC'15): repeated measurements reported as the median with a 95%
// confidence interval, repeating "until 5% of the median is within the 95%
// CI" for shared-memory experiments.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the median of xs (the average of the two central elements
// for even lengths). It returns NaN for empty input.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return s[n-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// MedianCI returns the nonparametric 95% confidence interval of the median
// using the binomial order-statistic bounds (the standard distribution-free
// interval LibLSB reports).
func MedianCI(xs []float64) (lo, hi float64) {
	n := len(xs)
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n < 6 {
		return s[0], s[n-1]
	}
	// Normal approximation of the binomial order statistics: ranks
	// n/2 ± 1.96·sqrt(n)/2.
	d := 1.96 * math.Sqrt(float64(n)) / 2
	loIdx := int(math.Floor(float64(n)/2 - d))
	hiIdx := int(math.Ceil(float64(n)/2+d)) - 1
	if loIdx < 0 {
		loIdx = 0
	}
	if hiIdx >= n {
		hiIdx = n - 1
	}
	return s[loIdx], s[hiIdx]
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the sample standard deviation (n-1 denominator).
func Stddev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Measurement is the result of a repeated measurement.
type Measurement struct {
	Median  float64
	CILo    float64
	CIHi    float64
	Samples int
}

// Tight reports whether the CI half-width is within frac of the median —
// the paper's stopping criterion with frac = 0.05.
func (m Measurement) Tight(frac float64) bool {
	if m.Median == 0 {
		return true
	}
	half := math.Max(m.Median-m.CILo, m.CIHi-m.Median)
	return half <= frac*math.Abs(m.Median)
}

func (m Measurement) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g] (n=%d)", m.Median, m.CILo, m.CIHi, m.Samples)
}

// Repeat runs f at least minRuns times and until the 95% CI of the median
// is within frac of the median (or maxRuns is reached), returning the
// measurement — the §IV-A methodology for shared-memory experiments.
func Repeat(f func() float64, minRuns, maxRuns int, frac float64) Measurement {
	if minRuns < 3 {
		minRuns = 3
	}
	if maxRuns < minRuns {
		maxRuns = minRuns
	}
	var xs []float64
	for len(xs) < maxRuns {
		xs = append(xs, f())
		if len(xs) >= minRuns {
			m := summarize(xs)
			if m.Tight(frac) {
				return m
			}
		}
	}
	return summarize(xs)
}

func summarize(xs []float64) Measurement {
	lo, hi := MedianCI(xs)
	return Measurement{Median: Median(xs), CILo: lo, CIHi: hi, Samples: len(xs)}
}

// Speedup formats a speedup factor the way the paper annotates its scaling
// plots ("14.0x").
func Speedup(base, improved float64) float64 {
	if improved == 0 {
		return 0
	}
	return base / improved
}
