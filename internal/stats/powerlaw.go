package stats

import (
	"fmt"
	"math"
	"sort"
)

// Power-law analysis of degree distributions. §III-B-1 sizes the C_adj
// hash table from the assumption that the graph's degree distribution
// follows a power law (the cache holding a fraction f of the graph stores
// ≈ n·f^α entries); Fig. 4 and the caching results all hinge on how
// heavy-tailed the input is. This file provides the standard
// discrete-MLE exponent estimator (Clauset, Shalizi & Newman, 2009) and a
// tail-concentration summary, used by the dataset-validation tests and by
// cmd/graphgen's -stats output.

// PowerLawFit is the result of fitting p(k) ∝ k^(−γ) for k ≥ KMin.
type PowerLawFit struct {
	Gamma float64 // fitted exponent γ
	KMin  int     // lower cut-off used for the fit
	NTail int     // observations at or above KMin
}

// FitPowerLaw estimates the exponent of a discrete power law from the
// given positive observations (typically vertex degrees) using the MLE
//
//	γ ≈ 1 + n · [ Σ ln(k_i / (kmin − ½)) ]^(−1)
//
// for the tail k ≥ kmin. kmin ≤ 0 selects a heuristic cut-off at the
// distribution's median (a cheap, deterministic stand-in for the KS-scan
// of Clauset et al. that is stable at the sample sizes used here).
func FitPowerLaw(ks []int, kmin int) (PowerLawFit, error) {
	if len(ks) == 0 {
		return PowerLawFit{}, fmt.Errorf("stats: FitPowerLaw on empty sample")
	}
	if kmin <= 0 {
		sorted := make([]int, 0, len(ks))
		for _, k := range ks {
			if k > 0 {
				sorted = append(sorted, k)
			}
		}
		if len(sorted) == 0 {
			return PowerLawFit{}, fmt.Errorf("stats: FitPowerLaw needs positive observations")
		}
		sort.Ints(sorted)
		kmin = sorted[len(sorted)/2]
		if kmin < 2 {
			kmin = 2
		}
	}
	sum := 0.0
	n := 0
	for _, k := range ks {
		if k >= kmin {
			sum += math.Log(float64(k) / (float64(kmin) - 0.5))
			n++
		}
	}
	if n < 2 || sum <= 0 {
		return PowerLawFit{}, fmt.Errorf("stats: FitPowerLaw: tail too small (%d obs ≥ %d)", n, kmin)
	}
	return PowerLawFit{Gamma: 1 + float64(n)/sum, KMin: kmin, NTail: n}, nil
}

// HeavyTailed reports whether the fit looks like a real-world scale-free
// graph: exponents of social/web networks fall in (1.5, 3.5). Uniform
// (Erdős–Rényi) degree samples produce much larger fitted exponents
// because their tail decays exponentially.
func (f PowerLawFit) HeavyTailed() bool {
	return f.Gamma > 1.5 && f.Gamma < 3.5
}

// Gini returns the Gini coefficient of the (non-negative) sample — 0 for
// perfectly uniform values, →1 for extreme concentration. The paper's
// Fig. 4 story (top-10% of vertices attract most remote reads) is exactly
// a high-Gini degree distribution; internal/graph exposes the same metric
// for degrees, this one works on any sample (e.g. per-vertex remote-read
// counts from a trace).
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var cum, total float64
	for i, x := range s {
		cum += float64(i+1) * x
		total += x
	}
	n := float64(len(s))
	if total == 0 {
		return 0
	}
	return (2*cum)/(n*total) - (n+1)/n
}

// TopShare returns the fraction of the total mass held by the top
// `frac` share of the sample (e.g. TopShare(degrees, 0.1) = the Fig. 4
// top-10% concentration).
func TopShare(xs []float64, frac float64) float64 {
	if len(xs) == 0 || frac <= 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	k := int(math.Ceil(frac * float64(len(s))))
	if k > len(s) {
		k = len(s)
	}
	var top, total float64
	for i, x := range s {
		if i < k {
			top += x
		}
		total += x
	}
	if total == 0 {
		return 0
	}
	return top / total
}
