package stats

import (
	"math"
	"math/rand"
	"testing"
)

// samplePowerLaw draws n values from a discrete power law with exponent
// gamma via inverse-CDF sampling of the continuous approximation.
func samplePowerLaw(rng *rand.Rand, n int, gamma float64, kmin int) []int {
	out := make([]int, n)
	for i := range out {
		u := rng.Float64()
		x := float64(kmin) * math.Pow(1-u, -1/(gamma-1))
		out[i] = int(x)
	}
	return out
}

func TestFitPowerLawRecoversExponent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, gamma := range []float64{2.0, 2.5, 3.0} {
		// kmin=8 keeps the int() truncation bias of the sampler small
		// relative to the estimator's own O(1/kmin) discretization error.
		ks := samplePowerLaw(rng, 50000, gamma, 8)
		fit, err := FitPowerLaw(ks, 8)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Gamma-gamma) > 0.1 {
			t.Fatalf("gamma %.1f: fitted %.3f (off by %.3f)", gamma, fit.Gamma, math.Abs(fit.Gamma-gamma))
		}
		if !fit.HeavyTailed() {
			t.Fatalf("gamma %.1f sample not classified heavy-tailed (fit %.2f)", gamma, fit.Gamma)
		}
	}
}

func TestFitPowerLawUniformNotHeavyTailed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Poisson-ish uniform degrees around 16: exponential tail.
	ks := make([]int, 20000)
	for i := range ks {
		ks[i] = 12 + rng.Intn(9) // 12..20
	}
	fit, err := FitPowerLaw(ks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fit.HeavyTailed() {
		t.Fatalf("uniform degrees classified heavy-tailed (gamma %.2f)", fit.Gamma)
	}
	if fit.Gamma < 3.5 {
		t.Fatalf("uniform sample fitted gamma %.2f, want large", fit.Gamma)
	}
}

func TestFitPowerLawAutoKMin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ks := samplePowerLaw(rng, 30000, 2.3, 3)
	fit, err := FitPowerLaw(ks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fit.KMin < 2 {
		t.Fatalf("auto kmin = %d, want >= 2", fit.KMin)
	}
	if math.Abs(fit.Gamma-2.3) > 0.25 {
		t.Fatalf("auto-kmin fit %.3f too far from 2.3", fit.Gamma)
	}
	if fit.NTail <= 0 || fit.NTail > len(ks) {
		t.Fatalf("NTail = %d out of range", fit.NTail)
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, err := FitPowerLaw(nil, 0); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := FitPowerLaw([]int{0, 0}, 0); err == nil {
		t.Fatal("all-zero sample accepted")
	}
	if _, err := FitPowerLaw([]int{5}, 5); err == nil {
		t.Fatal("single-point tail accepted")
	}
}

func TestGiniBounds(t *testing.T) {
	if g := Gini([]float64{3, 3, 3, 3}); math.Abs(g) > 1e-12 {
		t.Fatalf("uniform Gini = %g, want 0", g)
	}
	// One holder of all mass among many: Gini → 1.
	xs := make([]float64, 1000)
	xs[0] = 1
	if g := Gini(xs); g < 0.99 {
		t.Fatalf("concentrated Gini = %g, want ≈ 1", g)
	}
	if g := Gini(nil); g != 0 {
		t.Fatalf("empty Gini = %g", g)
	}
	if g := Gini([]float64{0, 0}); g != 0 {
		t.Fatalf("zero-mass Gini = %g", g)
	}
}

func TestGiniOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	uniform := make([]float64, 5000)
	skewed := make([]float64, 5000)
	for i := range uniform {
		uniform[i] = 10 + rng.Float64()
		skewed[i] = math.Pow(1-rng.Float64(), -1.2)
	}
	if gu, gs := Gini(uniform), Gini(skewed); gu >= gs {
		t.Fatalf("Gini(uniform)=%.3f not below Gini(power-law)=%.3f", gu, gs)
	}
}

func TestTopShare(t *testing.T) {
	xs := []float64{100, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	// Top 10% = the single 100 out of total 109.
	got := TopShare(xs, 0.1)
	want := 100.0 / 109.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TopShare = %g, want %g", got, want)
	}
	if s := TopShare(xs, 1.0); math.Abs(s-1) > 1e-12 {
		t.Fatalf("TopShare(all) = %g, want 1", s)
	}
	if s := TopShare(nil, 0.1); s != 0 {
		t.Fatalf("TopShare(empty) = %g", s)
	}
	if s := TopShare(xs, 0); s != 0 {
		t.Fatalf("TopShare(frac 0) = %g", s)
	}
}

func TestPowerLawOnGeneratedDegrees(t *testing.T) {
	// End-to-end sanity used by the Table II validation: R-MAT degrees
	// must fit heavy-tailed, uniform (narrow-range) must not. This is a
	// weaker but faster version of the gen-package checks, on synthetic
	// degree samples shaped like the generators'.
	rng := rand.New(rand.NewSource(5))
	rmatLike := samplePowerLaw(rng, 30000, 2.1, 2)
	fit, err := FitPowerLaw(rmatLike, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !fit.HeavyTailed() {
		t.Fatalf("R-MAT-like degrees not heavy-tailed (gamma %.2f)", fit.Gamma)
	}
}
