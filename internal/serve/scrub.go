package serve

// Integrity scrubbing: the serving plane's defense against silent
// resident-memory corruption. Snapshots record per-rank CRC-32C over
// their adjacency, offset and resolve tables at build time
// (lcc/integrity.go); the scrubber re-verifies idle instances on a
// jittered period and, on a mismatch, quarantines the instance — the
// corrupt snapshot is discarded before another query can read it — and
// auto-reloads from the dataset source, reusing the parking machinery's
// rebuild path. Queries arriving mid-quarantine wait out the reload
// (admit's quarantined branch) or, when the reload itself fails, get the
// typed unhealthy error; no query ever computes over bits that failed
// their checksum.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/lcc"
)

// ErrQuarantined is the sentinel a scrub failure matches via errors.Is;
// the concrete *ScrubError names the corrupt rank and section.
var ErrQuarantined = errors.New("serve: instance quarantined")

// Checksummed snapshot sections, re-exported for CorruptResident callers
// (tests, the chaos harness).
const (
	SectionOffsets   = lcc.SectionOffsets
	SectionAdjacency = lcc.SectionAdjacency
	SectionResolve   = lcc.SectionResolve
)

// ScrubError reports a snapshot integrity failure: which instance was
// quarantined and the checksum mismatch (rank, section, want/got) that
// triggered it.
type ScrubError struct {
	Instance  string
	Integrity *lcc.IntegrityError
}

func (e *ScrubError) Error() string {
	return fmt.Sprintf("serve: instance %q quarantined: %v", e.Instance, e.Integrity)
}

func (e *ScrubError) Is(target error) bool { return target == ErrQuarantined }

// Unwrap exposes the underlying *lcc.IntegrityError to errors.As.
func (e *ScrubError) Unwrap() error { return e.Integrity }

// Scrub verifies the instance's resident snapshot against its build-time
// checksums, if the instance is idle — ready, no runs in flight or
// queued. Busy, parked, loading and exited instances are skipped
// (checked=false — skipped, not failed: parked instances hold no bytes
// to corrupt, and a busy instance is re-checked on the next sweep). On a
// mismatch the instance is quarantined — state flips, the corrupt
// snapshot is dropped, failure records the *ScrubError — and then
// immediately reloaded from its dataset source. The returned *ScrubError
// is non-nil exactly when corruption was found; err reports a reload
// that failed afterwards (the instance is then unhealthy with the reload
// cause).
func (inst *Instance) Scrub() (checked bool, se *ScrubError, err error) {
	inst.mu.Lock()
	if inst.state != StateReady || inst.active > 0 || inst.queue.Len() > 0 || inst.snap == nil {
		inst.mu.Unlock()
		return false, nil, nil
	}
	snap := inst.snap
	inst.mu.Unlock()

	// Verify outside the lock: the CRC sweep over a large snapshot takes
	// real time and everything it reads is immutable. An admission racing
	// in meanwhile is fine — it runs on bits that were checksummed-clean a
	// moment ago, exactly what it would have done had the sweep not run.
	verr := snap.Verify()
	if verr == nil {
		return true, nil, nil
	}
	var ie *lcc.IntegrityError
	if !errors.As(verr, &ie) {
		ie = &lcc.IntegrityError{Section: "unknown"}
	}
	se = &ScrubError{Instance: inst.name, Integrity: ie}

	inst.mu.Lock()
	if inst.snap != snap || inst.state != StateReady || inst.active > 0 || inst.queue.Len() > 0 {
		// Raced with a reload, park, stop or admission while verifying.
		// The corruption (if the snapshot is even still installed) will be
		// re-detected on the next idle sweep; quarantining under a live
		// run would yank the state transitions out from under it.
		inst.mu.Unlock()
		return true, se, nil
	}
	inst.state = StateQuarantined
	inst.snap = nil
	inst.failure = se
	inst.cond.Broadcast()
	inst.mu.Unlock()

	// Auto-reload from the dataset source — the same rebuild path an
	// unpark takes. Success clears failure and restores ready; a failure
	// flips unhealthy with the load error and fences any queries that
	// queued up behind the quarantine.
	return true, se, inst.reloadFromQuarantine()
}

// CorruptResident flips one bit in the named section of the resident
// snapshot — the fault-injection hook behind the scrub tests and the
// chaos harness. It only touches a ready, idle instance (the same
// precondition Scrub checks), so the corrupted bytes are exactly the
// ones the next sweep verifies. The snapshot's adjacency is private to
// this instance (part.Extract copies out of the source graph), so the
// damage never leaks into other instances or the dataset cache.
func (inst *Instance) CorruptResident(rank int, section string) error {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.state != StateReady || inst.active > 0 || inst.snap == nil {
		return ErrNotReady
	}
	return inst.snap.CorruptForTest(rank, section)
}

// reloadFromQuarantine rebuilds the snapshot of a quarantined instance.
// A state change since quarantine (an explicit Reload or Stop racing in)
// makes it a no-op — whoever changed the state owns the instance now.
func (inst *Instance) reloadFromQuarantine() error {
	inst.mu.Lock()
	if inst.state != StateQuarantined {
		inst.mu.Unlock()
		return nil
	}
	inst.state = StateLoading
	inst.mu.Unlock()
	return inst.loadAndNote()
}

// ScrubStats aggregates the supervisor's scrub outcomes.
type ScrubStats struct {
	Sweeps       int64 `json:"sweeps"`        // completed full-fleet sweeps
	Verified     int64 `json:"verified"`      // snapshots that passed verification
	Quarantines  int64 `json:"quarantines"`   // corruption detections
	ReloadFailed int64 `json:"reload_failed"` // auto-reloads that failed (instance left unhealthy)
}

// ScrubNow sweeps every registered instance once, synchronously:
// idle-ready instances are verified (and quarantined + reloaded on
// mismatch). It returns the names of instances quarantined during the
// sweep. The background Scrubber calls this on its period; tests and the
// chaos harness call it directly.
func (s *Supervisor) ScrubNow() []string {
	s.mu.Lock()
	insts := make([]*Instance, 0, len(s.instances))
	for _, inst := range s.instances {
		insts = append(insts, inst)
	}
	s.mu.Unlock()
	var quarantined []string
	for _, inst := range insts {
		checked, se, err := inst.Scrub()
		s.mu.Lock()
		switch {
		case se != nil:
			s.scrub.Quarantines++
			quarantined = append(quarantined, inst.Name())
		case checked:
			s.scrub.Verified++
		}
		if err != nil {
			s.scrub.ReloadFailed++
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.scrub.Sweeps++
	s.mu.Unlock()
	return quarantined
}

// ScrubStats returns the cumulative scrub counters.
func (s *Supervisor) ScrubStats() ScrubStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scrub
}

// Scrubber is the background integrity-scrubbing loop: a full-fleet
// ScrubNow sweep on a jittered period. The jitter (±25%, deterministic
// from the seed) keeps a fleet of daemons from synchronizing their
// sweeps — the usual thundering-herd discipline, applied to CPU spent
// checksumming.
type Scrubber struct {
	sup    *Supervisor
	period time.Duration
	seed   uint64
	stopC  chan struct{}
	done   chan struct{}
}

// StartScrubber starts the background loop; period <= 0 selects a
// minute. Stop the returned Scrubber before shutting the supervisor
// down.
func (s *Supervisor) StartScrubber(period time.Duration, seed uint64) *Scrubber {
	if period <= 0 {
		period = time.Minute
	}
	sc := &Scrubber{sup: s, period: period, seed: seed,
		stopC: make(chan struct{}), done: make(chan struct{})}
	go sc.loop()
	return sc
}

// splitmix64 mirrors the fault plane's mixer; the scrubber only needs a
// cheap deterministic jitter stream.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (sc *Scrubber) loop() {
	defer close(sc.done)
	for i := uint64(0); ; i++ {
		u := float64(splitmix64(sc.seed^i)>>11) / (1 << 53) // [0,1)
		d := time.Duration((0.75 + 0.5*u) * float64(sc.period))
		t := time.NewTimer(d)
		select {
		case <-sc.stopC:
			t.Stop()
			return
		case <-t.C:
		}
		sc.sup.ScrubNow()
	}
}

// Stop terminates the loop and waits for an in-flight sweep to finish.
func (sc *Scrubber) Stop() {
	close(sc.stopC)
	<-sc.done
}
