package serve_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// Durability tests (DESIGN.md §8): manifest round-trips, corrupt and
// version-skewed files skipped loudly, crash-stop recovery (lazy and
// eager) with bit-identical pins, park/reload golden bits, and the LRU
// eviction sweep under a supervisor memory budget.

func testStore(t *testing.T) *serve.ManifestStore {
	t.Helper()
	ms, err := serve.NewManifestStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewManifestStore: %v", err)
	}
	return ms
}

func fbConfig() serve.Config {
	return serve.Config{Dataset: "fb-sim", Ranks: 4, MaxConcurrent: 2, QueueDepth: 4}
}

// TestManifestRoundTrip saves a manifest and reads it back through both
// Load and LoadAll, field for field.
func TestManifestRoundTrip(t *testing.T) {
	ms := testStore(t)
	want := &serve.Manifest{
		Name: "fb", Dataset: "fb-sim", Ranks: 4, Scheme: "block",
		DelegateBytes: 1 << 16, Storage: "compressed", MemBudgetBytes: 1 << 30,
		MaxConcurrent: 2, QueueDepth: 8, DefaultTimeoutMS: 5000,
	}
	if err := ms.Save(want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := ms.Load(ms.Path("fb"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if *got != *want {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
	all, skipped := ms.LoadAll()
	if len(all) != 1 || len(skipped) != 0 {
		t.Fatalf("LoadAll = %d manifests, %d skipped; want 1, 0", len(all), len(skipped))
	}
	if err := ms.Remove("fb"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if all, _ := ms.LoadAll(); len(all) != 0 {
		t.Fatalf("manifest survives Remove")
	}
	if err := ms.Remove("fb"); err != nil {
		t.Fatalf("second Remove not idempotent: %v", err)
	}
}

// TestManifestCorruptionDetected flips bytes in a saved manifest and
// asserts every corruption class fails typed, and that LoadAll skips the
// bad file while returning the good ones.
func TestManifestCorruptionDetected(t *testing.T) {
	ms := testStore(t)
	good := &serve.Manifest{Name: "good", Dataset: "fb-sim", Ranks: 4}
	bad := &serve.Manifest{Name: "bad", Dataset: "fb-sim", Ranks: 4}
	for _, m := range []*serve.Manifest{good, bad} {
		if err := ms.Save(m); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	raw, err := os.ReadFile(ms.Path("bad"))
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func([]byte) []byte, wantClass error) {
		t.Helper()
		buf := mutate(append([]byte(nil), raw...))
		if err := os.WriteFile(ms.Path("bad"), buf, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := ms.Load(ms.Path("bad"))
		if !errors.Is(err, wantClass) {
			t.Fatalf("%s: err = %v, want %v", name, err, wantClass)
		}
		var me *serve.ManifestError
		if !errors.As(err, &me) {
			t.Fatalf("%s: err = %T, want *ManifestError", name, err)
		}
	}
	corrupt("payload bit flip", func(b []byte) []byte { b[20] ^= 0x40; return b }, serve.ErrManifestCorrupt)
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, serve.ErrManifestCorrupt)
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)-3] }, serve.ErrManifestCorrupt)
	corrupt("version skew", func(b []byte) []byte { b[8] = 99; return b }, serve.ErrManifestVersion)

	all, skipped := ms.LoadAll()
	if len(all) != 1 || all[0].Name != "good" {
		t.Fatalf("LoadAll manifests = %v, want just good", all)
	}
	if len(skipped) != 1 || !errors.Is(skipped[0], serve.ErrManifestVersion) {
		t.Fatalf("LoadAll skipped = %v, want one version-skew error", skipped)
	}
}

// TestParkReloadGolden parks a warm instance and asserts the next query
// transparently rebuilds the snapshot and reproduces the golden pins bit
// for bit, at Workers ∈ {1,4}.
func TestParkReloadGolden(t *testing.T) {
	for _, w := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			inst := fbInstance(t)
			res, err := inst.Run(context.Background(), pullQuery(w))
			if err != nil {
				t.Fatalf("warm run: %v", err)
			}
			assertPins(t, res)
			if err := inst.Park(); err != nil {
				t.Fatalf("Park: %v", err)
			}
			if st := inst.State(); st != serve.StateParked {
				t.Fatalf("state after Park = %v, want parked", st)
			}
			if got := inst.MemBytes(); got != 0 {
				t.Fatalf("MemBytes while parked = %d, want 0", got)
			}
			if err := inst.Park(); err != nil {
				t.Fatalf("Park on parked instance not a no-op: %v", err)
			}
			res, err = inst.Run(context.Background(), pullQuery(w))
			if err != nil {
				t.Fatalf("run against parked: %v", err)
			}
			assertPins(t, res)
			if st := inst.State(); st != serve.StateReady {
				t.Fatalf("state after unpark run = %v, want ready", st)
			}
			if got := inst.MemBytes(); got == 0 {
				t.Fatal("MemBytes after unpark = 0, want resident snapshot")
			}
		})
	}
}

// TestParkRefusesBusy asserts parking never cancels work: a busy instance
// refuses with ErrBusy.
func TestParkRefusesBusy(t *testing.T) {
	inst := fbInstance(t)
	release, join := occupy(t, inst, 2)
	if err := inst.Park(); !errors.Is(err, serve.ErrBusy) {
		t.Fatalf("Park on busy instance: err = %v, want ErrBusy", err)
	}
	close(release)
	join()
	if err := inst.Park(); err != nil {
		t.Fatalf("Park after drain: %v", err)
	}
}

// TestSupervisorEvictionLRU loads instances past a memory budget and
// asserts the least-recently-used idle instance is parked — and that a
// query against the evicted instance transparently restores it with the
// golden pins, in turn parking the other one.
func TestSupervisorEvictionLRU(t *testing.T) {
	sup := serve.NewSupervisor()
	a, err := sup.Load("a", fbConfig())
	if err != nil {
		t.Fatalf("load a: %v", err)
	}
	bytes := a.MemBytes()
	if bytes <= 0 {
		t.Fatalf("MemBytes = %d, want > 0", bytes)
	}
	// Budget fits one snapshot and a half: loading the second instance
	// must park the first (the colder of the two).
	sup.SetMemBudget(bytes + bytes/2)
	b, err := sup.Load("b", fbConfig())
	if err != nil {
		t.Fatalf("load b: %v", err)
	}
	if st := a.State(); st != serve.StateParked {
		t.Fatalf("a after loading b = %v, want parked (LRU)", st)
	}
	if st := b.State(); st != serve.StateReady {
		t.Fatalf("b = %v, want ready", st)
	}
	if got := sup.Parks(); got != 1 {
		t.Fatalf("Parks = %d, want 1", got)
	}
	// Query the evicted instance: it unparks transparently, wins the
	// budget (it is the loading instance), and b gets parked instead.
	res, err := sup.Run(context.Background(), "a", pullQuery(4))
	if err != nil {
		t.Fatalf("run on parked a: %v", err)
	}
	assertPins(t, res)
	if st := a.State(); st != serve.StateReady {
		t.Fatalf("a after unpark = %v, want ready", st)
	}
	if st := b.State(); st != serve.StateParked {
		t.Fatalf("b after a's unpark = %v, want parked", st)
	}
	if got := sup.Parks(); got != 2 {
		t.Fatalf("Parks = %d, want 2", got)
	}
}

// TestSupervisorEvictionSparesBusyAndQueued pins the eviction sweep's
// safety contract: busy and queued instances are never parked, even when
// the fleet overshoots the budget — overshoot beats canceling work.
func TestSupervisorEvictionSparesBusyAndQueued(t *testing.T) {
	sup := serve.NewSupervisor()
	cfg := fbConfig()
	cfg.MaxConcurrent = 1
	a, err := sup.Load("a", cfg)
	if err != nil {
		t.Fatalf("load a: %v", err)
	}
	// Occupy a's only slot and park one more run in its queue.
	release, join := occupy(t, a, 2)
	queued := make(chan error, 1)
	go func() {
		_, err := a.Run(context.Background(), pullQuery(2))
		queued <- err
	}()
	waitQueued(t, a, 1)

	// A budget this tight demands evicting a — but a is busy with a
	// queued follower, so the sweep must leave it alone and overshoot.
	// A *new* load is a different matter: the server is over budget with
	// nothing evictable, so admission browns out with the typed shed
	// error instead of piling on another snapshot (shed.go).
	sup.SetMemBudget(1)
	if _, err := sup.Load("b", fbConfig()); !errors.Is(err, serve.ErrBrownout) {
		t.Fatalf("load b under brownout: err = %v, want ErrBrownout", err)
	}
	if st := a.State(); st != serve.StateBusy {
		t.Fatalf("a during sweep = %v, want busy (never evicted)", st)
	}
	if a.MemBytes() == 0 {
		t.Fatal("a lost its snapshot while busy")
	}
	if got := sup.Parks(); got != 0 {
		t.Fatalf("Parks = %d, want 0 (nothing evictable)", got)
	}

	close(release)
	join()
	if err := <-queued; err != nil {
		t.Fatalf("queued run on a: %v", err)
	}
}

// TestSupervisorRecoveryLazy is the in-process crash-stop drill: load and
// query through a supervisor with a manifest store, drop the supervisor
// without any shutdown (the kill -9 analogue — only the state dir
// survives), recover into a fresh supervisor lazily, and assert the
// instance comes back parked and serves bit-identical pins on first query.
func TestSupervisorRecoveryLazy(t *testing.T) {
	dir := t.TempDir()
	ms, err := serve.NewManifestStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sup1 := serve.NewSupervisor()
	sup1.SetManifestStore(ms)
	if _, err := sup1.Load("fb", fbConfig()); err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := sup1.Run(context.Background(), "fb", pullQuery(4))
	if err != nil {
		t.Fatalf("pre-crash run: %v", err)
	}
	assertPins(t, res)
	// Crash-stop: sup1 is abandoned, no Stop, no Shutdown.

	ms2, err := serve.NewManifestStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sup2 := serve.NewSupervisor()
	sup2.SetManifestStore(ms2)
	rep := sup2.Recover(false)
	if len(rep.Restored) != 1 || rep.Restored[0] != "fb" {
		t.Fatalf("Restored = %v, want [fb]", rep.Restored)
	}
	if len(rep.Skipped) != 0 || len(rep.Failed) != 0 {
		t.Fatalf("recovery report = %+v, want clean", rep)
	}
	inst, err := sup2.Get("fb")
	if err != nil {
		t.Fatal(err)
	}
	if st := inst.State(); st != serve.StateParked {
		t.Fatalf("recovered state = %v, want parked (lazy)", st)
	}
	if !sup2.Healthy() {
		t.Fatal("supervisor with parked recovered instance reports unhealthy")
	}
	for _, w := range []int{1, 4} {
		res, err := sup2.Run(context.Background(), "fb", pullQuery(w))
		if err != nil {
			t.Fatalf("post-recovery run (workers=%d): %v", w, err)
		}
		assertPins(t, res)
	}
}

// TestSupervisorRecoveryEager recovers with eager snapshot rebuilds: the
// instance comes back ready with a resident snapshot and pinned bits.
func TestSupervisorRecoveryEager(t *testing.T) {
	dir := t.TempDir()
	ms, err := serve.NewManifestStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sup1 := serve.NewSupervisor()
	sup1.SetManifestStore(ms)
	if _, err := sup1.Load("fb", fbConfig()); err != nil {
		t.Fatalf("load: %v", err)
	}

	sup2 := serve.NewSupervisor()
	sup2.SetManifestStore(ms)
	rep := sup2.Recover(true)
	if len(rep.Restored) != 1 {
		t.Fatalf("Restored = %v, want [fb]", rep.Restored)
	}
	inst, err := sup2.Get("fb")
	if err != nil {
		t.Fatal(err)
	}
	if st := inst.State(); st != serve.StateReady {
		t.Fatalf("eager-recovered state = %v, want ready", st)
	}
	if inst.MemBytes() == 0 {
		t.Fatal("eager recovery left no resident snapshot")
	}
	res, err := sup2.Run(context.Background(), "fb", pullQuery(4))
	if err != nil {
		t.Fatalf("post-recovery run: %v", err)
	}
	assertPins(t, res)
}

// TestSupervisorRecoverySkipsBadManifests mixes a good manifest with a
// corrupt one and a version-skewed one: recovery restores the good
// instance and reports the rest loudly — never fatally.
func TestSupervisorRecoverySkipsBadManifests(t *testing.T) {
	dir := t.TempDir()
	ms, err := serve.NewManifestStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*serve.Manifest{
		{Name: "good", Dataset: "fb-sim", Ranks: 4},
		{Name: "torn", Dataset: "fb-sim", Ranks: 4},
		{Name: "future", Dataset: "fb-sim", Ranks: 4},
	} {
		if err := ms.Save(m); err != nil {
			t.Fatal(err)
		}
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"torn":   func(b []byte) []byte { b[20] ^= 1; return b },
		"future": func(b []byte) []byte { b[8] = 42; return b },
	} {
		raw, err := os.ReadFile(ms.Path(name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ms.Path(name), mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	sup := serve.NewSupervisor()
	sup.SetManifestStore(ms)
	rep := sup.Recover(false)
	if len(rep.Restored) != 1 || rep.Restored[0] != "good" {
		t.Fatalf("Restored = %v, want [good]", rep.Restored)
	}
	if len(rep.Skipped) != 2 {
		t.Fatalf("Skipped = %v, want 2 typed errors", rep.Skipped)
	}
	var corrupt, skewed int
	for _, me := range rep.Skipped {
		switch {
		case errors.Is(me, serve.ErrManifestVersion):
			skewed++
		case errors.Is(me, serve.ErrManifestCorrupt):
			corrupt++
		}
	}
	if corrupt != 1 || skewed != 1 {
		t.Fatalf("skipped classes: corrupt=%d skewed=%d, want 1 and 1", corrupt, skewed)
	}
	res, err := sup.Run(context.Background(), "good", pullQuery(4))
	if err != nil {
		t.Fatalf("run on recovered instance: %v", err)
	}
	assertPins(t, res)
}

// TestSupervisorStopForgetsManifest asserts the one transition that drops
// durable state: an explicit Stop removes the manifest, so the instance
// does not resurrect on the next recovery.
func TestSupervisorStopForgetsManifest(t *testing.T) {
	ms := testStore(t)
	sup := serve.NewSupervisor()
	sup.SetManifestStore(ms)
	if _, err := sup.Load("fb", fbConfig()); err != nil {
		t.Fatalf("load: %v", err)
	}
	if all, _ := ms.LoadAll(); len(all) != 1 {
		t.Fatalf("manifest count after load = %d, want 1", len(all))
	}
	if err := sup.Stop("fb"); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if all, _ := ms.LoadAll(); len(all) != 0 {
		t.Fatal("manifest survives explicit Stop")
	}
	sup2 := serve.NewSupervisor()
	sup2.SetManifestStore(ms)
	if rep := sup2.Recover(false); len(rep.Restored) != 0 {
		t.Fatalf("stopped instance resurrected: %v", rep.Restored)
	}
}

// TestSupervisorShutdownJoinsStuckInstances wedges runs on two instances
// and asserts an expired Shutdown reports *both* by name through the
// joined error, not just the first.
func TestSupervisorShutdownJoinsStuckInstances(t *testing.T) {
	sup := serve.NewSupervisor()
	releases := make([]chan struct{}, 0, 2)
	joins := make([]func(), 0, 2)
	for _, name := range []string{"stuck-a", "stuck-b"} {
		inst, err := sup.Load(name, fbConfig())
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		release, join := occupy(t, inst, 2)
		releases, joins = append(releases, release), append(joins, join)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := sup.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded", err)
	}
	for _, name := range []string{"stuck-a", "stuck-b"} {
		if !strings.Contains(err.Error(), fmt.Sprintf("instance %q", name)) {
			t.Errorf("Shutdown error does not name %s: %v", name, err)
		}
	}
	for _, release := range releases {
		close(release)
	}
	for _, join := range joins {
		join()
	}
}
